// Tests for the "emc" scenario family: registry metadata, parameter
// validation, the >= 5 sweepable axes of the susceptibility grid
// (amplitude, theta, phi, termination, solver), worker-count-independent
// determinism, and the clean/disturbed susceptibility metrics.
#include "emc/emc_scenario.h"

#include <gtest/gtest.h>

#include <cmath>

#include "emc/susceptibility.h"
#include "engine/sweep_runner.h"
#include "tiny_models.h"

namespace fdtdmm {
namespace {

using testmodels::tinyCache;
using testmodels::tinyDriver;

double peakAbs(const Waveform& w) {
  double peak = 0.0;
  for (std::size_t k = 0; k < w.size(); ++k)
    peak = std::max(peak, std::abs(w[k]));
  return peak;
}

/// Small, fast configuration: 8-segment, 5 cm line, 2 ns window.
EmcScenario tinyConfig() {
  EmcScenario cfg;
  cfg.pattern = "010";
  cfg.bit_time = 0.5e-9;
  cfg.t_stop = 2e-9;
  cfg.dt = 10e-12;
  cfg.line.segments = 8;
  cfg.line.length = 0.05;
  cfg.pulse_t0 = 0.8e-9;
  cfg.bandwidth = 3e9;
  return cfg;
}

/// Applies tinyConfig's fast-run base overrides to a sweep spec.
void applyTinyBase(SweepSpec& spec) {
  spec.set("pattern", std::string("010"));
  spec.set("bit_time", 0.5e-9);
  spec.set("t_stop", 2e-9);
  spec.set("dt", 10e-12);
  spec.set("segments", 8.0);
  spec.set("line_length", 0.05);
  spec.set("pulse_t0", 0.8e-9);
  spec.set("bandwidth", 3e9);
}

TEST(EmcScenario, ValidationRejectsBadOptions) {
  EmcScenario cfg = tinyConfig();
  EXPECT_NO_THROW(validateEmcScenario(cfg));
  cfg.pattern.clear();
  EXPECT_THROW(validateEmcScenario(cfg), std::invalid_argument);
  cfg = tinyConfig();
  cfg.amplitude = -1.0;
  EXPECT_THROW(validateEmcScenario(cfg), std::invalid_argument);
  cfg = tinyConfig();
  cfg.theta_deg = 200.0;
  EXPECT_THROW(validateEmcScenario(cfg), std::invalid_argument);
  cfg = tinyConfig();
  cfg.pol_theta = 0.0;
  cfg.pol_phi = 0.0;
  EXPECT_THROW(validateEmcScenario(cfg), std::invalid_argument);
  cfg = tinyConfig();
  cfg.drive = "thevenin";
  EXPECT_THROW(validateEmcScenario(cfg), std::invalid_argument);
  cfg = tinyConfig();
  cfg.termination = "open";
  EXPECT_THROW(validateEmcScenario(cfg), std::invalid_argument);
  cfg = tinyConfig();
  cfg.height = 0.0;
  EXPECT_THROW(validateEmcScenario(cfg), std::invalid_argument);
  cfg = tinyConfig();
  cfg.solver = "magic";
  EXPECT_THROW(validateEmcScenario(cfg), std::invalid_argument);

  // Missing models for the configured ends.
  cfg = tinyConfig();
  EXPECT_THROW(runEmcScenario(cfg, nullptr, nullptr), std::invalid_argument);
  cfg.drive = "none";
  cfg.termination = "receiver";
  EXPECT_THROW(runEmcScenario(cfg, nullptr, nullptr), std::invalid_argument);
}

TEST(EmcFamily, RegistryParamsAndMetadata) {
  ASSERT_TRUE(ScenarioRegistry::global().has("emc"));
  auto s = ScenarioRegistry::global().create("emc");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->family(), "emc");
  // Model needs follow the configured ends.
  EXPECT_TRUE(s->needsDriver());
  EXPECT_FALSE(s->needsReceiver());
  s->set("drive", std::string("none"));
  s->set("termination", std::string("receiver"));
  EXPECT_FALSE(s->needsDriver());
  EXPECT_TRUE(s->needsReceiver());

  s->set("amplitude", 1500.0);
  s->set("theta", 45.0);
  EXPECT_EQ(std::get<double>(s->get("amplitude")), 1500.0);
  auto* family = dynamic_cast<EmcFamily*>(s.get());
  ASSERT_NE(family, nullptr);
  EXPECT_EQ(family->config().theta_deg, 45.0);
  EXPECT_NE(s->label().find("A=1500"), std::string::npos);
  EXPECT_NE(s->label().find("th=45"), std::string::npos);

  EXPECT_THROW(s->set("theta", 181.0), std::invalid_argument);
  EXPECT_THROW(s->set("drive", std::string("x")), std::invalid_argument);
  EXPECT_THROW(s->set("segments", 1.5), std::invalid_argument);
}

// The tentpole proof: the paper's immunity analysis as a declarative sweep
// over the emc family's axes — amplitude x theta x phi x termination (and,
// separately below, solver), expanded from the registry by name, run by
// the standard parallel engine with worker-count-independent metrics.
TEST(EmcFamily, SweepsImmunityGridDeterministically) {
  SweepSpec spec;
  spec.scenario = "emc";
  spec.driver = "tinydrv";
  spec.receiver = "tinyrcv";
  applyTinyBase(spec);
  spec.axis("amplitude", {0.0, 200.0});
  spec.axis("theta", {40.0, 90.0});
  spec.axis("phi", {120.0, 180.0});
  spec.axisStrings("termination", {"resistive", "receiver"});
  EXPECT_EQ(spec.count(), 16u);

  std::vector<SweepResult> results;
  for (std::size_t workers : {1u, 4u}) {
    SweepRunnerOptions opt;
    opt.workers = workers;
    opt.model_cache = tinyCache();
    SweepRunner runner(opt);
    results.push_back(runner.run(spec));
    EXPECT_EQ(results.back().okCount(), 16u);
  }
  for (std::size_t i = 0; i < results[0].runs.size(); ++i) {
    const auto& a = results[0].runs[i];
    const auto& b = results[1].runs[i];
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.metrics.v_far_max, b.metrics.v_far_max);
    EXPECT_EQ(a.metrics.v_far_min, b.metrics.v_far_min);
    EXPECT_EQ(a.metrics.far_end_delay, b.metrics.far_end_delay);
  }

  // Field-on corners differ from their clean siblings (same inner index
  // offset by the amplitude stride of 8).
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& clean = results[0].runs[i].metrics;
    const auto& field = results[0].runs[i + 8].metrics;
    EXPECT_GT(std::abs(field.v_far_max - clean.v_far_max) +
                  std::abs(field.v_far_min - clean.v_far_min),
              1e-6);
  }
}

TEST(EmcFamily, SweepsOverSolverModes) {
  SweepSpec spec;
  spec.scenario = "emc";
  spec.driver = "tinydrv";
  applyTinyBase(spec);
  spec.set("amplitude", 200.0);
  spec.axisStrings("solver", {"reuse_lu", "full_restamp", "sparse"});
  EXPECT_EQ(spec.count(), 3u);

  SweepRunnerOptions opt;
  opt.workers = 1;
  opt.model_cache = tinyCache();
  SweepRunner runner(opt);
  const auto result = runner.run(spec);
  ASSERT_EQ(result.okCount(), 3u);

  const auto& reuse = result.runs[0].metrics;
  const auto& restamp = result.runs[1].metrics;
  const auto& sparse = result.runs[2].metrics;
  EXPECT_EQ(restamp.v_far_max, reuse.v_far_max);
  EXPECT_EQ(restamp.v_far_min, reuse.v_far_min);
  EXPECT_NEAR(sparse.v_far_max, reuse.v_far_max, 1e-6);
  EXPECT_NEAR(sparse.v_far_min, reuse.v_far_min, 1e-6);
}

TEST(EmcScenario, SusceptibilityMetricsFromCleanDisturbedPair) {
  EmcScenario cfg = tinyConfig();
  cfg.pattern = "0101";
  cfg.t_stop = 2e-9;
  auto driver = tinyDriver();

  // Immunity-study field levels: the induced noise must stay a fraction
  // of the logic swing (tens of volts would drive the behavioral port far
  // outside its identified range).
  cfg.amplitude = 0.0;
  const auto clean = runEmcScenario(cfg, driver, nullptr);
  cfg.amplitude = 25.0;
  const auto mild = runEmcScenario(cfg, driver, nullptr);
  cfg.amplitude = 100.0;
  const auto harsh = runEmcScenario(cfg, driver, nullptr);

  const BitPattern pattern(cfg.pattern, cfg.bit_time);
  SusceptibilityOptions sopt;
  sopt.noise_margin = 0.05;
  const auto m_mild = computeSusceptibility(clean.v_far, mild.v_far, pattern, sopt);
  const auto m_harsh =
      computeSusceptibility(clean.v_far, harsh.v_far, pattern, sopt);

  EXPECT_GT(m_mild.peak_noise, 0.0);
  // Induced noise scales with the field (linear coupling into the same
  // driver-loaded line; 4x the amplitude at least triples the peak).
  EXPECT_GT(m_harsh.peak_noise, 3.0 * m_mild.peak_noise);
  EXPECT_GE(m_harsh.violation_duration, m_mild.violation_duration);
  // The eye metric responds to the disturbance (its sign depends on where
  // the bipolar pulse lands inside the sampling window, so only a nonzero
  // effect is asserted).
  EXPECT_TRUE(m_mild.eye_valid);
  EXPECT_TRUE(m_harsh.eye_valid);
  EXPECT_NE(m_harsh.eye_degradation, 0.0);

  // Identical waveforms: no noise, no violations.
  const auto none = computeSusceptibility(clean.v_far, clean.v_far, pattern, sopt);
  EXPECT_LT(none.peak_noise, 1e-15);  // interpolation rounding only
  EXPECT_EQ(none.violation_duration, 0.0);
  EXPECT_NEAR(none.eye_degradation, 0.0, 1e-12);

  EXPECT_THROW(computeSusceptibility(Waveform(), clean.v_far, pattern, sopt),
               std::invalid_argument);
}

TEST(EmcScenario, QuiescentDriveNeedsNoModels) {
  EmcScenario cfg = tinyConfig();
  cfg.drive = "none";
  cfg.amplitude = 2e3;
  const auto waves = runEmcScenario(cfg, nullptr, nullptr);
  EXPECT_GT(peakAbs(waves.v_far), 0.0);
  EXPECT_GT(peakAbs(waves.v_near), 0.0);
}

}  // namespace
}  // namespace fdtdmm
