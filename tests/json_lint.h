#pragma once
// Minimal recursive-descent JSON well-formedness checker for tests: the
// telemetry/trace exports promise "parses as JSON", and the tests should
// verify that without a third-party parser. Validates the full document
// grammar (objects, arrays, strings with escapes, numbers, literals);
// it checks syntax only, not semantic limits (duplicate keys pass).

#include <cctype>
#include <cstddef>
#include <string>

namespace jsonlint {

class Checker {
 public:
  explicit Checker(const std::string& text) : s_(text) {}

  bool run(std::string* error) {
    skipWs();
    bool ok = value();
    if (ok) {
      skipWs();
      if (pos_ != s_.size()) {
        err_ = "trailing content";
        ok = false;
      }
    }
    if (!ok && error != nullptr)
      *error = err_ + " at offset " + std::to_string(pos_);
    return ok;
  }

 private:

  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (s_.compare(pos_, n, word) != 0) {
      err_ = "bad literal";
      return false;
    }
    pos_ += n;
    return true;
  }

  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      err_ = "expected string";
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        err_ = "unescaped control character in string";
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (pos_ + k >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + k]))) {
              err_ = "bad \\u escape";
              return false;
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          err_ = "bad escape";
          return false;
        }
      }
      ++pos_;
    }
    err_ = "unterminated string";
    return false;
  }

  bool number() {
    const std::size_t begin = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      err_ = "expected digit";
      return false;
    }
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        err_ = "expected fraction digits";
        return false;
      }
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        err_ = "expected exponent digits";
        return false;
      }
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    return pos_ > begin;
  }

  bool object() {
    ++pos_;  // consume '{'
    skipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        err_ = "expected ':'";
        return false;
      }
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      err_ = "expected ',' or '}'";
      return false;
    }
  }

  bool array() {
    ++pos_;  // consume '['
    skipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      err_ = "expected ',' or ']'";
      return false;
    }
  }

  bool value() {
    if (pos_ >= s_.size()) {
      err_ = "unexpected end of input";
      return false;
    }
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string err_;
};

/// True when `text` is one complete well-formed JSON document.
inline bool valid(const std::string& text, std::string* error = nullptr) {
  return Checker(text).run(error);
}

}  // namespace jsonlint
