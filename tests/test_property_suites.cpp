// Parameterized property-test suites sweeping the key invariants of the
// library across their parameter spaces (gtest TEST_P).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>

#include "circuit/transient.h"
#include "fdtd1d/line1d.h"
#include "math/linear_solve.h"
#include "math/rng.h"
#include "math/spectral.h"
#include "rbf/resampling.h"
#include "signal/linear_ports.h"

namespace fdtdmm {
namespace {

// ---------------------------------------------------------------------
// Property: for every tau in (0, 1], a resampled stable linear model is
// stable and converges to the same DC gain as the original model.
class ResamplingTauP : public testing::TestWithParam<double> {};

TEST_P(ResamplingTauP, DcGainPreservedAndBounded) {
  const double tau = GetParam();
  LinearArxParams p;
  p.order = 2;
  p.ts = 50e-12;
  p.a = {0.9, -0.25};  // stable complex pair
  p.b = {0.004, 0.002, -0.001};
  LinearArxSubmodel m(p);
  const double dc_gain = (0.004 + 0.002 - 0.001) / (1.0 - 0.9 + 0.25);

  ResampledSubmodelState st(&m, tau * p.ts);
  st.reset(0.0);
  double last = 0.0;
  for (int k = 0; k < 20000; ++k) {
    double didv = 0.0;
    last = st.eval(1.0, didv);
    ASSERT_TRUE(std::isfinite(last)) << "tau=" << tau << " k=" << k;
    st.commit(1.0);
  }
  EXPECT_NEAR(last, dc_gain, std::abs(dc_gain) * 0.02) << "tau=" << tau;
}

INSTANTIATE_TEST_SUITE_P(TauSweep, ResamplingTauP,
                         testing::Values(0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 0.9, 1.0));

// ---------------------------------------------------------------------
// Property: the eigenvalue map lambda~ = 1 + tau (lambda - 1) keeps every
// stable eigenvalue stable for the swept tau (Fig. 2 / Eq. 17).
TEST_P(ResamplingTauP, EigenvalueMapContractsUnitDisk) {
  const double tau = GetParam();
  Rng rng(17 + static_cast<std::uint64_t>(tau * 1000));
  for (int trial = 0; trial < 200; ++trial) {
    const double r = std::sqrt(rng.uniform()) * 0.9999;
    const double th = rng.uniform(0.0, 2.0 * M_PI);
    const std::complex<double> lam(r * std::cos(th), r * std::sin(th));
    EXPECT_LT(std::abs(resampleEigenvalue(lam, tau)), 1.0);
  }
}

// ---------------------------------------------------------------------
// Property: 1D FDTD far-end level follows the reflection coefficient
// (1 + rho) * launch for a matched-source line, for any resistive load.
class LineReflectionP : public testing::TestWithParam<double> {};

TEST_P(LineReflectionP, FarEndLevelMatchesTheory) {
  const double r_load = GetParam();
  Line1dConfig cfg;
  cfg.zc = 50.0;
  cfg.td = 0.8e-9;
  cfg.cells = 160;
  auto near = std::make_shared<TheveninPort>(
      [](double t) { return t >= 0.0 ? 1.0 : 0.0; }, 50.0);
  auto far = std::make_shared<ResistorPort>(r_load);
  Fdtd1dLine line(cfg, near, far);
  const auto res = line.run(2.2e-9);  // after first arrival, before 3 Td
  const double rho = (r_load - cfg.zc) / (r_load + cfg.zc);
  EXPECT_NEAR(res.v_far.value(1.8e-9), 0.5 * (1.0 + rho), 0.02) << r_load;
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, LineReflectionP,
                         testing::Values(10.0, 25.0, 50.0, 75.0, 100.0, 200.0,
                                         500.0, 5000.0));

// ---------------------------------------------------------------------
// Property: MNA RC step response matches the analytic exponential for a
// sweep of time constants relative to the solver step.
struct RcCase {
  double r;
  double c;
};
class RcChargeP : public testing::TestWithParam<RcCase> {};

TEST_P(RcChargeP, MatchesAnalyticExponential) {
  const auto [r, c] = GetParam();
  Circuit cir;
  const int src = cir.addNode();
  const int out = cir.addNode();
  cir.addVoltageSource(src, Circuit::kGround,
                       [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
  cir.addResistor(src, out, r);
  cir.addCapacitor(out, Circuit::kGround, c);
  const double tau = r * c;
  TransientOptions opt;
  opt.dt = tau / 200.0;
  opt.t_stop = 5.0 * tau;
  const auto res = runTransient(cir, opt, {{"v", out, 0}});
  for (const double frac : {0.5, 1.0, 2.0, 4.0}) {
    const double t = frac * tau;
    EXPECT_NEAR(res.at("v").value(t), 1.0 - std::exp(-frac), 4e-3)
        << "R=" << r << " C=" << c << " t/tau=" << frac;
  }
}

INSTANTIATE_TEST_SUITE_P(RcSweep, RcChargeP,
                         testing::Values(RcCase{50.0, 1e-12}, RcCase{500.0, 1e-12},
                                         RcCase{50.0, 10e-12}, RcCase{1000.0, 5e-12},
                                         RcCase{200.0, 0.2e-12}));

// ---------------------------------------------------------------------
// Property: LU round-trips random well-conditioned systems of any size.
class LuSizeP : public testing::TestWithParam<std::size_t> {};

TEST_P(LuSizeP, RandomRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  for (int trial = 0; trial < 5; ++trial) {
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
    for (std::size_t d = 0; d < n; ++d) a(d, d) += 4.0;
    Vector x_true(n);
    for (double& v : x_true) v = rng.normal();
    const Vector x = solveLinear(a, a * x_true);
    for (std::size_t k = 0; k < n; ++k) EXPECT_NEAR(x[k], x_true[k], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, LuSizeP,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------------------------------------------------------------------
// Property: the companion matrix of a geometric AR(1)-like model has the
// prescribed spectral radius for a sweep of pole locations.
class CompanionPoleP : public testing::TestWithParam<double> {};

TEST_P(CompanionPoleP, SpectralRadiusEqualsPole) {
  const double pole = GetParam();
  // Double pole at `pole`: a1 = 2 pole, a2 = -pole^2.
  const Matrix c = companionMatrix({2.0 * pole, -pole * pole});
  EXPECT_NEAR(spectralRadius(c), std::abs(pole), 0.02);
}

INSTANTIATE_TEST_SUITE_P(PoleSweep, CompanionPoleP,
                         testing::Values(-0.9, -0.5, -0.1, 0.1, 0.3, 0.6, 0.95));

// ---------------------------------------------------------------------
// Property: a ParallelRcPort at any (R, C) draws v/R at DC after settling.
class RcPortDcP : public testing::TestWithParam<RcCase> {};

TEST_P(RcPortDcP, SettlesToResistiveCurrent) {
  const auto [r, c] = GetParam();
  ParallelRcPort port(r, c);
  const double dt = 1e-12;
  port.prepare(dt);
  double i = 0.0, g = 0.0;
  for (int k = 0; k < 5000; ++k) {
    i = port.current(1.5, 0.0, g);
    port.commit(1.5, 0.0);
  }
  EXPECT_NEAR(i, 1.5 / r, 1e-9) << "R=" << r;
}

INSTANTIATE_TEST_SUITE_P(RcPortSweep, RcPortDcP,
                         testing::Values(RcCase{100.0, 1e-12}, RcCase{500.0, 1e-12},
                                         RcCase{500.0, 5e-12}, RcCase{2000.0, 0.5e-12}));

}  // namespace
}  // namespace fdtdmm
