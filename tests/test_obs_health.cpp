// Tests for numerical-health monitoring (obs/health.h): the pinned
// grading table over singular-ish / near-singular / well-conditioned MNA
// fixtures, the Hager condition estimate against a dense exact inverse
// 1-norm (within 10x on systems up to 64 unknowns — the acceptance bound),
// record/merge semantics, and end-to-end collection on all three LU paths
// (dense LuFactorization, banded SparseLu, complex AC).
#include "obs/health.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "circuit/rlgc_line.h"
#include "circuit/transient.h"
#include "freq/ac_engine.h"
#include "math/linear_solve.h"
#include "math/sparse_lu.h"
#include "math/sparse_matrix.h"

namespace fdtdmm {
namespace obs {
namespace {

TEST(Health, SeverityNames) {
  EXPECT_STREQ(healthSeverityName(HealthSeverity::kOk), "ok");
  EXPECT_STREQ(healthSeverityName(HealthSeverity::kWarn), "warn");
  EXPECT_STREQ(healthSeverityName(HealthSeverity::kCritical), "critical");
}

// A record shaped like a healthy run, to be perturbed per table row.
NumericalHealth healthyRecord() {
  NumericalHealth h;
  h.collected = true;
  h.factorizations = 1;
  h.min_abs_pivot = 0.1;
  h.max_pivot_growth = 1.5;
  h.condition_estimates = 1;
  h.max_condition_estimate = 1e3;
  h.residual_checks = 1;
  h.max_relative_residual = 1e-14;
  h.newton_steps_converged = 10;
  return h;
}

// The pinned grading table: each row perturbs one signal of the healthy
// record and states the severity the default thresholds must assign. The
// three tiers mirror the fixture families the sweeps actually produce —
// well-conditioned (everything small), near-singular (condition/residual
// in the warn band), and singular-ish (critical band).
TEST(Health, GradingTableIsPinned) {
  struct Row {
    const char* what;
    void (*perturb)(NumericalHealth&);
    HealthSeverity expected;
  };
  const Row rows[] = {
      {"well-conditioned", [](NumericalHealth&) {}, HealthSeverity::kOk},
      {"residual at warn edge",
       [](NumericalHealth& h) { h.max_relative_residual = 1e-8; },
       HealthSeverity::kWarn},
      {"residual mid warn band",
       [](NumericalHealth& h) { h.max_relative_residual = 1e-6; },
       HealthSeverity::kWarn},
      {"residual critical",
       [](NumericalHealth& h) { h.max_relative_residual = 1e-3; },
       HealthSeverity::kCritical},
      {"near-singular condition",
       [](NumericalHealth& h) { h.max_condition_estimate = 1e11; },
       HealthSeverity::kWarn},
      {"singular-ish condition",
       [](NumericalHealth& h) { h.max_condition_estimate = 1e14; },
       HealthSeverity::kCritical},
      {"pivot growth warn",
       [](NumericalHealth& h) { h.max_pivot_growth = 1e9; },
       HealthSeverity::kWarn},
      {"pivot growth critical",
       [](NumericalHealth& h) { h.max_pivot_growth = 1e13; },
       HealthSeverity::kCritical},
      {"stagnated Newton step",
       [](NumericalHealth& h) { h.newton_steps_stagnated = 1; },
       HealthSeverity::kWarn},
      {"diverged Newton step",
       [](NumericalHealth& h) { h.newton_steps_diverged = 1; },
       HealthSeverity::kCritical},
      {"just below warn thresholds",
       [](NumericalHealth& h) {
         h.max_relative_residual = 9e-9;
         h.max_condition_estimate = 9e9;
         h.max_pivot_growth = 9e7;
       },
       HealthSeverity::kOk},
  };
  for (const Row& row : rows) {
    NumericalHealth h = healthyRecord();
    row.perturb(h);
    gradeHealth(h, HealthThresholds{});
    EXPECT_EQ(h.severity, row.expected) << row.what;
  }
}

TEST(Health, GradingIsMonotoneAndSkipsUncollected) {
  NumericalHealth h = healthyRecord();
  h.max_relative_residual = 1.0;
  gradeHealth(h, HealthThresholds{});
  EXPECT_EQ(h.severity, HealthSeverity::kCritical);
  // Re-grading with perfect numbers never downgrades.
  h.max_relative_residual = 1e-15;
  gradeHealth(h, HealthThresholds{});
  EXPECT_EQ(h.severity, HealthSeverity::kCritical);

  NumericalHealth untouched;  // collected == false
  untouched.max_relative_residual = 1.0;
  gradeHealth(untouched, HealthThresholds{});
  EXPECT_EQ(untouched.severity, HealthSeverity::kOk);  // "never looked"
}

TEST(Health, CustomThresholdsShiftTheBands) {
  HealthThresholds strict;
  strict.residual_warn = 1e-12;
  strict.residual_critical = 1e-10;
  NumericalHealth h = healthyRecord();  // residual 1e-14: still ok
  gradeHealth(h, strict);
  EXPECT_EQ(h.severity, HealthSeverity::kOk);
  h = healthyRecord();
  h.max_relative_residual = 1e-11;
  gradeHealth(h, strict);
  EXPECT_EQ(h.severity, HealthSeverity::kWarn);
}

TEST(Health, RecordFactorizationTracksExtrema) {
  NumericalHealth h;
  EXPECT_FALSE(h.collected);
  h.recordFactorization(1e-3, 2.0);
  h.recordFactorization(1e-6, 5.0);
  h.recordFactorization(1e-4, 1.0);
  EXPECT_TRUE(h.collected);
  EXPECT_EQ(h.factorizations, 3);
  EXPECT_DOUBLE_EQ(h.min_abs_pivot, 1e-6);
  EXPECT_DOUBLE_EQ(h.max_pivot_growth, 5.0);
}

TEST(Health, RecordNewtonStepKeepsWorstTrajectory) {
  NumericalHealth h;
  h.recordNewtonStep({1e-1, 1e-4, 1e-9}, NewtonOutcome::kConverged);
  h.recordNewtonStep({1e-1, 1e-2, 1e-2, 1e-2, 1e-2}, NewtonOutcome::kStagnated);
  h.recordNewtonStep({1e-3, 1e-8}, NewtonOutcome::kConverged);
  EXPECT_EQ(h.newton_steps_converged, 2);
  EXPECT_EQ(h.newton_steps_stagnated, 1);
  ASSERT_EQ(h.worst_newton_trajectory.size(), 5u);  // most iterations wins
  // Same length, larger final |dx| wins the tie.
  h.recordNewtonStep({1e-1, 1e-2, 1e-2, 1e-2, 5e-2}, NewtonOutcome::kStagnated);
  EXPECT_DOUBLE_EQ(h.worst_newton_trajectory.back(), 5e-2);
  // The stored trajectory is bounded for forensics, not unbounded growth.
  std::vector<double> long_traj(100, 1.0);
  h.recordNewtonStep(long_traj, NewtonOutcome::kDiverged);
  EXPECT_EQ(h.worst_newton_trajectory.size(), NumericalHealth::kMaxTrajectory);
}

TEST(Health, MergeAggregatesFieldWise) {
  NumericalHealth a = healthyRecord();
  a.severity = HealthSeverity::kWarn;
  NumericalHealth b = healthyRecord();
  b.severity = HealthSeverity::kCritical;
  b.min_abs_pivot = 1e-9;
  b.max_pivot_growth = 7.0;
  b.max_relative_residual = 1e-5;
  b.newton_steps_converged = 3;
  a.merge(b);
  EXPECT_EQ(a.severity, HealthSeverity::kCritical);
  EXPECT_EQ(a.factorizations, 2);
  EXPECT_DOUBLE_EQ(a.min_abs_pivot, 1e-9);
  EXPECT_DOUBLE_EQ(a.max_pivot_growth, 7.0);
  EXPECT_EQ(a.condition_estimates, 2);
  EXPECT_EQ(a.residual_checks, 2);
  EXPECT_DOUBLE_EQ(a.max_relative_residual, 1e-5);
  EXPECT_EQ(a.newton_steps_converged, 13);

  // Merging an uncollected record is a no-op; merging INTO one adopts.
  NumericalHealth untouched;
  a.merge(untouched);
  EXPECT_EQ(a.factorizations, 2);
  untouched.merge(a);
  EXPECT_TRUE(untouched.collected);
  EXPECT_EQ(untouched.factorizations, 2);
}

// --- the Hager estimator vs the exact inverse norm ------------------------

// ||A^-1||_1 computed exactly (to solve roundoff): solve A x = e_j for
// every basis vector and take the largest column abs-sum. O(n^2) solves —
// fine at n <= 64, which is exactly why the acceptance bound is stated on
// small systems.
double exactInverseNorm1(const Matrix& a) {
  LuFactorization lu(a);
  const std::size_t n = a.rows();
  Vector e(n, 0.0), x;
  double norm = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    e.assign(n, 0.0);
    e[j] = 1.0;
    lu.solve(e, x);
    double col = 0.0;
    for (double v : x) col += std::abs(v);
    norm = std::max(norm, col);
  }
  return norm;
}

void expectEstimateWithin10x(const Matrix& a, const char* what) {
  LuFactorization lu(a);
  const SolveFn solve = [&lu](const Vector& b, Vector& x) { lu.solve(b, x); };
  const SolveFn solve_t = [&lu](const Vector& b, Vector& x) {
    lu.solveTranspose(b, x);
  };
  const double est = estimateInverseNorm1(a.rows(), solve, solve_t);
  const double exact = exactInverseNorm1(a);
  // Hager's estimate is a lower bound on ||A^-1||_1; the acceptance
  // criterion bounds how far below it may sit.
  EXPECT_LE(est, exact * (1.0 + 1e-6)) << what;
  EXPECT_GE(est, exact / 10.0) << what;
}

Matrix randomDiagonallyDominant(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = u(rng);
      off += std::abs(a(i, j));
    }
    a(i, i) = off + 1.0 + u(rng) * 0.1;
  }
  return a;
}

// An MNA-shaped stiffness gradient: a resistor chain whose conductances
// span `decades` orders of magnitude — the way a sweep corner actually
// goes near-singular (a huge G next to a tiny one), not a textbook
// Hilbert matrix.
Matrix gradedConductanceChain(std::size_t n, double decades) {
  Matrix a(n, n);
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const double g =
        std::pow(10.0, decades * static_cast<double>(k) / static_cast<double>(n - 1));
    a(k, k) += g;
    a(k + 1, k + 1) += g;
    a(k, k + 1) -= g;
    a(k + 1, k) -= g;
  }
  a(0, 0) += 1.0;  // ground leak so the chain is nonsingular
  return a;
}

TEST(Health, ConditionEstimateWithin10xOfExactDense) {
  for (std::size_t n : {4u, 8u, 24u, 64u}) {
    expectEstimateWithin10x(randomDiagonallyDominant(n, 100 + static_cast<std::uint32_t>(n)),
                            "diag-dominant");
  }
  expectEstimateWithin10x(gradedConductanceChain(32, 6.0), "graded 1e6");
  expectEstimateWithin10x(gradedConductanceChain(64, 9.0), "graded 1e9");
  // A genuinely near-singular fixture: the estimate must still land
  // within 10x AND large enough to grade warn/critical.
  const Matrix near_singular = gradedConductanceChain(48, 12.0);
  expectEstimateWithin10x(near_singular, "graded 1e12");
  LuFactorization lu(near_singular);
  const double est = estimateInverseNorm1(
      near_singular.rows(),
      [&lu](const Vector& b, Vector& x) { lu.solve(b, x); },
      [&lu](const Vector& b, Vector& x) { lu.solveTranspose(b, x); });
  EXPECT_GT(est * matrixNorm1(near_singular), 1e10);
}

TEST(Health, ConditionEstimateOnSparseFactorsMatchesDense) {
  // Same graded chain assembled as CSR and factored with the banded
  // sparse LU: the estimator only sees solve callbacks, so dense and
  // sparse paths must agree on the same matrix.
  const std::size_t n = 48;
  const Matrix dense = gradedConductanceChain(n, 8.0);
  SparseMatrix sparse(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (dense(i, j) != 0.0) sparse.add(i, j, dense(i, j));
  sparse.finalize();
  EXPECT_DOUBLE_EQ(matrixNorm1(sparse), matrixNorm1(dense));

  SparseLu slu;
  slu.factor(sparse);
  const double est = estimateInverseNorm1(
      n, [&slu](const Vector& b, Vector& x) { slu.solve(b, x); },
      [&slu](const Vector& b, Vector& x) { slu.solveTranspose(b, x); });
  const double exact = exactInverseNorm1(dense);
  EXPECT_LE(est, exact * (1.0 + 1e-6));
  EXPECT_GE(est, exact / 10.0);
}

TEST(Health, EstimatorRejectsEmptySystem) {
  const SolveFn noop = [](const Vector&, Vector&) {};
  EXPECT_THROW(estimateInverseNorm1(0, noop, noop), std::invalid_argument);
}

// --- end-to-end collection on the solver paths ----------------------------

Circuit nonlinearFixture(int& out) {
  Circuit c;
  const int a = c.addNode();
  out = c.addNode();
  c.addVoltageSource(a, Circuit::kGround, [](double) { return 1.8; });
  c.addResistor(a, out, 50.0);
  c.addDiode(out, Circuit::kGround);
  c.addCapacitor(out, Circuit::kGround, 1e-12);
  return c;
}

Circuit ladderFixture(int& out) {
  Circuit c;
  const int src = c.addNode();
  const int in = c.addNode();
  out = c.addNode();
  c.addVoltageSource(src, Circuit::kGround,
                     [](double t) { return t >= 0.0 ? 1.8 : 0.0; });
  c.addResistor(src, in, 60.0);
  RlgcParams p;
  p.r = 4.0;
  p.segments = 12;
  buildRlgcLine(c, in, Circuit::kGround, out, Circuit::kGround, p);
  c.addResistor(out, Circuit::kGround, 500.0);
  return c;
}

void expectHealthyTransientRecord(const NumericalHealth& h, const char* what) {
  EXPECT_TRUE(h.collected) << what;
  EXPECT_GT(h.factorizations, 0) << what;
  EXPECT_GT(h.min_abs_pivot, 0.0) << what;
  EXPECT_GT(h.max_pivot_growth, 0.0) << what;
  EXPECT_EQ(h.residual_checks, 1) << what;  // one post-run residual
  EXPECT_LT(h.max_relative_residual, 1e-8) << what;
  EXPECT_EQ(h.condition_estimates, 1) << what;
  EXPECT_GE(h.max_condition_estimate, 1.0) << what;
  EXPECT_GT(h.newton_steps_converged, 0) << what;
  EXPECT_EQ(h.newton_steps_diverged, 0) << what;
  EXPECT_EQ(h.severity, HealthSeverity::kOk) << what;
}

TEST(Health, TransientCollectsOnAllSolverModes) {
  for (TransientSolverMode mode :
       {TransientSolverMode::kReuseFactorization, TransientSolverMode::kFullRestamp,
        TransientSolverMode::kSparse}) {
    int out = 0;
    Circuit c = mode == TransientSolverMode::kSparse ? ladderFixture(out)
                                                     : nonlinearFixture(out);
    RunTelemetry tel;
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 100e-12;
    opt.solver_mode = mode;
    opt.telemetry = &tel;
    opt.health.collect = true;
    runTransient(c, opt, {{"v", out, 0}});
    expectHealthyTransientRecord(tel.health, transientSolverModeName(mode));
    EXPECT_FALSE(tel.health.worst_newton_trajectory.empty())
        << transientSolverModeName(mode);
  }
}

TEST(Health, ConditionEstimateCanBeSkipped) {
  int out = 0;
  Circuit c = nonlinearFixture(out);
  RunTelemetry tel;
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 50e-12;
  opt.telemetry = &tel;
  opt.health.collect = true;
  opt.health.condition_estimate = false;
  runTransient(c, opt, {{"v", out, 0}});
  EXPECT_TRUE(tel.health.collected);
  EXPECT_EQ(tel.health.condition_estimates, 0);
  EXPECT_EQ(tel.health.residual_checks, 1);  // residual still runs
}

TEST(Health, CollectionIsOffByDefaultAndNeedsTelemetry) {
  int out = 0;
  {
    Circuit c = nonlinearFixture(out);
    RunTelemetry tel;
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 50e-12;
    opt.telemetry = &tel;  // telemetry on, health off (default)
    runTransient(c, opt, {{"v", out, 0}});
    EXPECT_FALSE(tel.health.collected);
    EXPECT_EQ(tel.health.factorizations, 0);
  }
  {
    Circuit c = nonlinearFixture(out);
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 50e-12;
    opt.health.collect = true;  // no telemetry sink: nowhere to record
    const TransientResult r = runTransient(c, opt, {{"v", out, 0}});
    EXPECT_FALSE(r.probes.empty());  // still runs fine
  }
}

TEST(Health, AcPathCollectsOnBothSolvers) {
  for (AcOptions::Solver solver :
       {AcOptions::Solver::kDense, AcOptions::Solver::kSparse}) {
    Circuit circuit;
    const int s = circuit.addNode();
    const int out = circuit.addNode();
    VoltageSource* src =
        circuit.addVoltageSource(s, Circuit::kGround, [](double) { return 0.0; });
    src->setAcValue(Complex(1.0, 0.0));
    circuit.addResistor(s, out, 1e3);
    circuit.addCapacitor(out, Circuit::kGround, 1e-12);

    RunTelemetry tel;
    AcOptions opt;
    opt.solver = solver;
    opt.telemetry = &tel;
    opt.health.collect = true;
    AcSession session(circuit, opt);
    session.solveAt(2e8);
    EXPECT_TRUE(tel.health.collected);
    EXPECT_GT(tel.health.factorizations, 0);
    EXPECT_GT(tel.health.min_abs_pivot, 0.0);
    EXPECT_GE(tel.health.residual_checks, 1);
    EXPECT_LT(tel.health.max_relative_residual, 1e-10);
  }
}

}  // namespace
}  // namespace obs
}  // namespace fdtdmm
