// Tests for the Chrome trace-event writer: well-formed JSON output, the
// three event shapes, per-thread buffers under concurrency, the
// active-writer gating of TraceSpan/traceInstant, and file flushing.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "json_lint.h"

namespace fdtdmm {
namespace obs {
namespace {

// Every test must leave the process-global writer unset.
struct ActiveWriterGuard {
  explicit ActiveWriterGuard(TraceWriter* w) { TraceWriter::setActive(w); }
  ~ActiveWriterGuard() { TraceWriter::setActive(nullptr); }
};

TEST(TraceWriter, EmptyTraceIsValidJson) {
  TraceWriter tw("");
  const std::string json = tw.toJson();
  std::string err;
  EXPECT_TRUE(jsonlint::valid(json, &err)) << err;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(tw.eventCount(), 0u);
}

TEST(TraceWriter, RecordsAllThreeEventShapes) {
  TraceWriter tw("");
  const auto t0 = TraceWriter::Clock::now();
  tw.completeEvent("span", "cat1", t0, TraceWriter::Clock::now(),
                   "\"steps\": 42");
  tw.instantEvent("marker", "cat2");
  tw.counterEvent("queue", "depth", 3.0);
  EXPECT_EQ(tw.eventCount(), 3u);

  const std::string json = tw.toJson();
  std::string err;
  ASSERT_TRUE(jsonlint::valid(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"steps\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 3"), std::string::npos);
}

TEST(TraceWriter, ConcurrentThreadsGetDistinctTids) {
  TraceWriter tw("");
  constexpr int kThreads = 4;
  constexpr int kEvents = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tw] {
      for (int i = 0; i < kEvents; ++i) tw.instantEvent("e", "load");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tw.eventCount(), static_cast<std::size_t>(kThreads) * kEvents);
  std::string err;
  EXPECT_TRUE(jsonlint::valid(tw.toJson(), &err)) << err;
}

TEST(TraceSpan, NoOpWithoutActiveWriter) {
  ASSERT_EQ(TraceWriter::active(), nullptr);
  {
    TraceSpan span("unused", "cat");
    span.setArgs("\"k\": 1");
    traceInstant("unused", "cat");
  }  // nothing to observe, but must not crash or leak
}

TEST(TraceSpan, RecordsAgainstActiveWriter) {
  TraceWriter tw("");
  ActiveWriterGuard guard(&tw);
  {
    TraceSpan literal_span("literal", "cat");
    TraceSpan dyn_span(std::string("dyn:") + "label", "cat");
    dyn_span.setArgs("\"mode\": \"sparse\"");
    traceInstant("tick", "cat");
  }
  EXPECT_EQ(tw.eventCount(), 3u);
  const std::string json = tw.toJson();
  EXPECT_NE(json.find("\"literal\""), std::string::npos);
  EXPECT_NE(json.find("\"dyn:label\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"sparse\""), std::string::npos);
  std::string err;
  EXPECT_TRUE(jsonlint::valid(json, &err)) << err;
}

TEST(TraceSpan, ResolvesWriterAtConstruction) {
  TraceWriter tw("");
  std::unique_ptr<TraceSpan> span;
  {
    ActiveWriterGuard guard(&tw);
    span = std::make_unique<TraceSpan>("held", "cat");
  }  // writer deactivated while the span is open
  span.reset();  // must still record into the writer it resolved
  EXPECT_EQ(tw.eventCount(), 1u);
}

TEST(TraceWriter, FlushWritesLoadableFile) {
  const std::string path = "test_trace_flush.json";
  {
    TraceWriter tw(path);
    ActiveWriterGuard guard(&tw);
    { TraceSpan span("work", "cat"); }
    tw.flush();
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::ostringstream ss;
  ss << f.rdbuf();
  std::string err;
  EXPECT_TRUE(jsonlint::valid(ss.str(), &err)) << err;
  EXPECT_NE(ss.str().find("\"work\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceWriter, JsonEscapesEventNames) {
  TraceWriter tw("");
  tw.instantEvent("quote\"back\\slash\nnewline", "cat");
  std::string err;
  EXPECT_TRUE(jsonlint::valid(tw.toJson(), &err)) << err;
}

}  // namespace
}  // namespace obs
}  // namespace fdtdmm
