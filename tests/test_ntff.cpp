// Tests for the near-to-far-field radiation post-processing.
#include "fdtd/ntff.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fdtd/solver.h"
#include "signal/linear_ports.h"

namespace fdtdmm {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Builds a short z-directed dipole (3-cell PEC wire with a driven gap)
/// radiating a sinusoid at f0, records a Huygens box, and returns the
/// recorder after the run (steady-state periodic regime reached).
struct DipoleFixture {
  std::unique_ptr<FdtdSolver> solver;
  NtffRecorder* ntff = nullptr;
  double f0 = 5e9;

  void build() {
    GridSpec s;
    s.nx = s.ny = s.nz = 50;
    s.dx = s.dy = s.dz = 1e-3;  // lambda(5 GHz) = 60 mm -> dipole << lambda
    Grid3 g(s);
    // Wire along z through the center with a gap at k = 24.
    g.pecWireZ(25, 25, 22, 24);
    g.pecWireZ(25, 25, 25, 28);
    g.bake();
    FdtdSolverOptions opt;
    opt.boundary = BoundaryKind::kCpml;
    solver = std::make_unique<FdtdSolver>(std::move(g), opt);
    const double f = f0;
    auto vs = [f](double t) {
      // Smooth turn-on to avoid a DC transient in the phasors.
      const double ramp = t < 0.4e-9 ? t / 0.4e-9 : 1.0;
      return ramp * std::sin(2.0 * kPi * f * t);
    };
    LumpedPortSpec ps;
    ps.i = 25;
    ps.j = 25;
    ps.k = 24;
    solver->addLumpedPort(ps, std::make_shared<TheveninPort>(vs, 50.0));
    NtffSpec spec;
    spec.i0 = spec.j0 = spec.k0 = 12;
    spec.i1 = spec.j1 = spec.k1 = 38;
    spec.frequencies_hz = {f0};
    ntff = solver->addNtffSurface(spec);
    solver->runUntil(2.0e-9);
  }
};

TEST(Ntff, DipolePatternHasSinThetaShape) {
  DipoleFixture fx;
  fx.build();
  // Broadside intensity must dominate near-axis intensity strongly
  // (ideal dipole: sin^2(theta); at 20 deg that is ~12% of broadside).
  const double u90 = fx.ntff->farField(0, kPi / 2.0, 0.0).intensity();
  const double u20 = fx.ntff->farField(0, 20.0 * kPi / 180.0, 0.0).intensity();
  ASSERT_GT(u90, 0.0);
  EXPECT_LT(u20 / u90, 0.35);
  // Monotone decrease from broadside toward the axis.
  const double u60 = fx.ntff->farField(0, 60.0 * kPi / 180.0, 0.0).intensity();
  EXPECT_GT(u90, u60);
  EXPECT_GT(u60, u20);
}

TEST(Ntff, DipolePatternIsPhiSymmetric) {
  DipoleFixture fx;
  fx.build();
  const double u0 = fx.ntff->farField(0, kPi / 2.0, 0.0).intensity();
  for (const double phi : {0.7, 2.1, 4.0}) {
    const double up = fx.ntff->farField(0, kPi / 2.0, phi).intensity();
    EXPECT_NEAR(up / u0, 1.0, 0.25) << phi;
  }
}

TEST(Ntff, DipoleIsThetaPolarized) {
  DipoleFixture fx;
  fx.build();
  const FarField ff = fx.ntff->farField(0, kPi / 2.0, 0.8);
  EXPECT_LT(std::abs(ff.e_phi), 0.1 * std::abs(ff.e_theta));
}

TEST(Ntff, Validation) {
  GridSpec s;
  s.nx = s.ny = s.nz = 20;
  Grid3 g(s);
  g.bake();
  NtffSpec bad;
  bad.i0 = 0;  // touches the boundary
  bad.i1 = 10;
  bad.j0 = 2;
  bad.j1 = 10;
  bad.k0 = 2;
  bad.k1 = 10;
  bad.frequencies_hz = {1e9};
  EXPECT_THROW(NtffRecorder(&g, bad), std::invalid_argument);
  NtffSpec empty;
  empty.i0 = empty.j0 = empty.k0 = 2;
  empty.i1 = empty.j1 = empty.k1 = 10;
  EXPECT_THROW(NtffRecorder(&g, empty), std::invalid_argument);
  EXPECT_THROW(NtffRecorder(nullptr, empty), std::invalid_argument);
  NtffSpec ok = empty;
  ok.frequencies_hz = {1e9};
  NtffRecorder rec(&g, ok);
  EXPECT_THROW(rec.farField(1, 0.0, 0.0), std::out_of_range);
}

}  // namespace
}  // namespace fdtdmm
