#pragma once
// Tiny hand-built macromodels shared by the sweep/scenario test suites
// (mirroring test_model_library's): these suites exercise orchestration
// and determinism, not identification, so they must not pay the
// multi-second default-model build. The migration goldens in
// test_sweep_migration.cpp are only valid for exactly these constants —
// changing them invalidates the pinned pre-redesign CSV/JSON bytes.

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "engine/model_cache.h"

namespace fdtdmm {
namespace testmodels {

inline GaussianRbfParams tinyParams() {
  GaussianRbfParams p;
  p.order = 1;
  p.ts = 50e-12;
  p.beta = 0.5;
  p.i_scale = 1.0;
  p.theta = {0.01};
  p.c0 = {0.9};
  p.cv = {{0.9}};
  p.ci = {{0.0}};
  return p;
}

inline std::shared_ptr<const RbfDriverModel> tinyDriver() {
  RbfDriverModel m;
  m.up = std::make_shared<GaussianRbfSubmodel>(tinyParams());
  m.down = std::make_shared<GaussianRbfSubmodel>(tinyParams());
  m.ts = 50e-12;
  m.weights.wu_up = Waveform(0.0, 50e-12, {0.0, 1.0});
  m.weights.wd_up = Waveform(0.0, 50e-12, {1.0, 0.0});
  m.weights.wu_down = Waveform(0.0, 50e-12, {1.0, 0.0});
  m.weights.wd_down = Waveform(0.0, 50e-12, {0.0, 1.0});
  return std::make_shared<const RbfDriverModel>(std::move(m));
}

inline std::shared_ptr<const RbfReceiverModel> tinyReceiver() {
  RbfReceiverModel m;
  LinearArxParams lp;
  lp.order = 1;
  lp.ts = 50e-12;
  lp.a = {0.2};
  lp.b = {0.001, 0.0};
  m.lin = std::make_shared<LinearArxSubmodel>(lp);
  m.up = std::make_shared<GaussianRbfSubmodel>(tinyParams());
  m.down = std::make_shared<GaussianRbfSubmodel>(tinyParams());
  m.ts = 50e-12;
  return std::make_shared<const RbfReceiverModel>(std::move(m));
}

/// A ModelCache preloaded with the tiny models as "tinydrv" / "tinyrcv".
inline std::shared_ptr<ModelCache> tinyCache() {
  auto cache = std::make_shared<ModelCache>();
  cache->putDriver("tinydrv", tinyDriver());
  cache->putReceiver("tinyrcv", tinyReceiver());
  return cache;
}

inline std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace testmodels
}  // namespace fdtdmm
