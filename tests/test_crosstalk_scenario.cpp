// Tests for the coupled two-line crosstalk family: circuit-level builder,
// physical sanity (no coupling -> no victim response, more coupling ->
// more crosstalk), determinism, and the registry/sweep integration that
// the closed pre-redesign API could not express.
#include "core/crosstalk_scenario.h"

#include <gtest/gtest.h>

#include <cmath>

#include "engine/sweep_runner.h"
#include "tiny_models.h"

namespace fdtdmm {
namespace {

using testmodels::tinyDriver;

/// Small, fast configuration: 8-segment lines, 2 ns window.
CrosstalkScenario tinyConfig() {
  CrosstalkScenario cfg;
  cfg.pattern = "010";
  cfg.bit_time = 0.5e-9;
  cfg.t_stop = 2e-9;
  cfg.dt = 10e-12;
  cfg.line.segments = 8;
  cfg.line.length = 0.05;  // Td = 0.25 ns
  return cfg;
}

double peakAbs(const Waveform& w) {
  double peak = 0.0;
  for (std::size_t k = 0; k < w.size(); ++k)
    peak = std::max(peak, std::abs(w[k]));
  return peak;
}

TEST(CrosstalkScenario, ValidationRejectsBadOptions) {
  CrosstalkScenario cfg = tinyConfig();
  EXPECT_NO_THROW(validateCrosstalkScenario(cfg));
  cfg.pattern.clear();
  EXPECT_THROW(validateCrosstalkScenario(cfg), std::invalid_argument);
  cfg = tinyConfig();
  cfg.coupling = 1.5;
  EXPECT_THROW(validateCrosstalkScenario(cfg), std::invalid_argument);
  cfg = tinyConfig();
  cfg.coupling = -0.1;
  EXPECT_THROW(validateCrosstalkScenario(cfg), std::invalid_argument);
  cfg = tinyConfig();
  cfg.victim_r_far = 0.0;
  EXPECT_THROW(validateCrosstalkScenario(cfg), std::invalid_argument);
  cfg = tinyConfig();
  cfg.line.segments = 0;
  EXPECT_THROW(validateCrosstalkScenario(cfg), std::invalid_argument);
  cfg = tinyConfig();
  cfg.dt = 0.0;
  EXPECT_THROW(validateCrosstalkScenario(cfg), std::invalid_argument);
  EXPECT_THROW(runCrosstalkScenario(tinyConfig(), nullptr), std::invalid_argument);
}

TEST(CrosstalkScenario, NoCouplingMeansNoVictimResponse) {
  CrosstalkScenario cfg = tinyConfig();
  cfg.coupling = 0.0;
  const auto waves = runCrosstalkScenario(cfg, tinyDriver());
  ASSERT_FALSE(waves.v_far.empty());
  ASSERT_EQ(waves.victims.size(), 2u);
  // The aggressor switches...
  EXPECT_GT(peakAbs(waves.v_near), 1e-3);
  // ...but an uncoupled victim stays quiet (far end = v_far, near end =
  // victims[0]).
  EXPECT_LT(peakAbs(waves.v_far), 1e-9);
  EXPECT_LT(peakAbs(waves.victims[0]), 1e-9);
}

TEST(CrosstalkScenario, CouplingInducesMonotoneCrosstalk) {
  double prev_peak = 0.0;
  for (double k : {0.05, 0.2, 0.5}) {
    CrosstalkScenario cfg = tinyConfig();
    cfg.coupling = k;
    const auto waves = runCrosstalkScenario(cfg, tinyDriver());
    const double peak = peakAbs(waves.v_far);
    EXPECT_GT(peak, prev_peak);  // stronger coupling, more far-end crosstalk
    prev_peak = peak;
    // Near-end crosstalk exists too.
    ASSERT_EQ(waves.victims.size(), 2u);
    EXPECT_GT(peakAbs(waves.victims[0]), 0.0);
    // The aggressor far end still carries the main signal.
    EXPECT_GT(peakAbs(waves.victims[1]), peak);
  }
}

TEST(CrosstalkScenario, RunsAreBitwiseDeterministic) {
  const CrosstalkScenario cfg = tinyConfig();
  auto driver = tinyDriver();
  const auto a = runCrosstalkScenario(cfg, driver);
  const auto b = runCrosstalkScenario(cfg, driver);
  ASSERT_EQ(a.v_far.size(), b.v_far.size());
  for (std::size_t k = 0; k < a.v_far.size(); ++k) {
    EXPECT_EQ(a.v_far[k], b.v_far[k]);
    EXPECT_EQ(a.v_near[k], b.v_near[k]);
  }
}

TEST(CrosstalkFamily, RegistryParamsAndMetadata) {
  auto s = ScenarioRegistry::global().create("crosstalk");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->family(), "crosstalk");
  EXPECT_TRUE(s->needsDriver());
  EXPECT_FALSE(s->needsReceiver());  // victim ends are resistive

  s->set("coupling", 0.35);
  s->set("victim_r_far", 75.0);
  EXPECT_EQ(std::get<double>(s->get("coupling")), 0.35);
  auto* family = dynamic_cast<CrosstalkFamily*>(s.get());
  ASSERT_NE(family, nullptr);
  EXPECT_EQ(family->config().victim_r_far, 75.0);
  EXPECT_NE(s->label().find("k=0.35"), std::string::npos);

  EXPECT_THROW(s->set("coupling", 1.5), std::invalid_argument);  // range
  EXPECT_THROW(s->set("segments", 2.5), std::invalid_argument);  // integrality
}

// The tentpole proof: a crosstalk family swept over coupling strength and
// victim termination, expanded from (name, parameter axes) alone, run
// through the standard SweepRunner, exporting victim-eye/crosstalk metrics
// through the existing SweepResult path — with deterministic,
// worker-count-independent results.
TEST(CrosstalkFamily, SweepsOverCouplingAndTerminationDeterministically) {
  SweepSpec spec;
  spec.scenario = "crosstalk";
  spec.driver = "tinydrv";
  spec.set("pattern", std::string("010"));
  spec.set("bit_time", 0.5e-9);
  spec.set("t_stop", 2e-9);
  spec.set("dt", 10e-12);
  spec.set("segments", 8.0);
  spec.set("line_length", 0.05);
  spec.axis("coupling", {0.1, 0.3});
  spec.axis("victim_r_far", {25.0, 50.0, 100.0});
  EXPECT_EQ(spec.count(), 6u);

  std::vector<SweepResult> results;
  for (std::size_t workers : {1u, 4u}) {
    SweepRunnerOptions opt;
    opt.workers = workers;
    auto cache = std::make_shared<ModelCache>();
    cache->putDriver("tinydrv", tinyDriver());
    opt.model_cache = cache;
    SweepRunner runner(opt);
    results.push_back(runner.run(spec));
    EXPECT_EQ(results.back().okCount(), 6u);
  }
  for (std::size_t i = 0; i < results[0].runs.size(); ++i) {
    const auto& a = results[0].runs[i];
    const auto& b = results[1].runs[i];
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.label, b.label);
    // Bitwise metric equality across worker counts.
    EXPECT_EQ(a.metrics.v_far_max, b.metrics.v_far_max);
    EXPECT_EQ(a.metrics.v_far_min, b.metrics.v_far_min);
    EXPECT_EQ(a.metrics.settling_time, b.metrics.settling_time);
    EXPECT_EQ(a.metrics.far_end_delay, b.metrics.far_end_delay);
  }
  // Coupling is the outer axis: tasks 0-2 are k=0.1, tasks 3-5 k=0.3. At
  // the matched victim termination (50 ohm, tasks 1 and 4) stronger
  // coupling raises the exported far-end crosstalk peak; mismatched
  // corners superpose reflections and are only required to be nonzero.
  const auto peak = [&](std::size_t i) {
    return std::max(std::abs(results[0].runs[i].metrics.v_far_max),
                    std::abs(results[0].runs[i].metrics.v_far_min));
  };
  EXPECT_GT(peak(4), peak(1));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_GT(peak(i), 0.0);
}

// The ROADMAP's mutual-inductance follow-up: the crosstalk family sweeps
// Lm/L through the coupling_l parameter (K-coupled inductors per segment).
// Inductive coupling changes the far-end crosstalk, and matching the
// capacitive fraction cancels it to first order.
TEST(CrosstalkFamily, SweepsOverInductiveCouplingFraction) {
  SweepSpec spec;
  spec.scenario = "crosstalk";
  spec.driver = "tinydrv";
  spec.set("pattern", std::string("010"));
  spec.set("bit_time", 0.5e-9);
  spec.set("t_stop", 2e-9);
  spec.set("dt", 10e-12);
  spec.set("segments", 8.0);
  spec.set("line_length", 0.05);
  spec.set("coupling", 0.2);
  spec.axis("coupling_l", {0.0, 0.2, 0.5});
  EXPECT_EQ(spec.count(), 3u);

  auto cache = std::make_shared<ModelCache>();
  cache->putDriver("tinydrv", tinyDriver());
  SweepRunnerOptions opt;
  opt.workers = 1;
  opt.model_cache = cache;
  SweepRunner runner(opt);
  const auto result = runner.run(spec);
  ASSERT_EQ(result.okCount(), 3u);
  EXPECT_NE(result.runs[1].label.find("kl=0.2"), std::string::npos);

  const auto peak = [&](std::size_t i) {
    return std::max(std::abs(result.runs[i].metrics.v_far_max),
                    std::abs(result.runs[i].metrics.v_far_min));
  };
  // Matched fractions (kl = k = 0.2) cancel the forward-coupled component
  // of the far-end crosstalk; the residual (NEXT-type coupling of the
  // aggressor's load reflection, which adds as Cm/C + Lm/L) keeps the
  // metric nonzero, so only the ordering is asserted: matched < capacitive-
  // only, and overcompensating (kl = 0.5) brings the peak back up.
  EXPECT_LT(peak(1), peak(0));
  EXPECT_GT(peak(2), peak(1));

  // coupling_l = 1 would be a degenerate k = 1 pair: the descriptor range
  // is [0, 1) exclusive, so a bad axis value fails at set/expand time with
  // the range error instead of aborting a sweep mid-expansion.
  auto s = ScenarioRegistry::global().create("crosstalk");
  EXPECT_THROW(s->set("coupling_l", 1.0), std::invalid_argument);
  EXPECT_NO_THROW(s->set("coupling_l", 0.999));
}

// Solver-mode plumbing: a sweep axis on the "solver" parameter runs the
// same corner through the cached-LU, full-restamp, and sparse transient
// engines — picking the solver per task with no engine-layer special
// casing. The physics must not depend on the solver: full_restamp matches
// reuse_lu bitwise (shared dense elimination), sparse to a tolerance (its
// banded LU eliminates in a permuted order).
TEST(CrosstalkFamily, SweepsOverSolverModes) {
  SweepSpec spec;
  spec.scenario = "crosstalk";
  spec.driver = "tinydrv";
  spec.set("pattern", std::string("010"));
  spec.set("bit_time", 0.5e-9);
  spec.set("t_stop", 2e-9);
  spec.set("dt", 10e-12);
  spec.set("segments", 8.0);
  spec.set("line_length", 0.05);
  spec.axisStrings("solver", {"reuse_lu", "full_restamp", "sparse"});
  EXPECT_EQ(spec.count(), 3u);

  auto cache = std::make_shared<ModelCache>();
  cache->putDriver("tinydrv", tinyDriver());
  SweepRunnerOptions opt;
  opt.workers = 1;
  opt.model_cache = cache;
  SweepRunner runner(opt);
  const auto result = runner.run(spec);
  ASSERT_EQ(result.okCount(), 3u);

  const auto& reuse = result.runs[0].metrics;
  const auto& restamp = result.runs[1].metrics;
  const auto& sparse = result.runs[2].metrics;
  EXPECT_EQ(restamp.v_far_max, reuse.v_far_max);
  EXPECT_EQ(restamp.v_far_min, reuse.v_far_min);
  EXPECT_NEAR(sparse.v_far_max, reuse.v_far_max, 1e-8);
  EXPECT_NEAR(sparse.v_far_min, reuse.v_far_min, 1e-8);
}

}  // namespace
}  // namespace fdtdmm
