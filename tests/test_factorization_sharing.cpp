// Tests for cross-corner solver-state sharing: the PR's central invariant
// (a linear RHS-only sweep performs one base LU factorization per
// numeric-base class, not per corner), the byte-identical-exports contract
// between sharing on and off, result-cache replay of repeated corners, the
// honesty of the family sharing keys, and the valid-name lists in the
// *FromName error messages.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "circuit/transient.h"
#include "core/scenario.h"
#include "core/tline_family.h"
#include "engine/sweep_runner.h"

namespace fdtdmm {
namespace {

// 12 corners, all linear (quiescent victim trace, no macromodels), whose
// amplitude x theta axes reach only the RHS: exactly two numeric-base
// classes (one per solver mode).
SweepSpec rhsOnlyEmcSpec() {
  SweepSpec spec;
  spec.scenario = "emc";
  spec.set("drive", std::string("none"));
  spec.set("t_stop", 3e-9);
  spec.set("segments", 8.0);
  spec.set("pulse_t0", 1e-9);
  spec.axis("amplitude", {500.0, 1000.0, 2000.0});
  spec.axis("theta", {20.0, 60.0});
  spec.axisStrings("solver", {"reuse_lu", "sparse"});
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

struct Exports {
  std::string csv;
  std::string json;
};

Exports exportMetrics(const SweepResult& result) {
  const std::string csv_path = "test_sharing.csv";
  const std::string json_path = "test_sharing.json";
  writeSweepCsv(result, csv_path);
  writeSweepJson(result, json_path);
  Exports e{slurp(csv_path), slurp(json_path)};
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
  return e;
}

long long totalLu(const SweepResult& result) {
  long long lu = 0;
  for (const SweepRunRecord& r : result.runs) lu += r.telemetry.lu_factorizations;
  return lu;
}

// THE invariant: total factorizations == numeric-base classes, for any
// worker count, on a linear RHS-only sweep.
TEST(FactorizationSharing, LinearSweepFactorsOncePerNumericClass) {
  const SweepSpec spec = rhsOnlyEmcSpec();
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    SweepRunnerOptions opt;
    opt.workers = workers;
    SweepRunner runner(opt);
    const SweepResult result = runner.run(spec);
    ASSERT_EQ(result.okCount(), result.runs.size());
    ASSERT_EQ(result.runs.size(), 12u);

    // Two classes: {reuse_lu, sparse} x (amplitude/theta are RHS-only).
    EXPECT_EQ(runner.solverCache()->numericClassCount(), 2u) << workers;
    EXPECT_EQ(totalLu(result), 2) << workers;
    EXPECT_EQ(result.solver_cache.numeric_misses, 2) << workers;
    EXPECT_EQ(result.solver_cache.numeric_hits, 10) << workers;
    // Sparse corners additionally share one RCM ordering (6 corners, 1
    // analysis); the dense mode has no symbolic state.
    EXPECT_EQ(runner.solverCache()->structureClassCount(), 1u) << workers;
    EXPECT_EQ(result.solver_cache.symbolic_misses, 1) << workers;
    EXPECT_EQ(result.solver_cache.symbolic_hits, 5) << workers;

    for (const SweepRunRecord& r : result.runs) {
      // Each corner either built its class base (1 LU) or checked it out.
      EXPECT_EQ(r.telemetry.lu_factorizations + r.telemetry.shared_base_reuses, 1)
          << r.label;
    }
  }
}

// Sharing must never perturb a metric byte — on or off, any worker count,
// linear (emc) and nonlinear (crosstalk) families alike.
TEST(FactorizationSharing, MetricsByteIdenticalSharingOnOrOff) {
  auto runExports = [](const SweepSpec& spec, std::size_t workers, bool share) {
    SweepRunnerOptions opt;
    opt.workers = workers;
    opt.share_solver_state = share;
    opt.reuse_results = share;  // exercise both caches together
    SweepRunner runner(opt);
    const SweepResult result = runner.run(spec);
    EXPECT_EQ(result.okCount(), result.runs.size());
    if (!share) {
      // Sharing off: every corner factors privately, caches stay cold.
      EXPECT_EQ(result.solver_cache.numeric_hits, 0);
      EXPECT_EQ(result.solver_cache.numeric_misses, 0);
      EXPECT_EQ(result.result_cache.inserts, 0);
    }
    return exportMetrics(result);
  };
  auto stripHeader = [](const std::string& json) {
    const std::size_t runs = json.find("\"runs\"");
    EXPECT_NE(runs, std::string::npos);
    return json.substr(runs);
  };

  SweepSpec crosstalk;
  crosstalk.scenario = "crosstalk";
  crosstalk.set("pattern", std::string("010"));
  crosstalk.set("bit_time", 1e-9);
  crosstalk.set("t_stop", 3e-9);
  crosstalk.set("segments", 8.0);
  crosstalk.axis("coupling", {0.05, 0.2});
  crosstalk.axisStrings("solver", {"reuse_lu", "sparse"});

  for (const SweepSpec& spec : {rhsOnlyEmcSpec(), crosstalk}) {
    const Exports off = runExports(spec, 1, false);
    for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      const Exports on = runExports(spec, workers, true);
      EXPECT_EQ(on.csv, off.csv) << spec.scenario << " workers=" << workers;
      EXPECT_EQ(stripHeader(on.json), stripHeader(off.json))
          << spec.scenario << " workers=" << workers;
    }
  }
}

// Re-running the same sweep through the same runner replays every corner
// from the result cache: zero transients, zero factorizations, identical
// exported bytes.
TEST(FactorizationSharing, RepeatedSweepReplaysFromResultCache) {
  const SweepSpec spec = rhsOnlyEmcSpec();
  SweepRunnerOptions opt;
  opt.workers = 2;
  SweepRunner runner(opt);

  const SweepResult first = runner.run(spec);
  ASSERT_EQ(first.okCount(), first.runs.size());
  EXPECT_EQ(first.result_cache.hits, 0);
  EXPECT_EQ(first.result_cache.inserts, 12);

  const SweepResult second = runner.run(spec);
  ASSERT_EQ(second.okCount(), second.runs.size());
  EXPECT_EQ(second.result_cache.hits, 12);
  EXPECT_EQ(second.result_cache.inserts, 0);
  // No corner ran: no factorizations, no solver-cache traffic.
  EXPECT_EQ(totalLu(second), 0);
  EXPECT_EQ(second.solver_cache.numeric_misses, 0);
  EXPECT_EQ(second.solver_cache.numeric_hits, 0);
  for (const SweepRunRecord& r : second.runs) EXPECT_EQ(r.telemetry.steps, 0);

  const Exports a = exportMetrics(first);
  const Exports b = exportMetrics(second);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.json, b.json);

  // keep_waveforms bypasses the cache (cached records carry no waves).
  SweepRunnerOptions wopt;
  wopt.workers = 1;
  wopt.keep_waveforms = true;
  wopt.result_cache = runner.resultCache();
  SweepRunner wrunner(wopt);
  const SweepResult waved = wrunner.run(spec);
  ASSERT_EQ(waved.okCount(), waved.runs.size());
  EXPECT_EQ(waved.result_cache.hits, 0);
  for (const SweepRunRecord& r : waved.runs) EXPECT_GT(r.waves.v_far.size(), 0u);
}

// Key honesty: RHS-only parameters must stay out of both keys; parameters
// that reach a static stamp or the solver setup must change the numeric
// key; structural parameters must change the structure key; and the
// numeric key must refine the structure key.
TEST(FactorizationSharing, EmcKeysTrackStructureAndStaticBase) {
  auto scenario = ScenarioRegistry::global().create("emc");
  const std::string structure = scenario->structureKey();
  const std::string numeric = scenario->numericBaseKey();
  ASSERT_FALSE(structure.empty());
  ASSERT_FALSE(numeric.empty());
  // Refinement: equal numeric keys must imply equal structure keys.
  EXPECT_EQ(numeric.compare(0, structure.size(), structure), 0);

  // RHS-only knobs: field excitation and geometry never touch the keys.
  scenario->set("amplitude", 750.0);
  scenario->set("theta", 45.0);
  scenario->set("phi", 30.0);
  scenario->set("pulse_t0", 2e-9);
  scenario->set("route_deg", 15.0);
  EXPECT_EQ(scenario->structureKey(), structure);
  EXPECT_EQ(scenario->numericBaseKey(), numeric);

  // Static-stamp knobs: same structure, different base matrix.
  scenario->set("line_c", 1.1e-10);
  EXPECT_EQ(scenario->structureKey(), structure);
  EXPECT_NE(scenario->numericBaseKey(), numeric);
  scenario->set("dt", 1.3e-11);
  const std::string numeric2 = scenario->numericBaseKey();
  EXPECT_NE(numeric2, numeric);

  // Structural knobs: different pattern, different everything.
  scenario->set("segments", 16.0);
  EXPECT_NE(scenario->structureKey(), structure);
  EXPECT_NE(scenario->numericBaseKey(), numeric2);

  // amplitude=0 drops the field sources entirely — a structural change.
  auto quiet = ScenarioRegistry::global().create("emc");
  quiet->set("amplitude", 0.0);
  EXPECT_NE(quiet->structureKey(), structure);
}

TEST(FactorizationSharing, TlineKeysOnlyForTheMnaEngine) {
  auto scenario = ScenarioRegistry::global().create("tline");
  scenario->set("engine", std::string("spice-rbf"));
  const std::string structure = scenario->structureKey();
  const std::string numeric = scenario->numericBaseKey();
  EXPECT_FALSE(structure.empty());
  EXPECT_EQ(numeric.compare(0, structure.size(), structure), 0);
  scenario->set("zc", 120.0);  // reaches the lumped model: numeric-only
  EXPECT_EQ(scenario->structureKey(), structure);
  EXPECT_NE(scenario->numericBaseKey(), numeric);

  // The FDTD engines never run the MNA solver: no keys, no sharing.
  for (const char* engine : {"fdtd1d", "fdtd3d"}) {
    scenario->set("engine", std::string(engine));
    EXPECT_EQ(scenario->structureKey(), "") << engine;
    EXPECT_EQ(scenario->numericBaseKey(), "") << engine;
  }
}

TEST(FactorizationSharing, CrosstalkKeysFoldCouplingIntoTheBase) {
  auto scenario = ScenarioRegistry::global().create("crosstalk");
  const std::string structure = scenario->structureKey();
  const std::string numeric = scenario->numericBaseKey();
  ASSERT_FALSE(structure.empty());
  EXPECT_EQ(numeric.compare(0, structure.size(), structure), 0);
  // Coupling stamps mutual elements: same structure (both nonzero),
  // different static base.
  scenario->set("coupling", 0.25);
  EXPECT_EQ(scenario->structureKey(), structure);
  EXPECT_NE(scenario->numericBaseKey(), numeric);
  // Victim terminations are resistors in the static matrix.
  scenario->set("victim_r_far", 75.0);
  EXPECT_NE(scenario->numericBaseKey(), numeric);
  // coupling=0 skips the mutual stamps entirely — structural.
  scenario->set("coupling", 0.0);
  EXPECT_NE(scenario->structureKey(), structure);
}

template <typename Fn>
std::string thrownMessage(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument";
  return {};
}

// Unknown-name errors must list the valid names (satellite: a typo'd CLI
// flag should teach, not stonewall).
TEST(FactorizationSharing, UnknownNameErrorsListValidNames) {
  const std::string solver =
      thrownMessage([] { transientSolverModeFromName("bogus"); });
  EXPECT_NE(solver.find("bogus"), std::string::npos) << solver;
  for (const std::string& name : transientSolverModeNames())
    EXPECT_NE(solver.find(name), std::string::npos) << solver;

  const std::string engine = thrownMessage([] { tlineEngineFromName("bogus"); });
  EXPECT_NE(engine.find("bogus"), std::string::npos) << engine;
  for (const char* name : {"spice-rbf", "fdtd1d", "fdtd3d"})
    EXPECT_NE(engine.find(name), std::string::npos) << engine;

  const std::string load = thrownMessage([] { farEndLoadFromName("bogus"); });
  EXPECT_NE(load.find("bogus"), std::string::npos) << load;
  for (const char* name : {"rc", "receiver"})
    EXPECT_NE(load.find(name), std::string::npos) << load;
}

}  // namespace
}  // namespace fdtdmm
