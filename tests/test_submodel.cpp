// Unit tests for the Gaussian RBF and linear ARX submodels (Eqs. 1-4, 6).
#include "rbf/submodel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace fdtdmm {
namespace {

GaussianRbfParams singleCenterParams() {
  GaussianRbfParams p;
  p.order = 2;
  p.ts = 50e-12;
  p.beta = 0.5;
  p.i_scale = 1.0;
  p.theta = {2.0};
  p.c0 = {1.0};
  p.cv = {{0.5, 0.5}};
  p.ci = {{0.0, 0.0}};
  return p;
}

TEST(GaussianRbf, PeakAtCenter) {
  GaussianRbfSubmodel m(singleCenterParams());
  double didv = 1.0;
  const double at_center = m.eval(1.0, {0.5, 0.5}, {0.0, 0.0}, &didv);
  EXPECT_DOUBLE_EQ(at_center, 2.0);  // theta * exp(0)
  EXPECT_NEAR(didv, 0.0, 1e-12);     // derivative vanishes at the peak
}

TEST(GaussianRbf, AnalyticDerivativeMatchesFiniteDifference) {
  GaussianRbfParams p = singleCenterParams();
  p.theta = {2.0, -1.5};
  p.c0 = {1.0, 0.2};
  p.cv = {{0.5, 0.5}, {-0.1, 0.3}};
  p.ci = {{0.0, 0.0}, {0.4, -0.2}};
  GaussianRbfSubmodel m(p);
  const Vector xv{0.3, 0.6}, xi{0.1, -0.1};
  for (double v : {-0.5, 0.0, 0.7, 1.3, 2.2}) {
    double didv = 0.0;
    m.eval(v, xv, xi, &didv);
    const double h = 1e-6;
    const double fd = (m.eval(v + h, xv, xi) - m.eval(v - h, xv, xi)) / (2.0 * h);
    EXPECT_NEAR(didv, fd, 1e-6) << "v=" << v;
  }
}

TEST(GaussianRbf, DecaysAwayFromCenters) {
  GaussianRbfSubmodel m(singleCenterParams());
  EXPECT_LT(std::abs(m.eval(10.0, {0.5, 0.5}, {0.0, 0.0})), 1e-10);
}

TEST(GaussianRbf, IScaleBalancesCurrentRegressors) {
  // With i_scale = 1000, a 1 mA regressor excursion has the same metric
  // weight as a 1 V voltage excursion.
  GaussianRbfParams p = singleCenterParams();
  p.i_scale = 1000.0;
  p.ci = {{0.0, 0.0}};
  GaussianRbfSubmodel m(p);
  const double at_zero = m.eval(1.0, {0.5, 0.5}, {0.0, 0.0});
  const double at_1ma = m.eval(1.0, {0.5, 0.5}, {1e-3, 0.0});
  const double ratio = at_1ma / at_zero;
  EXPECT_NEAR(ratio, std::exp(-1.0 / (2.0 * 0.25)), 1e-9);
}

TEST(GaussianRbf, BasisIsLinearInTheta) {
  GaussianRbfParams p = singleCenterParams();
  p.theta = {2.0, -1.0};
  p.c0 = {1.0, 0.0};
  p.cv = {{0.5, 0.5}, {0.0, 0.0}};
  p.ci = {{0.0, 0.0}, {0.1, 0.1}};
  GaussianRbfSubmodel m(p);
  const Vector xv{0.2, 0.8}, xi{0.05, -0.02};
  const Vector b = m.basis(0.6, xv, xi);
  const double direct = m.eval(0.6, xv, xi);
  EXPECT_NEAR(direct, p.theta[0] * b[0] + p.theta[1] * b[1], 1e-12);
}

TEST(GaussianRbf, Validation) {
  GaussianRbfParams p = singleCenterParams();
  p.beta = 0.0;
  EXPECT_THROW(GaussianRbfSubmodel{p}, std::invalid_argument);
  p = singleCenterParams();
  p.cv = {{0.5}};  // wrong dimension
  EXPECT_THROW(GaussianRbfSubmodel{p}, std::invalid_argument);
  p = singleCenterParams();
  p.c0 = {1.0, 2.0};  // size mismatch with theta
  EXPECT_THROW(GaussianRbfSubmodel{p}, std::invalid_argument);
  GaussianRbfSubmodel ok(singleCenterParams());
  EXPECT_THROW(ok.eval(0.0, {1.0}, {0.0, 0.0}), std::invalid_argument);
}

TEST(LinearArx, EvaluatesDifferenceEquation) {
  LinearArxParams p;
  p.order = 2;
  p.ts = 50e-12;
  p.a = {0.5, -0.1};
  p.b = {0.01, 0.002, -0.001};
  LinearArxSubmodel m(p);
  double didv = 0.0;
  const double i = m.eval(1.0, {2.0, 3.0}, {0.1, 0.2}, &didv);
  // 0.5*0.1 - 0.1*0.2 + 0.01*1 + 0.002*2 - 0.001*3 = 0.05 - 0.02 + 0.01 + 0.004 - 0.003
  EXPECT_NEAR(i, 0.041, 1e-12);
  EXPECT_DOUBLE_EQ(didv, 0.01);
}

TEST(LinearArx, PoleRadius) {
  LinearArxParams p;
  p.order = 1;
  p.ts = 1e-9;
  p.a = {0.8};
  p.b = {1.0, 0.0};
  LinearArxSubmodel m(p);
  EXPECT_NEAR(m.poleRadius(), 0.8, 1e-6);
}

TEST(LinearArx, Validation) {
  LinearArxParams p;
  p.order = 2;
  p.a = {0.1};  // wrong length
  p.b = {1.0, 0.0, 0.0};
  EXPECT_THROW(LinearArxSubmodel{p}, std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
