// Unit tests for the dense matrix/vector substrate.
#include "math/matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fdtdmm {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, InitializerListRaggedThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MatVec) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = m * Vector{1.0, 1.0};
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MatVecSizeMismatchThrows) {
  Matrix m(2, 3);
  const Vector bad{1.0, 2.0};
  EXPECT_THROW((void)(m * bad), std::invalid_argument);
}

TEST(Matrix, MatMat) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, PlusMinusScale) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b(1, 1), 8.0);
  b -= a;
  EXPECT_DOUBLE_EQ(b(1, 1), 4.0);
  b *= 0.5;
  EXPECT_DOUBLE_EQ(b(0, 0), 0.5);
}

TEST(Matrix, MaxAbs) {
  Matrix a{{-5.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.maxAbs(), 5.0);
}

TEST(VectorOps, Norms) {
  const Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(normInf(Vector{-7.0, 2.0}), 7.0);
}

TEST(VectorOps, DotAndAxpy) {
  EXPECT_DOUBLE_EQ(dot(Vector{1.0, 2.0}, Vector{3.0, 4.0}), 11.0);
  const Vector r = axpy(Vector{1.0, 1.0}, 2.0, Vector{1.0, 2.0});
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 5.0);
  EXPECT_THROW(dot(Vector{1.0}, Vector{1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
