#include "math/sparse_lu.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "math/linear_solve.h"
#include "math/rng.h"

namespace fdtdmm {
namespace {

// Solves with SparseLu and with the dense reference, returns max |dx|.
double solveGap(const SparseMatrix& a, const Vector& b) {
  SparseLu slu;
  slu.factor(a);
  Vector xs;
  slu.solve(b, xs);
  const Vector xd = solveLinear(a.toDense(), b);
  double gap = 0.0;
  for (std::size_t k = 0; k < xd.size(); ++k) gap = std::max(gap, std::abs(xs[k] - xd[k]));
  return gap;
}

TEST(SparseLu, MatchesDenseOnTridiagonalSystem) {
  const std::size_t n = 50;
  SparseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 4.0);
    if (i > 0) a.add(i, i - 1, -1.0);
    if (i + 1 < n) a.add(i, i + 1, -1.5);
  }
  a.finalize();
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::sin(static_cast<double>(i));
  EXPECT_LT(solveGap(a, b), 1e-12);
}

TEST(SparseLu, MatchesDenseOnMnaLikeSystemWithZeroDiagonal) {
  // MNA shape: conductance block plus a voltage-source branch row/column
  // with a structurally zero diagonal — unpivoted elimination would die
  // here; partial pivoting inside the band must not.
  //   nodes 0..2 in a resistive chain, branch unknown 3 forcing node 0.
  SparseMatrix a(4);
  a.add(0, 0, 1.0 / 10.0);
  a.add(0, 1, -1.0 / 10.0);
  a.add(1, 0, -1.0 / 10.0);
  a.add(1, 1, 1.0 / 10.0 + 1.0 / 20.0);
  a.add(1, 2, -1.0 / 20.0);
  a.add(2, 1, -1.0 / 20.0);
  a.add(2, 2, 1.0 / 20.0 + 1.0 / 50.0);
  a.add(0, 3, 1.0);  // branch current into node 0
  a.add(3, 0, 1.0);  // branch row: v0 = vs
  a.finalize();
  ASSERT_DOUBLE_EQ(a.at(3, 3), 0.0);
  const Vector b = {0.0, 0.0, 0.0, 5.0};
  SparseLu slu;
  slu.factor(a);
  Vector x;
  slu.solve(b, x);
  EXPECT_NEAR(x[0], 5.0, 1e-12);          // forced node
  EXPECT_LT(solveGap(a, b), 1e-12);
}

TEST(SparseLu, MatchesDenseOnRandomSparseSystem) {
  Rng rng(42);
  const std::size_t n = 60;
  SparseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 5.0 + rng.uniform());  // diagonally dominant-ish
    for (int k = 0; k < 3; ++k) {
      const auto j = static_cast<std::size_t>(rng.uniform() * static_cast<double>(n));
      if (j < n && j != i) a.add(i, j, rng.uniform() - 0.5);
    }
  }
  a.finalize();
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng.uniform() - 0.5;
  EXPECT_LT(solveGap(a, b), 1e-10);
}

TEST(SparseLu, RcmShrinksLadderWithTrailingBranchesToNarrowBand) {
  // Chain of n nodes where node i also couples to a trailing "branch"
  // unknown n+i (the RLGC inductor layout): natural ordering has bandwidth
  // ~n, RCM must bring it down to a small constant.
  const std::size_t n = 40;
  SparseMatrix a(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 3.0);
    if (i > 0) {
      a.add(i, i - 1, -1.0);
      a.add(i - 1, i, -1.0);
    }
    const std::size_t br = n + i;
    a.add(br, br, 1.0);
    a.add(br, i, -0.5);
    a.add(i, br, 1.0);
  }
  a.finalize();
  SparseLu slu;
  slu.factor(a);
  EXPECT_LE(slu.lowerBandwidth(), 4u);
  EXPECT_LE(slu.upperBandwidth(), 4u);
  Vector b(2 * n, 1.0);
  EXPECT_LT(solveGap(a, b), 1e-12);
}

TEST(SparseLu, RefactorReusesAnalysisAndTracksValueChanges) {
  SparseMatrix a(3);
  a.add(0, 0, 2.0);
  a.add(1, 1, 3.0);
  a.add(2, 2, 4.0);
  a.add(0, 1, -1.0);
  a.add(1, 0, -1.0);
  a.finalize();
  SparseLu slu;
  slu.factor(a);
  Vector x;
  slu.solve({1.0, 0.0, 0.0}, x);
  const double x0 = x[0];
  a.add(0, 0, 3.0);  // value-only change, same pattern
  slu.factor(a);
  slu.solve({1.0, 0.0, 0.0}, x);
  EXPECT_LT(x[0], x0);  // stiffer matrix, smaller response
  EXPECT_LT(solveGap(a, {1.0, 0.0, 0.0}), 1e-13);
}

TEST(SparseLu, SingularMatrixThrows) {
  SparseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 1.0);
  a.finalize();
  SparseLu slu;
  EXPECT_THROW(slu.factor(a), std::runtime_error);
  EXPECT_FALSE(slu.factored());
  Vector x;
  EXPECT_THROW(slu.solve({1.0, 1.0}, x), std::logic_error);
}

TEST(SparseLu, ErrorsOnUnfinalizedOrEmptyOrMismatch) {
  SparseMatrix building(2);
  building.add(0, 0, 1.0);
  SparseLu slu;
  EXPECT_THROW(slu.factor(building), std::invalid_argument);
  SparseMatrix empty(0);
  empty.finalize();
  EXPECT_THROW(slu.factor(empty), std::invalid_argument);

  SparseMatrix ok(2);
  ok.add(0, 0, 1.0);
  ok.add(1, 1, 1.0);
  ok.finalize();
  slu.factor(ok);
  Vector x;
  EXPECT_THROW(slu.solve(Vector(3, 0.0), x), std::invalid_argument);
}

TEST(ReverseCuthillMcKee, ProducesAPermutation) {
  SparseMatrix a(5);
  for (std::size_t i = 0; i < 5; ++i) a.add(i, i, 1.0);
  a.add(0, 4, 1.0);
  a.finalize();
  const auto order = reverseCuthillMcKee(a);
  ASSERT_EQ(order.size(), 5u);
  std::vector<bool> seen(5, false);
  for (std::size_t v : order) {
    ASSERT_LT(v, 5u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

}  // namespace
}  // namespace fdtdmm
