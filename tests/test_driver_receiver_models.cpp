// Tests for the driver/receiver macromodel runtime (weight scheduling and
// the PortModel protocol).
#include <gtest/gtest.h>

#include <cmath>

#include "rbf/driver_model.h"
#include "rbf/receiver_model.h"

namespace fdtdmm {
namespace {

std::shared_ptr<const GaussianRbfSubmodel> constantCurrentSubmodel(double i0,
                                                                   double ts) {
  // One very wide Gaussian centered at the operating region approximates a
  // constant current source i0 over the working voltage range.
  GaussianRbfParams p;
  p.order = 2;
  p.ts = ts;
  p.beta = 100.0;  // flat over +-volts
  p.i_scale = 1.0;
  p.theta = {i0};
  p.c0 = {0.9};
  p.cv = {{0.9, 0.9}};
  p.ci = {{0.0, 0.0}};
  return std::make_shared<GaussianRbfSubmodel>(p);
}

RbfDriverModel makeTestDriver(double ts) {
  RbfDriverModel m;
  m.up = constantCurrentSubmodel(-0.01, ts);   // sources 10 mA when HIGH
  m.down = constantCurrentSubmodel(0.02, ts);  // sinks when LOW
  m.ts = ts;
  // Linear 4-sample templates.
  m.weights.wu_up = Waveform(0.0, ts, {0.0, 0.33, 0.67, 1.0});
  m.weights.wd_up = Waveform(0.0, ts, {1.0, 0.67, 0.33, 0.0});
  m.weights.wu_down = Waveform(0.0, ts, {1.0, 0.67, 0.33, 0.0});
  m.weights.wd_down = Waveform(0.0, ts, {0.0, 0.33, 0.67, 1.0});
  return m;
}

TEST(DriverWeights, SteadyBeforeFirstEdge) {
  const auto model = makeTestDriver(50e-12);
  const BitPattern pat("010", 2e-9);
  const WeightPair w = driverWeightsAt(model, pat, 1e-9);
  EXPECT_DOUBLE_EQ(w.wu, 0.0);
  EXPECT_DOUBLE_EQ(w.wd, 1.0);
}

TEST(DriverWeights, TemplatePlayedAtEdge) {
  const auto model = makeTestDriver(50e-12);
  const BitPattern pat("010", 2e-9);
  // Halfway through the up template (templates are 4 samples of 50 ps).
  const WeightPair w = driverWeightsAt(model, pat, 2e-9 + 75e-12);
  EXPECT_GT(w.wu, 0.3);
  EXPECT_LT(w.wu, 0.7);
  // After the template: steady HIGH.
  const WeightPair w2 = driverWeightsAt(model, pat, 2e-9 + 1e-9);
  EXPECT_DOUBLE_EQ(w2.wu, 1.0);
  EXPECT_DOUBLE_EQ(w2.wd, 0.0);
}

TEST(DriverWeights, DownEdgeUsesDownTemplates) {
  const auto model = makeTestDriver(50e-12);
  const BitPattern pat("010", 2e-9);
  const WeightPair w = driverWeightsAt(model, pat, 4e-9 + 75e-12);
  EXPECT_GT(w.wd, 0.3);
  EXPECT_LT(w.wd, 0.7);
  const WeightPair w2 = driverWeightsAt(model, pat, 5.9e-9);
  EXPECT_DOUBLE_EQ(w2.wu, 0.0);
  EXPECT_DOUBLE_EQ(w2.wd, 1.0);
}

TEST(DriverWeights, EmptyTemplatesFallBackToStep) {
  auto model = makeTestDriver(50e-12);
  model.weights = SwitchingWeights{};  // no templates at all
  const BitPattern pat("01", 2e-9);
  const WeightPair before = driverWeightsAt(model, pat, 1.99e-9);
  const WeightPair after = driverWeightsAt(model, pat, 2.01e-9);
  EXPECT_DOUBLE_EQ(before.wu, 0.0);
  EXPECT_DOUBLE_EQ(after.wu, 1.0);
}

TEST(RbfDriverPort, BlendsSubmodelCurrents) {
  const auto model = std::make_shared<const RbfDriverModel>(makeTestDriver(50e-12));
  RbfDriverPort port(model, BitPattern("010", 2e-9), 0.9);
  port.prepare(10e-12);  // tau = 0.2
  EXPECT_NEAR(port.tau(), 0.2, 1e-12);
  double didv = 0.0;
  // Steady LOW: the down submodel's constant current.
  EXPECT_NEAR(port.current(0.9, 1e-9, didv), 0.02, 1e-6);
  // Steady HIGH (after the up edge + template).
  EXPECT_NEAR(port.current(0.9, 3.5e-9, didv), -0.01, 1e-6);
  // Mid-transition: blend.
  const double mid = port.current(0.9, 2e-9 + 100e-12, didv);
  EXPECT_GT(mid, -0.01);
  EXPECT_LT(mid, 0.02);
}

TEST(RbfDriverPort, ProtocolEnforced) {
  const auto model = std::make_shared<const RbfDriverModel>(makeTestDriver(50e-12));
  RbfDriverPort port(model, BitPattern("01", 2e-9));
  double didv = 0.0;
  EXPECT_THROW(port.current(0.0, 0.0, didv), std::logic_error);
  EXPECT_THROW(port.commit(0.0, 0.0), std::logic_error);
  EXPECT_THROW(port.tau(), std::logic_error);
  port.prepare(25e-12);
  EXPECT_NO_THROW(port.current(0.0, 0.0, didv));
  EXPECT_NO_THROW(port.commit(0.0, 0.0));
  // tau > 1 rejected (Eq. 17).
  RbfDriverPort port2(model, BitPattern("01", 2e-9));
  EXPECT_THROW(port2.prepare(100e-12), std::invalid_argument);
}

TEST(RbfDriverPort, NullModelThrows) {
  EXPECT_THROW(RbfDriverPort(nullptr, BitPattern("0", 1e-9)), std::invalid_argument);
  auto incomplete = std::make_shared<RbfDriverModel>();
  EXPECT_THROW(RbfDriverPort(incomplete, BitPattern("0", 1e-9)), std::invalid_argument);
}

RbfReceiverModel makeTestReceiver(double ts) {
  RbfReceiverModel m;
  LinearArxParams lp;
  lp.order = 2;
  lp.ts = ts;
  lp.a = {0.3, 0.0};
  lp.b = {0.001, 0.0, 0.0};  // i = 0.3 i_prev + 1 mS * v -> dc g ~ 1.43 mS
  m.lin = std::make_shared<LinearArxSubmodel>(lp);
  m.up = constantCurrentSubmodel(0.0, ts);
  m.down = constantCurrentSubmodel(0.0, ts);
  m.ts = ts;
  return m;
}

TEST(RbfReceiverPort, LinearPartDcGain) {
  const auto model = std::make_shared<const RbfReceiverModel>(makeTestReceiver(50e-12));
  RbfReceiverPort port(model, 0.0);
  port.prepare(25e-12);
  EXPECT_NEAR(port.tau(), 0.5, 1e-12);
  // March to steady state at 1 V.
  double i = 0.0, didv = 0.0;
  for (int k = 0; k < 4000; ++k) {
    i = port.current(1.0, 0.0, didv);
    port.commit(1.0, 0.0);
  }
  EXPECT_NEAR(i, 0.001 / (1.0 - 0.3), 1e-6);
}

TEST(RbfReceiverPort, IncompleteModelThrows) {
  auto m = std::make_shared<RbfReceiverModel>();
  EXPECT_THROW(RbfReceiverPort{m}, std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
