// Tests for axis-general lumped ports, current probes, and field-slice
// export: the same physical strip-line problem built along each Cartesian
// orientation must produce the same waveforms.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "fdtd/snapshot.h"
#include "fdtd/solver.h"
#include "signal/linear_ports.h"

namespace fdtdmm {
namespace {

/// Builds a parallel-strip line along `line_axis` with the strip pair
/// separated along `gap_axis`, drives it with a ramped step through 50 ohm
/// and loads it with 120 ohm; returns the load voltage.
Waveform orientedLineRun(Axis gap_axis) {
  // All three runs use congruent grids (60 x 24 x 24 permuted).
  GridSpec s;
  s.dx = s.dy = s.dz = 1e-3;
  auto vs = [](double t) { return t < 60e-12 ? t / 60e-12 : 1.0; };

  if (gap_axis == Axis::kZ) {
    // Line along x, gap along z (the canonical layout used elsewhere).
    s.nx = 60;
    s.ny = 24;
    s.nz = 24;
    Grid3 g(s);
    g.pecPlateZ(11, 10, 50, 10, 14);
    g.pecPlateZ(12, 10, 50, 10, 14);
    g.bake();
    FdtdSolver solver(std::move(g));
    LumpedPortSpec sp;
    sp.axis = Axis::kZ;
    sp.i = 10;
    sp.j = 12;
    sp.k = 11;
    sp.sign = -1;
    solver.addLumpedPort(sp, std::make_shared<TheveninPort>(vs, 50.0));
    LumpedPortSpec lp = sp;
    lp.i = 50;
    LumpedPort* load = solver.addLumpedPort(lp, std::make_shared<ResistorPort>(120.0));
    solver.runUntil(1.2e-9);
    return load->voltage();
  }
  if (gap_axis == Axis::kX) {
    // Line along y, gap along x.
    s.nx = 24;
    s.ny = 60;
    s.nz = 24;
    Grid3 g(s);
    g.pecPlateX(11, 10, 50, 10, 14);
    g.pecPlateX(12, 10, 50, 10, 14);
    g.bake();
    FdtdSolver solver(std::move(g));
    LumpedPortSpec sp;
    sp.axis = Axis::kX;
    sp.i = 11;
    sp.j = 10;
    sp.k = 12;
    sp.sign = -1;
    solver.addLumpedPort(sp, std::make_shared<TheveninPort>(vs, 50.0));
    LumpedPortSpec lp = sp;
    lp.j = 50;
    LumpedPort* load = solver.addLumpedPort(lp, std::make_shared<ResistorPort>(120.0));
    solver.runUntil(1.2e-9);
    return load->voltage();
  }
  // Line along z, gap along y.
  s.nx = 24;
  s.ny = 24;
  s.nz = 60;
  Grid3 g(s);
  g.pecPlateY(11, 10, 14, 10, 50);
  g.pecPlateY(12, 10, 14, 10, 50);
  g.bake();
  FdtdSolver solver(std::move(g));
  LumpedPortSpec sp;
  sp.axis = Axis::kY;
  sp.i = 12;
  sp.j = 11;
  sp.k = 10;
  sp.sign = -1;
  solver.addLumpedPort(sp, std::make_shared<TheveninPort>(vs, 50.0));
  LumpedPortSpec lp = sp;
  lp.k = 50;
  LumpedPort* load = solver.addLumpedPort(lp, std::make_shared<ResistorPort>(120.0));
  solver.runUntil(1.2e-9);
  return load->voltage();
}

TEST(AxisGeneralPorts, AllOrientationsAgree) {
  const Waveform vz = orientedLineRun(Axis::kZ);
  const Waveform vx = orientedLineRun(Axis::kX);
  const Waveform vy = orientedLineRun(Axis::kY);
  ASSERT_EQ(vz.size(), vx.size());
  ASSERT_EQ(vz.size(), vy.size());
  double dx_max = 0.0, dy_max = 0.0;
  for (std::size_t k = 0; k < vz.size(); ++k) {
    dx_max = std::max(dx_max, std::abs(vx[k] - vz[k]));
    dy_max = std::max(dy_max, std::abs(vy[k] - vz[k]));
  }
  // The discrete problem is exactly congruent up to index permutation.
  EXPECT_LT(dx_max, 1e-9);
  EXPECT_LT(dy_max, 1e-9);
  // DC divider sanity: 1 V behind 50 ohm into 120 ohm -> ~0.706 V.
  EXPECT_NEAR(vz.samples().back(), 120.0 / 170.0, 0.05);
}

TEST(CurrentProbe, MatchesPortCurrentAtDc) {
  GridSpec s;
  s.nx = 60;
  s.ny = 24;
  s.nz = 24;
  s.dx = s.dy = s.dz = 1e-3;
  Grid3 g(s);
  g.pecPlateZ(11, 10, 50, 10, 14);
  g.pecPlateZ(12, 10, 50, 10, 14);
  g.bake();
  FdtdSolver solver(std::move(g));
  auto vs = [](double t) { return t < 60e-12 ? t / 60e-12 : 1.0; };
  LumpedPortSpec sp;
  sp.i = 10;
  sp.j = 12;
  sp.k = 11;
  sp.sign = -1;
  solver.addLumpedPort(sp, std::make_shared<TheveninPort>(vs, 50.0));
  LumpedPortSpec lp = sp;
  lp.i = 50;
  LumpedPort* load = solver.addLumpedPort(lp, std::make_shared<ResistorPort>(120.0));
  CurrentProbeSpec cp;
  cp.axis = Axis::kZ;
  cp.i = 50;
  cp.j = 12;
  cp.k = 11;
  const std::size_t probe = solver.addCurrentProbe(cp);
  solver.runUntil(3e-9);  // settle to DC
  const double i_loop = solver.currentProbe(probe).samples().back();
  const double i_port = load->current().samples().back();
  // At DC the displacement current vanishes; the loop current equals the
  // device current in magnitude (direction per the mesh convention).
  EXPECT_NEAR(std::abs(i_loop), std::abs(i_port), std::abs(i_port) * 0.02 + 1e-9);
  EXPECT_GT(std::abs(i_port), 1e-3);  // sanity: a real current flows
}

TEST(CurrentProbe, Validation) {
  GridSpec s;
  s.nx = s.ny = s.nz = 8;
  Grid3 g(s);
  g.bake();
  FdtdSolver solver(std::move(g));
  CurrentProbeSpec bad;
  bad.i = 0;
  bad.j = 4;
  bad.k = 4;
  EXPECT_THROW(solver.addCurrentProbe(bad), std::invalid_argument);
  EXPECT_THROW(solver.currentProbe(0), std::out_of_range);
}

TEST(VoltageProbe, AxisGeneralSpans) {
  GridSpec s;
  s.nx = s.ny = s.nz = 10;
  Grid3 g(s);
  g.bake();
  FdtdSolver solver(std::move(g));
  VoltageProbeSpec vx;
  vx.axis = Axis::kX;
  vx.i = 5;  // y
  vx.j = 5;  // z
  vx.k0 = 2;
  vx.k1 = 6;  // span over x
  EXPECT_NO_THROW(solver.addVoltageProbe(vx));
  VoltageProbeSpec bad = vx;
  bad.k1 = 11;
  EXPECT_THROW(solver.addVoltageProbe(bad), std::invalid_argument);
}

TEST(Snapshot, WritesSliceCsv) {
  GridSpec s;
  s.nx = 6;
  s.ny = 5;
  s.nz = 4;
  Grid3 g(s);
  g.bake();
  g.ez(3, 2, 2) = 7.5;
  const std::string path = testing::TempDir() + "slice_test.csv";
  writeFieldSliceCsv(g, Axis::kZ, SlicePlane::kXY, 2, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("7.5"), std::string::npos);
  // Header + nx+1 rows.
  const auto rows = static_cast<std::size_t>(std::count(all.begin(), all.end(), '\n'));
  EXPECT_EQ(rows, 1u + 7u);
  std::filesystem::remove(path);
  EXPECT_THROW(writeFieldSliceCsv(g, Axis::kZ, SlicePlane::kXY, 9, path),
               std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
