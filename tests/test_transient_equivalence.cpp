// Transient-solver equivalence suite: the static/dynamic-split engine with
// cached LU factorizations (TransientSolverMode::kReuseFactorization) must
// reproduce the legacy full-restamp path (kFullRestamp) on the paper's
// Fig. 4/5 t-line scenarios and on nonlinear driver+receiver circuits —
// bitwise on purely linear circuits, to <= 1e-12 otherwise (static and
// dynamic matrix contributions are summed in a different order, which can
// perturb shared Jacobian entries by an ulp).
//
// The sparse path (kSparse: CSR assembly + RCM-ordered banded LU) runs the
// same fixtures against the cached-LU reference. It eliminates in a
// permuted order, so equivalence is to a tolerance rather than bitwise:
// kSparseTol bounds the accumulated rounding gap over thousands of steps.
// Linear circuits must still perform exactly ONE (sparse) factorization.
#include "circuit/transient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/rlgc_line.h"
#include "devices/cmos_driver.h"
#include "signal/bit_pattern.h"

namespace fdtdmm {
namespace {

// Acceptable sparse-vs-dense waveform gap on volt-scale signals (see file
// comment). Observed gaps are orders of magnitude below this.
constexpr double kSparseTol = 1e-8;

// Each mode builds its own circuit instance: elements carry per-run state
// (companion histories, line delay buffers), so circuits are single-use.
double maxAbsDiff(const Waveform& a, const Waveform& b) {
  EXPECT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.dt(), b.dt());
  double m = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t k = 0; k < n; ++k) m = std::max(m, std::abs(a[k] - b[k]));
  return m;
}

// ------------------------------------------------------------------ linear

// Fig. 4 topology with a Thevenin drive instead of the CMOS driver: ideal
// line (Zc = 131 ohm, Td = 0.4 ns) into the 1 pF || 500 ohm far-end load.
// Purely linear, so the two paths must agree bitwise and the reuse path
// must factor exactly once.
TransientResult runLinearTline(TransientSolverMode mode) {
  const BitPattern pattern("010", 2e-9);
  Circuit c;
  const int src = c.addNode();
  const int near = c.addNode();
  const int far = c.addNode();
  c.addVoltageSource(src, Circuit::kGround,
                     [pattern](double t) { return 1.8 * pattern.levelAt(t); });
  c.addResistor(src, near, 60.0);
  c.addIdealLine(near, Circuit::kGround, far, Circuit::kGround, 131.0, 0.4e-9);
  c.addResistor(far, Circuit::kGround, 500.0);
  c.addCapacitor(far, Circuit::kGround, 1e-12);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 5e-9;
  opt.settle_time = 1e-9;
  opt.solver_mode = mode;
  return runTransient(c, opt, {{"near", near, 0}, {"far", far, 0}});
}

TEST(TransientEquivalence, LinearTlineBitwiseAndSingleFactorization) {
  const auto fast = runLinearTline(TransientSolverMode::kReuseFactorization);
  const auto ref = runLinearTline(TransientSolverMode::kFullRestamp);
  EXPECT_TRUE(fast.converged);
  EXPECT_TRUE(ref.converged);
  EXPECT_EQ(fast.total_newton_iterations, ref.total_newton_iterations);
  EXPECT_EQ(maxAbsDiff(fast.at("near"), ref.at("near")), 0.0);
  EXPECT_EQ(maxAbsDiff(fast.at("far"), ref.at("far")), 0.0);
  // No nonlinear element ever touches the matrix: one factorization total.
  EXPECT_EQ(fast.lu_factorizations, 1);
  // The reference path factors at every Newton iteration.
  EXPECT_EQ(ref.lu_factorizations, ref.total_newton_iterations);
}

TransientResult runRlgcLadder(TransientSolverMode mode) {
  Circuit c;
  const int src = c.addNode();
  const int in = c.addNode();
  const int out = c.addNode();
  c.addVoltageSource(src, Circuit::kGround,
                     [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
  c.addResistor(src, in, 50.0);
  RlgcParams p;
  p.r = 2.0;
  p.g = 1e-4;
  p.segments = 16;
  buildRlgcLine(c, in, Circuit::kGround, out, Circuit::kGround, p);
  c.addResistor(out, Circuit::kGround, 120.0);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 2e-9;
  opt.solver_mode = mode;
  return runTransient(c, opt, {{"in", in, 0}, {"out", out, 0}});
}

TEST(TransientEquivalence, RlgcLadderBitwiseAndSingleFactorization) {
  const auto fast = runRlgcLadder(TransientSolverMode::kReuseFactorization);
  const auto ref = runRlgcLadder(TransientSolverMode::kFullRestamp);
  EXPECT_EQ(maxAbsDiff(fast.at("in"), ref.at("in")), 0.0);
  EXPECT_EQ(maxAbsDiff(fast.at("out"), ref.at("out")), 0.0);
  EXPECT_EQ(fast.lu_factorizations, 1);
}

// Coupled-line crosstalk substrate (the "crosstalk" family's netlist):
// Thevenin-driven aggressor, capacitively coupled victim, resistive
// terminations. Purely linear unless `clamp_diodes` adds the victim-side
// clamps, which makes the dynamic stamps dirty the matrix every iteration.
TransientResult runCrosstalkCoupled(TransientSolverMode mode, bool clamp_diodes) {
  const BitPattern pattern("0110", 1e-9);
  Circuit c;
  const int src = c.addNode();
  const int agg_near = c.addNode();
  const int agg_far = c.addNode();
  const int vic_near = c.addNode();
  const int vic_far = c.addNode();
  c.addVoltageSource(src, Circuit::kGround,
                     [pattern](double t) { return 1.8 * pattern.levelAt(t); });
  c.addResistor(src, agg_near, 50.0);
  CoupledRlgcParams cp;
  cp.line.r = 2.0;
  cp.line.g = 1e-4;
  cp.line.segments = 12;
  cp.cm = 0.25 * cp.line.c;
  buildCoupledRlgcLines(c, agg_near, agg_far, vic_near, vic_far, cp);
  c.addResistor(agg_far, Circuit::kGround, 75.0);
  c.addResistor(vic_near, Circuit::kGround, 50.0);
  c.addResistor(vic_far, Circuit::kGround, 50.0);
  if (clamp_diodes) {
    c.addDiode(Circuit::kGround, vic_far);  // clamp below ground
    c.addDiode(vic_far, src);               // clamp above the rail node
  }
  TransientOptions opt;
  opt.dt = 5e-12;
  opt.t_stop = 4e-9;
  opt.solver_mode = mode;
  return runTransient(c, opt,
                      {{"agg_far", agg_far, 0}, {"vic_near", vic_near, 0},
                       {"vic_far", vic_far, 0}});
}

// --------------------------------------------------------------- nonlinear

// Fig. 4 proper: transistor-level CMOS driver, ideal line, linear RC load.
TransientResult runFig4(TransientSolverMode mode) {
  const BitPattern pattern("010", 2e-9);
  Circuit c;
  auto drv = buildCmosDriver(c, CmosDriverParams{}, [pattern](double t) {
    return static_cast<double>(pattern.levelAt(t));
  });
  const int far = c.addNode();
  c.addIdealLine(drv.pad, Circuit::kGround, far, Circuit::kGround, 131.0, 0.4e-9);
  c.addResistor(far, Circuit::kGround, 500.0);
  c.addCapacitor(far, Circuit::kGround, 1e-12);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 5e-9;
  opt.settle_time = 3e-9;
  opt.solver_mode = mode;
  return runTransient(c, opt, {{"near", drv.pad, 0}, {"far", far, 0}});
}

// Fig. 5: same line, far end terminated by the transistor-level receiver.
TransientResult runFig5(TransientSolverMode mode) {
  const BitPattern pattern("010", 2e-9);
  Circuit c;
  auto drv = buildCmosDriver(c, CmosDriverParams{}, [pattern](double t) {
    return static_cast<double>(pattern.levelAt(t));
  });
  const int far = c.addNode();
  c.addIdealLine(drv.pad, Circuit::kGround, far, Circuit::kGround, 131.0, 0.4e-9);
  auto rcv = buildCmosReceiver(c, CmosReceiverParams{});
  c.addResistor(far, rcv.pad, 1e-3);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 5e-9;
  opt.settle_time = 3e-9;
  opt.solver_mode = mode;
  return runTransient(c, opt, {{"near", drv.pad, 0}, {"far", far, 0}});
}

TEST(TransientEquivalence, Fig4TlineRcLoad) {
  const auto fast = runFig4(TransientSolverMode::kReuseFactorization);
  const auto ref = runFig4(TransientSolverMode::kFullRestamp);
  EXPECT_TRUE(fast.converged);
  EXPECT_LE(maxAbsDiff(fast.at("near"), ref.at("near")), 1e-12);
  EXPECT_LE(maxAbsDiff(fast.at("far"), ref.at("far")), 1e-12);
}

TEST(TransientEquivalence, Fig5TlineReceiver) {
  const auto fast = runFig5(TransientSolverMode::kReuseFactorization);
  const auto ref = runFig5(TransientSolverMode::kFullRestamp);
  EXPECT_TRUE(fast.converged);
  EXPECT_LE(maxAbsDiff(fast.at("near"), ref.at("near")), 1e-12);
  EXPECT_LE(maxAbsDiff(fast.at("far"), ref.at("far")), 1e-12);
}

// Nonlinear driver+receiver-style circuit mixing every nonlinear element
// kind with linear companions, so static and dynamic stamps overlap on
// shared matrix entries. The MOSFETs swap drain/source orientation as vds
// changes sign, which exercises the sparse path's pattern-growth handling.
TransientResult runMixedNonlinear(TransientSolverMode mode) {
  Circuit c;
  const int vdd = c.addNode();
  const int gate = c.addNode();
  const int out = c.addNode();
  c.addVoltageSource(vdd, Circuit::kGround, [](double) { return 1.8; });
  c.addVoltageSource(gate, Circuit::kGround, [](double t) {
    return 0.9 + 0.9 * std::sin(2.0 * M_PI * 5e8 * t);
  });
  MosfetParams nmos;
  c.addMosfet(out, gate, Circuit::kGround, nmos);
  MosfetParams pmos;
  pmos.type = MosfetParams::Type::kPmos;
  c.addMosfet(out, gate, vdd, pmos);
  c.addDiode(Circuit::kGround, out);  // clamp below ground
  c.addDiode(out, vdd);               // clamp above the rail
  c.addResistor(out, Circuit::kGround, 10e3);
  c.addCapacitor(out, Circuit::kGround, 0.5e-12);
  TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_stop = 4e-9;
  opt.solver_mode = mode;
  return runTransient(c, opt, {{"out", out, 0}});
}

TEST(TransientEquivalence, MixedDiodeMosfetCircuit) {
  const auto fast = runMixedNonlinear(TransientSolverMode::kReuseFactorization);
  const auto ref = runMixedNonlinear(TransientSolverMode::kFullRestamp);
  EXPECT_TRUE(fast.converged);
  EXPECT_LE(maxAbsDiff(fast.at("out"), ref.at("out")), 1e-12);
  // Every iteration dirties the matrix, so the counts match the reference.
  EXPECT_EQ(fast.lu_factorizations, ref.lu_factorizations);
}

// ------------------------------------------------------------------ sparse

TEST(TransientEquivalence, SparseLinearTlineSingleFactorization) {
  const auto sp = runLinearTline(TransientSolverMode::kSparse);
  const auto ref = runLinearTline(TransientSolverMode::kReuseFactorization);
  EXPECT_TRUE(sp.converged);
  EXPECT_LE(maxAbsDiff(sp.at("near"), ref.at("near")), kSparseTol);
  EXPECT_LE(maxAbsDiff(sp.at("far"), ref.at("far")), kSparseTol);
  // Purely linear: the sparse engine must also factor exactly once.
  EXPECT_EQ(sp.lu_factorizations, 1);
}

TEST(TransientEquivalence, SparseRlgcLadderSingleFactorization) {
  const auto sp = runRlgcLadder(TransientSolverMode::kSparse);
  const auto ref = runRlgcLadder(TransientSolverMode::kReuseFactorization);
  EXPECT_TRUE(sp.converged);
  EXPECT_LE(maxAbsDiff(sp.at("in"), ref.at("in")), kSparseTol);
  EXPECT_LE(maxAbsDiff(sp.at("out"), ref.at("out")), kSparseTol);
  EXPECT_EQ(sp.lu_factorizations, 1);
}

TEST(TransientEquivalence, SparseFig4TlineRcLoad) {
  const auto sp = runFig4(TransientSolverMode::kSparse);
  const auto ref = runFig4(TransientSolverMode::kReuseFactorization);
  EXPECT_TRUE(sp.converged);
  EXPECT_LE(maxAbsDiff(sp.at("near"), ref.at("near")), kSparseTol);
  EXPECT_LE(maxAbsDiff(sp.at("far"), ref.at("far")), kSparseTol);
}

TEST(TransientEquivalence, SparseFig5TlineReceiver) {
  const auto sp = runFig5(TransientSolverMode::kSparse);
  const auto ref = runFig5(TransientSolverMode::kReuseFactorization);
  EXPECT_TRUE(sp.converged);
  EXPECT_LE(maxAbsDiff(sp.at("near"), ref.at("near")), kSparseTol);
  EXPECT_LE(maxAbsDiff(sp.at("far"), ref.at("far")), kSparseTol);
}

TEST(TransientEquivalence, SparseMixedDiodeMosfetCircuit) {
  const auto sp = runMixedNonlinear(TransientSolverMode::kSparse);
  const auto ref = runMixedNonlinear(TransientSolverMode::kReuseFactorization);
  EXPECT_TRUE(sp.converged);
  EXPECT_LE(maxAbsDiff(sp.at("out"), ref.at("out")), kSparseTol);
}

TEST(TransientEquivalence, SparseCrosstalkCoupledLinesSingleFactorization) {
  const auto sp = runCrosstalkCoupled(TransientSolverMode::kSparse, false);
  const auto ref = runCrosstalkCoupled(TransientSolverMode::kReuseFactorization, false);
  EXPECT_TRUE(sp.converged);
  for (const char* probe : {"agg_far", "vic_near", "vic_far"})
    EXPECT_LE(maxAbsDiff(sp.at(probe), ref.at(probe)), kSparseTol) << probe;
  EXPECT_EQ(sp.lu_factorizations, 1);
  EXPECT_EQ(ref.lu_factorizations, 1);
}

TEST(TransientEquivalence, SparseCrosstalkWithClampDiodes) {
  const auto sp = runCrosstalkCoupled(TransientSolverMode::kSparse, true);
  const auto ref = runCrosstalkCoupled(TransientSolverMode::kReuseFactorization, true);
  EXPECT_TRUE(sp.converged);
  for (const char* probe : {"agg_far", "vic_near", "vic_far"})
    EXPECT_LE(maxAbsDiff(sp.at(probe), ref.at(probe)), kSparseTol) << probe;
}

}  // namespace
}  // namespace fdtdmm
