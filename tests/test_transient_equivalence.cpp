// Transient-solver equivalence suite: the static/dynamic-split engine with
// cached LU factorizations (TransientSolverMode::kReuseFactorization) must
// reproduce the legacy full-restamp path (kFullRestamp) on the paper's
// Fig. 4/5 t-line scenarios and on nonlinear driver+receiver circuits —
// bitwise on purely linear circuits, to <= 1e-12 otherwise (static and
// dynamic matrix contributions are summed in a different order, which can
// perturb shared Jacobian entries by an ulp).
#include "circuit/transient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/rlgc_line.h"
#include "devices/cmos_driver.h"
#include "signal/bit_pattern.h"

namespace fdtdmm {
namespace {

// Each mode builds its own circuit instance: elements carry per-run state
// (companion histories, line delay buffers), so circuits are single-use.
double maxAbsDiff(const Waveform& a, const Waveform& b) {
  EXPECT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.dt(), b.dt());
  double m = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t k = 0; k < n; ++k) m = std::max(m, std::abs(a[k] - b[k]));
  return m;
}

// ------------------------------------------------------------------ linear

// Fig. 4 topology with a Thevenin drive instead of the CMOS driver: ideal
// line (Zc = 131 ohm, Td = 0.4 ns) into the 1 pF || 500 ohm far-end load.
// Purely linear, so the two paths must agree bitwise and the reuse path
// must factor exactly once.
TransientResult runLinearTline(TransientSolverMode mode) {
  const BitPattern pattern("010", 2e-9);
  Circuit c;
  const int src = c.addNode();
  const int near = c.addNode();
  const int far = c.addNode();
  c.addVoltageSource(src, Circuit::kGround,
                     [pattern](double t) { return 1.8 * pattern.levelAt(t); });
  c.addResistor(src, near, 60.0);
  c.addIdealLine(near, Circuit::kGround, far, Circuit::kGround, 131.0, 0.4e-9);
  c.addResistor(far, Circuit::kGround, 500.0);
  c.addCapacitor(far, Circuit::kGround, 1e-12);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 5e-9;
  opt.settle_time = 1e-9;
  opt.solver_mode = mode;
  return runTransient(c, opt, {{"near", near, 0}, {"far", far, 0}});
}

TEST(TransientEquivalence, LinearTlineBitwiseAndSingleFactorization) {
  const auto fast = runLinearTline(TransientSolverMode::kReuseFactorization);
  const auto ref = runLinearTline(TransientSolverMode::kFullRestamp);
  EXPECT_TRUE(fast.converged);
  EXPECT_TRUE(ref.converged);
  EXPECT_EQ(fast.total_newton_iterations, ref.total_newton_iterations);
  EXPECT_EQ(maxAbsDiff(fast.at("near"), ref.at("near")), 0.0);
  EXPECT_EQ(maxAbsDiff(fast.at("far"), ref.at("far")), 0.0);
  // No nonlinear element ever touches the matrix: one factorization total.
  EXPECT_EQ(fast.lu_factorizations, 1);
  // The reference path factors at every Newton iteration.
  EXPECT_EQ(ref.lu_factorizations, ref.total_newton_iterations);
}

TEST(TransientEquivalence, RlgcLadderBitwiseAndSingleFactorization) {
  auto run = [](TransientSolverMode mode) {
    Circuit c;
    const int src = c.addNode();
    const int in = c.addNode();
    const int out = c.addNode();
    c.addVoltageSource(src, Circuit::kGround,
                       [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
    c.addResistor(src, in, 50.0);
    RlgcParams p;
    p.r = 2.0;
    p.g = 1e-4;
    p.segments = 16;
    buildRlgcLine(c, in, Circuit::kGround, out, Circuit::kGround, p);
    c.addResistor(out, Circuit::kGround, 120.0);
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 2e-9;
    opt.solver_mode = mode;
    return runTransient(c, opt, {{"in", in, 0}, {"out", out, 0}});
  };
  const auto fast = run(TransientSolverMode::kReuseFactorization);
  const auto ref = run(TransientSolverMode::kFullRestamp);
  EXPECT_EQ(maxAbsDiff(fast.at("in"), ref.at("in")), 0.0);
  EXPECT_EQ(maxAbsDiff(fast.at("out"), ref.at("out")), 0.0);
  EXPECT_EQ(fast.lu_factorizations, 1);
}

// --------------------------------------------------------------- nonlinear

// Fig. 4 proper: transistor-level CMOS driver, ideal line, linear RC load.
TransientResult runFig4(TransientSolverMode mode) {
  const BitPattern pattern("010", 2e-9);
  Circuit c;
  auto drv = buildCmosDriver(c, CmosDriverParams{}, [pattern](double t) {
    return static_cast<double>(pattern.levelAt(t));
  });
  const int far = c.addNode();
  c.addIdealLine(drv.pad, Circuit::kGround, far, Circuit::kGround, 131.0, 0.4e-9);
  c.addResistor(far, Circuit::kGround, 500.0);
  c.addCapacitor(far, Circuit::kGround, 1e-12);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 5e-9;
  opt.settle_time = 3e-9;
  opt.solver_mode = mode;
  return runTransient(c, opt, {{"near", drv.pad, 0}, {"far", far, 0}});
}

// Fig. 5: same line, far end terminated by the transistor-level receiver.
TransientResult runFig5(TransientSolverMode mode) {
  const BitPattern pattern("010", 2e-9);
  Circuit c;
  auto drv = buildCmosDriver(c, CmosDriverParams{}, [pattern](double t) {
    return static_cast<double>(pattern.levelAt(t));
  });
  const int far = c.addNode();
  c.addIdealLine(drv.pad, Circuit::kGround, far, Circuit::kGround, 131.0, 0.4e-9);
  auto rcv = buildCmosReceiver(c, CmosReceiverParams{});
  c.addResistor(far, rcv.pad, 1e-3);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 5e-9;
  opt.settle_time = 3e-9;
  opt.solver_mode = mode;
  return runTransient(c, opt, {{"near", drv.pad, 0}, {"far", far, 0}});
}

TEST(TransientEquivalence, Fig4TlineRcLoad) {
  const auto fast = runFig4(TransientSolverMode::kReuseFactorization);
  const auto ref = runFig4(TransientSolverMode::kFullRestamp);
  EXPECT_TRUE(fast.converged);
  EXPECT_LE(maxAbsDiff(fast.at("near"), ref.at("near")), 1e-12);
  EXPECT_LE(maxAbsDiff(fast.at("far"), ref.at("far")), 1e-12);
}

TEST(TransientEquivalence, Fig5TlineReceiver) {
  const auto fast = runFig5(TransientSolverMode::kReuseFactorization);
  const auto ref = runFig5(TransientSolverMode::kFullRestamp);
  EXPECT_TRUE(fast.converged);
  EXPECT_LE(maxAbsDiff(fast.at("near"), ref.at("near")), 1e-12);
  EXPECT_LE(maxAbsDiff(fast.at("far"), ref.at("far")), 1e-12);
}

TEST(TransientEquivalence, MixedDiodeMosfetCircuit) {
  // Nonlinear driver+receiver-style circuit mixing every nonlinear element
  // kind with linear companions, so static and dynamic stamps overlap on
  // shared matrix entries.
  auto run = [](TransientSolverMode mode) {
    Circuit c;
    const int vdd = c.addNode();
    const int gate = c.addNode();
    const int out = c.addNode();
    c.addVoltageSource(vdd, Circuit::kGround, [](double) { return 1.8; });
    c.addVoltageSource(gate, Circuit::kGround, [](double t) {
      return 0.9 + 0.9 * std::sin(2.0 * M_PI * 5e8 * t);
    });
    MosfetParams nmos;
    c.addMosfet(out, gate, Circuit::kGround, nmos);
    MosfetParams pmos;
    pmos.type = MosfetParams::Type::kPmos;
    c.addMosfet(out, gate, vdd, pmos);
    c.addDiode(Circuit::kGround, out);  // clamp below ground
    c.addDiode(out, vdd);               // clamp above the rail
    c.addResistor(out, Circuit::kGround, 10e3);
    c.addCapacitor(out, Circuit::kGround, 0.5e-12);
    TransientOptions opt;
    opt.dt = 1e-12;
    opt.t_stop = 4e-9;
    opt.solver_mode = mode;
    return runTransient(c, opt, {{"out", out, 0}});
  };
  const auto fast = run(TransientSolverMode::kReuseFactorization);
  const auto ref = run(TransientSolverMode::kFullRestamp);
  EXPECT_TRUE(fast.converged);
  EXPECT_LE(maxAbsDiff(fast.at("out"), ref.at("out")), 1e-12);
  // Every iteration dirties the matrix, so the counts match the reference.
  EXPECT_EQ(fast.lu_factorizations, ref.lu_factorizations);
}

}  // namespace
}  // namespace fdtdmm
