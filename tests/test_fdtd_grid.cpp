// Unit tests for the Yee grid, materials, and coefficient baking.
#include "fdtd/grid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace fdtdmm {
namespace {

using namespace constants;

TEST(Grid3, CourantTimeStep) {
  GridSpec s;
  s.nx = s.ny = s.nz = 10;
  s.dx = s.dy = s.dz = 1e-3;
  s.courant = 1.0;
  Grid3 g(s);
  const double dt_expect = 1e-3 / (kC0 * std::sqrt(3.0));
  EXPECT_NEAR(g.dt(), dt_expect, dt_expect * 1e-12);
}

TEST(Grid3, Validation) {
  GridSpec s;
  s.nx = 1;
  EXPECT_THROW(Grid3{s}, std::invalid_argument);
  GridSpec s2;
  s2.dx = 0.0;
  EXPECT_THROW(Grid3{s2}, std::invalid_argument);
  GridSpec s3;
  s3.courant = 1.5;
  EXPECT_THROW(Grid3{s3}, std::invalid_argument);
}

TEST(Grid3, VacuumBakeCoefficients) {
  GridSpec s;
  s.nx = s.ny = s.nz = 6;
  Grid3 g(s);
  g.bake();
  const std::size_t id = g.idx(2, 3, 3);
  EXPECT_DOUBLE_EQ(g.caEx()[id], 1.0);
  EXPECT_NEAR(g.cbEx()[id], g.dt() / kEps0, 1e-9);
  EXPECT_TRUE(g.materialEdges().empty());
  EXPECT_THROW(g.bake(), std::logic_error);
}

TEST(Grid3, DielectricEdgeAveraging) {
  GridSpec s;
  s.nx = s.ny = s.nz = 8;
  Grid3 g(s);
  g.setDielectricBox(0, 8, 0, 8, 0, 4, 4.0);  // lower half eps_r = 4
  g.bake();
  // An Ez edge fully inside the dielectric: eps = 4 eps0.
  EXPECT_NEAR(g.edgeEps(Axis::kZ, 4, 4, 2), 4.0 * kEps0, 1e-22);
  // An Ex edge on the interface plane k = 4 averages 2 cells of each:
  // (2*4 + 2*1)/4 = 2.5 eps0.
  EXPECT_NEAR(g.edgeEps(Axis::kX, 3, 4, 4), 2.5 * kEps0, 1e-22);
  EXPECT_FALSE(g.materialEdges().empty());
}

TEST(Grid3, ConductivityEntersCa) {
  GridSpec s;
  s.nx = s.ny = s.nz = 6;
  Grid3 g(s);
  g.setDielectricBox(0, 6, 0, 6, 0, 6, 1.0, 0.01);
  g.bake();
  const std::size_t id = g.idx(3, 3, 3);
  const double h = 0.01 * g.dt() / (2.0 * kEps0);
  EXPECT_NEAR(g.caEz()[id], (1.0 - h) / (1.0 + h), 1e-12);
  EXPECT_NEAR(g.edgeSigma(Axis::kZ, 3, 3, 3), 0.01, 1e-15);
}

TEST(Grid3, PecPlateMarksTangentialEdges) {
  GridSpec s;
  s.nx = s.ny = s.nz = 8;
  Grid3 g(s);
  g.pecPlateZ(4, 2, 6, 2, 6);
  g.bake();
  // Tangential Ex on the plate is PEC.
  EXPECT_TRUE(g.isPecEdge(Axis::kX, 3, 3, 4));
  EXPECT_TRUE(g.isPecEdge(Axis::kY, 3, 3, 4));
  // Normal Ez through the plate is not.
  EXPECT_FALSE(g.isPecEdge(Axis::kZ, 3, 3, 4));
  // Outside the plate: untouched.
  EXPECT_FALSE(g.isPecEdge(Axis::kX, 0, 0, 4));
  // Baked coefficients are zero on PEC edges.
  EXPECT_DOUBLE_EQ(g.caEx()[g.idx(3, 3, 4)], 0.0);
  EXPECT_DOUBLE_EQ(g.cbEx()[g.idx(3, 3, 4)], 0.0);
}

TEST(Grid3, PecWireAndDedup) {
  GridSpec s;
  s.nx = s.ny = s.nz = 8;
  Grid3 g(s);
  g.pecWireZ(4, 4, 2, 5);
  const std::size_t before = g.pecEdges().size();
  EXPECT_EQ(before, 3u);
  g.pecWireZ(4, 4, 2, 5);  // idempotent
  EXPECT_EQ(g.pecEdges().size(), before);
  EXPECT_TRUE(g.isPecEdge(Axis::kZ, 4, 4, 3));
}

TEST(Grid3, GeometryValidation) {
  GridSpec s;
  s.nx = s.ny = s.nz = 8;
  Grid3 g(s);
  EXPECT_THROW(g.setDielectricBox(0, 9, 0, 8, 0, 8, 4.0), std::invalid_argument);
  EXPECT_THROW(g.setDielectricBox(2, 2, 0, 8, 0, 8, 4.0), std::invalid_argument);
  EXPECT_THROW(g.setDielectricBox(0, 8, 0, 8, 0, 8, 0.5), std::invalid_argument);
  EXPECT_THROW(g.pecPlateZ(9, 0, 4, 0, 4), std::invalid_argument);
  EXPECT_THROW(g.pecEdge(Axis::kZ, 0, 0, 8), std::invalid_argument);
  g.bake();
  EXPECT_THROW(g.pecPlateZ(4, 0, 4, 0, 4), std::logic_error);
  EXPECT_THROW(g.setDielectricBox(0, 4, 0, 4, 0, 4, 2.0), std::logic_error);
}

TEST(Grid3, EdgeCenterPositions) {
  GridSpec s;
  s.nx = s.ny = s.nz = 4;
  s.dx = 1.0;
  s.dy = 2.0;
  s.dz = 3.0;
  Grid3 g(s);
  double x, y, z;
  g.edgeCenter(Axis::kX, 1, 2, 3, x, y, z);
  EXPECT_DOUBLE_EQ(x, 1.5);
  EXPECT_DOUBLE_EQ(y, 4.0);
  EXPECT_DOUBLE_EQ(z, 9.0);
  g.edgeCenter(Axis::kZ, 0, 0, 0, x, y, z);
  EXPECT_DOUBLE_EQ(z, 1.5);
}

}  // namespace
}  // namespace fdtdmm
