// Tests for eye-diagram analysis, including an end-to-end long-PRBS run of
// the hybrid channel (the strongest accuracy test of the driver weight
// scheduling across consecutive transitions).
#include "signal/eye.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/tline_scenario.h"
#include "math/stats.h"
#include "math/rng.h"
#include "signal/sources.h"

namespace fdtdmm {
namespace {

TEST(Eye, CleanTrapezoidFullyOpen) {
  const BitPattern pat("01101001", 2e-9);
  const auto f = trapezoidFromPattern(pat, 0.0, 1.8, 0.3e-9);
  const Waveform w = sampleFunction(f, 0.0, 16e-9, 10e-12);
  const EyeMetrics m = measureEye(w, pat);
  EXPECT_TRUE(m.open);
  EXPECT_NEAR(m.eye_height, 1.8, 0.02);
  EXPECT_NEAR(m.level_high, 1.8, 0.02);
  EXPECT_NEAR(m.level_low, 0.0, 0.02);
}

TEST(Eye, NoiseClosesTheEyeProportionally) {
  const BitPattern pat("0110100110", 2e-9);
  const auto f = trapezoidFromPattern(pat, 0.0, 1.0, 0.3e-9);
  Rng rng(5);
  Waveform w = sampleFunction(
      [&](double t) { return f(t); }, 0.0, 20e-9, 10e-12);
  for (double& s : w.samples()) s += 0.15 * (rng.uniform() - 0.5);
  const EyeMetrics m = measureEye(w, pat);
  EXPECT_TRUE(m.open);
  EXPECT_LT(m.eye_height, 1.0 - 0.1);  // noise eats at least its amplitude
  EXPECT_GT(m.eye_height, 0.7);
}

TEST(Eye, SlowChannelClosesEye) {
  // First-order lowpass with tau comparable to the UI: the eye degrades.
  const BitPattern pat("010101", 1e-9);
  const auto f = trapezoidFromPattern(pat, 0.0, 1.0, 0.1e-9);
  const double tau = 0.8e-9;
  // Discrete RC filter of the trapezoid.
  const double dt = 5e-12;
  Vector s;
  double y = 0.0;
  for (double t = 0.0; t <= 6e-9; t += dt) {
    y += dt / tau * (f(t) - y);
    s.push_back(y);
  }
  const Waveform w(0.0, dt, std::move(s));
  const EyeMetrics m = measureEye(w, pat);
  EXPECT_LT(m.eye_height, 0.5);  // heavily degraded
}

TEST(Eye, WindowSamplingIsGridExactPerBit) {
  // Window [bit + 0.5, bit + 0.7] UI on a dt = UI/10 grid covers exactly
  // the three samples 10*bit + {5, 6, 7} of every bit. The old
  // `t += t_step` accumulation drifted, so late bits gained/lost samples
  // and the window-end sample could be skipped. Encode the check in the
  // mean levels: every high-bit window holds {2, 2, 3} (mean 7/3), every
  // low-bit window {0, 0, -1} (mean -1/3); any drift moves the means.
  const std::size_t n_bits = 64;
  std::string bits;
  for (std::size_t b = 0; b < n_bits; ++b) bits += (b % 2 == 0) ? '0' : '1';
  const double ui = 1e-9;
  const double dt = ui / 10.0;
  const BitPattern pat(bits, ui);

  Vector s(n_bits * 10 + 1, 0.0);
  for (std::size_t b = 0; b < n_bits; ++b) {
    const bool high = b % 2 != 0;
    for (std::size_t j = 0; j < 10; ++j) s[b * 10 + j] = high ? 2.0 : 0.0;
    s[b * 10 + 7] = high ? 3.0 : -1.0;  // sentinel at the window-end sample
  }
  const Waveform w(0.0, dt, std::move(s));

  EyeOptions opt;
  opt.skip_bits = 2;
  opt.window_start = 0.5;
  opt.window_width = 0.2;
  const EyeMetrics m = measureEye(w, pat, opt);
  EXPECT_NEAR(m.level_high, 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.level_low, -1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.eye_height, 2.0);  // min(HIGH) = 2, max(LOW) = 0
}

TEST(Eye, CoarseWaveformNarrowWindowStillMeasures) {
  // Window (0.15 UI) narrower than the sample step (0.4 UI): no grid sample
  // falls inside any bit's window, so each bit contributes one interpolated
  // sample at the window center instead of being dropped.
  const BitPattern pat("0101", 1e-9);
  const Waveform w(0.0, 0.4e-9, {0.0, 0.0, 0.5, 1.0, 1.0, 0.5, 0.0, 0.0, 0.5, 1.0, 1.0});
  EyeOptions opt;
  opt.skip_bits = 1;
  opt.window_start = 0.1;
  opt.window_width = 0.15;
  const EyeMetrics m = measureEye(w, pat, opt);
  EXPECT_TRUE(std::isfinite(m.level_high));
  EXPECT_TRUE(std::isfinite(m.level_low));
  EXPECT_GT(m.level_high, m.level_low);
}

TEST(Eye, Validation) {
  const BitPattern pat("0101", 1e-9);
  EXPECT_THROW(measureEye(Waveform(), pat), std::invalid_argument);
  const Waveform w(0.0, 1e-12, Vector(100, 0.0));
  EyeOptions bad;
  bad.window_start = 0.9;
  bad.window_width = 0.3;
  EXPECT_THROW(measureEye(w, pat, bad), std::invalid_argument);
  const BitPattern constant("0000", 1e-9);
  const Waveform w2(0.0, 0.1e-9, Vector(100, 0.0));
  EXPECT_THROW(measureEye(w2, constant), std::invalid_argument);
}

TEST(Eye, HybridChannelPrbsEndToEnd) {
  // 14-bit pseudo-random pattern through the paper's line: the macromodel
  // channel (1D FDTD) must track the transistor-level SPICE reference and
  // produce an open far-end eye of comparable height. This exercises the
  // switching-weight scheduling on back-to-back and isolated transitions.
  const std::string bits = "01101001100101";
  TlineScenario cfg;
  cfg.pattern = bits;
  cfg.t_stop = 2e-9 * static_cast<double>(bits.size());
  cfg.load = FarEndLoad::kLinearRc;
  const auto ref = runSpiceTransistorTline(cfg, defaultDriverDevice(),
                                           defaultReceiverDevice());
  const auto hybrid = runFdtd1dTline(cfg, defaultDriverModel(), defaultReceiverModel());

  // Waveform-level agreement across the whole pattern.
  Vector va, vb;
  for (double t = 0.0; t <= cfg.t_stop; t += 20e-12) {
    va.push_back(hybrid.v_far.value(t));
    vb.push_back(ref.v_far.value(t));
  }
  EXPECT_LT(nrmse(va, vb), 0.05);

  // Eye metrics agree.
  const BitPattern pat(bits, 2e-9);
  EyeOptions eo;
  eo.skip_bits = 2;
  const EyeMetrics m_ref = measureEye(ref.v_far, pat, eo);
  const EyeMetrics m_hyb = measureEye(hybrid.v_far, pat, eo);
  EXPECT_TRUE(m_ref.open);
  EXPECT_TRUE(m_hyb.open);
  EXPECT_NEAR(m_hyb.eye_height, m_ref.eye_height, 0.2);
  EXPECT_NEAR(m_hyb.level_high, m_ref.level_high, 0.1);
  EXPECT_NEAR(m_hyb.level_low, m_ref.level_low, 0.1);
}

}  // namespace
}  // namespace fdtdmm
