// Tests for eye-diagram analysis, including an end-to-end long-PRBS run of
// the hybrid channel (the strongest accuracy test of the driver weight
// scheduling across consecutive transitions).
#include "signal/eye.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/tline_scenario.h"
#include "math/stats.h"
#include "math/rng.h"
#include "signal/sources.h"

namespace fdtdmm {
namespace {

TEST(Eye, CleanTrapezoidFullyOpen) {
  const BitPattern pat("01101001", 2e-9);
  const auto f = trapezoidFromPattern(pat, 0.0, 1.8, 0.3e-9);
  const Waveform w = sampleFunction(f, 0.0, 16e-9, 10e-12);
  const EyeMetrics m = measureEye(w, pat);
  EXPECT_TRUE(m.open);
  EXPECT_NEAR(m.eye_height, 1.8, 0.02);
  EXPECT_NEAR(m.level_high, 1.8, 0.02);
  EXPECT_NEAR(m.level_low, 0.0, 0.02);
}

TEST(Eye, NoiseClosesTheEyeProportionally) {
  const BitPattern pat("0110100110", 2e-9);
  const auto f = trapezoidFromPattern(pat, 0.0, 1.0, 0.3e-9);
  Rng rng(5);
  Waveform w = sampleFunction(
      [&](double t) { return f(t); }, 0.0, 20e-9, 10e-12);
  for (double& s : w.samples()) s += 0.15 * (rng.uniform() - 0.5);
  const EyeMetrics m = measureEye(w, pat);
  EXPECT_TRUE(m.open);
  EXPECT_LT(m.eye_height, 1.0 - 0.1);  // noise eats at least its amplitude
  EXPECT_GT(m.eye_height, 0.7);
}

TEST(Eye, SlowChannelClosesEye) {
  // First-order lowpass with tau comparable to the UI: the eye degrades.
  const BitPattern pat("010101", 1e-9);
  const auto f = trapezoidFromPattern(pat, 0.0, 1.0, 0.1e-9);
  const double tau = 0.8e-9;
  // Discrete RC filter of the trapezoid.
  const double dt = 5e-12;
  Vector s;
  double y = 0.0;
  for (double t = 0.0; t <= 6e-9; t += dt) {
    y += dt / tau * (f(t) - y);
    s.push_back(y);
  }
  const Waveform w(0.0, dt, std::move(s));
  const EyeMetrics m = measureEye(w, pat);
  EXPECT_LT(m.eye_height, 0.5);  // heavily degraded
}

TEST(Eye, Validation) {
  const BitPattern pat("0101", 1e-9);
  EXPECT_THROW(measureEye(Waveform(), pat), std::invalid_argument);
  const Waveform w(0.0, 1e-12, Vector(100, 0.0));
  EyeOptions bad;
  bad.window_start = 0.9;
  bad.window_width = 0.3;
  EXPECT_THROW(measureEye(w, pat, bad), std::invalid_argument);
  const BitPattern constant("0000", 1e-9);
  const Waveform w2(0.0, 0.1e-9, Vector(100, 0.0));
  EXPECT_THROW(measureEye(w2, constant), std::invalid_argument);
}

TEST(Eye, HybridChannelPrbsEndToEnd) {
  // 14-bit pseudo-random pattern through the paper's line: the macromodel
  // channel (1D FDTD) must track the transistor-level SPICE reference and
  // produce an open far-end eye of comparable height. This exercises the
  // switching-weight scheduling on back-to-back and isolated transitions.
  const std::string bits = "01101001100101";
  TlineScenario cfg;
  cfg.pattern = bits;
  cfg.t_stop = 2e-9 * static_cast<double>(bits.size());
  cfg.load = FarEndLoad::kLinearRc;
  const auto ref = runSpiceTransistorTline(cfg, defaultDriverDevice(),
                                           defaultReceiverDevice());
  const auto hybrid = runFdtd1dTline(cfg, defaultDriverModel(), defaultReceiverModel());

  // Waveform-level agreement across the whole pattern.
  Vector va, vb;
  for (double t = 0.0; t <= cfg.t_stop; t += 20e-12) {
    va.push_back(hybrid.v_far.value(t));
    vb.push_back(ref.v_far.value(t));
  }
  EXPECT_LT(nrmse(va, vb), 0.05);

  // Eye metrics agree.
  const BitPattern pat(bits, 2e-9);
  EyeOptions eo;
  eo.skip_bits = 2;
  const EyeMetrics m_ref = measureEye(ref.v_far, pat, eo);
  const EyeMetrics m_hyb = measureEye(hybrid.v_far, pat, eo);
  EXPECT_TRUE(m_ref.open);
  EXPECT_TRUE(m_hyb.open);
  EXPECT_NEAR(m_hyb.eye_height, m_ref.eye_height, 0.2);
  EXPECT_NEAR(m_hyb.level_high, m_ref.level_high, 0.1);
  EXPECT_NEAR(m_hyb.level_low, m_ref.level_low, 0.1);
}

}  // namespace
}  // namespace fdtdmm
