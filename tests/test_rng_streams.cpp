// Pins the counter-based splittable RNG (math/rng.h) that the Monte Carlo
// sweep axes draw from. The exact values matter: every stochastic sweep's
// sampled parameters — and hence labels, CSV/JSON exports, and cached
// results — are a pure function of splitStream(seed, stream, draw), so a
// silent change to the mixer would invalidate every recorded ensemble.
#include <gtest/gtest.h>

#include <set>

#include "math/rng.h"

namespace fdtdmm {
namespace {

TEST(RngStreams, Fnv1a64PinnedValues) {
  // Offset basis for the empty string, and one realistic stream id of the
  // "<axis>/<param>" form the sweep expander hashes.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("mc/zc"), 0x05d8c7b75eb53b89ULL);
  EXPECT_NE(fnv1a64("mc/zc"), fnv1a64("mc/zd"));
  EXPECT_NE(fnv1a64("mc/zc"), fnv1a64("mc2/zc"));
}

TEST(RngStreams, Mix64PinnedValues) {
  EXPECT_EQ(mix64(0), 0x0ULL);
  EXPECT_EQ(mix64(1), 0x5692161d100b05e5ULL);
}

TEST(RngStreams, SplitStreamPinnedValues) {
  EXPECT_EQ(splitStream(42, 7, 0).next(), 0x56223468e6f3abbbULL);
  EXPECT_EQ(splitStream(42, 7, 1).next(), 0x243c45db99f7396cULL);
  EXPECT_EQ(splitStream(43, 7, 0).next(), 0x53c742f8b4b68367ULL);
}

TEST(RngStreams, SplitStreamIsAPureFunctionOfItsInputs) {
  // Re-deriving the same (seed, stream, draw) gives the same generator —
  // this is the property that makes draws independent of evaluation order
  // and worker count.
  Rng a = splitStream(7, 11, 13);
  Rng b = splitStream(7, 11, 13);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngStreams, SplitStreamSeparatesSeedsStreamsAndDraws) {
  // First outputs across a small grid of (seed, stream, draw) must all be
  // distinct — a weak mixer that XOR-folds its inputs would collide here.
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 0; seed < 4; ++seed)
    for (std::uint64_t stream = 0; stream < 4; ++stream)
      for (std::uint64_t draw = 0; draw < 4; ++draw)
        seen.insert(splitStream(seed, stream, draw).next());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(RngStreams, UniformOpenStaysStrictlyInsideUnitInterval) {
  // (0, 1) exclusive: normalQuantile(u) must never see 0 or 1, where the
  // inverse CDF diverges.
  Rng rng(123);
  EXPECT_NEAR(rng.uniformOpen(), 0.70649122176370671, 1e-16);
  EXPECT_NEAR(rng.uniformOpen(), 0.97659664832502702, 1e-16);
  Rng many(987654321);
  for (int i = 0; i < 10000; ++i) {
    const double u = many.uniformOpen();
    ASSERT_GT(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace fdtdmm
