// Physics tests for the 3D FDTD solver: lumped elements (Eq. 8), guided
// waves on a parallel-strip line, and absorbing boundaries.
#include "fdtd/solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "signal/linear_ports.h"

namespace fdtdmm {
namespace {

TEST(FdtdSolver, QuiescentWithoutSources) {
  GridSpec s;
  s.nx = s.ny = s.nz = 8;
  Grid3 g(s);
  g.bake();
  FdtdSolver solver(std::move(g));
  solver.run(20);
  double acc = 0.0;
  for (std::size_t i = 0; i <= 8; ++i)
    for (std::size_t j = 0; j <= 8; ++j)
      for (std::size_t k = 0; k <= 8; ++k)
        acc += std::abs(solver.grid().ez(i, j, k)) + std::abs(solver.grid().hx(i, j, k));
  EXPECT_DOUBLE_EQ(acc, 0.0);
}

TEST(FdtdSolver, RequiresBakedGrid) {
  GridSpec s;
  s.nx = s.ny = s.nz = 4;
  Grid3 g(s);
  EXPECT_THROW(FdtdSolver{std::move(g)}, std::invalid_argument);
}

/// Builds a small parallel-strip line along x with a Thevenin source at one
/// end and a load port at the other; returns the solver ready to run.
struct StripLineFixture {
  std::unique_ptr<FdtdSolver> solver;
  LumpedPort* src = nullptr;
  LumpedPort* load = nullptr;
  double dt = 0.0;

  void build(PortModelPtr source_model, PortModelPtr load_model,
             std::size_t nx = 60, std::size_t gap = 1) {
    GridSpec s;
    s.nx = nx;
    s.ny = 14;
    s.nz = 12 + gap;
    s.dx = s.dy = s.dz = 1e-3;
    Grid3 g(s);
    const std::size_t x0 = 5, x1 = nx - 5;
    const std::size_t j0 = 5, j1 = 9;
    const std::size_t k0 = 5, k1 = k0 + gap;
    g.pecPlateZ(k0, x0, x1, j0, j1);
    g.pecPlateZ(k1, x0, x1, j0, j1);
    const std::size_t jc = 7;
    if (gap >= 2) {
      g.pecWireZ(x0, jc, k0, k1 - 1);
      g.pecWireZ(x1, jc, k0, k1 - 1);
    }
    g.bake();
    solver = std::make_unique<FdtdSolver>(std::move(g));
    dt = solver->dt();

    LumpedPortSpec sp;
    sp.i = x0;
    sp.j = jc;
    sp.k = k1 - 1;
    sp.sign = -1;  // + terminal on the upper strip
    sp.label = "src";
    src = solver->addLumpedPort(sp, std::move(source_model));
    LumpedPortSpec lp = sp;
    lp.i = x1;
    lp.label = "load";
    load = solver->addLumpedPort(lp, std::move(load_model));
  }
};

TEST(FdtdSolver, StripLinePropagationDelay) {
  // 50-cell strip separation 1 mm: wave speed is c0 in vacuum. Check the
  // load sees the step roughly len/c0 after launch.
  StripLineFixture f;
  const double rise = 30e-12;
  auto vs = [rise](double t) { return t < rise ? 1.0 * t / rise : 1.0; };
  f.build(std::make_shared<TheveninPort>(vs, 50.0),
          std::make_shared<ResistorPort>(150.0));
  const double len = 50e-3;  // x0=5 .. x1=55 in 1 mm cells... (60-10) cells
  const double t_fly = len / constants::kC0;  // ~167 ps
  f.solver->runUntil(3.0 * t_fly);
  const Waveform& vf = f.load->voltage();
  // Before arrival: ~0. After: some positive divided voltage.
  EXPECT_NEAR(vf.value(0.5 * t_fly), 0.0, 0.02);
  EXPECT_GT(vf.value(2.0 * t_fly), 0.2);
}

TEST(FdtdSolver, MatchedishLineSettlesToDivider) {
  // DC settling: source 1 V behind 50 ohm, load 150 ohm -> v_load = 0.75 V
  // regardless of the line impedance once reflections die out.
  StripLineFixture f;
  auto vs = [](double t) { return t < 50e-12 ? t / 50e-12 : 1.0; };
  f.build(std::make_shared<TheveninPort>(vs, 50.0),
          std::make_shared<ResistorPort>(150.0));
  f.solver->runUntil(4e-9);
  EXPECT_NEAR(f.load->voltage().samples().back(), 0.75, 0.05);
  EXPECT_NEAR(f.src->voltage().samples().back(), 0.75, 0.05);
}

TEST(FdtdSolver, NewtonCountSmallForLinearPorts) {
  StripLineFixture f;
  auto vs = [](double t) { return t < 50e-12 ? t / 50e-12 : 1.0; };
  f.build(std::make_shared<TheveninPort>(vs, 50.0),
          std::make_shared<ResistorPort>(100.0));
  f.solver->runUntil(1e-9);
  EXPECT_LE(f.solver->maxNewtonIterations(), 3);
  EXPECT_GT(f.src->totalNewtonIterations(), 0);
}

TEST(FdtdSolver, VoltageProbeMatchesPortVoltage) {
  StripLineFixture f;
  auto vs = [](double t) { return t < 50e-12 ? t / 50e-12 : 1.0; };
  f.build(std::make_shared<TheveninPort>(vs, 50.0),
          std::make_shared<ResistorPort>(100.0));
  // Probe across the load edge (gap = 1 cell at k=5..6, sign -1 like port).
  VoltageProbeSpec vp;
  vp.i = f.load->spec().i;
  vp.j = f.load->spec().j;
  vp.k0 = f.load->spec().k;
  vp.k1 = f.load->spec().k + 1;
  vp.sign = -1;
  const std::size_t probe = f.solver->addVoltageProbe(vp);
  f.solver->runUntil(1.5e-9);
  const Waveform& via_probe = f.solver->voltageProbe(probe);
  const Waveform& via_port = f.load->voltage();
  ASSERT_EQ(via_probe.size(), via_port.size());
  for (std::size_t k = 0; k < via_port.size(); k += 50) {
    EXPECT_NEAR(via_probe[k], via_port[k], 1e-9);
  }
}

TEST(FdtdSolver, EnergyDecaysWithAbsorbingBoundaries) {
  // Excite a short pulse and verify the domain energy decays to ~0 after
  // the wave exits through the Mur boundaries.
  StripLineFixture f;
  auto vs = [](double t) {
    const double u = (t - 100e-12) / 30e-12;
    return std::exp(-0.5 * u * u);
  };
  f.build(std::make_shared<TheveninPort>(vs, 50.0),
          std::make_shared<ResistorPort>(100.0));
  f.solver->runUntil(5e-9);
  const Grid3& g = f.solver->grid();
  double e2 = 0.0;
  for (std::size_t i = 0; i <= g.nx(); ++i)
    for (std::size_t j = 0; j <= g.ny(); ++j)
      for (std::size_t k = 0; k <= g.nz(); ++k)
        e2 += g.ez(i, j, k) * g.ez(i, j, k);
  EXPECT_LT(std::sqrt(e2), 2e-2);  // residual Mur-1 ringing only
}

TEST(FdtdSolver, PortPlacementValidation) {
  GridSpec s;
  s.nx = s.ny = s.nz = 8;
  Grid3 g(s);
  g.pecWireZ(4, 4, 3, 4);
  g.bake();
  FdtdSolver solver(std::move(g));
  LumpedPortSpec bad;
  bad.i = 0;  // boundary
  bad.j = 4;
  bad.k = 3;
  EXPECT_THROW(solver.addLumpedPort(bad, std::make_shared<OpenPort>()),
               std::invalid_argument);
  LumpedPortSpec on_pec;
  on_pec.i = 4;
  on_pec.j = 4;
  on_pec.k = 3;
  EXPECT_THROW(solver.addLumpedPort(on_pec, std::make_shared<OpenPort>()),
               std::invalid_argument);
  LumpedPortSpec ok;
  ok.i = 3;
  ok.j = 3;
  ok.k = 3;
  EXPECT_NO_THROW(solver.addLumpedPort(ok, std::make_shared<OpenPort>()));
  EXPECT_THROW(solver.voltageProbe(0), std::out_of_range);
}

TEST(FdtdSolver, ResistorAcrossGapSatisfiesOhm) {
  // Drive the line and check the recorded load current against v/R.
  StripLineFixture f;
  auto vs = [](double t) { return t < 50e-12 ? t / 50e-12 : 1.0; };
  f.build(std::make_shared<TheveninPort>(vs, 50.0),
          std::make_shared<ResistorPort>(100.0));
  f.solver->runUntil(2e-9);
  const Waveform& v = f.load->voltage();
  const Waveform& i = f.load->current();
  ASSERT_EQ(v.size(), i.size());
  for (std::size_t k = 0; k < v.size(); k += 100) {
    EXPECT_NEAR(i[k], v[k] / 100.0, 1e-9);
  }
}

}  // namespace
}  // namespace fdtdmm
