// Tests for the Branin ideal transmission line model against transmission
// line theory (reflection coefficients, delays, matched termination).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transient.h"

namespace fdtdmm {
namespace {

struct LineFixture {
  Circuit c;
  int src_node = 0, near = 0, far = 0;
  double zc = 50.0, td = 1e-9;

  // Step source with rs behind it, line, and load r_load.
  void build(double rs, double r_load) {
    src_node = c.addNode();
    near = c.addNode();
    far = c.addNode();
    c.addVoltageSource(src_node, Circuit::kGround,
                       [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
    c.addResistor(src_node, near, rs);
    c.addIdealLine(near, Circuit::kGround, far, Circuit::kGround, zc, td);
    c.addResistor(far, Circuit::kGround, r_load);
  }

  TransientResult run(double t_stop) {
    TransientOptions opt;
    opt.dt = 5e-12;
    opt.t_stop = t_stop;
    return runTransient(c, opt, {{"near", near, 0}, {"far", far, 0}});
  }
};

TEST(IdealLine, MatchedLineNoReflection) {
  LineFixture f;
  f.build(50.0, 50.0);
  const auto res = f.run(5e-9);
  const Waveform& vn = res.at("near");
  const Waveform& vf = res.at("far");
  // Launch = 0.5 V, arrives at far end after Td, no reflections.
  EXPECT_NEAR(vn.value(0.5e-9), 0.5, 5e-3);
  EXPECT_NEAR(vf.value(0.5e-9), 0.0, 5e-3);
  EXPECT_NEAR(vf.value(1.5e-9), 0.5, 5e-3);
  EXPECT_NEAR(vn.value(4.5e-9), 0.5, 5e-3);
}

TEST(IdealLine, OpenEndDoublesVoltage) {
  LineFixture f;
  f.build(50.0, 1e9);
  const auto res = f.run(5e-9);
  const Waveform& vf = res.at("far");
  // Reflection coefficient +1: far end jumps to 2 * 0.5 = 1.0 at Td.
  EXPECT_NEAR(vf.value(0.9e-9), 0.0, 1e-2);
  EXPECT_NEAR(vf.value(1.5e-9), 1.0, 1e-2);
}

TEST(IdealLine, ShortEndHoldsZeroAndNearDips) {
  LineFixture f;
  f.build(50.0, 1e-3);
  const auto res = f.run(5e-9);
  EXPECT_NEAR(res.at("far").value(2e-9), 0.0, 1e-2);
  // Reflected -0.5 arrives at near end at 2 Td: net 0.
  EXPECT_NEAR(res.at("near").value(2.5e-9), 0.0, 2e-2);
}

TEST(IdealLine, MismatchedBounceStaircase) {
  // Rs = 150 (rho_s = 0.5), RL = open (rho_L = 1), Zc = 50:
  // launch 0.25; far end staircases 0.5, 0.75, 0.875, ... -> 1.0 with one
  // increment per source round trip (2 Td).
  LineFixture f;
  f.build(150.0, 1e9);
  const auto res = f.run(7e-9);
  const Waveform& vf = res.at("far");
  EXPECT_NEAR(vf.value(1.5e-9), 0.5, 1e-2);     // first arrival doubled
  EXPECT_NEAR(vf.value(3.5e-9), 0.75, 1e-2);    // + 0.5 * 0.5 / 2... = geometric step
  EXPECT_NEAR(vf.value(5.5e-9), 0.875, 1e-2);   // next bounce
  EXPECT_NEAR(vf.value(6.9e-9), 0.875, 2e-2);   // holds until the next round trip
}

TEST(IdealLine, DelayObservedAccurately) {
  LineFixture f;
  f.build(50.0, 50.0);
  const auto res = f.run(3e-9);
  const Waveform& vf = res.at("far");
  // Find the 50%-of-final crossing time: should be close to Td.
  double t_cross = 0.0;
  for (std::size_t k = 1; k < vf.size(); ++k) {
    if (vf[k] >= 0.25) {
      t_cross = vf.dt() * static_cast<double>(k);
      break;
    }
  }
  EXPECT_NEAR(t_cross, 1e-9, 0.05e-9);
}

}  // namespace
}  // namespace fdtdmm
