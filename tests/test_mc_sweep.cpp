// Tests for the stochastic (Monte Carlo) sweep subsystem: seeded
// distribution axes (sweep_spec.h), the determinism/reproducibility
// contract (same seed => bit-identical exports at any worker count or
// sharing mode), Latin-hypercube stratification, common random numbers,
// solver-state sharing across an illumination ensemble, and the ensemble
// statistics layer (ensemble_stats.h).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "engine/ensemble_stats.h"
#include "engine/sweep_runner.h"
#include "json_lint.h"
#include "tiny_models.h"

namespace fdtdmm {
namespace {

using testmodels::slurp;
using testmodels::tinyCache;

/// A fast deterministic t-line base (tiny macromodels, 24-cell 1D FDTD).
SweepSpec tinyTlineSpec() {
  SweepSpec spec;
  spec.scenario = "tline";
  spec.set("engine", std::string("fdtd1d"));
  spec.set("t_stop", 2e-9);
  spec.set("strip_len", 24.0);
  spec.driver = "tinydrv";
  spec.receiver = "tinyrcv";
  return spec;
}

/// Manufacturing-tolerance axis: impedance and far-end RC jointly drawn.
StochasticAxis toleranceAxis(std::size_t samples, std::uint64_t seed,
                             McSampling sampling = McSampling::kIid,
                             bool crn = false) {
  StochasticAxis mc;
  mc.name = "tol";
  mc.params = {truncatedNormalParam("zc", 100.0, 5.0, 80.0, 120.0),
               uniformParam("load_r", 400.0, 600.0),
               uniformParam("load_c", 0.5e-12, 2e-12)};
  mc.samples = samples;
  mc.seed = seed;
  mc.sampling = sampling;
  mc.common_random_numbers = crn;
  return mc;
}

double sampledValue(const TaskProvenance& prov, const std::string& param) {
  for (const ParamBinding& b : prov.sampled)
    if (b.param == param) return std::get<double>(b.value);
  throw std::runtime_error("no sampled binding for " + param);
}

// --- Expansion shape, labels, provenance ---------------------------------

TEST(McSweep, CountAndExpandAgreeOnStochasticGrids) {
  SweepSpec spec = tinyTlineSpec();
  spec.axisStrings("pattern", {"010", "0110"});
  spec.stochasticAxis(toleranceAxis(5, 42));
  EXPECT_EQ(spec.count(), 10u);  // 2 patterns x 5 samples
  const ExpandedSweep ex = spec.expandDetailed();
  EXPECT_EQ(ex.tasks.size(), 10u);
  EXPECT_EQ(ex.provenance.size(), 10u);
  EXPECT_EQ(ex.group_count, 2u);
  // expand() must be exactly expandDetailed().tasks.
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), ex.tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].index, i);
    EXPECT_EQ(tasks[i].label, ex.tasks[i].label);
  }
}

TEST(McSweep, StochasticAxisWithZeroSamplesKeepsBaseValues) {
  SweepSpec spec = tinyTlineSpec();
  StochasticAxis mc;  // samples stays 0
  spec.stochasticAxis(mc);
  EXPECT_EQ(spec.count(), 1u);
  const ExpandedSweep ex = spec.expandDetailed();
  ASSERT_EQ(ex.tasks.size(), 1u);
  EXPECT_TRUE(ex.provenance[0].draws.empty());
}

TEST(McSweep, LabelsCarrySeedAndDrawIndex) {
  SweepSpec spec = tinyTlineSpec();
  spec.stochasticAxis(toleranceAxis(3, 42));
  const ExpandedSweep ex = spec.expandDetailed();
  ASSERT_EQ(ex.tasks.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    const std::string tag = " | tol#" + std::to_string(s) + "@42";
    EXPECT_NE(ex.tasks[s].label.find(tag), std::string::npos)
        << ex.tasks[s].label;
    ASSERT_EQ(ex.provenance[s].draws.size(), 1u);
    EXPECT_EQ(ex.provenance[s].draws[0].draw, s);
    EXPECT_EQ(ex.provenance[s].draws[0].seed, 42u);
    EXPECT_EQ(ex.provenance[s].group, 0u);
    EXPECT_EQ(ex.provenance[s].group_label, "base");
  }
}

TEST(McSweep, SampledValuesLandOnTheConfiguredScenario) {
  SweepSpec spec = tinyTlineSpec();
  spec.stochasticAxis(toleranceAxis(4, 7));
  const ExpandedSweep ex = spec.expandDetailed();
  for (std::size_t i = 0; i < ex.tasks.size(); ++i) {
    const double zc = sampledValue(ex.provenance[i], "zc");
    EXPECT_GE(zc, 80.0);
    EXPECT_LE(zc, 120.0);
    // The drawn value must be what the scenario actually runs with.
    EXPECT_EQ(std::get<double>(ex.tasks[i].scenario->get("zc")), zc);
    const double r = sampledValue(ex.provenance[i], "load_r");
    EXPECT_GE(r, 400.0);
    EXPECT_LT(r, 600.0);
  }
}

// --- Seeded reproducibility ----------------------------------------------

TEST(McSweep, SameSeedReproducesDrawsDifferentSeedChangesThem) {
  SweepSpec spec = tinyTlineSpec();
  spec.stochasticAxis(toleranceAxis(6, 42));
  const ExpandedSweep a = spec.expandDetailed();
  const ExpandedSweep b = spec.expandDetailed();
  SweepSpec other = tinyTlineSpec();
  other.stochasticAxis(toleranceAxis(6, 43));
  const ExpandedSweep c = other.expandDetailed();
  ASSERT_EQ(a.tasks.size(), 6u);
  bool any_differs = false;
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(a.tasks[i].label, b.tasks[i].label);
    EXPECT_EQ(sampledValue(a.provenance[i], "zc"),
              sampledValue(b.provenance[i], "zc"));
    if (sampledValue(a.provenance[i], "zc") !=
        sampledValue(c.provenance[i], "zc"))
      any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "seed 43 reproduced seed 42's draws";
}

TEST(McSweep, ExportsAreByteIdenticalAcrossWorkersAndSharing) {
  SweepSpec spec = tinyTlineSpec();
  spec.axis("zc", {100.0, 131.0});
  StochasticAxis mc;
  mc.name = "mc";
  mc.params = {uniformParam("load_r", 400.0, 600.0),
               uniformParam("load_c", 0.5e-12, 2e-12)};
  mc.samples = 5;
  mc.seed = 42;
  spec.stochasticAxis(mc);

  const std::string dir = testing::TempDir();
  std::string ref_csv, ref_json;
  for (std::size_t workers : {1u, 4u}) {
    for (bool share : {true, false}) {
      SweepRunnerOptions opt;
      opt.workers = workers;
      opt.share_solver_state = share;
      opt.model_cache = tinyCache();
      SweepRunner runner(opt);
      const SweepResult result = runner.run(spec);
      ASSERT_EQ(result.okCount(), result.runs.size());
      const std::string csv_path = dir + "mc_repro.csv";
      const std::string json_path = dir + "mc_repro.json";
      writeSweepCsv(result, csv_path);
      writeSweepJson(result, json_path);
      const std::string csv = slurp(csv_path);
      // The JSON header records the worker count by schema; the run
      // records must match byte for byte, so compare from "runs" on.
      std::string json = slurp(json_path);
      json = json.substr(json.find("\"runs\""));
      std::filesystem::remove(csv_path);
      std::filesystem::remove(json_path);
      if (ref_csv.empty()) {
        ref_csv = csv;
        ref_json = json;
      } else {
        EXPECT_EQ(csv, ref_csv) << "workers=" << workers << " share=" << share;
        EXPECT_EQ(json, ref_json)
            << "workers=" << workers << " share=" << share;
      }
    }
  }
}

TEST(McSweep, ThousandSampleEnsembleIsBitReproducibleAcrossWorkerCounts) {
  // The acceptance-criterion ensemble: 1000 seeded samples, run at 1 and 4
  // workers, byte-compared through the CSV export.
  SweepSpec spec = tinyTlineSpec();
  spec.set("t_stop", 1e-9);
  spec.stochasticAxis(toleranceAxis(1000, 2026, McSampling::kLatinHypercube));
  const std::string dir = testing::TempDir();
  std::string ref;
  for (std::size_t workers : {1u, 4u}) {
    SweepRunnerOptions opt;
    opt.workers = workers;
    opt.model_cache = tinyCache();
    SweepRunner runner(opt);
    const SweepResult result = runner.run(spec);
    ASSERT_EQ(result.runs.size(), 1000u);
    ASSERT_EQ(result.okCount(), 1000u);
    const std::string path = dir + "mc_1000.csv";
    writeSweepCsv(result, path);
    const std::string csv = slurp(path);
    std::filesystem::remove(path);
    if (ref.empty())
      ref = csv;
    else
      EXPECT_EQ(csv, ref);
  }
}

// --- Latin-hypercube stratification --------------------------------------

TEST(McSweep, LatinHypercubeHitsEveryStratumOfEveryMarginal) {
  SweepSpec spec = tinyTlineSpec();
  StochasticAxis mc;
  mc.name = "mc";
  mc.params = {uniformParam("zc", 50.0, 150.0),
               uniformParam("load_r", 100.0, 900.0)};
  mc.samples = 16;
  mc.seed = 9;
  mc.sampling = McSampling::kLatinHypercube;
  spec.stochasticAxis(mc);
  const ExpandedSweep ex = spec.expandDetailed();
  ASSERT_EQ(ex.tasks.size(), 16u);
  for (const auto& param : {std::make_pair(std::string("zc"), 50.0),
                            std::make_pair(std::string("load_r"), 100.0)}) {
    const double lo = param.second;
    const double width = (param.first == "zc" ? 100.0 : 800.0) / 16.0;
    std::set<std::size_t> strata;
    for (const TaskProvenance& prov : ex.provenance) {
      const double v = sampledValue(prov, param.first);
      strata.insert(static_cast<std::size_t>((v - lo) / width));
    }
    EXPECT_EQ(strata.size(), 16u) << param.first;  // one draw per stratum
  }
}

TEST(McSweep, IidSamplingDoesNotStratify) {
  // Sanity check that the LHS test above is actually detecting
  // stratification: 16 i.i.d. draws essentially never cover 16 strata.
  SweepSpec spec = tinyTlineSpec();
  StochasticAxis mc;
  mc.name = "mc";
  mc.params = {uniformParam("zc", 50.0, 150.0)};
  mc.samples = 16;
  mc.seed = 9;
  spec.stochasticAxis(mc);
  const ExpandedSweep ex = spec.expandDetailed();
  std::set<std::size_t> strata;
  for (const TaskProvenance& prov : ex.provenance)
    strata.insert(
        static_cast<std::size_t>((sampledValue(prov, "zc") - 50.0) / 6.25));
  EXPECT_LT(strata.size(), 16u);
}

// --- Common random numbers -----------------------------------------------

TEST(McSweep, CommonRandomNumbersReuseDrawsAcrossCorners) {
  SweepSpec crn = tinyTlineSpec();
  crn.axis("zc", {100.0, 131.0});
  StochasticAxis mc;
  mc.name = "mc";
  mc.params = {uniformParam("load_r", 400.0, 600.0)};
  mc.samples = 4;
  mc.seed = 11;
  mc.common_random_numbers = true;
  crn.stochasticAxis(mc);
  const ExpandedSweep with = crn.expandDetailed();
  ASSERT_EQ(with.tasks.size(), 8u);
  ASSERT_EQ(with.group_count, 2u);
  for (std::size_t s = 0; s < 4; ++s) {
    // Task layout: corner-major (group 0 samples 0..3, then group 1).
    EXPECT_EQ(sampledValue(with.provenance[s], "load_r"),
              sampledValue(with.provenance[4 + s], "load_r"));
  }

  SweepSpec iid = crn;
  iid.stochastic[0].common_random_numbers = false;
  const ExpandedSweep without = iid.expandDetailed();
  bool any_differs = false;
  for (std::size_t s = 0; s < 4; ++s)
    if (sampledValue(without.provenance[s], "load_r") !=
        sampledValue(without.provenance[4 + s], "load_r"))
      any_differs = true;
  EXPECT_TRUE(any_differs) << "i.i.d. corners drew identical values";
}

// --- Validation ----------------------------------------------------------

TEST(McSweep, RejectsMalformedStochasticAxes) {
  {  // non-double parameter
    SweepSpec spec = tinyTlineSpec();
    StochasticAxis mc;
    mc.params = {uniformParam("pattern", 0.0, 1.0)};
    mc.samples = 2;
    spec.stochasticAxis(mc);
    EXPECT_THROW(spec.count(), std::invalid_argument);
  }
  {  // unknown parameter
    SweepSpec spec = tinyTlineSpec();
    StochasticAxis mc;
    mc.params = {uniformParam("zed", 0.0, 1.0)};
    mc.samples = 2;
    spec.stochasticAxis(mc);
    EXPECT_THROW(spec.count(), std::invalid_argument);
  }
  {  // empty bounds / bad distribution shapes
    SweepSpec spec = tinyTlineSpec();
    StochasticAxis mc;
    mc.params = {uniformParam("zc", 120.0, 80.0)};
    mc.samples = 2;
    spec.stochasticAxis(mc);
    EXPECT_THROW(spec.count(), std::invalid_argument);
    spec.stochastic[0].params = {normalParam("zc", 100.0, 0.0)};
    EXPECT_THROW(spec.count(), std::invalid_argument);
    spec.stochastic[0].params =
        {truncatedNormalParam("zc", 100.0, 5.0, 120.0, 80.0)};
    EXPECT_THROW(spec.count(), std::invalid_argument);
    spec.stochastic[0].params =
        {truncatedNormalParam("zc", 0.0, 1.0, 500.0, 501.0)};
    EXPECT_THROW(spec.count(), std::invalid_argument);  // no mass
  }
  {  // samples without parameters
    SweepSpec spec = tinyTlineSpec();
    StochasticAxis mc;
    mc.samples = 2;
    spec.stochasticAxis(mc);
    EXPECT_THROW(spec.count(), std::invalid_argument);
  }
  {  // nameless axis
    SweepSpec spec = tinyTlineSpec();
    StochasticAxis mc = toleranceAxis(2, 1);
    mc.name.clear();
    spec.stochasticAxis(mc);
    EXPECT_THROW(spec.count(), std::invalid_argument);
  }
  {  // parameter shared with a deterministic axis
    SweepSpec spec = tinyTlineSpec();
    spec.axis("zc", {100.0, 131.0});
    StochasticAxis mc;
    mc.params = {uniformParam("zc", 80.0, 120.0)};
    mc.samples = 2;
    spec.stochasticAxis(mc);
    EXPECT_THROW(spec.count(), std::invalid_argument);
  }
}

TEST(McSweep, OutOfRangeDrawsFailWithGuidance) {
  // A normal perturbation of a positive-only parameter will eventually
  // draw a negative value; the error must point at the stochastic axis.
  SweepSpec spec = tinyTlineSpec();
  StochasticAxis mc;
  mc.params = {uniformParam("zc", -50.0, 10.0)};
  mc.samples = 8;
  mc.seed = 1;
  spec.stochasticAxis(mc);
  try {
    spec.expand();
    FAIL() << "expansion accepted out-of-range draws";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("stochastic"), std::string::npos)
        << e.what();
  }
}

// --- Solver-state sharing across an illumination ensemble ----------------

TEST(McSweep, EmcIlluminationEnsembleSharesOneBaseFactorization) {
  // The EMC acceptance criterion: the incident field enters the MNA system
  // through RHS sources only, so a whole random-illumination ensemble on
  // one quiescent link must perform exactly ONE numeric base factorization.
  SweepSpec spec;
  spec.scenario = "emc";
  spec.set("pattern", std::string("010"));
  spec.set("bit_time", 0.5e-9);
  spec.set("t_stop", 2e-9);
  spec.set("dt", 10e-12);
  spec.set("segments", 8.0);
  spec.set("line_length", 0.05);
  spec.set("pulse_t0", 0.8e-9);
  spec.set("bandwidth", 3e9);
  spec.set("drive", std::string("none"));  // quiescent-line susceptibility
  StochasticAxis field;
  field.name = "field";
  field.params = {uniformParam("theta", 30.0, 150.0),
                  uniformParam("phi", 0.0, 360.0),
                  uniformParam("pol_theta", 0.1, 1.0),
                  truncatedNormalParam("amplitude", 2e3, 400.0, 500.0, 4e3)};
  field.samples = 6;
  field.seed = 3;
  field.sampling = McSampling::kLatinHypercube;
  spec.stochasticAxis(field);

  SweepRunnerOptions opt;
  opt.workers = 2;
  opt.model_cache = tinyCache();
  SweepRunner runner(opt);
  const SweepResult result = runner.run(spec);
  ASSERT_EQ(result.okCount(), 6u);
  EXPECT_EQ(result.solver_cache.numeric_misses, 1);
  EXPECT_EQ(result.solver_cache.numeric_hits, 5);
  // The default "reuse_lu" solver is dense: no sparse symbolic stage.
  EXPECT_EQ(result.solver_cache.symbolic_misses, 0);
}

// --- Ensemble statistics -------------------------------------------------

SweepRunRecord okRecord(double v_far_max, bool eye_valid = false) {
  SweepRunRecord r;
  r.ok = true;
  r.metrics.v_far_max = v_far_max;
  r.metrics.eye_valid = eye_valid;
  r.metrics.eye.eye_height = v_far_max * 0.5;
  return r;
}

TEST(EnsembleStats, AggregatesPerGroupWithQuantilesAndExceedance) {
  ExpandedSweep ex;
  ex.group_count = 2;
  SweepResult result;
  // Group 0: samples {1, 2, 3}; group 1: {10, 20} plus one failed run.
  for (double v : {1.0, 2.0, 3.0}) {
    result.runs.push_back(okRecord(v));
    TaskProvenance p;
    p.group = 0;
    p.group_label = "zc=100";
    ex.provenance.push_back(p);
  }
  for (double v : {10.0, 20.0}) {
    result.runs.push_back(okRecord(v));
    TaskProvenance p;
    p.group = 1;
    p.group_label = "zc=131";
    ex.provenance.push_back(p);
  }
  SweepRunRecord bad;
  bad.ok = false;
  bad.error = "boom";
  result.runs.push_back(bad);
  TaskProvenance p;
  p.group = 1;
  p.group_label = "zc=131";
  ex.provenance.push_back(p);
  ex.tasks.resize(result.runs.size());

  EnsembleOptions opt;
  opt.metrics = {"v_far_max", "eye_height"};
  opt.quantiles = {0.0, 0.5, 1.0};
  opt.exceedances = {{"v_far_max", 2.0, /*above=*/true},
                     {"v_far_max", 2.0, /*above=*/false}};
  const EnsembleStats stats = computeEnsembleStats(result, ex, opt);
  ASSERT_EQ(stats.groups.size(), 2u);

  const GroupEnsemble& g0 = stats.groups[0];
  EXPECT_EQ(g0.label, "zc=100");
  EXPECT_EQ(g0.samples, 3u);
  EXPECT_EQ(g0.failed, 0u);
  ASSERT_EQ(g0.metrics.size(), 2u);
  EXPECT_EQ(g0.metrics[0].count, 3u);
  EXPECT_DOUBLE_EQ(g0.metrics[0].mean, 2.0);
  EXPECT_DOUBLE_EQ(g0.metrics[0].stddev, 1.0);
  EXPECT_DOUBLE_EQ(g0.metrics[0].min, 1.0);
  EXPECT_DOUBLE_EQ(g0.metrics[0].max, 3.0);
  ASSERT_EQ(g0.metrics[0].quantile_values.size(), 3u);
  EXPECT_DOUBLE_EQ(g0.metrics[0].quantile_values[1], 2.0);
  // eye_valid=false on every record: eye_height has no defined samples.
  EXPECT_EQ(g0.metrics[1].count, 0u);
  ASSERT_EQ(g0.exceedances.size(), 2u);
  EXPECT_DOUBLE_EQ(g0.exceedances[0].probability, 1.0 / 3.0);  // P[v > 2]
  EXPECT_DOUBLE_EQ(g0.exceedances[1].probability, 1.0 / 3.0);  // P[v < 2]

  const GroupEnsemble& g1 = stats.groups[1];
  EXPECT_EQ(g1.samples, 3u);
  EXPECT_EQ(g1.failed, 1u);  // the failed run is counted but not aggregated
  EXPECT_EQ(g1.metrics[0].count, 2u);
  EXPECT_DOUBLE_EQ(g1.metrics[0].mean, 15.0);
}

TEST(EnsembleStats, RejectsBadInputs) {
  ExpandedSweep ex;
  ex.group_count = 1;
  SweepResult result;
  result.runs.push_back(okRecord(1.0));
  // Size mismatch: no provenance for the run.
  EXPECT_THROW(computeEnsembleStats(result, ex), std::invalid_argument);
  ex.provenance.emplace_back();
  EnsembleOptions opt;
  opt.metrics = {"no_such_metric"};
  EXPECT_THROW(computeEnsembleStats(result, ex, opt), std::invalid_argument);
  opt.metrics = {"v_far_max"};
  opt.quantiles = {1.5};
  EXPECT_THROW(computeEnsembleStats(result, ex, opt), std::invalid_argument);
}

TEST(EnsembleStats, EndToEndExportsAreWellFormedAndReproducible) {
  SweepSpec spec = tinyTlineSpec();
  spec.axis("zc", {100.0, 131.0});
  StochasticAxis tol;
  tol.name = "tol";
  tol.params = {uniformParam("load_r", 400.0, 600.0),
                uniformParam("load_c", 0.5e-12, 2e-12)};
  tol.samples = 8;
  tol.seed = 5;
  tol.sampling = McSampling::kLatinHypercube;
  spec.stochasticAxis(tol);
  const ExpandedSweep ex = spec.expandDetailed();

  EnsembleOptions eopt;
  eopt.metrics = {"v_far_min", "settling_time"};
  eopt.exceedances = {{"v_far_min", -0.1, /*above=*/false}};

  const std::string dir = testing::TempDir();
  std::string ref_csv, ref_json;
  for (std::size_t workers : {1u, 3u}) {
    SweepRunnerOptions opt;
    opt.workers = workers;
    opt.model_cache = tinyCache();
    SweepRunner runner(opt);
    const SweepResult result = runner.run(ex.tasks);
    ASSERT_EQ(result.okCount(), 16u);
    const EnsembleStats stats = computeEnsembleStats(result, ex, eopt);
    ASSERT_EQ(stats.groups.size(), 2u);
    EXPECT_EQ(stats.groups[0].samples, 8u);
    EXPECT_NE(stats.groups[0].label, stats.groups[1].label);

    const std::string csv_path = dir + "ensemble.csv";
    const std::string json_path = dir + "ensemble.json";
    writeEnsembleCsv(stats, csv_path);
    writeEnsembleJson(stats, json_path);
    const std::string csv = slurp(csv_path), json = slurp(json_path);
    std::filesystem::remove(csv_path);
    std::filesystem::remove(json_path);

    EXPECT_NE(csv.find("group,label,samples,failed,kind,name,count,mean,"
                       "stddev,min,max,q0.05,q0.5,q0.95"),
              std::string::npos);
    EXPECT_NE(csv.find("exceedance"), std::string::npos);
    std::string err;
    EXPECT_TRUE(jsonlint::Checker(json).run(&err)) << err;
    if (ref_csv.empty()) {
      ref_csv = csv;
      ref_json = json;
    } else {
      EXPECT_EQ(csv, ref_csv);
      EXPECT_EQ(json, ref_json);
    }
  }
}

}  // namespace
}  // namespace fdtdmm
