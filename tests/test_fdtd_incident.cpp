// Tests for the incident plane wave and the scattered-field coupling.
#include <gtest/gtest.h>

#include <cmath>

#include "fdtd/incident.h"
#include "fdtd/solver.h"
#include "signal/linear_ports.h"

namespace fdtdmm {
namespace {

using namespace constants;

TEST(PlaneWave, DirectionAndPolarizationForPaperAngles) {
  // theta = 90, phi = 180, theta-pol: travels along +x, E along -z.
  const double deg = M_PI / 180.0;
  PlaneWave w(90.0 * deg, 180.0 * deg, 2e3, gaussianPulseShape(1e-9, 0.1e-9));
  EXPECT_NEAR(w.polarization(Axis::kX), 0.0, 1e-12);
  EXPECT_NEAR(w.polarization(Axis::kY), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(w.polarization(Axis::kZ)), 1.0, 1e-12);
  // Delay grows along +x (the wave moves toward +x).
  EXPECT_GT(w.delay(1.0, 0.0, 0.0), w.delay(0.0, 0.0, 0.0));
  EXPECT_NEAR(w.delay(1.0, 0.0, 0.0) - w.delay(0.0, 0.0, 0.0), 1.0 / kC0, 1e-18);
  // No variation transverse to propagation.
  EXPECT_NEAR(w.delay(0.0, 1.0, 0.0), w.delay(0.0, 0.0, 0.0), 1e-18);
}

TEST(PlaneWave, FieldPeaksAtRetardedTime) {
  const double deg = M_PI / 180.0;
  const double t0 = 1e-9, sigma = 0.05e-9;
  PlaneWave w(90.0 * deg, 180.0 * deg, 2e3, gaussianPulseShape(t0, sigma));
  // At x: peak when t = t0 + x/c.
  const double x = 0.03;
  const double t_peak = t0 + x / kC0;
  const double e_peak = std::abs(w.field(Axis::kZ, x, 0.0, 0.0, t_peak));
  EXPECT_NEAR(e_peak, 2e3, 1e-6);
  EXPECT_LT(std::abs(w.field(Axis::kZ, x, 0.0, 0.0, t_peak - 6.0 * sigma)), 1.0);
}

TEST(PlaneWave, DerivativeMatchesFiniteDifference) {
  const double deg = M_PI / 180.0;
  PlaneWave w(60.0 * deg, 30.0 * deg, 1.0, gaussianPulseShape(1e-9, 0.1e-9), 0.7, 0.3);
  const double h = 1e-14;
  for (const double t : {0.8e-9, 1.0e-9, 1.2e-9}) {
    const double fd = (w.field(Axis::kZ, 0.01, 0.02, 0.0, t + h) -
                       w.field(Axis::kZ, 0.01, 0.02, 0.0, t - h)) /
                      (2.0 * h);
    EXPECT_NEAR(w.fieldDt(Axis::kZ, 0.01, 0.02, 0.0, t), fd,
                std::abs(fd) * 1e-4 + 1e-3);
  }
}

TEST(PlaneWave, Validation) {
  EXPECT_THROW(gaussianPulseShape(0.0, 0.0), std::invalid_argument);
  PulseShape incomplete;
  EXPECT_THROW(PlaneWave(0.0, 0.0, 1.0, incomplete), std::invalid_argument);
  // phi-pol at theta=0 is fine, but a zero mix must throw.
  EXPECT_THROW(PlaneWave(0.0, 0.0, 1.0, gaussianPulseShape(1e-9, 1e-10), 0.0, 0.0),
               std::invalid_argument);
}

TEST(ScatteredField, EmptyVacuumDomainStaysQuiet) {
  // With no scatterers, the scattered field must remain ~0 even as the
  // incident pulse sweeps the domain (it is handled analytically).
  GridSpec s;
  s.nx = s.ny = s.nz = 12;
  s.dx = s.dy = s.dz = 1e-3;
  Grid3 g(s);
  g.bake();
  FdtdSolver solver(std::move(g));
  const double deg = M_PI / 180.0;
  const double sigma = 20e-12;
  PlaneWave w(90.0 * deg, 180.0 * deg, 1e3, gaussianPulseShape(6.0 * sigma, sigma));
  solver.setIncidentWave(w);
  solver.runUntil(0.4e-9);
  double acc = 0.0;
  for (std::size_t i = 0; i <= 12; ++i)
    for (std::size_t j = 0; j <= 12; ++j)
      for (std::size_t k = 0; k <= 12; ++k) acc = std::max(acc, std::abs(solver.grid().ez(i, j, k)));
  EXPECT_NEAR(acc, 0.0, 1e-9);
}

TEST(ScatteredField, PecPlateScattersIncidentWave) {
  // A PEC plate normal to the Ez-polarized incident wave produces a
  // nonzero scattered field and the *total* tangential E on the plate is
  // forced to zero.
  GridSpec s;
  s.nx = 40;
  s.ny = 20;
  s.nz = 20;
  s.dx = s.dy = s.dz = 1e-3;
  Grid3 g(s);
  // Plate normal to x at i=20 (tangential: Ey, Ez).
  g.pecPlateX(20, 5, 15, 5, 15);
  g.bake();
  FdtdSolver solver(std::move(g));
  const double deg = M_PI / 180.0;
  const double sigma = 15e-12;
  PlaneWave w(90.0 * deg, 180.0 * deg, 1e3, gaussianPulseShape(6.0 * sigma, sigma));
  solver.setIncidentWave(w);
  // Run until the pulse has crossed the plate.
  solver.runUntil(0.25e-9);

  // The scattered field is active somewhere.
  double max_es = 0.0;
  for (std::size_t i = 0; i <= 40; ++i)
    for (std::size_t j = 0; j <= 20; ++j)
      for (std::size_t k = 0; k <= 20; ++k)
        max_es = std::max(max_es, std::abs(solver.grid().ez(i, j, k)));
  EXPECT_GT(max_es, 10.0);

  // Check E_s = -E_i on a plate edge mid-pulse by stepping to a time when
  // the incident field at the plate is substantial.
  double x, y, z;
  solver.grid().edgeCenter(Axis::kZ, 20, 10, 10, x, y, z);
  const double t = solver.time();
  const double ei = w.field(Axis::kZ, x, y, z, t);
  const double es = solver.grid().ez(20, 10, 10);
  EXPECT_NEAR(es + ei, 0.0, 1e-9);  // total tangential field vanishes
}

TEST(ScatteredField, LumpedPortPicksUpIncidentCoupling) {
  // A 1-cell gap between two plates (a small dipole-like receptor) with a
  // resistor port: the incident wave must induce a voltage across it.
  GridSpec s;
  s.nx = 40;
  s.ny = 16;
  s.nz = 16;
  s.dx = s.dy = s.dz = 1e-3;
  Grid3 g(s);
  const std::size_t k0 = 7, k1 = 8;
  g.pecPlateZ(k0, 10, 30, 6, 10);
  g.pecPlateZ(k1, 10, 30, 6, 10);
  g.bake();
  FdtdSolver solver(std::move(g));
  const double deg = M_PI / 180.0;
  const double sigma = 15e-12;
  PlaneWave w(90.0 * deg, 180.0 * deg, 1e3, gaussianPulseShape(6.0 * sigma, sigma));
  solver.setIncidentWave(w);
  LumpedPortSpec ps;
  ps.i = 20;
  ps.j = 8;
  ps.k = k0;
  ps.label = "receptor";
  LumpedPort* port = solver.addLumpedPort(ps, std::make_shared<ResistorPort>(100.0));
  solver.runUntil(0.4e-9);
  double vmax = 0.0;
  for (double v : port->voltage().samples()) vmax = std::max(vmax, std::abs(v));
  EXPECT_GT(vmax, 0.05);  // clear induced voltage
}

}  // namespace
}  // namespace fdtdmm
