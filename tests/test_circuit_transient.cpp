// Integration tests for the MNA transient engine against closed-form
// circuit theory results.
#include "circuit/transient.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace fdtdmm {
namespace {

TEST(Transient, ResistiveDivider) {
  Circuit c;
  const int n1 = c.addNode();
  const int n2 = c.addNode();
  c.addVoltageSource(n1, Circuit::kGround, [](double) { return 10.0; });
  c.addResistor(n1, n2, 1000.0);
  c.addResistor(n2, Circuit::kGround, 1000.0);
  TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_stop = 10e-12;
  const auto res = runTransient(c, opt, {{"mid", n2, 0}});
  EXPECT_NEAR(res.at("mid").samples().back(), 5.0, 1e-9);
  EXPECT_TRUE(res.converged);
}

TEST(Transient, RcChargingMatchesAnalytic) {
  // R = 1k, C = 1pF, step 1 V: v(t) = 1 - exp(-t/RC).
  Circuit c;
  const int src = c.addNode();
  const int out = c.addNode();
  c.addVoltageSource(src, Circuit::kGround, [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
  c.addResistor(src, out, 1000.0);
  c.addCapacitor(out, Circuit::kGround, 1e-12);
  TransientOptions opt;
  opt.dt = 5e-13;
  opt.t_stop = 5e-9;  // 5 tau
  const auto res = runTransient(c, opt, {{"v", out, 0}});
  const Waveform& v = res.at("v");
  const double tau = 1e-9;
  for (double t : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
    EXPECT_NEAR(v.value(t), 1.0 - std::exp(-t / tau), 2e-3) << "at t=" << t;
  }
}

TEST(Transient, RlcResonance) {
  // Series RLC driven at steady state ~ check the damped oscillation
  // frequency of the step response: f_d = sqrt(1/LC - (R/2L)^2)/2pi.
  Circuit c;
  const int src = c.addNode();
  const int mid = c.addNode();
  const int out = c.addNode();
  const double r = 5.0, l = 10e-9, cap = 1e-12;
  c.addVoltageSource(src, Circuit::kGround, [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
  c.addResistor(src, mid, r);
  c.addInductor(mid, out, l);
  c.addCapacitor(out, Circuit::kGround, cap);
  TransientOptions opt;
  opt.dt = 2e-13;
  opt.t_stop = 4e-9;
  const auto res = runTransient(c, opt, {{"v", out, 0}});
  const Waveform& v = res.at("v");
  // Find the first two upward crossings of the final value 1.0.
  double t_first = 0.0, t_second = 0.0;
  for (std::size_t k = 1; k < v.size(); ++k) {
    if (v[k - 1] < 1.0 && v[k] >= 1.0) {
      const double t = v.dt() * static_cast<double>(k);
      if (t_first == 0.0) {
        t_first = t;
      } else {
        t_second = t;
        break;
      }
    }
  }
  ASSERT_GT(t_second, 0.0);
  const double f_meas = 1.0 / (t_second - t_first);
  const double f_d =
      std::sqrt(1.0 / (l * cap) - std::pow(r / (2.0 * l), 2.0)) / (2.0 * M_PI);
  EXPECT_NEAR(f_meas, f_d, 0.05 * f_d);
}

TEST(Transient, DiodeHalfWaveRectifier) {
  Circuit c;
  const int src = c.addNode();
  const int out = c.addNode();
  c.addVoltageSource(src, Circuit::kGround,
                     [](double t) { return 2.0 * std::sin(2e9 * M_PI * t); });
  c.addDiode(src, out);
  c.addResistor(out, Circuit::kGround, 1000.0);
  TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_stop = 1e-9;  // one full cycle at 1 GHz
  const auto res = runTransient(c, opt, {{"v", out, 0}});
  const Waveform& v = res.at("v");
  double vmin = 1e9, vmax = -1e9;
  for (double s : v.samples()) {
    vmin = std::min(vmin, s);
    vmax = std::max(vmax, s);
  }
  EXPECT_GT(vmax, 1.0);        // conducts on the positive half-wave
  EXPECT_GT(vmin, -0.1);       // blocks on the negative one
  EXPECT_TRUE(res.converged);
}

TEST(Transient, CurrentSourceIntoResistor) {
  Circuit c;
  const int n = c.addNode();
  c.addCurrentSource(n, Circuit::kGround, [](double) { return 1e-3; });
  c.addResistor(n, Circuit::kGround, 2000.0);
  TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_stop = 5e-12;
  const auto res = runTransient(c, opt, {{"v", n, 0}});
  // 1 mA delivered into node n through 2k -> v = -I R with our orientation
  // convention (source injects from n into ground): check magnitude.
  EXPECT_NEAR(std::abs(res.at("v").samples().back()), 2.0, 1e-9);
}

TEST(Transient, BranchProbeMeasuresSourceCurrent) {
  Circuit c;
  const int n = c.addNode();
  VoltageSource* vs = c.addVoltageSource(n, Circuit::kGround, [](double) { return 5.0; });
  c.addResistor(n, Circuit::kGround, 500.0);
  TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_stop = 3e-12;
  const auto res = runTransient(c, opt, {}, {{"i", vs}});
  // 10 mA flows from the node through the resistor; the source branch
  // current (n1 -> through source -> n2) balances it: i = -10 mA.
  EXPECT_NEAR(res.at("i").samples().back(), -0.01, 1e-9);
}

TEST(Transient, SettleReachesDcBeforeRecording) {
  // RC divider with settle: at t = 0 the capacitor must already be charged.
  Circuit c;
  const int src = c.addNode();
  const int out = c.addNode();
  c.addVoltageSource(src, Circuit::kGround, [](double) { return 3.0; });
  c.addResistor(src, out, 1000.0);
  c.addCapacitor(out, Circuit::kGround, 1e-12);
  TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_stop = 1e-10;
  opt.settle_time = 10e-9;
  const auto res = runTransient(c, opt, {{"v", out, 0}});
  EXPECT_NEAR(res.at("v")[0], 3.0, 1e-3);
}

TEST(Transient, DuplicateProbeLabelsThrow) {
  // A branch probe whose label collides with a node probe used to be
  // silently dropped (map emplace is a no-op on duplicate keys); both kinds
  // of collision must be rejected up front.
  Circuit c;
  const int n = c.addNode();
  VoltageSource* vs = c.addVoltageSource(n, Circuit::kGround, [](double) { return 1.0; });
  c.addResistor(n, Circuit::kGround, 100.0);
  TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_stop = 2e-12;
  EXPECT_THROW(runTransient(c, opt, {{"v", n, 0}}, {{"v", vs}}), std::invalid_argument);
  EXPECT_THROW(runTransient(c, opt, {{"v", n, 0}, {"v", n, 0}}), std::invalid_argument);
  EXPECT_THROW(runTransient(c, opt, {}, {{"i", vs}, {"i", vs}}), std::invalid_argument);
  // Distinct labels record both waveforms.
  const auto res = runTransient(c, opt, {{"v", n, 0}}, {{"i", vs}});
  EXPECT_EQ(res.probes.size(), 2u);
  EXPECT_NO_THROW(res.at("v"));
  EXPECT_NO_THROW(res.at("i"));
}

TEST(Transient, LinearCircuitFactorsOnce) {
  // Purely linear circuit: the reuse-factorization engine must perform
  // exactly one LU factorization for the whole run, settle phase included.
  Circuit c;
  const int src = c.addNode();
  const int out = c.addNode();
  c.addVoltageSource(src, Circuit::kGround, [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
  c.addResistor(src, out, 1000.0);
  c.addCapacitor(out, Circuit::kGround, 1e-12);
  TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_stop = 2e-9;
  opt.settle_time = 1e-9;
  const auto res = runTransient(c, opt, {{"v", out, 0}});
  EXPECT_EQ(res.lu_factorizations, 1);
  EXPECT_GT(res.total_newton_iterations, res.lu_factorizations);
}

TEST(Transient, NonlinearCircuitRefactorsPerIteration) {
  Circuit c;
  const int src = c.addNode();
  const int out = c.addNode();
  c.addVoltageSource(src, Circuit::kGround,
                     [](double t) { return 2.0 * std::sin(2e9 * M_PI * t); });
  c.addDiode(src, out);
  c.addResistor(out, Circuit::kGround, 1000.0);
  TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_stop = 1e-9;
  const auto res = runTransient(c, opt, {{"v", out, 0}});
  // The diode dirties the matrix at every Newton iteration, so each one
  // factors (and the lazily-created base factorization is never needed).
  EXPECT_EQ(res.lu_factorizations, res.total_newton_iterations);
}

TEST(Transient, OptionValidation) {
  Circuit c;
  const int n = c.addNode();
  c.addResistor(n, 0, 100.0);
  TransientOptions bad;
  bad.dt = 0.0;
  EXPECT_THROW(runTransient(c, bad, {}), std::invalid_argument);
  TransientOptions bad2;
  bad2.t_stop = -1.0;
  EXPECT_THROW(runTransient(c, bad2, {}), std::invalid_argument);
  TransientOptions ok;
  ok.dt = 1e-12;
  ok.t_stop = 1e-12;
  EXPECT_THROW(runTransient(c, ok, {{"x", 99, 0}}), std::invalid_argument);
}

TEST(Circuit, NodeValidation) {
  Circuit c;
  EXPECT_THROW(c.addResistor(1, 0, 100.0), std::invalid_argument);
  const int n = c.addNode();
  EXPECT_NO_THROW(c.addResistor(n, 0, 100.0));
  EXPECT_THROW(c.addResistor(n, -1, 100.0), std::invalid_argument);
  EXPECT_THROW(c.addElement(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
