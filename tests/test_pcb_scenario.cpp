// Integration tests for the Fig. 6/7 PCB field-coupling scenario on a
// reduced mesh (the full-size run lives in bench_fig7).
#include "core/pcb_scenario.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.h"

namespace fdtdmm {
namespace {

PcbScenario smallPcb() {
  PcbScenario cfg;
  cfg.board_cells = 48;
  cfg.strip_len = 34;
  cfg.margin = 6;
  cfg.cell = 1e-3;       // coarser mesh, smaller board
  cfg.t_stop = 4e-9;
  return cfg;
}

TEST(PcbScenario, SignalPropagatesDriverToReceiver) {
  auto cfg = smallPcb();
  const auto run = runPcbScenario(cfg, defaultDriverModel(), defaultReceiverModel());
  // Driver launches the '010' pulse; receiver (high-Z) sees a swing of
  // comparable magnitude after the interconnect delay.
  double v_near_max = -1e9, v_far_max = -1e9;
  for (double v : run.v_near.samples()) v_near_max = std::max(v_near_max, v);
  for (double v : run.v_far.samples()) v_far_max = std::max(v_far_max, v);
  EXPECT_GT(v_near_max, 0.8);
  EXPECT_GT(v_far_max, 0.5);
  // Quiet before the rising edge (2 ns) minus margin.
  EXPECT_NEAR(run.v_far.value(0.5e-9), 0.0, 0.15);
}

TEST(PcbScenario, IncidentFieldInducesDisturbance) {
  auto cfg = smallPcb();
  // Hold the driver LOW so any termination voltage is pure field coupling.
  cfg.pattern = "0";
  cfg.with_incident = true;
  const auto run = runPcbScenario(cfg, defaultDriverModel(), defaultReceiverModel());
  double vmax = 0.0;
  for (double v : run.v_near.samples()) vmax = std::max(vmax, std::abs(v));
  for (double v : run.v_far.samples()) vmax = std::max(vmax, std::abs(v));
  EXPECT_GT(vmax, 0.02);  // measurable induced voltage from 2 kV/m
  EXPECT_LT(vmax, 5.0);   // but bounded
}

TEST(PcbScenario, SuperpositionShapeWithAndWithoutField) {
  // Fig. 7's story: the signal with the external field is approximately
  // the clean signal plus a disturbance. Check the two runs differ.
  auto clean_cfg = smallPcb();
  const auto clean = runPcbScenario(clean_cfg, defaultDriverModel(), defaultReceiverModel());
  auto field_cfg = smallPcb();
  field_cfg.with_incident = true;
  const auto with_field =
      runPcbScenario(field_cfg, defaultDriverModel(), defaultReceiverModel());
  ASSERT_EQ(clean.v_far.size(), with_field.v_far.size());
  EXPECT_GT(maxAbsError(with_field.v_far.samples(), clean.v_far.samples()), 0.02);
}

TEST(PcbScenario, CrosstalkOnVictimNets) {
  // Driving the inner net induces crosstalk on the two passive neighbours:
  // nonzero but well below the aggressor swing (coupled-strip SI study).
  auto cfg = smallPcb();
  const auto run = runPcbScenario(cfg, defaultDriverModel(), defaultReceiverModel());
  ASSERT_EQ(run.victims.size(), 4u);
  double aggressor = 0.0;
  for (double v : run.v_near.samples()) aggressor = std::max(aggressor, std::abs(v));
  double xtalk_max = 0.0;
  for (const Waveform& w : run.victims) {
    double m = 0.0;
    for (double v : w.samples()) m = std::max(m, std::abs(v));
    EXPECT_GT(m, 1e-4) << "victim sees no coupling at all";
    xtalk_max = std::max(xtalk_max, m);
  }
  EXPECT_LT(xtalk_max, 0.5 * aggressor);  // victims stay well below the signal
}

TEST(PcbScenario, NewtonBudgetHolds) {
  auto cfg = smallPcb();
  cfg.with_incident = true;
  const auto run = runPcbScenario(cfg, defaultDriverModel(), defaultReceiverModel());
  EXPECT_LE(run.max_newton_iterations, 4);
}

TEST(PcbScenario, Validation) {
  auto cfg = smallPcb();
  EXPECT_THROW(runPcbScenario(cfg, nullptr, defaultReceiverModel()),
               std::invalid_argument);
  cfg.strip_len = cfg.board_cells;  // strips would not fit
  EXPECT_THROW(runPcbScenario(cfg, defaultDriverModel(), defaultReceiverModel()),
               std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
