// Tests for the scenario-sweep engine: grid expansion, deterministic
// parallel execution (metrics identical to a serial reference run for any
// worker count), per-task failure capture, and CSV/JSON export.
#include "engine/sweep_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fdtdmm {
namespace {

// Tiny hand-built macromodels (mirroring test_model_library's): the sweep
// tests exercise orchestration and determinism, not identification, so they
// must not pay the multi-second default-model build.
GaussianRbfParams tinyParams() {
  GaussianRbfParams p;
  p.order = 1;
  p.ts = 50e-12;
  p.beta = 0.5;
  p.i_scale = 1.0;
  p.theta = {0.01};
  p.c0 = {0.9};
  p.cv = {{0.9}};
  p.ci = {{0.0}};
  return p;
}

std::shared_ptr<const RbfDriverModel> tinyDriver() {
  RbfDriverModel m;
  m.up = std::make_shared<GaussianRbfSubmodel>(tinyParams());
  m.down = std::make_shared<GaussianRbfSubmodel>(tinyParams());
  m.ts = 50e-12;
  m.weights.wu_up = Waveform(0.0, 50e-12, {0.0, 1.0});
  m.weights.wd_up = Waveform(0.0, 50e-12, {1.0, 0.0});
  m.weights.wu_down = Waveform(0.0, 50e-12, {1.0, 0.0});
  m.weights.wd_down = Waveform(0.0, 50e-12, {0.0, 1.0});
  return std::make_shared<const RbfDriverModel>(std::move(m));
}

std::shared_ptr<const RbfReceiverModel> tinyReceiver() {
  RbfReceiverModel m;
  LinearArxParams lp;
  lp.order = 1;
  lp.ts = 50e-12;
  lp.a = {0.2};
  lp.b = {0.001, 0.0};
  m.lin = std::make_shared<LinearArxSubmodel>(lp);
  m.up = std::make_shared<GaussianRbfSubmodel>(tinyParams());
  m.down = std::make_shared<GaussianRbfSubmodel>(tinyParams());
  m.ts = 50e-12;
  return std::make_shared<const RbfReceiverModel>(std::move(m));
}

std::shared_ptr<ModelCache> tinyCache() {
  auto cache = std::make_shared<ModelCache>();
  cache->putDriver("tinydrv", tinyDriver());
  cache->putReceiver("tinyrcv", tinyReceiver());
  return cache;
}

/// A fast 1D-FDTD sweep: 2 patterns x 2 zc x (2 rc corners + receiver).
SweepSpec testSpec() {
  SweepSpec spec;
  spec.kind = TaskKind::kTline;
  spec.engine = TlineEngine::kFdtd1d;
  spec.driver = "tinydrv";
  spec.receiver = "tinyrcv";
  spec.base_tline.t_stop = 2e-9;
  spec.base_tline.strip_len = 24;  // 1D cells: keeps each run tiny
  spec.patterns = {"010", "0110"};
  spec.bit_times = {0.5e-9};
  spec.zc_values = {100.0, 131.0};
  spec.loads = {FarEndLoad::kLinearRc, FarEndLoad::kReceiver};
  spec.rc_loads = {{500.0, 1e-12}, {50.0, 2e-12}};
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(SweepSpec, CountsAndExpandsTheGrid) {
  const auto spec = testSpec();
  // 2 patterns x 1 bit time x 2 zc x 1 td x (2 rc + 1 receiver) = 12.
  EXPECT_EQ(spec.count(), 12u);
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 12u);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].index, i);
    EXPECT_EQ(tasks[i].driver, "tinydrv");
    EXPECT_FALSE(tasks[i].label.empty());
  }
  // Innermost axes vary fastest: first three tasks share pattern/zc and
  // walk load corners (rc #0, rc #1, receiver).
  EXPECT_EQ(tasks[0].tline.load_r, 500.0);
  EXPECT_EQ(tasks[1].tline.load_r, 50.0);
  EXPECT_EQ(tasks[2].tline.load, FarEndLoad::kReceiver);
  EXPECT_EQ(tasks[0].tline.zc, 100.0);
  EXPECT_EQ(tasks[3].tline.zc, 131.0);
  EXPECT_EQ(tasks[6].tline.pattern, "0110");
}

TEST(SweepSpec, EmptyAxesKeepBaseValues) {
  SweepSpec spec;
  spec.base_tline.t_stop = 1e-9;
  EXPECT_EQ(spec.count(), 1u);
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].tline.pattern, spec.base_tline.pattern);
  EXPECT_EQ(tasks[0].tline.zc, spec.base_tline.zc);
}

TEST(SweepSpec, RejectsMisappliedAndInvalidAxes) {
  SweepSpec pcb;
  pcb.kind = TaskKind::kPcb;
  pcb.zc_values = {100.0};
  EXPECT_THROW(pcb.expand(), std::invalid_argument);

  SweepSpec tline;
  tline.incident_field = {true};
  EXPECT_THROW(tline.expand(), std::invalid_argument);

  SweepSpec bad_bt;
  bad_bt.bit_times = {-1.0};
  EXPECT_THROW(bad_bt.count(), std::invalid_argument);

  SweepSpec bad_base;
  bad_base.base_tline.t_stop = 0.0;
  EXPECT_THROW(bad_base.expand(), std::invalid_argument);
}

TEST(SweepSpec, PcbGridExpands) {
  SweepSpec spec;
  spec.kind = TaskKind::kPcb;
  spec.patterns = {"01", "010"};
  spec.incident_field = {false, true};
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 4u);
  EXPECT_EQ(spec.count(), 4u);
  EXPECT_FALSE(tasks[0].pcb.with_incident);
  EXPECT_TRUE(tasks[1].pcb.with_incident);
  EXPECT_EQ(tasks[2].pcb.pattern, "010");
}

TEST(SweepRunner, MetricsMatchSerialReferenceForAnyWorkerCount) {
  const auto spec = testSpec();
  const auto tasks = spec.expand();

  // Serial reference: run every task by hand with the same tiny models.
  auto driver = tinyDriver();
  auto receiver = tinyReceiver();
  std::vector<RunMetrics> reference;
  for (const auto& task : tasks) {
    const auto waves = runSimulationTask(
        task, driver,
        task.tline.load == FarEndLoad::kReceiver ? receiver : nullptr);
    reference.push_back(computeRunMetrics(
        waves, BitPattern(taskPattern(task), taskBitTime(task))));
  }

  for (std::size_t workers : {1u, 2u, 4u}) {
    SweepOptions opt;
    opt.workers = workers;
    auto cache = std::make_shared<ModelCache>();
    cache->putDriver("tinydrv", tinyDriver());
    cache->putReceiver("tinyrcv", tinyReceiver());
    SweepRunner runner(opt, cache);
    const auto result = runner.run(spec);
    ASSERT_EQ(result.runs.size(), reference.size());
    EXPECT_EQ(result.workers, workers);
    EXPECT_EQ(result.okCount(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " task=" + std::to_string(i));
      const auto& got = result.runs[i].metrics;
      const auto& want = reference[i];
      EXPECT_EQ(result.runs[i].index, i);  // ordering independent of threads
      // Bitwise equality: same code path, same inputs, no reductions.
      EXPECT_EQ(got.eye.eye_height, want.eye.eye_height);
      EXPECT_EQ(got.eye.level_high, want.eye.level_high);
      EXPECT_EQ(got.eye.level_low, want.eye.level_low);
      EXPECT_EQ(got.v_far_max, want.v_far_max);
      EXPECT_EQ(got.v_far_min, want.v_far_min);
      EXPECT_EQ(got.overshoot, want.overshoot);
      EXPECT_EQ(got.settling_time, want.settling_time);
      EXPECT_EQ(got.far_end_delay, want.far_end_delay);
      EXPECT_EQ(got.max_newton_iterations, want.max_newton_iterations);
    }
  }
}

TEST(SweepRunner, ExportsAreByteIdenticalAcrossWorkerCounts) {
  const auto spec = testSpec();
  const std::string dir = testing::TempDir();
  std::string csv1, csv4, json_runs1, json_runs4;
  for (std::size_t workers : {1u, 4u}) {
    SweepOptions opt;
    opt.workers = workers;
    SweepRunner runner(opt, tinyCache());
    const auto result = runner.run(spec);
    const std::string csv_path = dir + "sweep_w" + std::to_string(workers) + ".csv";
    const std::string json_path = dir + "sweep_w" + std::to_string(workers) + ".json";
    writeSweepCsv(result, csv_path);
    writeSweepJson(result, json_path);
    const std::string csv = slurp(csv_path);
    const std::string json = slurp(json_path);
    // The JSON "runs" payload must not depend on the worker count (the
    // top-level "workers" field legitimately does).
    const std::string runs = json.substr(json.find("\"runs\""));
    (workers == 1 ? csv1 : csv4) = csv;
    (workers == 1 ? json_runs1 : json_runs4) = runs;
    std::filesystem::remove(csv_path);
    std::filesystem::remove(json_path);
  }
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(json_runs1, json_runs4);
  // Schema sanity: header + one line per run.
  EXPECT_NE(csv1.find("index,label,ok,error,eye_height"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv1.begin(), csv1.end(), '\n')),
            1 + spec.count());
}

TEST(SweepRunner, CapturesPerTaskFailuresWithoutAbortingTheSweep) {
  SweepSpec spec = testSpec();
  spec.receiver = "missing";  // receiver-load tasks will fail to resolve
  SweepOptions opt;
  opt.workers = 2;
  SweepRunner runner(opt, tinyCache());
  const auto result = runner.run(spec);
  ASSERT_EQ(result.runs.size(), 12u);
  EXPECT_EQ(result.okCount(), 8u);  // 4 receiver-load corners fail
  for (const auto& run : result.runs) {
    if (run.ok) {
      EXPECT_TRUE(run.error.empty());
    } else {
      EXPECT_NE(run.error.find("missing"), std::string::npos);
    }
  }
  // Failed runs export as ok=0 with empty metric fields, not garbage.
  const std::string path = testing::TempDir() + "sweep_fail.csv";
  writeSweepCsv(result, path);
  EXPECT_NE(slurp(path).find("ModelCache"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(SweepRunner, KeepWaveformsRetainsRuns) {
  SweepSpec spec = testSpec();
  spec.patterns = {"010"};
  spec.zc_values = {131.0};
  spec.loads = {FarEndLoad::kLinearRc};
  spec.rc_loads = {{500.0, 1e-12}};
  SweepOptions opt;
  opt.workers = 2;
  opt.keep_waveforms = true;
  SweepRunner runner(opt, tinyCache());
  const auto result = runner.run(spec);
  ASSERT_EQ(result.runs.size(), 1u);
  ASSERT_TRUE(result.runs[0].ok);
  EXPECT_FALSE(result.runs[0].waves.v_far.empty());
  EXPECT_FALSE(result.runs[0].waves.v_near.empty());
}

TEST(RunMetrics, SingleLevelPatternYieldsMetricsWithoutEye) {
  // A pattern with only one level after skip_bits (e.g. a quiescent line in
  // an EMC susceptibility run) cannot produce an eye, but the remaining
  // metrics must still come through instead of failing the task.
  TaskWaveforms waves;
  waves.v_far = sampleFunction([](double t) { return t > 0.4e-9 ? 1.0 : 0.0; },
                               0.0, 1.5e-9, 10e-12);
  waves.v_near = waves.v_far;
  const auto m = computeRunMetrics(waves, BitPattern("011", 0.5e-9));
  EXPECT_FALSE(m.eye_valid);
  EXPECT_EQ(m.v_far_max, 1.0);
  EXPECT_EQ(m.v_far_min, 0.0);
}

TEST(ScenarioValidation, RejectsNonPositiveOptions) {
  TlineScenario t;
  t.bit_time = 0.0;
  EXPECT_THROW(validateTlineScenario(t), std::invalid_argument);
  t = {};
  t.t_stop = -1e-9;
  EXPECT_THROW(validateTlineScenario(t), std::invalid_argument);
  t = {};
  t.mesh_nx = 0;
  EXPECT_THROW(validateTlineScenario(t), std::invalid_argument);
  t = {};
  t.strip_len = t.mesh_nx;  // does not fit
  EXPECT_THROW(validateTlineScenario(t), std::invalid_argument);
  EXPECT_NO_THROW(validateTlineScenario(TlineScenario{}));

  PcbScenario p;
  p.bit_time = 0.0;
  EXPECT_THROW(validatePcbScenario(p), std::invalid_argument);
  p = {};
  p.cell = -1.0;
  EXPECT_THROW(validatePcbScenario(p), std::invalid_argument);
  p = {};
  p.with_incident = true;
  p.inc_amplitude = 0.0;
  EXPECT_THROW(validatePcbScenario(p), std::invalid_argument);
  EXPECT_NO_THROW(validatePcbScenario(PcbScenario{}));
}

}  // namespace
}  // namespace fdtdmm
