// Tests for the scenario-sweep engine over the open scenario API: generic
// grid expansion, the count()/expand() shape contract, deterministic
// parallel execution (metrics identical to a serial reference run for any
// worker count), per-task failure capture, duplicate-index rejection, and
// CSV/JSON export.
#include "engine/sweep_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/pcb_family.h"
#include "core/tline_family.h"
#include "tiny_models.h"

namespace fdtdmm {
namespace {

using testmodels::tinyCache;
using testmodels::tinyDriver;
using testmodels::tinyReceiver;

/// The conditional RC-load corner axis, spelled generically: each point
/// binds load_r and load_c together, and the axis only applies where the
/// far-end load resolves to the linear RC.
ParamAxis rcLoadAxis(const std::vector<std::pair<double, double>>& corners) {
  ParamAxis axis;
  axis.name = "rc_load";
  axis.only_when_param = "load";
  axis.only_when_value = std::string("rc");
  axis.points.reserve(corners.size());
  for (const auto& rc : corners)
    axis.points.push_back({{{"load_r", rc.first}, {"load_c", rc.second}}});
  return axis;
}

/// A fast 1D-FDTD sweep: 2 patterns x 2 zc x (2 rc corners + receiver).
SweepSpec testSpec() {
  SweepSpec spec;
  spec.scenario = "tline";
  spec.set("engine", std::string("fdtd1d"));
  spec.set("t_stop", 2e-9);
  spec.set("strip_len", 24.0);  // 1D cells: keeps each run tiny
  spec.driver = "tinydrv";
  spec.receiver = "tinyrcv";
  spec.axisStrings("pattern", {"010", "0110"});
  spec.axis("bit_time", {0.5e-9});
  spec.axis("zc", {100.0, 131.0});
  spec.axisStrings("load", {"rc", "receiver"});
  spec.axis(rcLoadAxis({{500.0, 1e-12}, {50.0, 2e-12}}));
  return spec;
}

const TlineFamily& asTline(const SimulationTask& task) {
  const auto* t = dynamic_cast<const TlineFamily*>(task.scenario.get());
  if (!t) throw std::runtime_error("task is not a tline scenario");
  return *t;
}

TEST(SweepSpec, CountsAndExpandsTheGrid) {
  const auto spec = testSpec();
  // 2 patterns x 1 bit time x 2 zc x (2 rc + 1 receiver) = 12.
  EXPECT_EQ(spec.count(), 12u);
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 12u);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].index, i);
    EXPECT_EQ(tasks[i].driver, "tinydrv");
    EXPECT_FALSE(tasks[i].label.empty());
    EXPECT_EQ(tasks[i].scenario->family(), "tline");
  }
  // Innermost axes vary fastest: first three tasks share pattern/zc and
  // walk load corners (rc #0, rc #1, receiver).
  EXPECT_EQ(asTline(tasks[0]).config().load_r, 500.0);
  EXPECT_EQ(asTline(tasks[1]).config().load_r, 50.0);
  EXPECT_EQ(asTline(tasks[2]).config().load, FarEndLoad::kReceiver);
  EXPECT_EQ(asTline(tasks[0]).config().zc, 100.0);
  EXPECT_EQ(asTline(tasks[3]).config().zc, 131.0);
  EXPECT_EQ(asTline(tasks[6]).config().pattern, "0110");
}

TEST(SweepSpec, EmptyAxesKeepBaseValues) {
  const TlineScenario base;  // the family defaults mirror the typed config
  SweepSpec spec;
  spec.scenario = "tline";
  spec.set("t_stop", 1e-9);
  EXPECT_EQ(spec.count(), 1u);
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(asTline(tasks[0]).config().pattern, base.pattern);
  EXPECT_EQ(asTline(tasks[0]).config().zc, base.zc);
  // An axis with no points also contributes a factor of 1.
  SweepSpec with_empty = spec;
  with_empty.axis("zc", {});
  EXPECT_EQ(with_empty.count(), 1u);
  EXPECT_EQ(with_empty.expand().size(), 1u);
}

TEST(SweepSpec, RejectsMisappliedAndInvalidAxes) {
  // A t-line-only parameter on a PCB sweep is simply unknown to the family.
  SweepSpec pcb;
  pcb.scenario = "pcb";
  pcb.axis("zc", {100.0});
  EXPECT_THROW(pcb.expand(), std::invalid_argument);

  SweepSpec tline;
  tline.scenario = "tline";
  tline.axisBool("with_incident", {true});
  EXPECT_THROW(tline.expand(), std::invalid_argument);

  SweepSpec bad_bt;
  bad_bt.scenario = "tline";
  bad_bt.axis("bit_time", {-1.0});
  EXPECT_THROW(bad_bt.count(), std::invalid_argument);

  SweepSpec bad_base;
  bad_base.scenario = "tline";
  bad_base.set("t_stop", 0.0);
  EXPECT_THROW(bad_base.expand(), std::invalid_argument);
}

TEST(SweepSpec, PcbGridExpands) {
  SweepSpec spec;
  spec.scenario = "pcb";
  spec.axisStrings("pattern", {"01", "010"});
  spec.axisBool("with_incident", {false, true});
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 4u);
  EXPECT_EQ(spec.count(), 4u);
  auto pcb = [&](std::size_t i) {
    const auto* p = dynamic_cast<const PcbFamily*>(tasks[i].scenario.get());
    if (!p) throw std::runtime_error("task is not a pcb scenario");
    return p->config();
  };
  EXPECT_FALSE(pcb(0).with_incident);
  EXPECT_TRUE(pcb(1).with_incident);
  EXPECT_EQ(pcb(2).pattern, "010");
  EXPECT_TRUE(tasks[0].scenario->needsReceiver());
}

// The count()/expand() shape contract: both derive from one grid walker,
// and this property test pins the equality across axis-presence
// combinations — including the conditional rc_load corner, which only
// multiplies grid points whose far-end load resolves to the linear RC.
TEST(SweepSpec, CountMatchesExpandAcrossAxisCombinations) {
  const std::vector<std::string> pattern_axis = {"010", "0110", "01"};
  const std::vector<double> bt_axis = {0.5e-9, 1e-9};
  const std::vector<double> zc_axis = {90.0, 131.0};
  const std::vector<std::vector<std::string>> load_axes = {
      {},  // keep base ("rc"): rc axis applies everywhere
      {"receiver"},  // rc axis applies nowhere
      {"rc", "receiver"},
  };
  const std::vector<std::pair<double, double>> rc_axis = {{500.0, 1e-12},
                                                          {50.0, 2e-12}};

  for (unsigned mask = 0; mask < 16; ++mask) {
    for (std::size_t li = 0; li < load_axes.size(); ++li) {
      SweepSpec spec;
      spec.scenario = "tline";
      spec.set("t_stop", 1e-9);
      if (mask & 1) spec.axisStrings("pattern", pattern_axis);
      if (mask & 2) spec.axis("bit_time", bt_axis);
      if (mask & 4) spec.axis("zc", zc_axis);
      spec.axisStrings("load", load_axes[li]);
      if (mask & 8) spec.axis(rcLoadAxis(rc_axis));
      SCOPED_TRACE("mask=" + std::to_string(mask) + " loads=" + std::to_string(li));
      const auto tasks = spec.expand();
      EXPECT_EQ(spec.count(), tasks.size());
      for (std::size_t i = 0; i < tasks.size(); ++i)
        EXPECT_EQ(tasks[i].index, i);
    }
  }
}

TEST(SweepRunner, MetricsMatchSerialReferenceForAnyWorkerCount) {
  const auto spec = testSpec();
  const auto tasks = spec.expand();

  // Serial reference: run every task by hand with the same tiny models.
  auto driver = tinyDriver();
  auto receiver = tinyReceiver();
  std::vector<RunMetrics> reference;
  for (const auto& task : tasks) {
    const auto waves = runSimulationTask(
        task, driver, task.scenario->needsReceiver() ? receiver : nullptr);
    reference.push_back(computeRunMetrics(
        waves, BitPattern(task.scenario->pattern(), task.scenario->bitTime())));
  }

  for (std::size_t workers : {1u, 2u, 4u}) {
    SweepRunnerOptions opt;
    opt.workers = workers;
    opt.model_cache = tinyCache();
    SweepRunner runner(opt);
    const auto result = runner.run(spec);
    ASSERT_EQ(result.runs.size(), reference.size());
    EXPECT_EQ(result.workers, workers);
    EXPECT_EQ(result.okCount(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " task=" + std::to_string(i));
      const auto& got = result.runs[i].metrics;
      const auto& want = reference[i];
      EXPECT_EQ(result.runs[i].index, i);  // ordering independent of threads
      // Bitwise equality: same code path, same inputs, no reductions.
      EXPECT_EQ(got.eye.eye_height, want.eye.eye_height);
      EXPECT_EQ(got.eye.level_high, want.eye.level_high);
      EXPECT_EQ(got.eye.level_low, want.eye.level_low);
      EXPECT_EQ(got.v_far_max, want.v_far_max);
      EXPECT_EQ(got.v_far_min, want.v_far_min);
      EXPECT_EQ(got.overshoot, want.overshoot);
      EXPECT_EQ(got.settling_time, want.settling_time);
      EXPECT_EQ(got.far_end_delay, want.far_end_delay);
      EXPECT_EQ(got.max_newton_iterations, want.max_newton_iterations);
    }
  }
}

TEST(SweepRunner, ExportsAreByteIdenticalAcrossWorkerCounts) {
  const auto spec = testSpec();
  const std::string dir = testing::TempDir();
  std::string csv1, csv4, json_runs1, json_runs4;
  for (std::size_t workers : {1u, 4u}) {
    SweepRunnerOptions opt;
    opt.workers = workers;
    opt.model_cache = tinyCache();
    SweepRunner runner(opt);
    const auto result = runner.run(spec);
    const std::string csv_path = dir + "sweep_w" + std::to_string(workers) + ".csv";
    const std::string json_path = dir + "sweep_w" + std::to_string(workers) + ".json";
    writeSweepCsv(result, csv_path);
    writeSweepJson(result, json_path);
    const std::string csv = testmodels::slurp(csv_path);
    const std::string json = testmodels::slurp(json_path);
    // The JSON "runs" payload must not depend on the worker count (the
    // top-level "workers" field legitimately does).
    const std::string runs = json.substr(json.find("\"runs\""));
    (workers == 1 ? csv1 : csv4) = csv;
    (workers == 1 ? json_runs1 : json_runs4) = runs;
    std::filesystem::remove(csv_path);
    std::filesystem::remove(json_path);
  }
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(json_runs1, json_runs4);
  // Schema sanity: header + one line per run.
  EXPECT_NE(csv1.find("index,label,ok,error,eye_height"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv1.begin(), csv1.end(), '\n')),
            1 + spec.count());
}

TEST(SweepRunner, CapturesPerTaskFailuresWithoutAbortingTheSweep) {
  SweepSpec spec = testSpec();
  spec.receiver = "missing";  // receiver-load tasks will fail to resolve
  SweepRunnerOptions opt;
  opt.workers = 2;
  opt.model_cache = tinyCache();
  SweepRunner runner(opt);
  const auto result = runner.run(spec);
  ASSERT_EQ(result.runs.size(), 12u);
  EXPECT_EQ(result.okCount(), 8u);  // 4 receiver-load corners fail
  for (const auto& run : result.runs) {
    if (run.ok) {
      EXPECT_TRUE(run.error.empty());
    } else {
      EXPECT_NE(run.error.find("missing"), std::string::npos);
    }
  }
  // Failed runs export as ok=0 with empty metric fields, not garbage.
  const std::string path = testing::TempDir() + "sweep_fail.csv";
  writeSweepCsv(result, path);
  EXPECT_NE(testmodels::slurp(path).find("ModelCache"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(SweepRunner, RejectsDuplicateTaskIndices) {
  SweepSpec spec = testSpec();
  auto tasks = spec.expand();
  tasks[3].index = tasks[7].index;  // now two rows would share a CSV key
  SweepRunnerOptions opt;
  opt.model_cache = tinyCache();
  SweepRunner runner(opt);
  EXPECT_THROW(runner.run(tasks), std::invalid_argument);

  SimulationTask empty;  // no scenario attached
  EXPECT_THROW(runner.run({empty}), std::invalid_argument);
}

TEST(SweepRunner, KeepWaveformsRetainsRuns) {
  SweepSpec spec;
  spec.scenario = "tline";
  spec.set("t_stop", 2e-9);
  spec.set("strip_len", 24.0);
  spec.driver = "tinydrv";
  spec.receiver = "tinyrcv";
  spec.axis(rcLoadAxis({{500.0, 1e-12}}));
  SweepRunnerOptions opt;
  opt.workers = 2;
  opt.keep_waveforms = true;
  opt.model_cache = tinyCache();
  SweepRunner runner(opt);
  const auto result = runner.run(spec);
  ASSERT_EQ(result.runs.size(), 1u);
  ASSERT_TRUE(result.runs[0].ok);
  EXPECT_FALSE(result.runs[0].waves.v_far.empty());
  EXPECT_FALSE(result.runs[0].waves.v_near.empty());
}

TEST(RunMetrics, SingleLevelPatternYieldsMetricsWithoutEye) {
  // A pattern with only one level after skip_bits (e.g. a quiescent line in
  // an EMC susceptibility run) cannot produce an eye, but the remaining
  // metrics must still come through instead of failing the task.
  TaskWaveforms waves;
  waves.v_far = sampleFunction([](double t) { return t > 0.4e-9 ? 1.0 : 0.0; },
                               0.0, 1.5e-9, 10e-12);
  waves.v_near = waves.v_far;
  const auto m = computeRunMetrics(waves, BitPattern("011", 0.5e-9));
  EXPECT_FALSE(m.eye_valid);
  EXPECT_EQ(m.v_far_max, 1.0);
  EXPECT_EQ(m.v_far_min, 0.0);
}

TEST(ScenarioValidation, RejectsNonPositiveOptions) {
  TlineScenario t;
  t.bit_time = 0.0;
  EXPECT_THROW(validateTlineScenario(t), std::invalid_argument);
  t = {};
  t.t_stop = -1e-9;
  EXPECT_THROW(validateTlineScenario(t), std::invalid_argument);
  t = {};
  t.mesh_nx = 0;
  EXPECT_THROW(validateTlineScenario(t), std::invalid_argument);
  t = {};
  t.strip_len = t.mesh_nx;  // does not fit
  EXPECT_THROW(validateTlineScenario(t), std::invalid_argument);
  EXPECT_NO_THROW(validateTlineScenario(TlineScenario{}));

  PcbScenario p;
  p.bit_time = 0.0;
  EXPECT_THROW(validatePcbScenario(p), std::invalid_argument);
  p = {};
  p.cell = -1.0;
  EXPECT_THROW(validatePcbScenario(p), std::invalid_argument);
  p = {};
  p.with_incident = true;
  p.inc_amplitude = 0.0;
  EXPECT_THROW(validatePcbScenario(p), std::invalid_argument);
  EXPECT_NO_THROW(validatePcbScenario(PcbScenario{}));
}

}  // namespace
}  // namespace fdtdmm
