// Unit tests for excitation sources.
#include "signal/sources.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "math/stats.h"

namespace fdtdmm {
namespace {

TEST(Trapezoid, FollowsPattern) {
  const BitPattern p("010", 2e-9);
  const auto f = trapezoidFromPattern(p, 0.0, 1.8, 0.2e-9);
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(1.9e-9), 0.0);       // just before the rising edge
  EXPECT_NEAR(f(2.1e-9), 0.9, 1e-9);      // mid-ramp
  EXPECT_DOUBLE_EQ(f(3.0e-9), 1.8);       // settled HIGH
  EXPECT_NEAR(f(4.1e-9), 0.9, 1e-9);      // mid falling ramp
  EXPECT_DOUBLE_EQ(f(5.5e-9), 0.0);       // settled LOW
}

TEST(Trapezoid, EdgeTimeValidation) {
  const BitPattern p("01", 1e-9);
  EXPECT_THROW(trapezoidFromPattern(p, 0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(trapezoidFromPattern(p, 0.0, 1.0, 1e-9), std::invalid_argument);
}

TEST(GaussianPulse, PeakAndSymmetry) {
  const auto g = gaussianPulse(2.0, 1e-9, 0.1e-9);
  EXPECT_DOUBLE_EQ(g(1e-9), 2.0);
  EXPECT_NEAR(g(0.9e-9), g(1.1e-9), 1e-12);
  EXPECT_LT(g(0.5e-9), 1e-5);
  EXPECT_THROW(gaussianPulse(1.0, 0.0, 0.0), std::invalid_argument);
}

TEST(GaussianPulse, BandwidthRelation) {
  // At f = f3dB the spectrum magnitude must be 1/sqrt(2): check via the
  // analytic transform |G(f)| = exp(-(2 pi f sigma)^2 / 2).
  const double bw = 9.2e9;  // the paper's incident pulse bandwidth
  const double sigma = gaussianSigmaForBandwidth(bw);
  constexpr double two_pi = 6.283185307179586;
  const double mag = std::exp(-0.5 * std::pow(two_pi * bw * sigma, 2.0));
  EXPECT_NEAR(mag, 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_THROW(gaussianSigmaForBandwidth(0.0), std::invalid_argument);
}

TEST(GaussianDerivative, ZeroAtCenterPeakNormalized) {
  const auto g = gaussianDerivative(3.0, 1e-9, 0.2e-9);
  EXPECT_NEAR(g(1e-9), 0.0, 1e-12);
  // Peak of the normalized monocycle equals the requested amplitude at
  // t = t0 - sigma.
  EXPECT_NEAR(std::abs(g(0.8e-9)), 3.0, 1e-9);
}

TEST(Multilevel, RangeHoldAndDeterminism) {
  MultilevelOptions opt;
  opt.v_min = -0.5;
  opt.v_max = 2.3;
  opt.seed = 42;
  const Waveform a = multilevelRandom(50e-9, 10e-12, opt);
  const Waveform b = multilevelRandom(50e-9, 10e-12, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_DOUBLE_EQ(a[k], b[k]);
  const MinMax mm = minMax(a.samples());
  EXPECT_GE(mm.min, opt.v_min - 1e-12);
  EXPECT_LE(mm.max, opt.v_max + 1e-12);
  // The excitation must actually span most of the requested range.
  EXPECT_LT(mm.min, opt.v_min + 0.5);
  EXPECT_GT(mm.max, opt.v_max - 0.5);
}

TEST(Multilevel, Validation) {
  EXPECT_THROW(multilevelRandom(0.0, 1e-12), std::invalid_argument);
  EXPECT_THROW(multilevelRandom(1e-9, 0.0), std::invalid_argument);
  MultilevelOptions bad;
  bad.levels = 1;
  EXPECT_THROW(multilevelRandom(1e-9, 1e-12, bad), std::invalid_argument);
  MultilevelOptions bad2;
  bad2.v_max = bad2.v_min;
  EXPECT_THROW(multilevelRandom(1e-9, 1e-12, bad2), std::invalid_argument);
}

TEST(Multilevel, DifferentSeedsDiffer) {
  MultilevelOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const Waveform wa = multilevelRandom(20e-9, 20e-12, a);
  const Waveform wb = multilevelRandom(20e-9, 20e-12, b);
  EXPECT_GT(rmsError(wa.samples(), wb.samples()), 1e-3);
}

}  // namespace
}  // namespace fdtdmm
