// Tests for the paper's resampling strategy (Eq. 13) and its stability
// analysis (Section 3.1, Fig. 2).
#include "rbf/resampling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "math/rng.h"
#include "math/spectral.h"

namespace fdtdmm {
namespace {

TEST(ResampleEigenvalue, IdentityAtTauOne) {
  const std::complex<double> lam(0.3, 0.4);
  const auto mapped = resampleEigenvalue(lam, 1.0);
  EXPECT_NEAR(mapped.real(), 0.3, 1e-15);
  EXPECT_NEAR(mapped.imag(), 0.4, 1e-15);
}

TEST(ResampleEigenvalue, MapsUnitCircleToTauCircle) {
  // Fig. 2: |lambda| = 1 maps to the circle centered at (1 - tau) with
  // radius tau.
  for (const double tau : {0.1, 0.5, 0.9, 1.0}) {
    for (int k = 0; k < 16; ++k) {
      const double th = 2.0 * M_PI * k / 16.0;
      const std::complex<double> lam(std::cos(th), std::sin(th));
      const auto mapped = resampleEigenvalue(lam, tau);
      EXPECT_NEAR(std::abs(mapped - std::complex<double>(1.0 - tau, 0.0)), tau, 1e-12);
    }
  }
}

TEST(ResampleEigenvalue, StableInsideForTauLeqOne) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    // Random stable eigenvalue and admissible tau.
    const double r = 0.999 * std::sqrt(rng.uniform());
    const double th = rng.uniform(0.0, 2.0 * M_PI);
    const std::complex<double> lam(r * std::cos(th), r * std::sin(th));
    const double tau = rng.uniform(0.01, 1.0);
    EXPECT_LT(std::abs(resampleEigenvalue(lam, tau)), 1.0)
        << "lam=" << lam << " tau=" << tau;
  }
}

TEST(ResampleEigenvalue, ExtrapolationCanDestabilize) {
  // Eq. (17): tau > 1 loses the guarantee; lambda = -1 breaks immediately.
  const auto mapped = resampleEigenvalue(std::complex<double>(-0.95, 0.0), 1.2);
  EXPECT_GT(std::abs(mapped), 1.0);
}

TEST(ContinuousEigenvalue, NegativeRealPartForStableLambda) {
  // Eq. (15): stable discrete eigenvalues map to Re(eta) < 0.
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const double r = 0.999 * std::sqrt(rng.uniform());
    const double th = rng.uniform(0.0, 2.0 * M_PI);
    const std::complex<double> lam(r * std::cos(th), r * std::sin(th));
    EXPECT_LT(continuousEigenvalue(lam, 50e-12).real(), 0.0);
  }
  EXPECT_THROW(continuousEigenvalue({0.5, 0.0}, 0.0), std::invalid_argument);
}

TEST(QMatrix, StructureMatchesEq13) {
  const Matrix q = buildQMatrix(3, 0.25);
  EXPECT_DOUBLE_EQ(q(0, 0), 0.75);
  EXPECT_DOUBLE_EQ(q(1, 0), 0.25);
  EXPECT_DOUBLE_EQ(q(1, 1), 0.75);
  EXPECT_DOUBLE_EQ(q(2, 1), 0.25);
  EXPECT_DOUBLE_EQ(q(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(q(0, 2), 0.0);
  EXPECT_THROW(buildQMatrix(0, 0.5), std::invalid_argument);
  EXPECT_THROW(buildQMatrix(2, 1.5), std::invalid_argument);
  EXPECT_THROW(buildQMatrix(2, 0.0), std::invalid_argument);
}

TEST(QMatrix, TauOneIsShiftRegister) {
  const Matrix q = buildQMatrix(3, 1.0);
  EXPECT_DOUBLE_EQ(q(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(q(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(q(2, 1), 1.0);
}

TEST(ResampleStateMatrix, PreservesStabilityPropertyBased) {
  // Property: for random stable A and tau in (0, 1], the resampled matrix
  // I + tau (A - I) is stable (Section 3.1's theorem for full systems).
  Rng rng(1234);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + trial % 4;
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
    // Scale to spectral radius ~0.9.
    const double rho = spectralRadius(a);
    if (rho <= 0.0) continue;
    a *= 0.9 / rho;
    const double tau = rng.uniform(0.05, 1.0);
    const Matrix at = resampleStateMatrix(a, tau);
    EXPECT_LT(spectralRadius(at), 1.0 + 1e-9) << "trial " << trial;
  }
}

TEST(ResampledState, TauOneReproducesShiftRegister) {
  // With dt = Ts, the resampled model must behave exactly like the
  // original discrete-time model.
  LinearArxParams p;
  p.order = 2;
  p.ts = 1e-10;
  p.a = {0.4, -0.05};
  p.b = {0.02, 0.01, -0.005};
  LinearArxSubmodel m(p);
  ResampledSubmodelState st(&m, p.ts);
  st.reset(0.0);
  EXPECT_DOUBLE_EQ(st.tau(), 1.0);

  // Reference simulation with explicit shift registers.
  Vector xi{0.0, 0.0}, xv{0.0, 0.0};
  const Vector vs{0.1, 0.5, 1.0, 0.7, 0.2, -0.1, 0.0};
  for (double v : vs) {
    double didv = 0.0;
    const double i_model = st.eval(v, didv);
    const double i_ref = m.eval(v, xv, xi, nullptr);
    EXPECT_NEAR(i_model, i_ref, 1e-15);
    st.commit(v);
    xi = {i_ref, xi[0]};
    xv = {v, xv[0]};
  }
}

TEST(ResampledState, RejectsTauAboveOne) {
  LinearArxParams p;
  p.order = 1;
  p.ts = 1e-11;
  p.a = {0.5};
  p.b = {0.01, 0.0};
  LinearArxSubmodel m(p);
  EXPECT_THROW(ResampledSubmodelState(&m, 2e-11), std::invalid_argument);
  EXPECT_THROW(ResampledSubmodelState(nullptr, 1e-12), std::invalid_argument);
  EXPECT_THROW(ResampledSubmodelState(&m, 0.0), std::invalid_argument);
}

TEST(ResampledState, ResetFindsSteadyState) {
  // For the linear model, the fixed point of i = a i + b0 v + b1 v is
  // i0 = (b0 + b1) v / (1 - a).
  LinearArxParams p;
  p.order = 1;
  p.ts = 1e-10;
  p.a = {0.6};
  p.b = {0.03, 0.01};
  LinearArxSubmodel m(p);
  ResampledSubmodelState st(&m, 5e-11);
  st.reset(2.0);
  const double i0_expect = (0.03 + 0.01) * 2.0 / (1.0 - 0.6);
  EXPECT_NEAR(st.xi()[0], i0_expect, 1e-9);
  // Committing the same voltage keeps the state fixed.
  st.commit(2.0);
  EXPECT_NEAR(st.xi()[0], i0_expect, 1e-9);
  EXPECT_NEAR(st.xv()[0], 2.0, 1e-12);
}

TEST(ResampledState, StableUnderLongConstantInput) {
  // Resampled linear model driven by a constant for many steps stays
  // bounded and converges (time-stability in practice).
  LinearArxParams p;
  p.order = 2;
  p.ts = 1e-10;
  p.a = {1.2, -0.36};  // double pole at 0.6, stable
  p.b = {0.05, 0.0, 0.0};
  LinearArxSubmodel m(p);
  ResampledSubmodelState st(&m, 3e-11);  // tau = 0.3
  st.reset(0.0);
  double last = 0.0;
  for (int k = 0; k < 5000; ++k) {
    double didv = 0.0;
    last = st.eval(1.0, didv);
    ASSERT_TRUE(std::isfinite(last));
    st.commit(1.0);
  }
  const double dc_gain = 0.05 / (1.0 - 1.2 + 0.36);
  EXPECT_NEAR(last, dc_gain, 1e-3);
}

}  // namespace
}  // namespace fdtdmm
