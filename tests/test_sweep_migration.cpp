// Behavior-preservation pin for the scenario-API redesign. The golden
// strings below were captured from the pre-registry implementation (closed
// TaskKind enum + typed axis vectors) on the exact sweeps the engine tests
// use; the registry-based expansion and runner must reproduce the task
// labels/ordering and the writeSweepCsv/writeSweepJson bytes unchanged.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "engine/sweep_runner.h"
#include "engine/typed_axes.h"
#include "tiny_models.h"

// This test exists to exercise the deprecated compatibility surface, so
// silence the deprecation warnings it deliberately triggers.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace fdtdmm {
namespace {

// --- Golden task labels (pre-redesign expand(), index order). ---

const char* const kGoldenTlineLabels[] = {
    "tline/fdtd1d pattern=010 bt=5e-10 zc=100 td=4e-10 load=rc r=500 c=1e-12",
    "tline/fdtd1d pattern=010 bt=5e-10 zc=100 td=4e-10 load=rc r=50 c=2e-12",
    "tline/fdtd1d pattern=010 bt=5e-10 zc=100 td=4e-10 load=receiver",
    "tline/fdtd1d pattern=010 bt=5e-10 zc=131 td=4e-10 load=rc r=500 c=1e-12",
    "tline/fdtd1d pattern=010 bt=5e-10 zc=131 td=4e-10 load=rc r=50 c=2e-12",
    "tline/fdtd1d pattern=010 bt=5e-10 zc=131 td=4e-10 load=receiver",
    "tline/fdtd1d pattern=0110 bt=5e-10 zc=100 td=4e-10 load=rc r=500 c=1e-12",
    "tline/fdtd1d pattern=0110 bt=5e-10 zc=100 td=4e-10 load=rc r=50 c=2e-12",
    "tline/fdtd1d pattern=0110 bt=5e-10 zc=100 td=4e-10 load=receiver",
    "tline/fdtd1d pattern=0110 bt=5e-10 zc=131 td=4e-10 load=rc r=500 c=1e-12",
    "tline/fdtd1d pattern=0110 bt=5e-10 zc=131 td=4e-10 load=rc r=50 c=2e-12",
    "tline/fdtd1d pattern=0110 bt=5e-10 zc=131 td=4e-10 load=receiver",
};

const char* const kGoldenPcbLabels[] = {
    "pcb pattern=01 bt=1e-09 incident=off",
    "pcb pattern=01 bt=1e-09 incident=on",
    "pcb pattern=01 bt=2e-09 incident=off",
    "pcb pattern=01 bt=2e-09 incident=on",
    "pcb pattern=010 bt=1e-09 incident=off",
    "pcb pattern=010 bt=1e-09 incident=on",
    "pcb pattern=010 bt=2e-09 incident=off",
    "pcb pattern=010 bt=2e-09 incident=on",
};

// --- Golden export bytes (pre-redesign SweepRunner on the tiny-model
// sweep below, workers=2; leading newline is literal-formatting only). ---

const char* const kGoldenCsv = R"gold(
index,label,ok,error,eye_height,eye_level_high,eye_level_low,eye_open,v_far_max,v_far_min,overshoot,settling_time,far_end_delay,max_newton_iterations
0,"tline/fdtd1d pattern=010 bt=5e-10 zc=100 td=4e-10 load=rc r=500 c=1e-12",1,"",-0.000794575858,-0.0516810159,-0.0586652688,0,0,-0.0771972638,0.0516810159,1.68165e-09,-1,2
1,"tline/fdtd1d pattern=010 bt=5e-10 zc=100 td=4e-10 load=rc r=50 c=2e-12",1,"",-0.00593973582,-0.0207470011,-0.0154254276,0,0,-0.0207914877,0.0207470011,1.998e-09,-1,2
2,"tline/fdtd1d pattern=010 bt=5e-10 zc=100 td=4e-10 load=receiver",1,"",-0.0115743095,-0.145883904,-0.151871437,0,0,-0.1926777,0.145883904,1.998e-09,-1,3
3,"tline/fdtd1d pattern=010 bt=5e-10 zc=131 td=4e-10 load=rc r=500 c=1e-12",1,"",-0.0043007817,-0.0603872892,-0.0628578004,0,0,-0.0847801008,0.0603872892,1.74825e-09,-1,2
4,"tline/fdtd1d pattern=010 bt=5e-10 zc=131 td=4e-10 load=rc r=50 c=2e-12",1,"",-0.00604270072,-0.0212842603,-0.0156169556,0,0,-0.0213461297,0.0212842603,1.998e-09,-1,2
5,"tline/fdtd1d pattern=010 bt=5e-10 zc=131 td=4e-10 load=receiver",1,"",-0.0188628925,-0.164376084,-0.166571956,0,0,-0.20514351,0.164376084,1.998e-09,-1,3
6,"tline/fdtd1d pattern=0110 bt=5e-10 zc=100 td=4e-10 load=rc r=500 c=1e-12",1,"",0.00913735685,-0.0551731424,-0.0744399648,1,0,-0.0771972638,0.0551731424,1.68165e-09,-1,2
7,"tline/fdtd1d pattern=0110 bt=5e-10 zc=100 td=4e-10 load=rc r=50 c=2e-12",1,"",-0.00421901672,-0.0180862143,-0.0165743151,0,0,-0.0207914877,0.0180862143,1.998e-09,-1,2
8,"tline/fdtd1d pattern=0110 bt=5e-10 zc=100 td=4e-10 load=receiver",1,"",0.00717977015,-0.148877671,-0.170036059,1,0,-0.1926777,0.148877671,1.998e-09,-1,3
9,"tline/fdtd1d pattern=0110 bt=5e-10 zc=131 td=4e-10 load=rc r=500 c=1e-12",1,"",0.0123467911,-0.0616225448,-0.0815990196,1,0,-0.0847801008,0.0616225448,1.74825e-09,-1,2
10,"tline/fdtd1d pattern=0110 bt=5e-10 zc=131 td=4e-10 load=rc r=50 c=2e-12",1,"",-0.00497414319,-0.0184506079,-0.01636524,0,0,-0.0213461297,0.0184506079,1.998e-09,-1,2
11,"tline/fdtd1d pattern=0110 bt=5e-10 zc=131 td=4e-10 load=receiver",1,"",-0.00340277293,-0.16547402,-0.181433144,0,0,-0.20514351,0.16547402,1.998e-09,-1,3
)gold";

const char* const kGoldenJson = R"gold(
{
  "workers": 2,
  "runs": [
    {"index": 0, "label": "tline/fdtd1d pattern=010 bt=5e-10 zc=100 td=4e-10 load=rc r=500 c=1e-12", "ok": true, "error": "", "metrics": {"eye_height": -0.000794575858, "eye_level_high": -0.0516810159, "eye_level_low": -0.0586652688, "eye_open": false, "eye_valid": true, "v_far_max": 0, "v_far_min": -0.0771972638, "overshoot": 0.0516810159, "settling_time": 1.68165e-09, "far_end_delay": -1, "max_newton_iterations": 2}},
    {"index": 1, "label": "tline/fdtd1d pattern=010 bt=5e-10 zc=100 td=4e-10 load=rc r=50 c=2e-12", "ok": true, "error": "", "metrics": {"eye_height": -0.00593973582, "eye_level_high": -0.0207470011, "eye_level_low": -0.0154254276, "eye_open": false, "eye_valid": true, "v_far_max": 0, "v_far_min": -0.0207914877, "overshoot": 0.0207470011, "settling_time": 1.998e-09, "far_end_delay": -1, "max_newton_iterations": 2}},
    {"index": 2, "label": "tline/fdtd1d pattern=010 bt=5e-10 zc=100 td=4e-10 load=receiver", "ok": true, "error": "", "metrics": {"eye_height": -0.0115743095, "eye_level_high": -0.145883904, "eye_level_low": -0.151871437, "eye_open": false, "eye_valid": true, "v_far_max": 0, "v_far_min": -0.1926777, "overshoot": 0.145883904, "settling_time": 1.998e-09, "far_end_delay": -1, "max_newton_iterations": 3}},
    {"index": 3, "label": "tline/fdtd1d pattern=010 bt=5e-10 zc=131 td=4e-10 load=rc r=500 c=1e-12", "ok": true, "error": "", "metrics": {"eye_height": -0.0043007817, "eye_level_high": -0.0603872892, "eye_level_low": -0.0628578004, "eye_open": false, "eye_valid": true, "v_far_max": 0, "v_far_min": -0.0847801008, "overshoot": 0.0603872892, "settling_time": 1.74825e-09, "far_end_delay": -1, "max_newton_iterations": 2}},
    {"index": 4, "label": "tline/fdtd1d pattern=010 bt=5e-10 zc=131 td=4e-10 load=rc r=50 c=2e-12", "ok": true, "error": "", "metrics": {"eye_height": -0.00604270072, "eye_level_high": -0.0212842603, "eye_level_low": -0.0156169556, "eye_open": false, "eye_valid": true, "v_far_max": 0, "v_far_min": -0.0213461297, "overshoot": 0.0212842603, "settling_time": 1.998e-09, "far_end_delay": -1, "max_newton_iterations": 2}},
    {"index": 5, "label": "tline/fdtd1d pattern=010 bt=5e-10 zc=131 td=4e-10 load=receiver", "ok": true, "error": "", "metrics": {"eye_height": -0.0188628925, "eye_level_high": -0.164376084, "eye_level_low": -0.166571956, "eye_open": false, "eye_valid": true, "v_far_max": 0, "v_far_min": -0.20514351, "overshoot": 0.164376084, "settling_time": 1.998e-09, "far_end_delay": -1, "max_newton_iterations": 3}},
    {"index": 6, "label": "tline/fdtd1d pattern=0110 bt=5e-10 zc=100 td=4e-10 load=rc r=500 c=1e-12", "ok": true, "error": "", "metrics": {"eye_height": 0.00913735685, "eye_level_high": -0.0551731424, "eye_level_low": -0.0744399648, "eye_open": true, "eye_valid": true, "v_far_max": 0, "v_far_min": -0.0771972638, "overshoot": 0.0551731424, "settling_time": 1.68165e-09, "far_end_delay": -1, "max_newton_iterations": 2}},
    {"index": 7, "label": "tline/fdtd1d pattern=0110 bt=5e-10 zc=100 td=4e-10 load=rc r=50 c=2e-12", "ok": true, "error": "", "metrics": {"eye_height": -0.00421901672, "eye_level_high": -0.0180862143, "eye_level_low": -0.0165743151, "eye_open": false, "eye_valid": true, "v_far_max": 0, "v_far_min": -0.0207914877, "overshoot": 0.0180862143, "settling_time": 1.998e-09, "far_end_delay": -1, "max_newton_iterations": 2}},
    {"index": 8, "label": "tline/fdtd1d pattern=0110 bt=5e-10 zc=100 td=4e-10 load=receiver", "ok": true, "error": "", "metrics": {"eye_height": 0.00717977015, "eye_level_high": -0.148877671, "eye_level_low": -0.170036059, "eye_open": true, "eye_valid": true, "v_far_max": 0, "v_far_min": -0.1926777, "overshoot": 0.148877671, "settling_time": 1.998e-09, "far_end_delay": -1, "max_newton_iterations": 3}},
    {"index": 9, "label": "tline/fdtd1d pattern=0110 bt=5e-10 zc=131 td=4e-10 load=rc r=500 c=1e-12", "ok": true, "error": "", "metrics": {"eye_height": 0.0123467911, "eye_level_high": -0.0616225448, "eye_level_low": -0.0815990196, "eye_open": true, "eye_valid": true, "v_far_max": 0, "v_far_min": -0.0847801008, "overshoot": 0.0616225448, "settling_time": 1.74825e-09, "far_end_delay": -1, "max_newton_iterations": 2}},
    {"index": 10, "label": "tline/fdtd1d pattern=0110 bt=5e-10 zc=131 td=4e-10 load=rc r=50 c=2e-12", "ok": true, "error": "", "metrics": {"eye_height": -0.00497414319, "eye_level_high": -0.0184506079, "eye_level_low": -0.01636524, "eye_open": false, "eye_valid": true, "v_far_max": 0, "v_far_min": -0.0213461297, "overshoot": 0.0184506079, "settling_time": 1.998e-09, "far_end_delay": -1, "max_newton_iterations": 2}},
    {"index": 11, "label": "tline/fdtd1d pattern=0110 bt=5e-10 zc=131 td=4e-10 load=receiver", "ok": true, "error": "", "metrics": {"eye_height": -0.00340277293, "eye_level_high": -0.16547402, "eye_level_low": -0.181433144, "eye_open": false, "eye_valid": true, "v_far_max": 0, "v_far_min": -0.20514351, "overshoot": 0.16547402, "settling_time": 1.998e-09, "far_end_delay": -1, "max_newton_iterations": 3}}
  ]
}
)gold";

/// The tiny-model t-line sweep the goldens were captured on, built through
/// the migration shims (old fixed nesting order: pattern, bit_time, zc,
/// td, load, rc_load).
SweepSpec goldenTlineSpec() {
  TlineScenario base;
  base.t_stop = 2e-9;
  base.strip_len = 24;
  SweepSpec spec = makeTlineSweep(base, TlineEngine::kFdtd1d);
  spec.driver = "tinydrv";
  spec.receiver = "tinyrcv";
  addPatternAxis(spec, {"010", "0110"});
  addBitTimeAxis(spec, {0.5e-9});
  addZcAxis(spec, {100.0, 131.0});
  addLoadAxis(spec, {FarEndLoad::kLinearRc, FarEndLoad::kReceiver});
  addRcLoadAxis(spec, {{500.0, 1e-12}, {50.0, 2e-12}});
  return spec;
}

std::string stripLeadingNewline(const char* golden) {
  return std::string(golden).substr(1);
}

TEST(SweepMigration, TlineLabelsAndOrderingAreUnchanged) {
  const auto tasks = goldenTlineSpec().expand();
  ASSERT_EQ(tasks.size(), std::size(kGoldenTlineLabels));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].index, i);
    EXPECT_EQ(tasks[i].label, kGoldenTlineLabels[i]);
  }
}

TEST(SweepMigration, PcbLabelsAndOrderingAreUnchanged) {
  SweepSpec spec = makePcbSweep();
  addPatternAxis(spec, {"01", "010"});
  addBitTimeAxis(spec, {1e-9, 2e-9});
  addIncidentFieldAxis(spec, {false, true});
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), std::size(kGoldenPcbLabels));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].index, i);
    EXPECT_EQ(tasks[i].label, kGoldenPcbLabels[i]);
  }
}

TEST(SweepMigration, CsvAndJsonExportsAreByteIdenticalToPreRedesign) {
  auto cache = testmodels::tinyCache();
  SweepOptions opt;
  opt.workers = 2;  // the goldens were captured with workers=2
  SweepRunner runner(opt, cache);
  const auto result = runner.run(goldenTlineSpec());
  ASSERT_EQ(result.okCount(), result.runs.size());

  const std::string dir = testing::TempDir();
  const std::string csv_path = dir + "migration_pin.csv";
  const std::string json_path = dir + "migration_pin.json";
  writeSweepCsv(result, csv_path);
  writeSweepJson(result, json_path);
  EXPECT_EQ(testmodels::slurp(csv_path), stripLeadingNewline(kGoldenCsv));
  EXPECT_EQ(testmodels::slurp(json_path), stripLeadingNewline(kGoldenJson));
  std::filesystem::remove(csv_path);
  std::filesystem::remove(json_path);
}

}  // namespace
}  // namespace fdtdmm
