// Unit tests for the scalar and vector Newton solvers.
#include "math/newton.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fdtdmm {
namespace {

TEST(NewtonScalar, SquareRoot) {
  double x = 1.0;
  const auto res = newtonScalar(
      [](double v, double& df) {
        df = 2.0 * v;
        return v * v - 2.0;
      },
      x);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(x, std::sqrt(2.0), 1e-8);
  EXPECT_LE(res.iterations, 10);
}

TEST(NewtonScalar, QuadraticConvergenceIsFast) {
  // Starting close, Newton should need very few iterations at tol 1e-9 —
  // the regime the paper exploits (<= 3 iterations per FDTD step).
  double x = 1.4;
  const auto res = newtonScalar(
      [](double v, double& df) {
        df = 2.0 * v;
        return v * v - 2.0;
      },
      x, {.max_iterations = 50, .tolerance = 1e-9});
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 3);
}

TEST(NewtonScalar, LinearProblemOneIteration) {
  double x = 0.0;
  const auto res = newtonScalar(
      [](double v, double& df) {
        df = 3.0;
        return 3.0 * v - 6.0;
      },
      x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 1);
  EXPECT_NEAR(x, 2.0, 1e-12);
}

TEST(NewtonScalar, AlreadyConvergedZeroIterations) {
  double x = 2.0;
  const auto res = newtonScalar(
      [](double v, double& df) {
        df = 1.0;
        return v - 2.0;
      },
      x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(NewtonScalar, FlatDerivativeFails) {
  double x = 0.0;
  const auto res = newtonScalar(
      [](double, double& df) {
        df = 0.0;
        return 1.0;
      },
      x);
  EXPECT_FALSE(res.converged);
}

TEST(NewtonScalar, StepClampDamps) {
  double x = 0.0;
  NewtonOptions opt;
  opt.max_step = 0.1;
  opt.max_iterations = 200;
  const auto res = newtonScalar(
      [](double v, double& df) {
        df = 1.0;
        return v - 5.0;
      },
      x, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_GE(res.iterations, 50);  // 5.0 / 0.1 steps
  EXPECT_NEAR(x, 5.0, 1e-9);
}

TEST(NewtonVector, Solves2x2Nonlinear) {
  // x^2 + y^2 = 5, x*y = 2 -> (2, 1) from a nearby start.
  Vector x{1.8, 1.2};
  const auto res = newtonVector(
      [](const Vector& v) {
        return Vector{v[0] * v[0] + v[1] * v[1] - 5.0, v[0] * v[1] - 2.0};
      },
      [](const Vector& v) {
        return Matrix{{2.0 * v[0], 2.0 * v[1]}, {v[1], v[0]}};
      },
      x);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-8);
  EXPECT_NEAR(x[1], 1.0, 1e-8);
}

TEST(NewtonVector, LinearSystemOneIteration) {
  Vector x{0.0, 0.0};
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const auto res = newtonVector(
      [&](const Vector& v) {
        Vector f = a * v;
        f[0] -= 5.0;
        f[1] -= 10.0;
        return f;
      },
      [&](const Vector&) { return a; }, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 1);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
}

}  // namespace
}  // namespace fdtdmm
