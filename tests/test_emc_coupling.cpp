// Physics validation of the Taylor/Agrawal field-coupling subsystem
// (src/emc): closed-form checks of the distributed series sources and the
// end risers on a matched lossless line, image-theory behavior over the
// ground plane, linearity, and determinism.
#include "emc/coupled_line.h"
#include "emc/emc_scenario.h"
#include "emc/field_source.h"
#include "emc/trace_geometry.h"

#include <gtest/gtest.h>

#include <cmath>

#include "signal/sources.h"

namespace fdtdmm {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kDeg = kPi / 180.0;

double peakAbs(const Waveform& w) {
  double peak = 0.0;
  for (std::size_t k = 0; k < w.size(); ++k)
    peak = std::max(peak, std::abs(w[k]));
  return peak;
}

/// Quiescent matched 50-ohm line, 0.2 m (Td = 1 ns), broadside-ready.
EmcScenario matchedLineConfig() {
  EmcScenario cfg;
  cfg.drive = "none";
  cfg.termination = "resistive";
  cfg.line.r = 0.0;
  cfg.line.g = 0.0;
  cfg.line.l = 2.5e-7;
  cfg.line.c = 1e-10;  // Zc = 50 ohm, v = 2e8 m/s
  cfg.line.length = 0.2;
  cfg.line.segments = 64;
  cfg.r_near = 50.0;
  cfg.r_far = 50.0;
  cfg.height = 1.5e-3;
  cfg.dt = 4e-12;
  cfg.t_stop = 6e-9;
  cfg.pulse_t0 = 2e-9;
  cfg.bandwidth = 1e9;
  cfg.ground_reflection = false;  // compare against free-space closed forms
  return cfg;
}

TEST(TraceGeometry, SamplesAndValidates) {
  const TraceGeometry geom = straightTrace(0.01, 0.02, 90.0, 0.1, 2e-3, 5e-3);
  EXPECT_NEAR(traceLength(geom), 0.1, 1e-12);
  const TraceSample mid = sampleTrace(geom, 0.05);
  EXPECT_NEAR(mid.x, 0.01, 1e-9);
  EXPECT_NEAR(mid.y, 0.07, 1e-9);
  EXPECT_NEAR(mid.z, 7e-3, 1e-12);
  EXPECT_NEAR(mid.ux, 0.0, 1e-12);
  EXPECT_NEAR(mid.uy, 1.0, 1e-12);

  TraceGeometry bad;
  bad.route = {{0, 0}};
  EXPECT_THROW(validateTraceGeometry(bad), std::invalid_argument);
  bad.route = {{0, 0}, {0, 0}};
  EXPECT_THROW(validateTraceGeometry(bad), std::invalid_argument);
  EXPECT_THROW(straightTrace(0, 0, 0, -1.0, 1e-3), std::invalid_argument);
  EXPECT_THROW(straightTrace(0, 0, 0, 1.0, 0.0), std::invalid_argument);
}

TEST(AgrawalSources, TangentialProjectionAndDelays) {
  // Wave from +z (k = -z), theta-polarized along +x at theta = 0, phi = 0.
  const double sigma = 50e-12;
  const PlaneWave wave(0.0, 0.0, 100.0, gaussianPulseShape(1e-9, sigma));
  AgrawalOptions opt;
  opt.ground_reflection = false;

  // Trace along +x: full tangential projection.
  const AgrawalSources along(
      wave, straightTrace(0.0, 0.0, 0.0, 0.1, 1e-3), 4, opt);
  // Trace along +y: no tangential projection anywhere.
  const AgrawalSources across(
      wave, straightTrace(0.0, 0.0, 90.0, 0.1, 1e-3), 4, opt);

  // At the pulse peak (wire height z = 1 mm, delay -z/c), the segment EMF
  // equals E * ds for the aligned trace and vanishes for the orthogonal
  // one; vertical risers vanish for this polarization.
  const double t_peak = 1e-9 - 1e-3 / 299792458.0;
  EXPECT_NEAR(along.segmentEmf(0, t_peak), 100.0 * 0.025, 1e-9);
  EXPECT_NEAR(along.segmentEmf(3, t_peak), 100.0 * 0.025, 1e-9);
  EXPECT_NEAR(across.segmentEmf(1, t_peak), 0.0, 1e-12);
  EXPECT_NEAR(along.incidentVoltageNear(t_peak), 0.0, 1e-12);
  EXPECT_NEAR(along.incidentVoltageFar(t_peak), 0.0, 1e-12);

  EXPECT_THROW(AgrawalSources(wave, straightTrace(0, 0, 0, 0.1, 1e-3), 0, opt),
               std::invalid_argument);
}

// The closed-form validation of the satellite task: a matched lossless
// line under broadside illumination polarized along the trace. The
// distributed Agrawal sources are then uniform, E(t) = A g(t + h/c), and
// the matched far/near-end responses have the exact weak-coupling form
//   V_far(t)  = +(v/2) int_0^Td E(t - u) du,
//   V_near(t) = -(v/2) int_0^Td E(t - u) du,
// whose Gaussian integral is an erf difference.
TEST(EmcCoupling, MatchedLineBroadsideMatchesClosedForm) {
  EmcScenario cfg = matchedLineConfig();
  cfg.amplitude = 1000.0;
  cfg.theta_deg = 0.0;  // arrival from +z, k = -z
  cfg.phi_deg = 0.0;
  cfg.pol_theta = 1.0;  // E along +x = along the trace
  cfg.pol_phi = 0.0;

  const auto waves = runEmcScenario(cfg, nullptr, nullptr);
  ASSERT_FALSE(waves.v_far.empty());

  const double c0 = 299792458.0;
  const double v = 1.0 / std::sqrt(cfg.line.l * cfg.line.c);
  const double td = cfg.line.length / v;
  const double sigma = gaussianSigmaForBandwidth(cfg.bandwidth);
  const double tau_h = -cfg.height / c0;  // wave delay at wire height
  const auto closed_form = [&](double t) {
    // (A v / 2) * int_{t-Td}^{t} g(u - tau_h) du, g Gaussian centered t0.
    const double s2 = sigma * std::sqrt(2.0);
    const double hi = (t - tau_h - cfg.pulse_t0) / s2;
    const double lo = (t - td - tau_h - cfg.pulse_t0) / s2;
    return 0.5 * cfg.amplitude * v * sigma * std::sqrt(kPi / 2.0) *
           (std::erf(hi) - std::erf(lo));
  };

  double peak = 0.0, err_far = 0.0, err_near = 0.0;
  for (std::size_t k = 0; k < waves.v_far.size(); ++k) {
    const double t = waves.v_far.t0() + static_cast<double>(k) * waves.v_far.dt();
    const double ref = closed_form(t);
    peak = std::max(peak, std::abs(ref));
    err_far = std::max(err_far, std::abs(waves.v_far[k] - ref));
    err_near = std::max(err_near, std::abs(waves.v_near[k] + ref));
  }
  ASSERT_GT(peak, 1.0);  // the illumination induces a volts-scale response
  // 64-segment ladder + theta-method time stepping: a few percent.
  EXPECT_LT(err_far, 0.04 * peak);
  EXPECT_LT(err_near, 0.04 * peak);
}

// Riser check: grazing incidence along the trace with vertical
// polarization excites only the end risers; with both ends nearly open the
// terminal voltages follow the incident vertical voltage -int Ez dz =
// A h g(t - x_end/c) with the per-end propagation delay.
TEST(EmcCoupling, VerticalRisersQuasiStaticLimit) {
  EmcScenario cfg = matchedLineConfig();
  cfg.line.length = 0.05;  // Td = 0.25 ns << pulse width
  cfg.line.segments = 16;
  cfg.amplitude = 1000.0;
  cfg.theta_deg = 90.0;  // arrival from -x: k = +x
  cfg.phi_deg = 180.0;
  cfg.pol_theta = 1.0;  // E = -z at this direction
  cfg.bandwidth = 2e8;  // slow pulse (sigma ~ 0.66 ns)
  cfg.pulse_t0 = 5e-9;
  cfg.t_stop = 10e-9;
  cfg.dt = 10e-12;
  cfg.r_near = 1e6;
  cfg.r_far = 1e6;

  const auto waves = runEmcScenario(cfg, nullptr, nullptr);
  const double c0 = 299792458.0;
  const double sigma = gaussianSigmaForBandwidth(cfg.bandwidth);
  const auto g = [&](double t) {
    const double u = (t - cfg.pulse_t0) / sigma;
    return std::exp(-0.5 * u * u);
  };
  double err_near = 0.0, err_far = 0.0;
  for (std::size_t k = 0; k < waves.v_near.size(); ++k) {
    const double t = waves.v_near.t0() + static_cast<double>(k) * waves.v_near.dt();
    const double ref_near = cfg.amplitude * cfg.height * g(t);
    const double ref_far =
        cfg.amplitude * cfg.height * g(t - cfg.line.length / c0);
    err_near = std::max(err_near, std::abs(waves.v_near[k] - ref_near));
    err_far = std::max(err_far, std::abs(waves.v_far[k] - ref_far));
  }
  const double peak = cfg.amplitude * cfg.height;  // 1.5 V
  EXPECT_LT(err_near, 0.05 * peak);
  EXPECT_LT(err_far, 0.05 * peak);
}

// Image theory: over the ground plane the tangential excitation vanishes
// as the trace approaches the plane, and the vertical (normal) excitation
// doubles.
TEST(EmcCoupling, GroundReflectionLimits) {
  // Tangential: broadside coupling collapses as height -> 0.
  EmcScenario tan_cfg = matchedLineConfig();
  tan_cfg.amplitude = 1000.0;
  tan_cfg.theta_deg = 0.0;
  tan_cfg.phi_deg = 0.0;
  const auto free_space = runEmcScenario(tan_cfg, nullptr, nullptr);
  tan_cfg.ground_reflection = true;
  tan_cfg.height = 0.05e-3;
  const auto grounded = runEmcScenario(tan_cfg, nullptr, nullptr);
  EXPECT_LT(peakAbs(grounded.v_far), 0.05 * peakAbs(free_space.v_far));

  // Vertical: the riser voltage doubles with the image (normal component
  // adds in phase for the grazing geometry of the quasi-static test).
  EmcScenario riser_cfg = matchedLineConfig();
  riser_cfg.line.length = 0.05;
  riser_cfg.line.segments = 16;
  riser_cfg.amplitude = 1000.0;
  riser_cfg.theta_deg = 90.0;
  riser_cfg.phi_deg = 180.0;
  riser_cfg.bandwidth = 2e8;
  riser_cfg.pulse_t0 = 5e-9;
  riser_cfg.t_stop = 10e-9;
  riser_cfg.dt = 10e-12;
  riser_cfg.r_near = 1e6;
  riser_cfg.r_far = 1e6;
  const auto single = runEmcScenario(riser_cfg, nullptr, nullptr);
  riser_cfg.ground_reflection = true;
  const auto doubled = runEmcScenario(riser_cfg, nullptr, nullptr);
  EXPECT_NEAR(peakAbs(doubled.v_near), 2.0 * peakAbs(single.v_near),
              0.02 * peakAbs(doubled.v_near));
}

TEST(EmcCoupling, LinearInAmplitudeAndQuietWithoutField) {
  EmcScenario cfg = matchedLineConfig();
  cfg.amplitude = 0.0;
  const auto quiet = runEmcScenario(cfg, nullptr, nullptr);
  EXPECT_LT(peakAbs(quiet.v_far), 1e-12);

  cfg.amplitude = 500.0;
  cfg.theta_deg = 60.0;
  cfg.phi_deg = 150.0;
  cfg.pol_theta = 0.7;
  cfg.pol_phi = 0.3;
  cfg.ground_reflection = true;
  const auto a = runEmcScenario(cfg, nullptr, nullptr);
  cfg.amplitude = 1000.0;
  const auto b = runEmcScenario(cfg, nullptr, nullptr);
  ASSERT_EQ(a.v_far.size(), b.v_far.size());
  ASSERT_GT(peakAbs(a.v_far), 0.0);
  double err = 0.0;
  for (std::size_t k = 0; k < a.v_far.size(); ++k)
    err = std::max(err, std::abs(b.v_far[k] - 2.0 * a.v_far[k]));
  EXPECT_LT(err, 1e-9 * peakAbs(b.v_far));
}

TEST(EmcCoupling, DeterministicAndSingleFactorization) {
  EmcScenario cfg = matchedLineConfig();
  cfg.amplitude = 1000.0;
  const auto a = runEmcScenario(cfg, nullptr, nullptr);
  const auto b = runEmcScenario(cfg, nullptr, nullptr);
  ASSERT_EQ(a.v_far.size(), b.v_far.size());
  for (std::size_t k = 0; k < a.v_far.size(); ++k) {
    EXPECT_EQ(a.v_far[k], b.v_far[k]);
    EXPECT_EQ(a.v_near[k], b.v_near[k]);
  }

  // The field excitation is RHS-only: sparse and cached-LU agree and the
  // sparse run of this linear circuit factors once (checked indirectly by
  // equal results; the factorization counter is asserted in the transient
  // equivalence suite — here we check solver-mode agreement).
  cfg.solver = "sparse";
  const auto sparse = runEmcScenario(cfg, nullptr, nullptr);
  double err = 0.0;
  for (std::size_t k = 0; k < a.v_far.size(); ++k)
    err = std::max(err, std::abs(sparse.v_far[k] - a.v_far[k]));
  EXPECT_LT(err, 1e-7);
}

}  // namespace
}  // namespace fdtdmm
