// Tests of the sqrt-f skin-effect rational fit (freq/rational_fit.h) and
// its synthesis into the RLGC ladder: fit accuracy over the band, and
// time- vs frequency-domain consistency of the synthesized circuit.
#include "freq/rational_fit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <stdexcept>

#include "circuit/rlgc_line.h"
#include "circuit/transient.h"
#include "freq/ac_engine.h"
#include "freq/ac_family.h"

namespace fdtdmm {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(SkinEffect, TargetResistanceHasTheRightAsymptotes) {
  const double rdc = 1.0, k = 2e-4;
  EXPECT_NEAR(skinEffectResistance(rdc, k, 0.0), rdc, 1e-15);
  // Deep skin regime: k sqrt(f) >> rdc.
  const double f_hi = 1e12;
  EXPECT_NEAR(skinEffectResistance(rdc, k, f_hi), k * std::sqrt(f_hi),
              0.01 * k * std::sqrt(f_hi));
  // Monotone in f.
  EXPECT_GT(skinEffectResistance(rdc, k, 1e9), skinEffectResistance(rdc, k, 1e8));
}

// The acceptance criterion: 4 branches hold the fit within 5% relative
// error over two decades — checked both via the fit's own reported error
// and independently on a denser grid through skinFitImpedance.
TEST(SkinEffect, FourBranchFitWithinFivePercentOverTwoDecades) {
  const double rdc = 1.0, k = 2e-4, f_min = 1e7, f_max = 1e9;
  const SkinEffectFit fit = fitSkinEffect(rdc, k, f_min, f_max, 4);
  EXPECT_EQ(fit.branches.size(), 4u);
  EXPECT_LT(fit.max_rel_error, 0.05);

  double worst = 0.0;
  const int n = 97;
  for (int i = 0; i < n; ++i) {
    const double f =
        f_min * std::pow(f_max / f_min, static_cast<double>(i) / (n - 1));
    const double target = skinEffectResistance(rdc, k, f);
    const double fitted = skinFitImpedance(fit, f).real();
    worst = std::max(worst, std::abs(fitted - target) / target);
  }
  EXPECT_LT(worst, 0.05);

  // Passivity of the synthesis: no negative branch values, ever.
  for (const SkinBranch& b : fit.branches) {
    EXPECT_GE(b.r, 0.0);
    EXPECT_GE(b.l, 0.0);
  }
  EXPECT_GT(skinFitInductance(fit), 0.0);
}

TEST(SkinEffect, ZeroSkinCoefficientIsBranchFreeAndExact) {
  const SkinEffectFit fit = fitSkinEffect(2.0, 0.0, 1e6, 1e9, 4);
  EXPECT_TRUE(fit.branches.empty());
  EXPECT_DOUBLE_EQ(fit.max_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(skinFitImpedance(fit, 1e8).real(), 2.0);
  EXPECT_DOUBLE_EQ(skinFitInductance(fit), 0.0);
}

TEST(SkinEffect, FitRejectsInvalidArguments) {
  EXPECT_THROW(fitSkinEffect(0.0, 1e-4, 1e6, 1e9), std::invalid_argument);
  EXPECT_THROW(fitSkinEffect(1.0, -1.0, 1e6, 1e9), std::invalid_argument);
  EXPECT_THROW(fitSkinEffect(1.0, 1e-4, 1e9, 1e6), std::invalid_argument);
  EXPECT_THROW(fitSkinEffect(1.0, 1e-4, 1e6, 1e9, 0), std::invalid_argument);
  EXPECT_THROW(fitSkinEffect(1.0, 1e-4, 1e6, 1e9, 8, 4), std::invalid_argument);
}

// The lossy scenario of the cross-validation below: visible sqrt-f loss
// (several ohms of series resistance at the test frequencies).
AcScenario lossyScenario() {
  AcScenario cfg;
  cfg.line.r = 50.0;
  cfg.line.segments = 16;
  cfg.k_skin = 2e-3;
  cfg.skin_fmin = 1e7;
  cfg.skin_fmax = 1e9;
  cfg.skin_branches = 4;
  return cfg;
}

TEST(SkinEffect, SkinLossReducesTransferAboveTheCrossover) {
  AcScenario cfg = lossyScenario();
  cfg.frequency = 5e8;
  const TaskWaveforms lossy = runAcScenario(cfg);
  cfg.k_skin = 0.0;  // same line, constant R
  const TaskWaveforms flat = runAcScenario(cfg);
  // k sqrt(f) = 44.7 ohm/m on top of rdc = 50: the skin model must lose
  // measurably more than the constant-R line, but not implausibly much.
  EXPECT_LT(lossy.v_far.samples()[0], 0.99 * flat.v_far.samples()[0]);
  EXPECT_GT(lossy.v_far.samples()[0], 0.5 * flat.v_far.samples()[0]);
}

// Acceptance criterion: the synthesized ladder is ONE circuit with two
// consistent descriptions. Drive it with a steady-state sinusoid in the
// time domain, DFT the far-end tail, and compare against the AC engine's
// |H| at the same frequency — within 5% across the band.
TEST(SkinEffect, SynthesizedLadderTransientMatchesAcSweepInBand) {
  const AcScenario cfg = lossyScenario();

  // The same synthesis runAcScenario performs (resolveSkin): fit, shave
  // the branch inductance off the main L, chain the branches per segment.
  const SkinEffectFit fit = fitSkinEffect(cfg.line.r, cfg.k_skin, cfg.skin_fmin,
                                          cfg.skin_fmax, cfg.skin_branches);
  const double l_skin = skinFitInductance(fit);
  ASSERT_LT(l_skin, cfg.line.l);
  RlgcParams line = cfg.line;
  line.l = cfg.line.l - l_skin;
  std::vector<SeriesRlBranch> branches;
  for (const SkinBranch& b : fit.branches)
    if (b.r > 0.0 && b.l > 0.0) branches.push_back({b.r, b.l});

  for (double f : {5e7, 2e8}) {
    AcScenario point = cfg;
    point.frequency = f;
    const double h_ac = runAcScenario(point).v_far.samples()[0];

    Circuit circuit;
    const int p1 = circuit.addNode();
    const int p2 = circuit.addNode();
    const int s1 = circuit.addNode();
    const int s2 = circuit.addNode();
    circuit.addVoltageSource(s1, Circuit::kGround, [f](double t) {
      return std::sin(2.0 * kPi * f * t);
    });
    circuit.addResistor(s1, p1, cfg.z0);
    circuit.addVoltageSource(s2, Circuit::kGround, [](double) { return 0.0; });
    circuit.addResistor(s2, p2, cfg.z0);
    buildRlgcLineSegments(circuit, p1, Circuit::kGround, p2, Circuit::kGround,
                          line, branches);

    // Settle past the slowest skin branch (tau = 1 / w_corner ~ 16 ns at
    // the 10 MHz corner), then DFT an integer number of periods.
    const double period = 1.0 / f;
    const double t_start = 60e-9;
    const double window = 2.0 * period;
    TransientOptions opt;
    opt.dt = period / 250.0;
    opt.t_stop = t_start + window;
    const auto res = runTransient(circuit, opt, {{"v", p2, 0}});
    ASSERT_TRUE(res.converged);
    const Waveform& v = res.at("v");

    const std::size_t m = 2048;
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t k = 0; k < m; ++k) {
      const double t = t_start + window * static_cast<double>(k) / m;
      acc += v.value(t) * std::exp(std::complex<double>(0.0, -2.0 * kPi * f * t));
    }
    const double h_dft = 2.0 * std::abs(acc) / static_cast<double>(m);

    EXPECT_NEAR(h_dft, h_ac, 0.05 * h_ac) << "f=" << f;
  }
}

}  // namespace
}  // namespace fdtdmm
