// Concurrency hammering for the engine's three shared caches. The sweep
// engine's economics rest on exactly-once semantics under contention: many
// workers asking for the same model / solver state / finished record must
// trigger exactly one identification / factorization / insert, with no
// torn statistics. These tests throw a thread barrage at each cache and
// assert the counters add up exactly. They are also the designated prey of
// the CI ThreadSanitizer job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/model_cache.h"
#include "engine/result_cache.h"
#include "engine/solver_state_cache.h"
#include "engine/sweep_result.h"

namespace fdtdmm {
namespace {

constexpr int kThreads = 8;
constexpr int kLookupsPerThread = 16;

// Launches `n` threads on `fn(thread_index)` and joins them all. The
// barrier-ish start (threads spin up before any returns) maximizes real
// contention on the cache locks.
void hammer(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) threads.emplace_back(fn, t);
  for (auto& th : threads) th.join();
}

TEST(EngineCaches, ModelCacheConcurrentFirstLookupIdentifiesOnce) {
  ModelCache cache;
  std::vector<std::shared_ptr<const RbfDriverModel>> seen(kThreads);
  hammer(kThreads, [&](int t) {
    // Every thread races the FIRST resolution of "default": the built-in
    // identification must run exactly once, under the cache lock.
    for (int i = 0; i < kLookupsPerThread; ++i)
      seen[static_cast<std::size_t>(t)] = cache.driver("default");
  });
  for (const auto& model : seen) {
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model, seen.front());  // one instance, shared by all
  }
  const ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.hits, static_cast<long long>(kThreads) * kLookupsPerThread - 1);
}

TEST(EngineCaches, SolverStateCacheBuildsNumericBaseExactlyOnce) {
  SolverStateCache cache;
  std::atomic<int> builds{0};
  std::vector<std::shared_ptr<const SolverNumericBase>> seen(kThreads);
  hammer(kThreads, [&](int t) {
    for (int i = 0; i < kLookupsPerThread; ++i) {
      seen[static_cast<std::size_t>(t)] = cache.numericBase("class-a", [&] {
        ++builds;
        // Stretch the build window so every other thread is parked on the
        // entry mutex while the builder runs.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return std::make_shared<SolverNumericBase>();
      });
    }
  });
  EXPECT_EQ(builds.load(), 1);
  for (const auto& base : seen) {
    ASSERT_NE(base, nullptr);
    EXPECT_EQ(base, seen.front());
  }
  const SolverStateCacheStats stats = cache.stats();
  EXPECT_EQ(stats.numeric_misses, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.numeric_hits,
            static_cast<long long>(kThreads) * kLookupsPerThread - 1);
  EXPECT_EQ(stats.symbolic_hits + stats.symbolic_misses, 0);
  EXPECT_EQ(cache.numericClassCount(), 1u);
}

TEST(EngineCaches, SolverStateCacheDistinctKeysBuildConcurrently) {
  SolverStateCache cache;
  std::atomic<int> builds{0};
  hammer(kThreads, [&](int t) {
    const std::string key = "class-" + std::to_string(t % 4);
    for (int i = 0; i < kLookupsPerThread; ++i) {
      auto sym = cache.symbolic(key, [&] {
        ++builds;
        auto s = std::make_shared<SolverSymbolic>();
        s->n = static_cast<std::size_t>(t % 4);
        return s;
      });
      ASSERT_NE(sym, nullptr);
      EXPECT_EQ(sym->n, static_cast<std::size_t>(t % 4));
    }
  });
  EXPECT_EQ(builds.load(), 4);
  const SolverStateCacheStats stats = cache.stats();
  EXPECT_EQ(stats.symbolic_misses, 4);
  EXPECT_EQ(stats.inserts, 4);
  EXPECT_EQ(stats.symbolic_hits,
            static_cast<long long>(kThreads) * kLookupsPerThread - 4);
  EXPECT_EQ(cache.structureClassCount(), 4u);
}

TEST(EngineCaches, SolverStateCacheThrowingBuilderPublishesNothing) {
  SolverStateCache cache;
  EXPECT_THROW(cache.numericBase("bad",
                                 []() -> std::shared_ptr<const SolverNumericBase> {
                                   throw std::runtime_error("singular");
                                 }),
               std::runtime_error);
  EXPECT_EQ(cache.numericClassCount(), 0u);
  // The next caller retries the build and can succeed.
  auto base =
      cache.numericBase("bad", [] { return std::make_shared<SolverNumericBase>(); });
  EXPECT_NE(base, nullptr);
  const SolverStateCacheStats stats = cache.stats();
  EXPECT_EQ(stats.numeric_misses, 2);  // the failed attempt counts as a miss
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(cache.numericClassCount(), 1u);
}

TEST(EngineCaches, ResultCacheConcurrentPutInsertsOnce) {
  ResultCache cache;
  SweepRunRecord rec;
  rec.ok = true;
  rec.label = "corner";
  hammer(kThreads, [&](int t) {
    for (int i = 0; i < kLookupsPerThread; ++i) {
      cache.put("key", rec);
      (void)cache.find("key");
    }
    (void)t;
  });
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 1);  // first wins, every later put is a no-op
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<long long>(kThreads) * kLookupsPerThread);
  auto hit = cache.find("key");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->label, "corner");
  // Failed records are never cached.
  SweepRunRecord bad;
  bad.ok = false;
  cache.put("other", bad);
  EXPECT_EQ(cache.find("other"), nullptr);
}

TEST(EngineCaches, ResultCacheMaxEntriesRefusesNewKeysOnly) {
  ResultCache cache(2);
  EXPECT_EQ(cache.maxEntries(), 2u);
  SweepRunRecord rec;
  rec.ok = true;
  cache.put("a", rec);
  cache.put("b", rec);
  cache.put("c", rec);  // at capacity: refused, not evicted
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find("c"), nullptr);
  EXPECT_NE(cache.find("a"), nullptr);
  // Re-putting a cached key is a no-op, never a refusal.
  cache.put("a", rec);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 2);
  EXPECT_EQ(stats.refused_inserts, 1);

  // Raising the bound admits new keys again; shrinking evicts nothing.
  cache.setMaxEntries(3);
  cache.put("c", rec);
  EXPECT_EQ(cache.size(), 3u);
  cache.setMaxEntries(1);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_NE(cache.find("c"), nullptr);
  EXPECT_EQ(cache.stats().refused_inserts, 1);
}

TEST(EngineCaches, SolverStateCacheMaxEntriesBuildsPrivatelyPastTheCap) {
  SolverStateCache cache(1);
  EXPECT_EQ(cache.maxEntries(), 1u);
  std::atomic<int> builds{0};
  auto builder = [&] {
    ++builds;
    return std::make_shared<SolverNumericBase>();
  };
  auto a1 = cache.numericBase("class-a", builder);
  auto a2 = cache.numericBase("class-a", builder);
  EXPECT_EQ(a1, a2);  // in-capacity key shares normally
  // Past the cap: every lookup of the refused key still gets a value, but
  // privately — the builder runs per call and nothing is published.
  auto b1 = cache.numericBase("class-b", builder);
  auto b2 = cache.numericBase("class-b", builder);
  ASSERT_NE(b1, nullptr);
  ASSERT_NE(b2, nullptr);
  EXPECT_NE(b1, b2);
  EXPECT_EQ(builds.load(), 3);
  EXPECT_EQ(cache.numericClassCount(), 1u);

  const SolverStateCacheStats stats = cache.stats();
  EXPECT_EQ(stats.numeric_hits, 1);
  EXPECT_EQ(stats.numeric_misses, 3);  // the build, plus both refused calls
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.refused_inserts, 2);

  // The bound covers each class map separately: the symbolic map is empty,
  // so its first key publishes normally.
  auto sym = cache.symbolic("sym-a", [] {
    return std::make_shared<SolverSymbolic>();
  });
  EXPECT_NE(sym, nullptr);
  EXPECT_EQ(cache.structureClassCount(), 1u);
  EXPECT_EQ(cache.stats().refused_inserts, 2);

  // Raising the bound lets the refused key publish on the next lookup.
  cache.setMaxEntries(2);
  auto b3 = cache.numericBase("class-b", builder);
  auto b4 = cache.numericBase("class-b", builder);
  EXPECT_EQ(b3, b4);
  EXPECT_EQ(cache.numericClassCount(), 2u);
}

}  // namespace
}  // namespace fdtdmm
