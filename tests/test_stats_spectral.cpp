// Unit tests for error metrics and spectral-radius estimation.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "math/spectral.h"
#include "math/stats.h"

namespace fdtdmm {
namespace {

TEST(Stats, Rms) {
  EXPECT_DOUBLE_EQ(rms({3.0, 4.0, 0.0, 0.0}), 2.5);
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

TEST(Stats, RmsError) {
  EXPECT_DOUBLE_EQ(rmsError({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(rmsError({1.0, 2.0}, {2.0, 1.0}), 1.0);
  EXPECT_THROW(rmsError({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Stats, Nrmse) {
  const Vector ref{0.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(nrmse(ref, ref), 0.0);
  EXPECT_NEAR(nrmse({0.2, 1.2, 2.2}, ref), 0.1, 1e-12);
  EXPECT_THROW(nrmse({1.0, 1.0}, {2.0, 2.0}), std::invalid_argument);
}

TEST(Stats, MaxAbsErrorAndMinMax) {
  EXPECT_DOUBLE_EQ(maxAbsError({1.0, 5.0}, {1.0, 2.0}), 3.0);
  const MinMax mm = minMax({3.0, -1.0, 2.0});
  EXPECT_DOUBLE_EQ(mm.min, -1.0);
  EXPECT_DOUBLE_EQ(mm.max, 3.0);
  EXPECT_THROW(minMax({}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, StddevIsSampleStddev) {
  EXPECT_DOUBLE_EQ(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                   std::sqrt(32.0 / 7.0));
  EXPECT_DOUBLE_EQ(stddev({3.0}), 0.0);  // n < 2: undefined, reported as 0
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Stats, QuantileInterpolatesType7) {
  const Vector v{1.0, 2.0, 3.0, 4.0};  // h = q * (n - 1)
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
  // Input order must not matter (quantile sorts a copy).
  EXPECT_DOUBLE_EQ(quantile({4.0, 1.0, 3.0, 2.0}, 0.25), 1.75);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.1), std::invalid_argument);
}

TEST(Stats, QuantilesMatchesScalarQuantile) {
  const Vector v{5.0, 1.0, 4.0, 2.0, 3.0};
  const auto qs = quantiles(v, {0.05, 0.5, 0.95});
  ASSERT_EQ(qs.size(), 3u);
  EXPECT_DOUBLE_EQ(qs[0], quantile(v, 0.05));
  EXPECT_DOUBLE_EQ(qs[1], 3.0);
  EXPECT_DOUBLE_EQ(qs[2], quantile(v, 0.95));
}

TEST(Stats, ExceedanceProbabilityIsStrict) {
  const Vector v{1.0, 2.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(exceedanceProbability(v, 2.0, /*above=*/true), 0.25);
  EXPECT_DOUBLE_EQ(exceedanceProbability(v, 2.0, /*above=*/false), 0.25);
  EXPECT_DOUBLE_EQ(exceedanceProbability(v, 0.0, true), 1.0);
  EXPECT_DOUBLE_EQ(exceedanceProbability(v, 10.0, true), 0.0);
  EXPECT_THROW(exceedanceProbability({}, 0.0, true), std::invalid_argument);
}

TEST(Stats, NormalCdfAndQuantileRoundTrip) {
  EXPECT_DOUBLE_EQ(normalCdf(0.0), 0.5);
  EXPECT_NEAR(normalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(normalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_DOUBLE_EQ(normalQuantile(0.5), 0.0);
  for (double p : {1e-8, 0.01, 0.2, 0.5, 0.8, 0.99, 1.0 - 1e-8})
    EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-12) << "p=" << p;
}

TEST(Spectral, DiagonalMatrix) {
  Matrix a{{0.5, 0.0}, {0.0, -0.9}};
  EXPECT_NEAR(spectralRadius(a), 0.9, 1e-6);
}

TEST(Spectral, RotationScalingMatrix) {
  // Complex-conjugate pair with modulus 0.8: rho must still converge.
  const double r = 0.8, th = 0.7;
  Matrix a{{r * std::cos(th), -r * std::sin(th)}, {r * std::sin(th), r * std::cos(th)}};
  EXPECT_NEAR(spectralRadius(a), 0.8, 1e-6);
}

TEST(Spectral, CompanionMatrixPoles) {
  // y_m = 0.5 y_{m-1}: single pole at 0.5.
  EXPECT_NEAR(spectralRadius(companionMatrix({0.5})), 0.5, 1e-9);
  // y_m = 1.2 y_{m-1} - 0.36 y_{m-2}: double pole at 0.6.
  EXPECT_NEAR(spectralRadius(companionMatrix({1.2, -0.36})), 0.6, 5e-3);
}

TEST(Spectral, InvalidInputsThrow) {
  EXPECT_THROW(spectralRadius(Matrix(2, 3)), std::invalid_argument);
  EXPECT_THROW(companionMatrix({}), std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
