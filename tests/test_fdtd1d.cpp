// Tests for the 1D FDTD transmission-line engine against line theory.
#include "fdtd1d/line1d.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "signal/linear_ports.h"

namespace fdtdmm {
namespace {

std::function<double(double)> step(double v_final) {
  return [v_final](double t) { return t >= 0.0 ? v_final : 0.0; };
}

TEST(Fdtd1d, MatchedLineLaunchAndDelay) {
  Line1dConfig cfg;
  cfg.zc = 50.0;
  cfg.td = 1e-9;
  cfg.cells = 200;
  auto near = std::make_shared<TheveninPort>(step(1.0), 50.0);
  auto far = std::make_shared<ResistorPort>(50.0);
  Fdtd1dLine line(cfg, near, far);
  auto res = line.run(4e-9);
  // Launch 0.5 V; arrival at far end after Td; flat afterwards.
  EXPECT_NEAR(res.v_near.value(0.5e-9), 0.5, 0.02);
  EXPECT_NEAR(res.v_far.value(0.7e-9), 0.0, 0.02);
  EXPECT_NEAR(res.v_far.value(1.5e-9), 0.5, 0.02);
  EXPECT_NEAR(res.v_near.value(3.5e-9), 0.5, 0.02);
}

TEST(Fdtd1d, OpenEndReflectionDoubles) {
  Line1dConfig cfg;
  cfg.zc = 50.0;
  cfg.td = 1e-9;
  cfg.cells = 200;
  auto near = std::make_shared<TheveninPort>(step(1.0), 50.0);
  auto far = std::make_shared<OpenPort>();
  Fdtd1dLine line(cfg, near, far);
  auto res = line.run(3e-9);
  EXPECT_NEAR(res.v_far.value(1.8e-9), 1.0, 0.03);
  // Near end sees the reflection at 2 Td and settles at 1.0.
  EXPECT_NEAR(res.v_near.value(2.8e-9), 1.0, 0.03);
}

TEST(Fdtd1d, ShortEndReflectionCancels) {
  Line1dConfig cfg;
  cfg.zc = 75.0;
  cfg.td = 0.5e-9;
  cfg.cells = 150;
  auto near = std::make_shared<TheveninPort>(step(1.0), 75.0);
  auto far = std::make_shared<ResistorPort>(1e-3);
  Fdtd1dLine line(cfg, near, far);
  auto res = line.run(2.5e-9);
  EXPECT_NEAR(res.v_far.value(1.2e-9), 0.0, 0.02);
  EXPECT_NEAR(res.v_near.value(2.2e-9), 0.0, 0.05);
}

TEST(Fdtd1d, MismatchReflectionCoefficient) {
  // RL = 150, Zc = 50 -> rho = 0.5: far end = 0.5 * (1 + 0.5) = 0.75.
  Line1dConfig cfg;
  cfg.zc = 50.0;
  cfg.td = 1e-9;
  cfg.cells = 200;
  auto near = std::make_shared<TheveninPort>(step(1.0), 50.0);
  auto far = std::make_shared<ResistorPort>(150.0);
  Fdtd1dLine line(cfg, near, far);
  auto res = line.run(3e-9);
  EXPECT_NEAR(res.v_far.value(2e-9), 0.75, 0.02);
}

TEST(Fdtd1d, RcLoadChargesAtFarEnd) {
  // Fig. 4 load: 1 pF || 500 ohm behind a 131 ohm line. The far-end wave
  // first overshoots toward the open-like response and settles to the
  // divider 500/(500+Rs-ish) of the source.
  Line1dConfig cfg;
  cfg.zc = 131.0;
  cfg.td = 0.4e-9;
  cfg.cells = 160;
  auto near = std::make_shared<TheveninPort>(step(1.8), 30.0);
  auto far = std::make_shared<ParallelRcPort>(500.0, 1e-12);
  Fdtd1dLine line(cfg, near, far);
  auto res = line.run(6e-9);
  // DC: v = 1.8 * 500 / 530.
  EXPECT_NEAR(res.v_far.samples().back(), 1.8 * 500.0 / 530.0, 0.05);
  EXPECT_EQ(res.v_near.size(), res.v_far.size());
}

TEST(Fdtd1d, NewtonTerminationsConvergeFast) {
  Line1dConfig cfg;
  cfg.zc = 50.0;
  cfg.td = 0.5e-9;
  cfg.cells = 100;
  auto near = std::make_shared<TheveninPort>(step(1.0), 25.0);
  auto far = std::make_shared<ParallelRcPort>(500.0, 1e-12);
  Fdtd1dLine line(cfg, near, far);
  auto res = line.run(3e-9);
  // Linear terminations: Newton needs at most a couple of iterations at
  // tol 1e-9 — consistent with the paper's observation.
  EXPECT_LE(res.max_newton_iterations, 3);
  EXPECT_GT(res.total_newton_iterations, 0);
}

TEST(Fdtd1d, Validation) {
  Line1dConfig bad;
  bad.zc = 0.0;
  auto p1 = std::make_shared<OpenPort>();
  auto p2 = std::make_shared<OpenPort>();
  EXPECT_THROW(Fdtd1dLine(bad, p1, p2), std::invalid_argument);
  Line1dConfig bad2;
  bad2.cells = 1;
  EXPECT_THROW(Fdtd1dLine(bad2, p1, p2), std::invalid_argument);
  Line1dConfig ok;
  EXPECT_THROW(Fdtd1dLine(ok, nullptr, p2), std::invalid_argument);
  Fdtd1dLine line(ok, p1, p2);
  EXPECT_THROW(line.run(0.0), std::invalid_argument);
  EXPECT_GT(line.dt(), 0.0);
}

}  // namespace
}  // namespace fdtdmm
