// End-to-end identification tests: transistor-level device -> RBF
// macromodel -> validation under unseen loads (the paper's core accuracy
// claim: "virtually undistinguishable response under very different
// loading conditions").
#include "core/model_factory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transient.h"
#include "math/stats.h"
#include "rbf/driver_model.h"
#include "rbf/receiver_model.h"

namespace fdtdmm {
namespace {

/// Runs the transistor-level driver with pattern '010' into (r_load, v_ref)
/// and returns the pad voltage.
Waveform transistorReference(double r_load, double v_ref) {
  Circuit c;
  const BitPattern pat("010", 2e-9);
  auto drv = buildCmosDriver(c, defaultDriverDevice(), [pat](double t) {
    return static_cast<double>(pat.levelAt(t));
  });
  const int ref = c.addNode();
  c.addVoltageSource(ref, Circuit::kGround, [v_ref](double) { return v_ref; });
  c.addResistor(drv.pad, ref, r_load);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 6e-9;
  opt.settle_time = 4e-9;
  return runTransient(c, opt, {{"v", drv.pad, 0}}).at("v");
}

/// Runs the RBF driver macromodel into the same load via the MNA engine.
Waveform macromodelRun(std::shared_ptr<const RbfDriverModel> model, double r_load,
                       double v_ref) {
  Circuit c;
  const BitPattern pat("010", 2e-9);
  const int pad = c.addNode();
  const int ref = c.addNode();
  c.addBehavioralPort(pad, Circuit::kGround,
                      std::make_shared<RbfDriverPort>(model, pat));
  c.addVoltageSource(ref, Circuit::kGround, [v_ref](double) { return v_ref; });
  c.addResistor(pad, ref, r_load);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 6e-9;
  opt.settle_time = 1e-9;
  return runTransient(c, opt, {{"v", pad, 0}}).at("v");
}

TEST(ModelFactory, DriverMacromodelMatchesTransistorUnderUnseenLoads) {
  const auto model = defaultDriverModel();
  ASSERT_TRUE(model && model->up && model->down);
  // Loads deliberately different from the identification loads (75 to gnd,
  // 150 to vdd): test 55 ohm to ground and 220 ohm to vdd.
  for (const auto& [r, vref] : {std::pair{55.0, 0.0}, std::pair{220.0, 1.8}}) {
    const Waveform ref = transistorReference(r, vref);
    const Waveform mm = macromodelRun(model, r, vref);
    ASSERT_EQ(ref.size(), mm.size());
    const double err = nrmse(mm.samples(), ref.samples());
    EXPECT_LT(err, 0.06) << "R=" << r << " Vref=" << vref;
  }
}

TEST(ModelFactory, DriverSteadyLevelsMatch) {
  const auto model = defaultDriverModel();
  const Waveform mm = macromodelRun(model, 100.0, 0.0);
  const Waveform ref = transistorReference(100.0, 0.0);
  // Steady LOW at t ~ 1.9 ns, steady HIGH at t ~ 3.9 ns.
  EXPECT_NEAR(mm.value(1.9e-9), ref.value(1.9e-9), 0.05);
  EXPECT_NEAR(mm.value(3.9e-9), ref.value(3.9e-9), 0.08);
}

TEST(ModelFactory, WeightsSettleToSteadyValues) {
  const auto model = defaultDriverModel();
  ASSERT_FALSE(model->weights.wu_up.empty());
  EXPECT_NEAR(model->weights.wu_up.samples().back(), 1.0, 0.05);
  EXPECT_NEAR(model->weights.wd_up.samples().back(), 0.0, 0.05);
  EXPECT_NEAR(model->weights.wu_down.samples().back(), 0.0, 0.05);
  EXPECT_NEAR(model->weights.wd_down.samples().back(), 1.0, 0.05);
}

TEST(ModelFactory, ReceiverMacromodelTracksTransistorReceiver) {
  const auto model = defaultReceiverModel();
  ASSERT_TRUE(model && model->lin && model->up && model->down);
  EXPECT_LT(model->lin->poleRadius(), 1.0);

  // Drive both the transistor receiver and the macromodel from a 50-ohm
  // source swinging beyond the rails; compare the pad voltages.
  const TimeFn vs = [](double t) {
    return 1.5 * std::sin(2.0 * M_PI * 0.4e9 * t) + 0.9;
  };
  // Transistor-level.
  Circuit c1;
  auto rcv = buildCmosReceiver(c1, defaultReceiverDevice());
  const int s1 = c1.addNode();
  c1.addVoltageSource(s1, Circuit::kGround, vs);
  c1.addResistor(s1, rcv.pad, 50.0);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 6e-9;
  opt.settle_time = 2e-9;
  const Waveform ref = runTransient(c1, opt, {{"v", rcv.pad, 0}}).at("v");
  // Macromodel.
  Circuit c2;
  const int pad = c2.addNode();
  const int s2 = c2.addNode();
  c2.addBehavioralPort(pad, Circuit::kGround, std::make_shared<RbfReceiverPort>(model));
  c2.addVoltageSource(s2, Circuit::kGround, vs);
  c2.addResistor(s2, pad, 50.0);
  const Waveform mm = runTransient(c2, opt, {{"v", pad, 0}}).at("v");

  EXPECT_LT(nrmse(mm.samples(), ref.samples()), 0.08);
}

TEST(ModelFactory, DefaultModelsAreCached) {
  const auto a = defaultDriverModel();
  const auto b = defaultDriverModel();
  EXPECT_EQ(a.get(), b.get());
  const auto c = defaultReceiverModel();
  const auto d = defaultReceiverModel();
  EXPECT_EQ(c.get(), d.get());
}

}  // namespace
}  // namespace fdtdmm
