// Tests for the observability counter/timer registry: thread safety of
// Counters, ScopedTimer accumulation into both sink forms, and the
// disabled-span cost contract (null sink = branch only, cheap enough to
// leave compiled into the solver loops).
#include "obs/counters.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "obs/telemetry.h"

namespace fdtdmm {
namespace obs {
namespace {

TEST(Counters, AddAndReadBack) {
  Counters c;
  EXPECT_EQ(c.count("missing"), 0);
  EXPECT_EQ(c.seconds("missing"), 0.0);
  c.add("events");
  c.add("events", 4);
  c.addSeconds("span", 0.25);
  c.addSeconds("span", 0.5, 2);
  EXPECT_EQ(c.count("events"), 5);
  EXPECT_EQ(c.count("span"), 3);
  EXPECT_DOUBLE_EQ(c.seconds("span"), 0.75);
}

TEST(Counters, SnapshotMergeAndClear) {
  Counters a;
  a.add("x", 2);
  a.addSeconds("t", 1.0);
  Counters b;
  b.add("x", 3);
  b.add("y");
  a.merge(b);
  EXPECT_EQ(a.count("x"), 5);
  EXPECT_EQ(a.count("y"), 1);
  const auto snap = a.snapshot();
  EXPECT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.at("x").count, 5);

  Counters copy(a);
  EXPECT_EQ(copy.count("x"), 5);
  a.clear();
  EXPECT_EQ(a.count("x"), 0);
  EXPECT_EQ(copy.count("x"), 5);  // the copy is independent
}

TEST(Counters, ConcurrentIncrementsAreLossless) {
  Counters c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add("shared");
        if ((i & 1023) == 0) c.addSeconds("timed", 1e-6);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.count("shared"), static_cast<long long>(kThreads) * kPerThread);
  EXPECT_GT(c.seconds("timed"), 0.0);
}

TEST(ScopedTimer, AccumulatesIntoDoubleSink) {
  double acc = 0.0;
  {
    ScopedTimer t(&acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(acc, 0.0);
  const double first = acc;
  { ScopedTimer t(&acc); }  // accumulates, never resets
  EXPECT_GE(acc, first);
}

TEST(ScopedTimer, AccumulatesIntoCounters) {
  Counters c;
  {
    ScopedTimer t(&c, "phase");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(c.count("phase"), 1);
  EXPECT_GT(c.seconds("phase"), 0.0);
}

TEST(ScopedTimer, DisabledSpanIsCheap) {
  // The contract that keeps instrumentation compiled into the hot loops:
  // a null sink must cost a branch, not a clock read. 10M disabled spans
  // in ~2 clock reads' worth of budget each would still pass this very
  // generous bound; a clock call per span (~20-30ns) would blow through it
  // on any realistic machine only if the bound were tight, so this is a
  // smoke check against gross regressions (e.g. unconditional now()).
  constexpr long long kSpans = 10'000'000;
  double acc = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (long long i = 0; i < kSpans; ++i) {
    ScopedTimer t(static_cast<double*>(nullptr));
    (void)t;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(acc, 0.0);
  EXPECT_LT(elapsed, 2.0);  // 200 ns per disabled span, debug-build slack
}

TEST(RunTelemetry, MergeIsFieldWise) {
  RunTelemetry a;
  a.phases.factor_seconds = 1.0;
  a.phases.solve_seconds = 2.0;
  a.lu_factorizations = 1;
  a.newton_iterations = 10;
  a.max_newton_iterations = 3;
  a.steps = 100;
  a.transient_runs = 1;
  a.wall_seconds = 0.5;

  RunTelemetry b;
  b.phases.factor_seconds = 0.25;
  b.lu_factorizations = 2;
  b.newton_iterations = 5;
  b.max_newton_iterations = 7;
  b.steps = 50;
  b.transient_runs = 1;
  b.pattern_realignments = 2;
  b.wall_seconds = 0.25;

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.phases.factor_seconds, 1.25);
  EXPECT_DOUBLE_EQ(a.phases.solve_seconds, 2.0);
  EXPECT_EQ(a.lu_factorizations, 3);
  EXPECT_EQ(a.newton_iterations, 15);
  EXPECT_EQ(a.max_newton_iterations, 7);  // max, not sum
  EXPECT_EQ(a.steps, 150);
  EXPECT_EQ(a.transient_runs, 2);
  EXPECT_EQ(a.pattern_realignments, 2);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 0.75);
}

}  // namespace
}  // namespace obs
}  // namespace fdtdmm
