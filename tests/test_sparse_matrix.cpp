#include "math/sparse_matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fdtdmm {
namespace {

TEST(SparseMatrix, BuildFinalizeDedupesAndSorts) {
  SparseMatrix m(3);
  EXPECT_FALSE(m.finalized());
  m.add(0, 2, 1.0);
  m.add(0, 0, 2.0);
  m.add(0, 2, 0.5);  // duplicate position: summed at finalize
  m.add(2, 1, -3.0);
  m.finalize();
  EXPECT_TRUE(m.finalized());
  EXPECT_EQ(m.nonZeros(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(m.at(2, 1), -3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);  // outside pattern
  // Column indices sorted per row.
  ASSERT_EQ(m.rowPtr().size(), 4u);
  EXPECT_EQ(m.colIdx()[0], 0u);
  EXPECT_EQ(m.colIdx()[1], 2u);
  EXPECT_GT(m.patternVersion(), 0u);
}

TEST(SparseMatrix, FinalizeTwiceAndRangeChecksThrow) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.finalize();
  EXPECT_THROW(m.finalize(), std::logic_error);
  EXPECT_THROW(m.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(m.at(0, 5), std::out_of_range);
}

TEST(SparseMatrix, FinalizedAddScattersInPlace) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(1, 1, 1.0);
  m.finalize();
  m.add(0, 0, 2.5);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_FALSE(m.patternGrown());
}

TEST(SparseMatrix, OverflowAndMergeGrowPattern) {
  SparseMatrix m(3);
  m.add(0, 0, 1.0);
  m.add(1, 1, 1.0);
  m.add(2, 2, 1.0);
  m.finalize();
  const auto v0 = m.patternVersion();
  m.add(0, 1, 4.0);  // outside the pattern
  m.add(0, 1, 0.5);
  EXPECT_TRUE(m.patternGrown());
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);  // buffered, not yet merged
  m.mergeOverflow();
  EXPECT_FALSE(m.patternGrown());
  EXPECT_EQ(m.nonZeros(), 4u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.5);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);  // old values preserved
  EXPECT_NE(m.patternVersion(), v0);  // pattern change took a fresh stamp
}

TEST(SparseMatrix, AdoptPatternAndSetValuesFrom) {
  SparseMatrix base(3);
  base.add(0, 0, 1.0);
  base.add(1, 1, 2.0);
  base.add(2, 2, 3.0);
  base.finalize();

  SparseMatrix work = base;  // copies pattern + version
  EXPECT_EQ(work.patternVersion(), base.patternVersion());
  work.add(1, 1, 10.0);
  work.setValuesFrom(base);  // memcpy path restores base values
  EXPECT_DOUBLE_EQ(work.at(1, 1), 2.0);

  // Pattern growth on work, then re-align base.
  work.add(2, 0, -5.0);
  work.mergeOverflow();
  EXPECT_THROW(work.setValuesFrom(base), std::logic_error);  // versions differ
  base.adoptPatternOf(work);
  EXPECT_EQ(base.patternVersion(), work.patternVersion());
  EXPECT_DOUBLE_EQ(base.at(2, 0), 0.0);  // new entry is explicit zero
  EXPECT_DOUBLE_EQ(base.at(2, 2), 3.0);  // old values preserved
  work.setValuesFrom(base);
  EXPECT_DOUBLE_EQ(work.at(2, 0), 0.0);

  // adopt requires a superset pattern.
  SparseMatrix narrow(3);
  narrow.add(0, 0, 1.0);
  narrow.finalize();
  EXPECT_THROW(base.adoptPatternOf(narrow), std::invalid_argument);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  SparseMatrix m(4);
  m.add(0, 0, 2.0);
  m.add(0, 3, -1.0);
  m.add(1, 1, 1.5);
  m.add(2, 1, 0.5);
  m.add(2, 2, 4.0);
  m.add(3, 0, 1.0);
  m.add(3, 3, 1.0);
  m.finalize();
  const Vector x = {1.0, 2.0, 3.0, 4.0};
  const Vector y = m.multiply(x);
  const Vector yd = m.toDense() * x;
  ASSERT_EQ(y.size(), yd.size());
  for (std::size_t k = 0; k < y.size(); ++k) EXPECT_DOUBLE_EQ(y[k], yd[k]);
  EXPECT_THROW(m.multiply(Vector(3, 0.0)), std::invalid_argument);
}

TEST(SparseMatrix, ClearValuesKeepsPattern) {
  SparseMatrix m(2);
  m.add(0, 0, 1.0);
  m.add(1, 0, 2.0);
  m.finalize();
  const auto v = m.patternVersion();
  m.clearValues();
  EXPECT_EQ(m.nonZeros(), 2u);
  EXPECT_EQ(m.patternVersion(), v);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
}

}  // namespace
}  // namespace fdtdmm
