// Unit tests for individual circuit elements (device equations).
#include "circuit/elements.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace fdtdmm {
namespace {

TEST(DiodeEval, ShockleyAndLimiting) {
  DiodeParams p;
  double g = 0.0;
  // Reverse bias saturates at -Is.
  EXPECT_NEAR(Diode::evalCurrent(-1.0, p, g), -p.is - p.gmin, 1e-15);
  // Forward 0.6 V: exp term dominates.
  const double i6 = Diode::evalCurrent(0.6, p, g);
  EXPECT_GT(i6, 1e-5);
  EXPECT_GT(g, 0.0);
  // Above the limiting knee the current is linear (no overflow at 10 V).
  const double i10 = Diode::evalCurrent(10.0, p, g);
  EXPECT_TRUE(std::isfinite(i10));
  const double i11 = Diode::evalCurrent(11.0, p, g);
  EXPECT_NEAR(i11 - i10, g, g * 1e-9);  // constant slope region
}

TEST(DiodeEval, ContinuousAtKnee) {
  DiodeParams p;
  const double v_lim = 40.0 * p.n * p.vt;
  double g1 = 0.0, g2 = 0.0;
  const double below = Diode::evalCurrent(v_lim - 1e-9, p, g1);
  const double above = Diode::evalCurrent(v_lim + 1e-9, p, g2);
  EXPECT_NEAR(below, above, std::abs(below) * 1e-6);
  EXPECT_NEAR(g1, g2, g1 * 1e-6);
}

TEST(MosfetEval, CutoffTriodeSaturation) {
  MosfetParams p;
  p.vth = 0.4;
  p.k = 1e-2;
  p.lambda = 0.0;
  double gm = 0.0, gds = 0.0;
  // Cutoff.
  EXPECT_NEAR(Mosfet::evalIds(0.2, 1.0, p, gm, gds), p.gmin * 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(gm, 0.0);
  // Saturation: ids = k/2 vov^2.
  const double i_sat = Mosfet::evalIds(1.4, 1.8, p, gm, gds);
  EXPECT_NEAR(i_sat, 0.5 * p.k * 1.0 * 1.0 + p.gmin * 1.8, 1e-12);
  EXPECT_NEAR(gm, p.k * 1.0, 1e-12);
  // Triode: ids = k (vov vds - vds^2/2).
  const double i_tri = Mosfet::evalIds(1.4, 0.5, p, gm, gds);
  EXPECT_NEAR(i_tri, p.k * (1.0 * 0.5 - 0.125) + p.gmin * 0.5, 1e-12);
}

TEST(MosfetEval, C1ContinuityAtRegionBoundaries) {
  MosfetParams p;
  p.vth = 0.4;
  p.k = 2e-2;
  p.lambda = 0.06;
  double gm1, gds1, gm2, gds2;
  // At vds = vov (triode/saturation boundary).
  const double vgs = 1.2, vov = vgs - p.vth;
  const double i1 = Mosfet::evalIds(vgs, vov - 1e-9, p, gm1, gds1);
  const double i2 = Mosfet::evalIds(vgs, vov + 1e-9, p, gm2, gds2);
  EXPECT_NEAR(i1, i2, std::abs(i1) * 1e-6);
  EXPECT_NEAR(gm1, gm2, std::abs(gm1) * 1e-5);
  EXPECT_NEAR(gds1, gds2, std::abs(gds1) * 1e-3 + 1e-12);
  // At vgs = vth (cutoff boundary).
  double gm3, gds3;
  const double i3 = Mosfet::evalIds(p.vth + 1e-9, 1.0, p, gm3, gds3);
  EXPECT_NEAR(i3, p.gmin * 1.0, 1e-12);
  EXPECT_NEAR(gm3, 0.0, 1e-10);
}

TEST(MosfetEval, LambdaIncreasesSaturationCurrent) {
  MosfetParams p0, p1;
  p0.lambda = 0.0;
  p1.lambda = 0.1;
  double gm, gds0, gds1;
  const double i0 = Mosfet::evalIds(1.4, 1.8, p0, gm, gds0);
  const double i1 = Mosfet::evalIds(1.4, 1.8, p1, gm, gds1);
  EXPECT_GT(i1, i0);
  EXPECT_GT(gds1, gds0);
}

TEST(Elements, ConstructorValidation) {
  EXPECT_THROW(Resistor(1, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(Capacitor(1, 0, -1e-12), std::invalid_argument);
  EXPECT_THROW(Inductor(1, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(VoltageSource(1, 0, nullptr), std::invalid_argument);
  EXPECT_THROW(CurrentSource(1, 0, nullptr), std::invalid_argument);
  EXPECT_THROW(IdealLine(1, 0, 2, 0, 0.0, 1e-9), std::invalid_argument);
  EXPECT_THROW(IdealLine(1, 0, 2, 0, 50.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BehavioralPort(1, 0, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
