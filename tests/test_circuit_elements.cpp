// Unit tests for individual circuit elements (device equations and the
// coupled-inductor / series-EMF transient behavior).
#include "circuit/elements.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "circuit/circuit.h"
#include "circuit/transient.h"

namespace fdtdmm {
namespace {

TEST(DiodeEval, ShockleyAndLimiting) {
  DiodeParams p;
  double g = 0.0;
  // Reverse bias saturates at -Is.
  EXPECT_NEAR(Diode::evalCurrent(-1.0, p, g), -p.is - p.gmin, 1e-15);
  // Forward 0.6 V: exp term dominates.
  const double i6 = Diode::evalCurrent(0.6, p, g);
  EXPECT_GT(i6, 1e-5);
  EXPECT_GT(g, 0.0);
  // Above the limiting knee the current is linear (no overflow at 10 V).
  const double i10 = Diode::evalCurrent(10.0, p, g);
  EXPECT_TRUE(std::isfinite(i10));
  const double i11 = Diode::evalCurrent(11.0, p, g);
  EXPECT_NEAR(i11 - i10, g, g * 1e-9);  // constant slope region
}

TEST(DiodeEval, ContinuousAtKnee) {
  DiodeParams p;
  const double v_lim = 40.0 * p.n * p.vt;
  double g1 = 0.0, g2 = 0.0;
  const double below = Diode::evalCurrent(v_lim - 1e-9, p, g1);
  const double above = Diode::evalCurrent(v_lim + 1e-9, p, g2);
  EXPECT_NEAR(below, above, std::abs(below) * 1e-6);
  EXPECT_NEAR(g1, g2, g1 * 1e-6);
}

TEST(MosfetEval, CutoffTriodeSaturation) {
  MosfetParams p;
  p.vth = 0.4;
  p.k = 1e-2;
  p.lambda = 0.0;
  double gm = 0.0, gds = 0.0;
  // Cutoff.
  EXPECT_NEAR(Mosfet::evalIds(0.2, 1.0, p, gm, gds), p.gmin * 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(gm, 0.0);
  // Saturation: ids = k/2 vov^2.
  const double i_sat = Mosfet::evalIds(1.4, 1.8, p, gm, gds);
  EXPECT_NEAR(i_sat, 0.5 * p.k * 1.0 * 1.0 + p.gmin * 1.8, 1e-12);
  EXPECT_NEAR(gm, p.k * 1.0, 1e-12);
  // Triode: ids = k (vov vds - vds^2/2).
  const double i_tri = Mosfet::evalIds(1.4, 0.5, p, gm, gds);
  EXPECT_NEAR(i_tri, p.k * (1.0 * 0.5 - 0.125) + p.gmin * 0.5, 1e-12);
}

TEST(MosfetEval, C1ContinuityAtRegionBoundaries) {
  MosfetParams p;
  p.vth = 0.4;
  p.k = 2e-2;
  p.lambda = 0.06;
  double gm1, gds1, gm2, gds2;
  // At vds = vov (triode/saturation boundary).
  const double vgs = 1.2, vov = vgs - p.vth;
  const double i1 = Mosfet::evalIds(vgs, vov - 1e-9, p, gm1, gds1);
  const double i2 = Mosfet::evalIds(vgs, vov + 1e-9, p, gm2, gds2);
  EXPECT_NEAR(i1, i2, std::abs(i1) * 1e-6);
  EXPECT_NEAR(gm1, gm2, std::abs(gm1) * 1e-5);
  EXPECT_NEAR(gds1, gds2, std::abs(gds1) * 1e-3 + 1e-12);
  // At vgs = vth (cutoff boundary).
  double gm3, gds3;
  const double i3 = Mosfet::evalIds(p.vth + 1e-9, 1.0, p, gm3, gds3);
  EXPECT_NEAR(i3, p.gmin * 1.0, 1e-12);
  EXPECT_NEAR(gm3, 0.0, 1e-10);
}

TEST(MosfetEval, LambdaIncreasesSaturationCurrent) {
  MosfetParams p0, p1;
  p0.lambda = 0.0;
  p1.lambda = 0.1;
  double gm, gds0, gds1;
  const double i0 = Mosfet::evalIds(1.4, 1.8, p0, gm, gds0);
  const double i1 = Mosfet::evalIds(1.4, 1.8, p1, gm, gds1);
  EXPECT_GT(i1, i0);
  EXPECT_GT(gds1, gds0);
}

TEST(Elements, ConstructorValidation) {
  EXPECT_THROW(Resistor(1, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(Capacitor(1, 0, -1e-12), std::invalid_argument);
  EXPECT_THROW(Inductor(1, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(Inductor(1, 0, 1e-9, TimeFn{}), std::invalid_argument);
  EXPECT_THROW(VoltageSource(1, 0, nullptr), std::invalid_argument);
  EXPECT_THROW(CurrentSource(1, 0, nullptr), std::invalid_argument);
  EXPECT_THROW(IdealLine(1, 0, 2, 0, 0.0, 1e-9), std::invalid_argument);
  EXPECT_THROW(IdealLine(1, 0, 2, 0, 50.0, 0.0), std::invalid_argument);
  EXPECT_THROW(BehavioralPort(1, 0, nullptr), std::invalid_argument);
  // Coupled inductors: positive self inductances, |k| < 1.
  EXPECT_THROW(CoupledInductors(1, 0, 2, 0, 0.0, 1e-6, 0.0), std::invalid_argument);
  EXPECT_THROW(CoupledInductors(1, 0, 2, 0, 1e-6, 1e-6, 1e-6), std::invalid_argument);
  EXPECT_THROW(CoupledInductors(1, 0, 2, 0, 1e-6, 1e-6, 2e-6), std::invalid_argument);
  EXPECT_NO_THROW(CoupledInductors(1, 0, 2, 0, 1e-6, 1e-6, 0.99e-6));
}

TEST(CoupledInductors, TransformerVoltageRatioOnOpenSecondary) {
  // Step-driven primary through R, lightly loaded secondary: with i2 ~ 0,
  // v2 = M di1/dt = (M / L1) v1.
  Circuit c;
  const int src = c.addNode();
  const int n1 = c.addNode();
  const int n2 = c.addNode();
  c.addVoltageSource(src, 0, [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
  c.addResistor(src, n1, 50.0);
  c.addCoupledInductors(n1, 0, n2, 0, 1e-6, 1e-6, 0.5e-6);
  c.addResistor(n2, 0, 1e6);

  TransientOptions opt;
  opt.dt = 10e-12;
  opt.t_stop = 1e-9;  // << L/R = 20 ns, so di1/dt is still ~ v1/L1
  const auto res = runTransient(c, opt, {{"v1", n1, 0}, {"v2", n2, 0}});
  const double v1 = res.at("v1").value(0.5e-9);
  const double v2 = res.at("v2").value(0.5e-9);
  ASSERT_GT(v1, 0.9);  // early in the L/R transient the full step is on L1
  EXPECT_NEAR(v2, 0.5 * v1, 0.01 * v1);
  EXPECT_EQ(res.lu_factorizations, 1);  // the K element is fully static
}

TEST(CoupledInductors, ZeroMutualMatchesIndependentInductors) {
  auto run = [](bool coupled) {
    Circuit c;
    const int src = c.addNode();
    const int n1 = c.addNode();
    const int n2 = c.addNode();
    c.addVoltageSource(src, 0, [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
    c.addResistor(src, n1, 50.0);
    c.addResistor(src, n2, 75.0);
    if (coupled) {
      c.addCoupledInductors(n1, 0, n2, 0, 1e-6, 2e-6, 0.0);
    } else {
      c.addInductor(n1, 0, 1e-6);
      c.addInductor(n2, 0, 2e-6);
    }
    TransientOptions opt;
    opt.dt = 20e-12;
    opt.t_stop = 4e-9;
    return runTransient(c, opt, {{"v1", n1, 0}, {"v2", n2, 0}});
  };
  const auto a = run(false);
  const auto b = run(true);
  ASSERT_EQ(a.at("v1").size(), b.at("v1").size());
  for (std::size_t k = 0; k < a.at("v1").size(); ++k) {
    EXPECT_NEAR(a.at("v1")[k], b.at("v1")[k], 1e-14);
    EXPECT_NEAR(a.at("v2")[k], b.at("v2")[k], 1e-14);
  }
}

TEST(SeriesEmfInductor, EmfActsAsSeriesSourceAcrossRLoop) {
  // A static loop: EMF e(t) in the inductor branch drives a resistor
  // divider once the L/R transient settles; at DC, i = e / (R1 + R2)
  // and the EMF raises the n2-side potential.
  Circuit c;
  const int n1 = c.addNode();
  const int n2 = c.addNode();
  c.addResistor(n1, 0, 25.0);
  c.addSeriesEmfInductor(n1, n2, 1e-9, [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
  c.addResistor(n2, 0, 75.0);

  TransientOptions opt;
  opt.dt = 10e-12;
  opt.t_stop = 5e-9;  // >> L/(R1+R2) = 10 ps
  const auto res = runTransient(c, opt, {{"v1", n1, 0}, {"v2", n2, 0}});
  // Loop current 10 mA: v1 = -0.25 V (current pulled out of n1), v2 = +0.75 V.
  EXPECT_NEAR(res.at("v1").value(4e-9), -0.25, 1e-3);
  EXPECT_NEAR(res.at("v2").value(4e-9), +0.75, 1e-3);
  EXPECT_EQ(res.lu_factorizations, 1);  // EMF is RHS-only
}

}  // namespace
}  // namespace fdtdmm
