// Unit tests for the elementary PortModel implementations.
#include "signal/linear_ports.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace fdtdmm {
namespace {

TEST(ResistorPort, OhmsLaw) {
  ResistorPort r(50.0);
  r.prepare(1e-12);
  double g = 0.0;
  EXPECT_DOUBLE_EQ(r.current(2.0, 0.0, g), 0.04);
  EXPECT_DOUBLE_EQ(g, 0.02);
  EXPECT_THROW(ResistorPort(0.0), std::invalid_argument);
}

TEST(ParallelRcPort, DcBehavesAsResistor) {
  ParallelRcPort rc(500.0, 1e-12);
  rc.prepare(1e-12);
  // Hold a constant voltage for many steps: capacitor current decays to 0.
  double g = 0.0;
  double i = 0.0;
  for (int k = 0; k < 2000; ++k) {
    i = rc.current(1.0, 0.0, g);
    rc.commit(1.0, 0.0);
  }
  EXPECT_NEAR(i, 1.0 / 500.0, 1e-9);
}

TEST(ParallelRcPort, CapacitorChargeConservation) {
  // Pure capacitor: integral of i dt over a ramp 0 -> V equals C*V.
  const double c = 2e-12, dt = 1e-12;
  ParallelRcPort cap(-1.0, c);
  cap.prepare(dt);
  double q = 0.0;
  const int n = 100;
  double v_prev = 0.0;
  for (int k = 1; k <= n; ++k) {
    const double v = static_cast<double>(k) / n;  // ramp to 1 V
    double g = 0.0;
    const double i = cap.current(v, 0.0, g);
    // Trapezoidal charge accumulation (i is the end-of-step current).
    q += dt * i;
    cap.commit(v, 0.0);
    v_prev = v;
  }
  (void)v_prev;
  EXPECT_NEAR(q, c * 1.0, c * 0.02);
}

TEST(ParallelRcPort, Validation) {
  EXPECT_THROW(ParallelRcPort(-1.0, -1.0), std::invalid_argument);
  ParallelRcPort ok(100.0, -1.0);  // resistor only
  ok.prepare(1e-12);
  double g = 0.0;
  EXPECT_DOUBLE_EQ(ok.current(1.0, 0.0, g), 0.01);
}

TEST(TheveninPort, SourceAndSlope) {
  TheveninPort th([](double t) { return t < 1.0 ? 0.0 : 2.0; }, 50.0);
  th.prepare(1e-12);
  double g = 0.0;
  EXPECT_DOUBLE_EQ(th.current(1.0, 0.0, g), 0.02);   // (1 - 0)/50
  EXPECT_DOUBLE_EQ(th.current(1.0, 2.0, g), -0.02);  // (1 - 2)/50
  EXPECT_DOUBLE_EQ(g, 0.02);
  EXPECT_THROW(TheveninPort(nullptr, 50.0), std::invalid_argument);
  EXPECT_THROW(TheveninPort([](double) { return 0.0; }, 0.0), std::invalid_argument);
}

TEST(OpenPort, NoCurrent) {
  OpenPort open;
  open.prepare(1e-12);
  double g = 1.0;
  EXPECT_DOUBLE_EQ(open.current(5.0, 0.0, g), 0.0);
  EXPECT_DOUBLE_EQ(g, 0.0);
}

}  // namespace
}  // namespace fdtdmm
