// Round-trip tests for macromodel (de)serialization.
#include "rbf/model_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fdtdmm {
namespace {

GaussianRbfParams someGaussianParams(int seed) {
  GaussianRbfParams p;
  p.order = 2;
  p.ts = 50e-12;
  p.beta = 0.4 + 0.01 * seed;
  p.i_scale = 123.456;
  p.theta = {0.01, -0.02, 0.003};
  p.c0 = {0.1, 0.9, 1.7};
  p.cv = {{0.1, 0.2}, {0.9, 1.0}, {1.7, 1.6}};
  p.ci = {{0.0, 0.1}, {0.2, 0.3}, {-0.1, -0.2}};
  return p;
}

RbfDriverModel someDriver() {
  RbfDriverModel m;
  m.up = std::make_shared<GaussianRbfSubmodel>(someGaussianParams(1));
  m.down = std::make_shared<GaussianRbfSubmodel>(someGaussianParams(2));
  m.ts = 50e-12;
  m.vdd = 1.8;
  m.weights.wu_up = Waveform(0.0, 50e-12, {0.0, 0.5, 1.0});
  m.weights.wd_up = Waveform(0.0, 50e-12, {1.0, 0.5, 0.0});
  m.weights.wu_down = Waveform(0.0, 50e-12, {1.0, 0.4, 0.0});
  m.weights.wd_down = Waveform(0.0, 50e-12, {0.0, 0.6, 1.0});
  return m;
}

void expectGaussianEq(const GaussianRbfSubmodel& a, const GaussianRbfSubmodel& b) {
  const auto& pa = a.params();
  const auto& pb = b.params();
  EXPECT_EQ(pa.order, pb.order);
  EXPECT_DOUBLE_EQ(pa.ts, pb.ts);
  EXPECT_DOUBLE_EQ(pa.beta, pb.beta);
  EXPECT_DOUBLE_EQ(pa.i_scale, pb.i_scale);
  ASSERT_EQ(pa.theta.size(), pb.theta.size());
  for (std::size_t l = 0; l < pa.theta.size(); ++l) {
    EXPECT_DOUBLE_EQ(pa.theta[l], pb.theta[l]);
    EXPECT_DOUBLE_EQ(pa.c0[l], pb.c0[l]);
    for (std::size_t k = 0; k < pa.cv[l].size(); ++k) {
      EXPECT_DOUBLE_EQ(pa.cv[l][k], pb.cv[l][k]);
      EXPECT_DOUBLE_EQ(pa.ci[l][k], pb.ci[l][k]);
    }
  }
}

TEST(ModelIo, DriverRoundTripThroughStream) {
  const RbfDriverModel m = someDriver();
  std::stringstream ss;
  writeDriverModel(m, ss);
  const RbfDriverModel r = readDriverModel(ss);
  EXPECT_DOUBLE_EQ(r.ts, m.ts);
  EXPECT_DOUBLE_EQ(r.vdd, m.vdd);
  expectGaussianEq(*r.up, *m.up);
  expectGaussianEq(*r.down, *m.down);
  ASSERT_EQ(r.weights.wu_up.size(), m.weights.wu_up.size());
  for (std::size_t k = 0; k < m.weights.wu_up.size(); ++k) {
    EXPECT_DOUBLE_EQ(r.weights.wu_up[k], m.weights.wu_up[k]);
    EXPECT_DOUBLE_EQ(r.weights.wd_down[k], m.weights.wd_down[k]);
  }
}

TEST(ModelIo, DriverRoundTripThroughFile) {
  const std::string path = testing::TempDir() + "driver_model_test.txt";
  const RbfDriverModel m = someDriver();
  saveDriverModel(m, path);
  const RbfDriverModel r = loadDriverModel(path);
  expectGaussianEq(*r.up, *m.up);
  std::remove(path.c_str());
}

TEST(ModelIo, ReceiverRoundTrip) {
  RbfReceiverModel m;
  LinearArxParams lp;
  lp.order = 2;
  lp.ts = 50e-12;
  lp.a = {0.25, -0.03};
  lp.b = {0.002, 0.0001, -0.00005};
  m.lin = std::make_shared<LinearArxSubmodel>(lp);
  m.up = std::make_shared<GaussianRbfSubmodel>(someGaussianParams(3));
  m.down = std::make_shared<GaussianRbfSubmodel>(someGaussianParams(4));
  m.ts = 50e-12;
  m.vdd = 1.8;

  std::stringstream ss;
  writeReceiverModel(m, ss);
  const RbfReceiverModel r = readReceiverModel(ss);
  EXPECT_DOUBLE_EQ(r.vdd, 1.8);
  const auto& la = r.lin->params();
  EXPECT_DOUBLE_EQ(la.a[0], 0.25);
  EXPECT_DOUBLE_EQ(la.a[1], -0.03);
  EXPECT_DOUBLE_EQ(la.b[2], -0.00005);
  expectGaussianEq(*r.up, *m.up);
  expectGaussianEq(*r.down, *m.down);
}

TEST(ModelIo, CorruptInputThrows) {
  std::stringstream ss("not-a-model at all");
  EXPECT_THROW(readDriverModel(ss), std::runtime_error);
  std::stringstream ss2("fdtdmm-driver-model-v1\nts 5e-11 vdd 1.8\ngarbage");
  EXPECT_THROW(readDriverModel(ss2), std::runtime_error);
  EXPECT_THROW(loadDriverModel("/nonexistent/path/model.txt"), std::runtime_error);
}

TEST(ModelIo, IncompleteModelRejectedOnWrite) {
  RbfDriverModel empty;
  std::stringstream ss;
  EXPECT_THROW(writeDriverModel(empty, ss), std::runtime_error);
  RbfReceiverModel empty_r;
  EXPECT_THROW(writeReceiverModel(empty_r, ss), std::runtime_error);
}

TEST(ModelIo, SerializedModelEvaluatesIdentically) {
  const RbfDriverModel m = someDriver();
  std::stringstream ss;
  writeDriverModel(m, ss);
  const RbfDriverModel r = readDriverModel(ss);
  const Vector xv{0.4, 0.6}, xi{0.001, -0.002};
  for (double v : {-0.2, 0.5, 1.1, 1.9}) {
    EXPECT_DOUBLE_EQ(m.up->eval(v, xv, xi), r.up->eval(v, xv, xi));
    EXPECT_DOUBLE_EQ(m.down->eval(v, xv, xi), r.down->eval(v, xv, xi));
  }
}

}  // namespace
}  // namespace fdtdmm
