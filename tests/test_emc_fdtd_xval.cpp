// Cross-validation of the circuit-path EMC subsystem against the 3D FDTD
// incident-field reference: a straight trace over a ground plane in
// vacuum, illuminated by the same plane wave, terminated by the same
// resistors — solved (a) by the full-wave solver's incident path (the
// machinery behind PcbScenario's with_incident mode) and (b) by the
// Taylor/Agrawal MNA model. The two engines share no code beyond the
// analytic PlaneWave, so agreement is a genuine validation of the
// distributed-source formulation.
//
// Documented tolerance: at the reference incidence (theta = 40 deg) the
// peak induced voltages agree to ~3-6% (measured ratios 0.97 near / 0.94
// far; gated at 25%), peak timing to under the FDTD time step (gated at
// 150 ps), and the far-end waveform to NRMSE ~0.5 (gated at 0.7; the RMS
// number is dominated by sub-sample timing shifts of the bipolar pulse,
// not amplitude error). The residual model error comes from the Yee
// thin-wire effective radius (~0.135 cells) and port-cell discretization.
// Near-grazing incidence is the known weak spot of the quasi-TEM coupling
// model: at theta = 60 deg the near-end ratio drifts to ~1.2, so the gate
// runs at the reference angle.
#include "emc/fdtd_reference.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fdtdmm {
namespace {

struct Peak {
  double value = 0.0;  ///< max |v|
  double time = 0.0;   ///< time of the max
};

Peak findPeak(const Waveform& w) {
  Peak p;
  for (std::size_t k = 0; k < w.size(); ++k) {
    const double v = std::abs(w[k]);
    if (v > p.value) {
      p.value = v;
      p.time = w.t0() + static_cast<double>(k) * w.dt();
    }
  }
  return p;
}

TEST(EmcFdtdCrossValidation, InducedWaveformsMatchWithinTolerance) {
  EmcFdtdReference ref;  // defaults: 24-cell trace, 2 cells high, 2.5 mm cells
  const EmcFdtdReferenceRun fdtd = runEmcFdtdReference(ref);
  const EmcScenario matched = matchedEmcScenario(ref);
  const TaskWaveforms mna = runEmcScenario(matched, nullptr, nullptr);

  ASSERT_FALSE(fdtd.v_far.empty());
  ASSERT_FALSE(mna.v_far.empty());

  const Peak fdtd_far = findPeak(fdtd.v_far);
  const Peak mna_far = findPeak(mna.v_far);
  const Peak fdtd_near = findPeak(fdtd.v_near);
  const Peak mna_near = findPeak(mna.v_near);

  // Both engines see a real induced disturbance (2 kV/m over a 6 cm trace).
  EXPECT_GT(fdtd_far.value, 0.05);
  EXPECT_GT(mna_far.value, 0.05);

  // Peak induced voltage agrees within the documented 25% bound at both
  // terminations (measured deviation ~3-6%, see file comment).
  EXPECT_NEAR(mna_far.value, fdtd_far.value, 0.25 * fdtd_far.value);
  EXPECT_NEAR(mna_near.value, fdtd_near.value, 0.25 * fdtd_near.value);

  // Peak arrival agrees to well under the pulse width (sigma ~ 66 ps at
  // 2 GHz; allow 150 ps).
  EXPECT_NEAR(mna_far.time, fdtd_far.time, 150e-12);
  EXPECT_NEAR(mna_near.time, fdtd_near.time, 150e-12);

  // Shape agreement: normalized RMS error of the circuit-path waveform
  // against the FDTD reference (interpolated onto the MNA grid).
  double acc = 0.0, norm = 0.0;
  for (std::size_t k = 0; k < mna.v_far.size(); ++k) {
    const double t = mna.v_far.t0() + static_cast<double>(k) * mna.v_far.dt();
    const double d = mna.v_far[k] - fdtd.v_far.value(t);
    const double r = fdtd.v_far.value(t);
    acc += d * d;
    norm += r * r;
  }
  ASSERT_GT(norm, 0.0);
  EXPECT_LT(std::sqrt(acc / norm), 0.7);
}

}  // namespace
}  // namespace fdtdmm
