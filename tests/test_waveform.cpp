// Unit tests for the Waveform container.
#include "signal/waveform.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace fdtdmm {
namespace {

TEST(Waveform, BasicAccessors) {
  Waveform w(1.0, 0.5, {0.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(w.t0(), 1.0);
  EXPECT_DOUBLE_EQ(w.dt(), 0.5);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.tEnd(), 2.0);
  EXPECT_DOUBLE_EQ(w[2], 2.0);
}

TEST(Waveform, BadDtThrows) {
  EXPECT_THROW(Waveform(0.0, 0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(Waveform(0.0, -1.0, {1.0}), std::invalid_argument);
}

TEST(Waveform, LinearInterpolation) {
  Waveform w(0.0, 1.0, {0.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(1.75), 3.5);
}

TEST(Waveform, ClampsOutsideRange) {
  Waveform w(0.0, 1.0, {5.0, 7.0});
  EXPECT_DOUBLE_EQ(w.value(-3.0), 5.0);
  EXPECT_DOUBLE_EQ(w.value(10.0), 7.0);
}

TEST(Waveform, EmptyValueIsZero) {
  Waveform w;
  EXPECT_DOUBLE_EQ(w.value(1.0), 0.0);
  EXPECT_TRUE(w.empty());
}

TEST(Waveform, ResampleHalvesStep) {
  Waveform w(0.0, 1.0, {0.0, 1.0, 2.0});
  const Waveform r = w.resampled(0.5);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r[1], 0.5);
  EXPECT_DOUBLE_EQ(r[4], 2.0);
}

TEST(Waveform, ResampleExactDivisionKeepsFinalSample) {
  // span / dt_new can land just below an integer (e.g. 3e-9 / 1e-10 =
  // 29.999999...); truncation used to drop the final sample.
  Waveform w(0.0, 1e-9, {0.0, 1.0, 2.0, 3.0});  // span 3 ns
  const Waveform r = w.resampled(1e-10);
  ASSERT_EQ(r.size(), 31u);
  EXPECT_DOUBLE_EQ(r.samples().back(), 3.0);
  EXPECT_NEAR(r.tEnd(), w.tEnd(), 1e-18);

  // Same-step resampling must be the identity in sample count.
  const Waveform same = w.resampled(1e-9);
  ASSERT_EQ(same.size(), 4u);
  EXPECT_DOUBLE_EQ(same.samples().back(), 3.0);
}

TEST(Waveform, ResampleInvalidThrows) {
  Waveform w(0.0, 1.0, {0.0, 1.0});
  EXPECT_THROW(w.resampled(0.0), std::invalid_argument);
  EXPECT_THROW(Waveform().resampled(0.5), std::invalid_argument);
}

TEST(Waveform, TimesAxis) {
  Waveform w(2.0, 0.25, {1.0, 1.0, 1.0});
  const Vector t = w.times();
  EXPECT_DOUBLE_EQ(t[0], 2.0);
  EXPECT_DOUBLE_EQ(t[2], 2.5);
}

TEST(Waveform, CsvRoundTripThroughFile) {
  Waveform w(0.0, 1e-9, {0.5, 1.5});
  const std::string path = testing::TempDir() + "wave_test.csv";
  w.writeCsv(path, "volts");
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t,volts");
  std::string line1;
  std::getline(in, line1);
  EXPECT_NE(line1.find("0.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SampleFunction, SamplesClosure) {
  const Waveform w = sampleFunction([](double t) { return 2.0 * t; }, 0.0, 1.0, 0.25);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_DOUBLE_EQ(w[3], 1.5);
  EXPECT_THROW(sampleFunction([](double) { return 0.0; }, 0.0, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(sampleFunction([](double) { return 0.0; }, 1.0, 0.0, 0.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
