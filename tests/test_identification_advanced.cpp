// Deeper identification-pipeline tests: the current-regressor (x_i) path,
// fit diagnostics, determinism, and static-curve fidelity of the cached
// default macromodels.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transient.h"
#include "core/model_factory.h"
#include "devices/cmos_driver.h"
#include "math/stats.h"
#include "rbf/identification.h"
#include "signal/sources.h"

namespace fdtdmm {
namespace {

/// Synthetic device (same structure as a fixed-state port): static tanh
/// conductance plus a capacitive term.
struct SyntheticDevice {
  double ts = 50e-12;
  double c = 1e-12;
  double g0 = 0.02;
  std::pair<Waveform, Waveform> respond(const Waveform& v) const {
    Vector i(v.size());
    for (std::size_t m = 0; m < v.size(); ++m) {
      const double v_prev = m > 0 ? v[m - 1] : v[0];
      i[m] = g0 * std::tanh(v[m] - 0.9) + c * (v[m] - v_prev) / ts;
    }
    return {v, Waveform(v.t0(), v.dt(), std::move(i))};
  }
};

Waveform excitation(double ts, std::uint64_t seed) {
  MultilevelOptions mo;
  mo.v_min = -0.5;
  mo.v_max = 2.3;
  mo.seed = seed;
  return multilevelRandom(80e-9, ts, mo);
}

TEST(IdentAdvanced, CurrentRegressorPathValidates) {
  // The full Eq. (2) regressor (with x_i) must also produce a usable model
  // when enabled explicitly; the fit-time parallel validation plus DC
  // anchoring keep the feedback tame on this well-behaved device.
  SyntheticDevice dev;
  auto [vt, it] = dev.respond(excitation(dev.ts, 51));
  SubmodelFitOptions opt;
  opt.use_current_regressors = true;
  opt.centers = 40;
  FitReport report;
  const auto model = fitGaussianSubmodel(vt, it, opt, &report);
  EXPECT_GT(model->params().i_scale, 0.0);  // x_i actually participates
  auto [vv, iv] = dev.respond(excitation(dev.ts, 151));
  const Waveform i_sim = simulateSubmodel(*model, vv, vv[0]);
  EXPECT_LT(nrmse(i_sim.samples(), iv.samples()), 0.1);
  EXPECT_LE(report.best_error, 0.1);
}

TEST(IdentAdvanced, FitReportPopulated) {
  SyntheticDevice dev;
  auto [vt, it] = dev.respond(excitation(dev.ts, 52));
  SubmodelFitOptions opt;
  FitReport report;
  const auto model = fitGaussianSubmodel(vt, it, opt, &report);
  ASSERT_FALSE(report.attempts.empty());
  EXPECT_GT(report.beta, 0.0);
  EXPECT_GT(report.anchors, 0u);  // the multilevel excitation holds levels
  EXPECT_DOUBLE_EQ(report.i_scale, model->params().i_scale);
  // best_error is the max of the two validation errors of the kept attempt.
  const auto& first = report.attempts.front();
  EXPECT_LE(report.best_error,
            std::max(first.parallel_nrmse, first.resampled_nrmse) + 1e-12);
  for (const auto& a : report.attempts) EXPECT_GT(a.ridge, 0.0);
}

TEST(IdentAdvanced, DeterministicForFixedSeed) {
  SyntheticDevice dev;
  auto [vt, it] = dev.respond(excitation(dev.ts, 53));
  SubmodelFitOptions opt;
  opt.seed = 99;
  const auto a = fitGaussianSubmodel(vt, it, opt);
  const auto b = fitGaussianSubmodel(vt, it, opt);
  ASSERT_EQ(a->params().theta.size(), b->params().theta.size());
  for (std::size_t l = 0; l < a->params().theta.size(); ++l) {
    EXPECT_DOUBLE_EQ(a->params().theta[l], b->params().theta[l]);
    EXPECT_DOUBLE_EQ(a->params().c0[l], b->params().c0[l]);
  }
}

/// DC sweep of the transistor driver port at a fixed logic state.
double transistorStaticCurrent(bool high, double v) {
  Circuit c;
  const double level = high ? 1.0 : 0.0;
  auto drv = buildCmosDriver(c, defaultDriverDevice(), [level](double) { return level; });
  VoltageSource* src =
      c.addVoltageSource(drv.pad, Circuit::kGround, [v](double) { return v; });
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 0.1e-9;
  opt.settle_time = 6e-9;
  const auto res = runTransient(c, opt, {}, {{"i", src}});
  return -res.at("i").samples().back();
}

TEST(IdentAdvanced, MacromodelStaticCurvesMatchTransistor) {
  const auto model = defaultDriverModel();
  for (const bool high : {true, false}) {
    const auto& sub = high ? model->up : model->down;
    for (const double v : {-0.3, 0.0, 0.45, 0.9, 1.35, 1.8, 2.1}) {
      // Steady-state macromodel current at constant v: fixed point of the
      // submodel with steady regressors.
      ResampledSubmodelState st(sub.get(), model->ts);
      st.reset(v);
      double didv = 0.0;
      const double i_model = st.eval(v, didv);
      const double i_ref = transistorStaticCurrent(high, v);
      // Within a few percent of the full-scale current (~60 mA).
      EXPECT_NEAR(i_model, i_ref, 4e-3)
          << (high ? "HIGH" : "LOW") << " v=" << v;
    }
  }
}

TEST(IdentAdvanced, ReceiverClampSignsAtRuntime) {
  const auto model = defaultReceiverModel();
  RbfReceiverPort port(model, 0.9);
  port.prepare(5e-12);
  // March the port beyond each rail and check the clamp current signs:
  // above vdd the device sinks (i > 0), below ground it sources (i < 0).
  double didv = 0.0;
  double i_hi = 0.0, i_lo = 0.0;
  for (int k = 0; k < 3000; ++k) {
    i_hi = port.current(2.6, 0.0, didv);
    port.commit(2.6, 0.0);
  }
  EXPECT_GT(i_hi, 5e-3);
  for (int k = 0; k < 3000; ++k) {
    i_lo = port.current(-0.8, 0.0, didv);
    port.commit(-0.8, 0.0);
  }
  EXPECT_LT(i_lo, -5e-3);
}

TEST(IdentAdvanced, ReceiverNearlyLinearInsideRails) {
  const auto model = defaultReceiverModel();
  RbfReceiverPort port(model, 0.9);
  port.prepare(5e-12);
  // DC current magnitude inside the rails is leakage-scale.
  double didv = 0.0;
  double i_mid = 0.0;
  for (int k = 0; k < 3000; ++k) {
    i_mid = port.current(0.9, 0.0, didv);
    port.commit(0.9, 0.0);
  }
  EXPECT_LT(std::abs(i_mid), 5e-4);
}

}  // namespace
}  // namespace fdtdmm
