// Tests for the CPML absorbing boundary.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fdtd/solver.h"
#include "signal/linear_ports.h"

namespace fdtdmm {
namespace {

/// Radiates a Gaussian pulse from a small dipole (two plates + gap port)
/// and records Ez near the source. In a big-enough domain no boundary
/// reflection reaches the probe within the window, giving a reference to
/// measure the reflection error of each ABC against.
Waveform dipoleProbeRun(BoundaryKind boundary, std::size_t n) {
  GridSpec s;
  s.nx = s.ny = s.nz = n;
  s.dx = s.dy = s.dz = 1e-3;
  Grid3 g(s);
  const std::size_t c = n / 2;
  g.pecPlateZ(c - 1, c - 2, c + 2, c - 2, c + 2);
  g.pecPlateZ(c, c - 2, c + 2, c - 2, c + 2);
  g.bake();
  FdtdSolverOptions opt;
  opt.boundary = boundary;
  FdtdSolver solver(std::move(g), opt);
  auto vs = [](double t) {
    const double u = (t - 80e-12) / 25e-12;
    return std::exp(-0.5 * u * u);
  };
  LumpedPortSpec ps;
  ps.i = c;
  ps.j = c;
  ps.k = c - 1;
  solver.addLumpedPort(ps, std::make_shared<TheveninPort>(vs, 50.0));
  FieldProbeSpec fp;
  fp.axis = Axis::kZ;
  fp.i = c + 3;
  fp.j = c;
  fp.k = c;
  const std::size_t probe = solver.addFieldProbe(fp);
  solver.runUntil(1.0e-9);
  return solver.fieldProbe(probe);
}

TEST(Cpml, AbsorbsFarBetterThanMur) {
  const Waveform ref = dipoleProbeRun(BoundaryKind::kMur1, 120);  // reflection-free window
  const Waveform mur = dipoleProbeRun(BoundaryKind::kMur1, 40);
  const Waveform cpml = dipoleProbeRun(BoundaryKind::kCpml, 40);
  double peak = 0.0, err_mur = 0.0, err_cpml = 0.0;
  for (std::size_t k = 0; k < mur.size() && k < ref.size(); ++k) {
    peak = std::max(peak, std::abs(ref[k]));
    err_mur = std::max(err_mur, std::abs(mur[k] - ref[k]));
    err_cpml = std::max(err_cpml, std::abs(cpml[k] - ref[k]));
  }
  ASSERT_GT(peak, 0.0);
  const double db_mur = 20.0 * std::log10(err_mur / peak);
  const double db_cpml = 20.0 * std::log10(err_cpml / peak);
  EXPECT_LT(db_mur, -22.0);           // Mur-1 is decent ...
  EXPECT_LT(db_cpml, -45.0);          // ... CPML is far better ...
  EXPECT_LT(db_cpml, db_mur - 15.0);  // ... by a clear margin.
}

TEST(Cpml, QuiescentStaysQuiet) {
  GridSpec s;
  s.nx = s.ny = s.nz = 24;
  Grid3 g(s);
  g.bake();
  FdtdSolverOptions opt;
  opt.boundary = BoundaryKind::kCpml;
  FdtdSolver solver(std::move(g), opt);
  solver.run(50);
  double acc = 0.0;
  for (std::size_t i = 0; i <= 24; ++i)
    for (std::size_t j = 0; j <= 24; ++j)
      for (std::size_t k = 0; k <= 24; ++k) acc += std::abs(solver.grid().ez(i, j, k));
  EXPECT_DOUBLE_EQ(acc, 0.0);
}

TEST(Cpml, StripLineResultsMatchMur) {
  // Guided-wave result must be boundary-independent: run the same strip
  // line with both ABCs and compare the load voltage.
  auto run = [](BoundaryKind boundary) {
    GridSpec s;
    s.nx = 60;
    s.ny = 24;
    s.nz = 24;
    s.dx = s.dy = s.dz = 1e-3;
    Grid3 g(s);
    g.pecPlateZ(11, 10, 50, 10, 14);
    g.pecPlateZ(12, 10, 50, 10, 14);
    g.bake();
    FdtdSolverOptions opt;
    opt.boundary = boundary;
    FdtdSolver solver(std::move(g), opt);
    auto vs = [](double t) { return t < 60e-12 ? t / 60e-12 : 1.0; };
    LumpedPortSpec sp;
    sp.i = 10;
    sp.j = 12;
    sp.k = 11;
    sp.sign = -1;
    solver.addLumpedPort(sp, std::make_shared<TheveninPort>(vs, 50.0));
    LumpedPortSpec lp = sp;
    lp.i = 50;
    LumpedPort* load = solver.addLumpedPort(lp, std::make_shared<ResistorPort>(120.0));
    solver.runUntil(1.2e-9);
    return load->voltage();
  };
  const Waveform mur = run(BoundaryKind::kMur1);
  const Waveform cpml = run(BoundaryKind::kCpml);
  ASSERT_EQ(mur.size(), cpml.size());
  double max_diff = 0.0;
  for (std::size_t k = 0; k < mur.size(); ++k)
    max_diff = std::max(max_diff, std::abs(mur[k] - cpml[k]));
  EXPECT_LT(max_diff, 0.05);
}

TEST(Cpml, Validation) {
  GridSpec s;
  s.nx = s.ny = s.nz = 10;
  Grid3 g(s);
  g.bake();
  FdtdSolverOptions opt;
  opt.boundary = BoundaryKind::kCpml;
  opt.cpml.thickness = 8;  // 2*8+4 > 10
  EXPECT_THROW(FdtdSolver(std::move(g), opt), std::invalid_argument);
  EXPECT_THROW(CpmlBoundary(nullptr, CpmlOptions{}), std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
