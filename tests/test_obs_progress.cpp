// Tests for the live sweep progress surface (obs/progress.h): throttling,
// the guaranteed final emission, counting of done/failed/replayed corners
// and health severities, the stats hook, and the formatted line contract
// (`# progress: ...`, negative rates omitted) that the CI smoke run greps
// out of a real example's stderr.
#include "obs/progress.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace fdtdmm {
namespace obs {
namespace {

// Sink that captures every snapshot, for asserting on emission behavior.
struct CaptureSink {
  std::vector<ProgressSnapshot> snaps;
  ProgressOptions options(double min_interval = 0.0) {
    ProgressOptions opt;
    opt.enabled = true;
    opt.min_interval_seconds = min_interval;
    opt.sink = [this](const ProgressSnapshot& s) { snaps.push_back(s); };
    return opt;
  }
};

TEST(Progress, DisabledReporterNeverEmits) {
  CaptureSink cap;
  ProgressOptions opt = cap.options();
  opt.enabled = false;
  ProgressReporter rep(opt, 10);
  EXPECT_FALSE(rep.enabled());
  rep.taskDone(true, HealthSeverity::kOk);
  rep.taskReplayed(HealthSeverity::kCritical);
  rep.finish();
  EXPECT_TRUE(cap.snaps.empty());
}

TEST(Progress, ZeroIntervalEmitsEveryTaskPlusFinal) {
  CaptureSink cap;
  ProgressReporter rep(cap.options(0.0), 3);
  EXPECT_TRUE(rep.enabled());
  rep.taskDone(true, HealthSeverity::kOk);
  rep.taskDone(true, HealthSeverity::kOk);
  rep.taskDone(false, HealthSeverity::kCritical);
  rep.finish();
  ASSERT_EQ(cap.snaps.size(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cap.snaps[i].done, i + 1);
    EXPECT_EQ(cap.snaps[i].total, 3u);
    EXPECT_FALSE(cap.snaps[i].final);
  }
  const ProgressSnapshot& last = cap.snaps.back();
  EXPECT_TRUE(last.final);
  EXPECT_EQ(last.done, 3u);
  EXPECT_EQ(last.failed, 1u);
  EXPECT_EQ(last.health_critical, 1);
}

TEST(Progress, LongIntervalThrottlesDownToTheFinalEmission) {
  CaptureSink cap;
  ProgressReporter rep(cap.options(/*min_interval=*/3600.0), 100);
  for (int i = 0; i < 100; ++i) rep.taskDone(true, HealthSeverity::kOk);
  EXPECT_TRUE(cap.snaps.empty());  // all suppressed by the interval
  rep.finish();                    // forced, unthrottled
  ASSERT_EQ(cap.snaps.size(), 1u);
  EXPECT_TRUE(cap.snaps[0].final);
  EXPECT_EQ(cap.snaps[0].done, 100u);
}

TEST(Progress, FinishIsIdempotent) {
  CaptureSink cap;
  ProgressReporter rep(cap.options(0.0), 1);
  rep.taskDone(true, HealthSeverity::kOk);
  rep.finish();
  rep.finish();
  rep.finish();
  ASSERT_EQ(cap.snaps.size(), 2u);  // one task emission + ONE final
  EXPECT_TRUE(cap.snaps.back().final);
}

TEST(Progress, CountsReplaysFailuresAndSeverities) {
  CaptureSink cap;
  ProgressReporter rep(cap.options(0.0), 6);
  rep.taskReplayed(HealthSeverity::kOk);
  rep.taskReplayed(HealthSeverity::kWarn);
  rep.taskDone(true, HealthSeverity::kOk);
  rep.taskDone(true, HealthSeverity::kWarn);
  rep.taskDone(false, HealthSeverity::kCritical);
  rep.taskDone(true, HealthSeverity::kOk);
  rep.finish();
  const ProgressSnapshot& last = cap.snaps.back();
  EXPECT_EQ(last.done, 6u);
  EXPECT_EQ(last.replayed, 2u);
  EXPECT_EQ(last.failed, 1u);
  EXPECT_EQ(last.health_warn, 2);
  EXPECT_EQ(last.health_critical, 1);
}

TEST(Progress, ReportsAreThreadSafe) {
  CaptureSink cap;
  constexpr std::size_t kThreads = 8, kPerThread = 500;
  ProgressReporter rep(cap.options(0.0), kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rep] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        rep.taskDone(true, HealthSeverity::kOk);
    });
  }
  for (std::thread& th : threads) th.join();
  rep.finish();
  EXPECT_EQ(cap.snaps.back().done, kThreads * kPerThread);
  EXPECT_EQ(cap.snaps.size(), kThreads * kPerThread + 1);  // none lost
}

TEST(Progress, StatsHookFillsRatesAtEmissionTime) {
  CaptureSink cap;
  ProgressReporter rep(cap.options(0.0), 2, [](ProgressSnapshot& s) {
    s.worker_utilization = 0.75;
    s.solver_cache_hit_rate = 0.5;
    s.result_cache_hit_rate = 0.25;
  });
  rep.taskDone(true, HealthSeverity::kOk);
  rep.finish();
  for (const ProgressSnapshot& s : cap.snaps) {
    EXPECT_DOUBLE_EQ(s.worker_utilization, 0.75);
    EXPECT_DOUBLE_EQ(s.solver_cache_hit_rate, 0.5);
    EXPECT_DOUBLE_EQ(s.result_cache_hit_rate, 0.25);
  }
}

TEST(Progress, RateAndEtaAreSane) {
  CaptureSink cap;
  ProgressReporter rep(cap.options(0.0), 10);
  for (int i = 0; i < 5; ++i) rep.taskDone(true, HealthSeverity::kOk);
  rep.finish();
  const ProgressSnapshot& last = cap.snaps.back();
  EXPECT_GE(last.elapsed_seconds, 0.0);
  EXPECT_GE(last.corners_per_second, 0.0);
  // Once a positive rate exists, every non-final snapshot carries a
  // nonnegative ETA (remaining / rate).
  for (const ProgressSnapshot& s : cap.snaps) {
    if (!s.final && s.corners_per_second > 0.0) {
      EXPECT_GE(s.eta_seconds, 0.0);
    }
  }
}

TEST(Progress, FormatLineCarriesTheGreppableShape) {
  ProgressSnapshot s;
  s.done = 37;
  s.total = 114;
  s.corners_per_second = 12.3;
  s.eta_seconds = 6.0;
  s.health_warn = 2;
  s.health_critical = 0;
  const std::string line = formatProgressLine(s);
  // The `# progress:` prefix and done/total are the CI smoke-run grep
  // targets — pinned here so the workflow and the formatter cannot drift.
  EXPECT_EQ(line.rfind("# progress: 37/114 corners (32.5%)", 0), 0u) << line;
  EXPECT_NE(line.find("12.3/s"), std::string::npos) << line;
  EXPECT_NE(line.find("eta 6s"), std::string::npos) << line;
  EXPECT_NE(line.find("health 2 warn / 0 critical"), std::string::npos) << line;
  // Rates the runner could not supply are negative and omitted entirely.
  EXPECT_EQ(line.find("util"), std::string::npos) << line;
  EXPECT_EQ(line.find("cache"), std::string::npos) << line;
  EXPECT_EQ(line.find("failed"), std::string::npos) << line;
}

TEST(Progress, FormatLineFinalAndRatesAndFailures) {
  ProgressSnapshot s;
  s.done = 114;
  s.total = 114;
  s.failed = 3;
  s.elapsed_seconds = 9.25;
  s.worker_utilization = 0.87;
  s.solver_cache_hit_rate = 1.0;
  s.result_cache_hit_rate = 0.0;
  s.final = true;
  const std::string line = formatProgressLine(s);
  EXPECT_EQ(line.rfind("# progress: 114/114 corners (100.0%)", 0), 0u) << line;
  EXPECT_NE(line.find("done in 9.2s"), std::string::npos) << line;
  EXPECT_NE(line.find("util 87%"), std::string::npos) << line;
  EXPECT_NE(line.find("solver-cache 100%"), std::string::npos) << line;
  // A known-zero rate is information, not absence: it must be printed.
  EXPECT_NE(line.find("result-cache 0%"), std::string::npos) << line;
  EXPECT_NE(line.find("3 failed"), std::string::npos) << line;
  EXPECT_EQ(line.find("eta"), std::string::npos) << line;  // final: no eta
}

TEST(Progress, EmptySweepFinishesCleanly) {
  CaptureSink cap;
  ProgressReporter rep(cap.options(0.0), 0);
  rep.finish();
  ASSERT_EQ(cap.snaps.size(), 1u);
  EXPECT_EQ(cap.snaps[0].done, 0u);
  EXPECT_EQ(cap.snaps[0].total, 0u);
  EXPECT_TRUE(cap.snaps[0].final);
}

}  // namespace
}  // namespace obs
}  // namespace fdtdmm
