// Unit tests for k-means clustering (RBF center placement).
#include "math/kmeans.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "math/rng.h"

namespace fdtdmm {
namespace {

std::vector<Vector> threeBlobs(std::size_t per_blob, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> pts;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (const auto& c : centers) {
    for (std::size_t k = 0; k < per_blob; ++k) {
      pts.push_back({c[0] + 0.3 * rng.normal(), c[1] + 0.3 * rng.normal()});
    }
  }
  return pts;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  const auto pts = threeBlobs(50, 11);
  const KMeansResult res = kMeans(pts, 3);
  ASSERT_EQ(res.centers.size(), 3u);
  // Every center should be within 1.0 of one of the true blob centers.
  const double truth[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (const Vector& c : res.centers) {
    double best = 1e9;
    for (const auto& t : truth) {
      const double d = std::hypot(c[0] - t[0], c[1] - t[1]);
      best = std::min(best, d);
    }
    EXPECT_LT(best, 1.0);
  }
  EXPECT_LT(res.inertia / static_cast<double>(pts.size()), 0.5);
}

TEST(KMeans, LabelsMatchNearestCenter) {
  const auto pts = threeBlobs(30, 5);
  const KMeansResult res = kMeans(pts, 3);
  for (std::size_t p = 0; p < pts.size(); ++p) {
    double d_assigned = 0.0, d_best = 1e18;
    for (std::size_t c = 0; c < res.centers.size(); ++c) {
      double d = 0.0;
      for (std::size_t k = 0; k < pts[p].size(); ++k) {
        const double u = pts[p][k] - res.centers[c][k];
        d += u * u;
      }
      if (c == res.labels[p]) d_assigned = d;
      d_best = std::min(d_best, d);
    }
    EXPECT_DOUBLE_EQ(d_assigned, d_best);
  }
}

TEST(KMeans, DeterministicForFixedSeed) {
  const auto pts = threeBlobs(20, 3);
  KMeansOptions opt;
  opt.seed = 77;
  const auto a = kMeans(pts, 4, opt);
  const auto b = kMeans(pts, 4, opt);
  ASSERT_EQ(a.centers.size(), b.centers.size());
  for (std::size_t c = 0; c < a.centers.size(); ++c) {
    for (std::size_t k = 0; k < a.centers[c].size(); ++k) {
      EXPECT_DOUBLE_EQ(a.centers[c][k], b.centers[c][k]);
    }
  }
}

TEST(KMeans, KEqualsNIsExact) {
  std::vector<Vector> pts{{0.0}, {1.0}, {2.0}};
  const auto res = kMeans(pts, 3);
  EXPECT_NEAR(res.inertia, 0.0, 1e-18);
}

TEST(KMeans, InvalidInputsThrow) {
  std::vector<Vector> pts{{0.0}, {1.0}};
  EXPECT_THROW(kMeans({}, 1), std::invalid_argument);
  EXPECT_THROW(kMeans(pts, 0), std::invalid_argument);
  EXPECT_THROW(kMeans(pts, 3), std::invalid_argument);
  std::vector<Vector> ragged{{0.0}, {1.0, 2.0}};
  EXPECT_THROW(kMeans(ragged, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
