// Tests of the transistor-level CMOS driver/receiver substitute devices.
#include "devices/cmos_driver.h"

#include <gtest/gtest.h>

#include "circuit/transient.h"
#include "devices/training.h"
#include "math/stats.h"
#include "signal/sources.h"

namespace fdtdmm {
namespace {

TEST(CmosDriver, StaticLevelsIntoLightLoad) {
  // Driver holding HIGH then LOW into 1 kohm to ground.
  for (const bool high : {true, false}) {
    Circuit c;
    CmosDriverParams p;
    const double level = high ? 1.0 : 0.0;
    auto drv = buildCmosDriver(c, p, [level](double) { return level; });
    c.addResistor(drv.pad, Circuit::kGround, 1000.0);
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 0.2e-9;
    opt.settle_time = 5e-9;
    const auto res = runTransient(c, opt, {{"v", drv.pad, 0}});
    const double v = res.at("v").samples().back();
    if (high) {
      EXPECT_GT(v, 0.9 * p.vdd);  // small droop from the 1k load
      EXPECT_LT(v, p.vdd + 1e-6);
    } else {
      EXPECT_NEAR(v, 0.0, 0.05);
    }
  }
}

TEST(CmosDriver, OutputImpedanceReasonable) {
  // HIGH-state output impedance from two load points: should be tens of
  // ohms (a plausible high-speed driver).
  auto v_with_load = [](double r_load) {
    Circuit c;
    CmosDriverParams p;
    auto drv = buildCmosDriver(c, p, [](double) { return 1.0; });
    c.addResistor(drv.pad, Circuit::kGround, r_load);
    TransientOptions opt;
    opt.dt = 2e-12;
    opt.t_stop = 0.1e-9;
    opt.settle_time = 5e-9;
    return runTransient(c, opt, {{"v", drv.pad, 0}}).at("v").samples().back();
  };
  const double v1 = v_with_load(100.0);
  const double v2 = v_with_load(50.0);
  const double i1 = v1 / 100.0, i2 = v2 / 50.0;
  const double r_out = (v1 - v2) / (i2 - i1);
  EXPECT_GT(r_out, 5.0);
  EXPECT_LT(r_out, 120.0);
}

TEST(CmosDriver, SwitchingEdgeIntoResistiveLoad) {
  Circuit c;
  CmosDriverParams p;
  const BitPattern pat("01", 2e-9);
  auto drv = buildCmosDriver(c, p, [pat](double t) {
    return static_cast<double>(pat.levelAt(t));
  });
  c.addResistor(drv.pad, Circuit::kGround, 100.0);
  TransientOptions opt;
  opt.dt = 2e-12;
  opt.t_stop = 4e-9;
  opt.settle_time = 4e-9;
  const auto res = runTransient(c, opt, {{"v", drv.pad, 0}});
  const Waveform& v = res.at("v");
  EXPECT_NEAR(v.value(1.9e-9), 0.0, 0.05);       // still LOW
  EXPECT_GT(v.value(3.6e-9), 0.8 * v.samples().back());
  // Edge duration sane: between 10% and 90% in < 1 ns.
  const double v_hi = v.samples().back();
  double t10 = 0.0, t90 = 0.0;
  for (std::size_t k = 0; k < v.size(); ++k) {
    const double t = v.dt() * static_cast<double>(k);
    if (t10 == 0.0 && v[k] > 0.1 * v_hi && t > 1.9e-9) t10 = t;
    if (t90 == 0.0 && v[k] > 0.9 * v_hi && t > 1.9e-9) t90 = t;
  }
  EXPECT_GT(t90, t10);
  EXPECT_LT(t90 - t10, 1e-9);
}

TEST(CmosReceiver, ClampsConductOutsideRails) {
  CmosReceiverParams p;
  // Force the pad well below ground and above vdd, read the current.
  const Waveform v_force = sampleFunction(
      [&](double t) { return t < 5e-9 ? -1.0 : p.vdd + 1.0; }, 0.0, 10e-9, 10e-12);
  const PortRecord rec = recordReceiverForced(p, v_force);
  // Below ground the down clamp sources current *into* the device pad
  // (negative current into the pad from the device's perspective means the
  // clamp pulls the pad up): at v = -1 the diode from ground conducts, so
  // the external source must sink current: i_into_device < 0.
  EXPECT_LT(rec.i.value(4e-9), -1e-3);
  // Above vdd the up clamp conducts into the rail: i_into_device > 0.
  EXPECT_GT(rec.i.value(9e-9), 1e-3);
}

TEST(CmosReceiver, HighImpedanceInsideRails) {
  CmosReceiverParams p;
  const Waveform v_force =
      sampleFunction([](double) { return 0.9; }, 0.0, 20e-9, 10e-12);
  const PortRecord rec = recordReceiverForced(p, v_force);
  // DC input current at mid-rail is tiny (leakage scale).
  EXPECT_LT(std::abs(rec.i.samples().back()), 1e-4);
}

TEST(Training, FixedStateRecordShapes) {
  CmosDriverParams p;
  MultilevelOptions mo;
  mo.seed = 5;
  const Waveform v_force = multilevelRandom(10e-9, 20e-12, mo);
  const PortRecord rec = recordDriverFixedState(p, true, v_force);
  EXPECT_EQ(rec.v.size(), rec.i.size());
  EXPECT_DOUBLE_EQ(rec.v.dt(), rec.i.dt());
  // The forced port voltage must track the excitation.
  EXPECT_LT(nrmse(rec.v.samples(), v_force.resampled(rec.v.dt()).samples()), 0.02);
  // Resampling keeps the pairing.
  const PortRecord rs = resampleRecord(rec, 50e-12);
  EXPECT_EQ(rs.v.size(), rs.i.size());
  EXPECT_DOUBLE_EQ(rs.v.dt(), 50e-12);
}

TEST(Training, HighAndLowStatesDiffer) {
  CmosDriverParams p;
  MultilevelOptions mo;
  mo.seed = 6;
  const Waveform v_force = multilevelRandom(10e-9, 20e-12, mo);
  const PortRecord hi = recordDriverFixedState(p, true, v_force);
  const PortRecord lo = recordDriverFixedState(p, false, v_force);
  // Same forcing, very different port currents (pull-up vs pull-down).
  EXPECT_GT(rmsError(hi.i.samples(), lo.i.samples()), 1e-3);
}

TEST(CmosDriver, NullLogicThrows) {
  Circuit c;
  EXPECT_THROW(buildCmosDriver(c, CmosDriverParams{}, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
