// Tests for the frequency-domain helpers.
#include "signal/spectrum.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transient.h"
#include "signal/sources.h"

namespace fdtdmm {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Spectrum, SineMagnitudeAtItsFrequency) {
  // x(t) = sin(2 pi f0 t) over N full periods: |X(f0)| = T/2 (continuous
  // normalization), X(0) ~ 0.
  const double f0 = 1e9;
  const double duration = 20.0 / f0;
  const Waveform w = sampleFunction(
      [f0](double t) { return std::sin(2.0 * kPi * f0 * t); }, 0.0, duration, 1e-12);
  const auto x = dftAt(w, f0);
  EXPECT_NEAR(std::abs(x), duration / 2.0, duration * 0.01);
  EXPECT_NEAR(std::abs(dftAt(w, 0.0)), 0.0, duration * 0.01);
  // Orthogonality: a bin far away is tiny.
  EXPECT_LT(std::abs(dftAt(w, 3.35e9)), duration * 0.02);
}

TEST(Spectrum, GaussianPulseSpectrumMatchesAnalytic) {
  // g(t) = exp(-(t-t0)^2 / 2 sigma^2): |G(f)| = sigma sqrt(2 pi)
  // exp(-(2 pi f sigma)^2/2).
  const double sigma = 30e-12, t0 = 0.3e-9;
  const Waveform w = sampleFunction(gaussianPulse(1.0, t0, sigma), 0.0, 1e-9, 0.5e-12);
  for (const double f : {0.0, 2e9, 5e9, 9.2e9}) {
    const double expect = sigma * std::sqrt(2.0 * kPi) *
                          std::exp(-0.5 * std::pow(2.0 * kPi * f * sigma, 2.0));
    EXPECT_NEAR(std::abs(dftAt(w, f)), expect, expect * 0.01 + 1e-15) << f;
  }
}

TEST(Spectrum, RcFilterTransferFunction) {
  // Drive an RC lowpass with a Gaussian pulse in the MNA engine and verify
  // H(f) = 1/(1 + j 2 pi f R C) from the two node waveforms.
  const double r = 200.0, c = 1e-12;  // f_c = 796 MHz
  Circuit cir;
  const int in = cir.addNode();
  const int out = cir.addNode();
  cir.addVoltageSource(in, Circuit::kGround, gaussianPulse(1.0, 0.5e-9, 50e-12));
  cir.addResistor(in, out, r);
  cir.addCapacitor(out, Circuit::kGround, c);
  TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_stop = 6e-9;  // let the response decay fully
  const auto res = runTransient(cir, opt, {{"in", in, 0}, {"out", out, 0}});
  for (const double f : {0.2e9, 0.8e9, 2e9}) {
    const std::complex<double> h = transferAt(res.at("in"), res.at("out"), f);
    const std::complex<double> h_ref =
        1.0 / std::complex<double>(1.0, 2.0 * kPi * f * r * c);
    EXPECT_NEAR(std::abs(h), std::abs(h_ref), 0.02) << f;
    EXPECT_NEAR(std::arg(h), std::arg(h_ref), 0.05) << f;
  }
}

TEST(Spectrum, LongWaveformMatchesDirectEvaluation) {
  // 200k samples: the exp(-jwt) recurrence drifts without periodic
  // renormalization. Compare against literal sin/cos evaluation per sample.
  const double f0 = 0.9e9;
  const double dt = 1e-12;
  const std::size_t n = 200000;
  Vector s(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * dt;
    s[k] = std::sin(2.0 * kPi * f0 * t) + 0.25 * std::cos(2.0 * kPi * 3.1 * f0 * t);
  }
  const Waveform w(0.0, dt, std::move(s));
  for (const double f : {0.0, f0, 2.5e9}) {
    std::complex<double> direct(0.0, 0.0);
    for (std::size_t k = 0; k < w.size(); ++k) {
      const double th = 2.0 * kPi * f * static_cast<double>(k) * dt;
      direct += w[k] * std::complex<double>(std::cos(th), -std::sin(th));
    }
    direct *= dt;
    const auto fast = dftAt(w, f);
    EXPECT_NEAR(std::abs(fast - direct), 0.0, std::abs(direct) * 1e-12 + 1e-16) << f;
  }
}

TEST(Spectrum, Validation) {
  EXPECT_THROW(dftAt(Waveform(), 1e9), std::invalid_argument);
  const Waveform w(0.0, 1e-12, {1.0, 1.0});
  EXPECT_THROW(dftAt(w, -1.0), std::invalid_argument);
  EXPECT_THROW(transferAt(Waveform(0.0, 1e-12, {0.0, 0.0}), w, 1e9),
               std::invalid_argument);
  EXPECT_THROW(frequencyGrid(1e9, 0.5e9, 5), std::invalid_argument);
  EXPECT_THROW(frequencyGrid(0.0, 1e9, 1), std::invalid_argument);
  const auto grid = frequencyGrid(1e9, 2e9, 3);
  EXPECT_DOUBLE_EQ(grid[1], 1.5e9);
}

TEST(Spectrum, VectorOverloadMatchesScalar) {
  const Waveform w = sampleFunction(
      [](double t) { return std::cos(2.0 * kPi * 2e9 * t); }, 0.0, 5e-9, 1e-12);
  const std::vector<double> fs{0.5e9, 2e9, 4e9};
  const auto xs = dftAt(w, fs);
  ASSERT_EQ(xs.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    const auto ref = dftAt(w, fs[k]);
    EXPECT_DOUBLE_EQ(xs[k].real(), ref.real());
    EXPECT_DOUBLE_EQ(xs[k].imag(), ref.imag());
  }
}

}  // namespace
}  // namespace fdtdmm
