// Unit tests of the complex LU solvers (math/complex_lu.h): the dense
// reference path against known solutions, and the banded RCM sparse path
// against the dense one on MNA-shaped systems.
#include "math/complex_lu.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "math/rng.h"
#include "math/sparse_lu.h"
#include "math/sparse_matrix.h"

namespace fdtdmm {
namespace {

// Max |x - y| over two complex vectors.
double maxDiff(const ComplexVector& x, const ComplexVector& y) {
  double gap = 0.0;
  for (std::size_t k = 0; k < x.size(); ++k) gap = std::max(gap, std::abs(x[k] - y[k]));
  return gap;
}

// Residual max |A x - b| with A given as a real/imaginary dense pair.
double residual(const Matrix& re, const Matrix& im, const ComplexVector& x,
                const ComplexVector& b) {
  double worst = 0.0;
  for (std::size_t r = 0; r < re.rows(); ++r) {
    Complex acc(0.0, 0.0);
    for (std::size_t c = 0; c < re.cols(); ++c) acc += Complex(re(r, c), im(r, c)) * x[c];
    worst = std::max(worst, std::abs(acc - b[r]));
  }
  return worst;
}

TEST(ComplexLu, SolvesKnownTwoByTwoSystem) {
  // A = [[1+i, 2], [3, 4-i]], x = [1-i, 2+i]  =>  b = A x.
  Matrix re(2, 2), im(2, 2);
  re(0, 0) = 1.0; im(0, 0) = 1.0;
  re(0, 1) = 2.0;
  re(1, 0) = 3.0;
  re(1, 1) = 4.0; im(1, 1) = -1.0;
  const ComplexVector x_ref = {Complex(1.0, -1.0), Complex(2.0, 1.0)};
  const ComplexVector b = {Complex(1.0, 1.0) * x_ref[0] + 2.0 * x_ref[1],
                           3.0 * x_ref[0] + Complex(4.0, -1.0) * x_ref[1]};
  ComplexLu lu;
  lu.factor(re, im);
  EXPECT_LT(maxDiff(lu.solve(b), x_ref), 1e-13);
}

TEST(ComplexLu, RandomDenseSystemsSolveToRoundoff) {
  // n >= 4 exercises multi-level pivot permutations (a past bug class:
  // getrf-style full-row swaps demand the laswp solve order).
  Rng rng(7);
  for (std::size_t n : {1, 2, 3, 4, 8, 16, 31}) {
    Matrix re(n, n), im(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) {
        re(r, c) = rng.uniform() - 0.5;
        im(r, c) = rng.uniform() - 0.5;
      }
    ComplexVector b(n);
    for (std::size_t k = 0; k < n; ++k) b[k] = Complex(rng.uniform(), rng.uniform());
    ComplexLu lu;
    lu.factor(re, im);
    const ComplexVector x = lu.solve(b);
    EXPECT_LT(residual(re, im, x, b), 1e-11) << "n=" << n;
  }
}

TEST(ComplexLu, RejectsBadShapesAndSingularMatrices) {
  ComplexLu lu;
  EXPECT_THROW(lu.factor(Matrix(2, 2), Matrix(3, 3)), std::invalid_argument);
  EXPECT_THROW(lu.solve(ComplexVector(2)), std::logic_error);  // not factored
  Matrix z(2, 2);  // all-zero: singular
  EXPECT_THROW(lu.factor(z, Matrix(2, 2)), std::runtime_error);
  // A failed factor must not leave the object claiming to be factored.
  EXPECT_FALSE(lu.factored());
}

// Builds the CSR pair of a complex tridiagonal system (same pattern on
// both halves, the AcStampSystem invariant).
void buildTridiagonal(std::size_t n, SparseMatrix& re, SparseMatrix& im) {
  re.reset(n);
  im.reset(n);
  for (std::size_t i = 0; i < n; ++i) {
    re.add(i, i, 4.0 + 0.1 * static_cast<double>(i));
    im.add(i, i, 0.7);
    if (i > 0) {
      re.add(i, i - 1, -1.0);
      im.add(i, i - 1, 0.2);
    }
    if (i + 1 < n) {
      re.add(i, i + 1, -1.5);
      im.add(i, i + 1, -0.3);
    }
  }
  re.finalize();
  im.finalize();
}

TEST(ComplexSparseLu, MatchesDenseOnTridiagonalSystem) {
  const std::size_t n = 50;
  SparseMatrix re(n), im(n);
  buildTridiagonal(n, re, im);
  ComplexVector b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = Complex(std::sin(static_cast<double>(i)), std::cos(static_cast<double>(i)));

  ComplexSparseLu slu;
  slu.factor(re, im);
  ComplexLu dense;
  dense.factor(re.toDense(), im.toDense());
  EXPECT_LT(maxDiff(slu.solve(b), dense.solve(b)), 1e-12);
}

TEST(ComplexSparseLu, HandlesMnaZeroDiagonalBranchRow) {
  // Voltage-source branch row: structurally zero diagonal, so the banded
  // partial pivoting must engage (cf. the real SparseLu test).
  SparseMatrix re(3), im(3);
  re.add(0, 0, 0.1);  im.add(0, 0, 0.05);
  re.add(0, 2, 1.0);  im.add(0, 2, 0.0);
  re.add(1, 1, 0.2);  im.add(1, 1, -0.04);
  re.add(2, 0, 1.0);  im.add(2, 0, 0.0);
  re.add(2, 2, 0.0);  im.add(2, 2, 0.0);  // explicit structural zero
  re.finalize();
  im.finalize();
  const ComplexVector b = {Complex(0.0, 0.0), Complex(1.0, 0.0), Complex(5.0, 0.0)};
  ComplexSparseLu slu;
  slu.factor(re, im);
  const ComplexVector x = slu.solve(b);
  EXPECT_LT(std::abs(x[0] - Complex(5.0, 0.0)), 1e-12);  // forced node
}

TEST(ComplexSparseLu, RejectsMismatchedPatterns) {
  SparseMatrix re(2), im(2);
  re.add(0, 0, 1.0);
  re.add(1, 1, 1.0);
  re.add(0, 1, 1.0);  // entry the imaginary half does not have
  im.add(0, 0, 1.0);
  im.add(1, 1, 1.0);
  re.finalize();
  im.finalize();
  ComplexSparseLu slu;
  EXPECT_THROW(slu.factor(re, im), std::invalid_argument);
}

TEST(ComplexSparseLu, FactorWithOrderMatchesPrivateAnalysis) {
  const std::size_t n = 40;
  SparseMatrix re(n), im(n);
  buildTridiagonal(n, re, im);
  ComplexVector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = Complex(1.0, -0.5);

  ComplexSparseLu private_order;
  private_order.factor(re, im);
  // The shared-symbolic path: seed the exact ordering a sibling session
  // computed (RCM is a pure function of the pattern).
  ComplexSparseLu shared_order;
  shared_order.factorWithOrder(re, im, reverseCuthillMcKee(re));
  EXPECT_LT(maxDiff(private_order.solve(b), shared_order.solve(b)), 1e-13);
  EXPECT_EQ(private_order.lowerBandwidth(), shared_order.lowerBandwidth());

  ComplexSparseLu bad;
  EXPECT_THROW(bad.factorWithOrder(re, im, std::vector<std::size_t>(n - 1)),
               std::invalid_argument);
}

TEST(ComplexSparseLu, RefactorAfterValueChangeReusesAnalysis) {
  // clearValues() keeps the pattern version, so the second factor must not
  // re-run the symbolic analysis — and must still be numerically right.
  const std::size_t n = 30;
  SparseMatrix re(n), im(n);
  buildTridiagonal(n, re, im);
  ComplexSparseLu slu;
  slu.factor(re, im);

  re.clearValues();
  im.clearValues();
  for (std::size_t i = 0; i < n; ++i) {
    re.add(i, i, 6.0);
    im.add(i, i, -1.0);
    if (i > 0) {
      re.add(i, i - 1, -2.0);
      im.add(i, i - 1, 0.0);
    }
    if (i + 1 < n) {
      re.add(i, i + 1, -0.5);
      im.add(i, i + 1, 0.1);
    }
  }
  slu.factor(re, im);
  ComplexLu dense;
  dense.factor(re.toDense(), im.toDense());
  ComplexVector b(n, Complex(1.0, 0.0));
  EXPECT_LT(maxDiff(slu.solve(b), dense.solve(b)), 1e-12);
}

}  // namespace
}  // namespace fdtdmm
