// Unit tests for BitPattern.
#include "signal/bit_pattern.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fdtdmm {
namespace {

TEST(BitPattern, ParseAndLevels) {
  const BitPattern p("0110", 1e-9);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.levelAt(0.0), 0);
  EXPECT_EQ(p.levelAt(1.5e-9), 1);
  EXPECT_EQ(p.levelAt(2.5e-9), 1);
  EXPECT_EQ(p.levelAt(3.5e-9), 0);
  EXPECT_EQ(p.levelAt(100e-9), 0);  // last bit holds
}

TEST(BitPattern, Edges) {
  const BitPattern p("010", 2e-9);
  const auto e = p.edges();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_DOUBLE_EQ(e[0].time, 0.0);
  EXPECT_EQ(e[0].level, 0);
  EXPECT_DOUBLE_EQ(e[1].time, 2e-9);
  EXPECT_EQ(e[1].level, 1);
  EXPECT_DOUBLE_EQ(e[2].time, 4e-9);
  EXPECT_EQ(e[2].level, 0);
}

TEST(BitPattern, NoEdgesForConstantPattern) {
  const BitPattern p("1111", 1e-9);
  EXPECT_EQ(p.edges().size(), 1u);
}

TEST(BitPattern, Validation) {
  EXPECT_THROW(BitPattern("", 1e-9), std::invalid_argument);
  EXPECT_THROW(BitPattern("012", 1e-9), std::invalid_argument);
  EXPECT_THROW(BitPattern("01", 0.0), std::invalid_argument);
}

TEST(BitPattern, RandomDeterministic) {
  const BitPattern a = BitPattern::random(64, 1e-9, 5);
  const BitPattern b = BitPattern::random(64, 1e-9, 5);
  EXPECT_EQ(a.bits(), b.bits());
  const BitPattern c = BitPattern::random(64, 1e-9, 6);
  EXPECT_NE(a.bits(), c.bits());
  EXPECT_THROW(BitPattern::random(0, 1e-9, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
