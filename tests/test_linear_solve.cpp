// Unit tests for LU and QR least-squares solvers.
#include "math/linear_solve.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "math/rng.h"

namespace fdtdmm {
namespace {

TEST(LuFactorization, SolvesKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = solveLinear(a, Vector{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuFactorization, PivotingHandlesZeroDiagonal) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = solveLinear(a, Vector{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuFactorization, SingularThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuFactorization{a}, std::runtime_error);
}

TEST(LuFactorization, NonSquareThrows) {
  EXPECT_THROW(LuFactorization{Matrix(2, 3)}, std::invalid_argument);
}

TEST(LuFactorization, RandomRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + trial % 8;
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
    for (std::size_t d = 0; d < n; ++d) a(d, d) += 3.0;  // well conditioned
    Vector x_true(n);
    for (double& v : x_true) v = rng.normal();
    const Vector b = a * x_true;
    const Vector x = solveLinear(a, b);
    for (std::size_t k = 0; k < n; ++k) EXPECT_NEAR(x[k], x_true[k], 1e-9);
  }
}

TEST(LuFactorization, ReuseForMultipleRhs) {
  Matrix a{{4.0, 1.0}, {1.0, 4.0}};
  LuFactorization lu(a);
  const Vector x1 = lu.solve({5.0, 5.0});
  const Vector x2 = lu.solve({4.0, 1.0});
  EXPECT_NEAR(x1[0], 1.0, 1e-12);
  EXPECT_NEAR(x2[0], 1.0, 1e-12);
  EXPECT_NEAR(x2[1], 0.0, 1e-12);
  EXPECT_GT(lu.absDeterminant(), 0.0);
}

TEST(LuFactorization, InPlaceRefactorAndSolve) {
  // The transient engine's usage pattern: default-construct, factor, solve
  // into a reused output vector, re-factor from a different matrix.
  LuFactorization lu;
  EXPECT_FALSE(lu.factored());
  EXPECT_THROW(lu.solve(Vector{1.0}), std::logic_error);

  lu.factor(Matrix{{2.0, 0.0}, {0.0, 4.0}});
  EXPECT_TRUE(lu.factored());
  Vector x;
  lu.solve(Vector{2.0, 8.0}, x);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);

  lu.factor(Matrix{{0.0, 1.0}, {1.0, 0.0}});  // needs pivoting
  lu.solve(Vector{2.0, 3.0}, x);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuFactorization, FailedRefactorLeavesEmptyState) {
  LuFactorization lu;
  lu.factor(Matrix{{1.0, 0.0}, {0.0, 1.0}});
  EXPECT_THROW(lu.factor(Matrix{{1.0, 2.0}, {2.0, 4.0}}), std::runtime_error);
  EXPECT_FALSE(lu.factored());
  EXPECT_THROW(lu.solve(Vector{1.0, 1.0}), std::logic_error);
}

TEST(LeastSquares, ExactFitWhenSquare) {
  Matrix a{{1.0, 0.0}, {0.0, 2.0}};
  const Vector x = solveLeastSquares(a, Vector{3.0, 4.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LeastSquares, OverdeterminedProjects) {
  // Fit y = c0 + c1 t to noisy-free line samples: exact recovery.
  const std::size_t m = 20;
  Matrix a(m, 2);
  Vector b(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double t = static_cast<double>(i);
    a(i, 0) = 1.0;
    a(i, 1) = t;
    b[i] = 2.5 - 0.75 * t;
  }
  const Vector x = solveLeastSquares(a, b);
  EXPECT_NEAR(x[0], 2.5, 1e-10);
  EXPECT_NEAR(x[1], -0.75, 1e-10);
}

TEST(LeastSquares, RidgeShrinksSolution) {
  Matrix a{{1.0, 0.0}, {0.0, 1.0}, {0.0, 0.0}};
  const Vector x0 = solveLeastSquares(a, Vector{1.0, 1.0, 0.0}, 0.0);
  const Vector x1 = solveLeastSquares(a, Vector{1.0, 1.0, 0.0}, 1.0);
  EXPECT_NEAR(x0[0], 1.0, 1e-12);
  EXPECT_NEAR(x1[0], 0.5, 1e-12);  // (A^T A + I)^{-1} A^T b = 1/2
}

TEST(LeastSquares, RankDeficientThrowsWithoutRidge) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // collinear columns
  }
  EXPECT_THROW(solveLeastSquares(a, Vector(4, 1.0)), std::runtime_error);
  EXPECT_NO_THROW(solveLeastSquares(a, Vector(4, 1.0), 1e-6));
}

TEST(LeastSquares, UnderdeterminedThrows) {
  EXPECT_THROW(solveLeastSquares(Matrix(2, 3), Vector(2, 0.0)), std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
