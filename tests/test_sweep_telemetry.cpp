// Tests for the sweep telemetry export and the observability determinism
// contract: enabling telemetry/tracing must not perturb a single exported
// metric byte, while the separate telemetry JSON reports real per-corner
// phase timings, solver counters, cache effectiveness, and pool stats.
#include "engine/sweep_telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/sweep_runner.h"
#include "json_lint.h"
#include "obs/trace.h"

namespace fdtdmm {
namespace {

SweepSpec smallCrosstalkSpec() {
  SweepSpec spec;
  spec.scenario = "crosstalk";
  spec.set("pattern", std::string("010"));
  spec.set("bit_time", 1e-9);
  spec.set("t_stop", 3e-9);
  spec.set("segments", 8.0);
  spec.axis("coupling", {0.05, 0.2});
  spec.axis("victim_r_far", {25.0, 100.0});
  return spec;
}

SweepSpec smallEmcSpec() {
  SweepSpec spec;
  spec.scenario = "emc";
  spec.set("drive", std::string("none"));
  spec.set("t_stop", 3e-9);
  spec.set("segments", 8.0);
  spec.set("pulse_t0", 1e-9);
  spec.axis("amplitude", {500.0, 1000.0});
  spec.axisStrings("solver", {"reuse_lu", "sparse"});
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

struct Exports {
  std::string csv;
  std::string json;
};

Exports exportMetrics(const SweepResult& result) {
  const std::string csv_path = "test_sweep_tel.csv";
  const std::string json_path = "test_sweep_tel.json";
  writeSweepCsv(result, csv_path);
  writeSweepJson(result, json_path);
  Exports e{slurp(csv_path), slurp(json_path)};
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
  return e;
}

TEST(SweepTelemetry, MetricsBytesIdenticalAcrossWorkersAndTracing) {
  const SweepSpec spec = smallCrosstalkSpec();

  auto runWith = [&](std::size_t workers, bool traced) {
    SweepRunnerOptions opt;
    opt.workers = workers;
    SweepRunner runner(opt);
    if (!traced) return exportMetrics(runner.run(spec));
    obs::TraceWriter tw("");  // in-memory: exercise the spans, no file
    obs::TraceWriter::setActive(&tw);
    const SweepResult result = runner.run(spec);
    obs::TraceWriter::setActive(nullptr);
    EXPECT_GT(tw.eventCount(), 0u);
    return exportMetrics(result);
  };

  // The JSON header records the worker count by design; everything after
  // it (the runs array) must be byte-identical.
  auto stripHeader = [](const std::string& json) {
    const std::size_t runs = json.find("\"runs\"");
    EXPECT_NE(runs, std::string::npos);
    return json.substr(runs);
  };

  const Exports base = runWith(1, false);
  EXPECT_FALSE(base.csv.empty());
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    for (bool traced : {false, true}) {
      const Exports e = runWith(workers, traced);
      EXPECT_EQ(e.csv, base.csv) << "workers=" << workers << " traced=" << traced;
      EXPECT_EQ(stripHeader(e.json), stripHeader(base.json))
          << "workers=" << workers << " traced=" << traced;
    }
  }
}

TEST(SweepTelemetry, WaveformsBitIdenticalWithTelemetryAttached) {
  // The solver records waveforms identically whether or not the phase
  // timers run; compare a traced against an untraced sweep sample-level.
  const SweepSpec spec = smallCrosstalkSpec();
  SweepRunnerOptions opt;
  opt.workers = 1;
  opt.keep_waveforms = true;

  SweepRunner plain(opt);
  const SweepResult a = plain.run(spec);

  obs::TraceWriter tw("");
  obs::TraceWriter::setActive(&tw);
  SweepRunner traced(opt);
  const SweepResult b = traced.run(spec);
  obs::TraceWriter::setActive(nullptr);

  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    ASSERT_TRUE(a.runs[i].ok) << a.runs[i].error;
    const Waveform& wa = a.runs[i].waves.v_far;
    const Waveform& wb = b.runs[i].waves.v_far;
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t k = 0; k < wa.size(); ++k) EXPECT_EQ(wa[k], wb[k]);
  }
}

TEST(SweepTelemetry, CrosstalkCornersReportSolverCounters) {
  SweepRunnerOptions opt;
  opt.workers = 2;
  SweepRunner runner(opt);
  const SweepResult result = runner.run(smallCrosstalkSpec());
  ASSERT_EQ(result.okCount(), result.runs.size());

  for (const SweepRunRecord& r : result.runs) {
    // Crosstalk corners are nonlinear (RBF driver port), so the matrix is
    // refactored per Newton iteration: at least one LU, bounded by the
    // iteration count. The one-LU-per-linear-run guarantee is asserted on
    // the quiescent EMC corners below.
    EXPECT_GE(r.telemetry.lu_factorizations, 1) << r.label;
    EXPECT_LE(r.telemetry.lu_factorizations, r.telemetry.newton_iterations + 1)
        << r.label;
    EXPECT_GT(r.telemetry.phases.factor_seconds, 0.0) << r.label;
    EXPECT_EQ(r.telemetry.transient_runs, 1) << r.label;
    EXPECT_GT(r.telemetry.steps, 0) << r.label;
    EXPECT_GT(r.telemetry.newton_iterations, 0) << r.label;
    EXPECT_EQ(r.telemetry.pattern_realignments, 0) << r.label;
    EXPECT_GT(r.telemetry.wall_seconds, 0.0) << r.label;
    const obs::TransientPhases& p = r.telemetry.phases;
    EXPECT_GT(p.stamp_static_seconds, 0.0) << r.label;
    EXPECT_GT(p.rhs_stamp_seconds, 0.0) << r.label;
    EXPECT_GT(p.solve_seconds, 0.0) << r.label;
    EXPECT_GT(p.newton_seconds, 0.0) << r.label;
    // The Newton loop contains the per-iteration phases.
    EXPECT_GE(p.newton_seconds, p.solve_seconds) << r.label;
  }

  // Pool and cache stats describe this sweep's batch.
  EXPECT_EQ(result.pool.submitted,
            static_cast<long long>(result.runs.size()));
  EXPECT_EQ(result.pool.tasks_per_worker.size(), result.workers);
  long long dispatched = 0;
  for (long long n : result.pool.tasks_per_worker) dispatched += n;
  EXPECT_EQ(dispatched, result.pool.submitted);
  // One driver model resolved once at preload, then hit by every corner.
  EXPECT_EQ(result.model_cache.misses, 1);
  EXPECT_EQ(result.model_cache.inserts, 1);
  EXPECT_GE(result.model_cache.hits,
            static_cast<long long>(result.runs.size()));
  EXPECT_GT(result.model_cache.preload_seconds, 0.0);
}

TEST(SweepTelemetry, EmcSweepTelemetryAndJsonExport) {
  SweepRunnerOptions opt;
  opt.workers = 2;
  SweepRunner runner(opt);
  const SweepResult result = runner.run(smallEmcSpec());
  ASSERT_EQ(result.okCount(), result.runs.size());

  obs::RunTelemetry totals;
  for (const SweepRunRecord& r : result.runs) {
    // With solver-state sharing (default-on) a linear corner either
    // factors the class base itself (1 LU) or checks it out (0 LUs).
    EXPECT_LE(r.telemetry.lu_factorizations, 1) << r.label;
    EXPECT_EQ(r.telemetry.lu_factorizations + r.telemetry.shared_base_reuses, 1)
        << r.label;
    EXPECT_GT(r.telemetry.steps, 0) << r.label;
    totals.merge(r.telemetry);
  }
  // The paper's economy, one level up: the 2-amplitude x 2-solver sweep
  // has two numeric-base classes (one per solver mode — amplitude is
  // RHS-only), so exactly two factorizations total across all corners.
  EXPECT_EQ(totals.lu_factorizations, 2);
  EXPECT_EQ(result.solver_cache.numeric_misses, 2);
  EXPECT_EQ(result.solver_cache.numeric_hits, 2);
  // Only the sparse-solver corners have symbolic state to share.
  EXPECT_EQ(result.solver_cache.symbolic_misses, 1);
  EXPECT_EQ(result.solver_cache.symbolic_hits, 1);
  // All four corners are content-distinct: no result-cache replays.
  EXPECT_EQ(result.result_cache.hits, 0);
  EXPECT_EQ(result.result_cache.inserts, 4);
  // Quiescent EMC corners need no macromodels at all.
  EXPECT_EQ(result.model_cache.misses, 0);
  EXPECT_EQ(result.model_cache.hits, 0);

  const std::string json = sweepTelemetryJson(result);
  std::string err;
  ASSERT_TRUE(jsonlint::valid(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"corners\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"pool\""), std::string::npos);
  EXPECT_NE(json.find("\"model_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"steps\": " + std::to_string(totals.steps)),
            std::string::npos);

  const std::string path = "test_emc_telemetry.json";
  writeSweepTelemetryJson(result, path);
  EXPECT_EQ(slurp(path), json);
  std::remove(path.c_str());
}

TEST(SweepTelemetry, MetricsBytesIdenticalWithObservabilityOnVsOff) {
  // The second-generation observability contract: numerical health,
  // latency histograms, AND live progress all ride the telemetry channel —
  // none of them may perturb a single exported metric byte.
  const SweepSpec spec = smallCrosstalkSpec();

  auto runWith = [&](bool observed) {
    SweepRunnerOptions opt;
    opt.workers = 2;
    if (observed) {
      opt.health.collect = true;
      opt.progress.enabled = true;
      opt.progress.min_interval_seconds = 0.0;  // emit on every corner
      opt.progress.sink = [](const obs::ProgressSnapshot&) {};  // keep quiet
      opt.collect_histograms = true;
    } else {
      opt.collect_histograms = false;
    }
    SweepRunner runner(opt);
    return exportMetrics(runner.run(spec));
  };

  const Exports off = runWith(false);
  const Exports on = runWith(true);
  EXPECT_FALSE(off.csv.empty());
  EXPECT_EQ(on.csv, off.csv);
  EXPECT_EQ(on.json, off.json);
}

TEST(SweepTelemetry, HealthAndHistogramsFlowIntoTelemetryJson) {
  SweepRunnerOptions opt;
  opt.workers = 2;
  opt.health.collect = true;
  SweepRunner runner(opt);
  const SweepResult result = runner.run(smallEmcSpec());
  ASSERT_EQ(result.okCount(), result.runs.size());

  // Every corner carried a graded health record...
  for (const SweepRunRecord& r : result.runs) {
    const obs::NumericalHealth& h = r.telemetry.health;
    EXPECT_TRUE(h.collected) << r.label;
    EXPECT_EQ(h.residual_checks, 1) << r.label;
    EXPECT_LT(h.max_relative_residual, 1e-8) << r.label;
    EXPECT_EQ(h.severity, obs::HealthSeverity::kOk) << r.label;
  }
  // ...which the summary aggregates with worst-corner pointers.
  const SweepResult::HealthSummary summary = result.healthSummary();
  EXPECT_EQ(summary.collected_corners, result.runs.size());
  EXPECT_EQ(summary.warn_corners, 0u);
  EXPECT_EQ(summary.critical_corners, 0u);
  EXPECT_EQ(summary.severity, obs::HealthSeverity::kOk);
  EXPECT_LT(summary.worst_residual_corner, result.runs.size());
  EXPECT_GT(summary.worst_residual, 0.0);

  // Latency histograms recorded one sample per corner (default-on).
  ASSERT_EQ(result.histograms.count("corner_wall_seconds"), 1u);
  EXPECT_EQ(result.histograms.at("corner_wall_seconds").count(),
            result.runs.size());
  EXPECT_EQ(result.histograms.at("corner_newton_iterations").count(),
            result.runs.size());
  EXPECT_GT(result.histograms.at("corner_wall_seconds").percentile(0.5), 0.0);
  // Pool busy time is the utilization numerator: bounded by wall * workers.
  EXPECT_GT(result.pool.busy_seconds, 0.0);

  // The telemetry JSON carries every new section and still lints.
  const std::string json = sweepTelemetryJson(result);
  std::string err;
  ASSERT_TRUE(jsonlint::valid(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"health_summary\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"health\""), std::string::npos);
  EXPECT_NE(json.find("\"busy_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"corner_wall_seconds\""), std::string::npos);

  // The canonical counter document agrees with the result's own stats —
  // the same slots the examples' footers and BENCH_*.json print.
  const obs::Counters counters = sweepCounters(result);
  EXPECT_EQ(counters.count("corners.ok"),
            static_cast<long long>(result.okCount()));
  EXPECT_EQ(counters.count("corners.failed"), 0);
  EXPECT_EQ(counters.count("solver_cache.numeric_misses"),
            result.solver_cache.numeric_misses);
  EXPECT_EQ(counters.count("result_cache.inserts"), result.result_cache.inserts);
  EXPECT_EQ(counters.count("pool.tasks"), result.pool.submitted);
  EXPECT_EQ(counters.count("health.warn_corners"), 0);
  EXPECT_EQ(counters.count("health.critical_corners"), 0);
}

TEST(SweepTelemetry, HealthOffLeavesSummaryEmptyAndJsonValid) {
  SweepRunnerOptions opt;
  opt.workers = 1;
  opt.collect_histograms = false;
  SweepRunner runner(opt);
  const SweepResult result = runner.run(smallEmcSpec());
  ASSERT_EQ(result.okCount(), result.runs.size());

  for (const SweepRunRecord& r : result.runs)
    EXPECT_FALSE(r.telemetry.health.collected) << r.label;
  const SweepResult::HealthSummary summary = result.healthSummary();
  EXPECT_EQ(summary.collected_corners, 0u);
  EXPECT_EQ(summary.worst_residual_corner, static_cast<std::size_t>(-1));
  EXPECT_TRUE(result.histograms.empty());

  // The schema is stable: health/histogram sections still present (zeroed
  // / empty), the document still lints, and worst-corner pointers are -1.
  const std::string json = sweepTelemetryJson(result);
  std::string err;
  ASSERT_TRUE(jsonlint::valid(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"health_summary\""), std::string::npos);
  EXPECT_NE(json.find("\"collected\": false"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"worst_residual_corner\": -1"), std::string::npos);
}

TEST(SweepTelemetry, FailedCornerGetsZeroedTelemetry) {
  SweepResult result;
  result.workers = 1;
  SweepRunRecord bad;
  bad.index = 0;
  bad.label = "broken \"corner\"";
  bad.ok = false;
  bad.error = "boom";
  result.runs.push_back(bad);
  const std::string json = sweepTelemetryJson(result);
  std::string err;
  ASSERT_TRUE(jsonlint::valid(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
}

}  // namespace
}  // namespace fdtdmm
