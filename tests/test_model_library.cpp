// Tests for the directory-backed component model library.
#include "rbf/model_library.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

namespace fdtdmm {
namespace {

GaussianRbfParams tinyParams() {
  GaussianRbfParams p;
  p.order = 1;
  p.ts = 50e-12;
  p.beta = 0.5;
  p.i_scale = 1.0;
  p.theta = {0.01};
  p.c0 = {0.9};
  p.cv = {{0.9}};
  p.ci = {{0.0}};
  return p;
}

RbfDriverModel tinyDriver() {
  RbfDriverModel m;
  m.up = std::make_shared<GaussianRbfSubmodel>(tinyParams());
  m.down = std::make_shared<GaussianRbfSubmodel>(tinyParams());
  m.ts = 50e-12;
  m.weights.wu_up = Waveform(0.0, 50e-12, {0.0, 1.0});
  m.weights.wd_up = Waveform(0.0, 50e-12, {1.0, 0.0});
  m.weights.wu_down = Waveform(0.0, 50e-12, {1.0, 0.0});
  m.weights.wd_down = Waveform(0.0, 50e-12, {0.0, 1.0});
  return m;
}

RbfReceiverModel tinyReceiver() {
  RbfReceiverModel m;
  LinearArxParams lp;
  lp.order = 1;
  lp.ts = 50e-12;
  lp.a = {0.2};
  lp.b = {0.001, 0.0};
  m.lin = std::make_shared<LinearArxSubmodel>(lp);
  m.up = std::make_shared<GaussianRbfSubmodel>(tinyParams());
  m.down = std::make_shared<GaussianRbfSubmodel>(tinyParams());
  m.ts = 50e-12;
  return m;
}

class ModelLibraryTest : public testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs cases as parallel processes that must
    // not share a library directory.
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    dir_ = testing::TempDir() + "fdtdmm_lib_" + info->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ModelLibraryTest, PutGetRoundTrip) {
  ModelLibrary lib(dir_);
  lib.putDriver("ibm18cmos", tinyDriver());
  lib.putReceiver("ibm18cmos", tinyReceiver());
  EXPECT_TRUE(lib.hasDriver("ibm18cmos"));
  EXPECT_TRUE(lib.hasReceiver("ibm18cmos"));
  const auto drv = lib.driver("ibm18cmos");
  ASSERT_TRUE(drv && drv->up);
  EXPECT_DOUBLE_EQ(drv->up->params().theta[0], 0.01);
  const auto rcv = lib.receiver("ibm18cmos");
  ASSERT_TRUE(rcv && rcv->lin);
  EXPECT_DOUBLE_EQ(rcv->lin->params().a[0], 0.2);
}

TEST_F(ModelLibraryTest, CacheReturnsSameInstance) {
  ModelLibrary lib(dir_);
  lib.putDriver("x", tinyDriver());
  const auto a = lib.driver("x");
  const auto b = lib.driver("x");
  EXPECT_EQ(a.get(), b.get());
  // Overwriting invalidates the cache.
  lib.putDriver("x", tinyDriver());
  const auto c = lib.driver("x");
  EXPECT_NE(a.get(), c.get());
}

TEST_F(ModelLibraryTest, ListsComponents) {
  ModelLibrary lib(dir_);
  EXPECT_TRUE(lib.list().empty());
  lib.putDriver("alpha", tinyDriver());
  lib.putReceiver("alpha", tinyReceiver());
  lib.putReceiver("beta-2", tinyReceiver());
  const auto names = lib.list();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta-2");
}

TEST_F(ModelLibraryTest, MissingComponentThrows) {
  ModelLibrary lib(dir_);
  EXPECT_FALSE(lib.hasDriver("nope"));
  EXPECT_THROW(lib.driver("nope"), std::runtime_error);
  EXPECT_THROW(lib.receiver("nope"), std::runtime_error);
}

TEST_F(ModelLibraryTest, NameValidation) {
  ModelLibrary lib(dir_);
  EXPECT_THROW(lib.putDriver("", tinyDriver()), std::invalid_argument);
  EXPECT_THROW(lib.putDriver("../evil", tinyDriver()), std::invalid_argument);
  EXPECT_THROW(lib.driver("a/b"), std::invalid_argument);
  EXPECT_NO_THROW(lib.putDriver("Good_name-42", tinyDriver()));
}

TEST_F(ModelLibraryTest, PreloadFillsTheCache) {
  {
    ModelLibrary writer(dir_);
    writer.putDriver("a", tinyDriver());
    writer.putReceiver("a", tinyReceiver());
    writer.putDriver("b", tinyDriver());
  }
  ModelLibrary lib(dir_);
  lib.preload();
  // Cached: repeated lookups return the instance preload created.
  const auto first = lib.driver("a");
  EXPECT_EQ(first.get(), lib.driver("a").get());
  EXPECT_EQ(lib.receiver("a").get(), lib.receiver("a").get());
  EXPECT_NO_THROW(lib.driver("b"));
}

TEST_F(ModelLibraryTest, ConcurrentLookupsAreSafeAndShareOneInstance) {
  ModelLibrary lib(dir_);
  lib.putDriver("shared", tinyDriver());
  lib.putReceiver("shared", tinyReceiver());
  // Hammer the same component from several threads; every thread must get
  // the same cached instance and nothing may crash or throw.
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const RbfDriverModel>> seen(8);
  for (std::size_t t = 0; t < seen.size(); ++t)
    threads.emplace_back([&lib, &seen, t] {
      for (int k = 0; k < 50; ++k) {
        seen[t] = lib.driver("shared");
        lib.receiver("shared");
      }
    });
  for (auto& th : threads) th.join();
  for (const auto& model : seen) EXPECT_EQ(model.get(), seen[0].get());
}

TEST_F(ModelLibraryTest, SharedAcrossInstances) {
  {
    ModelLibrary lib(dir_);
    lib.putDriver("persisted", tinyDriver());
  }
  ModelLibrary lib2(dir_);
  EXPECT_TRUE(lib2.hasDriver("persisted"));
  EXPECT_NO_THROW(lib2.driver("persisted"));
}

}  // namespace
}  // namespace fdtdmm
