// Cross-engine integration tests on the paper's validation structure
// (Figs. 4-5): the four engines must agree on the termination waveforms.
#include "core/tline_scenario.h"

#include <gtest/gtest.h>

#include "math/stats.h"

namespace fdtdmm {
namespace {

/// Shared scenario with a shorter window and a smaller 3D mesh than the
/// paper's (tests must stay fast); bench_fig4 runs the full-size version.
TlineScenario testScenario(FarEndLoad load) {
  TlineScenario cfg;
  cfg.load = load;
  cfg.t_stop = 5e-9;
  cfg.mesh_nx = 92;
  cfg.mesh_ny = 16;
  cfg.mesh_nz = 15;
  cfg.strip_len = 76;
  cfg.strip_width = 4;
  cfg.strip_gap = 3;
  cfg.mesh_delta = 1.52e-3;  // keeps Td ~ 0.385 ns with 76 cells
  cfg.td = 76.0 * 1.52e-3 / 299792458.0;
  return cfg;
}

double compare(const Waveform& a, const Waveform& b, double t0, double t1) {
  // Resample both on a common axis and compute NRMSE over [t0, t1].
  Vector va, vb;
  const double dt = 10e-12;
  for (double t = t0; t <= t1; t += dt) {
    va.push_back(a.value(t));
    vb.push_back(b.value(t));
  }
  return nrmse(va, vb);
}

TEST(TlineScenario, SpiceRbfMatchesSpiceTransistorRcLoad) {
  const auto cfg = testScenario(FarEndLoad::kLinearRc);
  const auto ref = runSpiceTransistorTline(cfg, defaultDriverDevice(),
                                           defaultReceiverDevice());
  const auto rbf = runSpiceRbfTline(cfg, defaultDriverModel(), defaultReceiverModel());
  EXPECT_LT(compare(rbf.v_near, ref.v_near, 0.0, cfg.t_stop), 0.05);
  EXPECT_LT(compare(rbf.v_far, ref.v_far, 0.0, cfg.t_stop), 0.06);
}

TEST(TlineScenario, Fdtd1dMatchesSpiceRbfRcLoad) {
  const auto cfg = testScenario(FarEndLoad::kLinearRc);
  const auto spice = runSpiceRbfTline(cfg, defaultDriverModel(), defaultReceiverModel());
  const auto f1d = runFdtd1dTline(cfg, defaultDriverModel(), defaultReceiverModel());
  EXPECT_LT(compare(f1d.v_near, spice.v_near, 0.0, cfg.t_stop), 0.05);
  EXPECT_LT(compare(f1d.v_far, spice.v_far, 0.0, cfg.t_stop), 0.05);
}

TEST(TlineScenario, Fdtd3dMatchesFdtd1dRcLoad) {
  auto cfg = testScenario(FarEndLoad::kLinearRc);
  const auto f1d = runFdtd1dTline(cfg, defaultDriverModel(), defaultReceiverModel());
  const auto f3d = runFdtd3dTline(cfg, defaultDriverModel(), defaultReceiverModel());
  // The 3D line's Zc is only approximately 131 ohm and numerical
  // dispersion adds wiggle (the paper notes "a marginal deviation"), so
  // the tolerance is looser.
  EXPECT_LT(compare(f3d.v_near, f1d.v_near, 0.0, cfg.t_stop), 0.12);
  EXPECT_LT(compare(f3d.v_far, f1d.v_far, 0.0, cfg.t_stop), 0.12);
}

TEST(TlineScenario, ReceiverLoadEnginesAgree) {
  const auto cfg = testScenario(FarEndLoad::kReceiver);
  const auto spice = runSpiceRbfTline(cfg, defaultDriverModel(), defaultReceiverModel());
  const auto f1d = runFdtd1dTline(cfg, defaultDriverModel(), defaultReceiverModel());
  EXPECT_LT(compare(f1d.v_far, spice.v_far, 0.0, cfg.t_stop), 0.06);
}

TEST(TlineScenario, SignalShapeSanity) {
  // The far-end RC-loaded waveform must swing HIGH after the driver's
  // rising edge plus one line delay, with ringing above Vdd (the lightly
  // loaded 131-ohm line nearly doubles the incident wave).
  const auto cfg = testScenario(FarEndLoad::kLinearRc);
  const auto run = runSpiceRbfTline(cfg, defaultDriverModel(), defaultReceiverModel());
  EXPECT_NEAR(run.v_far.value(1.5e-9), 0.0, 0.15);  // before the edge
  double vmax = -1e9;
  for (double v : run.v_far.samples()) vmax = std::max(vmax, v);
  EXPECT_GT(vmax, 1.8);  // overshoot beyond Vdd
  EXPECT_LT(vmax, 3.2);  // bounded (Fig. 4's axis tops at ~3 V)
}

TEST(TlineScenario, NewtonIterationBudget) {
  // The paper: "the number of Newton-Raphson iterations ... never exceeded
  // a maximum number of three" at threshold 1e-9.
  const auto cfg = testScenario(FarEndLoad::kReceiver);
  const auto f1d = runFdtd1dTline(cfg, defaultDriverModel(), defaultReceiverModel());
  EXPECT_LE(f1d.max_newton_iterations, 3);
  const auto f3d = runFdtd3dTline(cfg, defaultDriverModel(), defaultReceiverModel());
  EXPECT_LE(f3d.max_newton_iterations, 4);  // small slack for mesh startup
}

TEST(TlineScenario, NullModelValidation) {
  const auto cfg = testScenario(FarEndLoad::kLinearRc);
  EXPECT_THROW(runSpiceRbfTline(cfg, nullptr, nullptr), std::invalid_argument);
  EXPECT_THROW(runFdtd1dTline(cfg, nullptr, nullptr), std::invalid_argument);
  EXPECT_THROW(runFdtd3dTline(cfg, nullptr, nullptr), std::invalid_argument);
  TlineScenario rc_recv = cfg;
  rc_recv.load = FarEndLoad::kReceiver;
  EXPECT_THROW(runSpiceRbfTline(rc_recv, defaultDriverModel(), nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
