// Tests for the macromodel identification pipeline on synthetic devices
// with known ground truth.
#include "rbf/identification.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.h"
#include "signal/sources.h"

namespace fdtdmm {
namespace {

/// Synthetic nonlinear dynamic device for ground-truth tests:
/// i_m = g(v_m) + c (v_m - v_{m-1}) / Ts with g a tanh-like conductance.
/// (A static nonlinearity plus a capacitive term: the same structure as a
/// fixed-state driver port.)
struct SyntheticDevice {
  double ts = 50e-12;
  double c = 1e-12;
  double g0 = 0.02;

  double staticCurrent(double v) const { return g0 * std::tanh(v - 0.9); }

  std::pair<Waveform, Waveform> respond(const Waveform& v) const {
    Vector i(v.size());
    for (std::size_t m = 0; m < v.size(); ++m) {
      const double v_prev = m > 0 ? v[m - 1] : v[0];
      i[m] = staticCurrent(v[m]) + c * (v[m] - v_prev) / ts;
    }
    return {v, Waveform(v.t0(), v.dt(), std::move(i))};
  }
};

Waveform trainingExcitation(double ts, std::uint64_t seed) {
  MultilevelOptions mo;
  mo.v_min = -0.5;
  mo.v_max = 2.3;
  mo.seed = seed;
  return multilevelRandom(80e-9, ts, mo);
}

TEST(FitGaussianSubmodel, LearnsSyntheticDevice) {
  SyntheticDevice dev;
  const Waveform v_train = trainingExcitation(dev.ts, 21);
  auto [vt, it] = dev.respond(v_train);

  SubmodelFitOptions opt;
  opt.order = 2;
  opt.centers = 40;
  const auto model = fitGaussianSubmodel(vt, it, opt);

  // Validate on a *different* excitation, in parallel (output-error) form.
  const Waveform v_val = trainingExcitation(dev.ts, 77);
  auto [vv, iv] = dev.respond(v_val);
  const Waveform i_model = simulateSubmodel(*model, vv, vv[0]);
  EXPECT_LT(nrmse(i_model.samples(), iv.samples()), 0.08);
}

TEST(FitGaussianSubmodel, MoreCentersFitBetterInSample) {
  SyntheticDevice dev;
  const Waveform v_train = trainingExcitation(dev.ts, 13);
  auto [vt, it] = dev.respond(v_train);

  double prev_err = 1e9;
  for (const std::size_t centers : {6u, 20u, 60u}) {
    SubmodelFitOptions opt;
    opt.centers = centers;
    const auto model = fitGaussianSubmodel(vt, it, opt);
    const Waveform i_model = simulateSubmodel(*model, vt, vt[0]);
    const double err = nrmse(i_model.samples(), it.samples());
    EXPECT_LT(err, prev_err * 1.5) << centers;  // no catastrophic regressions
    prev_err = std::min(prev_err, err);
  }
  EXPECT_LT(prev_err, 0.08);
}

TEST(FitGaussianSubmodel, Validation) {
  Waveform v(0.0, 1e-10, Vector(100, 0.0));
  Waveform i_short(0.0, 1e-10, Vector(99, 0.0));
  EXPECT_THROW(fitGaussianSubmodel(v, i_short), std::invalid_argument);
  SubmodelFitOptions bad;
  bad.order = 0;
  Waveform i(0.0, 1e-10, Vector(100, 0.0));
  EXPECT_THROW(fitGaussianSubmodel(v, i, bad), std::invalid_argument);
  Waveform tiny(0.0, 1e-10, Vector(4, 0.0));
  EXPECT_THROW(fitGaussianSubmodel(tiny, tiny), std::invalid_argument);
}

TEST(SimulateSubmodel, LinearModelMatchesRecursion) {
  LinearArxParams p;
  p.order = 1;
  p.ts = 1e-10;
  p.a = {0.5};
  p.b = {0.1, 0.0};
  LinearArxSubmodel m(p);
  const Waveform v(0.0, 1e-10, {0.0, 1.0, 1.0, 1.0, 1.0});
  const Waveform i = simulateSubmodel(m, v, 0.0);
  // i_m = 0.5 i_{m-1} + 0.1 v_m: 0, .1, .15, .175, .1875
  EXPECT_NEAR(i[0], 0.0, 1e-15);
  EXPECT_NEAR(i[1], 0.1, 1e-15);
  EXPECT_NEAR(i[2], 0.15, 1e-15);
  EXPECT_NEAR(i[4], 0.1875, 1e-15);
}

/// Synthetic switching device with *known* weights: i = w(t) i_hi + (1-w) i_lo,
/// where i_hi/i_lo are static conductances to the rails and w is a known
/// raised-cosine transition.
struct SyntheticSwitcher {
  double ts = 50e-12;
  double bit_time = 2e-9;
  double edge = 0.6e-9;

  double weight(double t) const {
    // '010' pattern: rise at 2 ns, fall at 4 ns.
    auto ramp = [&](double tr) {
      if (tr <= 0.0) return 0.0;
      if (tr >= edge) return 1.0;
      return 0.5 * (1.0 - std::cos(M_PI * tr / edge));
    };
    return ramp(t - bit_time) * (1.0 - ramp(t - 2.0 * bit_time));
  }
  double iHi(double v) const { return 0.03 * (v - 1.8); }
  double iLo(double v) const { return 0.04 * v; }

  std::pair<Waveform, Waveform> respond(double r_load, double v_ref) const {
    // Solve the resistive circuit per sample: i_dev(v) + (v - v_ref)/R = 0.
    const auto n = static_cast<std::size_t>(3.0 * bit_time / ts);
    Vector v(n), i(n);
    for (std::size_t m = 0; m < n; ++m) {
      const double t = ts * static_cast<double>(m);
      const double w = weight(t);
      // i_dev = w iHi + (1-w) iLo is linear in v: solve directly.
      const double g_dev = w * 0.03 + (1.0 - w) * 0.04;
      const double i0 = w * (-0.03 * 1.8);
      // g_dev v + i0 + (v - v_ref)/R = 0.
      v[m] = (v_ref / r_load - i0) / (g_dev + 1.0 / r_load);
      i[m] = g_dev * v[m] + i0;
    }
    return {Waveform(0.0, ts, std::move(v)), Waveform(0.0, ts, std::move(i))};
  }
};

TEST(ExtractSwitchingWeights, RecoversKnownTransition) {
  SyntheticSwitcher dev;
  // Fit the two fixed-state submodels from a dynamic excitation covering
  // the regressor space the switching records will visit.
  MultilevelOptions mo;
  mo.v_min = -0.5;
  mo.v_max = 2.5;
  mo.seed = 404;
  const Waveform v_train = multilevelRandom(60e-9, dev.ts, mo);
  Vector ihi(v_train.size()), ilo(v_train.size());
  for (std::size_t k = 0; k < v_train.size(); ++k) {
    ihi[k] = dev.iHi(v_train[k]);
    ilo[k] = dev.iLo(v_train[k]);
  }
  SubmodelFitOptions fo;
  fo.centers = 30;
  const auto up = fitGaussianSubmodel(v_train, Waveform(0.0, dev.ts, ihi), fo);
  const auto down = fitGaussianSubmodel(v_train, Waveform(0.0, dev.ts, ilo), fo);

  auto [v1, i1] = dev.respond(75.0, 0.0);
  auto [v2, i2] = dev.respond(150.0, 1.8);
  const BitPattern pattern("010", dev.bit_time);
  const SwitchingWeights w = extractSwitchingWeights(*up, *down, v1, i1, v2, i2, pattern);

  ASSERT_FALSE(w.wu_up.empty());
  ASSERT_FALSE(w.wu_down.empty());
  // Compare the extracted up-edge template against the known raised cosine.
  double max_err = 0.0;
  for (std::size_t k = 0; k < w.wu_up.size(); ++k) {
    const double t_rel = w.wu_up.dt() * static_cast<double>(k);
    const double truth = dev.weight(dev.bit_time + t_rel);
    max_err = std::max(max_err, std::abs(w.wu_up[k] - truth));
  }
  EXPECT_LT(max_err, 0.15);
  // Complementarity: wu + wd stays near 1 for this synthetic device.
  for (std::size_t k = 0; k < w.wu_up.size(); ++k) {
    EXPECT_NEAR(w.wu_up[k] + w.wd_up[k], 1.0, 0.2);
  }
  // Steady ends.
  EXPECT_NEAR(w.wu_up.samples().back(), 1.0, 0.05);
  EXPECT_NEAR(w.wd_up.samples().back(), 0.0, 0.05);
}

TEST(ExtractSwitchingWeights, PatternValidation) {
  SubmodelFitOptions fo;
  fo.centers = 4;
  Waveform v(0.0, 50e-12, Vector(200, 1.0));
  for (std::size_t k = 0; k < 200; ++k) v.samples()[k] = std::sin(0.1 * k);
  Waveform i = v;
  const auto m = fitGaussianSubmodel(v, i, fo);
  EXPECT_THROW(extractSwitchingWeights(*m, *m, v, i, v, i, BitPattern("0", 1e-9)),
               std::invalid_argument);
  EXPECT_THROW(extractSwitchingWeights(*m, *m, v, i, v, i, BitPattern("0101", 1e-9)),
               std::invalid_argument);
}

/// Synthetic receiver: linear RC inside the rails plus diode-ish clamps.
struct SyntheticReceiver {
  double ts = 50e-12;
  double c = 1.2e-12;
  double g = 1e-5;
  double vdd = 1.8;

  std::pair<Waveform, Waveform> respond(const Waveform& v) const {
    Vector i(v.size());
    for (std::size_t m = 0; m < v.size(); ++m) {
      const double v_prev = m > 0 ? v[m - 1] : v[0];
      double cur = g * v[m] + c * (v[m] - v_prev) / ts;
      if (v[m] > vdd) cur += 0.05 * (v[m] - vdd);   // up clamp
      if (v[m] < 0.0) cur += 0.05 * v[m];            // down clamp
      i[m] = cur;
    }
    return {v, Waveform(v.t0(), v.dt(), std::move(i))};
  }
};

TEST(FitReceiverModel, LearnsSyntheticReceiver) {
  SyntheticReceiver dev;
  MultilevelOptions lin;
  lin.v_min = 0.1;
  lin.v_max = 1.7;
  lin.seed = 31;
  const Waveform v_lin = multilevelRandom(60e-9, dev.ts, lin);
  MultilevelOptions full;
  full.v_min = -1.0;
  full.v_max = 2.8;
  full.seed = 32;
  const Waveform v_full = multilevelRandom(60e-9, dev.ts, full);

  auto [vl, il] = dev.respond(v_lin);
  auto [vf, i_f] = dev.respond(v_full);
  const RbfReceiverModel model = fitReceiverModel(vl, il, vf, i_f, dev.vdd);

  ASSERT_TRUE(model.lin && model.up && model.down);
  EXPECT_LT(model.lin->poleRadius(), 1.0);

  // Validation on a fresh full-range excitation.
  MultilevelOptions val;
  val.v_min = -1.0;
  val.v_max = 2.8;
  val.seed = 99;
  const Waveform v_val = multilevelRandom(40e-9, dev.ts, val);
  auto [vv, iv] = dev.respond(v_val);

  // Simulate the full receiver model (three parallel submodels).
  ResampledSubmodelState s_lin(model.lin.get(), dev.ts);
  ResampledSubmodelState s_up(model.up.get(), dev.ts);
  ResampledSubmodelState s_down(model.down.get(), dev.ts);
  s_lin.reset(vv[0]);
  s_up.reset(vv[0]);
  s_down.reset(vv[0]);
  Vector i_model(vv.size());
  for (std::size_t m = 0; m < vv.size(); ++m) {
    double d = 0.0;
    i_model[m] = s_lin.eval(vv[m], d) + s_up.eval(vv[m], d) + s_down.eval(vv[m], d);
    s_lin.commit(vv[m]);
    s_up.commit(vv[m]);
    s_down.commit(vv[m]);
  }
  EXPECT_LT(nrmse(i_model, iv.samples()), 0.12);
}

}  // namespace
}  // namespace fdtdmm
