// Tests for the segmented RLGC lossy line against transmission-line theory
// and against the Branin ideal line in the lossless limit.
#include "circuit/rlgc_line.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transient.h"

namespace fdtdmm {
namespace {

TEST(RlgcLine, DerivedQuantities) {
  RlgcParams p;
  p.l = 2.5e-7;
  p.c = 1e-10;
  p.length = 0.12;
  EXPECT_NEAR(rlgcCharacteristicImpedance(p), 50.0, 1e-9);
  EXPECT_NEAR(rlgcDelay(p), 0.12 * std::sqrt(2.5e-17), 1e-20);
}

TEST(RlgcLine, LosslessConvergesToIdealLine) {
  // Same Zc/Td, matched source and load: compare the RLGC ladder with the
  // Branin line on a step response.
  RlgcParams p;
  p.l = 2.5e-7;
  p.c = 1e-10;
  p.length = 0.2;  // Td = 1 ns
  p.segments = 64;
  const double zc = rlgcCharacteristicImpedance(p);
  const double td = rlgcDelay(p);

  auto run = [&](bool ladder) {
    Circuit c;
    const int src = c.addNode();
    const int near = c.addNode();
    const int far = c.addNode();
    c.addVoltageSource(src, Circuit::kGround,
                       [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
    c.addResistor(src, near, zc);
    if (ladder) {
      buildRlgcLine(c, near, Circuit::kGround, far, Circuit::kGround, p);
    } else {
      c.addIdealLine(near, Circuit::kGround, far, Circuit::kGround, zc, td);
    }
    c.addResistor(far, Circuit::kGround, zc);
    TransientOptions opt;
    opt.dt = 4e-12;
    opt.t_stop = 4e-9;
    return runTransient(c, opt, {{"far", far, 0}}).at("far");
  };

  const Waveform ideal = run(false);
  const Waveform rlgc = run(true);
  // Compare away from the edge (the ladder disperses the step slightly).
  EXPECT_NEAR(rlgc.value(0.5e-9), ideal.value(0.5e-9), 0.03);  // pre-arrival
  EXPECT_NEAR(rlgc.value(2.5e-9), ideal.value(2.5e-9), 0.04);  // settled 0.5
  EXPECT_NEAR(rlgc.value(3.8e-9), 0.5, 0.03);
}

TEST(RlgcLine, SeriesLossAttenuatesDc) {
  // At DC the line is just the series resistance: v_far = RL/(RL + Rs +
  // R'len).
  RlgcParams p;
  p.l = 2.5e-7;
  p.c = 1e-10;
  p.length = 0.2;
  p.r = 250.0;  // 50 ohm total series resistance
  p.segments = 32;
  Circuit c;
  const int src = c.addNode();
  const int near = c.addNode();
  const int far = c.addNode();
  c.addVoltageSource(src, Circuit::kGround, [](double) { return 1.0; });
  c.addResistor(src, near, 50.0);
  buildRlgcLine(c, near, Circuit::kGround, far, Circuit::kGround, p);
  c.addResistor(far, Circuit::kGround, 50.0);
  TransientOptions opt;
  opt.dt = 5e-12;
  opt.t_stop = 20e-9;
  const auto res = runTransient(c, opt, {{"far", far, 0}});
  EXPECT_NEAR(res.at("far").samples().back(), 50.0 / (50.0 + 50.0 + 50.0), 5e-3);
}

TEST(RlgcLine, ShuntLossLoadsDc) {
  // G' len = 0.02 S distributed: DC transfer drops accordingly (two-port
  // ladder; verify against a plain resistive reference computed from the
  // same circuit with L/C removed... here just check it is below lossless).
  RlgcParams lossless;
  lossless.length = 0.2;
  RlgcParams lossy = lossless;
  lossy.g = 0.1;  // 0.02 S total
  auto dc = [](const RlgcParams& p) {
    Circuit c;
    const int src = c.addNode();
    const int near = c.addNode();
    const int far = c.addNode();
    c.addVoltageSource(src, Circuit::kGround, [](double) { return 1.0; });
    c.addResistor(src, near, 50.0);
    buildRlgcLine(c, near, Circuit::kGround, far, Circuit::kGround, p);
    c.addResistor(far, Circuit::kGround, 50.0);
    TransientOptions opt;
    opt.dt = 5e-12;
    opt.t_stop = 20e-9;
    return runTransient(c, opt, {{"far", far, 0}}).at("far").samples().back();
  };
  const double v_lossless = dc(lossless);
  const double v_lossy = dc(lossy);
  EXPECT_NEAR(v_lossless, 0.5, 0.01);
  EXPECT_LT(v_lossy, v_lossless - 0.05);
}

TEST(RlgcLine, Validation) {
  Circuit c;
  const int a = c.addNode();
  const int b = c.addNode();
  RlgcParams bad;
  bad.l = 0.0;
  EXPECT_THROW(buildRlgcLine(c, a, 0, b, 0, bad), std::invalid_argument);
  RlgcParams bad2;
  bad2.segments = 0;
  EXPECT_THROW(buildRlgcLine(c, a, 0, b, 0, bad2), std::invalid_argument);
  RlgcParams bad3;
  bad3.r = -1.0;
  EXPECT_THROW(buildRlgcLine(c, a, 0, b, 0, bad3), std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
