// Tests for the segmented RLGC lossy line against transmission-line theory
// and against the Branin ideal line in the lossless limit.
#include "circuit/rlgc_line.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "circuit/transient.h"

namespace fdtdmm {
namespace {

TEST(RlgcLine, DerivedQuantities) {
  RlgcParams p;
  p.l = 2.5e-7;
  p.c = 1e-10;
  p.length = 0.12;
  EXPECT_NEAR(rlgcCharacteristicImpedance(p), 50.0, 1e-9);
  EXPECT_NEAR(rlgcDelay(p), 0.12 * std::sqrt(2.5e-17), 1e-20);
}

TEST(RlgcLine, LosslessConvergesToIdealLine) {
  // Same Zc/Td, matched source and load: compare the RLGC ladder with the
  // Branin line on a step response.
  RlgcParams p;
  p.l = 2.5e-7;
  p.c = 1e-10;
  p.length = 0.2;  // Td = 1 ns
  p.segments = 64;
  const double zc = rlgcCharacteristicImpedance(p);
  const double td = rlgcDelay(p);

  auto run = [&](bool ladder) {
    Circuit c;
    const int src = c.addNode();
    const int near = c.addNode();
    const int far = c.addNode();
    c.addVoltageSource(src, Circuit::kGround,
                       [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
    c.addResistor(src, near, zc);
    if (ladder) {
      buildRlgcLine(c, near, Circuit::kGround, far, Circuit::kGround, p);
    } else {
      c.addIdealLine(near, Circuit::kGround, far, Circuit::kGround, zc, td);
    }
    c.addResistor(far, Circuit::kGround, zc);
    TransientOptions opt;
    opt.dt = 4e-12;
    opt.t_stop = 4e-9;
    return runTransient(c, opt, {{"far", far, 0}}).at("far");
  };

  const Waveform ideal = run(false);
  const Waveform rlgc = run(true);
  // Compare away from the edge (the ladder disperses the step slightly).
  EXPECT_NEAR(rlgc.value(0.5e-9), ideal.value(0.5e-9), 0.03);  // pre-arrival
  EXPECT_NEAR(rlgc.value(2.5e-9), ideal.value(2.5e-9), 0.04);  // settled 0.5
  EXPECT_NEAR(rlgc.value(3.8e-9), 0.5, 0.03);
}

TEST(RlgcLine, SeriesLossAttenuatesDc) {
  // At DC the line is just the series resistance: v_far = RL/(RL + Rs +
  // R'len).
  RlgcParams p;
  p.l = 2.5e-7;
  p.c = 1e-10;
  p.length = 0.2;
  p.r = 250.0;  // 50 ohm total series resistance
  p.segments = 32;
  Circuit c;
  const int src = c.addNode();
  const int near = c.addNode();
  const int far = c.addNode();
  c.addVoltageSource(src, Circuit::kGround, [](double) { return 1.0; });
  c.addResistor(src, near, 50.0);
  buildRlgcLine(c, near, Circuit::kGround, far, Circuit::kGround, p);
  c.addResistor(far, Circuit::kGround, 50.0);
  TransientOptions opt;
  opt.dt = 5e-12;
  opt.t_stop = 20e-9;
  const auto res = runTransient(c, opt, {{"far", far, 0}});
  EXPECT_NEAR(res.at("far").samples().back(), 50.0 / (50.0 + 50.0 + 50.0), 5e-3);
}

TEST(RlgcLine, ShuntLossLoadsDc) {
  // G' len = 0.02 S distributed: DC transfer drops accordingly (two-port
  // ladder; verify against a plain resistive reference computed from the
  // same circuit with L/C removed... here just check it is below lossless).
  RlgcParams lossless;
  lossless.length = 0.2;
  RlgcParams lossy = lossless;
  lossy.g = 0.1;  // 0.02 S total
  auto dc = [](const RlgcParams& p) {
    Circuit c;
    const int src = c.addNode();
    const int near = c.addNode();
    const int far = c.addNode();
    c.addVoltageSource(src, Circuit::kGround, [](double) { return 1.0; });
    c.addResistor(src, near, 50.0);
    buildRlgcLine(c, near, Circuit::kGround, far, Circuit::kGround, p);
    c.addResistor(far, Circuit::kGround, 50.0);
    TransientOptions opt;
    opt.dt = 5e-12;
    opt.t_stop = 20e-9;
    return runTransient(c, opt, {{"far", far, 0}}).at("far").samples().back();
  };
  const double v_lossless = dc(lossless);
  const double v_lossy = dc(lossy);
  EXPECT_NEAR(v_lossless, 0.5, 0.01);
  EXPECT_LT(v_lossy, v_lossless - 0.05);
}

TEST(RlgcLine, SegmentsVariantExposesLadderNodes) {
  Circuit c;
  const int a = c.addNode();
  const int b = c.addNode();
  RlgcParams p;
  p.segments = 8;
  const auto nodes = buildRlgcLineSegments(c, a, 0, b, 0, p);
  ASSERT_EQ(nodes.size(), 8u);
  EXPECT_EQ(nodes.back(), b);  // last segment output is the far port
  for (int n : nodes) {
    EXPECT_GE(n, 1);
    EXPECT_LE(n, c.nodeCount());
  }
}

TEST(RlgcLine, CoupledPairUncoupledBehavesLikeTwoLines) {
  // cm = 0: the victim of the coupled builder must match an isolated line
  // bit for bit (same element order, same stamps), and a driven victim
  // port sees nothing from the aggressor.
  RlgcParams p;
  p.length = 0.1;
  p.segments = 16;
  const double zc = rlgcCharacteristicImpedance(p);

  auto drive = [&](bool coupled, double cm) {
    Circuit c;
    const int src = c.addNode();
    const int a1 = c.addNode();
    const int a2 = c.addNode();
    c.addVoltageSource(src, 0, [](double t) { return t >= 0.0 ? 1.0 : 0.0; });
    c.addResistor(src, a1, zc);
    if (coupled) {
      const int v1 = c.addNode();
      const int v2 = c.addNode();
      CoupledRlgcParams cp;
      cp.line = p;
      cp.cm = cm;
      buildCoupledRlgcLines(c, a1, a2, v1, v2, cp);
      c.addResistor(v1, 0, zc);
      c.addResistor(v2, 0, zc);
    } else {
      buildRlgcLine(c, a1, 0, a2, 0, p);
    }
    c.addResistor(a2, 0, zc);
    TransientOptions opt;
    opt.dt = 5e-12;
    opt.t_stop = 2e-9;
    return runTransient(c, opt, {{"far", a2, 0}}).at("far");
  };

  const Waveform lone = drive(false, 0.0);
  const Waveform uncoupled = drive(true, 0.0);
  ASSERT_EQ(lone.size(), uncoupled.size());
  for (std::size_t k = 0; k < lone.size(); ++k)
    EXPECT_NEAR(lone[k], uncoupled[k], 1e-12);

  // With cm > 0 the aggressor far end changes (energy leaks to the victim).
  const Waveform coupled = drive(true, 0.3 * p.c);
  double max_delta = 0.0;
  for (std::size_t k = 0; k < lone.size(); ++k)
    max_delta = std::max(max_delta, std::abs(coupled[k] - lone[k]));
  EXPECT_GT(max_delta, 1e-3);
}

TEST(RlgcLine, CoupledPairValidation) {
  Circuit c;
  const int a = c.addNode(), b = c.addNode(), v1 = c.addNode(), v2 = c.addNode();
  CoupledRlgcParams bad;
  bad.cm = -1e-12;
  EXPECT_THROW(buildCoupledRlgcLines(c, a, b, v1, v2, bad), std::invalid_argument);
  CoupledRlgcParams bad_line;
  bad_line.line.segments = 0;
  EXPECT_THROW(buildCoupledRlgcLines(c, a, b, v1, v2, bad_line),
               std::invalid_argument);
  CoupledRlgcParams bad_lm;
  bad_lm.lm = -1e-9;
  EXPECT_THROW(buildCoupledRlgcLines(c, a, b, v1, v2, bad_lm),
               std::invalid_argument);
  bad_lm.lm = bad_lm.line.l;  // M = L is a degenerate (k = 1) pair
  EXPECT_THROW(buildCoupledRlgcLines(c, a, b, v1, v2, bad_lm),
               std::invalid_argument);
}

// Inductive (K-element) coupling: the victim responds, and the far-end
// crosstalk polarity is opposite to the capacitive case — the classic
// far-end cancellation physics (FEXT ~ Cm/C - Lm/L) the Lm/L sweep axis
// exists to explore.
TEST(RlgcLine, InductiveCouplingPolarityOpposesCapacitive) {
  RlgcParams p;
  p.length = 0.1;
  p.segments = 24;
  const double zc = rlgcCharacteristicImpedance(p);
  const double td = rlgcDelay(p);

  auto victimFarEnd = [&](double cm, double lm) {
    Circuit c;
    const int src = c.addNode();
    const int a1 = c.addNode();
    const int a2 = c.addNode();
    const int v1 = c.addNode();
    const int v2 = c.addNode();
    // Smooth rising edge on the aggressor.
    c.addVoltageSource(src, 0, [](double t) {
      const double tr = 0.2e-9;
      return t <= 0.0 ? 0.0 : (t >= tr ? 1.0 : t / tr);
    });
    c.addResistor(src, a1, zc);
    CoupledRlgcParams cp;
    cp.line = p;
    cp.cm = cm;
    cp.lm = lm;
    buildCoupledRlgcLines(c, a1, a2, v1, v2, cp);
    for (int n : {a2, v1, v2}) c.addResistor(n, 0, zc);
    TransientOptions opt;
    opt.dt = 5e-12;
    opt.t_stop = 2e-9;
    return runTransient(c, opt, {{"vfar", v2, 0}}).at("vfar");
  };

  const Waveform cap_only = victimFarEnd(0.2 * p.c, 0.0);
  const Waveform ind_only = victimFarEnd(0.0, 0.2 * p.l);
  // Sample the forward-crosstalk pulse as the aggressor edge arrives.
  const double t_probe = td + 0.1e-9;
  EXPECT_GT(cap_only.value(t_probe), 1e-3);   // capacitive FEXT is positive
  EXPECT_LT(ind_only.value(t_probe), -1e-3);  // inductive FEXT is negative

  // Matched fractions cancel to first order: the far-end peak collapses
  // well below either single-mechanism peak.
  const Waveform both = victimFarEnd(0.2 * p.c, 0.2 * p.l);
  double peak_cap = 0.0, peak_both = 0.0;
  for (std::size_t k = 0; k < cap_only.size(); ++k) {
    peak_cap = std::max(peak_cap, std::abs(cap_only[k]));
    peak_both = std::max(peak_both, std::abs(both[k]));
  }
  EXPECT_LT(peak_both, 0.35 * peak_cap);
}

TEST(RlgcLine, Validation) {
  Circuit c;
  const int a = c.addNode();
  const int b = c.addNode();
  RlgcParams bad;
  bad.l = 0.0;
  EXPECT_THROW(buildRlgcLine(c, a, 0, b, 0, bad), std::invalid_argument);
  RlgcParams bad2;
  bad2.segments = 0;
  EXPECT_THROW(buildRlgcLine(c, a, 0, b, 0, bad2), std::invalid_argument);
  RlgcParams bad3;
  bad3.r = -1.0;
  EXPECT_THROW(buildRlgcLine(c, a, 0, b, 0, bad3), std::invalid_argument);
}

}  // namespace
}  // namespace fdtdmm
