// Tests for the log-bucketed mergeable histograms (obs/histogram.h):
// percentile accuracy against the sorted-sample type-7 reference across
// bucket boundaries, exactness at the extremes, under/overflow clamping,
// layout-checked merging, and the concurrent record-then-merge determinism
// of HistogramRegistry. Determinism is pinned on counts, min, max, and
// percentiles — NOT on mean(): the running sum merges in floating point,
// so the header explicitly leaves it merge-order-dependent in the last
// ulps.
#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "math/stats.h"

namespace fdtdmm {
namespace obs {
namespace {

// One interior bucket spans a factor of 10^(1/buckets_per_decade); the
// percentile contract is "within one bucket's width of the sorted-sample
// reference", so that width (evaluated at the reference value) is the
// tolerance scale of every accuracy check here.
double bucketRatio(const HistogramSpec& spec) {
  return std::pow(10.0, 1.0 / spec.buckets_per_decade);
}

void expectWithinOneBucket(double estimate, double reference,
                           const HistogramSpec& spec, const char* what) {
  const double width = reference * (bucketRatio(spec) - 1.0);
  EXPECT_NEAR(estimate, reference, width + 1e-300) << what;
}

const double kQuantiles[] = {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99};

TEST(Histogram, EmptyReturnsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, InvalidSpecThrows) {
  HistogramSpec bad;
  bad.min_value = 0.0;  // log buckets need a positive floor
  EXPECT_THROW(Histogram{bad}, std::invalid_argument);
  bad = HistogramSpec{};
  bad.max_value = bad.min_value;  // empty range
  EXPECT_THROW(Histogram{bad}, std::invalid_argument);
  bad = HistogramSpec{};
  bad.buckets_per_decade = 0;
  EXPECT_THROW(Histogram{bad}, std::invalid_argument);
}

TEST(Histogram, SingleSampleIsEveryQuantile) {
  Histogram h;
  h.record(3.7e-3);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3.7e-3);
  EXPECT_DOUBLE_EQ(h.max(), 3.7e-3);
  EXPECT_DOUBLE_EQ(h.mean(), 3.7e-3);
  for (double q : kQuantiles) EXPECT_DOUBLE_EQ(h.percentile(q), 3.7e-3);
}

TEST(Histogram, ExtremesAreExact) {
  Histogram h;
  Vector v;
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(-6.0, 0.0);
  for (int i = 0; i < 200; ++i) {
    const double x = std::pow(10.0, u(rng));
    h.record(x);
    v.push_back(x);
  }
  // q touching the first/last order statistic returns the exact recorded
  // extremum, not a bucket edge.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(1.0), h.max());
  EXPECT_DOUBLE_EQ(h.min(), quantile(v, 0.0));
  EXPECT_DOUBLE_EQ(h.max(), quantile(v, 1.0));
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.percentile(-0.5), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(1.5), h.max());
}

// The headline accuracy contract: on a sample spanning many decades (so
// every percentile lands in a different bucket), the histogram percentile
// tracks the type-7 quantile of the raw sorted samples to one bucket.
TEST(Histogram, PercentileMatchesSortedReference) {
  const HistogramSpec spec;  // defaults: 1e-9..1e9, 20 buckets/decade
  Histogram h(spec);
  Vector v;
  std::mt19937 rng(2026);
  std::uniform_real_distribution<double> u(-8.0, 2.0);  // log-uniform decade
  for (int i = 0; i < 4000; ++i) {
    const double x = std::pow(10.0, u(rng));
    h.record(x);
    v.push_back(x);
  }
  for (double q : kQuantiles) {
    expectWithinOneBucket(h.percentile(q), quantile(v, q), spec, "log-uniform");
  }
}

// Samples sitting exactly ON bucket boundaries are the rounding-sensitive
// case (log() of an exact power of the ratio can land a hair either side
// of the edge); the one-bucket contract must hold there too.
TEST(Histogram, PercentileAcrossBucketBoundaries) {
  const HistogramSpec spec;
  Histogram h(spec);
  Vector v;
  const double ratio = bucketRatio(spec);
  for (int k = 0; k < 120; ++k) {  // 6 decades of exact bucket edges
    const double x = spec.min_value * std::pow(ratio, k);
    for (int rep = 0; rep < 3; ++rep) {
      h.record(x);
      v.push_back(x);
    }
  }
  for (double q : kQuantiles) {
    expectWithinOneBucket(h.percentile(q), quantile(v, q), spec, "edges");
  }
}

// A narrow distribution (all mass in one or two buckets) must not smear
// beyond the recorded data: estimates are clamped to [min, max].
TEST(Histogram, PercentileNeverLeavesTheDataRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1.0e-3 * (1.0 + 1e-4 * i));
  for (double q : kQuantiles) {
    EXPECT_GE(h.percentile(q), h.min());
    EXPECT_LE(h.percentile(q), h.max());
  }
}

TEST(Histogram, NegativeAndNanClampIntoUnderflow) {
  Histogram h;
  h.record(-3.0);
  h.record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 2u);  // record() is total: nothing is dropped
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, UnderAndOverflowKeepExactExtrema) {
  const HistogramSpec spec;
  Histogram h(spec);
  h.record(1e-12);  // below min_value: underflow bucket
  h.record(1e12);   // above max_value: overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-12);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1e-12);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1e12);
}

TEST(Histogram, MergeAddsContents) {
  Histogram a, b, all;
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> u(-6.0, 0.0);
  for (int i = 0; i < 300; ++i) {
    const double x = std::pow(10.0, u(rng));
    (i % 2 == 0 ? a : b).record(x);
    all.record(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  // Bucket counts add exactly, so percentiles of the merged histogram are
  // bit-identical to recording everything into one histogram.
  for (double q : kQuantiles) {
    EXPECT_DOUBLE_EQ(a.percentile(q), all.percentile(q));
  }
}

TEST(Histogram, MergeEmptyIsANoOp) {
  Histogram a, empty;
  a.record(0.5);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  empty.merge(a);  // merging INTO an empty one adopts the contents
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.max(), 0.5);
}

TEST(Histogram, MergeRejectsMismatchedLayouts) {
  Histogram a;
  HistogramSpec other;
  other.buckets_per_decade = 10;
  Histogram b(other);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  HistogramSpec narrower;
  narrower.min_value = 1e-6;
  narrower.max_value = 1e6;
  Histogram c(narrower);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

// Merging the same shards in any order yields identical counts/extrema/
// percentiles — the property that makes per-thread sharding deterministic.
TEST(Histogram, MergeOrderDoesNotChangePercentiles) {
  std::vector<Histogram> shards(3);
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> u(-9.0, 1.0);
  for (int i = 0; i < 900; ++i)
    shards[static_cast<std::size_t>(i % 3)].record(std::pow(10.0, u(rng)));

  Histogram fwd, rev;
  for (int i = 0; i < 3; ++i) fwd.merge(shards[static_cast<std::size_t>(i)]);
  for (int i = 2; i >= 0; --i) rev.merge(shards[static_cast<std::size_t>(i)]);
  EXPECT_EQ(fwd.count(), rev.count());
  EXPECT_DOUBLE_EQ(fwd.min(), rev.min());
  EXPECT_DOUBLE_EQ(fwd.max(), rev.max());
  for (double q : kQuantiles) {
    EXPECT_DOUBLE_EQ(fwd.percentile(q), rev.percentile(q));
  }
}

// The registry's concurrency contract: N threads hammering their own
// shards, then one snapshot() merge, must reproduce EXACTLY the counts,
// extrema, and percentiles of recording the same samples serially —
// regardless of thread scheduling.
TEST(HistogramRegistry, ConcurrentRecordThenMergeIsDeterministic) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  // Deterministic per-(thread, i) sample so the serial reference sees the
  // identical multiset no matter how the threads interleave.
  auto sample = [](int t, int i) {
    std::mt19937 rng(static_cast<std::mt19937::result_type>(1000 * t + i));
    std::uniform_real_distribution<double> u(-7.0, 1.0);
    return std::pow(10.0, u(rng));
  };

  HistogramRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &reg, &sample] {
      for (int i = 0; i < kPerThread; ++i) {
        const double x = sample(t, i);
        reg.record("wall", x);
        if (i % 4 == 0) reg.record("iters", static_cast<double>(i % 13));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  Histogram ref_wall, ref_iters;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      ref_wall.record(sample(t, i));
      if (i % 4 == 0) ref_iters.record(static_cast<double>(i % 13));
    }
  }

  const std::map<std::string, Histogram> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  const Histogram& wall = snap.at("wall");
  const Histogram& iters = snap.at("iters");
  EXPECT_EQ(wall.count(), ref_wall.count());
  EXPECT_DOUBLE_EQ(wall.min(), ref_wall.min());
  EXPECT_DOUBLE_EQ(wall.max(), ref_wall.max());
  EXPECT_EQ(iters.count(), ref_iters.count());
  EXPECT_DOUBLE_EQ(iters.min(), ref_iters.min());
  EXPECT_DOUBLE_EQ(iters.max(), ref_iters.max());
  for (double q : kQuantiles) {
    EXPECT_DOUBLE_EQ(wall.percentile(q), ref_wall.percentile(q)) << "q=" << q;
    EXPECT_DOUBLE_EQ(iters.percentile(q), ref_iters.percentile(q)) << "q=" << q;
  }
  // mean() deliberately unpinned (floating-point merge order); it must
  // still agree to normal roundoff.
  EXPECT_NEAR(wall.mean(), ref_wall.mean(), 1e-9 * ref_wall.mean());
}

TEST(HistogramRegistry, FirstUseSpecSticks) {
  HistogramRegistry reg;
  HistogramSpec coarse;
  coarse.min_value = 1e-3;
  coarse.max_value = 1e3;
  coarse.buckets_per_decade = 4;
  reg.record("coarse", 2.5, coarse);
  reg.record("coarse", 7.0, coarse);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("coarse").spec().buckets_per_decade, 4);
  EXPECT_EQ(snap.at("coarse").count(), 2u);
}

TEST(HistogramRegistry, SnapshotOfEmptyRegistryIsEmpty) {
  HistogramRegistry reg;
  EXPECT_TRUE(reg.snapshot().empty());
}

}  // namespace
}  // namespace obs
}  // namespace fdtdmm
