// Integration tests of the frequency-domain engine (freq/ac_engine.h,
// freq/ac_family.h) against closed-form circuit theory, the transient
// engine (DFT cross-validation), and the sweep engine's symbolic-sharing
// invariant.
#include "freq/ac_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/transient.h"
#include "engine/sweep_runner.h"
#include "freq/ac_family.h"

namespace fdtdmm {
namespace {

constexpr double kPi = 3.14159265358979323846;

TimeFn dark() {
  return [](double) { return 0.0; };
}

// Single-pole RC low-pass driven by an ideal 1 V source: H = 1/(1 + jwRC),
// exact for the lumped circuit — the AC engine must hit it to roundoff.
TEST(AcEngine, RcLowPassMatchesClosedForm) {
  const double r = 1e3, c = 1e-12, f = 2e8;
  for (AcOptions::Solver solver :
       {AcOptions::Solver::kSparse, AcOptions::Solver::kDense}) {
    Circuit circuit;
    const int s = circuit.addNode();
    const int out = circuit.addNode();
    VoltageSource* src = circuit.addVoltageSource(s, Circuit::kGround, dark());
    src->setAcValue(Complex(1.0, 0.0));
    circuit.addResistor(s, out, r);
    circuit.addCapacitor(out, Circuit::kGround, c);

    AcOptions opt;
    opt.solver = solver;
    AcSession session(circuit, opt);
    const Complex h = acNodeV(session.solveAt(f), out);
    const Complex h_ref = 1.0 / Complex(1.0, 2.0 * kPi * f * r * c);
    EXPECT_LT(std::abs(h - h_ref), 1e-12);
  }
}

// H and the S-parameters of one frequency point via the "ac" family.
struct AcPoint {
  Complex h, s11, s21, s12, s22;
};

AcPoint acPoint(const AcScenario& cfg) {
  const TaskWaveforms w = runAcScenario(cfg);
  auto v = [&](std::size_t k) { return w.victims[k].samples()[0]; };
  AcPoint p;
  p.h = Complex(v(0), v(1));
  p.s11 = Complex(v(2), v(3));
  p.s21 = Complex(v(4), v(5));
  p.s12 = Complex(v(6), v(7));
  p.s22 = Complex(v(8), v(9));
  return p;
}

// The acceptance fixture: matched lossless ladder vs the exact line,
// H = 0.5 e^{-j w Td}. Magnitude within 2%, phase within 3 degrees across
// the band (well inside the 32-segment ladder's validity bandwidth).
TEST(AcEngine, MatchedLosslessLadderMatchesClosedForm) {
  AcScenario cfg;  // 50-ohm 10 cm lossless line, 32 segments
  const double td =
      cfg.line.length * std::sqrt(cfg.line.l * cfg.line.c);  // 0.5 ns
  for (double f : {1e6, 1e7, 1e8, 3e8, 1e9}) {
    cfg.frequency = f;
    const AcPoint p = acPoint(cfg);
    EXPECT_NEAR(std::abs(p.h), 0.5, 0.02 * 0.5) << "f=" << f;
    // Phase against -w Td, wrap-safe: rotate the expected phase away and
    // measure the residual angle.
    const double w = 2.0 * kPi * f;
    const double phase_err =
        std::abs(std::arg(p.h * std::exp(Complex(0.0, w * td))));
    EXPECT_LT(phase_err, 3.0 * kPi / 180.0) << "f=" << f;
  }
}

TEST(AcEngine, MatchedLineSParameters) {
  AcScenario cfg;
  cfg.frequency = 2.5e8;
  const AcPoint p = acPoint(cfg);
  // Matched and lossless: no reflection, |S21| = 1, reciprocal.
  EXPECT_LT(std::abs(p.s11), 0.02);
  EXPECT_LT(std::abs(p.s22), 0.02);
  EXPECT_NEAR(std::abs(p.s21), 1.0, 0.02);
  EXPECT_LT(std::abs(p.s21 - p.s12), 1e-9);
  // S21 = 2 H for the 1 V matched-source fixture.
  EXPECT_LT(std::abs(p.s21 - 2.0 * p.h), 1e-12);
}

TEST(AcEngine, DenseAndSparseSolversAgree) {
  AcScenario cfg;
  cfg.frequency = 3.16e8;
  cfg.solver = "sparse";
  const AcPoint sp = acPoint(cfg);
  cfg.solver = "dense";
  const AcPoint de = acPoint(cfg);
  EXPECT_LT(std::abs(sp.h - de.h), 1e-10);
  EXPECT_LT(std::abs(sp.s11 - de.s11), 1e-10);
  EXPECT_LT(std::abs(sp.s21 - de.s21), 1e-10);
}

// Satellite check: the DFT of a sinusoidal steady-state transient must
// reproduce |H(jf)| — the time- and frequency-domain engines describe the
// same circuit.
TEST(AcEngine, TransientDftMatchesAcTransferOnRcFixture) {
  const double r = 1e3, c = 1e-12, f = 1e8;  // tau = 1 ns, T = 10 ns

  Circuit circuit;
  const int s = circuit.addNode();
  const int out = circuit.addNode();
  VoltageSource* src = circuit.addVoltageSource(
      s, Circuit::kGround, [f](double t) { return std::sin(2.0 * kPi * f * t); });
  src->setAcValue(Complex(1.0, 0.0));
  circuit.addResistor(s, out, r);
  circuit.addCapacitor(out, Circuit::kGround, c);

  double h_ac;
  {
    AcSession session(circuit, AcOptions{});
    h_ac = std::abs(acNodeV(session.solveAt(f), out));
  }

  TransientOptions opt;
  opt.dt = 1e-11;  // 1000 samples per period
  opt.t_stop = 45e-9;  // 15 tau settling + 3 full periods
  const auto res = runTransient(circuit, opt, {{"v", out, 0}});
  ASSERT_TRUE(res.converged);
  const Waveform& v = res.at("v");

  // Single-bin DFT over an integer number of periods of the settled tail.
  const double t_start = 15e-9, window = 30e-9;
  const std::size_t m = 3000;
  Complex acc(0.0, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    const double t = t_start + window * static_cast<double>(k) / m;
    acc += v.value(t) * std::exp(Complex(0.0, -2.0 * kPi * f * t));
  }
  const double h_dft = 2.0 * std::abs(acc) / static_cast<double>(m);

  EXPECT_NEAR(h_dft, h_ac, 0.01 * h_ac);
}

// The tentpole invariant: a linear AC frequency sweep through the sweep
// engine performs exactly ONE complex symbolic analysis per structure
// class — frequency only changes matrix values, never the pattern.
TEST(AcEngine, FrequencySweepSharesOneSymbolicAnalysis) {
  SweepSpec spec;
  spec.scenario = "ac";
  spec.axis("frequency", {1e6, 1e7, 5e7, 1e8, 5e8, 1e9});

  SweepRunnerOptions opt;
  opt.workers = 2;
  SweepRunner runner(opt);
  const SweepResult result = runner.run(spec);

  EXPECT_EQ(result.okCount(), result.runs.size());
  EXPECT_EQ(result.solver_cache.symbolic_misses, 1);
  EXPECT_EQ(result.solver_cache.symbolic_hits, 5);
}

TEST(AcEngine, DcOperatingPointLinearFixtures) {
  // Divider: capacitors DC-open, inductors DC-short.
  Circuit circuit;
  const int s = circuit.addNode();
  const int mid = circuit.addNode();
  const int tail = circuit.addNode();
  circuit.addVoltageSource(s, Circuit::kGround, [](double) { return 10.0; });
  circuit.addResistor(s, mid, 1e3);
  circuit.addResistor(mid, Circuit::kGround, 1e3);
  circuit.addCapacitor(mid, Circuit::kGround, 1e-12);  // open: no DC load
  circuit.addResistor(mid, tail, 1e3);
  circuit.addInductor(tail, Circuit::kGround, 1e-9);  // short: pulls tail to 0

  const Vector x = dcOperatingPoint(circuit);
  // With the inductor shorting `tail`, mid sees 1k || 1k to ground: 10 V
  // across (1k + 500) -> v_mid = 10/3.
  EXPECT_NEAR(x[static_cast<std::size_t>(mid - 1)], 10.0 / 3.0, 1e-6);
  EXPECT_NEAR(x[static_cast<std::size_t>(tail - 1)], 0.0, 1e-6);
}

TEST(AcEngine, NonlinearSmallSignalRunsAboutDcPoint) {
  // Diode biased through a resistor: the AC solve linearizes about the DC
  // point (finite conductance), so the small-signal response is finite and
  // smaller than the excitation.
  Circuit circuit;
  const int s = circuit.addNode();
  const int out = circuit.addNode();
  VoltageSource* src = circuit.addVoltageSource(s, Circuit::kGround,
                                                [](double) { return 1.0; });
  src->setAcValue(Complex(1.0, 0.0));
  circuit.addResistor(s, out, 100.0);
  circuit.addDiode(out, Circuit::kGround);

  AcOptions opt;
  opt.x_dc = dcOperatingPoint(circuit);
  AcSession session(circuit, opt);
  const Complex v = acNodeV(session.solveAt(1e6), out);
  EXPECT_TRUE(std::isfinite(std::abs(v)));
  EXPECT_GT(std::abs(v), 0.0);
  EXPECT_LT(std::abs(v), 1.0);
}

}  // namespace
}  // namespace fdtdmm
