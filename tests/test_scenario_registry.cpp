// Tests for the open scenario API: registry lookup/registration error
// paths, descriptor-driven parameter validation, generic axis error paths
// (fail at expand time, not mid-sweep), and the openness proof — a
// synthetic family defined entirely in this file, registered through
// ScenarioRegistry::global(), swept and exported with zero engine changes.
#include "core/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "engine/sweep_runner.h"

namespace fdtdmm {
namespace {

/// Bare "tline" spec on family defaults (the generic spelling of the old
/// tlineSpec() shim).
SweepSpec tlineSpec() {
  SweepSpec spec;
  spec.scenario = "tline";
  return spec;
}

/// The conditional RC-load corner axis, spelled generically.
ParamAxis rcLoadAxis(double r, double c) {
  ParamAxis axis;
  axis.name = "rc_load";
  axis.only_when_param = "load";
  axis.only_when_value = std::string("rc");
  axis.points.push_back({{{"load_r", r}, {"load_c", c}}});
  return axis;
}

// --- A synthetic scenario family: fabricates waveforms analytically (an
// exponential charge toward an "amplitude" level), so it exercises the
// whole registry -> spec -> runner -> metrics -> export path in
// microseconds and without any macromodel.
struct SynthConfig {
  std::string pattern = "01";
  double bit_time = 1e-9;
  double amplitude = 1.0;
  double tau = 0.2e-9;
};

class SynthFamily final : public Scenario {
 public:
  const std::string& family() const override {
    static const std::string name = "test-synth";
    return name;
  }
  const std::vector<ParamDescriptor>& descriptors() const override {
    return table().descriptors();
  }
  void set(const std::string& param, const ParamValue& value) override {
    table().set(*this, param, value);
  }
  ParamValue get(const std::string& param) const override {
    return table().get(*this, param);
  }
  void validate() const override {}
  std::string label() const override {
    return "synth a=" + formatParamValue(ParamValue{cfg_.amplitude});
  }
  std::string pattern() const override { return cfg_.pattern; }
  double bitTime() const override { return cfg_.bit_time; }
  double tStop() const override { return 4.0 * cfg_.bit_time; }
  bool needsDriver() const override { return false; }
  bool needsReceiver() const override { return false; }
  std::unique_ptr<Scenario> clone() const override {
    return std::make_unique<SynthFamily>(*this);
  }
  TaskWaveforms run(std::shared_ptr<const RbfDriverModel>,
                    std::shared_ptr<const RbfReceiverModel>) const override {
    TaskWaveforms out;
    const double a = cfg_.amplitude, tau = cfg_.tau;
    out.v_far = sampleFunction(
        [a, tau](double t) { return a * (1.0 - std::exp(-t / tau)); }, 0.0,
        tStop(), 10e-12);
    out.v_near = out.v_far;
    return out;
  }

 private:
  static const ParamTable<SynthFamily>& table() {
    using T = SynthFamily;
    static const ParamTable<T> t(
        "test-synth",
        {
            {stringParam("pattern", {}, "bit pattern"),
             [](const T& s) { return ParamValue{s.cfg_.pattern}; },
             [](T& s, const ParamValue& v) { s.cfg_.pattern = std::get<std::string>(v); }},
            {positiveParam("bit_time", "bit time [s]"),
             [](const T& s) { return ParamValue{s.cfg_.bit_time}; },
             [](T& s, const ParamValue& v) { s.cfg_.bit_time = std::get<double>(v); }},
            {positiveParam("amplitude", "settled level [V]"),
             [](const T& s) { return ParamValue{s.cfg_.amplitude}; },
             [](T& s, const ParamValue& v) { s.cfg_.amplitude = std::get<double>(v); }},
            {positiveParam("tau", "charge time constant [s]"),
             [](const T& s) { return ParamValue{s.cfg_.tau}; },
             [](T& s, const ParamValue& v) { s.cfg_.tau = std::get<double>(v); }},
        });
    return t;
  }

  SynthConfig cfg_;
};

bool ensureSynthRegistered() {
  static const bool once = [] {
    ScenarioRegistry::global().add(
        "test-synth", [] { return std::make_unique<SynthFamily>(); });
    return true;
  }();
  return once;
}

TEST(ScenarioRegistry, BuiltinsAreRegistered) {
  auto& reg = ScenarioRegistry::global();
  EXPECT_TRUE(reg.has("tline"));
  EXPECT_TRUE(reg.has("pcb"));
  EXPECT_TRUE(reg.has("crosstalk"));
  for (const std::string name : {"tline", "pcb", "crosstalk"}) {
    auto s = reg.create(name);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->family(), name);
    EXPECT_FALSE(s->descriptors().empty());
    EXPECT_NO_THROW(s->validate());  // defaults are runnable
    EXPECT_FALSE(s->label().empty());
    EXPECT_GT(s->bitTime(), 0.0);
    EXPECT_GT(s->tStop(), 0.0);
  }
}

TEST(ScenarioRegistry, UnknownNameAndBadRegistrationThrow) {
  auto& reg = ScenarioRegistry::global();
  EXPECT_FALSE(reg.has("no-such-family"));
  EXPECT_THROW(reg.create("no-such-family"), std::invalid_argument);
  // Duplicate registration is an error, not a silent replacement.
  EXPECT_THROW(reg.add("tline", [] { return std::make_unique<SynthFamily>(); }),
               std::invalid_argument);
  EXPECT_THROW(reg.add("", [] { return std::make_unique<SynthFamily>(); }),
               std::invalid_argument);
  EXPECT_THROW(reg.add("null-factory", nullptr), std::invalid_argument);
  // An unknown scenario name fails sweep expansion too.
  SweepSpec spec;
  spec.scenario = "no-such-family";
  EXPECT_THROW(spec.expand(), std::invalid_argument);
  EXPECT_THROW(spec.count(), std::invalid_argument);
}

TEST(ScenarioParams, SetGetAndValidationErrors) {
  auto s = ScenarioRegistry::global().create("tline");
  s->set("zc", 75.0);
  EXPECT_EQ(std::get<double>(s->get("zc")), 75.0);
  s->set("load", std::string("receiver"));
  EXPECT_TRUE(s->needsReceiver());
  s->set("engine", std::string("spice-rbf"));
  EXPECT_EQ(std::get<std::string>(s->get("engine")), "spice-rbf");

  EXPECT_THROW(s->set("no_such_param", 1.0), std::invalid_argument);
  EXPECT_THROW(s->get("no_such_param"), std::invalid_argument);
  EXPECT_THROW(s->set("zc", -1.0), std::invalid_argument);            // range
  EXPECT_THROW(s->set("zc", std::string("hi")), std::invalid_argument);  // kind
  EXPECT_THROW(s->set("load", std::string("open")), std::invalid_argument);  // choice
  EXPECT_THROW(s->set("pattern", std::string("")), std::invalid_argument);
  EXPECT_THROW(s->set("mesh_nx", 1.5), std::invalid_argument);  // integrality
  EXPECT_EQ(std::get<double>(s->get("zc")), 75.0);  // failed sets left it alone

  const ParamDescriptor* zc = s->findParam("zc");
  ASSERT_NE(zc, nullptr);
  EXPECT_EQ(zc->kind, ParamKind::kDouble);
  EXPECT_EQ(s->findParam("no_such_param"), nullptr);
}

TEST(SweepAxes, ErrorPathsFailAtExpandTimeNotMidSweep) {
  // Unknown axis parameter.
  SweepSpec unknown = tlineSpec();
  unknown.axis("warp_factor", {9.0});
  EXPECT_THROW(unknown.count(), std::invalid_argument);
  EXPECT_THROW(unknown.expand(), std::invalid_argument);

  // Out-of-range axis value: caught by the descriptor check up front even
  // though a run with zc=131 (the first point) would have succeeded.
  SweepSpec range = tlineSpec();
  range.axis("zc", {131.0, -5.0});
  EXPECT_THROW(range.count(), std::invalid_argument);
  EXPECT_THROW(range.expand(), std::invalid_argument);

  // Kind mismatch on an axis value.
  SweepSpec kind = tlineSpec();
  kind.axisStrings("zc", {"fast"});
  EXPECT_THROW(kind.expand(), std::invalid_argument);

  // A conditional axis whose condition is bound by a *later* axis would
  // resolve against stale values; rejected up front.
  SweepSpec order = tlineSpec();
  order.axis(rcLoadAxis(500.0, 1e-12));
  order.axisStrings("load", {"rc", "receiver"});
  EXPECT_THROW(order.expand(), std::invalid_argument);

  // A conditional axis on an unknown parameter.
  SweepSpec cond = tlineSpec();
  ParamAxis bad;
  bad.name = "bad";
  bad.only_when_param = "no_such_param";
  bad.only_when_value = std::string("x");
  bad.points.push_back({{{"zc", 100.0}}});
  cond.axis(std::move(bad));
  EXPECT_THROW(cond.expand(), std::invalid_argument);

  // An axis point with no bindings is meaningless.
  SweepSpec hollow = tlineSpec();
  ParamAxis empty_point;
  empty_point.name = "hollow";
  empty_point.points.push_back({});
  hollow.axis(std::move(empty_point));
  EXPECT_THROW(hollow.expand(), std::invalid_argument);

  // Base overrides are validated too.
  SweepSpec bad_base = tlineSpec();
  bad_base.set("bit_time", -1.0);
  EXPECT_THROW(bad_base.expand(), std::invalid_argument);

  // The same parameter bound by two axes would just have the inner axis
  // overwrite the outer, multiplying the grid with duplicate tasks.
  SweepSpec twice = tlineSpec();
  twice.axis("zc", {90.0, 110.0});
  twice.axis("zc", {100.0, 131.0});
  EXPECT_THROW(twice.expand(), std::invalid_argument);
  SweepSpec rc_twice = tlineSpec();
  rc_twice.axis(rcLoadAxis(500.0, 1e-12));
  rc_twice.axis(rcLoadAxis(100.0, 5e-12));
  EXPECT_THROW(rc_twice.count(), std::invalid_argument);
}

TEST(SweepAxes, LabelsStayDistinguishableForLabelOmittedParameters) {
  // t_stop is not part of the tline label; without disambiguation both
  // corners would export byte-identical labels.
  SweepSpec spec = tlineSpec();
  spec.axis("t_stop", {1e-9, 2e-9});
  spec.axis("zc", {100.0, 131.0});
  const auto tasks = spec.expand();
  ASSERT_EQ(tasks.size(), 4u);
  std::set<std::string> labels;
  for (const auto& task : tasks) labels.insert(task.label);
  EXPECT_EQ(labels.size(), tasks.size());
  EXPECT_NE(tasks[0].label.find("t_stop=1e-09"), std::string::npos);
  EXPECT_NE(tasks[2].label.find("t_stop=2e-09"), std::string::npos);

  // A sweep whose labels are already unique keeps the family label as-is
  // (no suffix) — the migration goldens depend on this.
  SweepSpec plain = tlineSpec();
  plain.axis("zc", {100.0, 131.0});
  for (const auto& task : plain.expand())
    EXPECT_EQ(task.label.find(" | "), std::string::npos);
}

TEST(ScenarioRegistry, SyntheticFamilySweepsEndToEndWithoutEngineChanges) {
  ensureSynthRegistered();

  SweepSpec spec;
  spec.scenario = "test-synth";
  spec.set("bit_time", 0.5e-9);
  spec.axis("amplitude", {0.5, 1.0, 2.0});
  spec.axis("tau", {0.1e-9, 0.2e-9});
  EXPECT_EQ(spec.count(), 6u);

  SweepRunnerOptions opt;
  opt.workers = 2;
  SweepRunner runner(opt);
  const auto result = runner.run(spec);
  ASSERT_EQ(result.runs.size(), 6u);
  EXPECT_EQ(result.okCount(), 6u);
  // Innermost axis (tau) varies fastest; metrics reflect the parameters.
  EXPECT_NEAR(result.runs[0].metrics.v_far_max, 0.5, 1e-6);
  EXPECT_NEAR(result.runs[2].metrics.v_far_max, 1.0, 1e-6);
  EXPECT_NEAR(result.runs[4].metrics.v_far_max, 2.0, 1e-6);
  for (const auto& run : result.runs) EXPECT_EQ(run.metrics.v_far_min, 0.0);
}

}  // namespace
}  // namespace fdtdmm
