// Tests for the sweep engine's execution substrate: FIFO submission with
// futures, exception propagation, and thread-count-independent results.
#include "engine/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fdtdmm {
namespace {

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, ReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workerCount(), 3u);
}

TEST(ThreadPool, FuturesReturnResultsInSubmissionSlots) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  try {
    bad.get();
    FAIL() << "expected the task exception to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ResultsIndependentOfWorkerCount) {
  // The same workload collected through futures must give identical
  // results for any pool size, regardless of execution interleaving.
  auto runWith = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<std::future<double>> futures;
    for (int i = 0; i < 40; ++i)
      futures.push_back(pool.submit([i] {
        double acc = 0.0;
        for (int k = 1; k <= 200; ++k) acc += 1.0 / (i + k);
        return acc;
      }));
    std::vector<double> out;
    for (auto& f : futures) out.push_back(f.get());
    return out;
  };
  const auto serial = runWith(1);
  EXPECT_EQ(runWith(2), serial);
  EXPECT_EQ(runWith(4), serial);
  EXPECT_EQ(runWith(8), serial);
}

TEST(ThreadPool, StatsTrackSubmissionsQueueDepthAndPerWorkerCounts) {
  ThreadPool pool(3);

  // Park every worker behind a gate, then pile up a backlog: the
  // high-water mark must see the whole backlog and the queue-wait must be
  // strictly positive once it drains.
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::vector<std::future<void>> blockers;
  for (int i = 0; i < 3; ++i)
    blockers.push_back(pool.submit([open] { open.wait(); }));
  while (pool.queued() != 0) std::this_thread::yield();  // blockers dequeued

  std::vector<std::future<int>> work;
  for (int i = 0; i < 10; ++i) work.push_back(pool.submit([i] { return i; }));
  EXPECT_GE(pool.stats().queue_high_water, 10u);

  gate.set_value();
  for (auto& f : blockers) f.get();
  for (std::size_t i = 0; i < work.size(); ++i)
    EXPECT_EQ(work[i].get(), static_cast<int>(i));

  const ThreadPoolStats st = pool.stats();
  EXPECT_EQ(st.submitted, 13);
  ASSERT_EQ(st.tasks_per_worker.size(), 3u);
  long long dispatched = 0;
  for (long long n : st.tasks_per_worker) dispatched += n;
  EXPECT_EQ(dispatched, st.submitted);
  EXPECT_GT(st.queue_wait_seconds, 0.0);  // the backlog sat behind the gate
}

TEST(ThreadPool, StatsAreZeroInitialized) {
  ThreadPool pool(2);
  const ThreadPoolStats st = pool.stats();
  EXPECT_EQ(st.queue_high_water, 0u);
  EXPECT_EQ(st.submitted, 0);
  ASSERT_EQ(st.tasks_per_worker.size(), 2u);
  EXPECT_EQ(st.tasks_per_worker[0], 0);
  EXPECT_EQ(st.tasks_per_worker[1], 0);
  EXPECT_EQ(st.queue_wait_seconds, 0.0);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i)
      futures.push_back(pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      }));
  }  // ~ThreadPool must finish everything queued, not drop it
  EXPECT_EQ(done.load(), 32);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

}  // namespace
}  // namespace fdtdmm
