#include "freq/rational_fit.h"

#include <cmath>
#include <stdexcept>

#include "math/linear_solve.h"
#include "math/matrix.h"

namespace fdtdmm {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Re Z of a unit-resistance branch with corner w_b at angular frequency w.
double branchBasis(double w, double w_b) {
  const double x = w / w_b;
  return x * x / (1.0 + x * x);
}
}  // namespace

double skinEffectResistance(double rdc, double k_skin, double f_hz) {
  const double r_skin = k_skin * std::sqrt(f_hz);
  return std::sqrt(rdc * rdc + r_skin * r_skin);
}

SkinEffectFit fitSkinEffect(double rdc, double k_skin, double f_min,
                            double f_max, std::size_t n_branches,
                            std::size_t n_grid) {
  if (rdc <= 0.0) throw std::invalid_argument("fitSkinEffect: rdc must be > 0");
  if (k_skin < 0.0) throw std::invalid_argument("fitSkinEffect: k_skin must be >= 0");
  if (f_min <= 0.0 || f_max <= f_min)
    throw std::invalid_argument("fitSkinEffect: need 0 < f_min < f_max");
  if (n_branches < 1) throw std::invalid_argument("fitSkinEffect: n_branches must be >= 1");
  if (n_grid < n_branches)
    throw std::invalid_argument("fitSkinEffect: n_grid must be >= n_branches");

  SkinEffectFit fit;
  fit.rdc = rdc;
  fit.f_min = f_min;
  fit.f_max = f_max;
  if (k_skin == 0.0) return fit;  // constant-R line: nothing to add

  // Corner frequencies log-spaced across the band, pushed half a spacing
  // step outward on both ends: the lowest branch must already be partly
  // "on" at f_min and the highest must still be rising at f_max, otherwise
  // the staircase sags at the band edges.
  std::vector<double> w_b(n_branches);
  const double lo = std::log(2.0 * kPi * f_min);
  const double hi = std::log(2.0 * kPi * f_max);
  for (std::size_t b = 0; b < n_branches; ++b) {
    const double t = (n_branches == 1)
                         ? 0.5
                         : static_cast<double>(b) / static_cast<double>(n_branches - 1);
    w_b[b] = std::exp(lo + t * (hi - lo));
  }

  // Weighted least squares for the step heights: rows are log-spaced grid
  // frequencies, each divided by the target so the residual is *relative*
  // error (a uniform absolute fit would spend all accuracy at the high-f
  // end where R is largest).
  Matrix a(n_grid, n_branches);
  Vector rhs(n_grid);
  std::vector<double> f_grid(n_grid);
  for (std::size_t i = 0; i < n_grid; ++i) {
    const double t = (n_grid == 1)
                         ? 0.5
                         : static_cast<double>(i) / static_cast<double>(n_grid - 1);
    const double f = std::exp(std::log(f_min) + t * (std::log(f_max) - std::log(f_min)));
    f_grid[i] = f;
    const double target = skinEffectResistance(rdc, k_skin, f);
    const double w = 2.0 * kPi * f;
    for (std::size_t b = 0; b < n_branches; ++b)
      a(i, b) = branchBasis(w, w_b[b]) / target;
    rhs[i] = (target - rdc) / target;
  }
  Vector weights = solveLeastSquares(a, rhs, 1e-12);

  fit.branches.resize(n_branches);
  for (std::size_t b = 0; b < n_branches; ++b) {
    const double r_b = std::max(0.0, weights[b]);
    fit.branches[b].r = r_b;
    fit.branches[b].l = r_b / w_b[b];
  }

  for (std::size_t i = 0; i < n_grid; ++i) {
    const double target = skinEffectResistance(rdc, k_skin, f_grid[i]);
    const double model = skinFitImpedance(fit, f_grid[i]).real();
    const double rel = std::abs(model - target) / target;
    if (rel > fit.max_rel_error) fit.max_rel_error = rel;
  }
  return fit;
}

std::complex<double> skinFitImpedance(const SkinEffectFit& fit, double f_hz) {
  std::complex<double> z(fit.rdc, 0.0);
  const double w = 2.0 * kPi * f_hz;
  for (const SkinBranch& b : fit.branches) {
    if (b.r <= 0.0) continue;
    const std::complex<double> jwl(0.0, w * b.l);
    z += jwl * b.r / (b.r + jwl);
  }
  return z;
}

double skinFitInductance(const SkinEffectFit& fit) {
  double l = 0.0;
  for (const SkinBranch& b : fit.branches) l += b.l;
  return l;
}

}  // namespace fdtdmm
