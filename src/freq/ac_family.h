#pragma once
/// \file ac_family.h
/// The "ac" scenario family: one frequency point of a frequency-domain
/// sweep over a terminated RLGC line, run on the AcSession engine
/// (freq/ac_engine.h). Registering the point frequency as an ordinary
/// scenario parameter makes `frequency` a generic sweep axis: an AC sweep
/// is a standard SweepSpec over the "ac" family and runs through the same
/// ScenarioRegistry / SweepRunner / ThreadPool / cache machinery as every
/// transient family — including symbolic sharing, since all frequency
/// corners of one line share a structure class (frequency is deliberately
/// NOT in structureKey()).
///
/// The circuit is the 2-port S-parameter test fixture: the line between
/// port 1 and port 2, each port driven by a Thevenin source (ideal source
/// + series z0). With the port-1 source at 1 V and port 2 dark,
///   S11 = 2 V(p1) - 1,   S21 = 2 V(p2)
/// (reference-impedance z0 normalization, matched-source identity), and
/// the reverse excitation gives S22/S12 from one more solve of the SAME
/// assembled system — the AcSession's repeatable-solve economy.
///
/// With k_skin > 0 the line's series resistance rises like sqrt(f): the
/// rational fit (freq/rational_fit.h) is synthesized into the ladder as
/// per-segment series R-parallel-L branches, and the main per-unit-length
/// inductance is reduced by the branches' low-frequency inductance so z0
/// and the line delay are preserved.
///
/// Waveform mapping (every waveform is a single sample — the metric layer
/// needs non-empty waveforms, and the frozen CSV schema analyzes v_far):
///   v_near  — 1.0 (the port-1 excitation magnitude),
///   v_far   — |H(j 2 pi f)| with H = V(p2)/Vsrc, so the exported
///             v_far_max/v_far_min columns carry the transfer magnitude,
///   victims — [Re H, Im H, Re S11, Im S11, Re S21, Im S21, Re S12,
///              Im S12, Re S22, Im S22].

#include <memory>
#include <string>

#include "circuit/rlgc_line.h"
#include "core/scenario.h"

namespace fdtdmm {

/// Scenario parameters. Defaults: the repo's standard 50-ohm 10 cm line
/// (32 segments, lossless) matched at both ends, evaluated at 100 MHz.
struct AcScenario {
  RlgcParams line;          ///< per-unit-length line parameters
  double z0 = 50.0;         ///< port reference impedance [ohm]
  double frequency = 1e8;   ///< evaluation frequency [Hz] — the sweep axis
  double k_skin = 0.0;      ///< skin coefficient [ohm/(m sqrt(Hz))]; 0 = constant R
  double skin_fmin = 1e6;   ///< rational-fit band [Hz]
  double skin_fmax = 1e10;
  std::size_t skin_branches = 4;  ///< R-parallel-L steps of the fit
  std::string solver = "sparse";  ///< "sparse" | "dense" complex solve
};

/// Validates the configuration (fail fast before building the netlist).
/// \throws std::invalid_argument on invalid line parameters, z0 <= 0,
///         frequency < 0, k_skin < 0, an empty/inverted skin band or zero
///         skin branches when k_skin > 0 (which also requires line.r > 0
///         — the fit needs a DC resistance), or an unknown solver name.
void validateAcScenario(const AcScenario& cfg);

/// Runs one frequency point with the waveform mapping documented above.
/// Deterministic for fixed inputs (wall_seconds aside).
TaskWaveforms runAcScenario(const AcScenario& cfg);

/// Sharing-aware variant: threads `sharing` into AcOptions so frequency
/// corners of one structure class reuse a single symbolic analysis.
/// Bit-identical results either way for honest keys.
TaskWaveforms runAcScenario(const AcScenario& cfg, const SolverSharing& sharing);

/// Registry adapter ("ac"). Parameters: frequency, z0, line_r, line_l,
/// line_g, line_c, line_length, segments, k_skin, skin_fmin, skin_fmax,
/// skin_branches, solver. Needs no driver or receiver macromodel.
class AcFamily final : public Scenario {
 public:
  AcFamily() = default;
  explicit AcFamily(const AcScenario& cfg) : cfg_(cfg) {}

  const std::string& family() const override;
  const std::vector<ParamDescriptor>& descriptors() const override;
  void set(const std::string& param, const ParamValue& value) override;
  ParamValue get(const std::string& param) const override;
  void validate() const override;
  std::string label() const override;
  /// Single-point "pattern": the metric layer's eye analysis skips
  /// one-sample waveforms, so these are nominal.
  std::string pattern() const override { return "0"; }
  double bitTime() const override { return 1.0; }
  double tStop() const override { return 1.0; }
  bool needsDriver() const override { return false; }
  bool needsReceiver() const override { return false; }
  /// Symbolic sharing: the AC matrix pattern depends on the solver mode
  /// and the ladder structure (segment count, presence of series-R /
  /// shunt-G nodes, skin-branch chain) but NOT on the frequency — that is
  /// the axis the sharing economy targets. There is no AC numeric-base
  /// tier (every frequency has distinct matrix values), so
  /// numericBaseKey() stays empty.
  std::string structureKey() const override;
  std::unique_ptr<Scenario> clone() const override;
  TaskWaveforms run(std::shared_ptr<const RbfDriverModel> driver,
                    std::shared_ptr<const RbfReceiverModel> receiver) const override;
  TaskWaveforms run(std::shared_ptr<const RbfDriverModel> driver,
                    std::shared_ptr<const RbfReceiverModel> receiver,
                    const SolverSharing& sharing) const override;

  const AcScenario& config() const { return cfg_; }

 private:
  static const ParamTable<AcFamily>& table();

  AcScenario cfg_;
};

/// Base parameter bindings of a typed config (for SweepSpec::base).
std::vector<ParamBinding> acParams(const AcScenario& cfg);

}  // namespace fdtdmm
