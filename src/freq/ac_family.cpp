#include "freq/ac_family.h"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "freq/ac_engine.h"
#include "freq/rational_fit.h"

namespace fdtdmm {

namespace {

double asNum(const ParamValue& v) { return std::get<double>(v); }
const std::string& asStr(const ParamValue& v) { return std::get<std::string>(v); }

AcOptions::Solver acSolverFromName(const std::string& name) {
  if (name == "sparse") return AcOptions::Solver::kSparse;
  if (name == "dense") return AcOptions::Solver::kDense;
  throw std::invalid_argument("unknown AC solver '" + name +
                              "' (valid: sparse, dense)");
}

/// One-sample waveform carrying a scalar observable (the AC family's rows
/// are per-frequency points, not time series).
Waveform scalarWave(double v) { return Waveform(0.0, 1.0, Vector{v}); }

}  // namespace

void validateAcScenario(const AcScenario& cfg) {
  if (cfg.line.l <= 0.0 || cfg.line.c <= 0.0 || cfg.line.length <= 0.0)
    throw std::invalid_argument("ac: line l, c, length must be > 0");
  if (cfg.line.r < 0.0 || cfg.line.g < 0.0)
    throw std::invalid_argument("ac: line r, g must be >= 0");
  if (cfg.line.segments == 0) throw std::invalid_argument("ac: need >= 1 segment");
  if (cfg.z0 <= 0.0) throw std::invalid_argument("ac: z0 must be > 0");
  if (cfg.frequency < 0.0) throw std::invalid_argument("ac: frequency must be >= 0");
  if (cfg.k_skin < 0.0) throw std::invalid_argument("ac: k_skin must be >= 0");
  if (cfg.k_skin > 0.0) {
    if (cfg.line.r <= 0.0)
      throw std::invalid_argument("ac: k_skin > 0 requires line_r > 0");
    if (cfg.skin_fmin <= 0.0 || cfg.skin_fmax <= cfg.skin_fmin)
      throw std::invalid_argument("ac: need 0 < skin_fmin < skin_fmax");
    if (cfg.skin_branches == 0)
      throw std::invalid_argument("ac: skin_branches must be >= 1");
  }
  acSolverFromName(cfg.solver);
}

/// Resolves the ladder actually built: with k_skin > 0 the rational fit's
/// branches are chained into each segment and the main inductance gives up
/// the branches' low-frequency contribution. Shared between run and
/// structureKey so the key always describes the built pattern.
static void resolveSkin(const AcScenario& cfg, RlgcParams& line,
                        std::vector<SeriesRlBranch>& branches) {
  line = cfg.line;
  branches.clear();
  if (cfg.k_skin <= 0.0) return;
  const SkinEffectFit fit = fitSkinEffect(cfg.line.r, cfg.k_skin, cfg.skin_fmin,
                                          cfg.skin_fmax, cfg.skin_branches);
  const double l_skin = skinFitInductance(fit);
  if (l_skin >= cfg.line.l)
    throw std::invalid_argument(
        "ac: skin-effect branch inductance exceeds the line inductance "
        "budget (reduce k_skin or raise line_l)");
  line.l = cfg.line.l - l_skin;
  branches.reserve(fit.branches.size());
  for (const SkinBranch& b : fit.branches)
    if (b.r > 0.0 && b.l > 0.0) branches.push_back({b.r, b.l});
}

TaskWaveforms runAcScenario(const AcScenario& cfg) {
  return runAcScenario(cfg, SolverSharing{});
}

TaskWaveforms runAcScenario(const AcScenario& cfg, const SolverSharing& sharing) {
  validateAcScenario(cfg);
  const auto start = std::chrono::steady_clock::now();

  Circuit circuit;
  const int p1 = circuit.addNode();
  const int p2 = circuit.addNode();
  const int s1 = circuit.addNode();
  const int s2 = circuit.addNode();
  TimeFn dark = [](double) { return 0.0; };
  // Thevenin port fixtures: ideal source + series z0 at both ports. Both
  // transient waveforms are zero — only the AC phasors drive the system.
  VoltageSource* src1 = circuit.addVoltageSource(s1, Circuit::kGround, dark);
  circuit.addResistor(s1, p1, cfg.z0);
  VoltageSource* src2 = circuit.addVoltageSource(s2, Circuit::kGround, dark);
  circuit.addResistor(s2, p2, cfg.z0);

  RlgcParams line;
  std::vector<SeriesRlBranch> branches;
  resolveSkin(cfg, line, branches);
  buildRlgcLineSegments(circuit, p1, Circuit::kGround, p2, Circuit::kGround,
                        line, branches);

  TaskWaveforms out;
  AcOptions opt;
  opt.solver = acSolverFromName(cfg.solver);
  opt.sharing = sharing;
  // Telemetry/health ride the same channels as the transient families:
  // phase times and factorization counts always land in out.telemetry;
  // health collection follows the sweep-wide switches (sharing.health).
  opt.telemetry = &out.telemetry;
  AcSession session(circuit, opt);

  // Forward excitation: port 1 at 1 V, port 2 dark.
  src1->setAcValue(Complex(1.0, 0.0));
  src2->setAcValue(Complex(0.0, 0.0));
  const ComplexVector& xf = session.solveAt(cfg.frequency);
  const Complex v1 = acNodeV(xf, p1);
  const Complex v2 = acNodeV(xf, p2);
  const Complex h = v2;  // H = V(p2) / Vsrc, Vsrc = 1
  const Complex s11 = 2.0 * v1 - 1.0;
  const Complex s21 = 2.0 * v2;

  // Reverse excitation of the same assembled system.
  src1->setAcValue(Complex(0.0, 0.0));
  src2->setAcValue(Complex(1.0, 0.0));
  const ComplexVector& xr = session.solveAt(cfg.frequency);
  const Complex s22 = 2.0 * acNodeV(xr, p2) - 1.0;
  const Complex s12 = 2.0 * acNodeV(xr, p1);

  if (out.telemetry.health.collected)
    obs::gradeHealth(out.telemetry.health,
                     sharing.health ? sharing.health->thresholds
                                    : obs::HealthThresholds{});

  out.v_near = scalarWave(1.0);
  out.v_far = scalarWave(std::abs(h));
  out.victims = {scalarWave(h.real()),   scalarWave(h.imag()),
                 scalarWave(s11.real()), scalarWave(s11.imag()),
                 scalarWave(s21.real()), scalarWave(s21.imag()),
                 scalarWave(s12.real()), scalarWave(s12.imag()),
                 scalarWave(s22.real()), scalarWave(s22.imag())};
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

const ParamTable<AcFamily>& AcFamily::table() {
  using T = AcFamily;
  static const ParamTable<T> t(
      "ac",
      {
          {nonNegativeParam("frequency", "evaluation frequency [Hz]"),
           [](const T& s) { return ParamValue{s.cfg_.frequency}; },
           [](T& s, const ParamValue& v) { s.cfg_.frequency = asNum(v); }},
          {positiveParam("z0", "port reference impedance [ohm]"),
           [](const T& s) { return ParamValue{s.cfg_.z0}; },
           [](T& s, const ParamValue& v) { s.cfg_.z0 = asNum(v); }},
          {nonNegativeParam("line_r", "series resistance [ohm/m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.r}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.r = asNum(v); }},
          {positiveParam("line_l", "series inductance [H/m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.l}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.l = asNum(v); }},
          {nonNegativeParam("line_g", "shunt conductance [S/m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.g}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.g = asNum(v); }},
          {positiveParam("line_c", "shunt capacitance [F/m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.c}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.c = asNum(v); }},
          {positiveParam("line_length", "physical length [m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.length}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.length = asNum(v); }},
          {intParam("segments", 1.0, "LC ladder sections"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.line.segments)}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.segments = static_cast<std::size_t>(asNum(v)); }},
          {nonNegativeParam("k_skin", "skin coefficient [ohm/(m sqrt(Hz))]"),
           [](const T& s) { return ParamValue{s.cfg_.k_skin}; },
           [](T& s, const ParamValue& v) { s.cfg_.k_skin = asNum(v); }},
          {positiveParam("skin_fmin", "rational-fit band lower edge [Hz]"),
           [](const T& s) { return ParamValue{s.cfg_.skin_fmin}; },
           [](T& s, const ParamValue& v) { s.cfg_.skin_fmin = asNum(v); }},
          {positiveParam("skin_fmax", "rational-fit band upper edge [Hz]"),
           [](const T& s) { return ParamValue{s.cfg_.skin_fmax}; },
           [](T& s, const ParamValue& v) { s.cfg_.skin_fmax = asNum(v); }},
          {intParam("skin_branches", 1.0, "R-parallel-L steps of the skin fit"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.skin_branches)}; },
           [](T& s, const ParamValue& v) { s.cfg_.skin_branches = static_cast<std::size_t>(asNum(v)); }},
          {stringParam("solver", {"sparse", "dense"}, "complex solve mode"),
           [](const T& s) { return ParamValue{s.cfg_.solver}; },
           [](T& s, const ParamValue& v) { s.cfg_.solver = asStr(v); }},
      });
  return t;
}

const std::string& AcFamily::family() const {
  static const std::string name = "ac";
  return name;
}

const std::vector<ParamDescriptor>& AcFamily::descriptors() const {
  return table().descriptors();
}

void AcFamily::set(const std::string& param, const ParamValue& value) {
  table().set(*this, param, value);
}

ParamValue AcFamily::get(const std::string& param) const {
  return table().get(*this, param);
}

void AcFamily::validate() const { validateAcScenario(cfg_); }

std::string AcFamily::label() const {
  std::string label = "ac/" + cfg_.solver + " f=" + formatDouble(cfg_.frequency) +
                      " z0=" + formatDouble(cfg_.z0) +
                      " len=" + formatDouble(cfg_.line.length) +
                      " seg=" + formatDouble(static_cast<double>(cfg_.line.segments));
  if (cfg_.line.r > 0.0) label += " r=" + formatDouble(cfg_.line.r);
  if (cfg_.line.g > 0.0) label += " g=" + formatDouble(cfg_.line.g);
  if (cfg_.k_skin > 0.0) label += " ks=" + formatDouble(cfg_.k_skin);
  return label;
}

std::unique_ptr<Scenario> AcFamily::clone() const {
  return std::make_unique<AcFamily>(*this);
}

// The pattern depends on the solver mode and everything that changes the
// netlist shape: segment count, presence of the per-segment series-R nodes
// (r > 0) and shunt-G resistors (g > 0), and the skin-branch chain. The
// chain's branch count is a function of (r, k_skin, band, n_branches), so
// those values are folded in exactly rather than re-deriving the fit here.
// Frequency is deliberately absent: it only changes matrix VALUES.
std::string AcFamily::structureKey() const {
  std::string key = "ac|solver=" + cfg_.solver +
                    "|seg=" + solverKeyNum(static_cast<double>(cfg_.line.segments)) +
                    "|r=" + (cfg_.line.r > 0.0 ? "1" : "0") +
                    "|g=" + (cfg_.line.g > 0.0 ? "1" : "0");
  if (cfg_.k_skin > 0.0) {
    key += "|ks=" + solverKeyNum(cfg_.k_skin) + "|rdc=" + solverKeyNum(cfg_.line.r) +
           "|sf0=" + solverKeyNum(cfg_.skin_fmin) +
           "|sf1=" + solverKeyNum(cfg_.skin_fmax) +
           "|sb=" + solverKeyNum(static_cast<double>(cfg_.skin_branches));
  }
  return key;
}

TaskWaveforms AcFamily::run(std::shared_ptr<const RbfDriverModel>,
                            std::shared_ptr<const RbfReceiverModel>) const {
  return runAcScenario(cfg_);
}

TaskWaveforms AcFamily::run(std::shared_ptr<const RbfDriverModel>,
                            std::shared_ptr<const RbfReceiverModel>,
                            const SolverSharing& sharing) const {
  return runAcScenario(cfg_, sharing);
}

std::vector<ParamBinding> acParams(const AcScenario& cfg) {
  return {
      {"frequency", cfg.frequency},
      {"z0", cfg.z0},
      {"line_r", cfg.line.r},
      {"line_l", cfg.line.l},
      {"line_g", cfg.line.g},
      {"line_c", cfg.line.c},
      {"line_length", cfg.line.length},
      {"segments", static_cast<double>(cfg.line.segments)},
      {"k_skin", cfg.k_skin},
      {"skin_fmin", cfg.skin_fmin},
      {"skin_fmax", cfg.skin_fmax},
      {"skin_branches", static_cast<double>(cfg.skin_branches)},
      {"solver", cfg.solver},
  };
}

}  // namespace fdtdmm
