#pragma once
/// \file rational_fit.h
/// Rational approximation of sqrt-f skin-effect series resistance.
///
/// A conductor's series resistance rises like k * sqrt(f) once the skin
/// depth falls below the conductor thickness; the constant-R RLGC ladder
/// (ROADMAP item 2) cannot represent that. sqrt(f) is not rational, but it
/// is classically well-approximated on a finite band by a low-order
/// rational function with real poles — the same move the source paper
/// makes for general tabulated responses, specialized here to the one
/// response shape the ladder needs.
///
/// The circuit realization drives the basis choice: a resistor R_b in
/// parallel with an inductor L_b has series impedance
///
///   Z_b(j w) = j w L_b R_b / (R_b + j w L_b),
///   Re Z_b   = R_b * x^2 / (1 + x^2),   x = w / w_b,  w_b = R_b / L_b,
///
/// i.e. a smooth resistance step from 0 to R_b centered at the branch's
/// corner frequency — exactly one real-pole term of a vector-fitting
/// partial-fraction expansion, and directly synthesizable into the ladder
/// (rlgc_line.h, SeriesRlBranch). A chain of such branches with log-spaced
/// corners staircases sqrt(f); fitSkinEffect computes the step heights by
/// relative-error-weighted linear least squares (the pole positions are
/// fixed, so unlike full vector fitting no iteration is needed).
///
/// Everything here is pure math on doubles — no circuit dependencies; the
/// synthesis into a netlist lives with the ladder builder.

#include <complex>
#include <cstddef>
#include <vector>

namespace fdtdmm {

/// One series R parallel L branch of a skin-effect ladder (absolute ohms
/// and henries at whatever scale the caller fits — the RLGC builder fits
/// per-unit-length values and scales by segment length).
struct SkinBranch {
  double r = 0.0;  ///< branch resistance [ohm]
  double l = 0.0;  ///< branch inductance [H]
};

/// Result of fitSkinEffect.
struct SkinEffectFit {
  double rdc = 0.0;                 ///< series DC resistance [ohm]
  std::vector<SkinBranch> branches; ///< R-parallel-L steps, ascending corner f
  double max_rel_error = 0.0;       ///< max |ReZ - target| / target on the fit grid
  double f_min = 0.0;               ///< fitted band [Hz]
  double f_max = 0.0;
};

/// Target skin-effect resistance sqrt(rdc^2 + (k_skin * sqrt(f))^2): equals
/// rdc at DC and k_skin * sqrt(f) deep in the skin regime, with a smooth
/// C1 crossover (the standard interpolation between the two asymptotes).
double skinEffectResistance(double rdc, double k_skin, double f_hz);

/// Fits `n_branches` R-parallel-L branches so that rdc + sum Re Z_b(f)
/// matches skinEffectResistance(rdc, k_skin, f) over [f_min, f_max] in
/// relative error. Corner frequencies are log-spaced over the band;
/// branch resistances come from weighted least squares (negative solutions
/// clamped to zero — passivity of the synthesized ladder is uncondition-
/// al). k_skin == 0 returns a branch-free fit with zero error.
/// \param n_grid least-squares sample count, log-spaced over the band.
/// \throws std::invalid_argument if rdc <= 0, k_skin < 0, the band is
///         empty/non-positive, n_branches < 1, or n_grid < n_branches.
SkinEffectFit fitSkinEffect(double rdc, double k_skin, double f_min,
                            double f_max, std::size_t n_branches = 4,
                            std::size_t n_grid = 48);

/// Series impedance of the fitted network at frequency f:
/// rdc + sum_b j w L_b R_b / (R_b + j w L_b).
std::complex<double> skinFitImpedance(const SkinEffectFit& fit, double f_hz);

/// Total series inductance the branches add at low frequency (sum of L_b;
/// each branch is inductive below its corner). Callers preserving the
/// line's low-frequency inductance subtract this from the ladder's
/// per-unit-length L before synthesis.
double skinFitInductance(const SkinEffectFit& fit);

}  // namespace fdtdmm
