#pragma once
/// \file ac_engine.h
/// Frequency-domain (AC small-signal) analysis of a Circuit.
///
/// AcSession is the frequency-domain sibling of SolverSession
/// (circuit/solver_session.h), with the same three-lifetime state split:
///
///   - *symbolic* state — the sparse pattern of the complex MNA system and
///     its RCM ordering. The pattern is a pure function of the circuit
///     structure (every stampAc writes a frequency-independent entry set),
///     so all frequency points of a session — and, via SolverSharing, all
///     corners of one structure class — reuse ONE symbolic analysis.
///   - per-frequency numeric state — the complex values G + j*omega*B
///     (plus non-polynomial terms like the ideal line's e^{-j omega Td},
///     which is why the session re-stamps *values* at every frequency
///     instead of scaling a fixed B), factored privately per point.
///   - the solution workspace x(omega).
///
/// There is no numeric-base tier: unlike the transient path, where N
/// corners share one static base factorization, every AC frequency point
/// has distinct matrix values, so only the symbolic stage is shareable.
///
/// Nonlinear circuits are handled the standard SPICE way: compute the DC
/// operating point with dcOperatingPoint(), pass it as AcOptions::x_dc,
/// and every nonlinear device stamps the Jacobian of its linearization
/// about that point (see the stampAc contract in circuit/elements.h).

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/solver_state.h"
#include "math/complex_lu.h"
#include "math/sparse_matrix.h"
#include "obs/telemetry.h"

namespace fdtdmm {

/// Options of one AC session.
struct AcOptions {
  enum class Solver { kDense, kSparse };

  /// kSparse (default) assembles into CSR pairs and factors with the
  /// banded RCM-ordered ComplexSparseLu; kDense uses dense complex LU
  /// (reference path for tests and tiny circuits).
  Solver solver = Solver::kSparse;

  /// DC operating point to linearize nonlinear devices about. Empty =
  /// all unknowns zero (exact for linear circuits). When non-empty its
  /// size must equal the circuit's unknown count.
  Vector x_dc;

  /// Cross-session symbolic sharing (sparse mode only; the structure key
  /// classes circuits by AC matrix pattern). Default: no sharing — the
  /// session still performs exactly one symbolic analysis of its own.
  SolverSharing sharing;

  /// Optional telemetry sink, the TransientOptions convention: when
  /// non-null every solveAt() accumulates its factor/solve wall time and
  /// factorization count (+=, one sink may aggregate a whole frequency
  /// grid). Null keeps solveAt clock-free.
  obs::RunTelemetry* telemetry = nullptr;
  /// Numerical-health collection (obs/health.h): with health.collect set
  /// (directly or via sharing.health, which per-option collect overrides)
  /// AND telemetry attached, every solveAt records the factorization's
  /// pivot stats and one complex relative residual ||Ax-b||inf/||b||inf
  /// into telemetry->health. No condition estimate on this path (the
  /// complex factorizations expose no transpose solve); grading happens in
  /// the scenario layer after the last solve.
  obs::HealthOptions health;
};

/// One frequency-domain analysis of one Circuit. Construction assigns the
/// unknown layout and validates options; the first solveAt() assembles the
/// matrix pattern (sparse) or allocates the dense pair, and every call
/// re-stamps values, factors, and solves.
///
/// solveAt() is repeatable at the same or different frequencies, and
/// element AC excitations (VoltageSource/CurrentSource::setAcValue) may be
/// changed between calls — the S-parameter extraction runs one session
/// with forward and reverse port excitations. The session holds a
/// reference to the circuit; neither the netlist structure nor the
/// transient state may change while it is alive.
class AcSession {
 public:
  /// \throws std::invalid_argument if the circuit has no unknowns or
  ///         x_dc is non-empty with the wrong size.
  AcSession(Circuit& circuit, AcOptions opt);

  /// Solves A(j 2 pi f_hz) x = b and returns the solution phasor vector
  /// (node voltages then branch currents, the transient unknown layout).
  /// The reference is valid until the next solveAt() call.
  /// \throws std::invalid_argument if f_hz < 0; std::runtime_error on a
  ///         numerically singular system; std::logic_error from an
  ///         element without an AC model.
  const ComplexVector& solveAt(double f_hz);

  /// Unknown count (nodes + branches).
  std::size_t unknowns() const { return n_; }

  /// Number of complex factorizations performed (one per solveAt call).
  std::size_t factorizations() const { return factorizations_; }

  /// Whether the symbolic analysis was checked out of the sharing
  /// provider instead of built here (valid after the first solveAt).
  bool reusedSharedSymbolic() const { return reused_shared_symbolic_; }

 private:
  void assemblePattern(double omega);
  void restampValues(double omega);
  /// Records the complex relative residual of the last solve (health
  /// collection; see AcOptions::health).
  void recordResidual(obs::NumericalHealth& h) const;

  Circuit& circuit_;
  AcOptions opt_;
  std::size_t n_ = 0;
  bool sparse_ = false;
  bool assembled_ = false;

  AcStampSystem sys_;
  SparseMatrix sp_re_;  ///< CSR target of sys_.re (sparse mode)
  SparseMatrix sp_im_;  ///< CSR target of sys_.im (same pattern)

  std::shared_ptr<const SolverSymbolic> shared_symbolic_;
  bool reused_shared_symbolic_ = false;

  ComplexSparseLu slu_;
  ComplexLu lu_;
  ComplexVector x_;
  std::size_t factorizations_ = 0;
};

/// Computes the DC operating point of `circuit` by dense Newton iteration
/// on the full MNA stamp at t = 0 (capacitors open — their companion
/// conductance is zero before begin(); inductors near-shorts; transient
/// sources at their t = 0 value). The circuit must not have run a
/// transient (element companion state must be pristine); the circuit is
/// left untouched for a subsequent AcSession or transient run.
/// \returns the unknown vector (suitable as AcOptions::x_dc).
/// \throws std::runtime_error if Newton fails to converge in `max_iter`
///         iterations or the Jacobian goes singular.
Vector dcOperatingPoint(Circuit& circuit, int max_iter = 50,
                        double tol = 1e-9);

/// Phasor of node n in an AC solution vector (ground = 0).
inline Complex acNodeV(const ComplexVector& x, int n) {
  return n == 0 ? Complex(0.0, 0.0) : x[static_cast<std::size_t>(n - 1)];
}

}  // namespace fdtdmm
