#include "freq/ac_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/linear_solve.h"
#include "math/sparse_lu.h"

namespace fdtdmm {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

AcSession::AcSession(Circuit& circuit, AcOptions opt)
    : circuit_(circuit), opt_(std::move(opt)) {
  n_ = circuit_.assignUnknowns();
  if (n_ == 0) throw std::invalid_argument("AcSession: circuit has no unknowns");
  sparse_ = opt_.solver == AcOptions::Solver::kSparse;
  if (!opt_.x_dc.empty() && opt_.x_dc.size() != n_)
    throw std::invalid_argument("AcSession: x_dc size does not match unknown count");
}

void AcSession::assemblePattern(double omega) {
  if (sparse_) {
    // Build both CSR patterns with one stamping pass. The entry *positions*
    // an element writes are frequency-independent (only values depend on
    // omega — see the stampAc contract), so the pattern assembled here is
    // valid for every later frequency; restampValues() scatters into it
    // allocation-free.
    sp_re_.reset(n_);
    sp_im_.reset(n_);
    sys_.re.sparse = &sp_re_;
    sys_.im.sparse = &sp_im_;
    sys_.b.assign(n_, Complex(0.0, 0.0));
    for (const auto& e : circuit_.elements()) e->stampAc(sys_, omega, opt_.x_dc);
    sp_re_.finalize();
    sp_im_.finalize();

    // Resolve the shared symbolic state (checkout or build-and-publish).
    // The ordering is a pure function of the pattern, so any session of
    // the same structure class computes the identical one — which is what
    // makes the exactly-once provider contract safe here.
    if (opt_.sharing.shareSymbolic()) {
      bool built = false;
      auto sym = opt_.sharing.provider->symbolic(
          opt_.sharing.structure_key, [&]() {
            built = true;
            auto s = std::make_shared<SolverSymbolic>();
            s->n = n_;
            s->rcm_order = reverseCuthillMcKee(sp_re_);
            return s;
          });
      // A key collision across different structures would hand us an
      // ordering of the wrong dimension; fall back to private analysis
      // rather than corrupt the factorization.
      if (sym && sym->n == n_) {
        shared_symbolic_ = std::move(sym);
        reused_shared_symbolic_ = !built;
      }
    }
  } else {
    sys_.re.a = Matrix(n_, n_);
    sys_.im.a = Matrix(n_, n_);
    sys_.re.sparse = nullptr;
    sys_.im.sparse = nullptr;
  }
  assembled_ = true;
}

void AcSession::restampValues(double omega) {
  if (sparse_) {
    sp_re_.clearValues();
    sp_im_.clearValues();
  } else {
    std::fill(sys_.re.a.data(), sys_.re.a.data() + n_ * n_, 0.0);
    std::fill(sys_.im.a.data(), sys_.im.a.data() + n_ * n_, 0.0);
  }
  sys_.b.assign(n_, Complex(0.0, 0.0));
  for (const auto& e : circuit_.elements()) e->stampAc(sys_, omega, opt_.x_dc);
}

const ComplexVector& AcSession::solveAt(double f_hz) {
  if (f_hz < 0.0) throw std::invalid_argument("AcSession::solveAt: f must be >= 0");
  const double omega = 2.0 * kPi * f_hz;
  if (!assembled_) assemblePattern(omega);
  restampValues(omega);
  if (sparse_) {
    if (shared_symbolic_ != nullptr) {
      slu_.factorWithOrder(sp_re_, sp_im_, shared_symbolic_->rcm_order);
    } else {
      // ComplexSparseLu's pattern-version cache still guarantees one RCM
      // analysis per session: clearValues() keeps the version stamp.
      slu_.factor(sp_re_, sp_im_);
    }
    ++factorizations_;
    slu_.solve(sys_.b, x_);
  } else {
    lu_.factor(sys_.re.a, sys_.im.a);
    ++factorizations_;
    lu_.solve(sys_.b, x_);
  }
  return x_;
}

Vector dcOperatingPoint(Circuit& circuit, int max_iter, double tol) {
  const std::size_t n = circuit.assignUnknowns();
  if (n == 0) throw std::invalid_argument("dcOperatingPoint: circuit has no unknowns");
  // Full linearized restamp about the iterate at t = 0 with a nominal
  // dt = 1 s: capacitor companions are inert before begin() (geq = 0, so
  // capacitors are DC-open), inductor companions make inductors stiff
  // near-shorts (branch voltage = i L / theta), and sources sit at their
  // t = 0 transient value. For linear circuits this converges in one
  // iteration; nonlinear devices stamp their Newton Jacobian + residual
  // exactly as in the transient loop.
  Vector x(n, 0.0);
  StampSystem sys;
  LuFactorization lu;
  for (int it = 0; it < max_iter; ++it) {
    sys.a = Matrix(n, n);
    sys.b.assign(n, 0.0);
    for (const auto& e : circuit.elements()) e->stamp(sys, x, 0.0, 1.0);
    lu.factor(sys.a);
    Vector x_new = lu.solve(sys.b);
    double delta = 0.0;
    for (std::size_t k = 0; k < n; ++k) delta = std::max(delta, std::abs(x_new[k] - x[k]));
    x = std::move(x_new);
    if (delta < tol) return x;
  }
  throw std::runtime_error("dcOperatingPoint: Newton did not converge");
}

}  // namespace fdtdmm
