#include "freq/ac_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/linear_solve.h"
#include "math/sparse_lu.h"
#include "obs/counters.h"

namespace fdtdmm {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

AcSession::AcSession(Circuit& circuit, AcOptions opt)
    : circuit_(circuit), opt_(std::move(opt)) {
  n_ = circuit_.assignUnknowns();
  if (n_ == 0) throw std::invalid_argument("AcSession: circuit has no unknowns");
  sparse_ = opt_.solver == AcOptions::Solver::kSparse;
  if (!opt_.x_dc.empty() && opt_.x_dc.size() != n_)
    throw std::invalid_argument("AcSession: x_dc size does not match unknown count");
}

void AcSession::assemblePattern(double omega) {
  if (sparse_) {
    // Build both CSR patterns with one stamping pass. The entry *positions*
    // an element writes are frequency-independent (only values depend on
    // omega — see the stampAc contract), so the pattern assembled here is
    // valid for every later frequency; restampValues() scatters into it
    // allocation-free.
    sp_re_.reset(n_);
    sp_im_.reset(n_);
    sys_.re.sparse = &sp_re_;
    sys_.im.sparse = &sp_im_;
    sys_.b.assign(n_, Complex(0.0, 0.0));
    for (const auto& e : circuit_.elements()) e->stampAc(sys_, omega, opt_.x_dc);
    sp_re_.finalize();
    sp_im_.finalize();

    // Resolve the shared symbolic state (checkout or build-and-publish).
    // The ordering is a pure function of the pattern, so any session of
    // the same structure class computes the identical one — which is what
    // makes the exactly-once provider contract safe here.
    if (opt_.sharing.shareSymbolic()) {
      bool built = false;
      auto sym = opt_.sharing.provider->symbolic(
          opt_.sharing.structure_key, [&]() {
            built = true;
            auto s = std::make_shared<SolverSymbolic>();
            s->n = n_;
            s->rcm_order = reverseCuthillMcKee(sp_re_);
            return s;
          });
      // A key collision across different structures would hand us an
      // ordering of the wrong dimension; fall back to private analysis
      // rather than corrupt the factorization.
      if (sym && sym->n == n_) {
        shared_symbolic_ = std::move(sym);
        reused_shared_symbolic_ = !built;
      }
    }
  } else {
    sys_.re.a = Matrix(n_, n_);
    sys_.im.a = Matrix(n_, n_);
    sys_.re.sparse = nullptr;
    sys_.im.sparse = nullptr;
  }
  assembled_ = true;
}

void AcSession::restampValues(double omega) {
  if (sparse_) {
    sp_re_.clearValues();
    sp_im_.clearValues();
  } else {
    std::fill(sys_.re.a.data(), sys_.re.a.data() + n_ * n_, 0.0);
    std::fill(sys_.im.a.data(), sys_.im.a.data() + n_ * n_, 0.0);
  }
  sys_.b.assign(n_, Complex(0.0, 0.0));
  for (const auto& e : circuit_.elements()) e->stampAc(sys_, omega, opt_.x_dc);
}

const ComplexVector& AcSession::solveAt(double f_hz) {
  if (f_hz < 0.0) throw std::invalid_argument("AcSession::solveAt: f must be >= 0");
  const double omega = 2.0 * kPi * f_hz;
  if (!assembled_) assemblePattern(omega);
  restampValues(omega);
  obs::RunTelemetry* const tel = opt_.telemetry;
  const obs::HealthOptions* h_opt =
      opt_.health.collect
          ? &opt_.health
          : (opt_.sharing.health && opt_.sharing.health->collect ? opt_.sharing.health
                                                                 : nullptr);
  obs::NumericalHealth* const health = tel && h_opt ? &tel->health : nullptr;
  double* const t_factor = tel ? &tel->phases.factor_seconds : nullptr;
  double* const t_solve = tel ? &tel->phases.solve_seconds : nullptr;
  if (sparse_) {
    {
      obs::ScopedTimer factor_timer(t_factor);
      if (shared_symbolic_ != nullptr) {
        slu_.factorWithOrder(sp_re_, sp_im_, shared_symbolic_->rcm_order);
      } else {
        // ComplexSparseLu's pattern-version cache still guarantees one RCM
        // analysis per session: clearValues() keeps the version stamp.
        slu_.factor(sp_re_, sp_im_);
      }
    }
    ++factorizations_;
    if (health) health->recordFactorization(slu_.minAbsPivot(), slu_.pivotGrowth());
    obs::ScopedTimer solve_timer(t_solve);
    slu_.solve(sys_.b, x_);
  } else {
    {
      obs::ScopedTimer factor_timer(t_factor);
      lu_.factor(sys_.re.a, sys_.im.a);
    }
    ++factorizations_;
    if (health) health->recordFactorization(lu_.minAbsPivot(), lu_.pivotGrowth());
    obs::ScopedTimer solve_timer(t_solve);
    lu_.solve(sys_.b, x_);
  }
  if (tel) ++tel->lu_factorizations;
  if (health) recordResidual(*health);
  return x_;
}

void AcSession::recordResidual(obs::NumericalHealth& h) const {
  // Complex relative residual ||Ax - b||inf / ||b||inf of the solve that
  // just ran, with A = re + j*im recomposed from the assembly targets (the
  // factorizations hold permuted band/LU forms, not A itself).
  double b_inf = 0.0;
  for (const Complex& v : sys_.b) b_inf = std::max(b_inf, std::abs(v));
  double r_inf = 0.0;
  if (sparse_) {
    const auto& row_ptr = sp_re_.rowPtr();
    const auto& col_idx = sp_re_.colIdx();
    const auto& re_vals = sp_re_.values();
    const auto& im_vals = sp_im_.values();
    for (std::size_t r = 0; r < n_; ++r) {
      Complex acc = -sys_.b[r];
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
        acc += Complex(re_vals[k], im_vals[k]) * x_[col_idx[k]];
      r_inf = std::max(r_inf, std::abs(acc));
    }
  } else {
    for (std::size_t r = 0; r < n_; ++r) {
      Complex acc = -sys_.b[r];
      for (std::size_t c = 0; c < n_; ++c)
        acc += Complex(sys_.re.a(r, c), sys_.im.a(r, c)) * x_[c];
      r_inf = std::max(r_inf, std::abs(acc));
    }
  }
  h.collected = true;
  ++h.residual_checks;
  h.max_relative_residual =
      std::max(h.max_relative_residual, r_inf / (b_inf > 0.0 ? b_inf : 1.0));
}

Vector dcOperatingPoint(Circuit& circuit, int max_iter, double tol) {
  const std::size_t n = circuit.assignUnknowns();
  if (n == 0) throw std::invalid_argument("dcOperatingPoint: circuit has no unknowns");
  // Full linearized restamp about the iterate at t = 0 with a nominal
  // dt = 1 s: capacitor companions are inert before begin() (geq = 0, so
  // capacitors are DC-open), inductor companions make inductors stiff
  // near-shorts (branch voltage = i L / theta), and sources sit at their
  // t = 0 transient value. For linear circuits this converges in one
  // iteration; nonlinear devices stamp their Newton Jacobian + residual
  // exactly as in the transient loop.
  Vector x(n, 0.0);
  StampSystem sys;
  LuFactorization lu;
  for (int it = 0; it < max_iter; ++it) {
    sys.a = Matrix(n, n);
    sys.b.assign(n, 0.0);
    for (const auto& e : circuit.elements()) e->stamp(sys, x, 0.0, 1.0);
    lu.factor(sys.a);
    Vector x_new = lu.solve(sys.b);
    double delta = 0.0;
    for (std::size_t k = 0; k < n; ++k) delta = std::max(delta, std::abs(x_new[k] - x[k]));
    x = std::move(x_new);
    if (delta < tol) return x;
  }
  throw std::runtime_error("dcOperatingPoint: Newton did not converge");
}

}  // namespace fdtdmm
