#pragma once
/// \file pcb_scenario.h
/// The paper's Fig. 6/7 application: a 5 cm x 5 cm PCB with three coupled
/// L-shaped nets (top strips along x, bottom strips along y, joined by
/// vias), metallized on both sides, eps_r = 4.3 throughout the stack. The
/// innermost net is driven by the RBF driver macromodel and terminated by
/// the RBF receiver macromodel; the other four terminations are 50 ohm.
/// Optionally a theta-polarized Gaussian plane wave (2 kV/m, 9.2 GHz
/// bandwidth, theta = 90 deg, phi = 180 deg) impinges on the structure.

#include <memory>

#include "core/model_factory.h"
#include "signal/waveform.h"

namespace fdtdmm {

/// Scenario parameters; defaults reproduce the paper's setup (scaled mesh
/// margins are configurable for faster tests).
struct PcbScenario {
  std::string pattern = "010";
  double bit_time = 2e-9;
  double t_stop = 6e-9;
  double cell = 400e-6;          ///< uniform mesh size = strip width [m]
  std::size_t board_cells = 125; ///< 5 cm / 400 um
  std::size_t margin = 10;       ///< air cells around the board
  std::size_t strip_len = 100;   ///< 4 cm strips
  std::size_t net_pitch = 3;     ///< strip-to-strip pitch [cells]
  double eps_r = 4.3;
  double r_termination = 50.0;
  // Incident field.
  bool with_incident = false;
  double inc_amplitude = 2e3;        ///< [V/m]
  double inc_bandwidth = 9.2e9;      ///< [Hz]
  double inc_theta_deg = 90.0;
  double inc_phi_deg = 180.0;
};

/// Validates scenario options. runPcbScenario calls this before meshing.
/// \throws std::invalid_argument if pattern is empty, bit_time/t_stop/cell/
///         eps_r/r_termination are non-positive, mesh sizes are zero, the
///         strips do not fit on the board, or (with the incident field on)
///         inc_amplitude/inc_bandwidth are non-positive.
void validatePcbScenario(const PcbScenario& cfg);

/// Result: the active-line termination voltages (the series of Fig. 7)
/// plus the passive-net termination voltages (crosstalk victims).
struct PcbRun {
  Waveform v_near;  ///< driver termination
  Waveform v_far;   ///< receiver termination
  /// Voltages across the four 50-ohm terminations of the two passive nets,
  /// in builder order (net 0 top-strip end, net 0 bottom-strip end, net 2
  /// top, net 2 bottom). Near-end/far-end crosstalk analysis reads these.
  std::vector<Waveform> victims;
  int max_newton_iterations = 0;
  double wall_seconds = 0.0;
};

/// Runs the PCB field-coupling scenario on the 3D FDTD engine.
/// \throws std::invalid_argument on null models or inconsistent geometry.
PcbRun runPcbScenario(const PcbScenario& cfg,
                      std::shared_ptr<const RbfDriverModel> driver,
                      std::shared_ptr<const RbfReceiverModel> receiver);

}  // namespace fdtdmm
