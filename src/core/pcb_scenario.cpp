#include "core/pcb_scenario.h"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "fdtd/solver.h"
#include "rbf/driver_model.h"
#include "rbf/receiver_model.h"
#include "signal/linear_ports.h"
#include "signal/sources.h"

namespace fdtdmm {

void validatePcbScenario(const PcbScenario& cfg) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("PcbScenario: " + what);
  };
  if (cfg.pattern.empty()) fail("empty bit pattern");
  if (!(cfg.bit_time > 0.0)) fail("bit_time must be > 0");
  if (!(cfg.t_stop > 0.0)) fail("t_stop must be > 0");
  if (!(cfg.cell > 0.0)) fail("cell must be > 0");
  if (cfg.board_cells == 0 || cfg.strip_len == 0) fail("mesh sizes must be > 0");
  if (cfg.net_pitch == 0) fail("net_pitch must be > 0");
  if (!(cfg.eps_r > 0.0)) fail("eps_r must be > 0");
  if (!(cfg.r_termination > 0.0)) fail("r_termination must be > 0");
  if (cfg.board_cells < cfg.strip_len + 10) fail("board too small for strips");
  // The outermost net (n = 2) is offset by 2*net_pitch from the innermost;
  // its strips must still end on the board, not in the air margin.
  if ((cfg.board_cells - cfg.strip_len) / 2 + 2 * cfg.net_pitch + cfg.strip_len >
      cfg.board_cells)
    fail("net_pitch pushes the outer net past the board edge");
  if (cfg.with_incident) {
    if (!(cfg.inc_amplitude > 0.0)) fail("inc_amplitude must be > 0");
    if (!(cfg.inc_bandwidth > 0.0)) fail("inc_bandwidth must be > 0");
  }
}

PcbRun runPcbScenario(const PcbScenario& cfg,
                      std::shared_ptr<const RbfDriverModel> driver,
                      std::shared_ptr<const RbfReceiverModel> receiver) {
  validatePcbScenario(cfg);
  if (!driver || !receiver)
    throw std::invalid_argument("runPcbScenario: null device model");

  const auto start = std::chrono::steady_clock::now();
  const BitPattern pattern(cfg.pattern, cfg.bit_time);

  // --- Mesh: board of board_cells^2 x 3 dielectric layers (glue, signal,
  // glue; one cell each), metallized top and bottom, air margin around.
  const std::size_t m = cfg.margin;
  const std::size_t b = cfg.board_cells;
  GridSpec spec;
  spec.nx = b + 2 * m;
  spec.ny = b + 2 * m;
  spec.nz = 3 + 2 * m;
  spec.dx = spec.dy = spec.dz = cfg.cell;
  Grid3 grid(spec);

  const std::size_t i0 = m, i1 = m + b;   // board cell span in x
  const std::size_t j0 = m, j1 = m + b;   // and y
  const std::size_t k_bot = m;            // bottom metallization plane
  const std::size_t k_sb = m + 1;         // bottom-strip plane (signal layer bottom)
  const std::size_t k_st = m + 2;         // top-strip plane (signal layer top)
  const std::size_t k_top = m + 3;        // top metallization plane

  grid.setDielectricBox(i0, i1, j0, j1, k_bot, k_top, cfg.eps_r);
  grid.pecPlateZ(k_bot, i0, i1, j0, j1);
  grid.pecPlateZ(k_top, i0, i1, j0, j1);

  // --- Three L-shaped nets. Net n has its via at (iv_n, jv_n); the top
  // strip runs +x at y = jv_n, the bottom strip runs +y at x = iv_n. Vias
  // sit in the lower-left board quadrant so both strip arms fit.
  const std::size_t iv0 = m + (b - cfg.strip_len) / 2;
  const std::size_t jv_base = m + (b - cfg.strip_len) / 2;
  std::size_t drv_i = 0, drv_j = 0;  // driver edge (top strip far end)
  std::size_t rcv_i = 0, rcv_j = 0;  // receiver edge (bottom strip far end)
  struct Term {
    std::size_t i, j, k;
    int sign;
  };
  std::vector<Term> passive;

  for (std::size_t n = 0; n < 3; ++n) {
    const std::size_t iv = iv0 + n * cfg.net_pitch;
    const std::size_t jv = jv_base + n * cfg.net_pitch;
    // Top strip: plate [iv, iv+len) x [jv, jv+1) at k_st.
    grid.pecPlateZ(k_st, iv, iv + cfg.strip_len, jv, jv + 1);
    // Bottom strip: plate [iv, iv+1) x [jv, jv+len) at k_sb.
    grid.pecPlateZ(k_sb, iv, iv + 1, jv, jv + cfg.strip_len);
    // Via joining them (one Ez edge through the signal layer).
    grid.pecWireZ(iv, jv, k_sb, k_st);

    // Terminations: top strip end -> top plane (through the upper glue
    // layer); bottom strip end -> bottom plane (through the lower glue).
    const std::size_t it = iv + cfg.strip_len;  // top strip far-end node
    const std::size_t jb = jv + cfg.strip_len;  // bottom strip far-end node
    if (n == 1) {
      drv_i = it;
      drv_j = jv;
      rcv_i = iv;
      rcv_j = jb;
    } else {
      // Strip is the + terminal in both cases. Top terminations span
      // [k_st, k_top): v_cell = phi(strip) - phi(plane) -> sign +1.
      passive.push_back({it, jv, k_st, +1});
      // Bottom terminations span [k_bot, k_sb): v_cell = phi(plane) -
      // phi(strip) -> sign -1.
      passive.push_back({iv, jb, k_bot, -1});
    }
  }
  grid.bake();

  FdtdSolver solver(std::move(grid));

  if (cfg.with_incident) {
    const double sigma = gaussianSigmaForBandwidth(cfg.inc_bandwidth);
    // Launch the pulse so it is negligible everywhere at t = 0: the
    // earliest corner sees the peak after ~6 sigma plus the longest
    // propagation delay across the domain.
    const double lmax = static_cast<double>(spec.nx) * cfg.cell +
                        static_cast<double>(spec.ny) * cfg.cell;
    const double t0 = 6.0 * sigma + 0.0 * lmax;  // delays are >= 0 from the corner
    constexpr double deg = 3.14159265358979323846 / 180.0;
    PlaneWave wave(cfg.inc_theta_deg * deg, cfg.inc_phi_deg * deg,
                   cfg.inc_amplitude, gaussianPulseShape(t0, sigma));
    solver.setIncidentWave(wave);
  }

  LumpedPortSpec drv_spec;
  drv_spec.i = drv_i;
  drv_spec.j = drv_j;
  drv_spec.k = k_st;   // spans signal-top plane to top metallization
  drv_spec.sign = +1;  // strip (lower node) is the + terminal
  drv_spec.label = "driver";
  LumpedPort* drv_port =
      solver.addLumpedPort(drv_spec, std::make_shared<RbfDriverPort>(driver, pattern));

  LumpedPortSpec rcv_spec;
  rcv_spec.i = rcv_i;
  rcv_spec.j = rcv_j;
  rcv_spec.k = k_bot;  // spans bottom metallization to bottom strip
  rcv_spec.sign = -1;  // strip (upper node) is the + terminal
  rcv_spec.label = "receiver";
  LumpedPort* rcv_port =
      solver.addLumpedPort(rcv_spec, std::make_shared<RbfReceiverPort>(receiver));

  std::vector<LumpedPort*> victim_ports;
  for (std::size_t t = 0; t < passive.size(); ++t) {
    LumpedPortSpec ps;
    ps.i = passive[t].i;
    ps.j = passive[t].j;
    ps.k = passive[t].k;
    ps.sign = passive[t].sign;
    ps.label = "term" + std::to_string(t);
    victim_ports.push_back(
        solver.addLumpedPort(ps, std::make_shared<ResistorPort>(cfg.r_termination)));
  }

  solver.runUntil(cfg.t_stop);

  PcbRun run;
  run.v_near = drv_port->voltage();
  run.v_far = rcv_port->voltage();
  for (LumpedPort* vp : victim_ports) run.victims.push_back(vp->voltage());
  run.max_newton_iterations = solver.maxNewtonIterations();
  run.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  return run;
}

}  // namespace fdtdmm
