#pragma once
/// \file sim_task.h
/// Uniform run()-able task adapter over the hand-written scenarios. A
/// SimulationTask freezes one concrete scenario (t-line or PCB) plus the
/// engine that should run it and the names of the macromodels it needs, so
/// higher layers (the sweep engine in src/engine) can treat every workload
/// as "resolve models, call runSimulationTask, collect waveforms" without
/// knowing which main() used to hand-code it.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/pcb_scenario.h"
#include "core/tline_scenario.h"

namespace fdtdmm {

/// Which scenario family a task runs.
enum class TaskKind { kTline, kPcb };

/// Which engine runs a t-line task (PCB tasks always use the 3D solver).
/// The transistor-level reference engine is deliberately absent: tasks are
/// the macromodel-side workload the paper batches.
enum class TlineEngine { kSpiceRbf, kFdtd1d, kFdtd3d };

/// One concrete, self-contained simulation job.
struct SimulationTask {
  std::size_t index = 0;   ///< position in the sweep (stable result order)
  std::string label;       ///< human-readable parameter summary
  TaskKind kind = TaskKind::kTline;
  TlineEngine engine = TlineEngine::kFdtd1d;
  TlineScenario tline;     ///< used when kind == kTline
  PcbScenario pcb;         ///< used when kind == kPcb
  std::string driver = "default";    ///< model-cache component name
  std::string receiver = "default";  ///< model-cache component name
};

/// Uniform result shape across scenario families.
struct TaskWaveforms {
  Waveform v_near;  ///< driver-side termination voltage
  Waveform v_far;   ///< far-end termination voltage
  std::vector<Waveform> victims;  ///< PCB passive-net terminations (empty for t-line)
  int max_newton_iterations = 0;
  double wall_seconds = 0.0;
};

/// The bit pattern string / bit time / stop time the task transmits,
/// regardless of scenario family (metric layers need these).
const std::string& taskPattern(const SimulationTask& task);
double taskBitTime(const SimulationTask& task);
double taskTStop(const SimulationTask& task);

/// Whether running the task touches its receiver model (a t-line with a
/// linear RC far end never does). Model resolution and preloading must
/// agree on this, so it lives here, next to the task.
bool taskNeedsReceiver(const SimulationTask& task);

/// Validates the task's scenario options without running anything.
/// \throws std::invalid_argument on non-positive times/impedances/mesh sizes.
void validateSimulationTask(const SimulationTask& task);

/// Runs the task on its configured engine with already-resolved models.
/// Deterministic for fixed inputs (wall_seconds aside): the same task with
/// the same models produces bit-identical waveforms on every call, which is
/// what lets the sweep engine promise thread-count-independent results.
/// \throws std::invalid_argument on null models or invalid scenario options.
TaskWaveforms runSimulationTask(const SimulationTask& task,
                                std::shared_ptr<const RbfDriverModel> driver,
                                std::shared_ptr<const RbfReceiverModel> receiver);

}  // namespace fdtdmm
