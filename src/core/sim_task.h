#pragma once
/// \file sim_task.h
/// Uniform run()-able task over the open scenario API. A SimulationTask
/// freezes one fully-configured Scenario (any registered family) plus the
/// names of the macromodels it needs, so higher layers (the sweep engine in
/// src/engine) can treat every workload as "resolve models, run the
/// scenario, collect waveforms" without knowing which family it is. Sweep
/// expansion builds tasks from (scenario name, parameter bindings); nothing
/// above this line dispatches on a closed list of families.

#include <cstddef>
#include <memory>
#include <string>

#include "core/scenario.h"

namespace fdtdmm {

/// One concrete, self-contained simulation job.
struct SimulationTask {
  std::size_t index = 0;   ///< position in the sweep (stable result order)
  std::string label;       ///< human-readable parameter summary
  /// The frozen, validated workload. Immutable and shareable: run() is
  /// const and deterministic, so copies of a task are interchangeable.
  std::shared_ptr<const Scenario> scenario;
  std::string driver = "default";    ///< model-cache component name
  std::string receiver = "default";  ///< model-cache component name
};

/// Runs the task's scenario with already-resolved models. Deterministic for
/// fixed inputs (wall_seconds aside): the same task with the same models
/// produces bit-identical waveforms on every call, which is what lets the
/// sweep engine promise thread-count-independent results.
/// \throws std::invalid_argument on a task without a scenario, null
///         required models, or invalid scenario options.
TaskWaveforms runSimulationTask(const SimulationTask& task,
                                std::shared_ptr<const RbfDriverModel> driver,
                                std::shared_ptr<const RbfReceiverModel> receiver);

/// Sharing-aware variant: forwards `sharing` to the scenario's three-arg
/// run() so the transient engine can check solver state out of a
/// SolverStateProvider. Same determinism contract — for honest keys the
/// waveforms are bit-identical with the two-arg overload.
TaskWaveforms runSimulationTask(const SimulationTask& task,
                                std::shared_ptr<const RbfDriverModel> driver,
                                std::shared_ptr<const RbfReceiverModel> receiver,
                                const SolverSharing& sharing);

}  // namespace fdtdmm
