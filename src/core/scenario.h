#pragma once
/// \file scenario.h
/// Open scenario API: the polymorphic Scenario interface, its parameter
/// descriptor machinery, and the named ScenarioRegistry.
///
/// A Scenario is one *family* of simulation workloads (the paper's t-line
/// validation structure, the PCB field-coupling application, a coupled-line
/// crosstalk pair, ...). Each family declares its parameters through a
/// descriptor table (name, kind, allowed range, default), is configured
/// through the uniform `set(name, value)` interface, and knows how to run
/// itself against resolved macromodels. Higher layers — sweep expansion,
/// the parallel runner, metric export — never dispatch on a closed enum of
/// families: they see only this interface, so adding a workload family is
/// additive (implement Scenario, register a factory under a new name).
///
/// Determinism contract: a Scenario's run() must be a pure function of its
/// parameters and the supplied models (wall_seconds aside) — bit-identical
/// waveforms on every call — because the sweep engine promises worker-
/// count-independent exported metrics on top of it.

#include <cstddef>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "obs/telemetry.h"
#include "signal/waveform.h"

namespace fdtdmm {

struct RbfDriverModel;
struct RbfReceiverModel;
struct SolverSharing;

// ---------------------------------------------------------------------------
// Parameter values and descriptors
// ---------------------------------------------------------------------------

/// One scenario parameter value: a bool, a number (integers included), or a
/// string. The alternative order is part of the API (std::variant equality
/// compares the active alternative).
using ParamValue = std::variant<bool, double, std::string>;

/// What a descriptor accepts. kInt is stored as a double in ParamValue but
/// must be integral and is range-checked like kDouble.
enum class ParamKind { kBool, kInt, kDouble, kString };

/// Diagnostic name of a kind ("bool", "int", "double", "string").
const char* paramKindName(ParamKind kind);

/// Formats a double with printf %g — the one number convention shared by
/// task labels and error messages (families must use it in label() so a
/// format change cannot drift between them).
std::string formatDouble(double v);

/// Formats a value for labels and error messages (numbers via
/// formatDouble).
std::string formatParamValue(const ParamValue& value);

/// Declares one parameter of a scenario family.
struct ParamDescriptor {
  std::string name;
  ParamKind kind = ParamKind::kDouble;
  /// Numeric range, inclusive unless *_exclusive (kInt/kDouble only).
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();
  bool min_exclusive = false;
  bool max_exclusive = false;
  /// kString: allowed values; empty means any non-empty string.
  std::vector<std::string> choices;
  std::string doc;
};

// Descriptor shorthands for the common constraint shapes.
ParamDescriptor boolParam(std::string name, std::string doc);
ParamDescriptor intParam(std::string name, double min_value, std::string doc);
ParamDescriptor positiveParam(std::string name, std::string doc);     ///< double > 0
ParamDescriptor nonNegativeParam(std::string name, std::string doc);  ///< double >= 0
ParamDescriptor unboundedParam(std::string name, std::string doc);    ///< any double
ParamDescriptor stringParam(std::string name, std::vector<std::string> choices,
                            std::string doc);

/// Checks `value` against `desc` (kind match, range, integrality, choices).
/// \throws std::invalid_argument with a message prefixed by `scenario`.
void checkParamValue(const std::string& scenario, const ParamDescriptor& desc,
                     const ParamValue& value);

/// One (parameter name, value) assignment; the currency of scenario
/// configuration, sweep bases, and sweep axes.
struct ParamBinding {
  std::string param;
  ParamValue value;
};

// ---------------------------------------------------------------------------
// Scenario interface
// ---------------------------------------------------------------------------

/// Uniform result shape across scenario families. What v_near / v_far /
/// victims mean is documented per family; by convention v_far is the
/// waveform the metric layer analyzes (eye, overshoot, delay).
struct TaskWaveforms {
  Waveform v_near;  ///< driver-side observable
  Waveform v_far;   ///< the analyzed far-end observable
  std::vector<Waveform> victims;  ///< family-specific extra observables
  int max_newton_iterations = 0;
  double wall_seconds = 0.0;
  /// Solver telemetry aggregated over every transient this run performed
  /// (phase timings, LU/Newton counts — see obs/telemetry.h). Families
  /// running on non-MNA engines (e.g. the 1D/3D FDTD paths) leave the
  /// phases at zero. Purely informational: never part of the metric
  /// determinism contract.
  obs::RunTelemetry telemetry;
};

/// One configurable simulation workload family. See the file comment for
/// the openness and determinism contracts.
class Scenario {
 public:
  virtual ~Scenario() = default;

  /// Registry name of the family ("tline", "pcb", "crosstalk", ...).
  virtual const std::string& family() const = 0;

  /// Parameter table: every settable parameter with kind and range. Order
  /// is stable and part of the family's documented API.
  virtual const std::vector<ParamDescriptor>& descriptors() const = 0;

  /// Sets one parameter. \throws std::invalid_argument on an unknown name
  /// or a value that fails its descriptor's kind/range check.
  virtual void set(const std::string& param, const ParamValue& value) = 0;

  /// Reads one parameter back. \throws std::invalid_argument on unknown.
  virtual ParamValue get(const std::string& param) const = 0;

  /// Cross-field validation (per-parameter range checks already happened in
  /// set()): geometric consistency, load-dependent requirements, ...
  /// \throws std::invalid_argument on an unrunnable configuration.
  virtual void validate() const = 0;

  /// Deterministic human-readable parameter summary used as the task label.
  virtual std::string label() const = 0;

  /// The transmitted bit pattern / bit time / stop time (metric layers and
  /// the runner's eye analysis need these regardless of family).
  virtual std::string pattern() const = 0;
  virtual double bitTime() const = 0;
  virtual double tStop() const = 0;

  /// Whether run() touches the driver / receiver macromodels. Model
  /// resolution and preloading must agree with run() on these (a family
  /// that needs no macromodel at all overrides needsDriver to false).
  virtual bool needsDriver() const { return true; }
  virtual bool needsReceiver() const = 0;

  /// Solver-state sharing keys (see circuit/solver_state.h for the full
  /// correctness contract). Two configurations of a family may return the
  /// same structureKey() ONLY if their transients assemble bit-identical
  /// sparse patterns (same unknown count, same structural stamps), and the
  /// same numericBaseKey() ONLY if the assembled static base matrices are
  /// bit-identical — i.e. every parameter that reaches a static stamp or
  /// the solver setup is folded into the key (numbers via a round-trip-
  /// exact format, not %g). numericBaseKey() must refine structureKey():
  /// equal numeric keys imply equal structure keys. The default — empty
  /// keys — opts the family out of sharing entirely, which is always safe;
  /// families opt in per configuration (e.g. only for engines that run on
  /// the MNA transient solver).
  virtual std::string structureKey() const { return {}; }
  virtual std::string numericBaseKey() const { return {}; }

  /// Deep copy (sweep expansion clones a configured prototype per point).
  virtual std::unique_ptr<Scenario> clone() const = 0;

  /// Runs the workload with already-resolved models. `receiver` may be null
  /// when needsReceiver() is false.
  /// \throws std::invalid_argument on null required models or invalid
  ///         configuration.
  virtual TaskWaveforms run(std::shared_ptr<const RbfDriverModel> driver,
                            std::shared_ptr<const RbfReceiverModel> receiver) const = 0;

  /// Sharing-aware run: like run(), but the family threads `sharing` into
  /// its TransientOptions so structurally identical sweep corners can reuse
  /// one symbolic analysis / base factorization. The default ignores
  /// `sharing` and delegates to run() — correct (if reuse-free) for every
  /// family; families that emit non-empty keys override this too.
  /// Bit-identical-results contract: for honest keys, run(d, r) and
  /// run(d, r, sharing) produce identical waveforms.
  virtual TaskWaveforms run(std::shared_ptr<const RbfDriverModel> driver,
                            std::shared_ptr<const RbfReceiverModel> receiver,
                            const SolverSharing& /*sharing*/) const {
    return run(std::move(driver), std::move(receiver));
  }

  /// Descriptor lookup by name; nullptr when absent.
  const ParamDescriptor* findParam(const std::string& name) const;

  /// Applies a list of bindings in order (each via set()).
  void apply(const std::vector<ParamBinding>& bindings);
};

// ---------------------------------------------------------------------------
// ParamTable: descriptor-driven set/get for struct-backed families
// ---------------------------------------------------------------------------

/// Maps parameter names onto accessors of a family's config struct, with
/// the kind/range checks applied centrally. Families hold one static table
/// and delegate set()/get()/descriptors() to it.
template <typename Config>
class ParamTable {
 public:
  struct Entry {
    ParamDescriptor desc;
    ParamValue (*get)(const Config&);
    void (*set)(Config&, const ParamValue&);  ///< called after checkParamValue
  };

  ParamTable(std::string scenario, std::vector<Entry> entries)
      : scenario_(std::move(scenario)), entries_(std::move(entries)) {
    descs_.reserve(entries_.size());
    for (const Entry& e : entries_) descs_.push_back(e.desc);
  }

  const std::vector<ParamDescriptor>& descriptors() const { return descs_; }

  void set(Config& cfg, const std::string& name, const ParamValue& value) const {
    const Entry& e = find(name);
    checkParamValue(scenario_, e.desc, value);
    e.set(cfg, value);
  }

  ParamValue get(const Config& cfg, const std::string& name) const {
    return find(name).get(cfg);
  }

 private:
  const Entry& find(const std::string& name) const;

  std::string scenario_;
  std::vector<Entry> entries_;
  std::vector<ParamDescriptor> descs_;
};

/// \throws std::invalid_argument naming the scenario and the parameter.
[[noreturn]] void throwUnknownParam(const std::string& scenario,
                                    const std::string& param);

template <typename Config>
const typename ParamTable<Config>::Entry& ParamTable<Config>::find(
    const std::string& name) const {
  for (const Entry& e : entries_)
    if (e.desc.name == name) return e;
  throwUnknownParam(scenario_, name);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Thread-safe name -> factory map of scenario families. The process-wide
/// instance (global()) comes with the built-in families ("tline", "pcb",
/// "crosstalk", "emc") pre-registered; extensions add factories under new
/// names at startup and are immediately sweepable.
class ScenarioRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Scenario>()>;

  ScenarioRegistry() = default;

  /// Registers a family. \throws std::invalid_argument on a null factory,
  /// an empty name, or a name that is already registered (silent
  /// replacement would make sweep specs mean different things depending on
  /// link order).
  void add(const std::string& name, Factory factory);

  bool has(const std::string& name) const;

  /// Creates a fresh default-configured scenario.
  /// \throws std::invalid_argument on an unknown name (the message lists
  ///         the registered families).
  std::unique_ptr<Scenario> create(const std::string& name) const;

  /// Registered family names, sorted.
  std::vector<std::string> names() const;

  /// The process-wide registry with built-ins pre-registered.
  static ScenarioRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

}  // namespace fdtdmm
