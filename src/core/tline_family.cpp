#include "core/tline_family.h"

#include <stdexcept>

#include "circuit/transient.h"

namespace fdtdmm {

namespace {

double asNum(const ParamValue& v) { return std::get<double>(v); }
const std::string& asStr(const ParamValue& v) { return std::get<std::string>(v); }

}  // namespace

const char* tlineEngineName(TlineEngine engine) {
  switch (engine) {
    case TlineEngine::kSpiceRbf: return "spice-rbf";
    case TlineEngine::kFdtd1d: return "fdtd1d";
    case TlineEngine::kFdtd3d: return "fdtd3d";
  }
  return "?";
}

TlineEngine tlineEngineFromName(const std::string& name) {
  if (name == "spice-rbf") return TlineEngine::kSpiceRbf;
  if (name == "fdtd1d") return TlineEngine::kFdtd1d;
  if (name == "fdtd3d") return TlineEngine::kFdtd3d;
  throw std::invalid_argument("unknown t-line engine '" + name +
                              "' (valid: spice-rbf, fdtd1d, fdtd3d)");
}

const char* farEndLoadName(FarEndLoad load) {
  return load == FarEndLoad::kLinearRc ? "rc" : "receiver";
}

FarEndLoad farEndLoadFromName(const std::string& name) {
  if (name == "rc") return FarEndLoad::kLinearRc;
  if (name == "receiver") return FarEndLoad::kReceiver;
  throw std::invalid_argument("unknown far-end load '" + name +
                              "' (valid: rc, receiver)");
}

const ParamTable<TlineFamily>& TlineFamily::table() {
  using T = TlineFamily;
  static const ParamTable<T> t(
      "tline",
      {
          {stringParam("engine", {"spice-rbf", "fdtd1d", "fdtd3d"},
                       "solver that runs the task"),
           [](const T& s) { return ParamValue{std::string(tlineEngineName(s.engine_))}; },
           [](T& s, const ParamValue& v) { s.engine_ = tlineEngineFromName(asStr(v)); }},
          {stringParam("pattern", {}, "transmitted bit pattern"),
           [](const T& s) { return ParamValue{s.cfg_.pattern}; },
           [](T& s, const ParamValue& v) { s.cfg_.pattern = asStr(v); }},
          {positiveParam("bit_time", "bit time [s]"),
           [](const T& s) { return ParamValue{s.cfg_.bit_time}; },
           [](T& s, const ParamValue& v) { s.cfg_.bit_time = asNum(v); }},
          {positiveParam("t_stop", "simulated window [s]"),
           [](const T& s) { return ParamValue{s.cfg_.t_stop}; },
           [](T& s, const ParamValue& v) { s.cfg_.t_stop = asNum(v); }},
          {positiveParam("zc", "line characteristic impedance [ohm]"),
           [](const T& s) { return ParamValue{s.cfg_.zc}; },
           [](T& s, const ParamValue& v) { s.cfg_.zc = asNum(v); }},
          {positiveParam("td", "line delay [s]"),
           [](const T& s) { return ParamValue{s.cfg_.td}; },
           [](T& s, const ParamValue& v) { s.cfg_.td = asNum(v); }},
          {stringParam("load", {"rc", "receiver"}, "far-end termination kind"),
           [](const T& s) { return ParamValue{std::string(farEndLoadName(s.cfg_.load))}; },
           [](T& s, const ParamValue& v) { s.cfg_.load = farEndLoadFromName(asStr(v)); }},
          {positiveParam("load_r", "RC load shunt resistance [ohm]"),
           [](const T& s) { return ParamValue{s.cfg_.load_r}; },
           [](T& s, const ParamValue& v) { s.cfg_.load_r = asNum(v); }},
          {positiveParam("load_c", "RC load shunt capacitance [F]"),
           [](const T& s) { return ParamValue{s.cfg_.load_c}; },
           [](T& s, const ParamValue& v) { s.cfg_.load_c = asNum(v); }},
          {intParam("mesh_nx", 1.0, "3D mesh cells along x"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.mesh_nx)}; },
           [](T& s, const ParamValue& v) { s.cfg_.mesh_nx = static_cast<std::size_t>(asNum(v)); }},
          {intParam("mesh_ny", 1.0, "3D mesh cells along y"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.mesh_ny)}; },
           [](T& s, const ParamValue& v) { s.cfg_.mesh_ny = static_cast<std::size_t>(asNum(v)); }},
          {intParam("mesh_nz", 1.0, "3D mesh cells along z"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.mesh_nz)}; },
           [](T& s, const ParamValue& v) { s.cfg_.mesh_nz = static_cast<std::size_t>(asNum(v)); }},
          {positiveParam("mesh_delta", "uniform 3D cell size [m]"),
           [](const T& s) { return ParamValue{s.cfg_.mesh_delta}; },
           [](T& s, const ParamValue& v) { s.cfg_.mesh_delta = asNum(v); }},
          {intParam("strip_len", 1.0, "strip length [cells]; 1D FDTD cell count"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.strip_len)}; },
           [](T& s, const ParamValue& v) { s.cfg_.strip_len = static_cast<std::size_t>(asNum(v)); }},
          {intParam("strip_width", 1.0, "strip width [cells]"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.strip_width)}; },
           [](T& s, const ParamValue& v) { s.cfg_.strip_width = static_cast<std::size_t>(asNum(v)); }},
          {intParam("strip_gap", 1.0, "strip vertical separation [cells]"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.strip_gap)}; },
           [](T& s, const ParamValue& v) { s.cfg_.strip_gap = static_cast<std::size_t>(asNum(v)); }},
          {stringParam("solver", transientSolverModeNames(),
                       "MNA solver mode for the SPICE engines (FDTD engines ignore it)"),
           [](const T& s) { return ParamValue{s.cfg_.solver}; },
           [](T& s, const ParamValue& v) { s.cfg_.solver = asStr(v); }},
      });
  return t;
}

const std::string& TlineFamily::family() const {
  static const std::string name = "tline";
  return name;
}

const std::vector<ParamDescriptor>& TlineFamily::descriptors() const {
  return table().descriptors();
}

void TlineFamily::set(const std::string& param, const ParamValue& value) {
  table().set(*this, param, value);
}

ParamValue TlineFamily::get(const std::string& param) const {
  return table().get(*this, param);
}

void TlineFamily::validate() const { validateTlineScenario(cfg_); }

std::string TlineFamily::label() const {
  // Pre-redesign label format, byte for byte (pinned by the migration test).
  std::string label = std::string("tline/") + tlineEngineName(engine_) +
                      " pattern=" + cfg_.pattern + " bt=" + formatDouble(cfg_.bit_time) +
                      " zc=" + formatDouble(cfg_.zc) + " td=" + formatDouble(cfg_.td);
  if (cfg_.load == FarEndLoad::kLinearRc) {
    label += " load=rc r=" + formatDouble(cfg_.load_r) + " c=" + formatDouble(cfg_.load_c);
  } else {
    label += " load=receiver";
  }
  return label;
}

std::unique_ptr<Scenario> TlineFamily::clone() const {
  return std::make_unique<TlineFamily>(*this);
}

TaskWaveforms TlineFamily::run(std::shared_ptr<const RbfDriverModel> driver,
                               std::shared_ptr<const RbfReceiverModel> receiver) const {
  return run(std::move(driver), std::move(receiver), SolverSharing{});
}

TaskWaveforms TlineFamily::run(std::shared_ptr<const RbfDriverModel> driver,
                               std::shared_ptr<const RbfReceiverModel> receiver,
                               const SolverSharing& sharing) const {
  EngineRun er;
  switch (engine_) {
    case TlineEngine::kSpiceRbf:
      // 2e-12 is the engine's fixed default step (runSpiceRbfTline's dt
      // parameter); it is baked into numericBaseKey() below.
      er = runSpiceRbfTline(cfg_, std::move(driver), std::move(receiver), 2e-12,
                            sharing);
      break;
    case TlineEngine::kFdtd1d:
      er = runFdtd1dTline(cfg_, std::move(driver), std::move(receiver));
      break;
    case TlineEngine::kFdtd3d:
      er = runFdtd3dTline(cfg_, std::move(driver), std::move(receiver));
      break;
  }
  TaskWaveforms out;
  out.v_near = std::move(er.v_near);
  out.v_far = std::move(er.v_far);
  out.max_newton_iterations = er.max_newton_iterations;
  out.wall_seconds = er.wall_seconds;
  out.telemetry = er.telemetry;
  return out;
}

// pattern/bit_time/t_stop are RHS/run-length only; zc/td/load values reach
// the static base stamps, so they live in the numeric key. The fixed dt
// (2e-12, see run() above) is included literally so a future sweepable dt
// cannot silently collide classes.
std::string TlineFamily::structureKey() const {
  if (engine_ != TlineEngine::kSpiceRbf) return {};
  return std::string("tline|engine=spice-rbf|solver=") + cfg_.solver +
         "|load=" + farEndLoadName(cfg_.load);
}

std::string TlineFamily::numericBaseKey() const {
  if (engine_ != TlineEngine::kSpiceRbf) return {};
  std::string key = structureKey() + "|dt=" + solverKeyNum(2e-12) +
                    "|zc=" + solverKeyNum(cfg_.zc) + "|td=" + solverKeyNum(cfg_.td);
  if (cfg_.load == FarEndLoad::kLinearRc) {
    key += "|lr=" + solverKeyNum(cfg_.load_r) + "|lc=" + solverKeyNum(cfg_.load_c);
  }
  return key;
}

std::vector<ParamBinding> tlineParams(const TlineScenario& cfg, TlineEngine engine) {
  return {
      {"engine", std::string(tlineEngineName(engine))},
      {"pattern", cfg.pattern},
      {"bit_time", cfg.bit_time},
      {"t_stop", cfg.t_stop},
      {"zc", cfg.zc},
      {"td", cfg.td},
      {"load", std::string(farEndLoadName(cfg.load))},
      {"load_r", cfg.load_r},
      {"load_c", cfg.load_c},
      {"mesh_nx", static_cast<double>(cfg.mesh_nx)},
      {"mesh_ny", static_cast<double>(cfg.mesh_ny)},
      {"mesh_nz", static_cast<double>(cfg.mesh_nz)},
      {"mesh_delta", cfg.mesh_delta},
      {"strip_len", static_cast<double>(cfg.strip_len)},
      {"strip_width", static_cast<double>(cfg.strip_width)},
      {"strip_gap", static_cast<double>(cfg.strip_gap)},
  };
}

}  // namespace fdtdmm
