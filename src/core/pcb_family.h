#pragma once
/// \file pcb_family.h
/// The "pcb" scenario family: the paper's Fig. 6/7 field-coupling board
/// (pcb_scenario.h) behind the open Scenario interface.
///
/// Parameters (see descriptors() for kinds and ranges):
///   pattern, bit_time, t_stop, cell, board_cells, margin, strip_len,
///   net_pitch, eps_r, r_termination, with_incident, inc_amplitude,
///   inc_bandwidth, inc_theta_deg, inc_phi_deg.
///
/// Waveform mapping: v_near/v_far are the driver/receiver terminations of
/// the active net; victims holds the four passive-net termination voltages
/// in builder order.

#include "core/pcb_scenario.h"
#include "core/scenario.h"

namespace fdtdmm {

class PcbFamily final : public Scenario {
 public:
  PcbFamily() = default;
  explicit PcbFamily(const PcbScenario& cfg) : cfg_(cfg) {}

  const std::string& family() const override;
  const std::vector<ParamDescriptor>& descriptors() const override;
  void set(const std::string& param, const ParamValue& value) override;
  ParamValue get(const std::string& param) const override;
  void validate() const override;
  std::string label() const override;
  std::string pattern() const override { return cfg_.pattern; }
  double bitTime() const override { return cfg_.bit_time; }
  double tStop() const override { return cfg_.t_stop; }
  bool needsReceiver() const override { return true; }
  std::unique_ptr<Scenario> clone() const override;
  TaskWaveforms run(std::shared_ptr<const RbfDriverModel> driver,
                    std::shared_ptr<const RbfReceiverModel> receiver) const override;

  const PcbScenario& config() const { return cfg_; }

 private:
  static const ParamTable<PcbFamily>& table();

  PcbScenario cfg_;
};

/// The family's full parameter map for a typed config (migration shim).
std::vector<ParamBinding> pcbParams(const PcbScenario& cfg);

}  // namespace fdtdmm
