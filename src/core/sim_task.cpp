#include "core/sim_task.h"

#include <stdexcept>

namespace fdtdmm {

TaskWaveforms runSimulationTask(const SimulationTask& task,
                                std::shared_ptr<const RbfDriverModel> driver,
                                std::shared_ptr<const RbfReceiverModel> receiver) {
  if (!task.scenario)
    throw std::invalid_argument("runSimulationTask: task has no scenario");
  return task.scenario->run(std::move(driver), std::move(receiver));
}

TaskWaveforms runSimulationTask(const SimulationTask& task,
                                std::shared_ptr<const RbfDriverModel> driver,
                                std::shared_ptr<const RbfReceiverModel> receiver,
                                const SolverSharing& sharing) {
  if (!task.scenario)
    throw std::invalid_argument("runSimulationTask: task has no scenario");
  return task.scenario->run(std::move(driver), std::move(receiver), sharing);
}

}  // namespace fdtdmm
