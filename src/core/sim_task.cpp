#include "core/sim_task.h"

#include <stdexcept>

namespace fdtdmm {

const std::string& taskPattern(const SimulationTask& task) {
  return task.kind == TaskKind::kTline ? task.tline.pattern : task.pcb.pattern;
}

double taskBitTime(const SimulationTask& task) {
  return task.kind == TaskKind::kTline ? task.tline.bit_time : task.pcb.bit_time;
}

double taskTStop(const SimulationTask& task) {
  return task.kind == TaskKind::kTline ? task.tline.t_stop : task.pcb.t_stop;
}

bool taskNeedsReceiver(const SimulationTask& task) {
  return task.kind == TaskKind::kPcb || task.tline.load == FarEndLoad::kReceiver;
}

void validateSimulationTask(const SimulationTask& task) {
  if (task.kind == TaskKind::kTline) {
    validateTlineScenario(task.tline);
  } else {
    validatePcbScenario(task.pcb);
  }
}

TaskWaveforms runSimulationTask(const SimulationTask& task,
                                std::shared_ptr<const RbfDriverModel> driver,
                                std::shared_ptr<const RbfReceiverModel> receiver) {
  TaskWaveforms out;
  if (task.kind == TaskKind::kTline) {
    EngineRun run;
    switch (task.engine) {
      case TlineEngine::kSpiceRbf:
        run = runSpiceRbfTline(task.tline, driver, receiver);
        break;
      case TlineEngine::kFdtd1d:
        run = runFdtd1dTline(task.tline, driver, receiver);
        break;
      case TlineEngine::kFdtd3d:
        run = runFdtd3dTline(task.tline, driver, receiver);
        break;
    }
    out.v_near = std::move(run.v_near);
    out.v_far = std::move(run.v_far);
    out.max_newton_iterations = run.max_newton_iterations;
    out.wall_seconds = run.wall_seconds;
  } else {
    PcbRun run = runPcbScenario(task.pcb, driver, receiver);
    out.v_near = std::move(run.v_near);
    out.v_far = std::move(run.v_far);
    out.victims = std::move(run.victims);
    out.max_newton_iterations = run.max_newton_iterations;
    out.wall_seconds = run.wall_seconds;
  }
  return out;
}

}  // namespace fdtdmm
