#include "core/model_factory.h"

#include <mutex>

#include "devices/training.h"
#include "rbf/identification.h"
#include "signal/sources.h"

namespace fdtdmm {

RbfDriverModel buildDriverMacromodel(const CmosDriverParams& device,
                                     const DriverIdentOptions& opt) {
  // --- Fixed-state submodels from multilevel forced-port records.
  MultilevelOptions mo;
  mo.v_min = opt.v_min;
  mo.v_max = opt.v_max;
  mo.seed = opt.seed;
  const Waveform v_force = multilevelRandom(opt.excitation_span, opt.ts / 4.0, mo);

  RecordingOptions ro;
  ro.dt = opt.ts / 8.0;
  const PortRecord rec_hi =
      resampleRecord(recordDriverFixedState(device, true, v_force, ro), opt.ts);
  const PortRecord rec_lo =
      resampleRecord(recordDriverFixedState(device, false, v_force, ro), opt.ts);

  SubmodelFitOptions so;
  so.order = opt.order;
  so.centers = opt.centers;
  so.seed = opt.seed;
  auto up = fitGaussianSubmodel(rec_hi.v, rec_hi.i, so);
  so.seed = opt.seed + 1;
  auto down = fitGaussianSubmodel(rec_lo.v, rec_lo.i, so);

  // --- Switching weights from two loaded '010' transitions.
  const BitPattern pattern("010", opt.bit_time);
  const TimeFn logic = [pattern](double t) {
    return static_cast<double>(pattern.levelAt(t));
  };
  const double t_stop = opt.bit_time * static_cast<double>(pattern.size());
  const PortRecord sw1 = resampleRecord(
      recordDriverWithLoad(device, logic, opt.r_load_1, 0.0, t_stop, ro), opt.ts);
  const PortRecord sw2 = resampleRecord(
      recordDriverWithLoad(device, logic, opt.r_load_2, device.vdd, t_stop, ro),
      opt.ts);

  RbfDriverModel model;
  model.weights = extractSwitchingWeights(*up, *down, sw1.v, sw1.i, sw2.v, sw2.i,
                                          pattern);
  model.up = std::move(up);
  model.down = std::move(down);
  model.ts = opt.ts;
  model.vdd = device.vdd;
  return model;
}

RbfReceiverModel buildReceiverMacromodel(const CmosReceiverParams& device,
                                         const ReceiverIdentOptions& opt) {
  // Linear-range excitation: stays inside [0.1, vdd - 0.1].
  MultilevelOptions lin;
  lin.v_min = 0.1;
  lin.v_max = device.vdd - 0.1;
  lin.seed = opt.seed;
  const Waveform v_lin_f = multilevelRandom(opt.excitation_span, opt.ts / 4.0, lin);

  // Full-range excitation: exercises both protection clamps.
  MultilevelOptions full;
  full.v_min = -1.0;
  full.v_max = device.vdd + 1.0;
  full.seed = opt.seed + 7;
  const Waveform v_full_f = multilevelRandom(opt.excitation_span, opt.ts / 4.0, full);

  RecordingOptions ro;
  ro.dt = opt.ts / 8.0;
  const PortRecord rec_lin = resampleRecord(recordReceiverForced(device, v_lin_f, ro), opt.ts);
  const PortRecord rec_full = resampleRecord(recordReceiverForced(device, v_full_f, ro), opt.ts);

  ReceiverFitOptions fo;
  fo.order = opt.order;
  fo.centers = opt.centers;
  fo.v_margin = opt.v_margin;
  fo.seed = opt.seed;
  return fitReceiverModel(rec_lin.v, rec_lin.i, rec_full.v, rec_full.i, device.vdd, fo);
}

namespace {
std::once_flag g_driver_once;
std::once_flag g_receiver_once;
std::shared_ptr<const RbfDriverModel> g_driver_model;
std::shared_ptr<const RbfReceiverModel> g_receiver_model;
}  // namespace

const CmosDriverParams& defaultDriverDevice() {
  static const CmosDriverParams params{};
  return params;
}

const CmosReceiverParams& defaultReceiverDevice() {
  static const CmosReceiverParams params{};
  return params;
}

std::shared_ptr<const RbfDriverModel> defaultDriverModel() {
  std::call_once(g_driver_once, [] {
    g_driver_model = std::make_shared<const RbfDriverModel>(
        buildDriverMacromodel(defaultDriverDevice()));
  });
  return g_driver_model;
}

std::shared_ptr<const RbfReceiverModel> defaultReceiverModel() {
  std::call_once(g_receiver_once, [] {
    g_receiver_model = std::make_shared<const RbfReceiverModel>(
        buildReceiverMacromodel(defaultReceiverDevice()));
  });
  return g_receiver_model;
}

}  // namespace fdtdmm
