#pragma once
/// \file tline_scenario.h
/// The paper's validation structure (Section 4, Figs. 3-5): a two-strip
/// transmission line (Zc ~ 131 ohm, Td ~ 0.4 ns) driven by the macromodeled
/// CMOS driver forcing a '010' pattern at 2 ns bit time, with either a
/// linear RC far-end load (1 pF || 500 ohm, Fig. 4) or the macromodeled
/// receiver (Fig. 5). Four engines produce the same two termination
/// waveforms:
///   (i)   SPICE + transistor-level devices + ideal line,
///   (ii)  SPICE + RBF macromodels + ideal line,
///   (iii) 1D FDTD line + RBF macromodels,
///   (iv)  3D FDTD full-wave + RBF macromodels.

#include <memory>

#include "core/model_factory.h"
#include "obs/telemetry.h"
#include "signal/bit_pattern.h"
#include "signal/waveform.h"

namespace fdtdmm {

struct SolverSharing;

/// Far-end termination selector (Fig. 4 vs Fig. 5).
enum class FarEndLoad { kLinearRc, kReceiver };

/// Scenario parameters; defaults reproduce the paper's setup.
struct TlineScenario {
  std::string pattern = "010";
  double bit_time = 2e-9;    ///< [s]
  double t_stop = 5e-9;      ///< plot window [s]
  double zc = 131.0;         ///< line characteristic impedance [ohm]
  double td = 0.4e-9;        ///< line delay [s]
  FarEndLoad load = FarEndLoad::kLinearRc;
  double load_r = 500.0;     ///< Fig. 4 shunt resistor [ohm]
  double load_c = 1e-12;     ///< Fig. 4 shunt capacitor [F]
  // 3D mesh parameters (Fig. 3 structure).
  std::size_t mesh_nx = 180, mesh_ny = 24, mesh_nz = 23;
  double mesh_delta = 0.723e-3;  ///< uniform cell size [m]
  std::size_t strip_len = 160;   ///< strip length [cells]
  std::size_t strip_width = 4;   ///< strip width [cells]
  std::size_t strip_gap = 3;     ///< vertical separation [cells]
  /// MNA solver mode name for the SPICE engines (i)/(ii) — "reuse_lu",
  /// "full_restamp" or "sparse" (transientSolverModeFromName). The FDTD
  /// engines ignore it.
  std::string solver = "reuse_lu";
};

/// Validates scenario options. Every engine entry point calls this before
/// building anything, so bad options fail fast instead of producing NaNs or
/// hanging in a degenerate mesh.
/// \throws std::invalid_argument if pattern is empty, bit_time/t_stop/zc/
///         td/mesh_delta are non-positive, any mesh dimension or strip size
///         is zero, or the strip does not fit inside the mesh.
void validateTlineScenario(const TlineScenario& cfg);

/// Result of one engine run on the scenario.
struct EngineRun {
  Waveform v_near;  ///< driver-side termination voltage
  Waveform v_far;   ///< far-end termination voltage
  int max_newton_iterations = 0;
  double wall_seconds = 0.0;
  /// Solver telemetry for this run (obs/telemetry.h). The MNA engines
  /// (i)/(ii) fill the phase timings; the FDTD engines (iii)/(iv) leave
  /// them at zero.
  obs::RunTelemetry telemetry;
};

/// Engine (i): transistor-level SPICE reference.
EngineRun runSpiceTransistorTline(const TlineScenario& cfg,
                                  const CmosDriverParams& driver,
                                  const CmosReceiverParams& receiver,
                                  double dt = 2e-12);

/// Engine (ii): SPICE with RBF macromodels.
EngineRun runSpiceRbfTline(const TlineScenario& cfg,
                           std::shared_ptr<const RbfDriverModel> driver,
                           std::shared_ptr<const RbfReceiverModel> receiver,
                           double dt = 2e-12);

/// Sharing-aware variant of engine (ii): threads `sharing` into the
/// TransientOptions (see circuit/solver_state.h). Bit-identical waveforms
/// either way for honest keys.
EngineRun runSpiceRbfTline(const TlineScenario& cfg,
                           std::shared_ptr<const RbfDriverModel> driver,
                           std::shared_ptr<const RbfReceiverModel> receiver,
                           double dt, const SolverSharing& sharing);

/// Engine (iii): 1D FDTD with RBF macromodels.
EngineRun runFdtd1dTline(const TlineScenario& cfg,
                         std::shared_ptr<const RbfDriverModel> driver,
                         std::shared_ptr<const RbfReceiverModel> receiver);

/// Engine (iv): 3D FDTD full-wave with RBF macromodels.
EngineRun runFdtd3dTline(const TlineScenario& cfg,
                         std::shared_ptr<const RbfDriverModel> driver,
                         std::shared_ptr<const RbfReceiverModel> receiver);

}  // namespace fdtdmm
