#include "core/scenario.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/crosstalk_scenario.h"
#include "core/pcb_family.h"
#include "core/tline_family.h"
#include "emc/emc_scenario.h"
#include "freq/ac_family.h"

namespace fdtdmm {

const char* paramKindName(ParamKind kind) {
  switch (kind) {
    case ParamKind::kBool: return "bool";
    case ParamKind::kInt: return "int";
    case ParamKind::kDouble: return "double";
    case ParamKind::kString: return "string";
  }
  return "?";
}

std::string formatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string formatParamValue(const ParamValue& value) {
  if (std::holds_alternative<bool>(value))
    return std::get<bool>(value) ? "true" : "false";
  if (std::holds_alternative<double>(value))
    return formatDouble(std::get<double>(value));
  return std::get<std::string>(value);
}

ParamDescriptor boolParam(std::string name, std::string doc) {
  ParamDescriptor d;
  d.name = std::move(name);
  d.kind = ParamKind::kBool;
  d.doc = std::move(doc);
  return d;
}

ParamDescriptor intParam(std::string name, double min_value, std::string doc) {
  ParamDescriptor d;
  d.name = std::move(name);
  d.kind = ParamKind::kInt;
  d.min_value = min_value;
  // Keep every accepted value exactly representable and safely castable to
  // the integer config fields (static_cast from a double above the target
  // range would be undefined behavior).
  d.max_value = 9007199254740992.0;  // 2^53
  d.doc = std::move(doc);
  return d;
}

ParamDescriptor positiveParam(std::string name, std::string doc) {
  ParamDescriptor d;
  d.name = std::move(name);
  d.min_value = 0.0;
  d.min_exclusive = true;
  d.doc = std::move(doc);
  return d;
}

ParamDescriptor nonNegativeParam(std::string name, std::string doc) {
  ParamDescriptor d;
  d.name = std::move(name);
  d.min_value = 0.0;
  d.doc = std::move(doc);
  return d;
}

ParamDescriptor unboundedParam(std::string name, std::string doc) {
  ParamDescriptor d;
  d.name = std::move(name);
  d.doc = std::move(doc);
  return d;
}

ParamDescriptor stringParam(std::string name, std::vector<std::string> choices,
                            std::string doc) {
  ParamDescriptor d;
  d.name = std::move(name);
  d.kind = ParamKind::kString;
  d.choices = std::move(choices);
  d.doc = std::move(doc);
  return d;
}

void checkParamValue(const std::string& scenario, const ParamDescriptor& desc,
                     const ParamValue& value) {
  auto fail = [&](const std::string& what) {
    throw std::invalid_argument("scenario '" + scenario + "': parameter '" +
                                desc.name + "' " + what);
  };
  switch (desc.kind) {
    case ParamKind::kBool:
      if (!std::holds_alternative<bool>(value)) fail("expects a bool value");
      return;
    case ParamKind::kString: {
      if (!std::holds_alternative<std::string>(value))
        fail("expects a string value");
      const std::string& s = std::get<std::string>(value);
      if (desc.choices.empty()) {
        if (s.empty()) fail("must not be empty");
        return;
      }
      for (const std::string& c : desc.choices)
        if (c == s) return;
      std::string allowed;
      for (const std::string& c : desc.choices)
        allowed += (allowed.empty() ? "" : ", ") + c;
      fail("must be one of {" + allowed + "} (got '" + s + "')");
      return;
    }
    case ParamKind::kInt:
    case ParamKind::kDouble: {
      if (!std::holds_alternative<double>(value)) fail("expects a numeric value");
      const double v = std::get<double>(value);
      if (!std::isfinite(v)) fail("must be finite");
      if (desc.kind == ParamKind::kInt && v != std::floor(v))
        fail("must be an integer (got " + formatParamValue(value) + ")");
      const bool below =
          desc.min_exclusive ? !(v > desc.min_value) : !(v >= desc.min_value);
      if (below)
        fail(std::string("must be ") + (desc.min_exclusive ? "> " : ">= ") +
             formatParamValue(ParamValue{desc.min_value}) + " (got " +
             formatParamValue(value) + ")");
      const bool above =
          desc.max_exclusive ? !(v < desc.max_value) : !(v <= desc.max_value);
      if (above)
        fail(std::string("must be ") + (desc.max_exclusive ? "< " : "<= ") +
             formatParamValue(ParamValue{desc.max_value}) + " (got " +
             formatParamValue(value) + ")");
      return;
    }
  }
}

const ParamDescriptor* Scenario::findParam(const std::string& name) const {
  for (const ParamDescriptor& d : descriptors())
    if (d.name == name) return &d;
  return nullptr;
}

void Scenario::apply(const std::vector<ParamBinding>& bindings) {
  for (const ParamBinding& b : bindings) set(b.param, b.value);
}

void throwUnknownParam(const std::string& scenario, const std::string& param) {
  throw std::invalid_argument("scenario '" + scenario + "' has no parameter '" +
                              param + "'");
}

void ScenarioRegistry::add(const std::string& name, Factory factory) {
  if (name.empty())
    throw std::invalid_argument("ScenarioRegistry: empty family name");
  if (!factory)
    throw std::invalid_argument("ScenarioRegistry: null factory for '" + name + "'");
  std::lock_guard<std::mutex> lock(mu_);
  if (!factories_.emplace(name, std::move(factory)).second)
    throw std::invalid_argument("ScenarioRegistry: family '" + name +
                                "' is already registered");
}

bool ScenarioRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) != 0;
}

std::unique_ptr<Scenario> ScenarioRegistry::create(const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [n, f] : factories_)
        known += (known.empty() ? "" : ", ") + n;
      throw std::invalid_argument("ScenarioRegistry: unknown scenario '" + name +
                                  "' (registered: " + known + ")");
    }
    factory = it->second;
  }
  auto scenario = factory();
  if (!scenario)
    throw std::runtime_error("ScenarioRegistry: factory for '" + name +
                             "' returned null");
  return scenario;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) out.push_back(n);
  return out;
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* instance = [] {
    auto* r = new ScenarioRegistry();
    r->add("tline", [] { return std::make_unique<TlineFamily>(); });
    r->add("pcb", [] { return std::make_unique<PcbFamily>(); });
    r->add("crosstalk", [] { return std::make_unique<CrosstalkFamily>(); });
    r->add("emc", [] { return std::make_unique<EmcFamily>(); });
    r->add("ac", [] { return std::make_unique<AcFamily>(); });
    return r;
  }();
  return *instance;
}

}  // namespace fdtdmm
