#pragma once
/// \file model_factory.h
/// End-to-end macromodel production: runs the transistor-level devices
/// (src/devices) through the identification pipeline (src/rbf) to produce
/// ready-to-use RBF driver/receiver macromodels. This is the "parameters
/// are computed only once through a rigorous identification procedure and
/// are used for all subsequent simulations" workflow of the paper.

#include <cstdint>
#include <memory>

#include "devices/cmos_driver.h"
#include "rbf/driver_model.h"
#include "rbf/receiver_model.h"

namespace fdtdmm {

/// Identification configuration for the driver macromodel.
struct DriverIdentOptions {
  /// Model sampling time Ts [s]. Chosen against the device's dynamic
  /// features (pad RC ~ 30 ps, pre-driver ~ 30 ps), per Section 2 of the
  /// paper.
  double ts = 25e-12;
  int order = 2;               ///< regressor depth r
  std::size_t centers = 45;    ///< Gaussian centers per submodel
  double excitation_span = 60e-9;  ///< length of the multilevel training signal
  double v_min = -0.6;         ///< excitation range (beyond the rails, to
  double v_max = 2.4;          ///<   cover reflections and clamp action)
  double r_load_1 = 75.0;      ///< switching record load 1 (to ground)
  double r_load_2 = 150.0;     ///< switching record load 2 (to Vdd)
  double bit_time = 2e-9;      ///< switching record bit time
  std::uint64_t seed = 2024;
};

/// Identifies the two fixed-state submodels and the switching weights of a
/// driver from transistor-level simulations. Deterministic for fixed
/// options.
RbfDriverModel buildDriverMacromodel(const CmosDriverParams& device,
                                     const DriverIdentOptions& opt = {});

/// Identification configuration for the receiver macromodel.
struct ReceiverIdentOptions {
  /// Model sampling time Ts [s]. The receiver input pole (r_series * c_in
  /// ~ 5 ps) must be resolved, or the discrete model aliases it into a
  /// Nyquist-rate pole that the Eq. (13) resampling cannot represent.
  double ts = 10e-12;
  int order = 2;
  std::size_t centers = 30;
  double excitation_span = 60e-9;
  double v_margin = 0.2;  ///< clamp mask band [V]
  std::uint64_t seed = 3025;
};

/// Identifies the Eq. (6) receiver macromodel from transistor-level
/// simulations.
RbfReceiverModel buildReceiverMacromodel(const CmosReceiverParams& device,
                                         const ReceiverIdentOptions& opt = {});

/// Lazily built, cached default models (the identification takes a couple
/// of seconds; tests and benches share one instance).
std::shared_ptr<const RbfDriverModel> defaultDriverModel();
std::shared_ptr<const RbfReceiverModel> defaultReceiverModel();

/// The default transistor-level device parameters behind the cached models.
const CmosDriverParams& defaultDriverDevice();
const CmosReceiverParams& defaultReceiverDevice();

}  // namespace fdtdmm
