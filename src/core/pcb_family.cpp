#include "core/pcb_family.h"


namespace fdtdmm {

namespace {

double asNum(const ParamValue& v) { return std::get<double>(v); }

}  // namespace

const ParamTable<PcbFamily>& PcbFamily::table() {
  using T = PcbFamily;
  static const ParamTable<T> t(
      "pcb",
      {
          {stringParam("pattern", {}, "transmitted bit pattern"),
           [](const T& s) { return ParamValue{s.cfg_.pattern}; },
           [](T& s, const ParamValue& v) { s.cfg_.pattern = std::get<std::string>(v); }},
          {positiveParam("bit_time", "bit time [s]"),
           [](const T& s) { return ParamValue{s.cfg_.bit_time}; },
           [](T& s, const ParamValue& v) { s.cfg_.bit_time = asNum(v); }},
          {positiveParam("t_stop", "simulated window [s]"),
           [](const T& s) { return ParamValue{s.cfg_.t_stop}; },
           [](T& s, const ParamValue& v) { s.cfg_.t_stop = asNum(v); }},
          {positiveParam("cell", "uniform mesh size [m]"),
           [](const T& s) { return ParamValue{s.cfg_.cell}; },
           [](T& s, const ParamValue& v) { s.cfg_.cell = asNum(v); }},
          {intParam("board_cells", 1.0, "board edge length [cells]"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.board_cells)}; },
           [](T& s, const ParamValue& v) { s.cfg_.board_cells = static_cast<std::size_t>(asNum(v)); }},
          {intParam("margin", 0.0, "air cells around the board"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.margin)}; },
           [](T& s, const ParamValue& v) { s.cfg_.margin = static_cast<std::size_t>(asNum(v)); }},
          {intParam("strip_len", 1.0, "net strip length [cells]"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.strip_len)}; },
           [](T& s, const ParamValue& v) { s.cfg_.strip_len = static_cast<std::size_t>(asNum(v)); }},
          {intParam("net_pitch", 1.0, "strip-to-strip pitch [cells]"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.net_pitch)}; },
           [](T& s, const ParamValue& v) { s.cfg_.net_pitch = static_cast<std::size_t>(asNum(v)); }},
          {positiveParam("eps_r", "board relative permittivity"),
           [](const T& s) { return ParamValue{s.cfg_.eps_r}; },
           [](T& s, const ParamValue& v) { s.cfg_.eps_r = asNum(v); }},
          {positiveParam("r_termination", "passive-net termination [ohm]"),
           [](const T& s) { return ParamValue{s.cfg_.r_termination}; },
           [](T& s, const ParamValue& v) { s.cfg_.r_termination = asNum(v); }},
          {boolParam("with_incident", "plane-wave illumination on/off"),
           [](const T& s) { return ParamValue{s.cfg_.with_incident}; },
           [](T& s, const ParamValue& v) { s.cfg_.with_incident = std::get<bool>(v); }},
          {positiveParam("inc_amplitude", "incident field amplitude [V/m]"),
           [](const T& s) { return ParamValue{s.cfg_.inc_amplitude}; },
           [](T& s, const ParamValue& v) { s.cfg_.inc_amplitude = asNum(v); }},
          {positiveParam("inc_bandwidth", "incident pulse bandwidth [Hz]"),
           [](const T& s) { return ParamValue{s.cfg_.inc_bandwidth}; },
           [](T& s, const ParamValue& v) { s.cfg_.inc_bandwidth = asNum(v); }},
          {unboundedParam("inc_theta_deg", "incidence polar angle [deg]"),
           [](const T& s) { return ParamValue{s.cfg_.inc_theta_deg}; },
           [](T& s, const ParamValue& v) { s.cfg_.inc_theta_deg = asNum(v); }},
          {unboundedParam("inc_phi_deg", "incidence azimuth [deg]"),
           [](const T& s) { return ParamValue{s.cfg_.inc_phi_deg}; },
           [](T& s, const ParamValue& v) { s.cfg_.inc_phi_deg = asNum(v); }},
      });
  return t;
}

const std::string& PcbFamily::family() const {
  static const std::string name = "pcb";
  return name;
}

const std::vector<ParamDescriptor>& PcbFamily::descriptors() const {
  return table().descriptors();
}

void PcbFamily::set(const std::string& param, const ParamValue& value) {
  table().set(*this, param, value);
}

ParamValue PcbFamily::get(const std::string& param) const {
  return table().get(*this, param);
}

void PcbFamily::validate() const { validatePcbScenario(cfg_); }

std::string PcbFamily::label() const {
  // Pre-redesign label format, byte for byte (pinned by the migration test).
  return "pcb pattern=" + cfg_.pattern + " bt=" + formatDouble(cfg_.bit_time) +
         " incident=" + (cfg_.with_incident ? "on" : "off");
}

std::unique_ptr<Scenario> PcbFamily::clone() const {
  return std::make_unique<PcbFamily>(*this);
}

TaskWaveforms PcbFamily::run(std::shared_ptr<const RbfDriverModel> driver,
                             std::shared_ptr<const RbfReceiverModel> receiver) const {
  PcbRun pr = runPcbScenario(cfg_, std::move(driver), std::move(receiver));
  TaskWaveforms out;
  out.v_near = std::move(pr.v_near);
  out.v_far = std::move(pr.v_far);
  out.victims = std::move(pr.victims);
  out.max_newton_iterations = pr.max_newton_iterations;
  out.wall_seconds = pr.wall_seconds;
  return out;
}

std::vector<ParamBinding> pcbParams(const PcbScenario& cfg) {
  return {
      {"pattern", cfg.pattern},
      {"bit_time", cfg.bit_time},
      {"t_stop", cfg.t_stop},
      {"cell", cfg.cell},
      {"board_cells", static_cast<double>(cfg.board_cells)},
      {"margin", static_cast<double>(cfg.margin)},
      {"strip_len", static_cast<double>(cfg.strip_len)},
      {"net_pitch", static_cast<double>(cfg.net_pitch)},
      {"eps_r", cfg.eps_r},
      {"r_termination", cfg.r_termination},
      {"with_incident", cfg.with_incident},
      {"inc_amplitude", cfg.inc_amplitude},
      {"inc_bandwidth", cfg.inc_bandwidth},
      {"inc_theta_deg", cfg.inc_theta_deg},
      {"inc_phi_deg", cfg.inc_phi_deg},
  };
}

}  // namespace fdtdmm
