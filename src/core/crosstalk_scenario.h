#pragma once
/// \file crosstalk_scenario.h
/// The "crosstalk" scenario family: a coupled two-line crosstalk workload
/// the closed pre-registry API could not express. An RBF driver macromodel
/// drives the aggressor of two identical RLGC lines coupled segment-wise by
/// a mutual capacitance and, optionally, a mutual inductance
/// (buildCoupledRlgcLines; the coupling_l axis sweeps Lm/L through the
/// CoupledInductors element); the victim line is resistively terminated at
/// both ends. The whole structure runs on the MNA
/// transient engine, so it inherits the static/dynamic stamp split: the two
/// ladders and the four terminations are assembled and LU-factored once,
/// and only the nonlinear driver port restamps per Newton iteration.
///
/// Waveform mapping (what the generic metric layer sees):
///   v_near  — aggressor near end (driver pad voltage),
///   v_far   — victim FAR end: the analyzed observable, so the exported
///             v_far_max / eye / far_end_delay columns read as far-end
///             crosstalk peak, victim eye, and coupling delay,
///   victims — {victim near end, aggressor far end}.

#include <memory>
#include <string>

#include "circuit/rlgc_line.h"
#include "core/scenario.h"

namespace fdtdmm {

/// Scenario parameters. Defaults: two matched 50-ohm, 0.5 ns lines with
/// 20% capacitive coupling, victim terminated in 50 ohm at both ends.
struct CrosstalkScenario {
  std::string pattern = "010";
  double bit_time = 2e-9;     ///< [s]
  double t_stop = 8e-9;       ///< simulated window [s]
  double dt = 5e-12;          ///< MNA time step [s]
  RlgcParams line;            ///< per-line self parameters (both lines)
  double coupling = 0.2;      ///< mutual capacitance fraction: cm = coupling * line.c
  double coupling_l = 0.0;    ///< mutual inductance fraction: lm = coupling_l * line.l
  double victim_r_near = 50.0;  ///< victim near-end termination [ohm]
  double victim_r_far = 50.0;   ///< victim far-end termination [ohm]
  double agg_load_r = 50.0;     ///< aggressor far-end shunt resistance [ohm]
  double agg_load_c = 1e-12;    ///< aggressor far-end shunt capacitance [F]
  /// Transient solver mode name ("reuse_lu", "full_restamp", "sparse" —
  /// see transientSolverModeFromName). Sweepable, so a sweep axis can pit
  /// the solver paths against each other corner by corner; "sparse" is the
  /// right choice at high segment counts.
  std::string solver = "reuse_lu";
};

/// Validates scenario options (fail fast before building the netlist).
/// \throws std::invalid_argument on an empty pattern, non-positive times /
///         terminations / line l/c/length, negative line r/g, zero
///         segments, coupling outside [0, 1], or coupling_l outside [0, 1).
void validateCrosstalkScenario(const CrosstalkScenario& cfg);

/// Runs the coupled-line structure on the MNA transient engine with the
/// waveform mapping documented above. Deterministic for fixed inputs
/// (wall_seconds aside). The receiver model is unused (may be null).
/// \throws std::invalid_argument on a null driver model or invalid options.
TaskWaveforms runCrosstalkScenario(const CrosstalkScenario& cfg,
                                   std::shared_ptr<const RbfDriverModel> driver);

/// Sharing-aware variant: threads `sharing` into the TransientOptions (see
/// circuit/solver_state.h). Bit-identical waveforms either way for honest
/// keys.
TaskWaveforms runCrosstalkScenario(const CrosstalkScenario& cfg,
                                   std::shared_ptr<const RbfDriverModel> driver,
                                   const SolverSharing& sharing);

/// Registry adapter ("crosstalk"). Parameters: pattern, bit_time, t_stop,
/// dt, line_r, line_l, line_g, line_c, line_length, segments, coupling,
/// coupling_l, victim_r_near, victim_r_far, agg_load_r, agg_load_c, solver.
class CrosstalkFamily final : public Scenario {
 public:
  CrosstalkFamily() = default;
  explicit CrosstalkFamily(const CrosstalkScenario& cfg) : cfg_(cfg) {}

  const std::string& family() const override;
  const std::vector<ParamDescriptor>& descriptors() const override;
  void set(const std::string& param, const ParamValue& value) override;
  ParamValue get(const std::string& param) const override;
  void validate() const override;
  std::string label() const override;
  std::string pattern() const override { return cfg_.pattern; }
  double bitTime() const override { return cfg_.bit_time; }
  double tStop() const override { return cfg_.t_stop; }
  bool needsReceiver() const override { return false; }
  /// Sharing keys: the nonlinear driver port dirties the matrix every
  /// Newton iteration, so the shared base LU is rarely exercised here —
  /// but pattern/bit_time/t_stop corners still share the symbolic RCM
  /// analysis, and the keys stay honest for configurations whose driver
  /// settles to linearity.
  std::string structureKey() const override;
  std::string numericBaseKey() const override;
  std::unique_ptr<Scenario> clone() const override;
  TaskWaveforms run(std::shared_ptr<const RbfDriverModel> driver,
                    std::shared_ptr<const RbfReceiverModel> receiver) const override;
  TaskWaveforms run(std::shared_ptr<const RbfDriverModel> driver,
                    std::shared_ptr<const RbfReceiverModel> receiver,
                    const SolverSharing& sharing) const override;

  const CrosstalkScenario& config() const { return cfg_; }

 private:
  static const ParamTable<CrosstalkFamily>& table();

  CrosstalkScenario cfg_;
};

}  // namespace fdtdmm
