#pragma once
/// \file tline_family.h
/// The "tline" scenario family: the paper's two-strip validation line
/// (tline_scenario.h) behind the open Scenario interface, with the engine
/// choice (SPICE+RBF, 1D FDTD, 3D FDTD) as one more parameter.
///
/// Parameters (see descriptors() for kinds and ranges):
///   engine ("spice-rbf"|"fdtd1d"|"fdtd3d"), pattern, bit_time, t_stop,
///   zc, td, load ("rc"|"receiver"), load_r, load_c, mesh_nx, mesh_ny,
///   mesh_nz, mesh_delta, strip_len, strip_width, strip_gap.
///
/// Waveform mapping: v_near/v_far are the driver-side and far-end
/// termination voltages; victims is empty.

#include "core/scenario.h"
#include "core/tline_scenario.h"

namespace fdtdmm {

/// Which engine runs a t-line task. The transistor-level reference engine
/// is deliberately absent: tasks are the macromodel-side workload the
/// paper batches.
enum class TlineEngine { kSpiceRbf, kFdtd1d, kFdtd3d };

/// Engine <-> parameter-string mapping ("spice-rbf", "fdtd1d", "fdtd3d").
const char* tlineEngineName(TlineEngine engine);
TlineEngine tlineEngineFromName(const std::string& name);  ///< \throws std::invalid_argument

/// Load <-> parameter-string mapping ("rc", "receiver").
const char* farEndLoadName(FarEndLoad load);
FarEndLoad farEndLoadFromName(const std::string& name);  ///< \throws std::invalid_argument

class TlineFamily final : public Scenario {
 public:
  TlineFamily() = default;
  explicit TlineFamily(const TlineScenario& cfg,
                       TlineEngine engine = TlineEngine::kFdtd1d)
      : cfg_(cfg), engine_(engine) {}

  const std::string& family() const override;
  const std::vector<ParamDescriptor>& descriptors() const override;
  void set(const std::string& param, const ParamValue& value) override;
  ParamValue get(const std::string& param) const override;
  void validate() const override;
  std::string label() const override;
  std::string pattern() const override { return cfg_.pattern; }
  double bitTime() const override { return cfg_.bit_time; }
  double tStop() const override { return cfg_.t_stop; }
  bool needsReceiver() const override { return cfg_.load == FarEndLoad::kReceiver; }
  /// Sharing keys: non-empty only for the spice-rbf engine (the MNA path);
  /// the FDTD engines have no MNA solver state to share and return the
  /// opt-out default.
  std::string structureKey() const override;
  std::string numericBaseKey() const override;
  std::unique_ptr<Scenario> clone() const override;
  TaskWaveforms run(std::shared_ptr<const RbfDriverModel> driver,
                    std::shared_ptr<const RbfReceiverModel> receiver) const override;
  TaskWaveforms run(std::shared_ptr<const RbfDriverModel> driver,
                    std::shared_ptr<const RbfReceiverModel> receiver,
                    const SolverSharing& sharing) const override;

  const TlineScenario& config() const { return cfg_; }
  TlineEngine engine() const { return engine_; }

 private:
  static const ParamTable<TlineFamily>& table();

  TlineScenario cfg_;
  TlineEngine engine_ = TlineEngine::kFdtd1d;
};

/// The family's full parameter map for a typed config (migration shim for
/// code that still builds TlineScenario structs directly).
std::vector<ParamBinding> tlineParams(const TlineScenario& cfg,
                                      TlineEngine engine = TlineEngine::kFdtd1d);

}  // namespace fdtdmm
