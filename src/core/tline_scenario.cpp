#include "core/tline_scenario.h"

#include <chrono>
#include <stdexcept>

#include "circuit/transient.h"
#include "devices/cmos_driver.h"
#include "fdtd/solver.h"
#include "fdtd1d/line1d.h"
#include "signal/linear_ports.h"

namespace fdtdmm {

namespace {

using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

TimeFn logicFromPattern(const TlineScenario& cfg) {
  const BitPattern pattern(cfg.pattern, cfg.bit_time);
  return [pattern](double t) { return static_cast<double>(pattern.levelAt(t)); };
}

}  // namespace

void validateTlineScenario(const TlineScenario& cfg) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("TlineScenario: " + what);
  };
  if (cfg.pattern.empty()) fail("empty bit pattern");
  if (!(cfg.bit_time > 0.0)) fail("bit_time must be > 0");
  if (!(cfg.t_stop > 0.0)) fail("t_stop must be > 0");
  if (!(cfg.zc > 0.0)) fail("zc must be > 0");
  if (!(cfg.td > 0.0)) fail("td must be > 0");
  if (cfg.load == FarEndLoad::kLinearRc) {
    if (!(cfg.load_r > 0.0)) fail("load_r must be > 0");
    if (!(cfg.load_c > 0.0)) fail("load_c must be > 0");
  }
  if (!(cfg.mesh_delta > 0.0)) fail("mesh_delta must be > 0");
  if (cfg.mesh_nx == 0 || cfg.mesh_ny == 0 || cfg.mesh_nz == 0)
    fail("mesh dimensions must be > 0");
  if (cfg.strip_len == 0 || cfg.strip_width == 0 || cfg.strip_gap == 0)
    fail("strip sizes must be > 0");
  if (cfg.strip_len >= cfg.mesh_nx) fail("strip_len must fit inside mesh_nx");
  if (cfg.strip_width >= cfg.mesh_ny) fail("strip_width must fit inside mesh_ny");
  if (cfg.strip_gap >= cfg.mesh_nz) fail("strip_gap must fit inside mesh_nz");
  transientSolverModeFromName(cfg.solver);  // throws on an unknown name
}

EngineRun runSpiceTransistorTline(const TlineScenario& cfg,
                                  const CmosDriverParams& driver,
                                  const CmosReceiverParams& receiver,
                                  double dt) {
  validateTlineScenario(cfg);
  const auto start = Clock::now();
  Circuit circuit;
  auto drv = buildCmosDriver(circuit, driver, logicFromPattern(cfg));

  const int far = circuit.addNode();
  circuit.addIdealLine(drv.pad, Circuit::kGround, far, Circuit::kGround, cfg.zc, cfg.td);

  if (cfg.load == FarEndLoad::kLinearRc) {
    circuit.addResistor(far, Circuit::kGround, cfg.load_r);
    circuit.addCapacitor(far, Circuit::kGround, cfg.load_c);
  } else {
    auto rcv = buildCmosReceiver(circuit, receiver);
    // Pad of the receiver is the far-end node: join with a 0-ohm-like tie.
    circuit.addResistor(far, rcv.pad, 1e-3);
  }

  EngineRun run;
  TransientOptions topt;
  topt.dt = dt;
  topt.t_stop = cfg.t_stop;
  topt.settle_time = 3e-9;
  topt.solver_mode = transientSolverModeFromName(cfg.solver);
  topt.telemetry = &run.telemetry;
  auto res = runTransient(circuit, topt,
                          {{"near", drv.pad, Circuit::kGround},
                           {"far", far, Circuit::kGround}});
  run.v_near = res.at("near");
  run.v_far = res.at("far");
  run.max_newton_iterations = res.max_newton_iterations;
  run.wall_seconds = seconds(start, Clock::now());
  return run;
}

EngineRun runSpiceRbfTline(const TlineScenario& cfg,
                           std::shared_ptr<const RbfDriverModel> driver,
                           std::shared_ptr<const RbfReceiverModel> receiver,
                           double dt) {
  return runSpiceRbfTline(cfg, std::move(driver), std::move(receiver), dt,
                          SolverSharing{});
}

EngineRun runSpiceRbfTline(const TlineScenario& cfg,
                           std::shared_ptr<const RbfDriverModel> driver,
                           std::shared_ptr<const RbfReceiverModel> receiver,
                           double dt, const SolverSharing& sharing) {
  validateTlineScenario(cfg);
  if (!driver) throw std::invalid_argument("runSpiceRbfTline: null driver model");
  const auto start = Clock::now();
  const BitPattern pattern(cfg.pattern, cfg.bit_time);

  Circuit circuit;
  const int near = circuit.addNode();
  const int far = circuit.addNode();
  circuit.addBehavioralPort(near, Circuit::kGround,
                            std::make_shared<RbfDriverPort>(driver, pattern));
  circuit.addIdealLine(near, Circuit::kGround, far, Circuit::kGround, cfg.zc, cfg.td);
  if (cfg.load == FarEndLoad::kLinearRc) {
    circuit.addResistor(far, Circuit::kGround, cfg.load_r);
    circuit.addCapacitor(far, Circuit::kGround, cfg.load_c);
  } else {
    if (!receiver) throw std::invalid_argument("runSpiceRbfTline: null receiver model");
    circuit.addBehavioralPort(far, Circuit::kGround,
                              std::make_shared<RbfReceiverPort>(receiver));
  }

  EngineRun run;
  TransientOptions topt;
  topt.dt = dt;
  topt.t_stop = cfg.t_stop;
  topt.settle_time = 1e-9;
  topt.solver_mode = transientSolverModeFromName(cfg.solver);
  topt.telemetry = &run.telemetry;
  topt.sharing = sharing;
  auto res = runTransient(circuit, topt,
                          {{"near", near, Circuit::kGround},
                           {"far", far, Circuit::kGround}});
  run.v_near = res.at("near");
  run.v_far = res.at("far");
  run.max_newton_iterations = res.max_newton_iterations;
  run.wall_seconds = seconds(start, Clock::now());
  return run;
}

EngineRun runFdtd1dTline(const TlineScenario& cfg,
                         std::shared_ptr<const RbfDriverModel> driver,
                         std::shared_ptr<const RbfReceiverModel> receiver) {
  validateTlineScenario(cfg);
  if (!driver) throw std::invalid_argument("runFdtd1dTline: null driver model");
  const auto start = Clock::now();
  const BitPattern pattern(cfg.pattern, cfg.bit_time);

  Line1dConfig lc;
  lc.zc = cfg.zc;
  lc.td = cfg.td;
  lc.cells = cfg.strip_len;

  PortModelPtr near = std::make_shared<RbfDriverPort>(driver, pattern);
  PortModelPtr far;
  if (cfg.load == FarEndLoad::kLinearRc) {
    far = std::make_shared<ParallelRcPort>(cfg.load_r, cfg.load_c);
  } else {
    if (!receiver) throw std::invalid_argument("runFdtd1dTline: null receiver model");
    far = std::make_shared<RbfReceiverPort>(receiver);
  }

  Fdtd1dLine line(lc, std::move(near), std::move(far));
  auto res = line.run(cfg.t_stop);
  EngineRun run;
  run.v_near = std::move(res.v_near);
  run.v_far = std::move(res.v_far);
  run.max_newton_iterations = res.max_newton_iterations;
  run.wall_seconds = seconds(start, Clock::now());
  return run;
}

EngineRun runFdtd3dTline(const TlineScenario& cfg,
                         std::shared_ptr<const RbfDriverModel> driver,
                         std::shared_ptr<const RbfReceiverModel> receiver) {
  validateTlineScenario(cfg);
  if (!driver) throw std::invalid_argument("runFdtd3dTline: null driver model");
  const auto start = Clock::now();
  const BitPattern pattern(cfg.pattern, cfg.bit_time);

  GridSpec spec;
  spec.nx = cfg.mesh_nx;
  spec.ny = cfg.mesh_ny;
  spec.nz = cfg.mesh_nz;
  spec.dx = spec.dy = spec.dz = cfg.mesh_delta;
  Grid3 grid(spec);

  // Fig. 3 structure: two zero-thickness strips normal to z, centered in
  // the domain, separated by `strip_gap` cells.
  const std::size_t x0 = (cfg.mesh_nx - cfg.strip_len) / 2;
  const std::size_t x1 = x0 + cfg.strip_len;
  const std::size_t jy0 = (cfg.mesh_ny - cfg.strip_width) / 2;
  const std::size_t jy1 = jy0 + cfg.strip_width;
  const std::size_t kz0 = (cfg.mesh_nz - cfg.strip_gap) / 2;
  const std::size_t kz1 = kz0 + cfg.strip_gap;
  grid.pecPlateZ(kz0, x0, x1, jy0, jy1);  // lower (reference) strip
  grid.pecPlateZ(kz1, x0, x1, jy0, jy1);  // upper (signal) strip

  // Vertical device stacks at the strip ends (center column): PEC lead
  // wires for all gap cells except the topmost, which hosts the device.
  const std::size_t jc = (jy0 + jy1) / 2;
  const std::size_t k_dev = kz1 - 1;
  if (cfg.strip_gap >= 2) {
    grid.pecWireZ(x0, jc, kz0, k_dev);
    grid.pecWireZ(x1, jc, kz0, k_dev);
  }
  grid.bake();

  FdtdSolver solver(std::move(grid));

  // Port voltage convention: + terminal on the upper (signal) strip. The
  // cell voltage integral v = int Ez dz equals phi(lower) - phi(upper), so
  // the device sees sign = -1.
  LumpedPortSpec near_spec;
  near_spec.i = x0;
  near_spec.j = jc;
  near_spec.k = k_dev;
  near_spec.sign = -1;
  near_spec.label = "near";
  LumpedPort* near_port =
      solver.addLumpedPort(near_spec, std::make_shared<RbfDriverPort>(driver, pattern));

  LumpedPortSpec far_spec = near_spec;
  far_spec.i = x1;
  far_spec.label = "far";
  PortModelPtr far_model;
  if (cfg.load == FarEndLoad::kLinearRc) {
    far_model = std::make_shared<ParallelRcPort>(cfg.load_r, cfg.load_c);
  } else {
    if (!receiver) throw std::invalid_argument("runFdtd3dTline: null receiver model");
    far_model = std::make_shared<RbfReceiverPort>(receiver);
  }
  LumpedPort* far_port = solver.addLumpedPort(far_spec, std::move(far_model));

  solver.runUntil(cfg.t_stop);

  EngineRun run;
  run.v_near = near_port->voltage();
  run.v_far = far_port->voltage();
  run.max_newton_iterations = solver.maxNewtonIterations();
  run.wall_seconds = seconds(start, Clock::now());
  return run;
}

}  // namespace fdtdmm
