#include "core/crosstalk_scenario.h"

#include <chrono>
#include <stdexcept>

#include "circuit/transient.h"
#include "rbf/driver_model.h"
#include "signal/bit_pattern.h"

namespace fdtdmm {

namespace {

double asNum(const ParamValue& v) { return std::get<double>(v); }

}  // namespace

void validateCrosstalkScenario(const CrosstalkScenario& cfg) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("CrosstalkScenario: " + what);
  };
  if (cfg.pattern.empty()) fail("empty bit pattern");
  if (!(cfg.bit_time > 0.0)) fail("bit_time must be > 0");
  if (!(cfg.t_stop > 0.0)) fail("t_stop must be > 0");
  if (!(cfg.dt > 0.0)) fail("dt must be > 0");
  if (!(cfg.line.l > 0.0) || !(cfg.line.c > 0.0) || !(cfg.line.length > 0.0))
    fail("line l, c, length must be > 0");
  if (cfg.line.r < 0.0 || cfg.line.g < 0.0) fail("line r, g must be >= 0");
  if (cfg.line.segments == 0) fail("line needs >= 1 segment");
  if (!(cfg.coupling >= 0.0) || !(cfg.coupling <= 1.0))
    fail("coupling must be in [0, 1]");
  if (!(cfg.coupling_l >= 0.0) || cfg.coupling_l >= 1.0)
    fail("coupling_l must be in [0, 1)");
  if (!(cfg.victim_r_near > 0.0) || !(cfg.victim_r_far > 0.0))
    fail("victim terminations must be > 0");
  if (!(cfg.agg_load_r > 0.0)) fail("agg_load_r must be > 0");
  if (!(cfg.agg_load_c > 0.0)) fail("agg_load_c must be > 0");
  transientSolverModeFromName(cfg.solver);  // throws on an unknown name
}

TaskWaveforms runCrosstalkScenario(const CrosstalkScenario& cfg,
                                   std::shared_ptr<const RbfDriverModel> driver) {
  return runCrosstalkScenario(cfg, std::move(driver), SolverSharing{});
}

TaskWaveforms runCrosstalkScenario(const CrosstalkScenario& cfg,
                                   std::shared_ptr<const RbfDriverModel> driver,
                                   const SolverSharing& sharing) {
  validateCrosstalkScenario(cfg);
  if (!driver)
    throw std::invalid_argument("runCrosstalkScenario: null driver model");
  const auto start = std::chrono::steady_clock::now();
  const BitPattern pattern(cfg.pattern, cfg.bit_time);

  Circuit circuit;
  const int agg_near = circuit.addNode();
  const int agg_far = circuit.addNode();
  const int vic_near = circuit.addNode();
  const int vic_far = circuit.addNode();

  circuit.addBehavioralPort(agg_near, Circuit::kGround,
                            std::make_shared<RbfDriverPort>(driver, pattern));

  CoupledRlgcParams cp;
  cp.line = cfg.line;
  cp.cm = cfg.coupling * cfg.line.c;
  cp.lm = cfg.coupling_l * cfg.line.l;
  buildCoupledRlgcLines(circuit, agg_near, agg_far, vic_near, vic_far, cp);

  circuit.addResistor(agg_far, Circuit::kGround, cfg.agg_load_r);
  circuit.addCapacitor(agg_far, Circuit::kGround, cfg.agg_load_c);
  circuit.addResistor(vic_near, Circuit::kGround, cfg.victim_r_near);
  circuit.addResistor(vic_far, Circuit::kGround, cfg.victim_r_far);

  TaskWaveforms out;
  TransientOptions topt;
  topt.dt = cfg.dt;
  topt.t_stop = cfg.t_stop;
  topt.settle_time = 1e-9;
  topt.solver_mode = transientSolverModeFromName(cfg.solver);
  topt.telemetry = &out.telemetry;
  topt.sharing = sharing;
  auto res = runTransient(circuit, topt,
                          {{"agg_near", agg_near, Circuit::kGround},
                           {"agg_far", agg_far, Circuit::kGround},
                           {"vic_near", vic_near, Circuit::kGround},
                           {"vic_far", vic_far, Circuit::kGround}});

  out.v_near = std::move(res.probes.at("agg_near"));
  out.v_far = std::move(res.probes.at("vic_far"));
  out.victims.push_back(std::move(res.probes.at("vic_near")));
  out.victims.push_back(std::move(res.probes.at("agg_far")));
  out.max_newton_iterations = res.max_newton_iterations;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

const ParamTable<CrosstalkFamily>& CrosstalkFamily::table() {
  using T = CrosstalkFamily;
  static const ParamTable<T> t(
      "crosstalk",
      {
          {stringParam("pattern", {}, "transmitted bit pattern"),
           [](const T& s) { return ParamValue{s.cfg_.pattern}; },
           [](T& s, const ParamValue& v) { s.cfg_.pattern = std::get<std::string>(v); }},
          {positiveParam("bit_time", "bit time [s]"),
           [](const T& s) { return ParamValue{s.cfg_.bit_time}; },
           [](T& s, const ParamValue& v) { s.cfg_.bit_time = asNum(v); }},
          {positiveParam("t_stop", "simulated window [s]"),
           [](const T& s) { return ParamValue{s.cfg_.t_stop}; },
           [](T& s, const ParamValue& v) { s.cfg_.t_stop = asNum(v); }},
          {positiveParam("dt", "MNA time step [s]"),
           [](const T& s) { return ParamValue{s.cfg_.dt}; },
           [](T& s, const ParamValue& v) { s.cfg_.dt = asNum(v); }},
          {nonNegativeParam("line_r", "series resistance [ohm/m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.r}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.r = asNum(v); }},
          {positiveParam("line_l", "series inductance [H/m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.l}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.l = asNum(v); }},
          {nonNegativeParam("line_g", "shunt conductance [S/m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.g}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.g = asNum(v); }},
          {positiveParam("line_c", "shunt capacitance to ground [F/m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.c}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.c = asNum(v); }},
          {positiveParam("line_length", "physical length [m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.length}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.length = asNum(v); }},
          {intParam("segments", 1.0, "LC ladder sections per line"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.line.segments)}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.segments = static_cast<std::size_t>(asNum(v)); }},
          {[] {
             ParamDescriptor d = nonNegativeParam(
                 "coupling", "mutual capacitance fraction cm / line_c");
             d.max_value = 1.0;
             return d;
           }(),
           [](const T& s) { return ParamValue{s.cfg_.coupling}; },
           [](T& s, const ParamValue& v) { s.cfg_.coupling = asNum(v); }},
          {[] {
             ParamDescriptor d = nonNegativeParam(
                 "coupling_l", "mutual inductance fraction lm / line_l");
             // lm = line_l would be a degenerate k = 1 inductor pair, so the
             // descriptor range matches the validator: [0, 1).
             d.max_value = 1.0;
             d.max_exclusive = true;
             return d;
           }(),
           [](const T& s) { return ParamValue{s.cfg_.coupling_l}; },
           [](T& s, const ParamValue& v) { s.cfg_.coupling_l = asNum(v); }},
          {positiveParam("victim_r_near", "victim near-end termination [ohm]"),
           [](const T& s) { return ParamValue{s.cfg_.victim_r_near}; },
           [](T& s, const ParamValue& v) { s.cfg_.victim_r_near = asNum(v); }},
          {positiveParam("victim_r_far", "victim far-end termination [ohm]"),
           [](const T& s) { return ParamValue{s.cfg_.victim_r_far}; },
           [](T& s, const ParamValue& v) { s.cfg_.victim_r_far = asNum(v); }},
          {positiveParam("agg_load_r", "aggressor far-end shunt R [ohm]"),
           [](const T& s) { return ParamValue{s.cfg_.agg_load_r}; },
           [](T& s, const ParamValue& v) { s.cfg_.agg_load_r = asNum(v); }},
          {positiveParam("agg_load_c", "aggressor far-end shunt C [F]"),
           [](const T& s) { return ParamValue{s.cfg_.agg_load_c}; },
           [](T& s, const ParamValue& v) { s.cfg_.agg_load_c = asNum(v); }},
          {stringParam("solver", transientSolverModeNames(),
                       "transient solver mode (reuse_lu | full_restamp | sparse)"),
           [](const T& s) { return ParamValue{s.cfg_.solver}; },
           [](T& s, const ParamValue& v) { s.cfg_.solver = std::get<std::string>(v); }},
      });
  return t;
}

const std::string& CrosstalkFamily::family() const {
  static const std::string name = "crosstalk";
  return name;
}

const std::vector<ParamDescriptor>& CrosstalkFamily::descriptors() const {
  return table().descriptors();
}

void CrosstalkFamily::set(const std::string& param, const ParamValue& value) {
  table().set(*this, param, value);
}

ParamValue CrosstalkFamily::get(const std::string& param) const {
  return table().get(*this, param);
}

void CrosstalkFamily::validate() const { validateCrosstalkScenario(cfg_); }

std::string CrosstalkFamily::label() const {
  return "crosstalk pattern=" + cfg_.pattern + " bt=" + formatDouble(cfg_.bit_time) +
         " k=" + formatDouble(cfg_.coupling) + " kl=" + formatDouble(cfg_.coupling_l) +
         " rvn=" + formatDouble(cfg_.victim_r_near) +
         " rvf=" + formatDouble(cfg_.victim_r_far);
}

std::unique_ptr<Scenario> CrosstalkFamily::clone() const {
  return std::make_unique<CrosstalkFamily>(*this);
}

TaskWaveforms CrosstalkFamily::run(
    std::shared_ptr<const RbfDriverModel> driver,
    std::shared_ptr<const RbfReceiverModel> /*receiver*/) const {
  return runCrosstalkScenario(cfg_, std::move(driver));
}

TaskWaveforms CrosstalkFamily::run(std::shared_ptr<const RbfDriverModel> driver,
                                   std::shared_ptr<const RbfReceiverModel> /*receiver*/,
                                   const SolverSharing& sharing) const {
  return runCrosstalkScenario(cfg_, std::move(driver), sharing);
}

// pattern/bit_time/t_stop stay out of both keys (RHS/run-length only); the
// coupling>0 flags are structural because zero-coupling configurations
// stamp no mutual elements at all (buildCoupledRlgcLines skips them).
std::string CrosstalkFamily::structureKey() const {
  return "crosstalk|solver=" + cfg_.solver +
         "|segments=" + std::to_string(cfg_.line.segments) +
         "|cm=" + (cfg_.coupling > 0.0 ? "1" : "0") +
         "|lm=" + (cfg_.coupling_l > 0.0 ? "1" : "0");
}

std::string CrosstalkFamily::numericBaseKey() const {
  return structureKey() + "|dt=" + solverKeyNum(cfg_.dt) +
         "|r=" + solverKeyNum(cfg_.line.r) + "|l=" + solverKeyNum(cfg_.line.l) +
         "|g=" + solverKeyNum(cfg_.line.g) + "|c=" + solverKeyNum(cfg_.line.c) +
         "|len=" + solverKeyNum(cfg_.line.length) +
         "|k=" + solverKeyNum(cfg_.coupling) +
         "|kl=" + solverKeyNum(cfg_.coupling_l) +
         "|rvn=" + solverKeyNum(cfg_.victim_r_near) +
         "|rvf=" + solverKeyNum(cfg_.victim_r_far) +
         "|ralr=" + solverKeyNum(cfg_.agg_load_r) +
         "|ralc=" + solverKeyNum(cfg_.agg_load_c);
}

}  // namespace fdtdmm
