#pragma once
/// \file coupled_line.h
/// Circuit realization of the Agrawal field-coupled line (see
/// field_source.h): the scattered-voltage RLGC ladder with per-segment
/// series EMFs embedded in its inductors, plus one lumped series voltage
/// source per end carrying the incident riser voltage, so the terminal
/// nodes presented to the driver/termination carry the *total* voltage.
/// All field excitation enters through stampDynamic RHS terms only — a
/// linear field-coupled run still performs exactly one LU factorization in
/// the cached-LU and sparse transient modes.

#include <memory>

#include "circuit/rlgc_line.h"
#include "emc/field_source.h"

namespace fdtdmm {

/// Builds the field-coupled ladder between terminal nodes (t_near, t_far),
/// both referenced to ground. `src->segments()` must equal `p.segments`.
/// \throws std::invalid_argument on a null source, a segment-count
///         mismatch, or invalid line parameters.
void buildFieldCoupledRlgcLine(Circuit& circuit, int t_near, int t_far,
                               const RlgcParams& p,
                               std::shared_ptr<const AgrawalSources> src);

}  // namespace fdtdmm
