#include "emc/emc_scenario.h"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "circuit/transient.h"
#include "emc/coupled_line.h"
#include "rbf/driver_model.h"
#include "rbf/receiver_model.h"
#include "signal/bit_pattern.h"
#include "signal/sources.h"

namespace fdtdmm {

namespace {

constexpr double kDeg = 3.14159265358979323846 / 180.0;

double asNum(const ParamValue& v) { return std::get<double>(v); }

}  // namespace

void validateEmcScenario(const EmcScenario& cfg) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("EmcScenario: " + what);
  };
  if (cfg.pattern.empty()) fail("empty bit pattern");
  if (!(cfg.bit_time > 0.0)) fail("bit_time must be > 0");
  if (!(cfg.t_stop > 0.0)) fail("t_stop must be > 0");
  if (!(cfg.dt > 0.0)) fail("dt must be > 0");
  if (!(cfg.line.l > 0.0) || !(cfg.line.c > 0.0) || !(cfg.line.length > 0.0))
    fail("line l, c, length must be > 0");
  if (cfg.line.r < 0.0 || cfg.line.g < 0.0) fail("line r, g must be >= 0");
  if (cfg.line.segments == 0) fail("line needs >= 1 segment");
  if (!(cfg.height > 0.0)) fail("height must be > 0");
  if (!(cfg.amplitude >= 0.0)) fail("amplitude must be >= 0");
  if (cfg.amplitude > 0.0) {
    if (!(cfg.theta_deg >= 0.0) || !(cfg.theta_deg <= 180.0))
      fail("theta must be in [0, 180] deg");
    if (cfg.pol_theta == 0.0 && cfg.pol_phi == 0.0)
      fail("polarization mix must not be zero");
    if (!(cfg.bandwidth > 0.0)) fail("bandwidth must be > 0");
    if (!(cfg.pulse_t0 > 0.0)) fail("pulse_t0 must be > 0");
  }
  if (cfg.drive != "driver" && cfg.drive != "none")
    fail("drive must be 'driver' or 'none'");
  if (cfg.drive == "none" && !(cfg.r_near > 0.0)) fail("r_near must be > 0");
  if (cfg.termination != "resistive" && cfg.termination != "receiver")
    fail("termination must be 'resistive' or 'receiver'");
  if (cfg.termination == "resistive" && !(cfg.r_far > 0.0))
    fail("r_far must be > 0");
  if (cfg.c_far < 0.0) fail("c_far must be >= 0");
  transientSolverModeFromName(cfg.solver);  // throws on an unknown name
}

TraceGeometry emcTraceGeometry(const EmcScenario& cfg) {
  return straightTrace(cfg.trace_x0, cfg.trace_y0, cfg.route_deg,
                       cfg.line.length, cfg.height, cfg.trace_z0);
}

TaskWaveforms runEmcScenario(const EmcScenario& cfg,
                             std::shared_ptr<const RbfDriverModel> driver,
                             std::shared_ptr<const RbfReceiverModel> receiver) {
  return runEmcScenario(cfg, std::move(driver), std::move(receiver), SolverSharing{});
}

TaskWaveforms runEmcScenario(const EmcScenario& cfg,
                             std::shared_ptr<const RbfDriverModel> driver,
                             std::shared_ptr<const RbfReceiverModel> receiver,
                             const SolverSharing& sharing) {
  validateEmcScenario(cfg);
  if (cfg.drive == "driver" && !driver)
    throw std::invalid_argument("runEmcScenario: null driver model");
  if (cfg.termination == "receiver" && !receiver)
    throw std::invalid_argument("runEmcScenario: null receiver model");
  const auto start = std::chrono::steady_clock::now();

  Circuit circuit;
  const int t_near = circuit.addNode();
  const int t_far = circuit.addNode();

  if (cfg.drive == "driver") {
    const BitPattern pattern(cfg.pattern, cfg.bit_time);
    circuit.addBehavioralPort(t_near, Circuit::kGround,
                              std::make_shared<RbfDriverPort>(driver, pattern));
  } else {
    circuit.addResistor(t_near, Circuit::kGround, cfg.r_near);
  }

  if (cfg.amplitude > 0.0) {
    const double sigma = gaussianSigmaForBandwidth(cfg.bandwidth);
    const PlaneWave wave(cfg.theta_deg * kDeg, cfg.phi_deg * kDeg,
                         cfg.amplitude, gaussianPulseShape(cfg.pulse_t0, sigma),
                         cfg.pol_theta, cfg.pol_phi);
    AgrawalOptions aopt;
    aopt.ground_reflection = cfg.ground_reflection;
    auto src = std::make_shared<const AgrawalSources>(
        wave, emcTraceGeometry(cfg), cfg.line.segments, aopt);
    buildFieldCoupledRlgcLine(circuit, t_near, t_far, cfg.line, std::move(src));
  } else {
    buildRlgcLine(circuit, t_near, Circuit::kGround, t_far, Circuit::kGround,
                  cfg.line);
  }

  if (cfg.termination == "receiver") {
    circuit.addBehavioralPort(t_far, Circuit::kGround,
                              std::make_shared<RbfReceiverPort>(receiver));
  } else {
    circuit.addResistor(t_far, Circuit::kGround, cfg.r_far);
    if (cfg.c_far > 0.0) circuit.addCapacitor(t_far, Circuit::kGround, cfg.c_far);
  }

  TaskWaveforms out;
  TransientOptions topt;
  topt.dt = cfg.dt;
  topt.t_stop = cfg.t_stop;
  topt.settle_time = 1e-9;
  topt.solver_mode = transientSolverModeFromName(cfg.solver);
  topt.telemetry = &out.telemetry;
  topt.sharing = sharing;
  auto res = runTransient(circuit, topt,
                          {{"near", t_near, Circuit::kGround},
                           {"far", t_far, Circuit::kGround}});

  out.v_near = std::move(res.probes.at("near"));
  out.v_far = std::move(res.probes.at("far"));
  out.max_newton_iterations = res.max_newton_iterations;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

const ParamTable<EmcFamily>& EmcFamily::table() {
  using T = EmcFamily;
  static const ParamTable<T> t(
      "emc",
      {
          {stringParam("pattern", {}, "transmitted bit pattern"),
           [](const T& s) { return ParamValue{s.cfg_.pattern}; },
           [](T& s, const ParamValue& v) { s.cfg_.pattern = std::get<std::string>(v); }},
          {positiveParam("bit_time", "bit time [s]"),
           [](const T& s) { return ParamValue{s.cfg_.bit_time}; },
           [](T& s, const ParamValue& v) { s.cfg_.bit_time = asNum(v); }},
          {positiveParam("t_stop", "simulated window [s]"),
           [](const T& s) { return ParamValue{s.cfg_.t_stop}; },
           [](T& s, const ParamValue& v) { s.cfg_.t_stop = asNum(v); }},
          {positiveParam("dt", "MNA time step [s]"),
           [](const T& s) { return ParamValue{s.cfg_.dt}; },
           [](T& s, const ParamValue& v) { s.cfg_.dt = asNum(v); }},
          {nonNegativeParam("line_r", "series resistance [ohm/m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.r}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.r = asNum(v); }},
          {positiveParam("line_l", "series inductance [H/m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.l}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.l = asNum(v); }},
          {nonNegativeParam("line_g", "shunt conductance [S/m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.g}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.g = asNum(v); }},
          {positiveParam("line_c", "shunt capacitance [F/m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.c}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.c = asNum(v); }},
          {positiveParam("line_length", "physical length [m]"),
           [](const T& s) { return ParamValue{s.cfg_.line.length}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.length = asNum(v); }},
          {intParam("segments", 1.0, "LC ladder sections"),
           [](const T& s) { return ParamValue{static_cast<double>(s.cfg_.line.segments)}; },
           [](T& s, const ParamValue& v) { s.cfg_.line.segments = static_cast<std::size_t>(asNum(v)); }},
          {positiveParam("height", "trace height over the ground plane [m]"),
           [](const T& s) { return ParamValue{s.cfg_.height}; },
           [](T& s, const ParamValue& v) { s.cfg_.height = asNum(v); }},
          {unboundedParam("trace_x0", "route start x [m]"),
           [](const T& s) { return ParamValue{s.cfg_.trace_x0}; },
           [](T& s, const ParamValue& v) { s.cfg_.trace_x0 = asNum(v); }},
          {unboundedParam("trace_y0", "route start y [m]"),
           [](const T& s) { return ParamValue{s.cfg_.trace_y0}; },
           [](T& s, const ParamValue& v) { s.cfg_.trace_y0 = asNum(v); }},
          {unboundedParam("trace_z0", "ground-plane elevation [m]"),
           [](const T& s) { return ParamValue{s.cfg_.trace_z0}; },
           [](T& s, const ParamValue& v) { s.cfg_.trace_z0 = asNum(v); }},
          {unboundedParam("route_deg", "route azimuth from +x [deg]"),
           [](const T& s) { return ParamValue{s.cfg_.route_deg}; },
           [](T& s, const ParamValue& v) { s.cfg_.route_deg = asNum(v); }},
          {nonNegativeParam("amplitude", "incident field amplitude [V/m]; 0 = clean"),
           [](const T& s) { return ParamValue{s.cfg_.amplitude}; },
           [](T& s, const ParamValue& v) { s.cfg_.amplitude = asNum(v); }},
          {[] {
             ParamDescriptor d =
                 nonNegativeParam("theta", "arrival polar angle [deg]");
             d.max_value = 180.0;
             return d;
           }(),
           [](const T& s) { return ParamValue{s.cfg_.theta_deg}; },
           [](T& s, const ParamValue& v) { s.cfg_.theta_deg = asNum(v); }},
          {unboundedParam("phi", "arrival azimuth [deg]"),
           [](const T& s) { return ParamValue{s.cfg_.phi_deg}; },
           [](T& s, const ParamValue& v) { s.cfg_.phi_deg = asNum(v); }},
          {unboundedParam("pol_theta", "theta-polarization weight"),
           [](const T& s) { return ParamValue{s.cfg_.pol_theta}; },
           [](T& s, const ParamValue& v) { s.cfg_.pol_theta = asNum(v); }},
          {unboundedParam("pol_phi", "phi-polarization weight"),
           [](const T& s) { return ParamValue{s.cfg_.pol_phi}; },
           [](T& s, const ParamValue& v) { s.cfg_.pol_phi = asNum(v); }},
          {positiveParam("bandwidth", "Gaussian pulse -3 dB bandwidth [Hz]"),
           [](const T& s) { return ParamValue{s.cfg_.bandwidth}; },
           [](T& s, const ParamValue& v) { s.cfg_.bandwidth = asNum(v); }},
          {positiveParam("pulse_t0", "Gaussian pulse center [s]"),
           [](const T& s) { return ParamValue{s.cfg_.pulse_t0}; },
           [](T& s, const ParamValue& v) { s.cfg_.pulse_t0 = asNum(v); }},
          {boolParam("ground_reflection", "add the PEC ground-plane image"),
           [](const T& s) { return ParamValue{s.cfg_.ground_reflection}; },
           [](T& s, const ParamValue& v) { s.cfg_.ground_reflection = std::get<bool>(v); }},
          {stringParam("drive", {"driver", "none"},
                       "near end: RBF driver or quiescent r_near"),
           [](const T& s) { return ParamValue{s.cfg_.drive}; },
           [](T& s, const ParamValue& v) { s.cfg_.drive = std::get<std::string>(v); }},
          {positiveParam("r_near", "near termination when drive=none [ohm]"),
           [](const T& s) { return ParamValue{s.cfg_.r_near}; },
           [](T& s, const ParamValue& v) { s.cfg_.r_near = asNum(v); }},
          {stringParam("termination", {"resistive", "receiver"},
                       "far end: resistive load or RBF receiver"),
           [](const T& s) { return ParamValue{s.cfg_.termination}; },
           [](T& s, const ParamValue& v) { s.cfg_.termination = std::get<std::string>(v); }},
          {positiveParam("r_far", "far load when resistive [ohm]"),
           [](const T& s) { return ParamValue{s.cfg_.r_far}; },
           [](T& s, const ParamValue& v) { s.cfg_.r_far = asNum(v); }},
          {nonNegativeParam("c_far", "optional far shunt C [F]"),
           [](const T& s) { return ParamValue{s.cfg_.c_far}; },
           [](T& s, const ParamValue& v) { s.cfg_.c_far = asNum(v); }},
          {stringParam("solver", transientSolverModeNames(),
                       "transient solver mode (reuse_lu | full_restamp | sparse)"),
           [](const T& s) { return ParamValue{s.cfg_.solver}; },
           [](T& s, const ParamValue& v) { s.cfg_.solver = std::get<std::string>(v); }},
      });
  return t;
}

const std::string& EmcFamily::family() const {
  static const std::string name = "emc";
  return name;
}

const std::vector<ParamDescriptor>& EmcFamily::descriptors() const {
  return table().descriptors();
}

void EmcFamily::set(const std::string& param, const ParamValue& value) {
  table().set(*this, param, value);
}

ParamValue EmcFamily::get(const std::string& param) const {
  return table().get(*this, param);
}

void EmcFamily::validate() const { validateEmcScenario(cfg_); }

std::string EmcFamily::label() const {
  return "emc pattern=" + cfg_.pattern + " A=" + formatDouble(cfg_.amplitude) +
         " th=" + formatDouble(cfg_.theta_deg) +
         " ph=" + formatDouble(cfg_.phi_deg) + " drv=" + cfg_.drive +
         " term=" + cfg_.termination;
}

std::unique_ptr<Scenario> EmcFamily::clone() const {
  return std::make_unique<EmcFamily>(*this);
}

TaskWaveforms EmcFamily::run(
    std::shared_ptr<const RbfDriverModel> driver,
    std::shared_ptr<const RbfReceiverModel> receiver) const {
  return runEmcScenario(cfg_, std::move(driver), std::move(receiver));
}

TaskWaveforms EmcFamily::run(std::shared_ptr<const RbfDriverModel> driver,
                             std::shared_ptr<const RbfReceiverModel> receiver,
                             const SolverSharing& sharing) const {
  return runEmcScenario(cfg_, std::move(driver), std::move(receiver), sharing);
}

// What stays OUT of these keys is the point: amplitude, arrival angles,
// polarization, bandwidth, pulse_t0, ground_reflection, trace geometry,
// bit pattern, bit_time, and t_stop all reach the transient only through
// RHS sources or run length, never through a static matrix stamp (the
// field-coupled ladder uses the same Inductor/Capacitor static stamps as
// the plain one; RBF ports stamp no static entries). The amp>0 flag is
// still kept — structurally conservative, and it costs one extra class.
std::string EmcFamily::structureKey() const {
  return "emc|solver=" + cfg_.solver +
         "|segments=" + std::to_string(cfg_.line.segments) +
         "|drive=" + cfg_.drive + "|term=" + cfg_.termination +
         "|cfar=" + (cfg_.c_far > 0.0 ? "1" : "0") +
         "|field=" + (cfg_.amplitude > 0.0 ? "1" : "0");
}

std::string EmcFamily::numericBaseKey() const {
  std::string key = structureKey() + "|dt=" + solverKeyNum(cfg_.dt) +
                    "|r=" + solverKeyNum(cfg_.line.r) +
                    "|l=" + solverKeyNum(cfg_.line.l) +
                    "|g=" + solverKeyNum(cfg_.line.g) +
                    "|c=" + solverKeyNum(cfg_.line.c) +
                    "|len=" + solverKeyNum(cfg_.line.length);
  if (cfg_.drive == "none") key += "|rnear=" + solverKeyNum(cfg_.r_near);
  if (cfg_.termination == "resistive") {
    key += "|rfar=" + solverKeyNum(cfg_.r_far);
    if (cfg_.c_far > 0.0) key += "|cfarv=" + solverKeyNum(cfg_.c_far);
  }
  return key;
}

}  // namespace fdtdmm
