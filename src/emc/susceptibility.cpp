#include "emc/susceptibility.h"

#include <cmath>
#include <stdexcept>

namespace fdtdmm {

SusceptibilityMetrics computeSusceptibility(const Waveform& clean,
                                            const Waveform& disturbed,
                                            const BitPattern& pattern,
                                            const SusceptibilityOptions& opt) {
  if (clean.empty() || disturbed.empty())
    throw std::invalid_argument("computeSusceptibility: empty waveform");

  SusceptibilityMetrics m;
  std::size_t violations = 0;
  for (std::size_t k = 0; k < disturbed.size(); ++k) {
    const double t = disturbed.t0() + static_cast<double>(k) * disturbed.dt();
    const double noise = std::abs(disturbed[k] - clean.value(t));
    m.peak_noise = std::max(m.peak_noise, noise);
    if (noise > opt.noise_margin) ++violations;
  }
  m.violation_duration = static_cast<double>(violations) * disturbed.dt();

  if (opt.measure_eye) {
    try {
      m.eye_height_clean = measureEye(clean, pattern, opt.eye).eye_height;
      m.eye_height_disturbed =
          measureEye(disturbed, pattern, opt.eye).eye_height;
      m.eye_degradation = m.eye_height_clean - m.eye_height_disturbed;
      m.eye_valid = true;
    } catch (const std::invalid_argument&) {
      // Pattern too short / waveform unusable for an eye: report the noise
      // metrics alone.
      m.eye_height_clean = m.eye_height_disturbed = m.eye_degradation = 0.0;
      m.eye_valid = false;
    }
  }
  return m;
}

}  // namespace fdtdmm
