#pragma once
/// \file field_source.h
/// Taylor/Agrawal incident-field sources for the circuit-path EMC
/// subsystem. In Agrawal's scattered-voltage formulation of the
/// field-excited telegrapher equations,
///
///   dVs/ds + R'I + L' dI/dt = E_tan(s, h, t)      (wire height h)
///   dI/ds  + G'Vs + C' dVs/dt = 0
///
/// the line carries the *scattered* voltage Vs, forced by the tangential
/// incident E-field along the wire, and the terminal networks see the
/// *total* voltage V = Vs + Vi, where Vi(s) = -int_0^h Ez(s, z) dz is the
/// incident ("riser") voltage between ground plane and wire at that
/// position. Discretized onto the segmented RLGC ladder this becomes
///   - one series EMF per segment: E_tan at the segment midpoint times the
///     segment length (embedded in the segment inductor, RHS-only), and
///   - one lumped series voltage source per line end carrying Vi(end).
///
/// AgrawalSources precomputes, from the analytic PlaneWave and the trace
/// geometry, a flat list of (coefficient, delay) terms per source — each
/// evaluation is then a handful of pulse-shape lookups g(t - tau), exactly
/// like the FDTD solver's precomputed incident tables. When the trace runs
/// over a (modelled-infinite) PEC ground plane, the wave's plane reflection
/// is added by image theory: the image wave is the original evaluated at
/// the z-mirrored point with tangential components negated and the normal
/// component kept, which cancels tangential E on the plane and doubles the
/// normal component.

#include <cstddef>
#include <vector>

#include "emc/trace_geometry.h"
#include "fdtd/incident.h"

namespace fdtdmm {

struct AgrawalOptions {
  /// Trapezoid intervals for the vertical int_0^h Ez dz riser integrals.
  std::size_t riser_quadrature = 8;
  /// Add the PEC ground-plane reflection of the incident wave (image
  /// theory). Off = the wave is taken as the total excitation field, which
  /// is the right setting for validation against free-space closed forms.
  bool ground_reflection = true;
};

/// Precomputed per-segment/per-end source evaluators for one (wave, trace,
/// discretization) triple. Immutable and thread-safe after construction;
/// share one instance across the ladder's TimeFn closures.
class AgrawalSources {
 public:
  /// \throws std::invalid_argument on invalid geometry, zero segments, or
  ///         zero riser quadrature.
  AgrawalSources(const PlaneWave& wave, const TraceGeometry& geom,
                 std::size_t segments, const AgrawalOptions& opt = {});

  std::size_t segments() const { return per_segment_.size(); }

  /// Distributed series EMF of ladder segment `seg` [V]: tangential
  /// incident E at the segment midpoint (wire height) times the segment
  /// length, oriented so positive EMF raises the far-side potential.
  double segmentEmf(std::size_t seg, double t) const {
    return eval(per_segment_[seg], t);
  }

  /// Incident riser voltage Vi = -int_0^h Ez dz at the near / far end [V].
  double incidentVoltageNear(double t) const { return eval(near_riser_, t); }
  double incidentVoltageFar(double t) const { return eval(far_riser_, t); }

 private:
  struct Term {
    double coef;  ///< field coefficient [V] (lengths folded in)
    double tau;   ///< propagation delay at the evaluation point [s]
  };

  double eval(const std::vector<Term>& terms, double t) const {
    double v = 0.0;
    for (const Term& term : terms) v += term.coef * shape_.g(t - term.tau);
    return v;
  }

  /// Appends the direct (and, with ground_reflection, image) terms of one
  /// field component sample at (x, y, z), scaled by `scale`.
  void addTerms(std::vector<Term>& terms, const PlaneWave& wave, Axis comp,
                double x, double y, double z, double z_ground, double scale,
                bool reflect) const;

  PulseShape shape_;
  std::vector<std::vector<Term>> per_segment_;
  std::vector<Term> near_riser_;
  std::vector<Term> far_riser_;
};

}  // namespace fdtdmm
