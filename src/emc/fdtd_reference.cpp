#include "emc/fdtd_reference.h"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "fdtd/solver.h"
#include "signal/linear_ports.h"
#include "signal/sources.h"

namespace fdtdmm {

namespace {

constexpr double kDeg = 3.14159265358979323846 / 180.0;

struct RefMesh {
  std::size_t nx, ny, nz;
  std::size_t i0, i1;  ///< trace end nodes (near, far)
  std::size_t jw;      ///< trace row
  std::size_t kg, kw;  ///< ground plane / wire plane
};

RefMesh refMesh(const EmcFdtdReference& cfg) {
  RefMesh m;
  m.i0 = cfg.margin + cfg.plate_pad;
  m.i1 = m.i0 + cfg.trace_cells;
  m.jw = cfg.margin + cfg.plate_pad;
  // The ground plane spans the whole domain (an infinite plane, matching
  // the image-theory assumption of the circuit path); only a few inert
  // cells sit below it.
  m.kg = 4;
  m.kw = m.kg + cfg.height_cells;
  m.nx = cfg.trace_cells + 2 * (cfg.margin + cfg.plate_pad);
  m.ny = 2 * (cfg.margin + cfg.plate_pad) + 1;
  m.nz = m.kw + cfg.margin;
  return m;
}

}  // namespace

void validateEmcFdtdReference(const EmcFdtdReference& cfg) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("EmcFdtdReference: " + what);
  };
  if (cfg.trace_cells < 2) fail("trace needs >= 2 cells");
  if (cfg.height_cells == 0) fail("height needs >= 1 cell");
  if (cfg.plate_pad == 0) fail("plate_pad must be >= 1");
  if (cfg.margin < 2) fail("margin must be >= 2");
  if (!(cfg.cell > 0.0)) fail("cell must be > 0");
  if (!(cfg.r_near > 0.0) || !(cfg.r_far > 0.0)) fail("terminations must be > 0");
  if (!(cfg.amplitude > 0.0)) fail("amplitude must be > 0");
  if (!(cfg.bandwidth > 0.0)) fail("bandwidth must be > 0");
  if (!(cfg.t_stop > 0.0)) fail("t_stop must be > 0");
  if (!(cfg.theta_deg >= 0.0) || !(cfg.theta_deg <= 180.0))
    fail("theta must be in [0, 180] deg");
  if (cfg.pol_theta == 0.0 && cfg.pol_phi == 0.0)
    fail("polarization mix must not be zero");
}

double emcReferencePulseT0(const EmcFdtdReference& cfg) {
  const RefMesh m = refMesh(cfg);
  const double sigma = gaussianSigmaForBandwidth(cfg.bandwidth);
  // 6 sigma of quiet plus the longest propagation delay across the domain
  // and its ground image (delays relative to the grid-origin reference can
  // be negative by up to the domain extent along the propagation vector).
  const double extent = (static_cast<double>(m.nx) + static_cast<double>(m.ny) +
                         2.0 * static_cast<double>(m.nz)) *
                        cfg.cell;
  return 6.0 * sigma + extent / constants::kC0;
}

EmcFdtdReferenceRun runEmcFdtdReference(const EmcFdtdReference& cfg) {
  validateEmcFdtdReference(cfg);
  const auto start = std::chrono::steady_clock::now();
  const RefMesh m = refMesh(cfg);

  GridSpec spec;
  spec.nx = m.nx;
  spec.ny = m.ny;
  spec.nz = m.nz;
  spec.dx = spec.dy = spec.dz = cfg.cell;
  Grid3 grid(spec);

  // Infinite ground plane (through the absorbing boundary on all sides)
  // and the thin-wire trace above it: a run of PEC Ex edges, whose
  // effective radius on the Yee grid is the classic ~0.135 * cell.
  grid.pecPlateZ(m.kg, 0, m.nx, 0, m.ny);
  for (std::size_t i = m.i0; i < m.i1; ++i)
    grid.pecEdge(Axis::kX, i, m.jw, m.kw);
  // Riser lead wires above the port edges (when the gap is > 1 cell).
  if (m.kw > m.kg + 1) {
    grid.pecWireZ(m.i0, m.jw, m.kg + 1, m.kw);
    grid.pecWireZ(m.i1, m.jw, m.kg + 1, m.kw);
  }
  grid.bake();

  // The ground-plane reflection is scattered field in this formulation and
  // leaves through the boundary at oblique angles; CPML absorbs it ~100x
  // better than Mur-1 (which would ring visibly at these amplitudes).
  FdtdSolverOptions sopt;
  sopt.boundary = BoundaryKind::kCpml;
  sopt.cpml.thickness = 6;
  FdtdSolver solver(std::move(grid), sopt);

  const double sigma = gaussianSigmaForBandwidth(cfg.bandwidth);
  const PlaneWave wave(cfg.theta_deg * kDeg, cfg.phi_deg * kDeg, cfg.amplitude,
                       gaussianPulseShape(emcReferencePulseT0(cfg), sigma),
                       cfg.pol_theta, cfg.pol_phi);
  solver.setIncidentWave(wave);

  // Terminations in the riser gaps; the wire (upper node) is the +
  // terminal, matching the circuit path's wire-minus-ground convention.
  LumpedPortSpec near_spec;
  near_spec.axis = Axis::kZ;
  near_spec.i = m.i0;
  near_spec.j = m.jw;
  near_spec.k = m.kg;
  near_spec.sign = -1;
  near_spec.label = "near";
  LumpedPort* near_port =
      solver.addLumpedPort(near_spec, std::make_shared<ResistorPort>(cfg.r_near));

  LumpedPortSpec far_spec = near_spec;
  far_spec.i = m.i1;
  far_spec.label = "far";
  LumpedPort* far_port =
      solver.addLumpedPort(far_spec, std::make_shared<ResistorPort>(cfg.r_far));

  solver.runUntil(cfg.t_stop);

  EmcFdtdReferenceRun run;
  run.v_near = near_port->voltage();
  run.v_far = far_port->voltage();
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return run;
}

EmcScenario matchedEmcScenario(const EmcFdtdReference& cfg) {
  validateEmcFdtdReference(cfg);
  const RefMesh m = refMesh(cfg);

  EmcScenario sc;
  sc.drive = "none";
  sc.termination = "resistive";
  sc.r_near = cfg.r_near;
  sc.r_far = cfg.r_far;
  sc.t_stop = cfg.t_stop;
  sc.dt = 2e-12;

  // Wire-over-ground per-unit-length parameters with the Yee thin-wire
  // effective radius (~0.135 cells); in vacuum L'C' = 1/c0^2.
  const double h = static_cast<double>(cfg.height_cells) * cfg.cell;
  const double a = 0.135 * cfg.cell;
  const double lam = std::acosh(h / a);
  sc.line.r = 0.0;
  sc.line.g = 0.0;
  sc.line.l = constants::kMu0 / (2.0 * 3.14159265358979323846) * lam;
  sc.line.c = 1.0 / (sc.line.l * constants::kC0 * constants::kC0);
  sc.line.length = static_cast<double>(cfg.trace_cells) * cfg.cell;
  sc.line.segments = std::max<std::size_t>(cfg.trace_cells, 16);

  // Same physical frame as the FDTD grid (wave origin = grid origin).
  sc.height = h;
  sc.trace_x0 = static_cast<double>(m.i0) * cfg.cell;
  sc.trace_y0 = static_cast<double>(m.jw) * cfg.cell;
  sc.trace_z0 = static_cast<double>(m.kg) * cfg.cell;
  sc.route_deg = 0.0;

  sc.amplitude = cfg.amplitude;
  sc.theta_deg = cfg.theta_deg;
  sc.phi_deg = cfg.phi_deg;
  sc.pol_theta = cfg.pol_theta;
  sc.pol_phi = cfg.pol_phi;
  sc.bandwidth = cfg.bandwidth;
  sc.pulse_t0 = emcReferencePulseT0(cfg);
  sc.ground_reflection = true;
  return sc;
}

}  // namespace fdtdmm
