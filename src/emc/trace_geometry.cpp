#include "emc/trace_geometry.h"

#include <cmath>
#include <stdexcept>

namespace fdtdmm {

void validateTraceGeometry(const TraceGeometry& geom) {
  if (geom.route.size() < 2)
    throw std::invalid_argument("TraceGeometry: route needs >= 2 vertices");
  if (!(geom.height > 0.0))
    throw std::invalid_argument("TraceGeometry: height must be > 0");
  for (std::size_t k = 1; k < geom.route.size(); ++k) {
    const double dx = geom.route[k].x - geom.route[k - 1].x;
    const double dy = geom.route[k].y - geom.route[k - 1].y;
    if (!(std::hypot(dx, dy) > 0.0))
      throw std::invalid_argument("TraceGeometry: zero-length route segment");
  }
}

double traceLength(const TraceGeometry& geom) {
  double total = 0.0;
  for (std::size_t k = 1; k < geom.route.size(); ++k)
    total += std::hypot(geom.route[k].x - geom.route[k - 1].x,
                        geom.route[k].y - geom.route[k - 1].y);
  return total;
}

TraceSample sampleTrace(const TraceGeometry& geom, double s) {
  validateTraceGeometry(geom);
  TraceSample out;
  out.z = geom.z_ground + geom.height;
  double remaining = s;
  for (std::size_t k = 1; k < geom.route.size(); ++k) {
    const double dx = geom.route[k].x - geom.route[k - 1].x;
    const double dy = geom.route[k].y - geom.route[k - 1].y;
    const double len = std::hypot(dx, dy);
    const bool last = (k == geom.route.size() - 1);
    if (remaining <= len || last) {
      const double frac =
          std::min(1.0, std::max(0.0, remaining / len));
      out.x = geom.route[k - 1].x + frac * dx;
      out.y = geom.route[k - 1].y + frac * dy;
      out.ux = dx / len;
      out.uy = dy / len;
      return out;
    }
    remaining -= len;
  }
  return out;  // unreachable (last arm above always returns)
}

TraceGeometry straightTrace(double x0, double y0, double azimuth_deg,
                            double length, double height, double z_ground) {
  if (!(length > 0.0))
    throw std::invalid_argument("straightTrace: length must be > 0");
  constexpr double kDeg = 3.14159265358979323846 / 180.0;
  TraceGeometry geom;
  geom.route = {{x0, y0},
                {x0 + length * std::cos(azimuth_deg * kDeg),
                 y0 + length * std::sin(azimuth_deg * kDeg)}};
  geom.height = height;
  geom.z_ground = z_ground;
  validateTraceGeometry(geom);
  return geom;
}

}  // namespace fdtdmm
