#pragma once
/// \file susceptibility.h
/// EMC susceptibility metrics: given a clean (no-field) and a disturbed
/// (field-coupled) run of the same victim observable, quantify how much
/// the incident field degrades the link. The sweep layer produces the
/// clean/disturbed pair naturally as a 2-point (or denser) amplitude axis;
/// these helpers difference the pair into immunity numbers.

#include "signal/bit_pattern.h"
#include "signal/eye.h"
#include "signal/waveform.h"

namespace fdtdmm {

struct SusceptibilityOptions {
  /// |disturbed - clean| threshold counted as a noise-margin violation [V].
  double noise_margin = 0.2;
  /// Measure clean/disturbed eyes (requires a pattern usable by
  /// measureEye; when the eye cannot be measured, eye_valid is false and
  /// the eye fields are 0 instead of throwing).
  bool measure_eye = true;
  EyeOptions eye;
};

struct SusceptibilityMetrics {
  double peak_noise = 0.0;          ///< max |disturbed - clean| [V]
  double violation_duration = 0.0;  ///< total time above noise_margin [s]
  double eye_height_clean = 0.0;    ///< [V]
  double eye_height_disturbed = 0.0;///< [V]
  double eye_degradation = 0.0;     ///< clean - disturbed eye height [V]
  bool eye_valid = false;
};

/// Computes the metrics on the disturbed waveform's time grid (the clean
/// waveform is interpolated). Pure function of its inputs.
/// \throws std::invalid_argument on an empty clean or disturbed waveform.
SusceptibilityMetrics computeSusceptibility(const Waveform& clean,
                                            const Waveform& disturbed,
                                            const BitPattern& pattern,
                                            const SusceptibilityOptions& opt = {});

}  // namespace fdtdmm
