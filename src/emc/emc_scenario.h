#pragma once
/// \file emc_scenario.h
/// The "emc" scenario family: incident-field susceptibility of a routed
/// trace at MNA speed. An analytic plane wave couples into a segmented
/// RLGC ladder through the Taylor/Agrawal distributed sources
/// (field_source.h / coupled_line.h); the near end is either driven by the
/// RBF driver macromodel (active-link immunity: eye degradation under
/// illumination) or resistively terminated (the paper's quiescent-line
/// susceptibility), and the far end is the victim: either the RBF receiver
/// macromodel or a resistive load. Everything the 3D FDTD PcbScenario
/// incident path does for one board, this family does per sweep corner at
/// circuit cost — amplitude/angle/polarization/bandwidth/termination/
/// solver are all sweepable axes, batched by the standard engine.
///
/// Waveform mapping:
///   v_near  — near-end terminal (driver pad / near termination),
///   v_far   — far-end terminal: the victim observable the metric layer
///             analyzes (induced noise peak, disturbed eye),
///   victims — empty.
///
/// An amplitude of 0 runs the clean (field-free) link, so a sweep axis
/// amplitude = {0, A} yields the clean/disturbed pair that
/// computeSusceptibility (susceptibility.h) differences into immunity
/// metrics.

#include <memory>
#include <string>

#include "circuit/rlgc_line.h"
#include "core/scenario.h"
#include "emc/trace_geometry.h"

namespace fdtdmm {

/// Scenario parameters. Defaults: a 10 cm, 50-ohm microstrip-like trace
/// 1.5 mm over its ground plane, driven with '010' at 2 ns bit time and
/// illuminated by the paper's Fig. 7 pulse (2 kV/m, 9.2 GHz bandwidth,
/// theta-polarized, theta = 90 deg, phi = 180 deg).
struct EmcScenario {
  std::string pattern = "010";
  double bit_time = 2e-9;  ///< [s]
  double t_stop = 8e-9;    ///< simulated window [s]
  double dt = 5e-12;       ///< MNA time step [s]
  RlgcParams line;         ///< per-unit-length line parameters
  // Trace placement in the incident wave's coordinate frame.
  double height = 1.5e-3;   ///< trace height over the ground plane [m]
  double trace_x0 = 0.0;    ///< route start [m]
  double trace_y0 = 0.0;
  double trace_z0 = 0.0;    ///< ground-plane elevation [m]
  double route_deg = 0.0;   ///< route azimuth from +x [deg]
  // Incident plane wave.
  double amplitude = 2e3;   ///< [V/m]; 0 = clean (no-field) run
  double theta_deg = 90.0;  ///< arrival direction, standard spherical
  double phi_deg = 180.0;
  double pol_theta = 1.0;   ///< polarization mix (must not both be 0
  double pol_phi = 0.0;     ///<   when amplitude > 0)
  double bandwidth = 9.2e9; ///< Gaussian pulse -3 dB bandwidth [Hz]
  double pulse_t0 = 3e-9;   ///< Gaussian pulse center [s]
  bool ground_reflection = true;  ///< add the PEC ground-plane image
  // Terminations.
  std::string drive = "driver";        ///< "driver" | "none" (quiescent)
  double r_near = 50.0;                ///< near termination when drive=none
  std::string termination = "resistive";  ///< "resistive" | "receiver"
  double r_far = 50.0;                 ///< far load when resistive [ohm]
  double c_far = 0.0;                  ///< optional far shunt C [F], >= 0
  /// Transient solver mode name ("reuse_lu" | "full_restamp" | "sparse").
  std::string solver = "reuse_lu";
};

/// Validates scenario options (fail fast before building the netlist).
/// \throws std::invalid_argument on invalid times/line/geometry, amplitude
///         < 0, a zero polarization mix with amplitude > 0, theta outside
///         [0, 180], unknown drive/termination/solver names, or
///         non-positive terminations.
void validateEmcScenario(const EmcScenario& cfg);

/// Runs the field-coupled line on the MNA transient engine with the
/// waveform mapping documented above. Deterministic for fixed inputs
/// (wall_seconds aside). `driver` may be null when drive == "none",
/// `receiver` when termination == "resistive".
/// \throws std::invalid_argument on a missing required model or invalid
///         options.
TaskWaveforms runEmcScenario(const EmcScenario& cfg,
                             std::shared_ptr<const RbfDriverModel> driver,
                             std::shared_ptr<const RbfReceiverModel> receiver);

/// Sharing-aware variant: threads `sharing` into the TransientOptions (see
/// circuit/solver_state.h). Bit-identical waveforms either way for honest
/// keys.
TaskWaveforms runEmcScenario(const EmcScenario& cfg,
                             std::shared_ptr<const RbfDriverModel> driver,
                             std::shared_ptr<const RbfReceiverModel> receiver,
                             const SolverSharing& sharing);

/// The trace geometry a configuration routes (exposed so the FDTD
/// cross-validation reference meshes the same physical trace).
TraceGeometry emcTraceGeometry(const EmcScenario& cfg);

/// Registry adapter ("emc"). Parameters: pattern, bit_time, t_stop, dt,
/// line_r, line_l, line_g, line_c, line_length, segments, height,
/// trace_x0, trace_y0, trace_z0, route_deg, amplitude, theta, phi,
/// pol_theta, pol_phi, bandwidth, pulse_t0, ground_reflection, drive,
/// r_near, termination, r_far, c_far, solver.
class EmcFamily final : public Scenario {
 public:
  EmcFamily() = default;
  explicit EmcFamily(const EmcScenario& cfg) : cfg_(cfg) {}

  const std::string& family() const override;
  const std::vector<ParamDescriptor>& descriptors() const override;
  void set(const std::string& param, const ParamValue& value) override;
  ParamValue get(const std::string& param) const override;
  void validate() const override;
  std::string label() const override;
  std::string pattern() const override { return cfg_.pattern; }
  double bitTime() const override { return cfg_.bit_time; }
  double tStop() const override { return cfg_.t_stop; }
  bool needsDriver() const override { return cfg_.drive == "driver"; }
  bool needsReceiver() const override { return cfg_.termination == "receiver"; }
  /// Sharing keys: the incident field enters the transient purely through
  /// RHS sources (Agrawal EMF terms) and the RBF ports never stamp the
  /// static base, so amplitude/angle/polarization/bandwidth/geometry/
  /// pattern corners of one link share a single base factorization — the
  /// family's numericBaseKey() deliberately excludes all of them.
  std::string structureKey() const override;
  std::string numericBaseKey() const override;
  std::unique_ptr<Scenario> clone() const override;
  TaskWaveforms run(std::shared_ptr<const RbfDriverModel> driver,
                    std::shared_ptr<const RbfReceiverModel> receiver) const override;
  TaskWaveforms run(std::shared_ptr<const RbfDriverModel> driver,
                    std::shared_ptr<const RbfReceiverModel> receiver,
                    const SolverSharing& sharing) const override;

  const EmcScenario& config() const { return cfg_; }

 private:
  static const ParamTable<EmcFamily>& table();

  EmcScenario cfg_;
};

}  // namespace fdtdmm
