#pragma once
/// \file fdtd_reference.h
/// Full-wave cross-validation reference for the circuit-path EMC
/// subsystem: a straight PEC trace over a PEC ground plane in vacuum,
/// illuminated by the same analytic plane wave through the 3D FDTD
/// solver's incident path (the machinery behind PcbScenario's
/// with_incident mode), with resistive terminations at both trace ends.
/// This is the geometry the Agrawal circuit model describes exactly —
/// unlike the PCB's L-shaped nets, which are shielded between two
/// metallization planes — so the induced terminal waveforms of the two
/// paths can be compared quantitatively (and their wall clocks benched
/// against each other in bench_emc_sweep).

#include "emc/emc_scenario.h"
#include "signal/waveform.h"

namespace fdtdmm {

/// Reference geometry/excitation, all in grid cells where noted. The
/// matched circuit model is derived by matchedEmcScenario below.
struct EmcFdtdReference {
  std::size_t trace_cells = 24;   ///< trace length [cells]
  std::size_t height_cells = 2;   ///< wire height over the plane [cells]
  double cell = 2.5e-3;           ///< uniform cell size [m]
  std::size_t plate_pad = 5;      ///< extra trace-to-boundary spacing [cells]
  std::size_t margin = 10;        ///< air margin (includes the 6-cell CPML)
  double r_near = 200.0;          ///< near termination [ohm] (~ wire Zc)
  double r_far = 200.0;           ///< far termination [ohm]
  double amplitude = 2e3;         ///< incident amplitude [V/m]
  double bandwidth = 2e9;         ///< Gaussian -3 dB bandwidth [Hz]
  double theta_deg = 40.0;        ///< arrival direction
  double phi_deg = 180.0;
  double pol_theta = 1.0;
  double pol_phi = 0.0;
  double t_stop = 3e-9;           ///< simulated window [s]
};

/// \throws std::invalid_argument on degenerate sizes or non-positive
///         physical parameters.
void validateEmcFdtdReference(const EmcFdtdReference& cfg);

/// Gaussian pulse center used by both paths: late enough that the wave is
/// negligible everywhere in the domain (and its ground image) at t = 0.
double emcReferencePulseT0(const EmcFdtdReference& cfg);

struct EmcFdtdReferenceRun {
  Waveform v_near;  ///< near-termination voltage (wire positive)
  Waveform v_far;
  double wall_seconds = 0.0;
};

/// Runs the 3D FDTD reference. \throws std::invalid_argument on an invalid
/// configuration.
EmcFdtdReferenceRun runEmcFdtdReference(const EmcFdtdReference& cfg);

/// The circuit-path scenario modelling the same trace: quiescent drive
/// (drive = "none"), identical terminations and incident wave, per-unit-
/// length L/C from the wire-over-ground closed form with the Yee thin-wire
/// effective radius (~0.135 cells). Share the frame: the wave origin is
/// the FDTD grid origin.
EmcScenario matchedEmcScenario(const EmcFdtdReference& cfg);

}  // namespace fdtdmm
