#include "emc/coupled_line.h"

#include <stdexcept>

namespace fdtdmm {

void buildFieldCoupledRlgcLine(Circuit& circuit, int t_near, int t_far,
                               const RlgcParams& p,
                               std::shared_ptr<const AgrawalSources> src) {
  if (!src)
    throw std::invalid_argument("buildFieldCoupledRlgcLine: null sources");
  if (src->segments() != p.segments)
    throw std::invalid_argument(
        "buildFieldCoupledRlgcLine: source segment count mismatch");

  // Scattered-voltage end nodes of the ladder.
  const int s_near = circuit.addNode();
  const int s_far = circuit.addNode();

  // Terminal condition V = Vs + Vi at each end, realized as a series
  // source: v(s_near) - v(t_near) = -Vi(near)  =>  v(t_near) = Vs + Vi.
  circuit.addVoltageSource(s_near, t_near, [src](double t) {
    return -src->incidentVoltageNear(t);
  });
  circuit.addVoltageSource(t_far, s_far, [src](double t) {
    return src->incidentVoltageFar(t);
  });

  std::vector<TimeFn> emf;
  emf.reserve(p.segments);
  for (std::size_t s = 0; s < p.segments; ++s)
    emf.push_back([src, s](double t) { return src->segmentEmf(s, t); });
  buildRlgcLineSegments(circuit, s_near, Circuit::kGround, s_far,
                        Circuit::kGround, p, emf);
}

}  // namespace fdtdmm
