#pragma once
/// \file trace_geometry.h
/// Routed-trace geometry for the circuit-path EMC subsystem: where a
/// transmission line physically sits over its ground plane, so the
/// incident-field machinery (field_source.h) can evaluate the analytic
/// plane wave along it. A trace is a planar polyline at constant height
/// over a ground plane; arc-length sampling maps RLGC ladder segments to
/// 3D positions and tangent directions.

#include <cstddef>
#include <vector>

namespace fdtdmm {

/// One polyline vertex in the wire plane [m].
struct TraceVertex {
  double x = 0.0;
  double y = 0.0;
};

/// A routed trace: polyline route at height `height` above the ground
/// plane, which sits at elevation `z_ground`. The wire itself lies at
/// z = z_ground + height; all coordinates share the frame of the incident
/// PlaneWave (its origin/delay reference).
struct TraceGeometry {
  std::vector<TraceVertex> route;  ///< >= 2 vertices, consecutive distinct
  double height = 1e-3;            ///< wire height over the plane [m], > 0
  double z_ground = 0.0;           ///< ground-plane elevation [m]
};

/// \throws std::invalid_argument on fewer than 2 vertices, a non-positive
///         height, or a zero-length polyline segment.
void validateTraceGeometry(const TraceGeometry& geom);

/// Total polyline length [m].
double traceLength(const TraceGeometry& geom);

/// A sampled point on the trace: wire position and in-plane unit tangent.
struct TraceSample {
  double x = 0.0, y = 0.0, z = 0.0;  ///< wire position (z = z_ground + height)
  double ux = 0.0, uy = 0.0;         ///< unit tangent, near -> far orientation
};

/// Position/tangent at arc length s from the route start, clamped to
/// [0, traceLength]. \throws std::invalid_argument on invalid geometry.
TraceSample sampleTrace(const TraceGeometry& geom, double s);

/// Convenience: a straight trace starting at (x0, y0), heading
/// `azimuth_deg` from the +x axis, of the given length.
/// \throws std::invalid_argument on non-positive length or height.
TraceGeometry straightTrace(double x0, double y0, double azimuth_deg,
                            double length, double height,
                            double z_ground = 0.0);

}  // namespace fdtdmm
