#include "emc/field_source.h"

#include <stdexcept>

namespace fdtdmm {

void AgrawalSources::addTerms(std::vector<Term>& terms, const PlaneWave& wave,
                              Axis comp, double x, double y, double z,
                              double z_ground, double scale,
                              bool reflect) const {
  const double direct = scale * wave.amplitude() * wave.polarization(comp);
  if (direct != 0.0) terms.push_back({direct, wave.delay(x, y, z)});
  if (!reflect) return;
  // Image wave: evaluate the original wave at the z-mirrored point; the
  // tangential (x, y) components flip sign, the normal (z) one does not.
  const double sign = (comp == Axis::kZ) ? 1.0 : -1.0;
  const double image = sign * direct;
  if (image != 0.0)
    terms.push_back({image, wave.delay(x, y, 2.0 * z_ground - z)});
}

AgrawalSources::AgrawalSources(const PlaneWave& wave,
                               const TraceGeometry& geom,
                               std::size_t segments,
                               const AgrawalOptions& opt)
    : shape_(wave.shape()) {
  validateTraceGeometry(geom);
  if (segments == 0)
    throw std::invalid_argument("AgrawalSources: need >= 1 segment");
  if (opt.riser_quadrature == 0)
    throw std::invalid_argument("AgrawalSources: riser_quadrature must be > 0");

  const double length = traceLength(geom);
  const double ds = length / static_cast<double>(segments);

  // Per-segment series EMF: E_tan at the segment midpoint, times ds.
  per_segment_.resize(segments);
  for (std::size_t s = 0; s < segments; ++s) {
    const TraceSample mid =
        sampleTrace(geom, (static_cast<double>(s) + 0.5) * ds);
    addTerms(per_segment_[s], wave, Axis::kX, mid.x, mid.y, mid.z,
             geom.z_ground, ds * mid.ux, opt.ground_reflection);
    addTerms(per_segment_[s], wave, Axis::kY, mid.x, mid.y, mid.z,
             geom.z_ground, ds * mid.uy, opt.ground_reflection);
  }

  // End risers: Vi = -int_{z_ground}^{z_ground+h} Ez dz by the trapezoid
  // rule with riser_quadrature intervals.
  const auto buildRiser = [&](std::vector<Term>& riser, double s_end) {
    const TraceSample end = sampleTrace(geom, s_end);
    const std::size_t q = opt.riser_quadrature;
    const double dzq = geom.height / static_cast<double>(q);
    for (std::size_t k = 0; k <= q; ++k) {
      const double w = (k == 0 || k == q) ? 0.5 * dzq : dzq;
      const double z = geom.z_ground + static_cast<double>(k) * dzq;
      addTerms(riser, wave, Axis::kZ, end.x, end.y, z, geom.z_ground, -w,
               opt.ground_reflection);
    }
  };
  buildRiser(near_riser_, 0.0);
  buildRiser(far_riser_, length);
}

}  // namespace fdtdmm
