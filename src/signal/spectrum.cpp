#include "signal/spectrum.h"

#include <cmath>
#include <stdexcept>

namespace fdtdmm {

std::complex<double> dftAt(const Waveform& w, double frequency_hz) {
  if (w.empty()) throw std::invalid_argument("dftAt: empty waveform");
  if (frequency_hz < 0.0) throw std::invalid_argument("dftAt: negative frequency");
  const double omega = 2.0 * 3.14159265358979323846 * frequency_hz;
  // Recurrence for exp(-j w t_k) to avoid one sin/cos pair per sample. Each
  // multiply perturbs |phase| by ~1 ulp, which compounds into a visible
  // magnitude/phase drift over long waveforms, so the phasor is re-seeded
  // from sin/cos every kRenormInterval samples.
  constexpr std::size_t kRenormInterval = 1024;
  const std::complex<double> step(std::cos(omega * w.dt()), -std::sin(omega * w.dt()));
  std::complex<double> phase(0.0, 0.0);
  std::complex<double> acc(0.0, 0.0);
  for (std::size_t k = 0; k < w.size(); ++k) {
    if (k % kRenormInterval == 0) {
      const double theta = omega * (w.t0() + static_cast<double>(k) * w.dt());
      phase = std::complex<double>(std::cos(theta), -std::sin(theta));
    }
    acc += w[k] * phase;
    phase *= step;
  }
  return acc * w.dt();
}

std::vector<std::complex<double>> dftAt(const Waveform& w,
                                        const std::vector<double>& frequencies_hz) {
  std::vector<std::complex<double>> out;
  out.reserve(frequencies_hz.size());
  for (double f : frequencies_hz) out.push_back(dftAt(w, f));
  return out;
}

std::complex<double> transferAt(const Waveform& in, const Waveform& out,
                                double frequency_hz, double min_input_magnitude) {
  const std::complex<double> xin = dftAt(in, frequency_hz);
  if (std::abs(xin) < min_input_magnitude)
    throw std::invalid_argument("transferAt: input spectrum vanishes at this frequency");
  return dftAt(out, frequency_hz) / xin;
}

std::vector<double> frequencyGrid(double f0, double f1, std::size_t n) {
  if (n < 2 || f1 <= f0 || f0 < 0.0)
    throw std::invalid_argument("frequencyGrid: need n >= 2 and 0 <= f0 < f1");
  std::vector<double> f(n);
  for (std::size_t k = 0; k < n; ++k)
    f[k] = f0 + (f1 - f0) * static_cast<double>(k) / static_cast<double>(n - 1);
  return f;
}

}  // namespace fdtdmm
