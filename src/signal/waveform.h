#pragma once
/// \file waveform.h
/// Uniformly sampled time series with linear interpolation. This is the
/// exchange currency between the circuit engine, the FDTD solvers, the
/// macromodel identification pipeline, and the benchmark harnesses.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "math/matrix.h"

namespace fdtdmm {

/// A uniformly sampled real-valued waveform: samples[k] = value(t0 + k*dt).
class Waveform {
 public:
  Waveform() = default;

  /// \throws std::invalid_argument if dt <= 0.
  Waveform(double t0, double dt, Vector samples);

  double t0() const { return t0_; }
  double dt() const { return dt_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Last sample time (t0 for an empty/1-sample waveform).
  double tEnd() const;

  const Vector& samples() const { return samples_; }
  Vector& samples() { return samples_; }

  double operator[](std::size_t k) const { return samples_[k]; }

  /// Linearly interpolated value at time t; clamps to the end samples
  /// outside the sampled interval (a causal hold).
  double value(double t) const;

  /// Appends a sample (time advances by dt).
  void push(double v) { samples_.push_back(v); }

  /// Returns a resampled copy with sampling step dt_new over the same span.
  /// \throws std::invalid_argument if dt_new <= 0 or the waveform is empty.
  Waveform resampled(double dt_new) const;

  /// Time axis as a vector (convenience for dumping tables).
  Vector times() const;

  /// Writes "t,v" CSV lines (with header) to a file.
  /// \throws std::runtime_error if the file cannot be opened.
  void writeCsv(const std::string& path, const std::string& label = "v") const;

 private:
  double t0_ = 0.0;
  double dt_ = 1.0;
  Vector samples_;
};

/// Number of samples covering [0, span] at step dt, rounded with an
/// absolute + relative tolerance so an exact division doesn't lose its
/// final sample to floating-point truncation. Shared by Waveform::resampled
/// and sampleFunction so the two grids stay in lockstep.
inline std::size_t sampleCountForSpan(double span, double dt) {
  const double n_intervals = span / dt;
  return static_cast<std::size_t>(n_intervals + 1e-9 + n_intervals * 1e-12) + 1;
}

/// Samples an arbitrary callable f(t) on [t0, t1] with step dt.
/// \throws std::invalid_argument if dt <= 0 or t1 < t0.
template <typename F>
Waveform sampleFunction(F&& f, double t0, double t1, double dt) {
  if (dt <= 0.0) throw std::invalid_argument("sampleFunction: dt must be > 0");
  if (t1 < t0) throw std::invalid_argument("sampleFunction: t1 < t0");
  Vector s;
  const std::size_t n = sampleCountForSpan(t1 - t0, dt);
  s.reserve(n);
  for (std::size_t k = 0; k < n; ++k) s.push_back(f(t0 + static_cast<double>(k) * dt));
  return Waveform(t0, dt, std::move(s));
}

}  // namespace fdtdmm
