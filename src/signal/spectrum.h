#pragma once
/// \file spectrum.h
/// Frequency-domain helpers on sampled waveforms: single-frequency DFT
/// (Goertzel-style direct evaluation), spectra on arbitrary frequency
/// grids, and transfer-function estimation between two waveforms. Used by
/// the radiation post-processing (running DFT of equivalent currents) and
/// by impedance-extraction analyses.

#include <complex>
#include <vector>

#include "signal/waveform.h"

namespace fdtdmm {

/// Complex DFT of a waveform at one frequency:
///   X(f) = dt * sum_k x_k exp(-j 2 pi f t_k)
/// (continuous-transform normalization, suitable for ratios and fields).
/// \throws std::invalid_argument on empty input or negative frequency.
std::complex<double> dftAt(const Waveform& w, double frequency_hz);

/// DFT sampled on a list of frequencies.
std::vector<std::complex<double>> dftAt(const Waveform& w,
                                        const std::vector<double>& frequencies_hz);

/// Transfer function H(f) = DFT(out) / DFT(in) at one frequency.
/// \throws std::invalid_argument if the input spectrum magnitude at f is
///         below `min_input_magnitude` (ill-conditioned ratio).
std::complex<double> transferAt(const Waveform& in, const Waveform& out,
                                double frequency_hz,
                                double min_input_magnitude = 1e-30);

/// Uniform frequency grid [f0, f1] with n points (n >= 2).
std::vector<double> frequencyGrid(double f0, double f1, std::size_t n);

}  // namespace fdtdmm
