#pragma once
/// \file linear_ports.h
/// Elementary PortModel implementations: resistor, parallel RC (the
/// paper's Fig. 4 far-end load is 1 pF shunt 500 ohm), series R + voltage
/// source (Thevenin drive), and open circuit. These let linear loads be
/// attached to the FDTD lumped-element cells through the same interface as
/// the RBF macromodels.

#include <functional>
#include <stdexcept>
#include <string>

#include "signal/port_model.h"

namespace fdtdmm {

/// i = v / R.
class ResistorPort final : public PortModel {
 public:
  /// \throws std::invalid_argument if resistance <= 0.
  explicit ResistorPort(double resistance) : r_(resistance) {
    if (resistance <= 0.0) throw std::invalid_argument("ResistorPort: R must be > 0");
  }
  void prepare(double) override {}
  double current(double v, double, double& didv) override {
    didv = 1.0 / r_;
    return v / r_;
  }
  void commit(double, double) override {}
  std::string name() const override { return "resistor"; }

 private:
  double r_;
};

/// Parallel RC load: i = C dv/dt + v/R, backward-Euler discretization
/// (A-stable and oscillation-free for the forced-voltage protocol of a
/// PortModel; the host solvers run at steps far below the load's time
/// constant, so the first-order error is negligible).
/// Either branch may be absent (R <= 0 disables the resistor, C <= 0 the
/// capacitor); both absent is rejected.
class ParallelRcPort final : public PortModel {
 public:
  ParallelRcPort(double resistance, double capacitance, double v0 = 0.0)
      : r_(resistance), c_(capacitance), v_prev_(v0) {
    if (resistance <= 0.0 && capacitance <= 0.0)
      throw std::invalid_argument("ParallelRcPort: need R > 0 or C > 0");
  }
  void prepare(double dt) override {
    if (dt <= 0.0) throw std::invalid_argument("ParallelRcPort: dt must be > 0");
    geq_ = (c_ > 0.0) ? c_ / dt : 0.0;
  }
  double current(double v, double, double& didv) override {
    const double gr = (r_ > 0.0) ? 1.0 / r_ : 0.0;
    didv = geq_ + gr;
    return geq_ * (v - v_prev_) + gr * v;
  }
  void commit(double v, double) override { v_prev_ = v; }
  std::string name() const override { return "parallel-rc"; }

 private:
  double r_;
  double c_;
  double v_prev_;
  double geq_ = 0.0;
};

/// Thevenin drive: ideal source vs(t) behind series resistance Rs;
/// i = (v - vs(t)) / Rs (current into the + terminal).
class TheveninPort final : public PortModel {
 public:
  /// \throws std::invalid_argument if rs <= 0 or source is empty.
  TheveninPort(std::function<double(double)> vs, double rs)
      : vs_(std::move(vs)), rs_(rs) {
    if (rs <= 0.0) throw std::invalid_argument("TheveninPort: Rs must be > 0");
    if (!vs_) throw std::invalid_argument("TheveninPort: empty source");
  }
  void prepare(double) override {}
  double current(double v, double t, double& didv) override {
    didv = 1.0 / rs_;
    return (v - vs_(t)) / rs_;
  }
  void commit(double, double) override {}
  std::string name() const override { return "thevenin"; }

 private:
  std::function<double(double)> vs_;
  double rs_;
};

/// Open circuit: i = 0 (useful to probe unloaded FDTD gaps).
class OpenPort final : public PortModel {
 public:
  void prepare(double) override {}
  double current(double, double, double& didv) override {
    didv = 0.0;
    return 0.0;
  }
  void commit(double, double) override {}
  std::string name() const override { return "open"; }
};

}  // namespace fdtdmm
