#pragma once
/// \file eye.h
/// Eye-diagram analysis of data waveforms: fold a waveform on the bit
/// period and measure the vertical eye opening and timing margins — the
/// standard signal-integrity acceptance metrics for the driver/line/
/// receiver channels this library simulates.

#include "signal/bit_pattern.h"
#include "signal/waveform.h"

namespace fdtdmm {

/// Eye measurement results.
struct EyeMetrics {
  double eye_height = 0.0;    ///< min(HIGH) - max(LOW) inside the window [V]
  double level_high = 0.0;    ///< mean settled HIGH level [V]
  double level_low = 0.0;     ///< mean settled LOW level [V]
  double window_start = 0.0;  ///< sampling window start (fraction of UI)
  double window_width = 0.0;  ///< sampling window width (fraction of UI)
  bool open = false;          ///< eye_height > 0
};

/// Options for eye analysis.
struct EyeOptions {
  double window_start = 0.6;  ///< sampling window start, fraction of UI
  double window_width = 0.3;  ///< window width, fraction of UI
  std::size_t skip_bits = 1;  ///< leading bits excluded (startup transient)
};

/// Measures the eye of `w` against the bit sequence that produced it: for
/// every bit (after `skip_bits`), the waveform inside the sampling window
/// contributes to the HIGH or LOW statistics according to the transmitted
/// bit. The eye height is the worst-case separation.
/// \throws std::invalid_argument on an empty waveform, a pattern shorter
///         than skip_bits + 2, or a window outside (0, 1].
EyeMetrics measureEye(const Waveform& w, const BitPattern& pattern,
                      const EyeOptions& opt = {});

}  // namespace fdtdmm
