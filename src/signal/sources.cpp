#include "signal/sources.h"

#include <cmath>
#include <stdexcept>

#include "math/rng.h"

namespace fdtdmm {

TimeFunction trapezoidFromPattern(const BitPattern& pattern, double v_low,
                                  double v_high, double edge_time) {
  if (edge_time <= 0.0 || edge_time >= pattern.bitTime())
    throw std::invalid_argument("trapezoidFromPattern: edge_time must be in (0, bit_time)");
  const auto edges = pattern.edges();
  return [edges, v_low, v_high, edge_time](double t) {
    // Level of the pattern before the first edge after t, with a linear
    // ramp across each transition.
    double v = (edges.front().level != 0) ? v_high : v_low;
    for (std::size_t k = 1; k < edges.size(); ++k) {
      const double te = edges[k].time;
      const double target = (edges[k].level != 0) ? v_high : v_low;
      if (t <= te) break;
      if (t >= te + edge_time) {
        v = target;
      } else {
        const double frac = (t - te) / edge_time;
        v = v + (target - v) * frac;
        break;
      }
    }
    return v;
  };
}

TimeFunction gaussianPulse(double amplitude, double t0, double sigma) {
  if (sigma <= 0.0) throw std::invalid_argument("gaussianPulse: sigma must be > 0");
  return [amplitude, t0, sigma](double t) {
    const double u = (t - t0) / sigma;
    return amplitude * std::exp(-0.5 * u * u);
  };
}

double gaussianSigmaForBandwidth(double bandwidth_hz) {
  if (bandwidth_hz <= 0.0)
    throw std::invalid_argument("gaussianSigmaForBandwidth: bandwidth must be > 0");
  // |G(f)| = exp(-(2 pi f sigma)^2 / 2); half power when (2 pi f sigma)^2/2 = ln(sqrt 2)
  const double c = std::sqrt(std::log(2.0));  // (2 pi f sigma) = sqrt(2 ln sqrt2) = sqrt(ln 2)
  constexpr double two_pi = 6.283185307179586476925286766559;
  return c / (two_pi * bandwidth_hz);
}

TimeFunction gaussianDerivative(double amplitude, double t0, double sigma) {
  if (sigma <= 0.0) throw std::invalid_argument("gaussianDerivative: sigma must be > 0");
  return [amplitude, t0, sigma](double t) {
    const double u = (t - t0) / sigma;
    // Normalized so the peak magnitude equals `amplitude`.
    return -amplitude * u * std::exp(0.5 * (1.0 - u * u));
  };
}

Waveform multilevelRandom(double duration, double dt, const MultilevelOptions& opt) {
  if (duration <= 0.0 || dt <= 0.0)
    throw std::invalid_argument("multilevelRandom: duration and dt must be > 0");
  if (opt.levels < 2) throw std::invalid_argument("multilevelRandom: levels must be >= 2");
  if (opt.min_hold <= 0.0 || opt.max_hold < opt.min_hold || opt.edge_time <= 0.0)
    throw std::invalid_argument("multilevelRandom: inconsistent hold/edge times");
  if (opt.v_max <= opt.v_min)
    throw std::invalid_argument("multilevelRandom: v_max must exceed v_min");

  Rng rng(opt.seed);
  // Build piecewise-linear breakpoints (time, level).
  struct Bp {
    double t;
    double v;
  };
  std::vector<Bp> bps;
  const double dv = (opt.v_max - opt.v_min) / static_cast<double>(opt.levels - 1);
  double t = 0.0;
  double v = opt.v_min + dv * static_cast<double>(rng.below(static_cast<std::uint64_t>(opt.levels)));
  bps.push_back({0.0, v});
  while (t < duration) {
    const double hold = rng.uniform(opt.min_hold, opt.max_hold);
    t += hold;
    bps.push_back({t, v});
    double vn = v;
    while (vn == v) {
      vn = opt.v_min + dv * static_cast<double>(rng.below(static_cast<std::uint64_t>(opt.levels)));
    }
    v = vn;
    t += opt.edge_time;
    bps.push_back({t, v});
  }

  // Sample the piecewise-linear curve.
  Vector samples;
  const auto n = static_cast<std::size_t>(duration / dt) + 1;
  samples.reserve(n);
  std::size_t seg = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double tk = dt * static_cast<double>(k);
    while (seg + 1 < bps.size() && bps[seg + 1].t < tk) ++seg;
    if (seg + 1 >= bps.size()) {
      samples.push_back(bps.back().v);
      continue;
    }
    const Bp& a = bps[seg];
    const Bp& b = bps[seg + 1];
    const double frac = (b.t > a.t) ? (tk - a.t) / (b.t - a.t) : 1.0;
    samples.push_back(a.v + (b.v - a.v) * std::min(1.0, std::max(0.0, frac)));
  }
  return Waveform(0.0, dt, std::move(samples));
}

}  // namespace fdtdmm
