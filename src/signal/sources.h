#pragma once
/// \file sources.h
/// Analytic excitation functions: trapezoidal logic waveforms, Gaussian
/// pulses (the paper's incident field is a 2 kV/m Gaussian pulse with
/// 9.2 GHz bandwidth), and multilevel random signals for macromodel
/// identification.

#include <cstdint>
#include <functional>

#include "signal/bit_pattern.h"
#include "signal/waveform.h"

namespace fdtdmm {

/// A time-domain scalar source.
using TimeFunction = std::function<double(double t)>;

/// Trapezoidal logic waveform following a bit pattern: transitions are
/// linear ramps of duration `edge_time` starting at each bit boundary.
/// \throws std::invalid_argument if edge_time <= 0 or >= bit time.
TimeFunction trapezoidFromPattern(const BitPattern& pattern, double v_low,
                                  double v_high, double edge_time);

/// Normalized Gaussian pulse g(t) = exp(-((t - t0)/sigma)^2 / 2).
/// \throws std::invalid_argument if sigma <= 0.
TimeFunction gaussianPulse(double amplitude, double t0, double sigma);

/// Sigma for a Gaussian with the given -3 dB (half-power) single-sided
/// bandwidth in Hz: |G(f)| = exp(-(2 pi f sigma)^2 / 2) = 1/sqrt(2) at f_3dB.
/// \throws std::invalid_argument if bandwidth_hz <= 0.
double gaussianSigmaForBandwidth(double bandwidth_hz);

/// Derivative-of-Gaussian (monocycle), useful as a zero-mean wideband pulse.
TimeFunction gaussianDerivative(double amplitude, double t0, double sigma);

/// Options for multilevel pseudo-random identification signals. The device
/// port is forced with a piecewise-linear signal hopping between random
/// levels in [v_min, v_max]; hold times are uniform in [min_hold, max_hold],
/// transitions take `edge_time`. This is the standard excitation design for
/// parametric macromodel identification (refs [6-8] of the paper).
struct MultilevelOptions {
  double v_min = -0.5;
  double v_max = 2.3;
  double min_hold = 0.5e-9;
  double max_hold = 3e-9;
  double edge_time = 0.3e-9;
  int levels = 17;  ///< number of quantized levels (>= 2)
  std::uint64_t seed = 7;
};

/// Builds a multilevel random waveform of total duration `duration` sampled
/// at `dt`. \throws std::invalid_argument on nonpositive duration/dt or
/// inconsistent options.
Waveform multilevelRandom(double duration, double dt, const MultilevelOptions& opt = {});

}  // namespace fdtdmm
