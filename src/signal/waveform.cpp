#include "signal/waveform.h"

#include <cmath>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace fdtdmm {

Waveform::Waveform(double t0, double dt, Vector samples)
    : t0_(t0), dt_(dt), samples_(std::move(samples)) {
  if (dt <= 0.0) throw std::invalid_argument("Waveform: dt must be > 0");
}

double Waveform::tEnd() const {
  return samples_.size() <= 1
             ? t0_
             : t0_ + dt_ * static_cast<double>(samples_.size() - 1);
}

double Waveform::value(double t) const {
  if (samples_.empty()) return 0.0;
  const double x = (t - t0_) / dt_;
  if (x <= 0.0) return samples_.front();
  const double last = static_cast<double>(samples_.size() - 1);
  if (x >= last) return samples_.back();
  const auto k = static_cast<std::size_t>(x);
  const double frac = x - static_cast<double>(k);
  return samples_[k] * (1.0 - frac) + samples_[k + 1] * frac;
}

Waveform Waveform::resampled(double dt_new) const {
  if (dt_new <= 0.0) throw std::invalid_argument("Waveform::resampled: dt must be > 0");
  if (samples_.empty()) throw std::invalid_argument("Waveform::resampled: empty waveform");
  Vector s;
  // Tolerance-rounded count: plain truncation of span/dt_new drops the
  // final sample whenever an exact division lands just below an integer.
  const std::size_t n = sampleCountForSpan(tEnd() - t0_, dt_new);
  s.reserve(n);
  for (std::size_t k = 0; k < n; ++k)
    s.push_back(value(t0_ + static_cast<double>(k) * dt_new));
  return Waveform(t0_, dt_new, std::move(s));
}

Vector Waveform::times() const {
  Vector t(samples_.size());
  for (std::size_t k = 0; k < t.size(); ++k) t[k] = t0_ + dt_ * static_cast<double>(k);
  return t;
}

void Waveform::writeCsv(const std::string& path, const std::string& label) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Waveform::writeCsv: cannot open " + path);
  out << "t," << label << "\n";
  for (std::size_t k = 0; k < samples_.size(); ++k) {
    out << (t0_ + dt_ * static_cast<double>(k)) << "," << samples_[k] << "\n";
  }
}

}  // namespace fdtdmm
