#pragma once
/// \file port_model.h
/// Discrete-time one-port behavioral device interface. This is the seam
/// between device models (RBF macromodels, linear loads, sources) and the
/// three solvers of the library (MNA circuit engine, 1D FDTD line solver,
/// 3D FDTD field solver). The contract matches the paper's coupling scheme:
/// at every solver step the port equation needs the device current at the
/// end-of-step voltage, i^{n+1} = F(v^{n+1}), with an analytic derivative
/// so the Newton-Raphson solve of Eq. (8)+(13) converges in few iterations.

#include <memory>
#include <string>

namespace fdtdmm {

/// One-port device advanced in lock-step with a host solver.
///
/// Usage protocol (enforced by hosts):
///   1. prepare(dt) once before time stepping;
///   2. per step: any number of current(v, t) probes with trial voltages
///      (Newton iterations) -- these must not mutate observable state;
///   3. exactly one commit(v, t) with the accepted voltage.
class PortModel {
 public:
  virtual ~PortModel() = default;

  /// Binds the model to the host time step. Called once before stepping;
  /// implementations must reset internal state and may reject unusable
  /// steps (e.g. the resampling constraint tau = dt/Ts <= 1 of Eq. (17))
  /// by throwing std::invalid_argument.
  virtual void prepare(double dt) = 0;

  /// Device current drawn at the positive terminal if the port voltage at
  /// the end of the current step equals v. t is the end-of-step time.
  /// Must store d(i)/d(v) into didv. Must be a pure function of v given the
  /// state committed so far.
  virtual double current(double v, double t, double& didv) = 0;

  /// Accepts the step with solved port voltage v at time t and advances
  /// internal discrete-time state.
  virtual void commit(double v, double t) = 0;

  /// Diagnostic name.
  virtual std::string name() const = 0;
};

using PortModelPtr = std::shared_ptr<PortModel>;

}  // namespace fdtdmm
