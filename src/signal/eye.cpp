#include "signal/eye.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fdtdmm {

EyeMetrics measureEye(const Waveform& w, const BitPattern& pattern,
                      const EyeOptions& opt) {
  if (w.empty()) throw std::invalid_argument("measureEye: empty waveform");
  if (pattern.size() < opt.skip_bits + 2)
    throw std::invalid_argument("measureEye: pattern too short");
  if (opt.window_start < 0.0 || opt.window_width <= 0.0 ||
      opt.window_start + opt.window_width > 1.0)
    throw std::invalid_argument("measureEye: window must lie within one UI");

  const double ui = pattern.bitTime();
  double min_high = std::numeric_limits<double>::max();
  double max_high = -std::numeric_limits<double>::max();
  double min_low = std::numeric_limits<double>::max();
  double max_low = -std::numeric_limits<double>::max();
  double sum_high = 0.0, sum_low = 0.0;
  std::size_t n_high = 0, n_low = 0;

  const auto accumulate = [&](int level, double v) {
    if (level != 0) {
      min_high = std::min(min_high, v);
      max_high = std::max(max_high, v);
      sum_high += v;
      ++n_high;
    } else {
      min_low = std::min(min_low, v);
      max_low = std::max(max_low, v);
      sum_low += v;
      ++n_low;
    }
  };

  const double t_step = w.dt();
  for (std::size_t bit = opt.skip_bits; bit < pattern.size(); ++bit) {
    const int level = pattern.bits()[bit];
    const double t0 = (static_cast<double>(bit) + opt.window_start) * ui;
    const double t1 = t0 + opt.window_width * ui;
    if (t1 > w.tEnd()) break;
    // Integer indexing over the waveform's own sample grid. Accumulating
    // `t += t_step` instead would drift by rounding error, making per-bit
    // sample counts inconsistent and occasionally skipping the window-end
    // sample. The edge tolerance (absolute + relative, as in
    // Waveform::resampled) keeps on-grid window edges included even at
    // large sample indices, where the division's rounding error grows.
    const double i0 = (t0 - w.t0()) / t_step;
    const double i1 = (t1 - w.t0()) / t_step;
    const double k0f = std::ceil(i0 - 1e-9 - std::abs(i0) * 1e-12);
    const double k1f = std::floor(i1 + 1e-9 + std::abs(i1) * 1e-12);
    if (k1f < 0.0 || k1f < k0f) {
      // Window narrower than the sample grid: no grid point falls inside.
      // Contribute one interpolated sample at the window center so coarse
      // waveforms still measure instead of dropping the bit.
      accumulate(level, w.value(0.5 * (t0 + t1)));
      continue;
    }
    const std::size_t k0 = k0f <= 0.0 ? 0 : static_cast<std::size_t>(k0f);
    const std::size_t k1 =
        std::min(static_cast<std::size_t>(k1f), w.size() - 1);
    for (std::size_t k = k0; k <= k1; ++k) accumulate(level, w[k]);
  }
  if (n_high == 0 || n_low == 0)
    throw std::invalid_argument(
        "measureEye: pattern/waveform must contain both levels after skip_bits");

  EyeMetrics m;
  m.eye_height = min_high - max_low;
  m.level_high = sum_high / static_cast<double>(n_high);
  m.level_low = sum_low / static_cast<double>(n_low);
  m.window_start = opt.window_start;
  m.window_width = opt.window_width;
  m.open = m.eye_height > 0.0;
  return m;
}

}  // namespace fdtdmm
