#include "signal/eye.h"

#include <limits>
#include <stdexcept>

namespace fdtdmm {

EyeMetrics measureEye(const Waveform& w, const BitPattern& pattern,
                      const EyeOptions& opt) {
  if (w.empty()) throw std::invalid_argument("measureEye: empty waveform");
  if (pattern.size() < opt.skip_bits + 2)
    throw std::invalid_argument("measureEye: pattern too short");
  if (opt.window_start < 0.0 || opt.window_width <= 0.0 ||
      opt.window_start + opt.window_width > 1.0)
    throw std::invalid_argument("measureEye: window must lie within one UI");

  const double ui = pattern.bitTime();
  double min_high = std::numeric_limits<double>::max();
  double max_high = -std::numeric_limits<double>::max();
  double min_low = std::numeric_limits<double>::max();
  double max_low = -std::numeric_limits<double>::max();
  double sum_high = 0.0, sum_low = 0.0;
  std::size_t n_high = 0, n_low = 0;

  const double t_step = w.dt();
  for (std::size_t bit = opt.skip_bits; bit < pattern.size(); ++bit) {
    const int level = pattern.bits()[bit];
    const double t0 = (static_cast<double>(bit) + opt.window_start) * ui;
    const double t1 = t0 + opt.window_width * ui;
    if (t1 > w.tEnd()) break;
    for (double t = t0; t <= t1; t += t_step) {
      const double v = w.value(t);
      if (level != 0) {
        min_high = std::min(min_high, v);
        max_high = std::max(max_high, v);
        sum_high += v;
        ++n_high;
      } else {
        min_low = std::min(min_low, v);
        max_low = std::max(max_low, v);
        sum_low += v;
        ++n_low;
      }
    }
  }
  if (n_high == 0 || n_low == 0)
    throw std::invalid_argument(
        "measureEye: pattern/waveform must contain both levels after skip_bits");

  EyeMetrics m;
  m.eye_height = min_high - max_low;
  m.level_high = sum_high / static_cast<double>(n_high);
  m.level_low = sum_low / static_cast<double>(n_low);
  m.window_start = opt.window_start;
  m.window_width = opt.window_width;
  m.open = m.eye_height > 0.0;
  return m;
}

}  // namespace fdtdmm
