#pragma once
/// \file bit_pattern.h
/// Digital bit patterns and their conversion to logic-threshold waveforms.
/// The paper drives its structures with a '010' pattern at 2 ns bit time.

#include <cstdint>
#include <string>
#include <vector>

namespace fdtdmm {

/// A sequence of logic levels (0/1) with a fixed bit time.
class BitPattern {
 public:
  /// Parses a pattern string of '0'/'1' characters.
  /// \throws std::invalid_argument on any other character or empty string,
  ///         or if bit_time <= 0.
  BitPattern(const std::string& bits, double bit_time);

  /// Pseudo-random bit sequence (PRBS) of given length from an LFSR-free
  /// deterministic generator.
  static BitPattern random(std::size_t nbits, double bit_time, std::uint64_t seed);

  double bitTime() const { return bit_time_; }
  std::size_t size() const { return bits_.size(); }
  const std::vector<int>& bits() const { return bits_; }

  /// Logic level holding at time t (bit k spans [k*T, (k+1)*T); the last bit
  /// holds forever).
  int levelAt(double t) const;

  /// Index of the bit boundary transitions: returns (time, new_level) pairs
  /// for every change of level, including the initial level at t = 0.
  struct Edge {
    double time;
    int level;
  };
  std::vector<Edge> edges() const;

 private:
  std::vector<int> bits_;
  double bit_time_ = 0.0;
};

}  // namespace fdtdmm
