#include "signal/bit_pattern.h"

#include <stdexcept>

#include "math/rng.h"

namespace fdtdmm {

BitPattern::BitPattern(const std::string& bits, double bit_time) : bit_time_(bit_time) {
  if (bits.empty()) throw std::invalid_argument("BitPattern: empty pattern");
  if (bit_time <= 0.0) throw std::invalid_argument("BitPattern: bit_time must be > 0");
  bits_.reserve(bits.size());
  for (char c : bits) {
    if (c != '0' && c != '1')
      throw std::invalid_argument("BitPattern: pattern must contain only '0'/'1'");
    bits_.push_back(c == '1' ? 1 : 0);
  }
}

BitPattern BitPattern::random(std::size_t nbits, double bit_time, std::uint64_t seed) {
  if (nbits == 0) throw std::invalid_argument("BitPattern::random: nbits must be > 0");
  Rng rng(seed);
  std::string s;
  s.reserve(nbits);
  for (std::size_t i = 0; i < nbits; ++i) s.push_back(rng.uniform() < 0.5 ? '0' : '1');
  return BitPattern(s, bit_time);
}

int BitPattern::levelAt(double t) const {
  if (t <= 0.0) return bits_.front();
  auto k = static_cast<std::size_t>(t / bit_time_);
  if (k >= bits_.size()) k = bits_.size() - 1;
  return bits_[k];
}

std::vector<BitPattern::Edge> BitPattern::edges() const {
  std::vector<Edge> e;
  e.push_back({0.0, bits_.front()});
  for (std::size_t k = 1; k < bits_.size(); ++k) {
    if (bits_[k] != bits_[k - 1]) {
      e.push_back({bit_time_ * static_cast<double>(k), bits_[k]});
    }
  }
  return e;
}

}  // namespace fdtdmm
