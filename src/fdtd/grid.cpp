#include "fdtd/grid.h"

#include <cmath>
#include <stdexcept>

namespace fdtdmm {

using namespace constants;

Grid3::Grid3(const GridSpec& spec)
    : nx_(spec.nx), ny_(spec.ny), nz_(spec.nz),
      dx_(spec.dx), dy_(spec.dy), dz_(spec.dz) {
  if (nx_ < 2 || ny_ < 2 || nz_ < 2)
    throw std::invalid_argument("Grid3: need at least 2 cells per axis");
  if (dx_ <= 0.0 || dy_ <= 0.0 || dz_ <= 0.0)
    throw std::invalid_argument("Grid3: cell sizes must be > 0");
  if (spec.courant <= 0.0 || spec.courant > 1.0)
    throw std::invalid_argument("Grid3: courant must be in (0, 1]");

  const double inv2 =
      1.0 / (dx_ * dx_) + 1.0 / (dy_ * dy_) + 1.0 / (dz_ * dz_);
  dt_ = spec.courant / (kC0 * std::sqrt(inv2));

  const std::size_t n = (nx_ + 1) * (ny_ + 1) * (nz_ + 1);
  ex_.assign(n, 0.0);
  ey_.assign(n, 0.0);
  ez_.assign(n, 0.0);
  hx_.assign(n, 0.0);
  hy_.assign(n, 0.0);
  hz_.assign(n, 0.0);
  cell_eps_r_.assign(nx_ * ny_ * nz_, 1.0);
  cell_sigma_.assign(nx_ * ny_ * nz_, 0.0);
  pec_ex_.assign(n, 0);
  pec_ey_.assign(n, 0);
  pec_ez_.assign(n, 0);
}

void Grid3::checkCellBox(std::size_t i0, std::size_t i1, std::size_t j0,
                         std::size_t j1, std::size_t k0, std::size_t k1) const {
  if (i0 >= i1 || j0 >= j1 || k0 >= k1 || i1 > nx_ || j1 > ny_ || k1 > nz_)
    throw std::invalid_argument("Grid3: invalid cell box");
}

double Grid3::cellEps(std::size_t i, std::size_t j, std::size_t k) const {
  return kEps0 * cell_eps_r_[(i * ny_ + j) * nz_ + k];
}

double Grid3::cellSigma(std::size_t i, std::size_t j, std::size_t k) const {
  return cell_sigma_[(i * ny_ + j) * nz_ + k];
}

void Grid3::setDielectricBox(std::size_t i0, std::size_t i1, std::size_t j0,
                             std::size_t j1, std::size_t k0, std::size_t k1,
                             double eps_r, double sigma) {
  if (baked_) throw std::logic_error("Grid3: geometry is frozen after bake()");
  checkCellBox(i0, i1, j0, j1, k0, k1);
  if (eps_r < 1.0) throw std::invalid_argument("Grid3: eps_r must be >= 1");
  if (sigma < 0.0) throw std::invalid_argument("Grid3: sigma must be >= 0");
  for (std::size_t i = i0; i < i1; ++i)
    for (std::size_t j = j0; j < j1; ++j)
      for (std::size_t k = k0; k < k1; ++k) {
        cell_eps_r_[(i * ny_ + j) * nz_ + k] = eps_r;
        cell_sigma_[(i * ny_ + j) * nz_ + k] = sigma;
      }
}

void Grid3::pecEdge(Axis axis, std::size_t i, std::size_t j, std::size_t k) {
  if (baked_) throw std::logic_error("Grid3: geometry is frozen after bake()");
  bool ok = false;
  switch (axis) {
    case Axis::kX: ok = i < nx_ && j <= ny_ && k <= nz_; break;
    case Axis::kY: ok = i <= nx_ && j < ny_ && k <= nz_; break;
    case Axis::kZ: ok = i <= nx_ && j <= ny_ && k < nz_; break;
  }
  if (!ok) throw std::invalid_argument("Grid3::pecEdge: edge out of range");
  std::vector<char>& flags =
      axis == Axis::kX ? pec_ex_ : (axis == Axis::kY ? pec_ey_ : pec_ez_);
  char& f = flags[idx(i, j, k)];
  if (f == 0) {
    f = 1;
    pec_edges_.push_back({axis, i, j, k});
  }
}

void Grid3::pecPlateZ(std::size_t k, std::size_t i0, std::size_t i1,
                      std::size_t j0, std::size_t j1) {
  if (k > nz_ || i0 >= i1 || j0 >= j1 || i1 > nx_ || j1 > ny_)
    throw std::invalid_argument("Grid3::pecPlateZ: invalid plate");
  for (std::size_t i = i0; i < i1; ++i)
    for (std::size_t j = j0; j <= j1; ++j) pecEdge(Axis::kX, i, j, k);
  for (std::size_t i = i0; i <= i1; ++i)
    for (std::size_t j = j0; j < j1; ++j) pecEdge(Axis::kY, i, j, k);
}

void Grid3::pecPlateX(std::size_t i, std::size_t j0, std::size_t j1,
                      std::size_t k0, std::size_t k1) {
  if (i > nx_ || j0 >= j1 || k0 >= k1 || j1 > ny_ || k1 > nz_)
    throw std::invalid_argument("Grid3::pecPlateX: invalid plate");
  for (std::size_t j = j0; j < j1; ++j)
    for (std::size_t k = k0; k <= k1; ++k) pecEdge(Axis::kY, i, j, k);
  for (std::size_t j = j0; j <= j1; ++j)
    for (std::size_t k = k0; k < k1; ++k) pecEdge(Axis::kZ, i, j, k);
}

void Grid3::pecPlateY(std::size_t j, std::size_t i0, std::size_t i1,
                      std::size_t k0, std::size_t k1) {
  if (j > ny_ || i0 >= i1 || k0 >= k1 || i1 > nx_ || k1 > nz_)
    throw std::invalid_argument("Grid3::pecPlateY: invalid plate");
  for (std::size_t i = i0; i < i1; ++i)
    for (std::size_t k = k0; k <= k1; ++k) pecEdge(Axis::kX, i, j, k);
  for (std::size_t i = i0; i <= i1; ++i)
    for (std::size_t k = k0; k < k1; ++k) pecEdge(Axis::kZ, i, j, k);
}

void Grid3::pecWireZ(std::size_t i, std::size_t j, std::size_t k0, std::size_t k1) {
  if (k0 >= k1) throw std::invalid_argument("Grid3::pecWireZ: invalid span");
  for (std::size_t k = k0; k < k1; ++k) pecEdge(Axis::kZ, i, j, k);
}

void Grid3::edgeMaterial(Axis axis, std::size_t i, std::size_t j, std::size_t k,
                         double& eps, double& sigma) const {
  // Average over the up-to-4 cells sharing the edge; cells outside the
  // domain are treated as vacuum (consistent with open boundaries).
  auto cell = [&](long ci, long cj, long ck, double& e, double& s) {
    if (ci < 0 || cj < 0 || ck < 0 || ci >= static_cast<long>(nx_) ||
        cj >= static_cast<long>(ny_) || ck >= static_cast<long>(nz_)) {
      e = kEps0;
      s = 0.0;
      return;
    }
    e = cellEps(static_cast<std::size_t>(ci), static_cast<std::size_t>(cj),
                static_cast<std::size_t>(ck));
    s = cellSigma(static_cast<std::size_t>(ci), static_cast<std::size_t>(cj),
                  static_cast<std::size_t>(ck));
  };
  const long li = static_cast<long>(i);
  const long lj = static_cast<long>(j);
  const long lk = static_cast<long>(k);
  // Vacuum defaults double as the provably-initialized fallback for the
  // (unreachable) case of an out-of-enum axis value.
  double e[4] = {kEps0, kEps0, kEps0, kEps0};
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  switch (axis) {
    case Axis::kX:
      cell(li, lj - 1, lk - 1, e[0], s[0]);
      cell(li, lj, lk - 1, e[1], s[1]);
      cell(li, lj - 1, lk, e[2], s[2]);
      cell(li, lj, lk, e[3], s[3]);
      break;
    case Axis::kY:
      cell(li - 1, lj, lk - 1, e[0], s[0]);
      cell(li, lj, lk - 1, e[1], s[1]);
      cell(li - 1, lj, lk, e[2], s[2]);
      cell(li, lj, lk, e[3], s[3]);
      break;
    case Axis::kZ:
      cell(li - 1, lj - 1, lk, e[0], s[0]);
      cell(li, lj - 1, lk, e[1], s[1]);
      cell(li - 1, lj, lk, e[2], s[2]);
      cell(li, lj, lk, e[3], s[3]);
      break;
  }
  eps = 0.25 * (e[0] + e[1] + e[2] + e[3]);
  sigma = 0.25 * (s[0] + s[1] + s[2] + s[3]);
}

void Grid3::bake() {
  if (baked_) throw std::logic_error("Grid3::bake: already baked");
  const std::size_t n = (nx_ + 1) * (ny_ + 1) * (nz_ + 1);
  ca_ex_.assign(n, 0.0);
  cb_ex_.assign(n, 0.0);
  ca_ey_.assign(n, 0.0);
  cb_ey_.assign(n, 0.0);
  ca_ez_.assign(n, 0.0);
  cb_ez_.assign(n, 0.0);

  auto bakeComponent = [&](Axis axis, std::vector<double>& ca,
                           std::vector<double>& cb, const std::vector<char>& pec,
                           std::size_t imax, std::size_t jmax, std::size_t kmax) {
    for (std::size_t i = 0; i < imax; ++i)
      for (std::size_t j = 0; j < jmax; ++j)
        for (std::size_t k = 0; k < kmax; ++k) {
          const std::size_t id = idx(i, j, k);
          if (pec[id] != 0) {
            ca[id] = 0.0;
            cb[id] = 0.0;
            continue;
          }
          double eps = kEps0, sigma = 0.0;
          edgeMaterial(axis, i, j, k, eps, sigma);
          const double h = sigma * dt_ / (2.0 * eps);
          ca[id] = (1.0 - h) / (1.0 + h);
          cb[id] = (dt_ / eps) / (1.0 + h);
          if (eps != kEps0 || sigma != 0.0) {
            material_edges_.push_back({axis, i, j, k, eps - kEps0, sigma, cb[id]});
          }
        }
  };
  bakeComponent(Axis::kX, ca_ex_, cb_ex_, pec_ex_, nx_, ny_ + 1, nz_ + 1);
  bakeComponent(Axis::kY, ca_ey_, cb_ey_, pec_ey_, nx_ + 1, ny_, nz_ + 1);
  bakeComponent(Axis::kZ, ca_ez_, cb_ez_, pec_ez_, nx_ + 1, ny_ + 1, nz_);
  baked_ = true;
}

double Grid3::edgeEps(Axis axis, std::size_t i, std::size_t j, std::size_t k) const {
  if (!baked_) throw std::logic_error("Grid3::edgeEps: call bake() first");
  double eps = kEps0, sigma = 0.0;
  edgeMaterial(axis, i, j, k, eps, sigma);
  return eps;
}

double Grid3::edgeSigma(Axis axis, std::size_t i, std::size_t j, std::size_t k) const {
  if (!baked_) throw std::logic_error("Grid3::edgeSigma: call bake() first");
  double eps = kEps0, sigma = 0.0;
  edgeMaterial(axis, i, j, k, eps, sigma);
  return sigma;
}

bool Grid3::isPecEdge(Axis axis, std::size_t i, std::size_t j, std::size_t k) const {
  const std::vector<char>& flags =
      axis == Axis::kX ? pec_ex_ : (axis == Axis::kY ? pec_ey_ : pec_ez_);
  return flags[idx(i, j, k)] != 0;
}

void Grid3::edgeCenter(Axis axis, std::size_t i, std::size_t j, std::size_t k,
                       double& x, double& y, double& z) const {
  x = static_cast<double>(i) * dx_;
  y = static_cast<double>(j) * dy_;
  z = static_cast<double>(k) * dz_;
  switch (axis) {
    case Axis::kX: x += 0.5 * dx_; break;
    case Axis::kY: y += 0.5 * dy_; break;
    case Axis::kZ: z += 0.5 * dz_; break;
  }
}

}  // namespace fdtdmm
