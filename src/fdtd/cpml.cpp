#include "fdtd/cpml.h"

#include <cmath>
#include <stdexcept>

namespace fdtdmm {

using namespace constants;

CpmlBoundary::CpmlBoundary(Grid3* grid, const CpmlOptions& opt)
    : g_(grid), t_(opt.thickness), opt_(opt) {
  if (g_ == nullptr) throw std::invalid_argument("CpmlBoundary: null grid");
  if (t_ < 2) throw std::invalid_argument("CpmlBoundary: thickness must be >= 2");
  if (g_->nx() < 2 * t_ + 4 || g_->ny() < 2 * t_ + 4 || g_->nz() < 2 * t_ + 4)
    throw std::invalid_argument("CpmlBoundary: grid too small for PML thickness");

  ax_ = buildAxis(g_->nx() + 1, g_->dx());
  ay_ = buildAxis(g_->ny() + 1, g_->dy());
  az_ = buildAxis(g_->nz() + 1, g_->dz());

  const std::size_t n = (g_->nx() + 1) * (g_->ny() + 1) * (g_->nz() + 1);
  for (auto* p : {&psi_exy_, &psi_exz_, &psi_eyz_, &psi_eyx_, &psi_ezx_, &psi_ezy_,
                  &psi_hxy_, &psi_hxz_, &psi_hyz_, &psi_hyx_, &psi_hzx_, &psi_hzy_}) {
    p->assign(n, 0.0);
  }
}

CpmlBoundary::AxisCoeffs CpmlBoundary::buildAxis(std::size_t n_nodes, double d) const {
  AxisCoeffs c;
  c.b_full.assign(n_nodes, 0.0);
  c.c_full.assign(n_nodes, 0.0);
  c.b_half.assign(n_nodes, 0.0);
  c.c_half.assign(n_nodes, 0.0);

  const double sigma_max = opt_.sigma_factor * 0.8 *
                           (opt_.grading_order + 1.0) / (kEta0 * d);
  const double dt = g_->dt();
  const auto n_last = static_cast<double>(n_nodes - 1);

  auto fill = [&](double pos, double& b, double& cc) {
    // Depth into the PML measured from the inner interface, in [0, 1].
    double depth = 0.0;
    const double tt = static_cast<double>(t_);
    if (pos < tt) {
      depth = (tt - pos) / tt;
    } else if (pos > n_last - tt) {
      depth = (pos - (n_last - tt)) / tt;
    } else {
      b = 0.0;
      cc = 0.0;
      return;
    }
    const double sigma = sigma_max * std::pow(depth, opt_.grading_order);
    const double a = opt_.a_max * (1.0 - depth);  // CFS alpha, max at inner edge
    b = std::exp(-(sigma / kEps0 + a / kEps0) * dt);
    const double denom = sigma + a;
    cc = denom > 0.0 ? sigma / denom * (b - 1.0) : 0.0;
  };

  for (std::size_t k = 0; k < n_nodes; ++k) {
    fill(static_cast<double>(k), c.b_full[k], c.c_full[k]);
    fill(static_cast<double>(k) + 0.5, c.b_half[k], c.c_half[k]);
  }
  return c;
}

void CpmlBoundary::updateECorrections() {
  Grid3& g = *g_;
  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();
  const double idx_ = 1.0 / g.dx(), idy = 1.0 / g.dy(), idz = 1.0 / g.dz();
  const std::vector<double>& cb_ex = g.cbEx();
  const std::vector<double>& cb_ey = g.cbEy();
  const std::vector<double>& cb_ez = g.cbEz();

  // Ex: corrections from dHz/dy (y-PML) and dHy/dz (z-PML).
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 1; j < ny; ++j)
      for (std::size_t k = 1; k < nz; ++k) {
        const std::size_t id = g.idx(i, j, k);
        const double by = ay_.b_full[j], cy = ay_.c_full[j];
        const double bz = az_.b_full[k], cz = az_.c_full[k];
        if (cy == 0.0 && cz == 0.0 && psi_exy_[id] == 0.0 && psi_exz_[id] == 0.0)
          continue;
        const double dhzdy = (g.hz(i, j, k) - g.hz(i, j - 1, k)) * idy;
        const double dhydz = (g.hy(i, j, k) - g.hy(i, j, k - 1)) * idz;
        psi_exy_[id] = by * psi_exy_[id] + cy * dhzdy;
        psi_exz_[id] = bz * psi_exz_[id] + cz * dhydz;
        g.exData()[id] += cb_ex[id] * (psi_exy_[id] - psi_exz_[id]);
      }
  // Ey: dHx/dz (z) and dHz/dx (x).
  for (std::size_t i = 1; i < nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t k = 1; k < nz; ++k) {
        const std::size_t id = g.idx(i, j, k);
        const double bz = az_.b_full[k], cz = az_.c_full[k];
        const double bx = ax_.b_full[i], cx = ax_.c_full[i];
        if (cz == 0.0 && cx == 0.0 && psi_eyz_[id] == 0.0 && psi_eyx_[id] == 0.0)
          continue;
        const double dhxdz = (g.hx(i, j, k) - g.hx(i, j, k - 1)) * idz;
        const double dhzdx = (g.hz(i, j, k) - g.hz(i - 1, j, k)) * idx_;
        psi_eyz_[id] = bz * psi_eyz_[id] + cz * dhxdz;
        psi_eyx_[id] = bx * psi_eyx_[id] + cx * dhzdx;
        g.eyData()[id] += cb_ey[id] * (psi_eyz_[id] - psi_eyx_[id]);
      }
  // Ez: dHy/dx (x) and dHx/dy (y).
  for (std::size_t i = 1; i < nx; ++i)
    for (std::size_t j = 1; j < ny; ++j)
      for (std::size_t k = 0; k < nz; ++k) {
        const std::size_t id = g.idx(i, j, k);
        const double bx = ax_.b_full[i], cx = ax_.c_full[i];
        const double by = ay_.b_full[j], cy = ay_.c_full[j];
        if (cx == 0.0 && cy == 0.0 && psi_ezx_[id] == 0.0 && psi_ezy_[id] == 0.0)
          continue;
        const double dhydx = (g.hy(i, j, k) - g.hy(i - 1, j, k)) * idx_;
        const double dhxdy = (g.hx(i, j, k) - g.hx(i, j - 1, k)) * idy;
        psi_ezx_[id] = bx * psi_ezx_[id] + cx * dhydx;
        psi_ezy_[id] = by * psi_ezy_[id] + cy * dhxdy;
        g.ezData()[id] += cb_ez[id] * (psi_ezx_[id] - psi_ezy_[id]);
      }
}

void CpmlBoundary::updateHCorrections() {
  Grid3& g = *g_;
  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();
  const double idx_ = 1.0 / g.dx(), idy = 1.0 / g.dy(), idz = 1.0 / g.dz();
  const double ch = g.dt() / kMu0;

  // Hx: dEz/dy (y half) and dEy/dz (z half).
  for (std::size_t i = 0; i <= nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t k = 0; k < nz; ++k) {
        const double by = ay_.b_half[j], cy = ay_.c_half[j];
        const double bz = az_.b_half[k], cz = az_.c_half[k];
        const std::size_t id = g.idx(i, j, k);
        if (cy == 0.0 && cz == 0.0 && psi_hxy_[id] == 0.0 && psi_hxz_[id] == 0.0)
          continue;
        const double dezdy = (g.ez(i, j + 1, k) - g.ez(i, j, k)) * idy;
        const double deydz = (g.ey(i, j, k + 1) - g.ey(i, j, k)) * idz;
        psi_hxy_[id] = by * psi_hxy_[id] + cy * dezdy;
        psi_hxz_[id] = bz * psi_hxz_[id] + cz * deydz;
        g.hxData()[id] -= ch * (psi_hxy_[id] - psi_hxz_[id]);
      }
  // Hy: dEx/dz (z half) and dEz/dx (x half).
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j <= ny; ++j)
      for (std::size_t k = 0; k < nz; ++k) {
        const double bz = az_.b_half[k], cz = az_.c_half[k];
        const double bx = ax_.b_half[i], cx = ax_.c_half[i];
        const std::size_t id = g.idx(i, j, k);
        if (cz == 0.0 && cx == 0.0 && psi_hyz_[id] == 0.0 && psi_hyx_[id] == 0.0)
          continue;
        const double dexdz = (g.ex(i, j, k + 1) - g.ex(i, j, k)) * idz;
        const double dezdx = (g.ez(i + 1, j, k) - g.ez(i, j, k)) * idx_;
        psi_hyz_[id] = bz * psi_hyz_[id] + cz * dexdz;
        psi_hyx_[id] = bx * psi_hyx_[id] + cx * dezdx;
        g.hyData()[id] -= ch * (psi_hyz_[id] - psi_hyx_[id]);
      }
  // Hz: dEy/dx (x half) and dEx/dy (y half).
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t k = 0; k <= nz; ++k) {
        const double bx = ax_.b_half[i], cx = ax_.c_half[i];
        const double by = ay_.b_half[j], cy = ay_.c_half[j];
        const std::size_t id = g.idx(i, j, k);
        if (cx == 0.0 && cy == 0.0 && psi_hzx_[id] == 0.0 && psi_hzy_[id] == 0.0)
          continue;
        const double deydx = (g.ey(i + 1, j, k) - g.ey(i, j, k)) * idx_;
        const double dexdy = (g.ex(i, j + 1, k) - g.ex(i, j, k)) * idy;
        psi_hzx_[id] = bx * psi_hzx_[id] + cx * deydx;
        psi_hzy_[id] = by * psi_hzy_[id] + cy * dexdy;
        g.hzData()[id] -= ch * (psi_hzx_[id] - psi_hzy_[id]);
      }
}

void CpmlBoundary::applyPecBacking() {
  Grid3& g = *g_;
  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();
  for (std::size_t j = 0; j <= ny; ++j)
    for (std::size_t k = 0; k <= nz; ++k) {
      if (j < ny) {
        g.ey(0, j, k) = 0.0;
        g.ey(nx, j, k) = 0.0;
      }
      if (k < nz) {
        g.ez(0, j, k) = 0.0;
        g.ez(nx, j, k) = 0.0;
      }
    }
  for (std::size_t i = 0; i <= nx; ++i)
    for (std::size_t k = 0; k <= nz; ++k) {
      if (i < nx) {
        g.ex(i, 0, k) = 0.0;
        g.ex(i, ny, k) = 0.0;
      }
      if (k < nz) {
        g.ez(i, 0, k) = 0.0;
        g.ez(i, ny, k) = 0.0;
      }
    }
  for (std::size_t i = 0; i <= nx; ++i)
    for (std::size_t j = 0; j <= ny; ++j) {
      if (i < nx) {
        g.ex(i, j, 0) = 0.0;
        g.ex(i, j, nz) = 0.0;
      }
      if (j < ny) {
        g.ey(i, j, 0) = 0.0;
        g.ey(i, j, nz) = 0.0;
      }
    }
}

}  // namespace fdtdmm
