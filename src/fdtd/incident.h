#pragma once
/// \file incident.h
/// Analytic incident plane-wave excitation for the scattered-field
/// formulation. The solver stores *scattered* fields; the incident wave
/// (a closed-form vacuum plane wave) enters through
///  * tangential-E forcing on PEC surfaces (E_s = -E_i),
///  * volumetric polarization/conduction corrections in dielectric cells,
///  * the eps0 dE_i,z/dt term of the lumped-cell update, Eq. (8).
/// This matches the split incident/scattered fields of the paper exactly
/// and avoids any auxiliary-grid dispersion mismatch.

#include <functional>

#include "fdtd/grid.h"

namespace fdtdmm {

/// Pulse shape g(t) with analytic derivative.
struct PulseShape {
  std::function<double(double)> g;   ///< waveform (dimensionless)
  std::function<double(double)> dg;  ///< time derivative [1/s]
};

/// Gaussian pulse shape exp(-((t-t0)/sigma)^2/2) with analytic derivative.
/// \throws std::invalid_argument if sigma <= 0.
PulseShape gaussianPulseShape(double t0, double sigma);

/// Uniform plane wave in vacuum:
///   E(r, t) = p_hat * amplitude * g(t - k_hat . (r - r0) / c0).
/// Incidence is specified by the arrival direction (theta, phi) in standard
/// spherical coordinates — the wave *comes from* that direction, so the
/// propagation vector is k_hat = -r_hat(theta, phi) — and the polarization
/// by a theta/phi mix (the paper's Fig. 7 pulse is theta-polarized,
/// theta = 90 deg, phi = 180 deg, 2 kV/m, 9.2 GHz bandwidth).
class PlaneWave {
 public:
  /// \throws std::invalid_argument if the shape is incomplete or the
  ///         polarization mix is zero.
  PlaneWave(double theta_rad, double phi_rad, double amplitude,
            PulseShape shape, double pol_theta = 1.0, double pol_phi = 0.0,
            double x0 = 0.0, double y0 = 0.0, double z0 = 0.0);

  /// Incident E-field component at (x, y, z, t).
  double field(Axis comp, double x, double y, double z, double t) const {
    return pol_[static_cast<int>(comp)] * amp_ * shape_.g(retarded(x, y, z, t));
  }

  /// Time derivative of the incident E-field component.
  double fieldDt(Axis comp, double x, double y, double z, double t) const {
    return pol_[static_cast<int>(comp)] * amp_ * shape_.dg(retarded(x, y, z, t));
  }

  /// Propagation delay phase: tau(r) = k_hat . (r - r0) / c0, so the
  /// retarded time is t - tau. Exposed so hot loops can precompute tau
  /// per edge and evaluate only g / dg per step.
  double delay(double x, double y, double z) const {
    return (kx_ * (x - x0_) + ky_ * (y - y0_) + kz_ * (z - z0_)) / constants::kC0;
  }

  double polarization(Axis comp) const { return pol_[static_cast<int>(comp)]; }
  double amplitude() const { return amp_; }
  const PulseShape& shape() const { return shape_; }

 private:
  double retarded(double x, double y, double z, double t) const {
    return t - delay(x, y, z);
  }

  double kx_, ky_, kz_;  ///< propagation direction (unit)
  double pol_[3];        ///< E polarization (unit)
  double amp_;
  PulseShape shape_;
  double x0_, y0_, z0_;
};

}  // namespace fdtdmm
