#include "fdtd/incident.h"

#include <cmath>
#include <stdexcept>

namespace fdtdmm {

PulseShape gaussianPulseShape(double t0, double sigma) {
  if (sigma <= 0.0) throw std::invalid_argument("gaussianPulseShape: sigma must be > 0");
  PulseShape s;
  s.g = [t0, sigma](double t) {
    const double u = (t - t0) / sigma;
    return std::exp(-0.5 * u * u);
  };
  s.dg = [t0, sigma](double t) {
    const double u = (t - t0) / sigma;
    return -(u / sigma) * std::exp(-0.5 * u * u);
  };
  return s;
}

PlaneWave::PlaneWave(double theta_rad, double phi_rad, double amplitude,
                     PulseShape shape, double pol_theta, double pol_phi,
                     double x0, double y0, double z0)
    : amp_(amplitude), shape_(std::move(shape)), x0_(x0), y0_(y0), z0_(z0) {
  if (!shape_.g || !shape_.dg)
    throw std::invalid_argument("PlaneWave: pulse shape must define g and dg");
  const double st = std::sin(theta_rad), ct = std::cos(theta_rad);
  const double sp = std::sin(phi_rad), cp = std::cos(phi_rad);
  // The wave comes *from* (theta, phi): propagation along -r_hat.
  kx_ = -st * cp;
  ky_ = -st * sp;
  kz_ = -ct;
  // Spherical unit vectors at the source direction.
  const double eth[3] = {ct * cp, ct * sp, -st};
  const double eph[3] = {-sp, cp, 0.0};
  double norm2 = 0.0;
  for (int c = 0; c < 3; ++c) {
    pol_[c] = pol_theta * eth[c] + pol_phi * eph[c];
    norm2 += pol_[c] * pol_[c];
  }
  if (norm2 <= 0.0) throw std::invalid_argument("PlaneWave: zero polarization");
  const double inv = 1.0 / std::sqrt(norm2);
  for (double& p : pol_) p *= inv;
}

}  // namespace fdtdmm
