#pragma once
/// \file cpml.h
/// Convolutional PML (Roden & Gedney) absorbing boundary for the 3D FDTD
/// solver — the production-quality alternative to the first-order Mur ABC
/// (reflections typically 30-50 dB lower). Implemented with kappa = 1 so
/// the PML enters purely as psi-correction terms added after the standard
/// curl updates; the memory variables use the standard recursive
/// convolution
///   psi^{n} = b psi^{n-1} + c (dF/du),  b = exp(-(sigma/eps0 + a) dt),
///   c = sigma / (sigma + a) * (b - 1)
/// with polynomially graded sigma and linearly graded a.

#include <cstddef>
#include <vector>

#include "fdtd/grid.h"

namespace fdtdmm {

/// CPML configuration.
struct CpmlOptions {
  std::size_t thickness = 8;  ///< PML depth [cells] on every face
  double grading_order = 3.0; ///< polynomial grading exponent m
  double sigma_factor = 1.0;  ///< sigma_max = factor * 0.8 (m+1)/(eta0 dx)
  double a_max = 0.05;        ///< CFS alpha at the PML inner edge [S/m-ish]
};

/// CPML state: attach to a grid, call updateHCorrections() after the H
/// update and updateECorrections() after the E update of every step.
/// The outermost tangential E layer must still be held at zero (PEC
/// backing), which the owner handles by zeroing the boundary planes.
class CpmlBoundary {
 public:
  /// \throws std::invalid_argument on null grid or a thickness that does
  ///         not leave at least 4 interior cells per axis.
  CpmlBoundary(Grid3* grid, const CpmlOptions& opt);

  /// Adds the psi corrections to E inside the PML slabs (call after the
  /// volume E update, before PEC forcing).
  void updateECorrections();

  /// Adds the psi corrections to H inside the PML slabs (call after the
  /// volume H update).
  void updateHCorrections();

  /// Zeroes the tangential E on the outer boundary (PEC backing).
  void applyPecBacking();

  std::size_t thickness() const { return t_; }

 private:
  /// Per-axis graded coefficient tables at integer (E/full) and half (H)
  /// positions; index = node coordinate along the axis.
  struct AxisCoeffs {
    std::vector<double> b_full, c_full;  ///< at integer positions
    std::vector<double> b_half, c_half;  ///< at +1/2 positions
  };
  AxisCoeffs buildAxis(std::size_t n_nodes, double d) const;

  Grid3* g_;
  std::size_t t_;
  CpmlOptions opt_;
  AxisCoeffs ax_, ay_, az_;

  // psi memory arrays, full-domain indexed like the field arrays.
  // E-side: psi_e[c][u] is the correction to E_c from the u-derivative.
  std::vector<double> psi_exy_, psi_exz_;  ///< Ex: dHz/dy, dHy/dz
  std::vector<double> psi_eyz_, psi_eyx_;  ///< Ey: dHx/dz, dHz/dx
  std::vector<double> psi_ezx_, psi_ezy_;  ///< Ez: dHy/dx, dHx/dy
  // H-side.
  std::vector<double> psi_hxy_, psi_hxz_;  ///< Hx: dEz/dy, dEy/dz
  std::vector<double> psi_hyz_, psi_hyx_;  ///< Hy: dEx/dz, dEz/dx
  std::vector<double> psi_hzx_, psi_hzy_;  ///< Hz: dEy/dx, dEx/dy
};

}  // namespace fdtdmm
