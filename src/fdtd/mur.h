#pragma once
/// \file mur.h
/// First-order Mur absorbing boundary condition on all six faces of the
/// grid, applied to the tangential scattered E components. The paper's
/// validation domain "is terminated by absorbing boundary conditions";
/// Mur-1 at vacuum speed is sufficient for the mostly-normal incidence of
/// the guided-wave scenarios (reflection < ~1-2 %).

#include <vector>

#include "fdtd/grid.h"

namespace fdtdmm {

/// Mur-1 ABC helper: snapshot() must be called with the pre-update fields,
/// apply() after the volume E update of the same step.
class MurBoundary {
 public:
  /// \throws std::invalid_argument on a null grid.
  explicit MurBoundary(Grid3* grid);

  /// Captures the boundary-layer field values of the current step.
  void snapshot();

  /// Writes the boundary E values for the new step (call after updateE).
  void apply();

 private:
  Grid3* g_;
  double cx_, cy_, cz_;  ///< Mur coefficients per axis

  // Old-value storage: for each face, the two tangential components on the
  // boundary plane (layer 0) and the adjacent plane (layer 1).
  struct FaceStore {
    std::vector<double> t1_l0, t1_l1, t2_l0, t2_l1;
  };
  FaceStore x0_, x1_, y0_, y1_, z0_, z1_;
};

}  // namespace fdtdmm
