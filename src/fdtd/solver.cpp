#include "fdtd/solver.h"

#include <cmath>
#include <stdexcept>

#include "math/newton.h"

namespace fdtdmm {

using namespace constants;

LumpedPort::LumpedPort(const LumpedPortSpec& spec, PortModelPtr model)
    : spec_(spec), model_(std::move(model)) {
  if (!model_) throw std::invalid_argument("LumpedPort: null model");
  if (spec_.sign != 1 && spec_.sign != -1)
    throw std::invalid_argument("LumpedPort: sign must be +1 or -1");
}

FdtdSolver::FdtdSolver(Grid3 grid, const FdtdSolverOptions& opt)
    : grid_(std::move(grid)), opt_(opt) {
  if (!grid_.baked())
    throw std::invalid_argument("FdtdSolver: grid must be baked before use");
  if (opt_.newton_tolerance <= 0.0 || opt_.max_newton_iterations < 1)
    throw std::invalid_argument("FdtdSolver: bad Newton options");
  if (opt_.boundary == BoundaryKind::kCpml) {
    cpml_ = std::make_unique<CpmlBoundary>(&grid_, opt_.cpml);
  } else {
    mur_ = std::make_unique<MurBoundary>(&grid_);
  }
}

void FdtdSolver::setIncidentWave(const PlaneWave& wave) {
  if (started_) throw std::logic_error("FdtdSolver: cannot set incident wave after start");
  incident_ = std::make_unique<PlaneWave>(wave);

  // Precompute PEC forcing tables: only edges with nonzero polarization
  // component need per-step evaluation.
  for (auto& v : pec_incident_) v.clear();
  for (const Grid3::PecEdge& e : grid_.pecEdges()) {
    const double amp = incident_->polarization(e.axis) * incident_->amplitude();
    if (amp == 0.0) continue;
    double x, y, z;
    grid_.edgeCenter(e.axis, e.i, e.j, e.k, x, y, z);
    pec_incident_[static_cast<int>(e.axis)].push_back(
        {grid_.idx(e.i, e.j, e.k), static_cast<int>(e.axis),
         incident_->delay(x, y, z), amp});
  }
  // Precompute dielectric correction tables.
  for (auto& v : mat_incident_) v.clear();
  for (const Grid3::MaterialEdge& e : grid_.materialEdges()) {
    const double amp = incident_->polarization(e.axis) * incident_->amplitude();
    if (amp == 0.0) continue;
    double x, y, z;
    grid_.edgeCenter(e.axis, e.i, e.j, e.k, x, y, z);
    mat_incident_[static_cast<int>(e.axis)].push_back(
        {grid_.idx(e.i, e.j, e.k), incident_->delay(x, y, z), amp,
         e.cb * e.d_eps, e.cb * e.sigma});
  }
}

LumpedPort* FdtdSolver::addLumpedPort(const LumpedPortSpec& spec, PortModelPtr model) {
  if (started_) throw std::logic_error("FdtdSolver: cannot add ports after start");
  // The Eq. (8) update needs the curl of H at the edge, which requires the
  // edge to be strictly interior in the two transverse directions.
  bool interior = false;
  switch (spec.axis) {
    case Axis::kX:
      interior = spec.j >= 1 && spec.k >= 1 && spec.j < grid_.ny() &&
                 spec.k < grid_.nz() && spec.i < grid_.nx();
      break;
    case Axis::kY:
      interior = spec.i >= 1 && spec.k >= 1 && spec.i < grid_.nx() &&
                 spec.k < grid_.nz() && spec.j < grid_.ny();
      break;
    case Axis::kZ:
      interior = spec.i >= 1 && spec.j >= 1 && spec.i < grid_.nx() &&
                 spec.j < grid_.ny() && spec.k < grid_.nz();
      break;
  }
  if (!interior)
    throw std::invalid_argument(
        "FdtdSolver: lumped port edge must be strictly interior transversally");
  if (grid_.isPecEdge(spec.axis, spec.i, spec.j, spec.k))
    throw std::invalid_argument("FdtdSolver: lumped port edge is PEC");

  auto port = std::make_unique<LumpedPort>(spec, std::move(model));
  // Alpha coefficients of Eqs. (9)-(12), evaluated with the edge-effective
  // material around the port cell. d_axis is the edge length; the current
  // density spreads over the transverse cell area.
  const double eps = grid_.edgeEps(spec.axis, spec.i, spec.j, spec.k);
  const double sigma = grid_.edgeSigma(spec.axis, spec.i, spec.j, spec.k);
  const double dt = grid_.dt();
  double d_axis = grid_.dz(), area = grid_.dx() * grid_.dy();
  switch (spec.axis) {
    case Axis::kX:
      d_axis = grid_.dx();
      area = grid_.dy() * grid_.dz();
      break;
    case Axis::kY:
      d_axis = grid_.dy();
      area = grid_.dx() * grid_.dz();
      break;
    case Axis::kZ:
      break;
  }
  const double h = sigma * dt / (2.0 * eps);
  port->alpha0_ = 1.0 + h;
  port->alpha1_ = 1.0 - h;
  port->alpha2_ = d_axis * dt / eps;
  port->alpha3_ = d_axis * dt / (2.0 * eps * area);
  port->d_axis_ = d_axis;
  if (incident_) {
    double x, y, z;
    grid_.edgeCenter(spec.axis, spec.i, spec.j, spec.k, x, y, z);
    port->inc_delay_ = incident_->delay(x, y, z);
  }
  ports_.push_back(std::move(port));
  return ports_.back().get();
}

std::size_t FdtdSolver::addVoltageProbe(const VoltageProbeSpec& spec) {
  bool ok = spec.k0 < spec.k1;
  switch (spec.axis) {
    case Axis::kX:
      ok = ok && spec.i <= grid_.ny() && spec.j <= grid_.nz() && spec.k1 <= grid_.nx();
      break;
    case Axis::kY:
      ok = ok && spec.i <= grid_.nx() && spec.j <= grid_.nz() && spec.k1 <= grid_.ny();
      break;
    case Axis::kZ:
      ok = ok && spec.i <= grid_.nx() && spec.j <= grid_.ny() && spec.k1 <= grid_.nz();
      break;
  }
  if (!ok) throw std::invalid_argument("FdtdSolver: invalid voltage probe span");
  v_probe_specs_.push_back(spec);
  v_probes_.emplace_back(0.0, grid_.dt(), Vector{});
  return v_probes_.size() - 1;
}

std::size_t FdtdSolver::addCurrentProbe(const CurrentProbeSpec& spec) {
  bool ok = false;
  switch (spec.axis) {
    case Axis::kX:
      ok = spec.j >= 1 && spec.k >= 1 && spec.i < grid_.nx() && spec.j < grid_.ny() &&
           spec.k < grid_.nz();
      break;
    case Axis::kY:
      ok = spec.i >= 1 && spec.k >= 1 && spec.i < grid_.nx() && spec.j < grid_.ny() &&
           spec.k < grid_.nz();
      break;
    case Axis::kZ:
      ok = spec.i >= 1 && spec.j >= 1 && spec.i < grid_.nx() && spec.j < grid_.ny() &&
           spec.k < grid_.nz();
      break;
  }
  if (!ok)
    throw std::invalid_argument("FdtdSolver: current probe edge must be interior");
  i_probe_specs_.push_back(spec);
  i_probes_.emplace_back(0.0, grid_.dt(), Vector{});
  return i_probes_.size() - 1;
}

NtffRecorder* FdtdSolver::addNtffSurface(const NtffSpec& spec) {
  if (started_) throw std::logic_error("FdtdSolver: cannot add NTFF surface after start");
  ntff_.push_back(std::make_unique<NtffRecorder>(&grid_, spec));
  return ntff_.back().get();
}

std::size_t FdtdSolver::addFieldProbe(const FieldProbeSpec& spec) {
  if (spec.i > grid_.nx() || spec.j > grid_.ny() || spec.k > grid_.nz())
    throw std::invalid_argument("FdtdSolver: invalid field probe");
  f_probe_specs_.push_back(spec);
  f_probes_.emplace_back(0.0, grid_.dt(), Vector{});
  return f_probes_.size() - 1;
}

double FdtdSolver::totalE(Axis axis, std::size_t i, std::size_t j, std::size_t k,
                          double t) const {
  double e = 0.0;
  switch (axis) {
    case Axis::kX: e = grid_.ex(i, j, k); break;
    case Axis::kY: e = grid_.ey(i, j, k); break;
    case Axis::kZ: e = grid_.ez(i, j, k); break;
  }
  if (incident_) {
    double x, y, z;
    grid_.edgeCenter(axis, i, j, k, x, y, z);
    e += incident_->field(axis, x, y, z, t);
  }
  return e;
}

void FdtdSolver::updateH() {
  Grid3& g = grid_;
  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();
  const double chx = g.dt() / kMu0;
  const double idx_ = 1.0 / g.dx(), idy = 1.0 / g.dy(), idz = 1.0 / g.dz();
  for (std::size_t i = 0; i <= nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t k = 0; k < nz; ++k) {
        g.hx(i, j, k) -= chx * ((g.ez(i, j + 1, k) - g.ez(i, j, k)) * idy -
                                (g.ey(i, j, k + 1) - g.ey(i, j, k)) * idz);
      }
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j <= ny; ++j)
      for (std::size_t k = 0; k < nz; ++k) {
        g.hy(i, j, k) -= chx * ((g.ex(i, j, k + 1) - g.ex(i, j, k)) * idz -
                                (g.ez(i + 1, j, k) - g.ez(i, j, k)) * idx_);
      }
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t k = 0; k <= nz; ++k) {
        g.hz(i, j, k) -= chx * ((g.ey(i + 1, j, k) - g.ey(i, j, k)) * idx_ -
                                (g.ex(i, j + 1, k) - g.ex(i, j, k)) * idy);
      }
}

void FdtdSolver::updateE() {
  Grid3& g = grid_;
  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();
  const double idx_ = 1.0 / g.dx(), idy = 1.0 / g.dy(), idz = 1.0 / g.dz();
  const std::vector<double>& ca_ex = g.caEx();
  const std::vector<double>& cb_ex = g.cbEx();
  const std::vector<double>& ca_ey = g.caEy();
  const std::vector<double>& cb_ey = g.cbEy();
  const std::vector<double>& ca_ez = g.caEz();
  const std::vector<double>& cb_ez = g.cbEz();

  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 1; j < ny; ++j)
      for (std::size_t k = 1; k < nz; ++k) {
        const std::size_t id = g.idx(i, j, k);
        const double curl = (g.hz(i, j, k) - g.hz(i, j - 1, k)) * idy -
                            (g.hy(i, j, k) - g.hy(i, j, k - 1)) * idz;
        g.exData()[id] = ca_ex[id] * g.exData()[id] + cb_ex[id] * curl;
      }
  for (std::size_t i = 1; i < nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t k = 1; k < nz; ++k) {
        const std::size_t id = g.idx(i, j, k);
        const double curl = (g.hx(i, j, k) - g.hx(i, j, k - 1)) * idz -
                            (g.hz(i, j, k) - g.hz(i - 1, j, k)) * idx_;
        g.eyData()[id] = ca_ey[id] * g.eyData()[id] + cb_ey[id] * curl;
      }
  for (std::size_t i = 1; i < nx; ++i)
    for (std::size_t j = 1; j < ny; ++j)
      for (std::size_t k = 0; k < nz; ++k) {
        const std::size_t id = g.idx(i, j, k);
        const double curl = (g.hy(i, j, k) - g.hy(i - 1, j, k)) * idx_ -
                            (g.hx(i, j, k) - g.hx(i, j - 1, k)) * idy;
        g.ezData()[id] = ca_ez[id] * g.ezData()[id] + cb_ez[id] * curl;
      }
}

void FdtdSolver::applyIncidentMaterialCorrections(double t_half) {
  if (!incident_) return;
  const PulseShape& shape = incident_->shape();
  std::vector<double>* fields[3] = {&grid_.exData(), &grid_.eyData(), &grid_.ezData()};
  for (int c = 0; c < 3; ++c) {
    std::vector<double>& f = *fields[c];
    for (const MatIncident& m : mat_incident_[c]) {
      const double xi = t_half - m.delay;
      // E_s update gains -cb * [(eps-eps0) dEi/dt + sigma Ei].
      f[m.id] -= m.cb_deps * m.amp * shape.dg(xi) + m.cb_sigma * m.amp * shape.g(xi);
    }
  }
}

void FdtdSolver::applyPecEdges(double t_new) {
  std::vector<double>* fields[3] = {&grid_.exData(), &grid_.eyData(), &grid_.ezData()};
  if (incident_) {
    const PulseShape& shape = incident_->shape();
    // Zero all PEC edges first (cheap relative to the incident subset), then
    // subtract the incident field where the polarization reaches.
    for (const Grid3::PecEdge& e : grid_.pecEdges()) {
      (*fields[static_cast<int>(e.axis)])[grid_.idx(e.i, e.j, e.k)] = 0.0;
    }
    for (int c = 0; c < 3; ++c) {
      std::vector<double>& f = *fields[c];
      for (const PecIncident& p : pec_incident_[c]) {
        f[p.id] = -p.amp * shape.g(t_new - p.delay);
      }
    }
  } else {
    for (const Grid3::PecEdge& e : grid_.pecEdges()) {
      (*fields[static_cast<int>(e.axis)])[grid_.idx(e.i, e.j, e.k)] = 0.0;
    }
  }
}

void FdtdSolver::solvePorts(double t_new, double t_half) {
  Grid3& g = grid_;
  const double idx_ = 1.0 / g.dx(), idy = 1.0 / g.dy(), idz = 1.0 / g.dz();
  for (auto& pp : ports_) {
    LumpedPort& port = *pp;
    const std::size_t i = port.spec_.i, j = port.spec_.j, k = port.spec_.k;
    const Axis axis = port.spec_.axis;
    const double s = static_cast<double>(port.spec_.sign);

    // Port-axis component of curl(H_s) at the port edge, time n+1/2.
    double w = 0.0;
    switch (axis) {
      case Axis::kX:
        w = (g.hz(i, j, k) - g.hz(i, j - 1, k)) * idy -
            (g.hy(i, j, k) - g.hy(i, j, k - 1)) * idz;
        break;
      case Axis::kY:
        w = (g.hx(i, j, k) - g.hx(i, j, k - 1)) * idz -
            (g.hz(i, j, k) - g.hz(i - 1, j, k)) * idx_;
        break;
      case Axis::kZ:
        w = (g.hy(i, j, k) - g.hy(i - 1, j, k)) * idx_ -
            (g.hx(i, j, k) - g.hx(i, j - 1, k)) * idy;
        break;
    }
    double ei_new = 0.0;
    if (incident_) {
      const PulseShape& shape = incident_->shape();
      const double amp = incident_->polarization(axis) * incident_->amplitude();
      // eps0 dEi/dt contribution of Eq. (8), evaluated at n+1/2.
      w += kEps0 * amp * shape.dg(t_half - port.inc_delay_);
      ei_new = amp * shape.g(t_new - port.inc_delay_);
    }

    const double rhs = port.alpha1_ * port.v_total_ + port.alpha2_ * w -
                       port.alpha3_ * s * port.i_prev_;
    double v = port.v_total_;  // warm start from the previous step
    PortModel& dev = *port.model_;
    NewtonOptions nopt;
    nopt.tolerance = opt_.newton_tolerance;
    nopt.max_iterations = opt_.max_newton_iterations;
    auto f = [&](double vx, double& df) {
      double didv = 0.0;
      const double idev = dev.current(s * vx, t_new, didv);
      df = port.alpha0_ + port.alpha3_ * didv;
      return port.alpha0_ * vx + port.alpha3_ * s * idev - rhs;
    };
    const NewtonResult nr = newtonScalar(f, v, nopt);
    if (!nr.converged)
      throw std::runtime_error("FdtdSolver: port '" + port.spec_.label +
                               "' Newton solve did not converge");
    port.max_newton_ = std::max(port.max_newton_, nr.iterations);
    port.total_newton_ += nr.iterations;

    double didv = 0.0;
    const double i_dev = dev.current(s * v, t_new, didv);
    dev.commit(s * v, t_new);
    port.i_prev_ = i_dev;
    port.v_total_ = v;
    // Write back the scattered field: E_s = v_total/d - E_i.
    const double es = v / port.d_axis_ - ei_new;
    switch (axis) {
      case Axis::kX: g.ex(i, j, k) = es; break;
      case Axis::kY: g.ey(i, j, k) = es; break;
      case Axis::kZ: g.ez(i, j, k) = es; break;
    }

    port.v_rec_.push(s * v);
    port.i_rec_.push(i_dev);
  }
}

void FdtdSolver::recordProbes() {
  const double t = time();
  for (std::size_t p = 0; p < v_probe_specs_.size(); ++p) {
    const VoltageProbeSpec& spec = v_probe_specs_[p];
    double acc = 0.0;
    double d = grid_.dz();
    for (std::size_t u = spec.k0; u < spec.k1; ++u) {
      switch (spec.axis) {
        case Axis::kX:
          acc += totalE(Axis::kX, u, spec.i, spec.j, t);
          d = grid_.dx();
          break;
        case Axis::kY:
          acc += totalE(Axis::kY, spec.i, u, spec.j, t);
          d = grid_.dy();
          break;
        case Axis::kZ:
          acc += totalE(Axis::kZ, spec.i, spec.j, u, t);
          d = grid_.dz();
          break;
      }
    }
    v_probes_[p].push(static_cast<double>(spec.sign) * acc * d);
  }
  for (std::size_t p = 0; p < f_probe_specs_.size(); ++p) {
    const FieldProbeSpec& spec = f_probe_specs_[p];
    f_probes_[p].push(totalE(spec.axis, spec.i, spec.j, spec.k, t));
  }
  for (std::size_t p = 0; p < i_probe_specs_.size(); ++p) {
    const CurrentProbeSpec& spec = i_probe_specs_[p];
    const Grid3& g = grid_;
    const std::size_t i = spec.i, j = spec.j, k = spec.k;
    // Ampere loop of the scattered H around the edge (the incident H
    // carries no net current: it is source-free in vacuum).
    double cur = 0.0;
    switch (spec.axis) {
      case Axis::kX:
        cur = (g.hz(i, j, k) - g.hz(i, j - 1, k)) * g.dz() +
              (g.hy(i, j, k - 1) - g.hy(i, j, k)) * g.dy();
        break;
      case Axis::kY:
        cur = (g.hx(i, j, k) - g.hx(i, j, k - 1)) * g.dx() +
              (g.hz(i - 1, j, k) - g.hz(i, j, k)) * g.dz();
        break;
      case Axis::kZ:
        cur = (g.hy(i, j, k) - g.hy(i - 1, j, k)) * g.dy() +
              (g.hx(i, j - 1, k) - g.hx(i, j, k)) * g.dx();
        break;
    }
    i_probes_[p].push(cur);
  }
}

void FdtdSolver::stepOnce() {
  if (!started_) {
    started_ = true;
    for (auto& p : ports_) {
      p->model_->prepare(grid_.dt());
      p->v_rec_ = Waveform(grid_.dt(), grid_.dt(), Vector{});
      p->i_rec_ = Waveform(grid_.dt(), grid_.dt(), Vector{});
    }
    for (std::size_t p = 0; p < v_probes_.size(); ++p)
      v_probes_[p] = Waveform(grid_.dt(), grid_.dt(), Vector{});
    for (std::size_t p = 0; p < f_probes_.size(); ++p)
      f_probes_[p] = Waveform(grid_.dt(), grid_.dt(), Vector{});
    for (std::size_t p = 0; p < i_probes_.size(); ++p)
      i_probes_[p] = Waveform(grid_.dt(), grid_.dt(), Vector{});
  }
  const double dt = grid_.dt();
  const double t_new = static_cast<double>(step_ + 1) * dt;
  const double t_half = (static_cast<double>(step_) + 0.5) * dt;

  updateH();
  if (cpml_) cpml_->updateHCorrections();
  if (mur_) mur_->snapshot();
  updateE();
  if (cpml_) cpml_->updateECorrections();
  applyIncidentMaterialCorrections(t_half);
  if (mur_) {
    mur_->apply();
  } else {
    cpml_->applyPecBacking();
  }
  applyPecEdges(t_new);
  solvePorts(t_new, t_half);
  ++step_;
  recordProbes();
  for (auto& rec : ntff_) rec->accumulate(time());
}

void FdtdSolver::run(std::size_t n_steps) {
  for (std::size_t s = 0; s < n_steps; ++s) stepOnce();
}

void FdtdSolver::runUntil(double t_stop) {
  while (time() < t_stop) stepOnce();
}

const Waveform& FdtdSolver::voltageProbe(std::size_t index) const {
  if (index >= v_probes_.size())
    throw std::out_of_range("FdtdSolver::voltageProbe: bad index");
  return v_probes_[index];
}

const Waveform& FdtdSolver::fieldProbe(std::size_t index) const {
  if (index >= f_probes_.size())
    throw std::out_of_range("FdtdSolver::fieldProbe: bad index");
  return f_probes_[index];
}

const Waveform& FdtdSolver::currentProbe(std::size_t index) const {
  if (index >= i_probes_.size())
    throw std::out_of_range("FdtdSolver::currentProbe: bad index");
  return i_probes_[index];
}

int FdtdSolver::maxNewtonIterations() const {
  int m = 0;
  for (const auto& p : ports_) m = std::max(m, p->maxNewtonIterations());
  return m;
}

}  // namespace fdtdmm
