#pragma once
/// \file snapshot.h
/// Field-slice export for visualization: writes one E component over a
/// plane of the grid as CSV (row = first transverse coordinate, column =
/// second). Useful for inspecting standing waves, coupling paths, and the
/// incident-field footprint of the EMC scenarios.

#include <string>

#include "fdtd/grid.h"

namespace fdtdmm {

/// Which plane to slice.
enum class SlicePlane { kXY, kXZ, kYZ };

/// Writes component `comp` of the (scattered) E field over the plane
/// `plane` at node index `index` to a CSV file with a header row/column of
/// physical coordinates [m].
/// \throws std::invalid_argument on an out-of-range index,
///         std::runtime_error if the file cannot be written.
void writeFieldSliceCsv(const Grid3& grid, Axis comp, SlicePlane plane,
                        std::size_t index, const std::string& path);

}  // namespace fdtdmm
