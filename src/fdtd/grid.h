#pragma once
/// \file grid.h
/// 3D Yee grid: staggered E/H field storage, per-cell material maps
/// (relative permittivity and conductivity), PEC structures (volumes,
/// zero-thickness plates, wires), and the baking step that converts cell
/// materials into per-edge update coefficients
///   ca = (1 - s dt/2e) / (1 + s dt/2e),  cb = (dt/e) / (1 + s dt/2e)
/// exactly matching the alpha coefficients (9)-(12) of the paper at the
/// lumped cells.
///
/// Field components follow the standard Yee arrangement:
///   Ex(i,j,k) at ((i+1/2)dx, j dy, k dz)      i<nx, j<=ny, k<=nz
///   Ey(i,j,k) at (i dx, (j+1/2)dy, k dz)      i<=nx, j<ny, k<=nz
///   Ez(i,j,k) at (i dx, j dy, (k+1/2)dz)      i<=nx, j<=ny, k<nz
///   Hx(i,j,k) at (i dx, (j+1/2)dy, (k+1/2)dz) etc.
/// All arrays are allocated with a uniform (nx+1)(ny+1)(nz+1) layout so a
/// single linear index works for every component.

#include <cstddef>
#include <vector>

namespace fdtdmm {

/// Physical constants (SI).
namespace constants {
inline constexpr double kC0 = 299792458.0;             ///< speed of light [m/s]
inline constexpr double kMu0 = 1.25663706212e-6;       ///< vacuum permeability
inline constexpr double kEps0 = 8.8541878128e-12;      ///< vacuum permittivity
inline constexpr double kEta0 = 376.730313668;         ///< vacuum impedance
}  // namespace constants

/// Field component / axis tag.
enum class Axis { kX = 0, kY = 1, kZ = 2 };

/// Grid construction parameters.
struct GridSpec {
  std::size_t nx = 10, ny = 10, nz = 10;  ///< cell counts
  double dx = 1e-3, dy = 1e-3, dz = 1e-3; ///< cell sizes [m]
  double courant = 0.99;                  ///< fraction of the 3D CFL limit
};

/// The Yee grid with materials. Build geometry with the set*/pec* methods,
/// call bake(), then hand it to FdtdSolver.
class Grid3 {
 public:
  /// \throws std::invalid_argument on degenerate dimensions or courant
  ///         outside (0, 1].
  explicit Grid3(const GridSpec& spec);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  double dx() const { return dx_; }
  double dy() const { return dy_; }
  double dz() const { return dz_; }
  double dt() const { return dt_; }

  /// Linear index shared by all component arrays.
  std::size_t idx(std::size_t i, std::size_t j, std::size_t k) const {
    return (i * (ny_ + 1) + j) * (nz_ + 1) + k;
  }

  // Field accessors (no bounds checking in release builds; hot path).
  double& ex(std::size_t i, std::size_t j, std::size_t k) { return ex_[idx(i, j, k)]; }
  double& ey(std::size_t i, std::size_t j, std::size_t k) { return ey_[idx(i, j, k)]; }
  double& ez(std::size_t i, std::size_t j, std::size_t k) { return ez_[idx(i, j, k)]; }
  double& hx(std::size_t i, std::size_t j, std::size_t k) { return hx_[idx(i, j, k)]; }
  double& hy(std::size_t i, std::size_t j, std::size_t k) { return hy_[idx(i, j, k)]; }
  double& hz(std::size_t i, std::size_t j, std::size_t k) { return hz_[idx(i, j, k)]; }
  double ex(std::size_t i, std::size_t j, std::size_t k) const { return ex_[idx(i, j, k)]; }
  double ey(std::size_t i, std::size_t j, std::size_t k) const { return ey_[idx(i, j, k)]; }
  double ez(std::size_t i, std::size_t j, std::size_t k) const { return ez_[idx(i, j, k)]; }
  double hx(std::size_t i, std::size_t j, std::size_t k) const { return hx_[idx(i, j, k)]; }
  double hy(std::size_t i, std::size_t j, std::size_t k) const { return hy_[idx(i, j, k)]; }
  double hz(std::size_t i, std::size_t j, std::size_t k) const { return hz_[idx(i, j, k)]; }

  // ---- Geometry definition (before bake) -------------------------------

  /// Fills the cell box [i0,i1) x [j0,j1) x [k0,k1) with a dielectric.
  /// \throws std::invalid_argument on out-of-range or inverted boxes,
  ///         eps_r < 1, or sigma < 0.
  void setDielectricBox(std::size_t i0, std::size_t i1, std::size_t j0,
                        std::size_t j1, std::size_t k0, std::size_t k1,
                        double eps_r, double sigma = 0.0);

  /// Zero-thickness PEC plate normal to z at node plane k, spanning cells
  /// [i0,i1) x [j0,j1) (tangential Ex/Ey edges on the plane are forced).
  void pecPlateZ(std::size_t k, std::size_t i0, std::size_t i1, std::size_t j0,
                 std::size_t j1);
  /// Zero-thickness PEC plate normal to x at node plane i.
  void pecPlateX(std::size_t i, std::size_t j0, std::size_t j1, std::size_t k0,
                 std::size_t k1);
  /// Zero-thickness PEC plate normal to y at node plane j.
  void pecPlateY(std::size_t j, std::size_t i0, std::size_t i1, std::size_t k0,
                 std::size_t k1);

  /// Thin PEC wire along z through node column (i,j), spanning Ez edges
  /// k0..k1-1 (used for vias and lumped-element lead wires).
  void pecWireZ(std::size_t i, std::size_t j, std::size_t k0, std::size_t k1);

  /// Marks a single E edge as PEC (used to cut device gaps into wires).
  void pecEdge(Axis axis, std::size_t i, std::size_t j, std::size_t k);

  /// Computes the per-edge update coefficients from the cell material maps
  /// and freezes the geometry. Must be called exactly once before
  /// simulation. \throws std::logic_error if called twice.
  void bake();
  bool baked() const { return baked_; }

  // ---- Baked data (used by the solver) ----------------------------------

  const std::vector<double>& caEx() const { return ca_ex_; }
  const std::vector<double>& cbEx() const { return cb_ex_; }
  const std::vector<double>& caEy() const { return ca_ey_; }
  const std::vector<double>& cbEy() const { return cb_ey_; }
  const std::vector<double>& caEz() const { return ca_ez_; }
  const std::vector<double>& cbEz() const { return cb_ez_; }

  /// A PEC-forced E edge (tangential field pinned to -E_incident).
  struct PecEdge {
    Axis axis;
    std::size_t i, j, k;
  };
  const std::vector<PecEdge>& pecEdges() const { return pec_edges_; }

  /// An edge needing the scattered-field dielectric correction
  /// (eps_eff != eps0 or sigma_eff != 0); see FdtdSolver.
  struct MaterialEdge {
    Axis axis;
    std::size_t i, j, k;
    double d_eps;      ///< eps_eff - eps0
    double sigma;      ///< sigma_eff
    double cb;         ///< baked cb of this edge
  };
  const std::vector<MaterialEdge>& materialEdges() const { return material_edges_; }

  /// Effective permittivity/conductivity at an E edge (cell-averaged);
  /// used to form the paper's alpha coefficients at lumped cells.
  /// \throws std::logic_error before bake().
  double edgeEps(Axis axis, std::size_t i, std::size_t j, std::size_t k) const;
  double edgeSigma(Axis axis, std::size_t i, std::size_t j, std::size_t k) const;

  /// True if the edge was registered as PEC.
  bool isPecEdge(Axis axis, std::size_t i, std::size_t j, std::size_t k) const;

  /// Physical coordinates of an E-edge midpoint.
  void edgeCenter(Axis axis, std::size_t i, std::size_t j, std::size_t k,
                  double& x, double& y, double& z) const;

  // Raw arrays for the solver's hot loops.
  std::vector<double>& exData() { return ex_; }
  std::vector<double>& eyData() { return ey_; }
  std::vector<double>& ezData() { return ez_; }
  std::vector<double>& hxData() { return hx_; }
  std::vector<double>& hyData() { return hy_; }
  std::vector<double>& hzData() { return hz_; }

 private:
  void checkCellBox(std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                    std::size_t k0, std::size_t k1) const;
  double cellEps(std::size_t i, std::size_t j, std::size_t k) const;
  double cellSigma(std::size_t i, std::size_t j, std::size_t k) const;
  /// Averages material over the 4 cells around an edge, clamping at the
  /// domain boundary.
  void edgeMaterial(Axis axis, std::size_t i, std::size_t j, std::size_t k,
                    double& eps, double& sigma) const;

  std::size_t nx_, ny_, nz_;
  double dx_, dy_, dz_, dt_;

  std::vector<double> ex_, ey_, ez_, hx_, hy_, hz_;
  std::vector<double> cell_eps_r_, cell_sigma_;  ///< per cell
  std::vector<double> ca_ex_, cb_ex_, ca_ey_, cb_ey_, ca_ez_, cb_ez_;
  std::vector<char> pec_ex_, pec_ey_, pec_ez_;
  std::vector<PecEdge> pec_edges_;
  std::vector<MaterialEdge> material_edges_;
  bool baked_ = false;
};

}  // namespace fdtdmm
