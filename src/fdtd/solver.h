#pragma once
/// \file solver.h
/// 3D FDTD time stepper with lumped behavioral elements in the mesh — the
/// paper's hybridization engine (Section 3). Each time step:
///   1. leapfrog H update (scattered fields);
///   2. volume E update with baked material coefficients;
///   3. scattered-field dielectric corrections from the incident wave;
///   4. Mur-1 absorbing boundaries;
///   5. tangential-E forcing on PEC edges (E_s = -E_i);
///   6. per-port Newton-Raphson solve of the coupled Eq. (8) + device law
///      (Eq. (13) for RBF macromodels), overwriting the port edge field;
///   7. probe recording.

#include <memory>
#include <string>
#include <vector>

#include "fdtd/cpml.h"
#include "fdtd/grid.h"
#include "fdtd/incident.h"
#include "fdtd/mur.h"
#include "fdtd/ntff.h"
#include "signal/port_model.h"
#include "signal/waveform.h"

namespace fdtdmm {

/// Placement of a lumped one-port on an E edge of any orientation.
struct LumpedPortSpec {
  Axis axis = Axis::kZ;             ///< edge direction of the device
  std::size_t i = 0, j = 0, k = 0;  ///< edge indices (must be interior in the
                                    ///< two transverse directions)
  int sign = +1;  ///< +1: device + terminal at the lower node along `axis`
                  ///< (v_device = sign * E_axis * d_axis)
  std::string label = "port";
};

/// A lumped behavioral element inserted in the mesh, solved per Eq. (8).
class LumpedPort {
 public:
  LumpedPort(const LumpedPortSpec& spec, PortModelPtr model);

  const std::string& label() const { return spec_.label; }
  const LumpedPortSpec& spec() const { return spec_; }

  /// Port voltage/current histories (device sign convention), recorded at
  /// every accepted step.
  const Waveform& voltage() const { return v_rec_; }
  const Waveform& current() const { return i_rec_; }

  int maxNewtonIterations() const { return max_newton_; }
  long long totalNewtonIterations() const { return total_newton_; }

 private:
  friend class FdtdSolver;

  LumpedPortSpec spec_;
  PortModelPtr model_;
  // Precomputed alpha coefficients of Eqs. (9)-(12).
  double alpha0_ = 1.0, alpha1_ = 1.0, alpha2_ = 0.0, alpha3_ = 0.0;
  double d_axis_ = 0.0;     ///< edge length along the port axis
  double v_total_ = 0.0;    ///< total cell voltage at the previous step
  double i_prev_ = 0.0;     ///< device current at the previous step (mesh sign)
  double inc_delay_ = 0.0;  ///< plane-wave delay at the edge center
  int max_newton_ = 0;
  long long total_newton_ = 0;
  Waveform v_rec_;
  Waveform i_rec_;
};

/// Voltage probe: line integral of the total E component along `axis` over
/// a contiguous edge span, times `sign` (so it can match a device's
/// terminal convention). For axis = kZ the span runs over k in [k0, k1)
/// at fixed (i, j); analogously for the other axes (the `0`/`1` fields
/// index the probe axis, i/j the transverse coordinates in x,y,z order
/// with the probe axis removed).
struct VoltageProbeSpec {
  Axis axis = Axis::kZ;
  std::size_t i = 0, j = 0, k0 = 0, k1 = 1;
  int sign = +1;
  std::string label = "v";
};

/// Point probe of one total E component.
struct FieldProbeSpec {
  Axis axis = Axis::kZ;
  std::size_t i = 0, j = 0, k = 0;
  std::string label = "e";
};

/// Current probe: Ampere loop around the E edge (axis, i, j, k); records
/// the total (conduction + displacement) current through the loop in the
/// +axis direction. On a lumped-port edge at DC this equals the device
/// current.
struct CurrentProbeSpec {
  Axis axis = Axis::kZ;
  std::size_t i = 0, j = 0, k = 0;
  std::string label = "i";
};

/// Absorbing boundary selector.
enum class BoundaryKind {
  kMur1,  ///< first-order Mur (cheap, ~1-2 % reflection)
  kCpml,  ///< convolutional PML (8 cells, reflections typically < 0.1 %)
};

/// Options for the solver.
struct FdtdSolverOptions {
  double newton_tolerance = 1e-9;  ///< the paper's "very stringent" 1e-9
  int max_newton_iterations = 50;
  BoundaryKind boundary = BoundaryKind::kMur1;
  CpmlOptions cpml{};  ///< used when boundary == kCpml
};

/// The 3D FDTD engine. Owns the grid (moved in) and all attachments.
class FdtdSolver {
 public:
  /// \throws std::invalid_argument if the grid is not baked.
  explicit FdtdSolver(Grid3 grid, const FdtdSolverOptions& opt = {});

  Grid3& grid() { return grid_; }
  const Grid3& grid() const { return grid_; }
  double dt() const { return grid_.dt(); }
  double time() const { return static_cast<double>(step_) * grid_.dt(); }

  /// Attaches the incident plane wave (scattered-field formulation).
  /// Must be called before the first step.
  void setIncidentWave(const PlaneWave& wave);

  /// Adds a lumped one-port at a z-directed edge. The edge must be strictly
  /// interior and not PEC. Returns a stable pointer owned by the solver.
  /// \throws std::invalid_argument on bad placement.
  LumpedPort* addLumpedPort(const LumpedPortSpec& spec, PortModelPtr model);

  /// Adds a voltage probe (recorded every step). Returns its index.
  std::size_t addVoltageProbe(const VoltageProbeSpec& spec);

  /// Adds a field probe. Returns its index.
  std::size_t addFieldProbe(const FieldProbeSpec& spec);

  /// Adds an Ampere-loop current probe. Returns its index.
  std::size_t addCurrentProbe(const CurrentProbeSpec& spec);

  /// Attaches a near-to-far-field Huygens surface (radiation
  /// post-processing). Returns a stable pointer owned by the solver.
  NtffRecorder* addNtffSurface(const NtffSpec& spec);

  /// Advances n time steps. \throws std::runtime_error if a port Newton
  /// solve fails to converge.
  void run(std::size_t n_steps);

  /// Advances until time() >= t_stop.
  void runUntil(double t_stop);

  /// Probe results (after run).
  const Waveform& voltageProbe(std::size_t index) const;
  const Waveform& fieldProbe(std::size_t index) const;
  const Waveform& currentProbe(std::size_t index) const;
  const std::vector<std::unique_ptr<LumpedPort>>& ports() const { return ports_; }

  /// Worst-case Newton iteration count across all ports and steps.
  int maxNewtonIterations() const;

 private:
  void stepOnce();
  void updateH();
  void updateE();
  void applyIncidentMaterialCorrections(double t_half);
  void applyPecEdges(double t_new);
  void solvePorts(double t_new, double t_half);
  void recordProbes();
  double totalE(Axis axis, std::size_t i, std::size_t j, std::size_t k,
                double t) const;

  Grid3 grid_;
  FdtdSolverOptions opt_;
  std::unique_ptr<MurBoundary> mur_;
  std::unique_ptr<CpmlBoundary> cpml_;
  std::unique_ptr<PlaneWave> incident_;
  std::size_t step_ = 0;
  bool started_ = false;

  std::vector<std::unique_ptr<LumpedPort>> ports_;
  std::vector<VoltageProbeSpec> v_probe_specs_;
  std::vector<Waveform> v_probes_;
  std::vector<FieldProbeSpec> f_probe_specs_;
  std::vector<Waveform> f_probes_;
  std::vector<CurrentProbeSpec> i_probe_specs_;
  std::vector<Waveform> i_probes_;
  std::vector<std::unique_ptr<NtffRecorder>> ntff_;

  // Precomputed incident-wave data for the PEC edge forcing.
  struct PecIncident {
    std::size_t id;   ///< linear index into the component array
    int axis;
    double delay;     ///< plane-wave delay at the edge center
    double amp;       ///< polarization * amplitude for this component
  };
  std::vector<PecIncident> pec_incident_[3];
  // Incident-correction data per material edge (delay and component amp).
  struct MatIncident {
    std::size_t id;
    double delay;
    double amp;
    double cb_deps;   ///< cb * (eps_eff - eps0)
    double cb_sigma;  ///< cb * sigma_eff
  };
  std::vector<MatIncident> mat_incident_[3];
};

}  // namespace fdtdmm
