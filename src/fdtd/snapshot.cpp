#include "fdtd/snapshot.h"

#include <fstream>
#include <stdexcept>

namespace fdtdmm {

void writeFieldSliceCsv(const Grid3& grid, Axis comp, SlicePlane plane,
                        std::size_t index, const std::string& path) {
  auto field = [&](std::size_t i, std::size_t j, std::size_t k) {
    switch (comp) {
      case Axis::kX: return grid.ex(i, j, k);
      case Axis::kY: return grid.ey(i, j, k);
      case Axis::kZ: return grid.ez(i, j, k);
    }
    return 0.0;
  };

  std::size_t n1 = 0, n2 = 0;
  double d1 = 0.0, d2 = 0.0;
  switch (plane) {
    case SlicePlane::kXY:
      if (index > grid.nz()) throw std::invalid_argument("writeFieldSliceCsv: bad z index");
      n1 = grid.nx();
      n2 = grid.ny();
      d1 = grid.dx();
      d2 = grid.dy();
      break;
    case SlicePlane::kXZ:
      if (index > grid.ny()) throw std::invalid_argument("writeFieldSliceCsv: bad y index");
      n1 = grid.nx();
      n2 = grid.nz();
      d1 = grid.dx();
      d2 = grid.dz();
      break;
    case SlicePlane::kYZ:
      if (index > grid.nx()) throw std::invalid_argument("writeFieldSliceCsv: bad x index");
      n1 = grid.ny();
      n2 = grid.nz();
      d1 = grid.dy();
      d2 = grid.dz();
      break;
  }

  std::ofstream out(path);
  if (!out) throw std::runtime_error("writeFieldSliceCsv: cannot open " + path);
  out << "coord";
  for (std::size_t c = 0; c <= n2; ++c) out << "," << static_cast<double>(c) * d2;
  out << "\n";
  for (std::size_t r = 0; r <= n1; ++r) {
    out << static_cast<double>(r) * d1;
    for (std::size_t c = 0; c <= n2; ++c) {
      double v = 0.0;
      switch (plane) {
        case SlicePlane::kXY: v = field(r, c, index); break;
        case SlicePlane::kXZ: v = field(r, index, c); break;
        case SlicePlane::kYZ: v = field(index, r, c); break;
      }
      out << "," << v;
    }
    out << "\n";
  }
  if (!out) throw std::runtime_error("writeFieldSliceCsv: write failure to " + path);
}

}  // namespace fdtdmm
