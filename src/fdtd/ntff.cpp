#include "fdtd/ntff.h"

#include <cmath>
#include <stdexcept>

namespace fdtdmm {

using namespace constants;

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double FarField::intensity() const {
  return (std::norm(e_theta) + std::norm(e_phi)) / (2.0 * kEta0);
}

NtffRecorder::NtffRecorder(const Grid3* grid, NtffSpec spec)
    : g_(grid), spec_(std::move(spec)) {
  if (g_ == nullptr) throw std::invalid_argument("NtffRecorder: null grid");
  if (spec_.i0 + 1 >= spec_.i1 || spec_.j0 + 1 >= spec_.j1 || spec_.k0 + 1 >= spec_.k1)
    throw std::invalid_argument("NtffRecorder: degenerate box");
  if (spec_.i0 < 1 || spec_.j0 < 1 || spec_.k0 < 1 || spec_.i1 >= g_->nx() ||
      spec_.j1 >= g_->ny() || spec_.k1 >= g_->nz())
    throw std::invalid_argument("NtffRecorder: box must be strictly interior");
  if (spec_.frequencies_hz.empty())
    throw std::invalid_argument("NtffRecorder: no analysis frequencies");

  const double dx = g_->dx(), dy = g_->dy(), dz = g_->dz();
  // Enumerate the face-cell centers of the six faces with outward normals.
  auto addX = [&](std::size_t i, double nx) {
    for (std::size_t j = spec_.j0; j < spec_.j1; ++j)
      for (std::size_t k = spec_.k0; k < spec_.k1; ++k)
        points_.push_back({static_cast<double>(i) * dx,
                           (static_cast<double>(j) + 0.5) * dy,
                           (static_cast<double>(k) + 0.5) * dz, nx, 0.0, 0.0,
                           dy * dz});
  };
  auto addY = [&](std::size_t j, double ny) {
    for (std::size_t i = spec_.i0; i < spec_.i1; ++i)
      for (std::size_t k = spec_.k0; k < spec_.k1; ++k)
        points_.push_back({(static_cast<double>(i) + 0.5) * dx,
                           static_cast<double>(j) * dy,
                           (static_cast<double>(k) + 0.5) * dz, 0.0, ny, 0.0,
                           dx * dz});
  };
  auto addZ = [&](std::size_t k, double nz) {
    for (std::size_t i = spec_.i0; i < spec_.i1; ++i)
      for (std::size_t j = spec_.j0; j < spec_.j1; ++j)
        points_.push_back({(static_cast<double>(i) + 0.5) * dx,
                           (static_cast<double>(j) + 0.5) * dy,
                           static_cast<double>(k) * dz, 0.0, 0.0, nz,
                           dx * dy});
  };
  addX(spec_.i0, -1.0);
  addX(spec_.i1, +1.0);
  addY(spec_.j0, -1.0);
  addY(spec_.j1, +1.0);
  addZ(spec_.k0, -1.0);
  addZ(spec_.k1, +1.0);

  js_acc_.assign(spec_.frequencies_hz.size(),
                 std::vector<std::complex<double>>(points_.size() * 3, {0.0, 0.0}));
  ms_acc_ = js_acc_;
}

void NtffRecorder::sampleCurrents(std::size_t p, double js[3], double ms[3]) const {
  const FacePoint& fp = points_[p];
  const Grid3& g = *g_;
  // Grid indices of the face cell (lower corner).
  const auto i = static_cast<std::size_t>(std::floor(fp.x / g.dx()));
  const auto j = static_cast<std::size_t>(std::floor(fp.y / g.dy()));
  const auto k = static_cast<std::size_t>(std::floor(fp.z / g.dz()));

  double e[3] = {0.0, 0.0, 0.0};
  double h[3] = {0.0, 0.0, 0.0};
  if (fp.nx != 0.0) {
    // x-face at node plane i; tangential: Ey, Ez, Hy, Hz.
    const std::size_t fi = static_cast<std::size_t>(std::lround(fp.x / g.dx()));
    e[1] = 0.5 * (g.ey(fi, j, k) + g.ey(fi, j, k + 1));
    e[2] = 0.5 * (g.ez(fi, j, k) + g.ez(fi, j + 1, k));
    h[1] = 0.25 * (g.hy(fi - 1, j, k) + g.hy(fi, j, k) + g.hy(fi - 1, j + 1, k) +
                   g.hy(fi, j + 1, k));
    h[2] = 0.25 * (g.hz(fi - 1, j, k) + g.hz(fi, j, k) + g.hz(fi - 1, j, k + 1) +
                   g.hz(fi, j, k + 1));
  } else if (fp.ny != 0.0) {
    const std::size_t fj = static_cast<std::size_t>(std::lround(fp.y / g.dy()));
    e[0] = 0.5 * (g.ex(i, fj, k) + g.ex(i, fj, k + 1));
    e[2] = 0.5 * (g.ez(i, fj, k) + g.ez(i + 1, fj, k));
    h[0] = 0.25 * (g.hx(i, fj - 1, k) + g.hx(i, fj, k) + g.hx(i + 1, fj - 1, k) +
                   g.hx(i + 1, fj, k));
    h[2] = 0.25 * (g.hz(i, fj - 1, k) + g.hz(i, fj, k) + g.hz(i, fj - 1, k + 1) +
                   g.hz(i, fj, k + 1));
  } else {
    const std::size_t fk = static_cast<std::size_t>(std::lround(fp.z / g.dz()));
    e[0] = 0.5 * (g.ex(i, j, fk) + g.ex(i, j + 1, fk));
    e[1] = 0.5 * (g.ey(i, j, fk) + g.ey(i + 1, j, fk));
    h[0] = 0.25 * (g.hx(i, j, fk - 1) + g.hx(i, j, fk) + g.hx(i + 1, j, fk - 1) +
                   g.hx(i + 1, j, fk));
    h[1] = 0.25 * (g.hy(i, j, fk - 1) + g.hy(i, j, fk) + g.hy(i, j + 1, fk - 1) +
                   g.hy(i, j + 1, fk));
  }
  // Js = n x H ; Ms = -n x E.
  js[0] = fp.ny * h[2] - fp.nz * h[1];
  js[1] = fp.nz * h[0] - fp.nx * h[2];
  js[2] = fp.nx * h[1] - fp.ny * h[0];
  ms[0] = -(fp.ny * e[2] - fp.nz * e[1]);
  ms[1] = -(fp.nz * e[0] - fp.nx * e[2]);
  ms[2] = -(fp.nx * e[1] - fp.ny * e[0]);
}

void NtffRecorder::accumulate(double t) {
  const double dt = g_->dt();
  for (std::size_t f = 0; f < spec_.frequencies_hz.size(); ++f) {
    const double omega = 2.0 * kPi * spec_.frequencies_hz[f];
    const std::complex<double> w(std::cos(omega * t) * dt, -std::sin(omega * t) * dt);
    auto& js = js_acc_[f];
    auto& ms = ms_acc_[f];
    for (std::size_t p = 0; p < points_.size(); ++p) {
      double jsv[3], msv[3];
      sampleCurrents(p, jsv, msv);
      for (int c = 0; c < 3; ++c) {
        js[3 * p + static_cast<std::size_t>(c)] += jsv[c] * w;
        ms[3 * p + static_cast<std::size_t>(c)] += msv[c] * w;
      }
    }
  }
}

FarField NtffRecorder::farField(std::size_t f, double theta, double phi) const {
  if (f >= spec_.frequencies_hz.size())
    throw std::out_of_range("NtffRecorder::farField: bad frequency index");
  const double k0 = 2.0 * kPi * spec_.frequencies_hz[f] / kC0;
  const double st = std::sin(theta), ct = std::cos(theta);
  const double sp = std::sin(phi), cp = std::cos(phi);
  const double rhat[3] = {st * cp, st * sp, ct};
  const double eth[3] = {ct * cp, ct * sp, -st};
  const double eph[3] = {-sp, cp, 0.0};

  std::complex<double> n_vec[3] = {{0, 0}, {0, 0}, {0, 0}};
  std::complex<double> l_vec[3] = {{0, 0}, {0, 0}, {0, 0}};
  const auto& js = js_acc_[f];
  const auto& ms = ms_acc_[f];
  for (std::size_t p = 0; p < points_.size(); ++p) {
    const FacePoint& fp = points_[p];
    const double phase = k0 * (rhat[0] * fp.x + rhat[1] * fp.y + rhat[2] * fp.z);
    const std::complex<double> w(std::cos(phase) * fp.area, std::sin(phase) * fp.area);
    for (int c = 0; c < 3; ++c) {
      n_vec[c] += js[3 * p + static_cast<std::size_t>(c)] * w;
      l_vec[c] += ms[3 * p + static_cast<std::size_t>(c)] * w;
    }
  }
  auto project = [&](const std::complex<double> v[3], const double u[3]) {
    return v[0] * u[0] + v[1] * u[1] + v[2] * u[2];
  };
  const std::complex<double> n_th = project(n_vec, eth);
  const std::complex<double> n_ph = project(n_vec, eph);
  const std::complex<double> l_th = project(l_vec, eth);
  const std::complex<double> l_ph = project(l_vec, eph);

  const std::complex<double> jk(0.0, k0 / (4.0 * kPi));
  FarField out;
  out.e_theta = -jk * (l_ph + kEta0 * n_th);
  out.e_phi = jk * (l_th - kEta0 * n_ph);
  return out;
}

}  // namespace fdtdmm
