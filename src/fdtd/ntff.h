#pragma once
/// \file ntff.h
/// Near-to-far-field transformation by running DFT of equivalent surface
/// currents on a Huygens box — the "radiation analysis (through standard
/// post-processing of transient fields computed during the FDTD
/// simulation)" the paper names as one of the two EMC outputs of the
/// hybrid method.
///
/// During the run, tangential E and H on the six box faces are accumulated
/// as phasors at a set of analysis frequencies. Afterwards the radiation
/// vectors
///   N(r^) = oint  J_s exp(+j k r^.r') dS',   J_s =  n^ x H
///   L(r^) = oint  M_s exp(+j k r^.r') dS',   M_s = -n^ x E
/// give the far field (r-normalized, the exp(-jkr)/r factor dropped):
///   rE_theta = -j k / (4 pi) (L_phi   + eta0 N_theta)
///   rE_phi   = +j k / (4 pi) (L_theta - eta0 N_phi)

#include <complex>
#include <cstddef>
#include <vector>

#include "fdtd/grid.h"

namespace fdtdmm {

/// Huygens surface specification (node-index box; must be strictly inside
/// the grid and enclose all radiating structure).
struct NtffSpec {
  std::size_t i0 = 0, i1 = 0;  ///< x node span [i0, i1]
  std::size_t j0 = 0, j1 = 0;
  std::size_t k0 = 0, k1 = 0;
  std::vector<double> frequencies_hz;  ///< analysis frequencies
};

/// Far-field sample at one frequency and direction.
struct FarField {
  std::complex<double> e_theta;  ///< r-normalized [V]
  std::complex<double> e_phi;    ///< r-normalized [V]

  /// Radiation intensity U = (|rE_theta|^2 + |rE_phi|^2) / (2 eta0) [W/sr].
  double intensity() const;
};

/// Accumulates Huygens-surface phasors during a run and evaluates the far
/// field afterwards. Attach via FdtdSolver::addNtffSurface().
class NtffRecorder {
 public:
  /// \throws std::invalid_argument on a degenerate/out-of-range box or an
  ///         empty frequency list.
  NtffRecorder(const Grid3* grid, NtffSpec spec);

  /// Accumulates one time step (fields at time t, weight dt).
  void accumulate(double t);

  /// Far field at frequency index `f` in direction (theta, phi) [rad].
  /// \throws std::out_of_range on a bad frequency index.
  FarField farField(std::size_t f, double theta, double phi) const;

  const NtffSpec& spec() const { return spec_; }

 private:
  struct FacePoint {
    double x, y, z;      ///< physical position of the face-cell center
    double nx, ny, nz;   ///< outward normal
    double area;
  };
  /// Samples tangential E and H at a face point (averaged to the face-cell
  /// center) and returns Js = n x H, Ms = -n x E.
  void sampleCurrents(std::size_t p, double js[3], double ms[3]) const;

  const Grid3* g_;
  NtffSpec spec_;
  std::vector<FacePoint> points_;
  /// Phasor accumulators: [freq][point][component 0..2] for Js and Ms.
  std::vector<std::vector<std::complex<double>>> js_acc_, ms_acc_;
};

}  // namespace fdtdmm
