#include "fdtd/mur.h"

#include <stdexcept>

namespace fdtdmm {

using namespace constants;

MurBoundary::MurBoundary(Grid3* grid) : g_(grid) {
  if (g_ == nullptr) throw std::invalid_argument("MurBoundary: null grid");
  const double cdt = kC0 * g_->dt();
  cx_ = (cdt - g_->dx()) / (cdt + g_->dx());
  cy_ = (cdt - g_->dy()) / (cdt + g_->dy());
  cz_ = (cdt - g_->dz()) / (cdt + g_->dz());

  const std::size_t nx = g_->nx(), ny = g_->ny(), nz = g_->nz();
  auto resize = [](FaceStore& f, std::size_t n1, std::size_t n2) {
    f.t1_l0.assign(n1, 0.0);
    f.t1_l1.assign(n1, 0.0);
    f.t2_l0.assign(n2, 0.0);
    f.t2_l1.assign(n2, 0.0);
  };
  // x faces: tangential Ey (ny x (nz+1)) and Ez ((ny+1) x nz).
  resize(x0_, ny * (nz + 1), (ny + 1) * nz);
  resize(x1_, ny * (nz + 1), (ny + 1) * nz);
  // y faces: tangential Ex (nx x (nz+1)) and Ez ((nx+1) x nz).
  resize(y0_, nx * (nz + 1), (nx + 1) * nz);
  resize(y1_, nx * (nz + 1), (nx + 1) * nz);
  // z faces: tangential Ex (nx x (ny+1)) and Ey ((nx+1) x ny).
  resize(z0_, nx * (ny + 1), (nx + 1) * ny);
  resize(z1_, nx * (ny + 1), (nx + 1) * ny);
}

void MurBoundary::snapshot() {
  Grid3& g = *g_;
  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();

  std::size_t p = 0;
  // ---- x = 0 / x = nx faces: Ey and Ez.
  p = 0;
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t k = 0; k <= nz; ++k, ++p) {
      x0_.t1_l0[p] = g.ey(0, j, k);
      x0_.t1_l1[p] = g.ey(1, j, k);
      x1_.t1_l0[p] = g.ey(nx, j, k);
      x1_.t1_l1[p] = g.ey(nx - 1, j, k);
    }
  p = 0;
  for (std::size_t j = 0; j <= ny; ++j)
    for (std::size_t k = 0; k < nz; ++k, ++p) {
      x0_.t2_l0[p] = g.ez(0, j, k);
      x0_.t2_l1[p] = g.ez(1, j, k);
      x1_.t2_l0[p] = g.ez(nx, j, k);
      x1_.t2_l1[p] = g.ez(nx - 1, j, k);
    }
  // ---- y faces: Ex and Ez.
  p = 0;
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t k = 0; k <= nz; ++k, ++p) {
      y0_.t1_l0[p] = g.ex(i, 0, k);
      y0_.t1_l1[p] = g.ex(i, 1, k);
      y1_.t1_l0[p] = g.ex(i, ny, k);
      y1_.t1_l1[p] = g.ex(i, ny - 1, k);
    }
  p = 0;
  for (std::size_t i = 0; i <= nx; ++i)
    for (std::size_t k = 0; k < nz; ++k, ++p) {
      y0_.t2_l0[p] = g.ez(i, 0, k);
      y0_.t2_l1[p] = g.ez(i, 1, k);
      y1_.t2_l0[p] = g.ez(i, ny, k);
      y1_.t2_l1[p] = g.ez(i, ny - 1, k);
    }
  // ---- z faces: Ex and Ey.
  p = 0;
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j <= ny; ++j, ++p) {
      z0_.t1_l0[p] = g.ex(i, j, 0);
      z0_.t1_l1[p] = g.ex(i, j, 1);
      z1_.t1_l0[p] = g.ex(i, j, nz);
      z1_.t1_l1[p] = g.ex(i, j, nz - 1);
    }
  p = 0;
  for (std::size_t i = 0; i <= nx; ++i)
    for (std::size_t j = 0; j < ny; ++j, ++p) {
      z0_.t2_l0[p] = g.ey(i, j, 0);
      z0_.t2_l1[p] = g.ey(i, j, 1);
      z1_.t2_l0[p] = g.ey(i, j, nz);
      z1_.t2_l1[p] = g.ey(i, j, nz - 1);
    }
}

void MurBoundary::apply() {
  Grid3& g = *g_;
  const std::size_t nx = g.nx(), ny = g.ny(), nz = g.nz();

  std::size_t p = 0;
  // x faces.
  p = 0;
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t k = 0; k <= nz; ++k, ++p) {
      g.ey(0, j, k) = x0_.t1_l1[p] + cx_ * (g.ey(1, j, k) - x0_.t1_l0[p]);
      g.ey(nx, j, k) = x1_.t1_l1[p] + cx_ * (g.ey(nx - 1, j, k) - x1_.t1_l0[p]);
    }
  p = 0;
  for (std::size_t j = 0; j <= ny; ++j)
    for (std::size_t k = 0; k < nz; ++k, ++p) {
      g.ez(0, j, k) = x0_.t2_l1[p] + cx_ * (g.ez(1, j, k) - x0_.t2_l0[p]);
      g.ez(nx, j, k) = x1_.t2_l1[p] + cx_ * (g.ez(nx - 1, j, k) - x1_.t2_l0[p]);
    }
  // y faces.
  p = 0;
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t k = 0; k <= nz; ++k, ++p) {
      g.ex(i, 0, k) = y0_.t1_l1[p] + cy_ * (g.ex(i, 1, k) - y0_.t1_l0[p]);
      g.ex(i, ny, k) = y1_.t1_l1[p] + cy_ * (g.ex(i, ny - 1, k) - y1_.t1_l0[p]);
    }
  p = 0;
  for (std::size_t i = 0; i <= nx; ++i)
    for (std::size_t k = 0; k < nz; ++k, ++p) {
      g.ez(i, 0, k) = y0_.t2_l1[p] + cy_ * (g.ez(i, 1, k) - y0_.t2_l0[p]);
      g.ez(i, ny, k) = y1_.t2_l1[p] + cy_ * (g.ez(i, ny - 1, k) - y1_.t2_l0[p]);
    }
  // z faces.
  p = 0;
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j <= ny; ++j, ++p) {
      g.ex(i, j, 0) = z0_.t1_l1[p] + cz_ * (g.ex(i, j, 1) - z0_.t1_l0[p]);
      g.ex(i, j, nz) = z1_.t1_l1[p] + cz_ * (g.ex(i, j, nz - 1) - z1_.t1_l0[p]);
    }
  p = 0;
  for (std::size_t i = 0; i <= nx; ++i)
    for (std::size_t j = 0; j < ny; ++j, ++p) {
      g.ey(i, j, 0) = z0_.t2_l1[p] + cz_ * (g.ey(i, j, 1) - z0_.t2_l0[p]);
      g.ey(i, j, nz) = z1_.t2_l1[p] + cz_ * (g.ey(i, j, nz - 1) - z1_.t2_l0[p]);
    }
}

}  // namespace fdtdmm
