#include "engine/sweep_telemetry.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace fdtdmm {

namespace {

std::string num(double v) {
  // Clamp non-finite values (a singular corner's condition estimate can be
  // inf) so the document always parses: %.9g would print "inf"/"nan".
  if (std::isnan(v)) v = 0.0;
  if (std::isinf(v)) v = v > 0.0 ? 1e308 : -1e308;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

// jsonQuote comes from engine/sweep_result.h (shared export helper).

/// The NumericalHealth object (with braces) embedded in "totals" and each
/// corner. Always emitted, all-zero with "collected": false when health
/// collection was off, so consumers never need an existence check.
std::string healthJson(const obs::NumericalHealth& h) {
  std::string out = "{";
  out += std::string("\"collected\": ") + (h.collected ? "true" : "false");
  out += std::string(", \"severity\": \"") + obs::healthSeverityName(h.severity) + "\"";
  out += ", \"factorizations\": " + std::to_string(h.factorizations);
  out += ", \"min_abs_pivot\": " + num(h.min_abs_pivot);
  out += ", \"max_pivot_growth\": " + num(h.max_pivot_growth);
  out += ", \"condition_estimates\": " + std::to_string(h.condition_estimates);
  out += ", \"max_condition_estimate\": " + num(h.max_condition_estimate);
  out += ", \"residual_checks\": " + std::to_string(h.residual_checks);
  out += ", \"max_relative_residual\": " + num(h.max_relative_residual);
  out += ", \"newton_steps_converged\": " + std::to_string(h.newton_steps_converged);
  out += ", \"newton_steps_stagnated\": " + std::to_string(h.newton_steps_stagnated);
  out += ", \"newton_steps_diverged\": " + std::to_string(h.newton_steps_diverged);
  out += ", \"worst_newton_trajectory\": [";
  for (std::size_t i = 0; i < h.worst_newton_trajectory.size(); ++i)
    out += (i ? ", " : "") + num(h.worst_newton_trajectory[i]);
  out += "]}";
  return out;
}

/// One histogram's summary object (with braces).
std::string histogramJson(const obs::Histogram& h) {
  std::string out = "{";
  out += "\"count\": " + std::to_string(h.count());
  out += ", \"sum\": " + num(h.sum());
  out += ", \"min\": " + num(h.min());
  out += ", \"max\": " + num(h.max());
  out += ", \"mean\": " + num(h.mean());
  out += ", \"p50\": " + num(h.percentile(0.50));
  out += ", \"p90\": " + num(h.percentile(0.90));
  out += ", \"p95\": " + num(h.percentile(0.95));
  out += ", \"p99\": " + num(h.percentile(0.99)) + "}";
  return out;
}

/// The RunTelemetry body shared by "totals" and each corner (brace-less;
/// the caller supplies the enclosing object and any extra keys).
std::string telemetryBody(const obs::RunTelemetry& t) {
  const obs::TransientPhases& p = t.phases;
  std::string out;
  out += "\"phases\": {\"stamp_static_seconds\": " + num(p.stamp_static_seconds);
  out += ", \"factor_seconds\": " + num(p.factor_seconds);
  out += ", \"rhs_stamp_seconds\": " + num(p.rhs_stamp_seconds);
  out += ", \"solve_seconds\": " + num(p.solve_seconds);
  out += ", \"newton_seconds\": " + num(p.newton_seconds) + "}";
  out += ", \"lu_factorizations\": " + std::to_string(t.lu_factorizations);
  out += ", \"newton_iterations\": " + std::to_string(t.newton_iterations);
  out += ", \"max_newton_iterations\": " + std::to_string(t.max_newton_iterations);
  out += ", \"steps\": " + std::to_string(t.steps);
  out += ", \"transient_runs\": " + std::to_string(t.transient_runs);
  out += ", \"pattern_realignments\": " + std::to_string(t.pattern_realignments);
  out += ", \"shared_base_builds\": " + std::to_string(t.shared_base_builds);
  out += ", \"shared_base_reuses\": " + std::to_string(t.shared_base_reuses);
  out += ", \"shared_symbolic_builds\": " + std::to_string(t.shared_symbolic_builds);
  out += ", \"shared_symbolic_reuses\": " + std::to_string(t.shared_symbolic_reuses);
  out += ", \"health\": " + healthJson(t.health);
  return out;
}

}  // namespace

obs::Counters sweepCounters(const SweepResult& result) {
  obs::Counters c;
  const SweepResult::HealthSummary hs = result.healthSummary();
  const std::size_t ok = result.okCount();
  c.add("corners.ok", static_cast<long long>(ok));
  c.add("corners.failed", static_cast<long long>(result.runs.size() - ok));
  c.add("corners.replayed", result.result_cache.hits);
  c.addSeconds("pool.tasks", result.pool.queue_wait_seconds, result.pool.submitted);
  c.addSeconds("pool.busy", result.pool.busy_seconds, 0);
  c.add("model_cache.hits", result.model_cache.hits);
  c.add("model_cache.misses", result.model_cache.misses);
  c.add("model_cache.inserts", result.model_cache.inserts);
  c.addSeconds("model_cache.preload", result.model_cache.preload_seconds, 0);
  c.add("solver_cache.symbolic_hits", result.solver_cache.symbolic_hits);
  c.add("solver_cache.symbolic_misses", result.solver_cache.symbolic_misses);
  c.add("solver_cache.numeric_hits", result.solver_cache.numeric_hits);
  c.add("solver_cache.numeric_misses", result.solver_cache.numeric_misses);
  c.add("solver_cache.inserts", result.solver_cache.inserts);
  c.add("solver_cache.refused_inserts", result.solver_cache.refused_inserts);
  c.add("result_cache.hits", result.result_cache.hits);
  c.add("result_cache.misses", result.result_cache.misses);
  c.add("result_cache.inserts", result.result_cache.inserts);
  c.add("result_cache.refused_inserts", result.result_cache.refused_inserts);
  c.add("health.warn_corners", static_cast<long long>(hs.warn_corners));
  c.add("health.critical_corners", static_cast<long long>(hs.critical_corners));
  return c;
}

std::string sweepTelemetryJson(const SweepResult& result) {
  obs::RunTelemetry totals;
  for (const SweepRunRecord& r : result.runs) totals.merge(r.telemetry);

  std::string out = "{\n";
  out += "  \"workers\": " + std::to_string(result.workers) + ",\n";
  out += "  \"wall_seconds\": " + num(result.wall_seconds) + ",\n";

  const ThreadPoolStats& pool = result.pool;
  out += "  \"pool\": {\"queue_high_water\": " +
         std::to_string(pool.queue_high_water);
  out += ", \"submitted\": " + std::to_string(pool.submitted);
  out += ", \"tasks_per_worker\": [";
  for (std::size_t i = 0; i < pool.tasks_per_worker.size(); ++i)
    out += (i ? ", " : "") + std::to_string(pool.tasks_per_worker[i]);
  out += "], \"queue_wait_seconds\": " + num(pool.queue_wait_seconds);
  out += ", \"busy_seconds\": " + num(pool.busy_seconds) + "},\n";

  const ModelCacheStats& mc = result.model_cache;
  out += "  \"model_cache\": {\"hits\": " + std::to_string(mc.hits);
  out += ", \"misses\": " + std::to_string(mc.misses);
  out += ", \"inserts\": " + std::to_string(mc.inserts);
  out += ", \"preload_seconds\": " + num(mc.preload_seconds) + "},\n";

  const SolverStateCacheStats& sc = result.solver_cache;
  out += "  \"solver_cache\": {\"symbolic_hits\": " + std::to_string(sc.symbolic_hits);
  out += ", \"symbolic_misses\": " + std::to_string(sc.symbolic_misses);
  out += ", \"numeric_hits\": " + std::to_string(sc.numeric_hits);
  out += ", \"numeric_misses\": " + std::to_string(sc.numeric_misses);
  out += ", \"inserts\": " + std::to_string(sc.inserts);
  out += ", \"refused_inserts\": " + std::to_string(sc.refused_inserts) + "},\n";

  const ResultCacheStats& rc = result.result_cache;
  out += "  \"result_cache\": {\"hits\": " + std::to_string(rc.hits);
  out += ", \"misses\": " + std::to_string(rc.misses);
  out += ", \"inserts\": " + std::to_string(rc.inserts);
  out += ", \"refused_inserts\": " + std::to_string(rc.refused_inserts) + "},\n";

  const SweepResult::HealthSummary hs = result.healthSummary();
  const auto corner_index = [](std::size_t i) {
    return i == static_cast<std::size_t>(-1) ? std::string("-1") : std::to_string(i);
  };
  out += "  \"health_summary\": {\"collected_corners\": " +
         std::to_string(hs.collected_corners);
  out += ", \"warn_corners\": " + std::to_string(hs.warn_corners);
  out += ", \"critical_corners\": " + std::to_string(hs.critical_corners);
  out += std::string(", \"severity\": \"") + obs::healthSeverityName(hs.severity) + "\"";
  out += ", \"worst_residual_corner\": " + corner_index(hs.worst_residual_corner);
  out += ", \"worst_residual\": " + num(hs.worst_residual);
  out += ", \"worst_condition_corner\": " + corner_index(hs.worst_condition_corner);
  out += ", \"worst_condition\": " + num(hs.worst_condition) + "},\n";

  out += "  \"histograms\": {";
  bool first_hist = true;
  for (const auto& [name, hist] : result.histograms) {
    out += (first_hist ? "" : ", ");
    first_hist = false;
    out += jsonQuote(name) + ": " + histogramJson(hist);
  }
  out += "},\n";

  out += "  \"counters\": " + obs::countersJson(sweepCounters(result)) + ",\n";

  out += "  \"totals\": {" + telemetryBody(totals) +
         ", \"wall_seconds\": " + num(totals.wall_seconds) + "},\n";

  out += "  \"corners\": [";
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const SweepRunRecord& r = result.runs[i];
    out += (i ? ",\n" : "\n");
    out += "    {\"index\": " + std::to_string(r.index);
    out += ", \"label\": " + jsonQuote(r.label);
    out += std::string(", \"ok\": ") + (r.ok ? "true" : "false");
    out += ", \"wall_seconds\": " + num(r.telemetry.wall_seconds);
    out += ", " + telemetryBody(r.telemetry) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void writeSweepTelemetryJson(const SweepResult& result, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("writeSweepTelemetryJson: cannot open " + path);
  f << sweepTelemetryJson(result);
  if (!f)
    throw std::runtime_error("writeSweepTelemetryJson: write failed for " + path);
}

}  // namespace fdtdmm
