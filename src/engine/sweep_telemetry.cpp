#include "engine/sweep_telemetry.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace fdtdmm {

namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

// jsonQuote comes from engine/sweep_result.h (shared export helper).

/// The RunTelemetry body shared by "totals" and each corner (brace-less;
/// the caller supplies the enclosing object and any extra keys).
std::string telemetryBody(const obs::RunTelemetry& t) {
  const obs::TransientPhases& p = t.phases;
  std::string out;
  out += "\"phases\": {\"stamp_static_seconds\": " + num(p.stamp_static_seconds);
  out += ", \"factor_seconds\": " + num(p.factor_seconds);
  out += ", \"rhs_stamp_seconds\": " + num(p.rhs_stamp_seconds);
  out += ", \"solve_seconds\": " + num(p.solve_seconds);
  out += ", \"newton_seconds\": " + num(p.newton_seconds) + "}";
  out += ", \"lu_factorizations\": " + std::to_string(t.lu_factorizations);
  out += ", \"newton_iterations\": " + std::to_string(t.newton_iterations);
  out += ", \"max_newton_iterations\": " + std::to_string(t.max_newton_iterations);
  out += ", \"steps\": " + std::to_string(t.steps);
  out += ", \"transient_runs\": " + std::to_string(t.transient_runs);
  out += ", \"pattern_realignments\": " + std::to_string(t.pattern_realignments);
  out += ", \"shared_base_builds\": " + std::to_string(t.shared_base_builds);
  out += ", \"shared_base_reuses\": " + std::to_string(t.shared_base_reuses);
  out += ", \"shared_symbolic_builds\": " + std::to_string(t.shared_symbolic_builds);
  out += ", \"shared_symbolic_reuses\": " + std::to_string(t.shared_symbolic_reuses);
  return out;
}

}  // namespace

std::string sweepTelemetryJson(const SweepResult& result) {
  obs::RunTelemetry totals;
  for (const SweepRunRecord& r : result.runs) totals.merge(r.telemetry);

  std::string out = "{\n";
  out += "  \"workers\": " + std::to_string(result.workers) + ",\n";
  out += "  \"wall_seconds\": " + num(result.wall_seconds) + ",\n";

  const ThreadPoolStats& pool = result.pool;
  out += "  \"pool\": {\"queue_high_water\": " +
         std::to_string(pool.queue_high_water);
  out += ", \"submitted\": " + std::to_string(pool.submitted);
  out += ", \"tasks_per_worker\": [";
  for (std::size_t i = 0; i < pool.tasks_per_worker.size(); ++i)
    out += (i ? ", " : "") + std::to_string(pool.tasks_per_worker[i]);
  out += "], \"queue_wait_seconds\": " + num(pool.queue_wait_seconds) + "},\n";

  const ModelCacheStats& mc = result.model_cache;
  out += "  \"model_cache\": {\"hits\": " + std::to_string(mc.hits);
  out += ", \"misses\": " + std::to_string(mc.misses);
  out += ", \"inserts\": " + std::to_string(mc.inserts);
  out += ", \"preload_seconds\": " + num(mc.preload_seconds) + "},\n";

  const SolverStateCacheStats& sc = result.solver_cache;
  out += "  \"solver_cache\": {\"symbolic_hits\": " + std::to_string(sc.symbolic_hits);
  out += ", \"symbolic_misses\": " + std::to_string(sc.symbolic_misses);
  out += ", \"numeric_hits\": " + std::to_string(sc.numeric_hits);
  out += ", \"numeric_misses\": " + std::to_string(sc.numeric_misses);
  out += ", \"inserts\": " + std::to_string(sc.inserts);
  out += ", \"refused_inserts\": " + std::to_string(sc.refused_inserts) + "},\n";

  const ResultCacheStats& rc = result.result_cache;
  out += "  \"result_cache\": {\"hits\": " + std::to_string(rc.hits);
  out += ", \"misses\": " + std::to_string(rc.misses);
  out += ", \"inserts\": " + std::to_string(rc.inserts);
  out += ", \"refused_inserts\": " + std::to_string(rc.refused_inserts) + "},\n";

  out += "  \"totals\": {" + telemetryBody(totals) +
         ", \"wall_seconds\": " + num(totals.wall_seconds) + "},\n";

  out += "  \"corners\": [";
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const SweepRunRecord& r = result.runs[i];
    out += (i ? ",\n" : "\n");
    out += "    {\"index\": " + std::to_string(r.index);
    out += ", \"label\": " + jsonQuote(r.label);
    out += std::string(", \"ok\": ") + (r.ok ? "true" : "false");
    out += ", \"wall_seconds\": " + num(r.telemetry.wall_seconds);
    out += ", " + telemetryBody(r.telemetry) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void writeSweepTelemetryJson(const SweepResult& result, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("writeSweepTelemetryJson: cannot open " + path);
  f << sweepTelemetryJson(result);
  if (!f)
    throw std::runtime_error("writeSweepTelemetryJson: write failed for " + path);
}

}  // namespace fdtdmm
