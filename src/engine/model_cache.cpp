#include "engine/model_cache.h"

#include <chrono>
#include <stdexcept>

#include "core/model_factory.h"
#include "obs/trace.h"

namespace fdtdmm {

ModelCache::ModelCache(std::shared_ptr<ModelLibrary> library)
    : library_(std::move(library)) {}

std::shared_ptr<const RbfDriverModel> ModelCache::driver(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = drivers_.find(name);
  if (it != drivers_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  obs::TraceSpan span("model_resolve:driver:" + name, "model");
  std::shared_ptr<const RbfDriverModel> model;
  if (library_ && library_->hasDriver(name)) {
    model = library_->driver(name);
  } else if (name == "default") {
    model = defaultDriverModel();
  } else {
    throw std::runtime_error("ModelCache: cannot resolve driver '" + name + "'");
  }
  drivers_.emplace(name, model);
  ++stats_.inserts;
  return model;
}

std::shared_ptr<const RbfReceiverModel> ModelCache::receiver(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = receivers_.find(name);
  if (it != receivers_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  obs::TraceSpan span("model_resolve:receiver:" + name, "model");
  std::shared_ptr<const RbfReceiverModel> model;
  if (library_ && library_->hasReceiver(name)) {
    model = library_->receiver(name);
  } else if (name == "default") {
    model = defaultReceiverModel();
  } else {
    throw std::runtime_error("ModelCache: cannot resolve receiver '" + name + "'");
  }
  receivers_.emplace(name, model);
  ++stats_.inserts;
  return model;
}

void ModelCache::putDriver(const std::string& name,
                           std::shared_ptr<const RbfDriverModel> model) {
  if (!model) throw std::invalid_argument("ModelCache: null driver model");
  std::lock_guard<std::mutex> lock(mu_);
  drivers_[name] = std::move(model);
  ++stats_.inserts;
}

void ModelCache::putReceiver(const std::string& name,
                             std::shared_ptr<const RbfReceiverModel> model) {
  if (!model) throw std::invalid_argument("ModelCache: null receiver model");
  std::lock_guard<std::mutex> lock(mu_);
  receivers_[name] = std::move(model);
  ++stats_.inserts;
}

void ModelCache::preload(const std::vector<SimulationTask>& tasks) {
  const auto start = std::chrono::steady_clock::now();
  obs::TraceSpan span("model_preload", "model");
  // Best-effort: an unresolvable name is not an error here — the task that
  // needs it will fail individually with the real message, and the rest of
  // the sweep still runs.
  for (const SimulationTask& task : tasks) {
    if (!task.scenario) continue;  // surfaces as a per-task failure later
    if (task.scenario->needsDriver()) {
      try {
        driver(task.driver);
      } catch (const std::exception&) {
      }
    }
    // Resolving a receiver the task never touches would force a pointless
    // identification.
    if (task.scenario->needsReceiver()) {
      try {
        receiver(task.receiver);
      } catch (const std::exception&) {
      }
    }
  }
  // driver()/receiver() above take mu_, so the timing update locks last.
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  stats_.preload_seconds += elapsed;
}

ModelCacheStats ModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fdtdmm
