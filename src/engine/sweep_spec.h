#pragma once
/// \file sweep_spec.h
/// Declarative parameter sweeps over the open scenario API. A SweepSpec
/// names a scenario family from the ScenarioRegistry, overrides its base
/// parameters, and declares generic axes; expand() takes the cartesian
/// product of the non-empty axes and emits one fully-specified
/// SimulationTask per grid point. Any registered family — built-in or
/// user-added — is sweepable with no engine changes.
///
/// Expansion rules (all deterministic — no RNG, no iteration-order
/// surprises):
///   - Axis nesting order is the axis *declaration order*, outermost to
///     innermost. Task `index` follows that order.
///   - An axis with no points means "keep the base value" and contributes
///     a factor of 1 to the grid size.
///   - Each axis point may bind several parameters at once (a "corner",
///     e.g. an RC load binding load_r and load_c together).
///   - A conditional axis (only_when_param set) applies only to grid
///     points where that parameter — resolved from outer axes, the base
///     overrides, or the family default — equals only_when_value; other
///     points ignore the axis (factor 1) instead of emitting duplicates.
///     The condition parameter's own axis, if any, must be declared
///     earlier (outer); expand() throws otherwise.
///   - Axes are checked against the target family's descriptors before
///     anything runs: an unknown parameter name, a kind mismatch, or an
///     out-of-range value fails at count()/expand() time, not mid-sweep.
///   - A parameter may be bound by at most one axis (the inner axis would
///     silently overwrite the outer at every grid point); conditional axes
///     with mutually exclusive conditions are the one exception.
///   - When an axis sweeps a parameter the family label omits, expand()
///     appends the grid point's axis bindings to colliding labels so
///     exported rows stay humanly distinguishable; sweeps whose labels are
///     already unique are untouched.
///
/// The pre-redesign typed axes (patterns, zc_values, rc_loads, ...) live
/// on as thin convenience helpers in engine/typed_axes.h.

#include <cstddef>
#include <string>
#include <vector>

#include "core/sim_task.h"

namespace fdtdmm {

/// One grid point of an axis: the parameter assignments applied together.
struct AxisPoint {
  std::vector<ParamBinding> bindings;
};

/// One sweep axis: an ordered list of points, optionally conditional on
/// another parameter's resolved value.
struct ParamAxis {
  std::string name;               ///< diagnostic name (defaults to the bound parameter)
  std::vector<AxisPoint> points;  ///< empty = keep base value (factor 1)
  std::string only_when_param;    ///< empty = unconditional
  ParamValue only_when_value{};   ///< compared with the resolved value
};

struct SweepSpec {
  /// ScenarioRegistry::global() family name ("tline", "pcb", "crosstalk",
  /// or anything registered by the application).
  std::string scenario = "tline";
  /// Base parameter overrides, applied in order to the family's defaults
  /// before any axis; per-point overrides start from this.
  std::vector<ParamBinding> base;
  /// Sweep axes, outermost first.
  std::vector<ParamAxis> axes;
  std::string driver = "default";    ///< model-cache component name
  std::string receiver = "default";  ///< model-cache component name

  /// Fluent base override. Note: wrap string literals in std::string() —
  /// a bare char pointer would pick ParamValue's bool alternative on some
  /// standard libraries.
  SweepSpec& set(const std::string& param, ParamValue value);

  /// Fluent single-parameter axis (one point per value, declaration order
  /// = nesting order). One spelling per value kind keeps brace-list call
  /// sites unambiguous; axisValues is the any-kind spelling.
  SweepSpec& axis(const std::string& param, const std::vector<double>& values);
  SweepSpec& axisStrings(const std::string& param, const std::vector<std::string>& values);
  SweepSpec& axisBool(const std::string& param, const std::vector<bool>& values);
  SweepSpec& axisValues(const std::string& param, std::vector<ParamValue> values);

  /// Fluent multi-parameter / conditional axis.
  SweepSpec& axis(ParamAxis a);

  /// Number of tasks expand() will produce. count() and expand() walk the
  /// same grid-shape helper, so they cannot disagree.
  std::size_t count() const;

  /// Expands the grid into concrete, validated tasks with stable indices
  /// and the family's human-readable labels.
  /// \throws std::invalid_argument on an unknown scenario name, axes that
  ///         fail the family's descriptor checks, a conditional axis whose
  ///         condition parameter is declared later, or configurations that
  ///         fail scenario validation.
  std::vector<SimulationTask> expand() const;
};

}  // namespace fdtdmm
