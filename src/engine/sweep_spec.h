#pragma once
/// \file sweep_spec.h
/// Declarative parameter sweeps over the open scenario API. A SweepSpec
/// names a scenario family from the ScenarioRegistry, overrides its base
/// parameters, and declares generic axes; expand() takes the cartesian
/// product of the non-empty axes and emits one fully-specified
/// SimulationTask per grid point. Any registered family — built-in or
/// user-added — is sweepable with no engine changes.
///
/// Expansion rules (all deterministic — no RNG, no iteration-order
/// surprises):
///   - Axis nesting order is the axis *declaration order*, outermost to
///     innermost. Task `index` follows that order.
///   - An axis with no points means "keep the base value" and contributes
///     a factor of 1 to the grid size.
///   - Each axis point may bind several parameters at once (a "corner",
///     e.g. an RC load binding load_r and load_c together).
///   - A conditional axis (only_when_param set) applies only to grid
///     points where that parameter — resolved from outer axes, the base
///     overrides, or the family default — equals only_when_value; other
///     points ignore the axis (factor 1) instead of emitting duplicates.
///     The condition parameter's own axis, if any, must be declared
///     earlier (outer); expand() throws otherwise.
///   - Axes are checked against the target family's descriptors before
///     anything runs: an unknown parameter name, a kind mismatch, or an
///     out-of-range value fails at count()/expand() time, not mid-sweep.
///   - A parameter may be bound by at most one axis (the inner axis would
///     silently overwrite the outer at every grid point); conditional axes
///     with mutually exclusive conditions are the one exception.
///   - When an axis sweeps a parameter the family label omits, expand()
///     appends the grid point's axis bindings to colliding labels so
///     exported rows stay humanly distinguishable; sweeps whose labels are
///     already unique are untouched.
///
/// ## Stochastic axes (Monte Carlo sweeps)
///
/// A StochasticAxis perturbs double-valued parameters by a seeded
/// distribution instead of enumerating points. Expansion stays fully
/// deterministic: every draw is a pure function of (axis seed, parameter
/// name, draw counter) through math/rng.h's counter-based splitStream, so
/// the same spec expands to bit-identical tasks on any machine, worker
/// count, or expansion order. Rules:
///   - Stochastic axes nest INSIDE all deterministic axes (the sample loop
///     is the innermost loop), in declaration order among themselves; each
///     contributes a factor of `samples` to the grid (0 = keep base,
///     factor 1).
///   - All parameters of one axis are sampled jointly: sample s assigns
///     draw s of every declared parameter (Latin-hypercube stratification
///     spans exactly this joint set).
///   - i.i.d. sampling draws fresh values for every deterministic corner;
///     common_random_numbers reuses ONE draw sequence across all corners so
///     paired corner comparisons cancel sampling noise (and the result
///     cache can replay corners whose non-stochastic parameters coincide).
///   - Sampling is inverse-CDF (exactly one uniform per draw), which is
///     what makes Latin-hypercube stratification exact per parameter.
///   - Task labels get a " | <axis>#<draw>@<seed>" tag so exported rows,
///     ResultCache keys, and ensemble grouping can identify samples.
///   - Out-of-range draws fail expansion with the family's descriptor
///     message — bound normal perturbations of a bounded parameter with
///     truncatedNormalParam instead of relying on luck.
///
/// The pre-redesign typed axes (patterns, zc_values, rc_loads, ...) live
/// on in engine/typed_axes.h as a deprecated compatibility layer.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/sim_task.h"

namespace fdtdmm {

/// One grid point of an axis: the parameter assignments applied together.
struct AxisPoint {
  std::vector<ParamBinding> bindings;
};

/// One sweep axis: an ordered list of points, optionally conditional on
/// another parameter's resolved value.
struct ParamAxis {
  std::string name;               ///< diagnostic name (defaults to the bound parameter)
  std::vector<AxisPoint> points;  ///< empty = keep base value (factor 1)
  std::string only_when_param;    ///< empty = unconditional
  ParamValue only_when_value{};   ///< compared with the resolved value
};

/// Distribution of one stochastic parameter.
enum class McDistribution {
  kUniform,          ///< uniform over [a, b)
  kNormal,           ///< normal(mean = a, stddev = b)
  kTruncatedNormal,  ///< normal(a, b) conditioned on [lo, hi]
};

/// How one stochastic axis fills its sample budget.
enum class McSampling {
  kIid,             ///< independent draws
  kLatinHypercube,  ///< one draw per stratum, per-parameter random pairing
};

/// One stochastically perturbed parameter. Use the three factories below
/// instead of aggregate-initializing (a/b mean different things per
/// distribution).
struct StochasticParam {
  std::string param;
  McDistribution dist = McDistribution::kUniform;
  double a = 0.0;  ///< uniform: lower bound; (truncated) normal: mean
  double b = 0.0;  ///< uniform: upper bound; (truncated) normal: stddev
  double lo = 0.0;  ///< truncated normal only: lower truncation bound
  double hi = 0.0;  ///< truncated normal only: upper truncation bound
};

StochasticParam uniformParam(std::string param, double lo, double hi);
StochasticParam normalParam(std::string param, double mean, double stddev);
StochasticParam truncatedNormalParam(std::string param, double mean,
                                     double stddev, double lo, double hi);

/// A seeded distribution axis: `samples` joint draws of `params`.
struct StochasticAxis {
  std::string name = "mc";  ///< label tag + stream identity (keep it stable)
  std::vector<StochasticParam> params;
  std::size_t samples = 0;  ///< 0 = keep base values (factor 1)
  std::uint64_t seed = 1;
  McSampling sampling = McSampling::kIid;
  /// Reuse one draw sequence across ALL deterministic corners (paired
  /// comparisons cancel sampling noise). Off = fresh draws per corner.
  bool common_random_numbers = false;
};

/// Which sample of which stochastic axis produced a task (one entry per
/// stochastic axis with samples > 0, in axis declaration order).
struct StochasticDraw {
  std::size_t axis = 0;    ///< index into SweepSpec::stochastic
  std::uint64_t seed = 0;  ///< that axis's seed (exported for provenance)
  std::size_t draw = 0;    ///< sample index within the axis
};

/// Provenance of one expanded task: which deterministic corner it belongs
/// to and which stochastic draws produced it. The ensemble statistics
/// layer groups samples by `group`.
struct TaskProvenance {
  std::size_t group = 0;    ///< deterministic-corner ordinal
  std::string group_label;  ///< deterministic axis bindings ("base" if none)
  std::vector<StochasticDraw> draws;
  std::vector<ParamBinding> sampled;  ///< concrete sampled values, axis order
};

/// expand() result with per-task provenance (tasks[i] <-> provenance[i]).
struct ExpandedSweep {
  std::vector<SimulationTask> tasks;
  std::vector<TaskProvenance> provenance;
  std::size_t group_count = 0;  ///< number of deterministic corners
};

struct SweepSpec {
  /// ScenarioRegistry::global() family name ("tline", "pcb", "crosstalk",
  /// or anything registered by the application).
  std::string scenario = "tline";
  /// Base parameter overrides, applied in order to the family's defaults
  /// before any axis; per-point overrides start from this.
  std::vector<ParamBinding> base;
  /// Sweep axes, outermost first.
  std::vector<ParamAxis> axes;
  /// Stochastic (Monte Carlo) axes; nest inside all deterministic axes.
  std::vector<StochasticAxis> stochastic;
  std::string driver = "default";    ///< model-cache component name
  std::string receiver = "default";  ///< model-cache component name

  /// Fluent base override. Note: wrap string literals in std::string() —
  /// a bare char pointer would pick ParamValue's bool alternative on some
  /// standard libraries.
  SweepSpec& set(const std::string& param, ParamValue value);

  /// Fluent single-parameter axis (one point per value, declaration order
  /// = nesting order). One spelling per value kind keeps brace-list call
  /// sites unambiguous; axisValues is the any-kind spelling.
  SweepSpec& axis(const std::string& param, const std::vector<double>& values);
  SweepSpec& axisStrings(const std::string& param, const std::vector<std::string>& values);
  SweepSpec& axisBool(const std::string& param, const std::vector<bool>& values);
  SweepSpec& axisValues(const std::string& param, std::vector<ParamValue> values);

  /// Fluent multi-parameter / conditional axis.
  SweepSpec& axis(ParamAxis a);

  /// Fluent stochastic axis.
  SweepSpec& stochasticAxis(StochasticAxis a);

  /// Number of tasks expand() will produce. count() and expand() walk the
  /// same grid-shape helper, so they cannot disagree.
  std::size_t count() const;

  /// Expands the grid into concrete, validated tasks with stable indices
  /// and the family's human-readable labels.
  /// \throws std::invalid_argument on an unknown scenario name, axes that
  ///         fail the family's descriptor checks, a conditional axis whose
  ///         condition parameter is declared later, or configurations that
  ///         fail scenario validation.
  std::vector<SimulationTask> expand() const;

  /// expand() plus per-task provenance (deterministic-corner group and
  /// stochastic draw records). Same task sequence as expand(); the
  /// ensemble statistics layer consumes the provenance.
  ExpandedSweep expandDetailed() const;
};

}  // namespace fdtdmm
