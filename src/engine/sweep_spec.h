#pragma once
/// \file sweep_spec.h
/// Declarative parameter sweeps. A SweepSpec is a base scenario plus a set
/// of axes; expand() takes the cartesian product of the non-empty axes and
/// emits one fully-specified SimulationTask per grid point. This replaces
/// the hand-written main() per analysis: a corner sweep, a pattern sweep,
/// or an EMC susceptibility scan is a few lines of spec.
///
/// Expansion rules (all deterministic — no RNG, no iteration-order
/// surprises):
///   - An empty axis means "keep the base scenario's value" and contributes
///     a factor of 1 to the grid size.
///   - Axis nesting order, outermost to innermost: pattern, bit_time, zc,
///     td, load, rc_load, incident_field. Task `index` follows that order.
///   - rc_loads only applies to grid points whose far-end load resolves to
///     FarEndLoad::kLinearRc; points with the receiver load ignore the axis
///     (factor 1) instead of emitting duplicate tasks.
///   - t-line axes (zc, td, loads, rc_loads) must be empty on a PCB sweep
///     and incident_field must be empty on a t-line sweep; expand() throws.

#include <cstddef>
#include <string>
#include <vector>

#include "core/sim_task.h"

namespace fdtdmm {

/// One far-end linear RC corner (Fig. 4's 500 ohm || 1 pF is {500, 1e-12}).
struct RcLoad {
  double r = 500.0;   ///< shunt resistance [ohm]
  double c = 1e-12;   ///< shunt capacitance [F]
};

struct SweepSpec {
  TaskKind kind = TaskKind::kTline;
  TlineEngine engine = TlineEngine::kFdtd1d;  ///< t-line sweeps only
  TlineScenario base_tline;  ///< per-point overrides start from this
  PcbScenario base_pcb;      ///< used when kind == kPcb
  std::string driver = "default";    ///< model-cache component name
  std::string receiver = "default";  ///< model-cache component name

  // --- Sweep axes (empty = keep base value). ---
  std::vector<std::string> patterns;     ///< transmitted bit patterns
  std::vector<double> bit_times;         ///< [s]
  std::vector<double> zc_values;         ///< t-line Zc [ohm]
  std::vector<double> td_values;         ///< t-line delay [s]
  std::vector<FarEndLoad> loads;         ///< t-line far-end load type
  std::vector<RcLoad> rc_loads;          ///< t-line RC corners (kLinearRc only)
  std::vector<bool> incident_field;      ///< PCB plane-wave on/off

  /// Number of tasks expand() will produce.
  std::size_t count() const;

  /// Expands the grid into concrete, validated tasks with stable indices
  /// and human-readable labels.
  /// \throws std::invalid_argument on axes that do not apply to `kind`,
  ///         non-positive axis values, or base options that fail scenario
  ///         validation.
  std::vector<SimulationTask> expand() const;
};

}  // namespace fdtdmm
