#pragma once
/// \file thread_pool.h
/// Fixed-size worker pool with a FIFO task queue and std::future results.
/// This is the execution substrate of the sweep engine: simulation tasks are
/// CPU-bound and independent, so a plain queue + N workers saturates the
/// machine without any work stealing. Exceptions thrown by a task are
/// captured in its future and rethrown at get(), never lost in a worker.
///
/// The pool is self-reporting (stats()): queue-depth high-water mark,
/// per-worker completed-task counts, and the summed enqueue->dequeue wait —
/// the utilization numbers the sweep telemetry export publishes per sweep
/// (is the pool starved? is one worker hogging? how deep does the backlog
/// get?). Bookkeeping happens under the queue mutex the pool already takes,
/// so the instrumentation adds no new synchronization.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/histogram.h"

namespace fdtdmm {

/// Utilization snapshot of a ThreadPool (see stats()).
struct ThreadPoolStats {
  /// Deepest the queue has ever been, sampled right after each enqueue
  /// (i.e. the worst backlog any submitted task ever joined).
  std::size_t queue_high_water = 0;
  /// Total tasks accepted by submit().
  long long submitted = 0;
  /// Completed tasks per worker, indexed by worker id [0, workerCount()).
  /// Sums to `submitted` once every future has been collected.
  std::vector<long long> tasks_per_worker;
  /// Sum over dequeued tasks of (dequeue time - enqueue time): total time
  /// tasks spent waiting behind the queue rather than running.
  double queue_wait_seconds = 0.0;
  /// Sum over completed tasks of their body's wall time: total time the
  /// workers spent *running* rather than idle. busy / (workers * sweep
  /// wall) is the utilization the live progress surface reports.
  double busy_seconds = 0.0;
};

class ThreadPool {
 public:
  /// Starts `workers` threads immediately.
  /// \throws std::invalid_argument if workers == 0.
  explicit ThreadPool(std::size_t workers);

  /// Finishes every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workerCount() const { return workers_.size(); }

  /// Enqueues a callable; the returned future yields its result (or
  /// rethrows its exception). Tasks start in FIFO order.
  ///
  /// Notify-under-lock discipline: the notify_one happens while mu_ is
  /// still held. With the predicate re-checked under the same mutex a
  /// post-unlock notify cannot *lose* a wakeup, but it can outlive the
  /// pool: a worker could dequeue the task, the pool be destroyed by
  /// another thread, and the late notify then touch a dead
  /// condition_variable. Keeping the notify inside the critical section
  /// makes enqueue+wake atomic with respect to shutdown and is the
  /// documented invariant here — do not move it out as an "optimization".
  /// \throws std::runtime_error if the pool is shutting down.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.push(QueuedTask{[task] { (*task)(); }, Clock::now()});
      ++stats_.submitted;
      if (queue_.size() > stats_.queue_high_water)
        stats_.queue_high_water = queue_.size();
      cv_.notify_one();  // under the lock — see the discipline note above
    }
    return fut;
  }

  /// Number of tasks not yet picked up by a worker.
  std::size_t queued() const;

  /// Snapshot of the utilization counters; safe to call at any time
  /// (values of in-flight tasks keep moving underneath).
  ThreadPoolStats stats() const;

  /// Installs (or clears, with null) a histogram registry into which each
  /// dequeue records its task's queue wait as "pool.queue_wait_seconds" —
  /// the distribution behind stats().queue_wait_seconds' total. The
  /// registry must outlive the pool or be cleared first; recording happens
  /// outside the queue lock, so it adds no contention to submit/dequeue.
  void setQueueWaitRecorder(obs::HistogramRegistry* registry);

 private:
  using Clock = std::chrono::steady_clock;
  struct QueuedTask {
    std::function<void()> fn;
    Clock::time_point enqueued;
  };

  void workerLoop(std::size_t worker_id);

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  ThreadPoolStats stats_;  // guarded by mu_
  obs::HistogramRegistry* queue_wait_recorder_ = nullptr;  // guarded by mu_
};

}  // namespace fdtdmm
