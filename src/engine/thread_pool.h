#pragma once
/// \file thread_pool.h
/// Fixed-size worker pool with a FIFO task queue and std::future results.
/// This is the execution substrate of the sweep engine: simulation tasks are
/// CPU-bound and independent, so a plain queue + N workers saturates the
/// machine without any work stealing. Exceptions thrown by a task are
/// captured in its future and rethrown at get(), never lost in a worker.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace fdtdmm {

class ThreadPool {
 public:
  /// Starts `workers` threads immediately.
  /// \throws std::invalid_argument if workers == 0.
  explicit ThreadPool(std::size_t workers);

  /// Finishes every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workerCount() const { return workers_.size(); }

  /// Enqueues a callable; the returned future yields its result (or
  /// rethrows its exception). Tasks start in FIFO order.
  /// \throws std::runtime_error if the pool is shutting down.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Number of tasks not yet picked up by a worker.
  std::size_t queued() const;

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace fdtdmm
