#pragma once
/// \file sweep_result.h
/// Per-run signal-integrity metrics and structured export for sweeps.
///
/// ## CSV schema (writeSweepCsv)
/// One header line, then one line per task in task-index order:
///
///   index,label,ok,error,eye_height,eye_level_high,eye_level_low,eye_open,
///   v_far_max,v_far_min,overshoot,settling_time,far_end_delay,max_newton_iterations
///
///   - index                 task index from the SweepSpec expansion
///   - label                 quoted task label (embedded quotes doubled)
///   - ok                    1 if the run completed, 0 if it threw
///   - error                 quoted exception text ("" when ok)
///   - eye_height..eye_open  far-end EyeMetrics (empty fields when the eye
///                           could not be measured, e.g. a pattern shorter
///                           than skip_bits + 2)
///   - v_far_max/v_far_min   far-end waveform extrema [V]
///   - overshoot             v_far_max minus the settled HIGH level [V]
///   - settling_time         last time |v_far - v_far(end)| exceeds 5% of
///                           the total swing [s]
///   - far_end_delay         50%-swing crossing delay, near to far end [s];
///                           -1 when either waveform never crosses
///   - max_newton_iterations worst Newton count over the run
///   Numeric fields use printf %.9g, so exports from the same sweep are
///   byte-identical regardless of worker count. Wall-clock timings are
///   deliberately NOT exported (they are in SweepResult for reporting).
///
/// ## JSON schema (writeSweepJson)
/// A single object:
///
///   { "workers": N, "runs": [ { "index": 0, "label": "...", "ok": true,
///       "error": "", "metrics": { "eye_height": ..., "eye_level_high": ...,
///       "eye_level_low": ..., "eye_open": bool, "eye_valid": bool,
///       "v_far_max": ..., "v_far_min": ..., "overshoot": ...,
///       "settling_time": ..., "far_end_delay": ...,
///       "max_newton_iterations": N } }, ... ] }
///
///   Same determinism contract as the CSV; "metrics" is null for failed
///   runs, and eye_* fields are 0 with "eye_valid": false when the eye
///   could not be measured.
///
/// Wall-clock data (per-run wall_seconds, solver telemetry, pool/cache
/// stats) deliberately stays out of both exports — it goes to the separate
/// telemetry document (engine/sweep_telemetry.h, writeSweepTelemetryJson),
/// so these two files stay byte-identical across worker counts and
/// machines.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/sim_task.h"
#include "engine/model_cache.h"
#include "engine/result_cache.h"
#include "engine/solver_state_cache.h"
#include "engine/thread_pool.h"
#include "obs/health.h"
#include "obs/histogram.h"
#include "signal/eye.h"

namespace fdtdmm {

/// Deterministic per-run metrics (no wall-clock content).
struct RunMetrics {
  EyeMetrics eye;        ///< far-end eye vs the transmitted pattern
  bool eye_valid = false;  ///< false when measureEye is not applicable
  double v_far_max = 0.0;
  double v_far_min = 0.0;
  double overshoot = 0.0;       ///< v_far_max - settled HIGH [V]
  double settling_time = 0.0;   ///< [s], see CSV schema
  double far_end_delay = -1.0;  ///< [s], -1 when undefined
  int max_newton_iterations = 0;
};

/// Computes metrics from a finished task run. Pure function of its inputs.
/// \throws std::invalid_argument on an empty far-end waveform.
RunMetrics computeRunMetrics(const TaskWaveforms& waves, const BitPattern& pattern,
                             const EyeOptions& eye_opt = {});

/// Outcome of one task: either metrics (ok) or the captured error text.
struct SweepRunRecord {
  std::size_t index = 0;
  std::string label;
  bool ok = false;
  std::string error;
  RunMetrics metrics;
  TaskWaveforms waves;        ///< populated only with SweepOptions::keep_waveforms
  double wall_seconds = 0.0;  ///< exported only by writeSweepTelemetryJson
  /// Per-corner solver telemetry (phase timings, LU/Newton counters);
  /// aggregated from the scenario run, exported only by
  /// writeSweepTelemetryJson. Always populated, even without
  /// keep_waveforms.
  obs::RunTelemetry telemetry;
};

/// All runs of a sweep, in task-index order independent of thread count.
struct SweepResult {
  std::vector<SweepRunRecord> runs;
  std::size_t workers = 1;
  double wall_seconds = 0.0;  ///< whole-sweep wall clock (informational)
  /// Pool utilization over this sweep's task batch (queue high-water,
  /// per-worker counts, queue wait). Zero-initialized when the sweep did
  /// not run through runSweep.
  ThreadPoolStats pool;
  /// ModelCache effectiveness delta over this sweep (hits/misses/inserts
  /// attributable to it, including preload).
  ModelCacheStats model_cache;
  /// SolverStateCache effectiveness delta over this sweep (symbolic and
  /// numeric-base sharing; zero when sharing is disabled or no family
  /// opted in). numeric_misses is the number of numeric-base classes this
  /// sweep factored — on a purely linear sweep it equals the total LU
  /// count across all corners.
  SolverStateCacheStats solver_cache;
  /// ResultCache effectiveness delta over this sweep (zero when result
  /// reuse is disabled or waveforms were requested).
  ResultCacheStats result_cache;
  /// Sweep-level latency distributions (per-corner wall/phase times, Newton
  /// iteration counts, pool queue wait), merged across workers after the
  /// sweep drains. Empty when SweepRunnerOptions::collect_histograms is
  /// off. Keys: corner_wall_seconds, corner_solve_seconds,
  /// corner_factor_seconds, corner_rhs_stamp_seconds,
  /// corner_newton_iterations, pool.queue_wait_seconds.
  std::map<std::string, obs::Histogram> histograms;

  std::size_t okCount() const;

  /// Health roll-up over runs[*].telemetry.health (see healthSummary()).
  struct HealthSummary {
    std::size_t collected_corners = 0;  ///< corners that carried health data
    std::size_t warn_corners = 0;
    std::size_t critical_corners = 0;
    /// Corner index with the largest relative residual / condition
    /// estimate; npos when no corner reported one.
    std::size_t worst_residual_corner = static_cast<std::size_t>(-1);
    std::size_t worst_condition_corner = static_cast<std::size_t>(-1);
    double worst_residual = 0.0;
    double worst_condition = 0.0;
    /// Worst per-corner grade seen (kOk when nothing was collected).
    obs::HealthSeverity severity = obs::HealthSeverity::kOk;
  };

  /// Aggregates per-corner numerical health into the sweep-level summary
  /// the telemetry export and progress surface report. Cheap (one pass
  /// over runs); returns an all-zero summary when health collection was
  /// off.
  HealthSummary healthSummary() const;
};

/// The %.9g number formatter and CSV/JSON quoting shared by every sweep
/// exporter (sweep_result, ensemble_stats): one determinism contract, one
/// implementation.
std::string formatMetricNumber(double v);
std::string csvQuote(const std::string& s);
std::string jsonQuote(const std::string& s);

/// Writes the CSV table described above. \throws std::runtime_error if the
/// file cannot be opened.
void writeSweepCsv(const SweepResult& result, const std::string& path);

/// Writes the JSON document described above. \throws std::runtime_error if
/// the file cannot be opened.
void writeSweepJson(const SweepResult& result, const std::string& path);

}  // namespace fdtdmm
