#pragma once
/// \file model_cache.h
/// Thread-safe, in-memory cache of identified macromodels shared by all
/// sweep workers. The paper's economics depend on this: "parameters are
/// computed only once through a rigorous identification procedure and are
/// used for all subsequent simulations" — so a 16-task sweep must identify
/// (or deserialize) each device exactly once, not 16 times.
///
/// Name resolution order for `driver(name)` / `receiver(name)`:
///   1. the in-memory cache (previous lookup or explicit put*);
///   2. the backing ModelLibrary, if one was attached;
///   3. the built-in identified models for the reserved name "default";
///   4. otherwise std::runtime_error.
/// Resolved models are immutable (shared_ptr<const ...>), so workers can
/// simulate from the same instance concurrently without copies.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/sim_task.h"
#include "rbf/model_library.h"

namespace fdtdmm {

/// Effectiveness counters of a ModelCache (see stats()). Cumulative over
/// the cache's lifetime — a cache shared across sweeps keeps counting, so
/// per-sweep deltas come from snapshotting before and after.
struct ModelCacheStats {
  long long hits = 0;     ///< lookups answered from the in-memory map
  long long misses = 0;   ///< lookups that had to identify/deserialize (or threw)
  long long inserts = 0;  ///< models added (resolved misses + put* calls)
  double preload_seconds = 0.0;  ///< total wall time spent inside preload()
};

class ModelCache {
 public:
  ModelCache() = default;

  /// Cache misses fall through to `library` (may be null).
  explicit ModelCache(std::shared_ptr<ModelLibrary> library);

  /// Resolves a driver/receiver model by component name (see resolution
  /// order above). Identification or deserialization runs under the cache
  /// lock, so concurrent first lookups of the same name do the work once.
  /// \throws std::runtime_error if the name cannot be resolved.
  std::shared_ptr<const RbfDriverModel> driver(const std::string& name);
  std::shared_ptr<const RbfReceiverModel> receiver(const std::string& name);

  /// Registers an already-built model under `name` (overwrites).
  /// \throws std::invalid_argument on a null model.
  void putDriver(const std::string& name, std::shared_ptr<const RbfDriverModel> model);
  void putReceiver(const std::string& name,
                   std::shared_ptr<const RbfReceiverModel> model);

  /// Resolves every model any of `tasks` will need, serially, before the
  /// pool starts. Workers then always hit the cache, so no worker stalls
  /// on a multi-second identification mid-sweep. Best-effort: unresolvable
  /// names are skipped here and surface as per-task failures at run time.
  void preload(const std::vector<SimulationTask>& tasks);

  /// Snapshot of the hit/miss/insert counters and cumulative preload time.
  /// Cache effectiveness used to be invisible; the sweep telemetry export
  /// publishes this per sweep.
  ModelCacheStats stats() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const RbfDriverModel>> drivers_;
  std::map<std::string, std::shared_ptr<const RbfReceiverModel>> receivers_;
  std::shared_ptr<ModelLibrary> library_;
  ModelCacheStats stats_;  // guarded by mu_
};

}  // namespace fdtdmm
