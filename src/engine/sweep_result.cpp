#include "engine/sweep_result.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "math/stats.h"

namespace fdtdmm {

std::string formatMetricNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

namespace {

std::string num(double v) { return formatMetricNumber(v); }

/// First time `w` crosses `level` going up, by linear interpolation;
/// negative when it never does.
double risingCrossing(const Waveform& w, double level) {
  for (std::size_t k = 1; k < w.size(); ++k) {
    const double a = w[k - 1], b = w[k];
    if (a < level && b >= level) {
      const double frac = (level - a) / (b - a);
      return w.t0() + (static_cast<double>(k - 1) + frac) * w.dt();
    }
  }
  return -1.0;
}

}  // namespace

std::string csvQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    out += c;
  }
  out += '"';
  return out;
}

std::string jsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

RunMetrics computeRunMetrics(const TaskWaveforms& waves, const BitPattern& pattern,
                             const EyeOptions& eye_opt) {
  if (waves.v_far.empty())
    throw std::invalid_argument("computeRunMetrics: empty far-end waveform");
  RunMetrics m;
  m.max_newton_iterations = waves.max_newton_iterations;

  const MinMax far_mm = minMax(waves.v_far.samples());
  m.v_far_max = far_mm.max;
  m.v_far_min = far_mm.min;

  // The eye is not measurable for every sweep point (short pattern, or a
  // pattern with only one level after skip_bits — e.g. a quiescent line in
  // an EMC susceptibility run). Those are "eye not applicable", not task
  // failures: the remaining metrics must survive.
  if (pattern.size() >= eye_opt.skip_bits + 2) {
    try {
      m.eye = measureEye(waves.v_far, pattern, eye_opt);
      m.eye_valid = true;
    } catch (const std::invalid_argument&) {
      m.eye_valid = false;
    }
  }

  // Overshoot against the settled HIGH level: the eye's HIGH estimate when
  // available, else the final sample (a '...1'-terminated pattern settles
  // high, a '...0' one makes the metric read the full swing, still useful
  // as a worst-case bound).
  const double v_end = waves.v_far[waves.v_far.size() - 1];
  const double v_high = m.eye_valid ? m.eye.level_high : v_end;
  m.overshoot = m.v_far_max - v_high;

  // Settling: last excursion of v_far outside 5% of the total swing around
  // its final value.
  const double tol = 0.05 * (far_mm.max - far_mm.min);
  m.settling_time = waves.v_far.t0();
  for (std::size_t k = waves.v_far.size(); k-- > 0;) {
    if (std::abs(waves.v_far[k] - v_end) > tol) {
      m.settling_time = waves.v_far.t0() + static_cast<double>(k) * waves.v_far.dt();
      break;
    }
  }

  // Far-end propagation delay: 50%-swing rising crossings.
  if (!waves.v_near.empty()) {
    const MinMax near_mm = minMax(waves.v_near.samples());
    const double t_near = risingCrossing(waves.v_near, 0.5 * (near_mm.min + near_mm.max));
    const double t_far = risingCrossing(waves.v_far, 0.5 * (far_mm.min + far_mm.max));
    if (t_near >= 0.0 && t_far >= 0.0) m.far_end_delay = t_far - t_near;
  }
  return m;
}

std::size_t SweepResult::okCount() const {
  std::size_t n = 0;
  for (const SweepRunRecord& r : runs) n += r.ok ? 1 : 0;
  return n;
}

SweepResult::HealthSummary SweepResult::healthSummary() const {
  HealthSummary s;
  for (const SweepRunRecord& r : runs) {
    const obs::NumericalHealth& h = r.telemetry.health;
    if (!h.collected) continue;
    ++s.collected_corners;
    if (h.severity == obs::HealthSeverity::kWarn) ++s.warn_corners;
    if (h.severity == obs::HealthSeverity::kCritical) ++s.critical_corners;
    if (static_cast<int>(h.severity) > static_cast<int>(s.severity))
      s.severity = h.severity;
    if (h.residual_checks > 0 &&
        (s.worst_residual_corner == static_cast<std::size_t>(-1) ||
         h.max_relative_residual > s.worst_residual)) {
      s.worst_residual = h.max_relative_residual;
      s.worst_residual_corner = r.index;
    }
    if (h.condition_estimates > 0 &&
        (s.worst_condition_corner == static_cast<std::size_t>(-1) ||
         h.max_condition_estimate > s.worst_condition)) {
      s.worst_condition = h.max_condition_estimate;
      s.worst_condition_corner = r.index;
    }
  }
  return s;
}

void writeSweepCsv(const SweepResult& result, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("writeSweepCsv: cannot open " + path);
  f << "index,label,ok,error,eye_height,eye_level_high,eye_level_low,eye_open,"
       "v_far_max,v_far_min,overshoot,settling_time,far_end_delay,"
       "max_newton_iterations\n";
  for (const SweepRunRecord& r : result.runs) {
    f << r.index << ',' << csvQuote(r.label) << ',' << (r.ok ? 1 : 0) << ','
      << csvQuote(r.error) << ',';
    if (r.ok && r.metrics.eye_valid) {
      f << num(r.metrics.eye.eye_height) << ',' << num(r.metrics.eye.level_high)
        << ',' << num(r.metrics.eye.level_low) << ','
        << (r.metrics.eye.open ? 1 : 0) << ',';
    } else {
      f << ",,,,";
    }
    if (r.ok) {
      f << num(r.metrics.v_far_max) << ',' << num(r.metrics.v_far_min) << ','
        << num(r.metrics.overshoot) << ',' << num(r.metrics.settling_time) << ','
        << num(r.metrics.far_end_delay) << ',' << r.metrics.max_newton_iterations;
    } else {
      f << ",,,,,";
    }
    f << '\n';
  }
  if (!f) throw std::runtime_error("writeSweepCsv: write failed for " + path);
}

void writeSweepJson(const SweepResult& result, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("writeSweepJson: cannot open " + path);
  f << "{\n  \"workers\": " << result.workers << ",\n  \"runs\": [";
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const SweepRunRecord& r = result.runs[i];
    f << (i ? ",\n" : "\n") << "    {\"index\": " << r.index
      << ", \"label\": " << jsonQuote(r.label)
      << ", \"ok\": " << (r.ok ? "true" : "false")
      << ", \"error\": " << jsonQuote(r.error) << ", \"metrics\": ";
    if (!r.ok) {
      f << "null";
    } else {
      const RunMetrics& m = r.metrics;
      f << "{\"eye_height\": " << num(m.eye.eye_height)
        << ", \"eye_level_high\": " << num(m.eye.level_high)
        << ", \"eye_level_low\": " << num(m.eye.level_low)
        << ", \"eye_open\": " << (m.eye.open ? "true" : "false")
        << ", \"eye_valid\": " << (m.eye_valid ? "true" : "false")
        << ", \"v_far_max\": " << num(m.v_far_max)
        << ", \"v_far_min\": " << num(m.v_far_min)
        << ", \"overshoot\": " << num(m.overshoot)
        << ", \"settling_time\": " << num(m.settling_time)
        << ", \"far_end_delay\": " << num(m.far_end_delay)
        << ", \"max_newton_iterations\": " << m.max_newton_iterations << "}";
    }
    f << "}";
  }
  f << "\n  ]\n}\n";
  if (!f) throw std::runtime_error("writeSweepJson: write failed for " + path);
}

}  // namespace fdtdmm
