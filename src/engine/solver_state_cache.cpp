#include "engine/solver_state_cache.h"

namespace fdtdmm {

template <typename T, typename Builder>
std::shared_ptr<const T> SolverStateCache::resolve(
    std::map<std::string, std::shared_ptr<Entry<T>>>& map, const std::string& key,
    const Builder& build, long long SolverStateCacheStats::*hits,
    long long SolverStateCacheStats::*misses) {
  std::shared_ptr<Entry<T>> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map.find(key);
    if (it == map.end()) {
      // Capacity check BEFORE slot creation: a refused key must not grow
      // the map even transiently. The caller still gets a correct value —
      // its builder runs below, privately and unpublished.
      if (max_entries_ != 0 && map.size() >= max_entries_) {
        ++(stats_.*misses);
        ++stats_.refused_inserts;
        entry = nullptr;
      } else {
        it = map.emplace(key, std::make_shared<Entry<T>>()).first;
        entry = it->second;
      }
    } else {
      entry = it->second;
    }
    if (entry && entry->value) {
      ++(stats_.*hits);
      return entry->value;
    }
  }
  if (!entry) return build();  // refused: private unpublished build
  // Build outside the cache lock but inside the entry lock: one builder
  // per key at a time, other keys fully concurrent. Re-check after
  // acquiring — a concurrent caller may have published while we waited.
  std::lock_guard<std::mutex> build_lock(entry->build_mu);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry->value) {
      ++(stats_.*hits);
      return entry->value;
    }
    ++(stats_.*misses);
  }
  std::shared_ptr<const T> value = build();  // may throw: nothing published
  std::lock_guard<std::mutex> lock(mu_);
  if (value) {
    entry->value = value;
    ++stats_.inserts;
  }
  return value;
}

std::shared_ptr<const SolverSymbolic> SolverStateCache::symbolic(
    const std::string& key, const SymbolicBuilder& build) {
  return resolve(symbolic_, key, build, &SolverStateCacheStats::symbolic_hits,
                 &SolverStateCacheStats::symbolic_misses);
}

std::shared_ptr<const SolverNumericBase> SolverStateCache::numericBase(
    const std::string& key, const NumericBuilder& build) {
  return resolve(numeric_, key, build, &SolverStateCacheStats::numeric_hits,
                 &SolverStateCacheStats::numeric_misses);
}

SolverStateCacheStats SolverStateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SolverStateCache::setMaxEntries(std::size_t max_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_ = max_entries;
}

std::size_t SolverStateCache::maxEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_entries_;
}

namespace {

// Count only published values: a key whose builder threw (or is still
// running) is not a resolved class.
template <typename Map>
std::size_t resolvedCount(const Map& map) {
  std::size_t n = 0;
  for (const auto& kv : map)
    if (kv.second && kv.second->value) ++n;
  return n;
}

}  // namespace

std::size_t SolverStateCache::structureClassCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resolvedCount(symbolic_);
}

std::size_t SolverStateCache::numericClassCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resolvedCount(numeric_);
}

void SolverStateCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  symbolic_.clear();
  numeric_.clear();
}

}  // namespace fdtdmm
