#pragma once
/// \file ensemble_stats.h
/// Descriptive statistics over Monte Carlo sweep ensembles. Pairs a
/// SweepResult with the ExpandedSweep provenance that produced it, groups
/// the samples by deterministic corner (TaskProvenance::group — one group
/// per combination of the non-stochastic axes), and reports per metric:
/// count, mean, sample stddev, min/max, quantiles, and exceedance
/// probabilities (P[metric > x] / P[metric < x]).
///
/// Determinism contract: everything here is a pure function of the
/// per-run metrics (which are byte-identical across worker counts and
/// sharing modes), formatted with the same %.9g rule as sweep_result.h —
/// so the ensemble CSV/JSON exports are byte-identical too.
///
/// ## CSV schema (writeEnsembleCsv)
/// One header line, then one line per (group, metric) and one per
/// (group, exceedance query), groups in corner order:
///
///   group,label,samples,failed,kind,name,count,mean,stddev,min,max,q<Q>...
///
///   - group     deterministic-corner ordinal
///   - label     the corner's deterministic axis bindings ("base" if none)
///   - samples   ensemble size of the group; failed = runs with ok=false
///   - kind      "metric" or "exceedance"
///   - name      metric name, or "P[<metric> < x]" / "P[<metric> > x]"
///   - count     samples where the value is defined (eye metrics skip
///               eye_valid=false runs; far_end_delay skips undefined -1s)
///   - mean      the mean — for exceedance rows, the probability
///   - stddev..q exceedance rows leave these empty
///   - q<Q>      one column per requested quantile, e.g. q0.05,q0.5,q0.95
///
/// ## JSON schema (writeEnsembleJson)
///   { "quantiles": [...], "groups": [ { "group": 0, "label": "...",
///       "samples": N, "failed": 0,
///       "metrics": [ { "name": "...", "count": N, "mean": ..,
///           "stddev": .., "min": .., "max": .., "quantiles": [..] }, .. ],
///       "exceedances": [ { "metric": "...", "above": true,
///           "threshold": .., "count": N, "probability": .. }, .. ] }, .. ] }

#include <cstddef>
#include <string>
#include <vector>

#include "engine/sweep_result.h"
#include "engine/sweep_spec.h"

namespace fdtdmm {

/// One exceedance query: P[metric > threshold] when `above`, else
/// P[metric < threshold] (both strict).
struct ExceedanceQuery {
  std::string metric;
  double threshold = 0.0;
  bool above = true;
};

struct EnsembleOptions {
  /// Quantiles reported per metric, each in [0, 1].
  std::vector<double> quantiles = {0.05, 0.5, 0.95};
  /// Metrics to aggregate; empty = every name in ensembleMetricNames().
  std::vector<std::string> metrics;
  std::vector<ExceedanceQuery> exceedances;
};

/// Aggregate of one metric over one group's ok samples.
struct MetricEnsemble {
  std::string name;
  std::size_t count = 0;  ///< samples where the metric is defined
  double mean = 0.0;
  double stddev = 0.0;  ///< sample stddev (n-1)
  double min = 0.0;
  double max = 0.0;
  std::vector<double> quantile_values;  ///< parallel to EnsembleStats::quantiles
};

struct ExceedanceEnsemble {
  ExceedanceQuery query;
  std::size_t count = 0;  ///< samples where the metric is defined
  double probability = 0.0;
};

/// One deterministic corner's ensemble.
struct GroupEnsemble {
  std::size_t group = 0;
  std::string label;
  std::size_t samples = 0;  ///< tasks in the group
  std::size_t failed = 0;   ///< tasks with ok=false (excluded from stats)
  std::vector<MetricEnsemble> metrics;
  std::vector<ExceedanceEnsemble> exceedances;
};

struct EnsembleStats {
  std::vector<double> quantiles;  ///< the quantile levels reported
  std::vector<GroupEnsemble> groups;  ///< in deterministic-corner order
};

/// The metric names the aggregator understands: eye_height, eye_level_high,
/// eye_level_low, v_far_max, v_far_min, v_far_abs_peak (a derived metric:
/// max(|v_far_max|, |v_far_min|), the natural EMC noise-peak statistic),
/// overshoot, settling_time, far_end_delay, max_newton_iterations.
const std::vector<std::string>& ensembleMetricNames();

/// Groups result.runs[i] by expanded.provenance[i].group and aggregates.
/// \throws std::invalid_argument when result and expansion disagree in
/// size, on an unknown metric name, or a quantile outside [0, 1].
EnsembleStats computeEnsembleStats(const SweepResult& result,
                                   const ExpandedSweep& expanded,
                                   const EnsembleOptions& opt = {});

/// Write the schemas documented above. \throws std::runtime_error if the
/// file cannot be opened or written.
void writeEnsembleCsv(const EnsembleStats& stats, const std::string& path);
void writeEnsembleJson(const EnsembleStats& stats, const std::string& path);

}  // namespace fdtdmm
