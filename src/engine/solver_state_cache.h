#pragma once
/// \file solver_state_cache.h
/// Thread-safe SolverStateProvider shared by all sweep workers: the
/// ModelCache economics (identify once, simulate everywhere) applied to
/// the solver itself. Corners whose scenarios report the same
/// structureKey() share one symbolic analysis (sparse pattern RCM
/// ordering); corners with the same numericBaseKey() share one base LU
/// factorization. On an N-corner RHS-only sweep that turns N base
/// factorizations into one per numeric-base class, regardless of worker
/// count.
///
/// Exactly-once contract (per key): the first caller runs the builder
/// under that key's entry mutex; concurrent callers with the same key
/// block on the entry mutex — NOT on the whole cache — and receive the
/// published value. Different keys build concurrently. A builder that
/// throws publishes nothing; the next caller retries. Values are immutable
/// (shared_ptr<const ...>), so workers solve against the same
/// factorization concurrently without copies.

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "circuit/solver_state.h"

namespace fdtdmm {

/// Effectiveness counters of a SolverStateCache (see stats()). Cumulative
/// over the cache's lifetime; per-sweep deltas come from snapshotting
/// before and after (the ModelCacheStats convention).
struct SolverStateCacheStats {
  long long symbolic_hits = 0;    ///< symbolic() calls answered from the map
  long long symbolic_misses = 0;  ///< symbolic() calls that ran the builder
  long long numeric_hits = 0;     ///< numericBase() calls answered from the map
  long long numeric_misses = 0;   ///< numericBase() calls that ran the builder
  long long inserts = 0;          ///< values published (successful builds)
  /// Lookups of a NEW key refused because the class map sits at its
  /// max_entries() bound. A refused lookup still runs the builder for its
  /// caller (correctness is never capacity-dependent) — it just publishes
  /// nothing, so the sharing economy degrades instead of the memory
  /// growing without bound.
  long long refused_inserts = 0;
};

class SolverStateCache final : public SolverStateProvider {
 public:
  /// `max_entries` bounds EACH of the two class maps (symbolic and
  /// numeric-base) separately: at capacity a lookup of a new key counts a
  /// miss + refused insert and runs the builder privately for the caller
  /// without publishing — the exactly-once economy is lost for that key
  /// but results stay bit-identical (shared state is always rebuilt from
  /// the caller's own inputs). 0 = unbounded.
  explicit SolverStateCache(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  /// Adjusts the bound; never evicts (shrinking only refuses new keys).
  void setMaxEntries(std::size_t max_entries);
  std::size_t maxEntries() const;

  std::shared_ptr<const SolverSymbolic> symbolic(const std::string& key,
                                                 const SymbolicBuilder& build) override;
  std::shared_ptr<const SolverNumericBase> numericBase(
      const std::string& key, const NumericBuilder& build) override;

  /// Snapshot of the hit/miss/insert counters.
  SolverStateCacheStats stats() const;

  /// Distinct structure / numeric-base classes resolved so far. On a
  /// purely linear sweep, total base factorizations == numericClassCount()
  /// — the invariant the sharing tests pin.
  std::size_t structureClassCount() const;
  std::size_t numericClassCount() const;

  /// Drops every cached value (stats keep counting). Entries being built
  /// concurrently publish into the post-clear maps.
  void clear();

 private:
  /// One key's slot: value plus the mutex that serializes its build.
  template <typename T>
  struct Entry {
    std::mutex build_mu;
    std::shared_ptr<const T> value;  // guarded by the outer mu_ for reads
  };

  template <typename T, typename Builder>
  std::shared_ptr<const T> resolve(std::map<std::string, std::shared_ptr<Entry<T>>>& map,
                                   const std::string& key, const Builder& build,
                                   long long SolverStateCacheStats::*hits,
                                   long long SolverStateCacheStats::*misses);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Entry<SolverSymbolic>>> symbolic_;
  std::map<std::string, std::shared_ptr<Entry<SolverNumericBase>>> numeric_;
  SolverStateCacheStats stats_;  // guarded by mu_
  std::size_t max_entries_ = 0;  // guarded by mu_; 0 = unbounded
};

}  // namespace fdtdmm
