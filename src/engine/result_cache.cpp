#include "engine/result_cache.h"

#include <cstdio>

#include "core/scenario.h"
#include "engine/sweep_result.h"

namespace fdtdmm {

namespace {

// Round-trip-exact number format (the solverKeyNum convention): %g would
// collapse distinct doubles into one key and replay the wrong corner.
std::string keyNum(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string keyValue(const ParamValue& value) {
  if (std::holds_alternative<bool>(value))
    return std::get<bool>(value) ? "true" : "false";
  if (std::holds_alternative<double>(value)) return keyNum(std::get<double>(value));
  return std::get<std::string>(value);
}

}  // namespace

std::string resultCacheKey(const SimulationTask& task, const EyeOptions& eye) {
  std::string key = task.scenario->family();
  key += "|drv=" + task.driver + "|rcv=" + task.receiver;
  // Descriptor order is stable family API, so equal configurations always
  // serialize identically.
  for (const ParamDescriptor& d : task.scenario->descriptors())
    key += "|" + d.name + "=" + keyValue(task.scenario->get(d.name));
  key += "|eye=" + keyNum(eye.window_start) + "," + keyNum(eye.window_width) + "," +
         std::to_string(eye.skip_bits);
  return key;
}

std::shared_ptr<const SweepRunRecord> ResultCache::find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(key);
  if (it == records_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

void ResultCache::put(const std::string& key, const SweepRunRecord& record) {
  if (!record.ok) return;
  auto stored = std::make_shared<SweepRunRecord>(record);
  stored->waves = TaskWaveforms{};  // strip memory-heavy waveforms
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(key);
  if (it != records_.end()) return;  // first wins; equal keys are interchangeable
  if (max_entries_ != 0 && records_.size() >= max_entries_) {
    ++stats_.refused_inserts;  // at capacity: new keys are refused, not evicted
    return;
  }
  records_.emplace(key, std::move(stored));
  ++stats_.inserts;
}

void ResultCache::setMaxEntries(std::size_t max_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_ = max_entries;
}

std::size_t ResultCache::maxEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_entries_;
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

}  // namespace fdtdmm
