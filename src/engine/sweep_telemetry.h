#pragma once
/// \file sweep_telemetry.h
/// The sweep engine's observability export: everything wall-clock-shaped
/// that writeSweepCsv/writeSweepJson deliberately leave out, in its own
/// JSON document. Keeping it separate is the point — the metric exports
/// stay byte-identical across worker counts and machines while this file
/// answers "where did the time go" per corner.
///
/// ## JSON schema (writeSweepTelemetryJson)
/// A single object:
///
///   { "workers": N,
///     "wall_seconds": <whole-sweep wall clock>,
///     "pool": { "queue_high_water": N, "submitted": N,
///               "tasks_per_worker": [N, ...],
///               "queue_wait_seconds": ... },
///     "model_cache": { "hits": N, "misses": N, "inserts": N,
///                      "preload_seconds": ... },
///     "solver_cache": { "symbolic_hits": N, "symbolic_misses": N,
///                       "numeric_hits": N, "numeric_misses": N,
///                       "inserts": N },
///     "result_cache": { "hits": N, "misses": N, "inserts": N },
///     "totals": { <RunTelemetry object: all corners merged> },
///     "corners": [
///       { "index": 0, "label": "...", "ok": true,
///         "wall_seconds": ...,
///         "phases": { "stamp_static_seconds": ..., "factor_seconds": ...,
///                     "rhs_stamp_seconds": ..., "solve_seconds": ...,
///                     "newton_seconds": ... },
///         "lu_factorizations": N, "newton_iterations": N,
///         "max_newton_iterations": N, "steps": N, "transient_runs": N,
///         "pattern_realignments": N, "shared_base_builds": N,
///         "shared_base_reuses": N, "shared_symbolic_builds": N,
///         "shared_symbolic_reuses": N },
///       ... ] }
///
///   - corners appear in task-index order, failed runs included (ok false,
///     zeroed counters);
///   - field meanings are documented once, in obs/telemetry.h (corners),
///     engine/thread_pool.h (pool), engine/model_cache.h (model_cache),
///     engine/solver_state_cache.h (solver_cache) and
///     engine/result_cache.h (result_cache);
///   - numbers use printf %.9g like the metric exports, but no determinism
///     is promised: every timing here is wall clock by design.

#include <string>

#include "engine/sweep_result.h"

namespace fdtdmm {

/// Serializes the telemetry document described above.
std::string sweepTelemetryJson(const SweepResult& result);

/// Writes sweepTelemetryJson(result) to `path`. \throws std::runtime_error
/// if the file cannot be opened or written.
void writeSweepTelemetryJson(const SweepResult& result, const std::string& path);

}  // namespace fdtdmm
