#pragma once
/// \file sweep_telemetry.h
/// The sweep engine's observability export: everything wall-clock-shaped
/// that writeSweepCsv/writeSweepJson deliberately leave out, in its own
/// JSON document. Keeping it separate is the point — the metric exports
/// stay byte-identical across worker counts and machines while this file
/// answers "where did the time go" per corner.
///
/// ## JSON schema (writeSweepTelemetryJson)
/// A single object:
///
///   { "workers": N,
///     "wall_seconds": <whole-sweep wall clock>,
///     "pool": { "queue_high_water": N, "submitted": N,
///               "tasks_per_worker": [N, ...],
///               "queue_wait_seconds": ..., "busy_seconds": ... },
///     "model_cache": { "hits": N, "misses": N, "inserts": N,
///                      "preload_seconds": ... },
///     "solver_cache": { "symbolic_hits": N, "symbolic_misses": N,
///                       "numeric_hits": N, "numeric_misses": N,
///                       "inserts": N },
///     "result_cache": { "hits": N, "misses": N, "inserts": N },
///     "health_summary": { "collected_corners": N, "warn_corners": N,
///                         "critical_corners": N, "severity": "ok",
///                         "worst_residual_corner": N, "worst_residual": ...,
///                         "worst_condition_corner": N,
///                         "worst_condition": ... },
///     "histograms": { "<name>": { "count": N, "sum": ..., "min": ...,
///                                 "max": ..., "mean": ..., "p50": ...,
///                                 "p90": ..., "p95": ..., "p99": ... },
///                     ... },
///     "counters": { <canonical countersJson(sweepCounters(result))> },
///     "totals": { <RunTelemetry object: all corners merged> },
///     "corners": [
///       { "index": 0, "label": "...", "ok": true,
///         "wall_seconds": ...,
///         "phases": { "stamp_static_seconds": ..., "factor_seconds": ...,
///                     "rhs_stamp_seconds": ..., "solve_seconds": ...,
///                     "newton_seconds": ... },
///         "lu_factorizations": N, "newton_iterations": N,
///         "max_newton_iterations": N, "steps": N, "transient_runs": N,
///         "pattern_realignments": N, "shared_base_builds": N,
///         "shared_base_reuses": N, "shared_symbolic_builds": N,
///         "shared_symbolic_reuses": N,
///         "health": { "collected": bool, "severity": "ok|warn|critical",
///                     "factorizations": N, "min_abs_pivot": ...,
///                     "max_pivot_growth": ..., "condition_estimates": N,
///                     "max_condition_estimate": ..., "residual_checks": N,
///                     "max_relative_residual": ...,
///                     "newton_steps_converged": N,
///                     "newton_steps_stagnated": N,
///                     "newton_steps_diverged": N,
///                     "worst_newton_trajectory": [...] } },
///       ... ] }
///
///   - corners appear in task-index order, failed runs included (ok false,
///     zeroed counters);
///   - "totals" carries the same "health" object with every corner's record
///     merged; the "health_summary" roll-up (SweepResult::healthSummary)
///     adds the worst-corner pointers (-1 when nothing was collected);
///   - "histograms" is {} when SweepRunnerOptions::collect_histograms is
///     off; "health" objects are all-zero with "collected": false when
///     health collection is off;
///   - field meanings are documented once, in obs/telemetry.h (corners),
///     obs/health.h (health), obs/histogram.h (histograms),
///     engine/thread_pool.h (pool), engine/model_cache.h (model_cache),
///     engine/solver_state_cache.h (solver_cache) and
///     engine/result_cache.h (result_cache);
///   - numbers use printf %.9g like the metric exports, but no determinism
///     is promised: every timing here is wall clock by design. Non-finite
///     values (a singular system's infinite condition estimate) are
///     clamped to +/-1e308 (NaN to 0) so the document always parses.
///
/// The full schema, including the examples' stats footers, is documented
/// in docs/telemetry_schema.md (enforced by tests/test_sweep_telemetry).

#include <string>

#include "engine/sweep_result.h"
#include "obs/counters.h"

namespace fdtdmm {

/// Folds a SweepResult's engine-level statistics into the canonical
/// Counters slots shared by the telemetry JSON ("counters"), the bench
/// telemetryJson summaries, and the examples' stats footers:
///
///   corners.ok / corners.failed / corners.replayed   (counts)
///   pool.tasks          count = submitted, seconds = queue wait
///   pool.busy           seconds workers spent running task bodies
///   model_cache.hits / .misses / .inserts / .preload (seconds)
///   solver_cache.symbolic_hits / .symbolic_misses / .numeric_hits /
///                .numeric_misses / .inserts / .refused_inserts
///   result_cache.hits / .misses / .inserts / .refused_inserts
///   health.warn_corners / health.critical_corners
///
/// Render with obs::countersJson for the one true footer format.
obs::Counters sweepCounters(const SweepResult& result);

/// Serializes the telemetry document described above.
std::string sweepTelemetryJson(const SweepResult& result);

/// Writes sweepTelemetryJson(result) to `path`. \throws std::runtime_error
/// if the file cannot be opened or written.
void writeSweepTelemetryJson(const SweepResult& result, const std::string& path);

}  // namespace fdtdmm
