#include "engine/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>

#include "engine/thread_pool.h"
#include "obs/histogram.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "signal/bit_pattern.h"

namespace fdtdmm {

SweepRunner::SweepRunner(SweepRunnerOptions opt) : opt_(std::move(opt)) {
  if (!opt_.model_cache) opt_.model_cache = std::make_shared<ModelCache>();
  if (!opt_.solver_cache)
    opt_.solver_cache = std::make_shared<SolverStateCache>();
  if (!opt_.result_cache) opt_.result_cache = std::make_shared<ResultCache>();
}

namespace {

SweepRunnerOptions foldLegacyOptions(const SweepOptions& opt,
                                     std::shared_ptr<ModelCache> cache,
                                     std::shared_ptr<SolverStateCache> solver,
                                     std::shared_ptr<ResultCache> results) {
  SweepRunnerOptions folded;
  folded.workers = opt.workers;
  folded.keep_waveforms = opt.keep_waveforms;
  folded.share_solver_state = opt.share_solver_state;
  folded.reuse_results = opt.reuse_results;
  folded.eye = opt.eye;
  folded.model_cache = std::move(cache);
  folded.solver_cache = std::move(solver);
  folded.result_cache = std::move(results);
  return folded;
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions opt, std::shared_ptr<ModelCache> cache,
                         std::shared_ptr<SolverStateCache> solver_cache,
                         std::shared_ptr<ResultCache> result_cache)
    : SweepRunner(foldLegacyOptions(opt, std::move(cache),
                                    std::move(solver_cache),
                                    std::move(result_cache))) {}

SweepResult SweepRunner::run(const SweepSpec& spec) { return run(spec.expand()); }

SweepResult SweepRunner::run(const std::vector<SimulationTask>& tasks) {
  const auto start = std::chrono::steady_clock::now();

  // CSV/JSON rows are keyed by `index`; a duplicate would make the export
  // ambiguous, so reject the batch up front instead of exporting garbage.
  std::set<std::size_t> seen;
  for (const SimulationTask& task : tasks) {
    if (!task.scenario)
      throw std::invalid_argument("SweepRunner: task " +
                                  std::to_string(task.index) + " has no scenario");
    if (!seen.insert(task.index).second)
      throw std::invalid_argument("SweepRunner: duplicate task index " +
                                  std::to_string(task.index));
  }

  std::size_t workers = opt_.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }

  // Resolve every model serially up front: identification runs once per
  // device here instead of stalling (or racing) the workers. Cache counters
  // are cumulative over the cache's lifetime, so snapshot before/after to
  // attribute only this sweep's activity to its telemetry.
  const ModelCacheStats cache_before = opt_.model_cache->stats();
  const SolverStateCacheStats solver_before = opt_.solver_cache->stats();
  const ResultCacheStats results_before = opt_.result_cache->stats();
  opt_.model_cache->preload(tasks);

  SweepResult result;
  result.workers = workers;
  result.runs.resize(tasks.size());

  // Per-task execution plan: the final sharing keys (scenario key + the
  // model names the runner resolved — conservative: model identity can
  // never silently collide two classes) and the result-cache key.
  struct TaskPlan {
    std::size_t slot = 0;  ///< index into tasks / result.runs
    SolverSharing sharing;
    std::string result_key;
    bool done = false;  ///< answered by the result cache pre-pass
  };
  const bool use_results =
      opt_.reuse_results && !opt_.keep_waveforms;  // cached records carry no waves
  std::vector<TaskPlan> plans(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const SimulationTask& task = tasks[i];
    TaskPlan& plan = plans[i];
    plan.slot = i;
    // Health collection rides the sharing struct into every corner's
    // solver session (independent of whether solver *state* is shared).
    if (opt_.health.collect) plan.sharing.health = &opt_.health;
    if (opt_.share_solver_state) {
      std::string structure = task.scenario->structureKey();
      std::string numeric = task.scenario->numericBaseKey();
      if (!structure.empty() || !numeric.empty()) {
        std::string models;
        if (task.scenario->needsDriver()) models += "|drv=" + task.driver;
        if (task.scenario->needsReceiver()) models += "|rcv=" + task.receiver;
        plan.sharing.provider = opt_.solver_cache.get();
        if (!structure.empty()) plan.sharing.structure_key = structure + models;
        if (!numeric.empty()) plan.sharing.numeric_base_key = numeric + models;
      }
    }
    if (use_results) plan.result_key = resultCacheKey(task, opt_.eye);
  }

  // Live progress surface. The stats hook runs at emission time (under the
  // reporter's throttle) and fills the rate fields the reporter cannot know
  // itself: worker utilization from the pool's busy-seconds counter and
  // cache hit rates from the same before/after deltas the telemetry export
  // uses. `pool_ptr` is null until the pool exists (replay-pre-pass
  // emissions simply omit utilization).
  ThreadPool* pool_ptr = nullptr;
  obs::ProgressReporter progress(
      opt_.progress, tasks.size(),
      [&pool_ptr, workers, use_results, this,
       &solver_before](obs::ProgressSnapshot& s) {
        if (pool_ptr != nullptr && s.elapsed_seconds > 0.0) {
          const ThreadPoolStats ps = pool_ptr->stats();
          s.worker_utilization =
              std::min(1.0, ps.busy_seconds /
                                (static_cast<double>(workers) * s.elapsed_seconds));
        }
        const SolverStateCacheStats sc = opt_.solver_cache->stats();
        const long long nh = sc.numeric_hits - solver_before.numeric_hits;
        const long long nm = sc.numeric_misses - solver_before.numeric_misses;
        if (nh + nm > 0)
          s.solver_cache_hit_rate =
              static_cast<double>(nh) / static_cast<double>(nh + nm);
        if (use_results && s.total > 0)
          s.result_cache_hit_rate =
              static_cast<double>(s.replayed) / static_cast<double>(s.total);
      });

  // Result-cache pre-pass, serial: a corner already computed (this sweep
  // has a content-identical predecessor, or a shared cache across sweeps)
  // is replayed under the asking task's index without touching the pool.
  if (use_results) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (auto hit = opt_.result_cache->find(plans[i].result_key)) {
        SweepRunRecord rec = *hit;
        rec.index = tasks[i].index;
        rec.label = tasks[i].label;
        // A replayed corner did no solver work in THIS sweep: zero its
        // telemetry/wall clock so the sweep totals (LU counts, phase
        // times) describe only work actually performed. The replay itself
        // is visible as a result_cache hit.
        rec.telemetry = obs::RunTelemetry{};
        rec.wall_seconds = 0.0;
        result.runs[i] = std::move(rec);
        plans[i].done = true;
        // Replays did no numerical work in this sweep, so they carry no
        // health grade (kOk keeps the stream consistent with
        // healthSummary(), which only counts collected corners).
        progress.taskReplayed(obs::HealthSeverity::kOk);
      }
    }
  }

  // Submission order groups structurally identical corners together
  // (original order otherwise, shareable corners first): the class's
  // builder then runs while its siblings are near the front of the queue,
  // so they block briefly on the in-flight build instead of much later.
  // Collection below is by slot, so this permutation never reaches the
  // exported order.
  std::vector<std::size_t> order;
  order.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (!plans[i].done) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const SolverSharing& sa = plans[a].sharing;
    const SolverSharing& sb = plans[b].sharing;
    const bool ea = sa.provider == nullptr;
    const bool eb = sb.provider == nullptr;
    if (ea != eb) return eb;  // shareable corners first
    if (sa.structure_key != sb.structure_key) return sa.structure_key < sb.structure_key;
    return sa.numeric_base_key < sb.numeric_base_key;
  });

  // The histogram registry outlives the pool (declared first, destroyed
  // last): workers record into it until the last future resolves.
  obs::HistogramRegistry hist;
  obs::HistogramRegistry* hist_ptr = opt_.collect_histograms ? &hist : nullptr;

  ThreadPool pool(workers);
  pool_ptr = &pool;
  if (hist_ptr != nullptr) pool.setQueueWaitRecorder(hist_ptr);
  std::vector<std::future<SweepRunRecord>> futures;
  futures.reserve(order.size());
  for (std::size_t slot : order) {
    const SimulationTask& task = tasks[slot];
    const SolverSharing& sharing = plans[slot].sharing;
    futures.push_back(pool.submit([this, &task, &sharing, hist_ptr,
                                   &progress]() -> SweepRunRecord {
      // One span per corner, on the worker's thread: in the trace viewer
      // the per-thread tracks show exactly how the pool packed the sweep.
      obs::TraceSpan task_span(std::string("task:") + task.label, "sweep");
      SweepRunRecord rec;
      rec.index = task.index;
      rec.label = task.label;
      try {
        auto driver =
            task.scenario->needsDriver() ? opt_.model_cache->driver(task.driver) : nullptr;
        auto receiver = task.scenario->needsReceiver()
                            ? opt_.model_cache->receiver(task.receiver)
                            : nullptr;
        TaskWaveforms waves = runSimulationTask(task, driver, receiver, sharing);
        const BitPattern pattern(task.scenario->pattern(),
                                 task.scenario->bitTime());
        rec.metrics = computeRunMetrics(waves, pattern, opt_.eye);
        rec.wall_seconds = waves.wall_seconds;
        rec.telemetry = waves.telemetry;
        // The engine layer owns the corner wall clock (telemetry.h).
        rec.telemetry.wall_seconds = waves.wall_seconds;
        if (opt_.keep_waveforms) rec.waves = std::move(waves);
        rec.ok = true;
        if (hist_ptr != nullptr) {
          const obs::TransientPhases& ph = rec.telemetry.phases;
          hist_ptr->record("corner_wall_seconds", rec.wall_seconds);
          hist_ptr->record("corner_factor_seconds", ph.factor_seconds);
          hist_ptr->record("corner_rhs_stamp_seconds", ph.rhs_stamp_seconds);
          hist_ptr->record("corner_solve_seconds", ph.solve_seconds);
          hist_ptr->record("corner_newton_iterations",
                           static_cast<double>(rec.telemetry.newton_iterations));
        }
      } catch (const std::exception& e) {
        rec.ok = false;
        rec.error = e.what();
      }
      progress.taskDone(rec.ok, rec.telemetry.health.severity);
      return rec;
    }));
  }

  // Collect each future into its task's slot: result order is the task
  // order no matter which worker finished first or how submission was
  // grouped.
  for (std::size_t k = 0; k < futures.size(); ++k)
    result.runs[order[k]] = futures[k].get();

  // Publish freshly computed records for later content-identical corners.
  if (use_results) {
    for (std::size_t slot : order)
      opt_.result_cache->put(plans[slot].result_key, result.runs[slot]);
  }

  // Every future has been collected, so the pool counters are final for
  // this batch even though the pool itself is still alive.
  result.pool = pool.stats();
  pool.setQueueWaitRecorder(nullptr);
  if (hist_ptr != nullptr) result.histograms = hist_ptr->snapshot();
  progress.finish();
  const ModelCacheStats cache_after = opt_.model_cache->stats();
  result.model_cache.hits = cache_after.hits - cache_before.hits;
  result.model_cache.misses = cache_after.misses - cache_before.misses;
  result.model_cache.inserts = cache_after.inserts - cache_before.inserts;
  result.model_cache.preload_seconds =
      cache_after.preload_seconds - cache_before.preload_seconds;
  const SolverStateCacheStats solver_after = opt_.solver_cache->stats();
  result.solver_cache.symbolic_hits = solver_after.symbolic_hits - solver_before.symbolic_hits;
  result.solver_cache.symbolic_misses =
      solver_after.symbolic_misses - solver_before.symbolic_misses;
  result.solver_cache.numeric_hits = solver_after.numeric_hits - solver_before.numeric_hits;
  result.solver_cache.numeric_misses =
      solver_after.numeric_misses - solver_before.numeric_misses;
  result.solver_cache.inserts = solver_after.inserts - solver_before.inserts;
  result.solver_cache.refused_inserts =
      solver_after.refused_inserts - solver_before.refused_inserts;
  const ResultCacheStats results_after = opt_.result_cache->stats();
  result.result_cache.hits = results_after.hits - results_before.hits;
  result.result_cache.misses = results_after.misses - results_before.misses;
  result.result_cache.inserts = results_after.inserts - results_before.inserts;
  result.result_cache.refused_inserts =
      results_after.refused_inserts - results_before.refused_inserts;

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Persist whatever trace events the sweep produced even if the process
  // later exits without shutdownTrace(). Best effort: an unwritable trace
  // file must not discard the computed sweep results.
  if (obs::TraceWriter* tw = obs::TraceWriter::active()) {
    try {
      tw->flush();
    } catch (const std::exception&) {
    }
  }
  return result;
}

}  // namespace fdtdmm
