#include "engine/sweep_runner.h"

#include <chrono>
#include <exception>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>

#include "engine/thread_pool.h"
#include "obs/trace.h"
#include "signal/bit_pattern.h"

namespace fdtdmm {

SweepRunner::SweepRunner(SweepOptions opt, std::shared_ptr<ModelCache> cache)
    : opt_(opt), cache_(std::move(cache)) {
  if (!cache_) cache_ = std::make_shared<ModelCache>();
}

SweepResult SweepRunner::run(const SweepSpec& spec) { return run(spec.expand()); }

SweepResult SweepRunner::run(const std::vector<SimulationTask>& tasks) {
  const auto start = std::chrono::steady_clock::now();

  // CSV/JSON rows are keyed by `index`; a duplicate would make the export
  // ambiguous, so reject the batch up front instead of exporting garbage.
  std::set<std::size_t> seen;
  for (const SimulationTask& task : tasks) {
    if (!task.scenario)
      throw std::invalid_argument("SweepRunner: task " +
                                  std::to_string(task.index) + " has no scenario");
    if (!seen.insert(task.index).second)
      throw std::invalid_argument("SweepRunner: duplicate task index " +
                                  std::to_string(task.index));
  }

  std::size_t workers = opt_.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }

  // Resolve every model serially up front: identification runs once per
  // device here instead of stalling (or racing) the workers. Cache counters
  // are cumulative over the cache's lifetime, so snapshot before/after to
  // attribute only this sweep's activity to its telemetry.
  const ModelCacheStats cache_before = cache_->stats();
  cache_->preload(tasks);

  SweepResult result;
  result.workers = workers;
  result.runs.resize(tasks.size());

  ThreadPool pool(workers);
  std::vector<std::future<SweepRunRecord>> futures;
  futures.reserve(tasks.size());
  for (const SimulationTask& task : tasks) {
    futures.push_back(pool.submit([this, &task]() -> SweepRunRecord {
      // One span per corner, on the worker's thread: in the trace viewer
      // the per-thread tracks show exactly how the pool packed the sweep.
      obs::TraceSpan task_span(std::string("task:") + task.label, "sweep");
      SweepRunRecord rec;
      rec.index = task.index;
      rec.label = task.label;
      try {
        auto driver =
            task.scenario->needsDriver() ? cache_->driver(task.driver) : nullptr;
        auto receiver = task.scenario->needsReceiver()
                            ? cache_->receiver(task.receiver)
                            : nullptr;
        TaskWaveforms waves = runSimulationTask(task, driver, receiver);
        const BitPattern pattern(task.scenario->pattern(),
                                 task.scenario->bitTime());
        rec.metrics = computeRunMetrics(waves, pattern, opt_.eye);
        rec.wall_seconds = waves.wall_seconds;
        rec.telemetry = waves.telemetry;
        // The engine layer owns the corner wall clock (telemetry.h).
        rec.telemetry.wall_seconds = waves.wall_seconds;
        if (opt_.keep_waveforms) rec.waves = std::move(waves);
        rec.ok = true;
      } catch (const std::exception& e) {
        rec.ok = false;
        rec.error = e.what();
      }
      return rec;
    }));
  }

  // Collect each future into its task's slot: result order is the task
  // order no matter which worker finished first.
  for (std::size_t i = 0; i < futures.size(); ++i)
    result.runs[i] = futures[i].get();

  // Every future has been collected, so the pool counters are final for
  // this batch even though the pool itself is still alive.
  result.pool = pool.stats();
  const ModelCacheStats cache_after = cache_->stats();
  result.model_cache.hits = cache_after.hits - cache_before.hits;
  result.model_cache.misses = cache_after.misses - cache_before.misses;
  result.model_cache.inserts = cache_after.inserts - cache_before.inserts;
  result.model_cache.preload_seconds =
      cache_after.preload_seconds - cache_before.preload_seconds;

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Persist whatever trace events the sweep produced even if the process
  // later exits without shutdownTrace(). Best effort: an unwritable trace
  // file must not discard the computed sweep results.
  if (obs::TraceWriter* tw = obs::TraceWriter::active()) {
    try {
      tw->flush();
    } catch (const std::exception&) {
    }
  }
  return result;
}

}  // namespace fdtdmm
