#include "engine/sweep_spec.h"

#include <map>
#include <set>
#include <stdexcept>

namespace fdtdmm {

namespace {

/// Validates every axis against the family's descriptor table and the
/// conditional-axis ordering rule. Catches unknown parameters, kind
/// mismatches, and out-of-range values before any task runs.
void checkAxes(const Scenario& proto, const std::vector<ParamAxis>& axes) {
  const std::string& family = proto.family();
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const ParamAxis& axis = axes[i];
    const std::string axis_name =
        axis.name.empty() ? "#" + std::to_string(i) : axis.name;
    for (const AxisPoint& point : axis.points) {
      if (point.bindings.empty())
        throw std::invalid_argument("SweepSpec: axis '" + axis_name +
                                    "' has a point with no bindings");
      for (const ParamBinding& b : point.bindings) {
        const ParamDescriptor* desc = proto.findParam(b.param);
        if (!desc) throwUnknownParam(family, b.param);
        checkParamValue(family, *desc, b.value);
      }
    }
    if (!axis.only_when_param.empty()) {
      const ParamDescriptor* cond = proto.findParam(axis.only_when_param);
      if (!cond) throwUnknownParam(family, axis.only_when_param);
      // A kind-mismatched or out-of-range condition value could never
      // match and would silently erase the axis from every grid point.
      checkParamValue(family, *cond, axis.only_when_value);
      // The condition must be resolved by the time this axis nests: its
      // parameter may only be bound by an *earlier* (outer) axis.
      for (std::size_t j = i; j < axes.size(); ++j)
        for (const AxisPoint& point : axes[j].points)
          for (const ParamBinding& b : point.bindings)
            if (b.param == axis.only_when_param)
              throw std::invalid_argument(
                  "SweepSpec: conditional axis '" + axis_name + "' depends on '" +
                  axis.only_when_param +
                  "', which is bound by a later (inner) axis — declare the "
                  "condition's axis first");
    }
  }

  // A parameter bound by two axes that can both apply would make the inner
  // binding silently overwrite the outer one at every grid point — a
  // multiplied grid of duplicate tasks. Only conditional axes with
  // pairwise-distinct conditions (mutually exclusive by construction for a
  // single condition parameter) may share a parameter.
  std::map<std::string, std::vector<std::size_t>> binders;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    std::set<std::string> params;
    for (const AxisPoint& point : axes[i].points)
      for (const ParamBinding& b : point.bindings) params.insert(b.param);
    for (const std::string& p : params) binders[p].push_back(i);
  }
  for (const auto& [param, idx] : binders) {
    for (std::size_t a = 0; a < idx.size(); ++a)
      for (std::size_t b = a + 1; b < idx.size(); ++b) {
        const ParamAxis& first = axes[idx[a]];
        const ParamAxis& second = axes[idx[b]];
        const bool exclusive = !first.only_when_param.empty() &&
                               !second.only_when_param.empty() &&
                               first.only_when_param == second.only_when_param &&
                               !(first.only_when_value == second.only_when_value);
        if (!exclusive)
          throw std::invalid_argument(
              "SweepSpec: parameter '" + param +
              "' is bound by more than one axis; the inner axis would "
              "overwrite the outer one at every grid point (use conditional "
              "axes with mutually exclusive conditions instead)");
      }
  }
}

/// The one grid-shape walker count() and expand() share. Walks the axes in
/// declaration order (outermost first), resolving conditional axes against
/// the values assigned so far (falling back to the base-configured
/// prototype), and calls `emit` once per grid point with the axis bindings
/// that apply there, outermost first.
void forEachGridPoint(
    const Scenario& proto, const std::vector<ParamAxis>& axes,
    const std::function<void(const std::vector<const ParamBinding*>&)>& emit) {
  std::vector<const ParamBinding*> applied;
  std::map<std::string, const ParamValue*> bound;  // axis-assigned so far

  std::function<void(std::size_t)> walk = [&](std::size_t i) {
    if (i == axes.size()) {
      emit(applied);
      return;
    }
    const ParamAxis& axis = axes[i];
    bool skip = axis.points.empty();
    if (!skip && !axis.only_when_param.empty()) {
      auto it = bound.find(axis.only_when_param);
      const ParamValue resolved =
          it != bound.end() ? *it->second : proto.get(axis.only_when_param);
      skip = !(resolved == axis.only_when_value);
    }
    if (skip) {  // factor 1: keep the base value
      walk(i + 1);
      return;
    }
    for (const AxisPoint& point : axis.points) {
      const std::size_t applied_mark = applied.size();
      std::vector<std::pair<std::string, const ParamValue*>> shadowed;
      for (const ParamBinding& b : point.bindings) {
        applied.push_back(&b);
        auto [it, inserted] = bound.emplace(b.param, &b.value);
        shadowed.emplace_back(b.param, inserted ? nullptr : it->second);
        it->second = &b.value;
      }
      walk(i + 1);
      for (auto rit = shadowed.rbegin(); rit != shadowed.rend(); ++rit) {
        if (rit->second)
          bound[rit->first] = rit->second;
        else
          bound.erase(rit->first);
      }
      applied.resize(applied_mark);
    }
  };
  walk(0);
}

std::unique_ptr<Scenario> makePrototype(const SweepSpec& spec) {
  auto proto = ScenarioRegistry::global().create(spec.scenario);
  proto->apply(spec.base);  // throws on unknown names / out-of-range values
  return proto;
}

}  // namespace

SweepSpec& SweepSpec::set(const std::string& param, ParamValue value) {
  base.push_back({param, std::move(value)});
  return *this;
}

SweepSpec& SweepSpec::axisValues(const std::string& param,
                                 std::vector<ParamValue> values) {
  ParamAxis a;
  a.name = param;
  a.points.reserve(values.size());
  for (ParamValue& v : values) a.points.push_back({{{param, std::move(v)}}});
  axes.push_back(std::move(a));
  return *this;
}

SweepSpec& SweepSpec::axis(const std::string& param, const std::vector<double>& values) {
  std::vector<ParamValue> vs;
  vs.reserve(values.size());
  for (double v : values) vs.emplace_back(v);
  return axisValues(param, std::move(vs));
}

SweepSpec& SweepSpec::axisStrings(const std::string& param,
                                  const std::vector<std::string>& values) {
  std::vector<ParamValue> vs;
  vs.reserve(values.size());
  for (const std::string& v : values) vs.emplace_back(v);
  return axisValues(param, std::move(vs));
}

SweepSpec& SweepSpec::axisBool(const std::string& param, const std::vector<bool>& values) {
  std::vector<ParamValue> vs;
  vs.reserve(values.size());
  for (bool v : values) vs.emplace_back(v);
  return axisValues(param, std::move(vs));
}

SweepSpec& SweepSpec::axis(ParamAxis a) {
  axes.push_back(std::move(a));
  return *this;
}

std::size_t SweepSpec::count() const {
  const auto proto = makePrototype(*this);
  checkAxes(*proto, axes);
  std::size_t n = 0;
  forEachGridPoint(*proto, axes,
                   [&](const std::vector<const ParamBinding*>&) { ++n; });
  return n;
}

std::vector<SimulationTask> SweepSpec::expand() const {
  const auto proto = makePrototype(*this);
  checkAxes(*proto, axes);

  std::vector<SimulationTask> tasks;
  std::vector<std::string> point_summaries;  // axis bindings per grid point
  forEachGridPoint(*proto, axes, [&](const std::vector<const ParamBinding*>& point) {
    auto scenario = proto->clone();
    std::string summary;
    for (const ParamBinding* b : point) {
      scenario->set(b->param, b->value);
      summary += (summary.empty() ? "" : " ") + b->param + "=" +
                 formatParamValue(b->value);
    }
    scenario->validate();

    SimulationTask task;
    task.index = tasks.size();
    task.label = scenario->label();
    task.scenario = std::shared_ptr<const Scenario>(std::move(scenario));
    task.driver = driver;
    task.receiver = receiver;
    tasks.push_back(std::move(task));
    point_summaries.push_back(std::move(summary));
  });

  // An axis over a parameter the family label omits would export identical
  // labels for distinct corners; disambiguate colliding labels with the
  // grid point's axis bindings. Sweeps whose labels are already unique
  // (every pre-redesign sweep) are untouched.
  std::map<std::string, std::size_t> label_count;
  for (const SimulationTask& task : tasks) ++label_count[task.label];
  for (std::size_t i = 0; i < tasks.size(); ++i)
    if (label_count.at(tasks[i].label) > 1 && !point_summaries[i].empty())
      tasks[i].label += " | " + point_summaries[i];
  return tasks;
}

}  // namespace fdtdmm
