#include "engine/sweep_spec.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "math/rng.h"
#include "math/stats.h"

namespace fdtdmm {

namespace {

/// Validates every axis against the family's descriptor table and the
/// conditional-axis ordering rule. Catches unknown parameters, kind
/// mismatches, and out-of-range values before any task runs.
void checkAxes(const Scenario& proto, const std::vector<ParamAxis>& axes) {
  const std::string& family = proto.family();
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const ParamAxis& axis = axes[i];
    const std::string axis_name =
        axis.name.empty() ? "#" + std::to_string(i) : axis.name;
    for (const AxisPoint& point : axis.points) {
      if (point.bindings.empty())
        throw std::invalid_argument("SweepSpec: axis '" + axis_name +
                                    "' has a point with no bindings");
      for (const ParamBinding& b : point.bindings) {
        const ParamDescriptor* desc = proto.findParam(b.param);
        if (!desc) throwUnknownParam(family, b.param);
        checkParamValue(family, *desc, b.value);
      }
    }
    if (!axis.only_when_param.empty()) {
      const ParamDescriptor* cond = proto.findParam(axis.only_when_param);
      if (!cond) throwUnknownParam(family, axis.only_when_param);
      // A kind-mismatched or out-of-range condition value could never
      // match and would silently erase the axis from every grid point.
      checkParamValue(family, *cond, axis.only_when_value);
      // The condition must be resolved by the time this axis nests: its
      // parameter may only be bound by an *earlier* (outer) axis.
      for (std::size_t j = i; j < axes.size(); ++j)
        for (const AxisPoint& point : axes[j].points)
          for (const ParamBinding& b : point.bindings)
            if (b.param == axis.only_when_param)
              throw std::invalid_argument(
                  "SweepSpec: conditional axis '" + axis_name + "' depends on '" +
                  axis.only_when_param +
                  "', which is bound by a later (inner) axis — declare the "
                  "condition's axis first");
    }
  }

  // A parameter bound by two axes that can both apply would make the inner
  // binding silently overwrite the outer one at every grid point — a
  // multiplied grid of duplicate tasks. Only conditional axes with
  // pairwise-distinct conditions (mutually exclusive by construction for a
  // single condition parameter) may share a parameter.
  std::map<std::string, std::vector<std::size_t>> binders;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    std::set<std::string> params;
    for (const AxisPoint& point : axes[i].points)
      for (const ParamBinding& b : point.bindings) params.insert(b.param);
    for (const std::string& p : params) binders[p].push_back(i);
  }
  for (const auto& [param, idx] : binders) {
    for (std::size_t a = 0; a < idx.size(); ++a)
      for (std::size_t b = a + 1; b < idx.size(); ++b) {
        const ParamAxis& first = axes[idx[a]];
        const ParamAxis& second = axes[idx[b]];
        const bool exclusive = !first.only_when_param.empty() &&
                               !second.only_when_param.empty() &&
                               first.only_when_param == second.only_when_param &&
                               !(first.only_when_value == second.only_when_value);
        if (!exclusive)
          throw std::invalid_argument(
              "SweepSpec: parameter '" + param +
              "' is bound by more than one axis; the inner axis would "
              "overwrite the outer one at every grid point (use conditional "
              "axes with mutually exclusive conditions instead)");
      }
  }
}

/// The one grid-shape walker count() and expand() share. Walks the axes in
/// declaration order (outermost first), resolving conditional axes against
/// the values assigned so far (falling back to the base-configured
/// prototype), and calls `emit` once per grid point with the axis bindings
/// that apply there, outermost first.
void forEachGridPoint(
    const Scenario& proto, const std::vector<ParamAxis>& axes,
    const std::function<void(const std::vector<const ParamBinding*>&)>& emit) {
  std::vector<const ParamBinding*> applied;
  std::map<std::string, const ParamValue*> bound;  // axis-assigned so far

  std::function<void(std::size_t)> walk = [&](std::size_t i) {
    if (i == axes.size()) {
      emit(applied);
      return;
    }
    const ParamAxis& axis = axes[i];
    bool skip = axis.points.empty();
    if (!skip && !axis.only_when_param.empty()) {
      auto it = bound.find(axis.only_when_param);
      const ParamValue resolved =
          it != bound.end() ? *it->second : proto.get(axis.only_when_param);
      skip = !(resolved == axis.only_when_value);
    }
    if (skip) {  // factor 1: keep the base value
      walk(i + 1);
      return;
    }
    for (const AxisPoint& point : axis.points) {
      const std::size_t applied_mark = applied.size();
      std::vector<std::pair<std::string, const ParamValue*>> shadowed;
      for (const ParamBinding& b : point.bindings) {
        applied.push_back(&b);
        auto [it, inserted] = bound.emplace(b.param, &b.value);
        shadowed.emplace_back(b.param, inserted ? nullptr : it->second);
        it->second = &b.value;
      }
      walk(i + 1);
      for (auto rit = shadowed.rbegin(); rit != shadowed.rend(); ++rit) {
        if (rit->second)
          bound[rit->first] = rit->second;
        else
          bound.erase(rit->first);
      }
      applied.resize(applied_mark);
    }
  };
  walk(0);
}

std::unique_ptr<Scenario> makePrototype(const SweepSpec& spec) {
  auto proto = ScenarioRegistry::global().create(spec.scenario);
  proto->apply(spec.base);  // throws on unknown names / out-of-range values
  return proto;
}

/// Stream tag separating an LHS axis's stratum-shuffle stream from its
/// jitter stream. Pinned by the reproducibility tests — never change.
constexpr std::uint64_t kLhsShuffleTag = 0xa1c9e4f1d3b25f8dULL;

/// Validates the stochastic axes: known double parameters, well-formed
/// distributions, and no parameter bound twice (by two stochastic axes or
/// by a stochastic and a deterministic axis at once).
void checkStochasticAxes(const Scenario& proto, const SweepSpec& spec) {
  const std::string& family = proto.family();
  std::set<std::string> det_params;
  for (const ParamAxis& axis : spec.axes)
    for (const AxisPoint& point : axis.points)
      for (const ParamBinding& b : point.bindings) det_params.insert(b.param);

  std::set<std::string> seen;
  for (const StochasticAxis& ax : spec.stochastic) {
    if (ax.name.empty())
      throw std::invalid_argument(
          "SweepSpec: a stochastic axis needs a name — it identifies the "
          "axis's draw streams and label tags");
    if (ax.samples > 0 && ax.params.empty())
      throw std::invalid_argument("SweepSpec: stochastic axis '" + ax.name +
                                  "' has samples but no parameters");
    for (const StochasticParam& p : ax.params) {
      const ParamDescriptor* desc = proto.findParam(p.param);
      if (!desc) throwUnknownParam(family, p.param);
      if (desc->kind != ParamKind::kDouble)
        throw std::invalid_argument(
            "SweepSpec: stochastic axis '" + ax.name + "' perturbs '" +
            p.param + "', which is a " + paramKindName(desc->kind) +
            " parameter — stochastic axes sample double parameters only");
      const std::string where =
          "SweepSpec: stochastic axis '" + ax.name + "', parameter '" +
          p.param + "': ";
      switch (p.dist) {
        case McDistribution::kUniform:
          if (!(p.a < p.b))
            throw std::invalid_argument(where +
                                        "uniform needs lower bound < upper");
          break;
        case McDistribution::kNormal:
          if (!(p.b > 0.0))
            throw std::invalid_argument(where + "normal needs stddev > 0");
          break;
        case McDistribution::kTruncatedNormal: {
          if (!(p.b > 0.0))
            throw std::invalid_argument(where +
                                        "truncated normal needs stddev > 0");
          if (!(p.lo < p.hi))
            throw std::invalid_argument(
                where + "truncation needs lower bound < upper");
          const double mass = normalCdf((p.hi - p.a) / p.b) -
                              normalCdf((p.lo - p.a) / p.b);
          if (!(mass > 0.0))
            throw std::invalid_argument(
                where +
                "truncation interval carries no probability mass (bounds "
                "are too many stddevs from the mean)");
          break;
        }
      }
      if (det_params.count(p.param) || !seen.insert(p.param).second)
        throw std::invalid_argument(
            "SweepSpec: parameter '" + p.param +
            "' is bound by more than one axis (stochastic axes may not "
            "share parameters with each other or with deterministic axes)");
    }
  }
}

/// Inverse-CDF transform: exactly one uniform variate u in (0, 1) per draw,
/// which is what makes Latin-hypercube stratification exact per parameter.
double sampleInverseCdf(const StochasticParam& p, double u) {
  switch (p.dist) {
    case McDistribution::kUniform:
      return p.a + (p.b - p.a) * u;
    case McDistribution::kNormal:
      return p.a + p.b * normalQuantile(u);
    case McDistribution::kTruncatedNormal: {
      const double alpha = normalCdf((p.lo - p.a) / p.b);
      const double beta = normalCdf((p.hi - p.a) / p.b);
      const double v =
          p.a + p.b * normalQuantile(alpha + u * (beta - alpha));
      // Clamp away the last-ulp leakage of the double round trip; the
      // descriptor range check downstream must never see a bound overshoot.
      return std::min(p.hi, std::max(p.lo, v));
    }
  }
  return 0.0;  // unreachable; keeps -Werror=return-type happy
}

/// All `samples` joint draws of one axis at one sampling context
/// ([param][sample]). The context is the ordinal of the surrounding
/// (deterministic corner x outer stochastic samples) combination;
/// common-random-numbers mode collapses it to 0 so every context reuses
/// draw sequence 0. Each value is a pure function of
/// (seed, axis/param name, context, sample) via splitStream — expansion
/// order and worker count can never reach the draws.
std::vector<std::vector<double>> drawAxisValues(const StochasticAxis& ax,
                                                std::uint64_t context) {
  const std::uint64_t ctx = ax.common_random_numbers ? 0 : context;
  const std::size_t n = ax.samples;
  std::vector<std::vector<double>> values(ax.params.size(),
                                          std::vector<double>(n));
  for (std::size_t j = 0; j < ax.params.size(); ++j) {
    const StochasticParam& p = ax.params[j];
    const std::uint64_t sid = fnv1a64(ax.name + "/" + p.param);
    if (ax.sampling == McSampling::kLatinHypercube) {
      // One draw per stratum [k/n, (k+1)/n); the strata order is a
      // Fisher-Yates shuffle seeded per (param, context) so parameters
      // pair up randomly instead of rank-correlating.
      std::vector<std::size_t> perm(n);
      for (std::size_t s = 0; s < n; ++s) perm[s] = s;
      Rng shuffler = splitStream(ax.seed, sid ^ kLhsShuffleTag, ctx);
      for (std::size_t s = n; s > 1; --s)
        std::swap(perm[s - 1],
                  perm[static_cast<std::size_t>(shuffler.below(s))]);
      for (std::size_t s = 0; s < n; ++s) {
        const double jitter =
            splitStream(ax.seed, sid, ctx * n + s).uniformOpen();
        const double u = (static_cast<double>(perm[s]) + jitter) /
                         static_cast<double>(n);
        values[j][s] = sampleInverseCdf(p, u);
      }
    } else {
      for (std::size_t s = 0; s < n; ++s)
        values[j][s] = sampleInverseCdf(
            p, splitStream(ax.seed, sid, ctx * n + s).uniformOpen());
    }
  }
  return values;
}

}  // namespace

SweepSpec& SweepSpec::set(const std::string& param, ParamValue value) {
  base.push_back({param, std::move(value)});
  return *this;
}

SweepSpec& SweepSpec::axisValues(const std::string& param,
                                 std::vector<ParamValue> values) {
  ParamAxis a;
  a.name = param;
  a.points.reserve(values.size());
  for (ParamValue& v : values) a.points.push_back({{{param, std::move(v)}}});
  axes.push_back(std::move(a));
  return *this;
}

SweepSpec& SweepSpec::axis(const std::string& param, const std::vector<double>& values) {
  std::vector<ParamValue> vs;
  vs.reserve(values.size());
  for (double v : values) vs.emplace_back(v);
  return axisValues(param, std::move(vs));
}

SweepSpec& SweepSpec::axisStrings(const std::string& param,
                                  const std::vector<std::string>& values) {
  std::vector<ParamValue> vs;
  vs.reserve(values.size());
  for (const std::string& v : values) vs.emplace_back(v);
  return axisValues(param, std::move(vs));
}

SweepSpec& SweepSpec::axisBool(const std::string& param, const std::vector<bool>& values) {
  std::vector<ParamValue> vs;
  vs.reserve(values.size());
  for (bool v : values) vs.emplace_back(v);
  return axisValues(param, std::move(vs));
}

SweepSpec& SweepSpec::axis(ParamAxis a) {
  axes.push_back(std::move(a));
  return *this;
}

SweepSpec& SweepSpec::stochasticAxis(StochasticAxis a) {
  stochastic.push_back(std::move(a));
  return *this;
}

StochasticParam uniformParam(std::string param, double lo, double hi) {
  StochasticParam p;
  p.param = std::move(param);
  p.dist = McDistribution::kUniform;
  p.a = lo;
  p.b = hi;
  return p;
}

StochasticParam normalParam(std::string param, double mean, double stddev) {
  StochasticParam p;
  p.param = std::move(param);
  p.dist = McDistribution::kNormal;
  p.a = mean;
  p.b = stddev;
  return p;
}

StochasticParam truncatedNormalParam(std::string param, double mean,
                                     double stddev, double lo, double hi) {
  StochasticParam p;
  p.param = std::move(param);
  p.dist = McDistribution::kTruncatedNormal;
  p.a = mean;
  p.b = stddev;
  p.lo = lo;
  p.hi = hi;
  return p;
}

std::size_t SweepSpec::count() const {
  const auto proto = makePrototype(*this);
  checkAxes(*proto, axes);
  checkStochasticAxes(*proto, *this);
  std::size_t n = 0;
  forEachGridPoint(*proto, axes,
                   [&](const std::vector<const ParamBinding*>&) { ++n; });
  for (const StochasticAxis& ax : stochastic)
    if (ax.samples > 0) n *= ax.samples;
  return n;
}

std::vector<SimulationTask> SweepSpec::expand() const {
  return expandDetailed().tasks;
}

ExpandedSweep SweepSpec::expandDetailed() const {
  const auto proto = makePrototype(*this);
  checkAxes(*proto, axes);
  checkStochasticAxes(*proto, *this);

  ExpandedSweep out;
  std::vector<std::string> point_summaries;  // det axis bindings per task
  // Common-random-numbers draws are context-independent by construction;
  // compute them once per axis instead of once per corner.
  std::vector<std::vector<std::vector<double>>> crn_values(stochastic.size());
  std::vector<bool> crn_ready(stochastic.size(), false);

  std::size_t group = 0;
  forEachGridPoint(*proto, axes, [&](const std::vector<const ParamBinding*>&
                                         point) {
    std::string summary;
    for (const ParamBinding* b : point)
      summary += (summary.empty() ? "" : " ") + b->param + "=" +
                 formatParamValue(b->value);

    // Innermost loops: the stochastic axes, declaration order. `context`
    // identifies the surrounding (corner x outer samples) combination and
    // feeds the draw counters, so a task's sampled values depend only on
    // its own coordinates — never on how many tasks came before it.
    std::vector<StochasticDraw> draws;
    std::vector<ParamBinding> sampled;
    std::function<void(std::size_t, std::uint64_t)> walkStochastic =
        [&](std::size_t k, std::uint64_t context) {
          if (k == stochastic.size()) {
            auto scenario = proto->clone();
            for (const ParamBinding* b : point)
              scenario->set(b->param, b->value);
            for (const ParamBinding& b : sampled) {
              try {
                scenario->set(b.param, b.value);
              } catch (const std::invalid_argument& e) {
                throw std::invalid_argument(
                    std::string(e.what()) +
                    " (drawn by a stochastic axis — bound the draws with "
                    "truncatedNormalParam / tighter uniform bounds)");
              }
            }
            scenario->validate();

            SimulationTask task;
            task.index = out.tasks.size();
            task.label = scenario->label();
            for (const StochasticDraw& d : draws)
              task.label += " | " + stochastic[d.axis].name + "#" +
                            std::to_string(d.draw) + "@" +
                            std::to_string(d.seed);
            task.scenario = std::shared_ptr<const Scenario>(std::move(scenario));
            task.driver = driver;
            task.receiver = receiver;
            out.tasks.push_back(std::move(task));

            TaskProvenance prov;
            prov.group = group;
            prov.group_label = summary.empty() ? "base" : summary;
            prov.draws = draws;
            prov.sampled = sampled;
            out.provenance.push_back(std::move(prov));
            point_summaries.push_back(summary);
            return;
          }
          const StochasticAxis& ax = stochastic[k];
          if (ax.samples == 0) {  // factor 1: keep the base values
            walkStochastic(k + 1, context);
            return;
          }
          std::vector<std::vector<double>> fresh;
          const std::vector<std::vector<double>>* values;
          if (ax.common_random_numbers) {
            if (!crn_ready[k]) {
              crn_values[k] = drawAxisValues(ax, 0);
              crn_ready[k] = true;
            }
            values = &crn_values[k];
          } else {
            fresh = drawAxisValues(ax, context);
            values = &fresh;
          }
          for (std::size_t s = 0; s < ax.samples; ++s) {
            StochasticDraw d;
            d.axis = k;
            d.seed = ax.seed;
            d.draw = s;
            draws.push_back(d);
            const std::size_t mark = sampled.size();
            for (std::size_t j = 0; j < ax.params.size(); ++j)
              sampled.push_back(
                  {ax.params[j].param, ParamValue{(*values)[j][s]}});
            walkStochastic(k + 1, context * ax.samples + s);
            sampled.resize(mark);
            draws.pop_back();
          }
        };
    walkStochastic(0, group);
    ++group;
  });
  out.group_count = group;

  // An axis over a parameter the family label omits would export identical
  // labels for distinct corners; disambiguate colliding labels with the
  // grid point's deterministic axis bindings. (Stochastic tags are already
  // unique within a corner.) Sweeps whose labels are already unique (every
  // pre-redesign sweep) are untouched.
  std::map<std::string, std::size_t> label_count;
  for (const SimulationTask& task : out.tasks) ++label_count[task.label];
  for (std::size_t i = 0; i < out.tasks.size(); ++i)
    if (label_count.at(out.tasks[i].label) > 1 && !point_summaries[i].empty())
      out.tasks[i].label += " | " + point_summaries[i];
  return out;
}

}  // namespace fdtdmm
