#include "engine/sweep_spec.h"

#include <cstdio>
#include <stdexcept>

namespace fdtdmm {

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

void checkAxes(const SweepSpec& spec) {
  if (spec.kind == TaskKind::kPcb) {
    if (!spec.zc_values.empty() || !spec.td_values.empty() ||
        !spec.loads.empty() || !spec.rc_loads.empty())
      throw std::invalid_argument(
          "SweepSpec: zc/td/load axes do not apply to a PCB sweep");
  } else if (!spec.incident_field.empty()) {
    throw std::invalid_argument(
        "SweepSpec: incident_field axis does not apply to a t-line sweep");
  }
  for (double bt : spec.bit_times)
    if (!(bt > 0.0)) throw std::invalid_argument("SweepSpec: bit_time must be > 0");
  for (double zc : spec.zc_values)
    if (!(zc > 0.0)) throw std::invalid_argument("SweepSpec: zc must be > 0");
  for (double td : spec.td_values)
    if (!(td > 0.0)) throw std::invalid_argument("SweepSpec: td must be > 0");
  for (const RcLoad& rc : spec.rc_loads)
    if (!(rc.r > 0.0) || !(rc.c > 0.0))
      throw std::invalid_argument("SweepSpec: rc_loads entries must be > 0");
  for (const std::string& p : spec.patterns)
    if (p.empty()) throw std::invalid_argument("SweepSpec: empty pattern");
}

const char* engineName(TlineEngine e) {
  switch (e) {
    case TlineEngine::kSpiceRbf: return "spice-rbf";
    case TlineEngine::kFdtd1d: return "fdtd1d";
    case TlineEngine::kFdtd3d: return "fdtd3d";
  }
  return "?";
}

}  // namespace

std::size_t SweepSpec::count() const {
  checkAxes(*this);
  auto dim = [](std::size_t n) { return n == 0 ? std::size_t{1} : n; };
  std::size_t n = dim(patterns.size()) * dim(bit_times.size());
  if (kind == TaskKind::kPcb) return n * dim(incident_field.size());
  n *= dim(zc_values.size()) * dim(td_values.size());
  // The rc axis multiplies linear-RC grid points only.
  std::size_t load_factor = 0;
  const std::vector<FarEndLoad> load_axis =
      loads.empty() ? std::vector<FarEndLoad>{base_tline.load} : loads;
  for (FarEndLoad l : load_axis)
    load_factor += l == FarEndLoad::kLinearRc ? dim(rc_loads.size()) : 1;
  return n * load_factor;
}

std::vector<SimulationTask> SweepSpec::expand() const {
  checkAxes(*this);

  // Resolve each axis to a concrete list (base value when empty).
  const auto pats = patterns.empty()
                        ? std::vector<std::string>{kind == TaskKind::kTline
                                                       ? base_tline.pattern
                                                       : base_pcb.pattern}
                        : patterns;
  const auto bts = bit_times.empty()
                       ? std::vector<double>{kind == TaskKind::kTline
                                                 ? base_tline.bit_time
                                                 : base_pcb.bit_time}
                       : bit_times;

  std::vector<SimulationTask> tasks;
  tasks.reserve(count());

  auto emit = [&](SimulationTask task, std::string label) {
    task.index = tasks.size();
    task.driver = driver;
    task.receiver = receiver;
    task.label = std::move(label);
    validateSimulationTask(task);
    tasks.push_back(std::move(task));
  };

  if (kind == TaskKind::kPcb) {
    const auto incs = incident_field.empty()
                          ? std::vector<bool>{base_pcb.with_incident}
                          : incident_field;
    for (const std::string& pat : pats)
      for (double bt : bts)
        for (bool inc : incs) {
          SimulationTask task;
          task.kind = TaskKind::kPcb;
          task.pcb = base_pcb;
          task.pcb.pattern = pat;
          task.pcb.bit_time = bt;
          task.pcb.with_incident = inc;
          emit(std::move(task), "pcb pattern=" + pat + " bt=" + num(bt) +
                                    " incident=" + (inc ? "on" : "off"));
        }
    return tasks;
  }

  const auto zcs = zc_values.empty() ? std::vector<double>{base_tline.zc} : zc_values;
  const auto tds = td_values.empty() ? std::vector<double>{base_tline.td} : td_values;
  const auto lds = loads.empty() ? std::vector<FarEndLoad>{base_tline.load} : loads;
  const auto rcs = rc_loads.empty()
                       ? std::vector<RcLoad>{{base_tline.load_r, base_tline.load_c}}
                       : rc_loads;

  for (const std::string& pat : pats)
    for (double bt : bts)
      for (double zc : zcs)
        for (double td : tds)
          for (FarEndLoad load : lds) {
            // Receiver-loaded points ignore the rc axis (see header).
            const std::size_t n_rc = load == FarEndLoad::kLinearRc ? rcs.size() : 1;
            for (std::size_t r = 0; r < n_rc; ++r) {
              SimulationTask task;
              task.kind = TaskKind::kTline;
              task.engine = engine;
              task.tline = base_tline;
              task.tline.pattern = pat;
              task.tline.bit_time = bt;
              task.tline.zc = zc;
              task.tline.td = td;
              task.tline.load = load;
              std::string label = std::string("tline/") + engineName(engine) +
                                  " pattern=" + pat + " bt=" + num(bt) +
                                  " zc=" + num(zc) + " td=" + num(td);
              if (load == FarEndLoad::kLinearRc) {
                task.tline.load_r = rcs[r].r;
                task.tline.load_c = rcs[r].c;
                label += " load=rc r=" + num(rcs[r].r) + " c=" + num(rcs[r].c);
              } else {
                label += " load=receiver";
              }
              emit(std::move(task), std::move(label));
            }
          }
  return tasks;
}

}  // namespace fdtdmm
