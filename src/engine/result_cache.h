#pragma once
/// \file result_cache.h
/// Content-addressed cache of finished sweep-run records. Scenario runs
/// are pure functions of their parameters and models (the scenario.h
/// determinism contract), so a record computed for one task answers every
/// later task with the same content — repeated corners across sweeps (or
/// within one, e.g. a redundant grid) become O(1) lookups instead of
/// transient runs.
///
/// The key is the full content of the task: family, driver/receiver model
/// names, and every parameter descriptor's current value (numbers in
/// round-trip-exact %.17g, so two corners differing in the 17th digit
/// never collide), plus the eye-measurement options the metrics were
/// computed with. Task index and label are NOT part of the key — a hit is
/// replayed under the asking task's index/label.
///
/// Only successful (ok) records are cached, with waveforms stripped:
/// errors may be transient (missing model registered later) and waveforms
/// are memory-heavy and only requested via keep_waveforms — the runner
/// bypasses this cache entirely when waveforms are requested.

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/sim_task.h"
#include "signal/eye.h"

namespace fdtdmm {

struct SweepRunRecord;  // engine/sweep_result.h (which includes this header)

/// Effectiveness counters of a ResultCache (cumulative; snapshot deltas
/// per sweep, the ModelCacheStats convention).
struct ResultCacheStats {
  long long hits = 0;     ///< find() calls that returned a record
  long long misses = 0;   ///< find() calls that returned null
  long long inserts = 0;  ///< records stored
  /// put() calls for a NEW key refused because the cache sits at its
  /// max_entries() bound (a nonzero value here on a long-lived cache
  /// means later sweeps run uncached — raise the bound or clear()).
  long long refused_inserts = 0;
};

/// The full-content key of a task (+ eye options). Deterministic: equal
/// tasks produce equal keys on every platform.
std::string resultCacheKey(const SimulationTask& task, const EyeOptions& eye);

class ResultCache {
 public:
  /// `max_entries` bounds the record count: once full, put() refuses NEW
  /// keys (counted in stats().refused_inserts) instead of growing — a
  /// long-lived cache (the future sweep-server deployment) must not grow
  /// without bound. 0 = unbounded. Lookups and re-puts of cached keys are
  /// unaffected by the bound.
  explicit ResultCache(std::size_t max_entries = 0) : max_entries_(max_entries) {}

  /// Adjusts the bound. Shrinking below size() evicts nothing — existing
  /// records stay; only new inserts are refused.
  void setMaxEntries(std::size_t max_entries);
  std::size_t maxEntries() const;

  /// Returns the cached record for `key`, or null (counting a hit/miss).
  std::shared_ptr<const SweepRunRecord> find(const std::string& key);

  /// Stores `record` under `key` unless the slot is already filled
  /// (first-wins: records for equal keys are interchangeable by the
  /// determinism contract). Failed records are ignored.
  void put(const std::string& key, const SweepRunRecord& record);

  /// Snapshot of the hit/miss/insert counters.
  ResultCacheStats stats() const;

  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const SweepRunRecord>> records_;
  ResultCacheStats stats_;      // guarded by mu_
  std::size_t max_entries_ = 0;  // guarded by mu_; 0 = unbounded
};

}  // namespace fdtdmm
