#include "engine/thread_pool.h"

namespace fdtdmm {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) throw std::invalid_argument("ThreadPool: workers must be > 0");
  stats_.tasks_per_worker.assign(workers, 0);
  workers_.reserve(workers);
  try {
    for (std::size_t i = 0; i < workers; ++i)
      workers_.emplace_back([this, i] { workerLoop(i); });
  } catch (...) {
    // Thread creation failed partway (e.g. EAGAIN under a pid limit):
    // destroying joinable threads would std::terminate, so shut down the
    // ones that did start before rethrowing.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ThreadPool::setQueueWaitRecorder(obs::HistogramRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_wait_recorder_ = registry;
}

void ThreadPool::workerLoop(std::size_t worker_id) {
  for (;;) {
    std::function<void()> task;
    obs::HistogramRegistry* recorder = nullptr;
    double wait_seconds = 0.0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      QueuedTask qt = std::move(queue_.front());
      queue_.pop();
      // Stats update under the lock we already hold: queue-wait is the
      // time this task spent parked, attributed at dequeue; the completed
      // count is per worker (the task body runs outside the lock, so
      // "completed" means "dispatched to this worker" — equal once the
      // future is collected).
      wait_seconds =
          std::chrono::duration<double>(Clock::now() - qt.enqueued).count();
      stats_.queue_wait_seconds += wait_seconds;
      ++stats_.tasks_per_worker[worker_id];
      recorder = queue_wait_recorder_;
      task = std::move(qt.fn);
    }
    // The histogram sample lands outside the queue lock: the registry has
    // its own per-thread sharding, so recording never stalls submitters.
    if (recorder != nullptr)
      recorder->record("pool.queue_wait_seconds", wait_seconds);
    const Clock::time_point run_begin = Clock::now();
    task();  // packaged_task: exceptions land in the future
    const double run_seconds =
        std::chrono::duration<double>(Clock::now() - run_begin).count();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.busy_seconds += run_seconds;
    }
  }
}

}  // namespace fdtdmm
