#include "engine/ensemble_stats.h"

#include <cmath>
#include <fstream>
#include <map>
#include <stdexcept>

#include "math/stats.h"

namespace fdtdmm {

namespace {

/// Extracts one named metric from an ok record. Returns false when the
/// metric is undefined for that run (invalid eye, no delay crossing).
bool extractMetric(const RunMetrics& m, const std::string& name, double* out) {
  if (name == "eye_height") {
    if (!m.eye_valid) return false;
    *out = m.eye.eye_height;
  } else if (name == "eye_level_high") {
    if (!m.eye_valid) return false;
    *out = m.eye.level_high;
  } else if (name == "eye_level_low") {
    if (!m.eye_valid) return false;
    *out = m.eye.level_low;
  } else if (name == "v_far_max") {
    *out = m.v_far_max;
  } else if (name == "v_far_min") {
    *out = m.v_far_min;
  } else if (name == "v_far_abs_peak") {
    *out = std::max(std::abs(m.v_far_max), std::abs(m.v_far_min));
  } else if (name == "overshoot") {
    *out = m.overshoot;
  } else if (name == "settling_time") {
    *out = m.settling_time;
  } else if (name == "far_end_delay") {
    if (m.far_end_delay < 0.0) return false;
    *out = m.far_end_delay;
  } else if (name == "max_newton_iterations") {
    *out = static_cast<double>(m.max_newton_iterations);
  } else {
    throw std::invalid_argument("computeEnsembleStats: unknown metric '" +
                                name + "'");
  }
  return true;
}

}  // namespace

const std::vector<std::string>& ensembleMetricNames() {
  static const std::vector<std::string> names = {
      "eye_height",   "eye_level_high", "eye_level_low",
      "v_far_max",    "v_far_min",      "v_far_abs_peak",
      "overshoot",    "settling_time",  "far_end_delay",
      "max_newton_iterations"};
  return names;
}

EnsembleStats computeEnsembleStats(const SweepResult& result,
                                   const ExpandedSweep& expanded,
                                   const EnsembleOptions& opt) {
  if (result.runs.size() != expanded.provenance.size())
    throw std::invalid_argument(
        "computeEnsembleStats: result has " +
        std::to_string(result.runs.size()) + " runs but the expansion has " +
        std::to_string(expanded.provenance.size()) +
        " tasks — pass the ExpandedSweep the result was run from");
  for (double q : opt.quantiles)
    if (!(q >= 0.0 && q <= 1.0))
      throw std::invalid_argument(
          "computeEnsembleStats: quantile outside [0, 1]");
  const std::vector<std::string>& metric_names =
      opt.metrics.empty() ? ensembleMetricNames() : opt.metrics;

  EnsembleStats stats;
  stats.quantiles = opt.quantiles;
  stats.groups.resize(expanded.group_count);
  for (std::size_t g = 0; g < expanded.group_count; ++g)
    stats.groups[g].group = g;

  // One pass over the runs: bucket each ok record's metric values.
  // values[g] holds one vector per metric name (then per exceedance query).
  const std::size_t n_metrics = metric_names.size();
  const std::size_t n_exceed = opt.exceedances.size();
  std::vector<std::vector<std::vector<double>>> values(
      expanded.group_count,
      std::vector<std::vector<double>>(n_metrics + n_exceed));
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const TaskProvenance& prov = expanded.provenance[i];
    GroupEnsemble& group = stats.groups.at(prov.group);
    if (group.samples == 0) group.label = prov.group_label;
    ++group.samples;
    const SweepRunRecord& run = result.runs[i];
    if (!run.ok) {
      ++group.failed;
      continue;
    }
    double v = 0.0;
    for (std::size_t m = 0; m < n_metrics; ++m)
      if (extractMetric(run.metrics, metric_names[m], &v))
        values[prov.group][m].push_back(v);
    for (std::size_t e = 0; e < n_exceed; ++e)
      if (extractMetric(run.metrics, opt.exceedances[e].metric, &v))
        values[prov.group][n_metrics + e].push_back(v);
  }

  for (std::size_t g = 0; g < expanded.group_count; ++g) {
    GroupEnsemble& group = stats.groups[g];
    for (std::size_t m = 0; m < n_metrics; ++m) {
      const std::vector<double>& v = values[g][m];
      MetricEnsemble me;
      me.name = metric_names[m];
      me.count = v.size();
      if (!v.empty()) {
        me.mean = mean(v);
        me.stddev = stddev(v);
        const MinMax mm = minMax(v);
        me.min = mm.min;
        me.max = mm.max;
        me.quantile_values = quantiles(v, opt.quantiles);
      } else {
        me.quantile_values.assign(opt.quantiles.size(), 0.0);
      }
      group.metrics.push_back(std::move(me));
    }
    for (std::size_t e = 0; e < n_exceed; ++e) {
      const std::vector<double>& v = values[g][n_metrics + e];
      ExceedanceEnsemble ee;
      ee.query = opt.exceedances[e];
      ee.count = v.size();
      if (!v.empty())
        ee.probability = exceedanceProbability(v, ee.query.threshold,
                                               ee.query.above);
      group.exceedances.push_back(std::move(ee));
    }
  }
  return stats;
}

namespace {

std::string exceedanceName(const ExceedanceQuery& q) {
  return "P[" + q.metric + (q.above ? " > " : " < ") +
         formatMetricNumber(q.threshold) + "]";
}

}  // namespace

void writeEnsembleCsv(const EnsembleStats& stats, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("writeEnsembleCsv: cannot open " + path);
  f << "group,label,samples,failed,kind,name,count,mean,stddev,min,max";
  for (double q : stats.quantiles) f << ",q" << formatMetricNumber(q);
  f << '\n';
  for (const GroupEnsemble& g : stats.groups) {
    const std::string prefix = std::to_string(g.group) + ',' +
                               csvQuote(g.label) + ',' +
                               std::to_string(g.samples) + ',' +
                               std::to_string(g.failed) + ',';
    for (const MetricEnsemble& m : g.metrics) {
      f << prefix << "metric," << m.name << ',' << m.count << ','
        << formatMetricNumber(m.mean) << ',' << formatMetricNumber(m.stddev)
        << ',' << formatMetricNumber(m.min) << ','
        << formatMetricNumber(m.max);
      for (double qv : m.quantile_values) f << ',' << formatMetricNumber(qv);
      f << '\n';
    }
    for (const ExceedanceEnsemble& e : g.exceedances) {
      f << prefix << "exceedance," << csvQuote(exceedanceName(e.query)) << ','
        << e.count << ',' << formatMetricNumber(e.probability) << ",,,";
      for (std::size_t k = 0; k < stats.quantiles.size(); ++k) f << ',';
      f << '\n';
    }
  }
  if (!f)
    throw std::runtime_error("writeEnsembleCsv: write failed for " + path);
}

void writeEnsembleJson(const EnsembleStats& stats, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("writeEnsembleJson: cannot open " + path);
  f << "{\n  \"quantiles\": [";
  for (std::size_t k = 0; k < stats.quantiles.size(); ++k)
    f << (k ? ", " : "") << formatMetricNumber(stats.quantiles[k]);
  f << "],\n  \"groups\": [";
  for (std::size_t gi = 0; gi < stats.groups.size(); ++gi) {
    const GroupEnsemble& g = stats.groups[gi];
    f << (gi ? ",\n" : "\n") << "    {\"group\": " << g.group
      << ", \"label\": " << jsonQuote(g.label)
      << ", \"samples\": " << g.samples << ", \"failed\": " << g.failed
      << ",\n     \"metrics\": [";
    for (std::size_t mi = 0; mi < g.metrics.size(); ++mi) {
      const MetricEnsemble& m = g.metrics[mi];
      f << (mi ? ",\n" : "\n") << "       {\"name\": " << jsonQuote(m.name)
        << ", \"count\": " << m.count
        << ", \"mean\": " << formatMetricNumber(m.mean)
        << ", \"stddev\": " << formatMetricNumber(m.stddev)
        << ", \"min\": " << formatMetricNumber(m.min)
        << ", \"max\": " << formatMetricNumber(m.max) << ", \"quantiles\": [";
      for (std::size_t k = 0; k < m.quantile_values.size(); ++k)
        f << (k ? ", " : "") << formatMetricNumber(m.quantile_values[k]);
      f << "]}";
    }
    f << "\n     ],\n     \"exceedances\": [";
    for (std::size_t ei = 0; ei < g.exceedances.size(); ++ei) {
      const ExceedanceEnsemble& e = g.exceedances[ei];
      f << (ei ? ",\n" : "\n")
        << "       {\"metric\": " << jsonQuote(e.query.metric)
        << ", \"above\": " << (e.query.above ? "true" : "false")
        << ", \"threshold\": " << formatMetricNumber(e.query.threshold)
        << ", \"count\": " << e.count
        << ", \"probability\": " << formatMetricNumber(e.probability) << "}";
    }
    f << (g.exceedances.empty() ? "]}" : "\n     ]}");
  }
  f << "\n  ]\n}\n";
  if (!f)
    throw std::runtime_error("writeEnsembleJson: write failed for " + path);
}

}  // namespace fdtdmm
