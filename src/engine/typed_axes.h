#pragma once
/// \file typed_axes.h
/// COMPATIBILITY HEADER — deprecated for new code.
///
/// These are the pre-redesign typed sweep helpers (TaskKind + per-family
/// axis vectors) expressed as thin shims over the generic SweepSpec. They
/// exist so that (a) pre-redesign call sites keep compiling for one more
/// release and (b) test_sweep_migration.cpp can pin, byte for byte, that
/// the generic engine reproduces the old typed expansion. Nothing here is
/// load-bearing: each helper only appends a generic ParamAxis.
///
/// The generic parameter-map API in engine/sweep_spec.h is the ONLY
/// supported path for new families and new call sites — a new family gets
/// sweep support by registering descriptors, not by adding helpers here:
///   spec.set("zc", 75.0)                       base override
///   spec.axis("zc", {50.0, 75.0})              one-parameter axis
///   spec.axisStrings("load", {"rc", ...})      string axis
///   spec.axis(ParamAxis{...})                  multi-param / conditional
///   spec.stochasticAxis(StochasticAxis{...})   seeded Monte Carlo axis
///
/// Old typed API -> generic API mapping kept for migrating stragglers:
///   spec.kind = TaskKind::kTline   -> spec.scenario = "tline" (+ set(...))
///   spec.patterns = {...}          -> spec.axisStrings("pattern", {...})
///   spec.zc_values = {...}         -> spec.axis("zc", {...})
///   spec.loads = {...}             -> spec.axisStrings("load", {"rc", ...})
///   spec.rc_loads = {{r, c}, ...}  -> conditional ParamAxis binding load_r
///                                     + load_c with only_when load == "rc"
///   spec.incident_field = {...}    -> spec.axisBool("incident_field", {...})
///
/// To reproduce a pre-redesign sweep exactly (labels, task ordering, CSV/
/// JSON bytes), declare the axes in the old fixed nesting order:
///   patterns, bit_times, zc/td/loads/rc_loads (t-line) or incident_field
///   (PCB) — outermost to innermost.

#include "core/pcb_family.h"
#include "core/tline_family.h"
#include "engine/sweep_spec.h"

namespace fdtdmm {

/// One far-end linear RC corner (Fig. 4's 500 ohm || 1 pF is {500, 1e-12}).
struct RcLoad {
  double r = 500.0;   ///< shunt resistance [ohm]
  double c = 1e-12;   ///< shunt capacitance [F]
};

/// A "tline" sweep whose base is the given typed config (every field of
/// `base`, plus the engine, becomes a base parameter binding).
SweepSpec makeTlineSweep(const TlineScenario& base = {},
                         TlineEngine engine = TlineEngine::kFdtd1d);

/// A "pcb" sweep whose base is the given typed config.
SweepSpec makePcbSweep(const PcbScenario& base = {});

// Typed axis helpers (names match the old SweepSpec fields).
void addPatternAxis(SweepSpec& spec, const std::vector<std::string>& patterns);
void addBitTimeAxis(SweepSpec& spec, const std::vector<double>& bit_times);
void addZcAxis(SweepSpec& spec, const std::vector<double>& zc_values);
void addTdAxis(SweepSpec& spec, const std::vector<double>& td_values);
void addLoadAxis(SweepSpec& spec, const std::vector<FarEndLoad>& loads);
/// The RC-corner axis: each point binds load_r and load_c together, and the
/// axis only applies where the far-end load resolves to "rc".
void addRcLoadAxis(SweepSpec& spec, const std::vector<RcLoad>& rc_loads);
void addIncidentFieldAxis(SweepSpec& spec, const std::vector<bool>& incident);
/// The frequency axis of an "ac" sweep (a generic one-parameter axis over
/// the family's `frequency` descriptor; helper for symmetry with the
/// other named axes).
void addFrequencyAxis(SweepSpec& spec, const std::vector<double>& frequencies_hz);

}  // namespace fdtdmm
