#pragma once
/// \file typed_axes.h
/// Migration shims: the pre-redesign typed sweep API (TaskKind + per-family
/// axis vectors) expressed as thin convenience constructors over the
/// generic SweepSpec. Each helper appends one generic ParamAxis; nothing
/// here is load-bearing for the engine, which only sees parameter names.
///
/// To reproduce a pre-redesign sweep exactly (labels, task ordering, CSV/
/// JSON bytes), declare the axes in the old fixed nesting order:
///   patterns, bit_times, zc/td/loads/rc_loads (t-line) or incident_field
///   (PCB) — outermost to innermost. The old rc_loads rule ("applies only
///   to grid points whose far-end load resolves to the linear RC") is the
///   generic conditional axis with only_when load == "rc".
///
/// Old typed API -> new parameter-map API:
///   spec.kind = TaskKind::kTline          -> spec = makeTlineSweep(base, engine)
///   spec.kind = TaskKind::kPcb            -> spec = makePcbSweep(base)
///   spec.patterns = {...}                 -> addPatternAxis(spec, {...})
///   spec.zc_values = {...}                -> addZcAxis(spec, {...})
///   spec.loads = {...}                    -> addLoadAxis(spec, {...})
///   spec.rc_loads = {{r, c}, ...}         -> addRcLoadAxis(spec, {{r, c}, ...})
///   spec.incident_field = {...}           -> addIncidentFieldAxis(spec, {...})

#include "core/pcb_family.h"
#include "core/tline_family.h"
#include "engine/sweep_spec.h"

namespace fdtdmm {

/// One far-end linear RC corner (Fig. 4's 500 ohm || 1 pF is {500, 1e-12}).
struct RcLoad {
  double r = 500.0;   ///< shunt resistance [ohm]
  double c = 1e-12;   ///< shunt capacitance [F]
};

/// A "tline" sweep whose base is the given typed config (every field of
/// `base`, plus the engine, becomes a base parameter binding).
SweepSpec makeTlineSweep(const TlineScenario& base = {},
                         TlineEngine engine = TlineEngine::kFdtd1d);

/// A "pcb" sweep whose base is the given typed config.
SweepSpec makePcbSweep(const PcbScenario& base = {});

// Typed axis helpers (names match the old SweepSpec fields).
void addPatternAxis(SweepSpec& spec, const std::vector<std::string>& patterns);
void addBitTimeAxis(SweepSpec& spec, const std::vector<double>& bit_times);
void addZcAxis(SweepSpec& spec, const std::vector<double>& zc_values);
void addTdAxis(SweepSpec& spec, const std::vector<double>& td_values);
void addLoadAxis(SweepSpec& spec, const std::vector<FarEndLoad>& loads);
/// The RC-corner axis: each point binds load_r and load_c together, and the
/// axis only applies where the far-end load resolves to "rc".
void addRcLoadAxis(SweepSpec& spec, const std::vector<RcLoad>& rc_loads);
void addIncidentFieldAxis(SweepSpec& spec, const std::vector<bool>& incident);
/// The frequency axis of an "ac" sweep (a generic one-parameter axis over
/// the family's `frequency` descriptor; helper for symmetry with the
/// other named axes).
void addFrequencyAxis(SweepSpec& spec, const std::vector<double>& frequencies_hz);

}  // namespace fdtdmm
