#include "engine/typed_axes.h"

namespace fdtdmm {

SweepSpec makeTlineSweep(const TlineScenario& base, TlineEngine engine) {
  SweepSpec spec;
  spec.scenario = "tline";
  spec.base = tlineParams(base, engine);
  return spec;
}

SweepSpec makePcbSweep(const PcbScenario& base) {
  SweepSpec spec;
  spec.scenario = "pcb";
  spec.base = pcbParams(base);
  return spec;
}

void addPatternAxis(SweepSpec& spec, const std::vector<std::string>& patterns) {
  spec.axisStrings("pattern", patterns);
}

void addBitTimeAxis(SweepSpec& spec, const std::vector<double>& bit_times) {
  spec.axis("bit_time", bit_times);
}

void addZcAxis(SweepSpec& spec, const std::vector<double>& zc_values) {
  spec.axis("zc", zc_values);
}

void addTdAxis(SweepSpec& spec, const std::vector<double>& td_values) {
  spec.axis("td", td_values);
}

void addLoadAxis(SweepSpec& spec, const std::vector<FarEndLoad>& loads) {
  std::vector<std::string> names;
  names.reserve(loads.size());
  for (FarEndLoad l : loads) names.emplace_back(farEndLoadName(l));
  spec.axisStrings("load", names);
}

void addRcLoadAxis(SweepSpec& spec, const std::vector<RcLoad>& rc_loads) {
  ParamAxis axis;
  axis.name = "rc_load";
  axis.only_when_param = "load";
  axis.only_when_value = std::string("rc");
  axis.points.reserve(rc_loads.size());
  for (const RcLoad& rc : rc_loads)
    axis.points.push_back({{{"load_r", rc.r}, {"load_c", rc.c}}});
  spec.axis(std::move(axis));
}

void addIncidentFieldAxis(SweepSpec& spec, const std::vector<bool>& incident) {
  spec.axisBool("with_incident", incident);
}

void addFrequencyAxis(SweepSpec& spec, const std::vector<double>& frequencies_hz) {
  spec.axis("frequency", frequencies_hz);
}

}  // namespace fdtdmm
