#pragma once
/// \file sweep_runner.h
/// Executes a sweep's tasks across a ThreadPool. The contract that makes
/// parallel sweeps trustworthy:
///   - results come back in task-index order, independent of worker count
///     or scheduling (each future is collected into its task's slot);
///   - every model is resolved once through the shared ModelCache before
///     the pool starts (ModelCache::preload), so identification cost is
///     per-device, not per-task;
///   - a task that throws is recorded as ok=false with the exception text
///     in its slot — one bad corner never aborts the sweep;
///   - with identical tasks and models, the exported metrics are
///     byte-identical for any worker count (see sweep_result.h).

#include <cstddef>
#include <memory>
#include <vector>

#include "engine/model_cache.h"
#include "engine/sweep_result.h"
#include "engine/sweep_spec.h"
#include "signal/eye.h"

namespace fdtdmm {

struct SweepOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (min 1).
  std::size_t workers = 0;
  /// Retain each run's waveforms in its SweepRunRecord (memory-heavy for
  /// large sweeps; metrics are always computed).
  bool keep_waveforms = false;
  /// Eye-measurement window for the per-run metrics.
  EyeOptions eye;
};

class SweepRunner {
 public:
  /// A null cache gets replaced by a fresh empty ModelCache (which can
  /// still resolve the built-in "default" models).
  explicit SweepRunner(SweepOptions opt = {},
                       std::shared_ptr<ModelCache> cache = nullptr);

  /// Expands the spec and runs every task. \throws std::invalid_argument
  /// from expansion; per-task failures are captured in the result instead.
  SweepResult run(const SweepSpec& spec);

  /// Runs already-expanded tasks (kept in the given order; `index` fields
  /// key the exported CSV/JSON rows). \throws std::invalid_argument on a
  /// task without a scenario or a duplicate index — rows keyed by index
  /// must be unambiguous.
  SweepResult run(const std::vector<SimulationTask>& tasks);

  const std::shared_ptr<ModelCache>& cache() const { return cache_; }

 private:
  SweepOptions opt_;
  std::shared_ptr<ModelCache> cache_;
};

}  // namespace fdtdmm
