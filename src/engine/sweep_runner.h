#pragma once
/// \file sweep_runner.h
/// Executes a sweep's tasks across a ThreadPool. The contract that makes
/// parallel sweeps trustworthy:
///   - results come back in task-index order, independent of worker count
///     or scheduling (each future is collected into its task's slot);
///   - every model is resolved once through the shared ModelCache before
///     the pool starts (ModelCache::preload), so identification cost is
///     per-device, not per-task;
///   - a task that throws is recorded as ok=false with the exception text
///     in its slot — one bad corner never aborts the sweep;
///   - with identical tasks and models, the exported metrics are
///     byte-identical for any worker count (see sweep_result.h).

#include <cstddef>
#include <memory>
#include <vector>

#include "engine/model_cache.h"
#include "engine/result_cache.h"
#include "engine/solver_state_cache.h"
#include "engine/sweep_result.h"
#include "engine/sweep_spec.h"
#include "signal/eye.h"

namespace fdtdmm {

struct SweepOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (min 1).
  std::size_t workers = 0;
  /// Retain each run's waveforms in its SweepRunRecord (memory-heavy for
  /// large sweeps; metrics are always computed).
  bool keep_waveforms = false;
  /// Share solver state (symbolic analysis + base LU factorization) across
  /// corners with equal scenario sharing keys, through the runner's
  /// SolverStateCache. Exported metrics are byte-identical on or off (the
  /// keys guarantee bit-identical shared pieces); off = every corner
  /// factors privately, the pre-SolverSession behavior.
  bool share_solver_state = true;
  /// Replay previously computed records for content-identical tasks from
  /// the runner's ResultCache instead of re-running them. Automatically
  /// bypassed when keep_waveforms is set (cached records carry no
  /// waveforms). Metrics are byte-identical on or off.
  bool reuse_results = true;
  /// Eye-measurement window for the per-run metrics.
  EyeOptions eye;
};

class SweepRunner {
 public:
  /// A null cache gets replaced by a fresh empty ModelCache (which can
  /// still resolve the built-in "default" models); null solver/result
  /// caches get fresh instances likewise. Passing shared instances lets
  /// several sweeps (e.g. the amplitude sweep and its clean-reference
  /// sweep) reuse each other's factorizations and finished corners.
  explicit SweepRunner(SweepOptions opt = {},
                       std::shared_ptr<ModelCache> cache = nullptr,
                       std::shared_ptr<SolverStateCache> solver_cache = nullptr,
                       std::shared_ptr<ResultCache> result_cache = nullptr);

  /// Expands the spec and runs every task. \throws std::invalid_argument
  /// from expansion; per-task failures are captured in the result instead.
  SweepResult run(const SweepSpec& spec);

  /// Runs already-expanded tasks (kept in the given order; `index` fields
  /// key the exported CSV/JSON rows). \throws std::invalid_argument on a
  /// task without a scenario or a duplicate index — rows keyed by index
  /// must be unambiguous.
  SweepResult run(const std::vector<SimulationTask>& tasks);

  const std::shared_ptr<ModelCache>& cache() const { return cache_; }
  const std::shared_ptr<SolverStateCache>& solverCache() const { return solver_cache_; }
  const std::shared_ptr<ResultCache>& resultCache() const { return result_cache_; }

 private:
  SweepOptions opt_;
  std::shared_ptr<ModelCache> cache_;
  std::shared_ptr<SolverStateCache> solver_cache_;
  std::shared_ptr<ResultCache> result_cache_;
};

}  // namespace fdtdmm
