#pragma once
/// \file sweep_runner.h
/// Executes a sweep's tasks across a ThreadPool. The contract that makes
/// parallel sweeps trustworthy:
///   - results come back in task-index order, independent of worker count
///     or scheduling (each future is collected into its task's slot);
///   - every model is resolved once through the shared ModelCache before
///     the pool starts (ModelCache::preload), so identification cost is
///     per-device, not per-task;
///   - a task that throws is recorded as ok=false with the exception text
///     in its slot — one bad corner never aborts the sweep;
///   - with identical tasks and models, the exported metrics are
///     byte-identical for any worker count (see sweep_result.h).

#include <cstddef>
#include <memory>
#include <vector>

#include "engine/model_cache.h"
#include "engine/result_cache.h"
#include "engine/solver_state_cache.h"
#include "engine/sweep_result.h"
#include "engine/sweep_spec.h"
#include "obs/health.h"
#include "obs/progress.h"
#include "signal/eye.h"

namespace fdtdmm {

/// The runner's complete configuration: execution knobs and the (optional)
/// shared cache instances in one struct with named, defaulted fields. This
/// replaces the pre-consolidation pattern of a flags-only options struct
/// plus positional shared_ptr constructor arguments, which had grown
/// unreadable at call sites (`SweepRunner r(opt, nullptr, nullptr, rc)`).
struct SweepRunnerOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (min 1).
  std::size_t workers = 0;
  /// Retain each run's waveforms in its SweepRunRecord (memory-heavy for
  /// large sweeps; metrics are always computed).
  bool keep_waveforms = false;
  /// Share solver state (symbolic analysis + base LU factorization) across
  /// corners with equal scenario sharing keys, through the runner's
  /// SolverStateCache. Exported metrics are byte-identical on or off (the
  /// keys guarantee bit-identical shared pieces); off = every corner
  /// factors privately, the pre-SolverSession behavior.
  bool share_solver_state = true;
  /// Replay previously computed records for content-identical tasks from
  /// the runner's ResultCache instead of re-running them. Automatically
  /// bypassed when keep_waveforms is set (cached records carry no
  /// waveforms). Metrics are byte-identical on or off.
  bool reuse_results = true;
  /// Eye-measurement window for the per-run metrics.
  EyeOptions eye;
  /// Numerical-health collection for every corner (obs/health.h; off by
  /// default). When health.collect is set the runner points each corner's
  /// SolverSharing at this struct, the per-corner records land in
  /// SweepRunRecord::telemetry.health, and SweepResult::healthSummary() /
  /// the telemetry JSON report the roll-up. Metric exports are
  /// byte-identical on or off.
  obs::HealthOptions health;
  /// Live progress stream (obs/progress.h; off by default). Corners report
  /// as they finish; the runner fills worker utilization and cache hit
  /// rates into each snapshot.
  obs::ProgressOptions progress;
  /// Collect per-corner latency histograms (wall/phase times, Newton
  /// iteration counts, pool queue wait) into SweepResult::histograms. On
  /// by default — a handful of log-bucket increments per corner,
  /// invisible next to a transient solve. Metric exports are unaffected.
  bool collect_histograms = true;
  /// Shared cache instances. Null means "fresh private instance" (a fresh
  /// ModelCache can still resolve the built-in "default" models). Passing
  /// shared instances lets several sweeps (e.g. an amplitude sweep and its
  /// clean-reference sweep) reuse each other's identified models,
  /// factorizations, and finished corners.
  std::shared_ptr<ModelCache> model_cache;
  std::shared_ptr<SolverStateCache> solver_cache;
  std::shared_ptr<ResultCache> result_cache;
};

/// Deprecated pre-consolidation execution flags (no cache fields); kept one
/// release so existing call sites keep compiling through the forwarding
/// constructor below. New code uses SweepRunnerOptions.
struct SweepOptions {
  std::size_t workers = 0;
  bool keep_waveforms = false;
  bool share_solver_state = true;
  bool reuse_results = true;
  EyeOptions eye;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepRunnerOptions opt = {});

  /// Deprecated forwarding constructor (one release): folds the old
  /// positional cache arguments into SweepRunnerOptions. The ModelCache
  /// argument is required (pass nullptr for a private one) so that a braced
  /// `SweepRunner({})` unambiguously selects the new constructor.
  [[deprecated(
      "construct from SweepRunnerOptions (caches are named fields now)")]]
  SweepRunner(SweepOptions opt, std::shared_ptr<ModelCache> cache,
              std::shared_ptr<SolverStateCache> solver_cache = nullptr,
              std::shared_ptr<ResultCache> result_cache = nullptr);

  /// Expands the spec and runs every task. \throws std::invalid_argument
  /// from expansion; per-task failures are captured in the result instead.
  SweepResult run(const SweepSpec& spec);

  /// Runs already-expanded tasks (kept in the given order; `index` fields
  /// key the exported CSV/JSON rows). \throws std::invalid_argument on a
  /// task without a scenario or a duplicate index — rows keyed by index
  /// must be unambiguous.
  SweepResult run(const std::vector<SimulationTask>& tasks);

  /// The caches actually in use (never null after construction).
  const std::shared_ptr<ModelCache>& cache() const { return opt_.model_cache; }
  const std::shared_ptr<SolverStateCache>& solverCache() const {
    return opt_.solver_cache;
  }
  const std::shared_ptr<ResultCache>& resultCache() const {
    return opt_.result_cache;
  }

 private:
  SweepRunnerOptions opt_;  ///< caches filled in by the constructor
};

}  // namespace fdtdmm
