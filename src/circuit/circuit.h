#pragma once
/// \file circuit.h
/// Netlist container for the MNA transient engine.

#include <memory>
#include <vector>

#include "circuit/elements.h"

namespace fdtdmm {

/// A circuit: a set of nodes (0 = ground) and elements. Build the netlist
/// with the add* methods, then run it with TransientSimulator.
class Circuit {
 public:
  /// Ground node index.
  static constexpr int kGround = 0;

  /// Allocates a new node and returns its index (>= 1).
  int addNode();

  /// Number of non-ground nodes.
  int nodeCount() const { return node_count_; }

  // Element builders. All node arguments must be existing node indices
  // (0 = ground); violations throw std::invalid_argument.
  void addResistor(int n1, int n2, double r);
  void addCapacitor(int n1, int n2, double c, double v0 = 0.0);
  void addInductor(int n1, int n2, double l, double i0 = 0.0);
  /// Inductor with a series EMF e(t): v(n1) - v(n2) + e(t) = L di/dt (the
  /// EMF raises the n2-side potential). RHS-only excitation — see Inductor.
  void addSeriesEmfInductor(int n1, int n2, double l, TimeFn emf);
  /// Mutually coupled inductor pair (a1,b1) / (a2,b2); see CoupledInductors.
  void addCoupledInductors(int a1, int b1, int a2, int b2, double l1, double l2,
                           double m);
  /// Returns a handle usable to read the source branch current from the
  /// solution vector after assembly.
  VoltageSource* addVoltageSource(int n1, int n2, TimeFn vs);
  void addCurrentSource(int n1, int n2, TimeFn is);
  void addDiode(int anode, int cathode, const DiodeParams& p = {});
  void addMosfet(int drain, int gate, int source, const MosfetParams& p = {});
  void addIdealLine(int p1p, int p1m, int p2p, int p2m, double zc, double td);
  void addBehavioralPort(int n1, int n2, PortModelPtr model);

  /// Adds a custom element (takes ownership).
  void addElement(std::unique_ptr<Element> e);

  const std::vector<std::unique_ptr<Element>>& elements() const { return elements_; }

  /// Assigns branch offsets; returns the total number of unknowns
  /// (nodes + branches). Called by the simulator.
  std::size_t assignUnknowns();

 private:
  void checkNode(int n) const;

  int node_count_ = 0;
  std::vector<std::unique_ptr<Element>> elements_;
};

}  // namespace fdtdmm
