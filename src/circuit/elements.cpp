#include "circuit/elements.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace fdtdmm {

void Element::stampConductance(StampSystem& sys, int n1, int n2, double g) {
  addAnode(sys, n1, n1, g);
  addAnode(sys, n2, n2, g);
  addAnode(sys, n1, n2, -g);
  addAnode(sys, n2, n1, -g);
}

void Element::stampCurrentSource(StampSystem& sys, int n1, int n2, double i) {
  // Current i flows out of n1, into n2: subtract at n1, add at n2.
  if (n1 != 0) sys.b[static_cast<std::size_t>(n1 - 1)] -= i;
  if (n2 != 0) sys.b[static_cast<std::size_t>(n2 - 1)] += i;
}

void Element::addA(StampSystem& sys, int row_node, std::size_t col, double v) {
  if (row_node != 0) {
    sys.add(static_cast<std::size_t>(row_node - 1), col, v);
  }
}

void Element::addAnode(StampSystem& sys, int row_node, int col_node, double v) {
  if (row_node != 0 && col_node != 0) {
    sys.add(static_cast<std::size_t>(row_node - 1), static_cast<std::size_t>(col_node - 1), v);
  }
}

void Element::addArowNode(StampSystem& sys, std::size_t row, int col_node, double v) {
  if (col_node != 0) {
    sys.add(row, static_cast<std::size_t>(col_node - 1), v);
  }
}

void Element::stampAc(AcStampSystem&, double, const Vector&) const {
  throw std::logic_error(name() + ": AC analysis not supported");
}

void Element::stampAcAdmittance(AcStampSystem& sys, int n1, int n2,
                                std::complex<double> y) {
  acAddAnode(sys, n1, n1, y);
  acAddAnode(sys, n2, n2, y);
  acAddAnode(sys, n1, n2, -y);
  acAddAnode(sys, n2, n1, -y);
}

void Element::stampAcCurrentSource(AcStampSystem& sys, int n1, int n2,
                                   std::complex<double> i) {
  // Current i flows out of n1, into n2: subtract at n1, add at n2.
  if (n1 != 0) sys.b[static_cast<std::size_t>(n1 - 1)] -= i;
  if (n2 != 0) sys.b[static_cast<std::size_t>(n2 - 1)] += i;
}

void Element::acAddA(AcStampSystem& sys, int row_node, std::size_t col,
                     std::complex<double> v) {
  if (row_node != 0) {
    sys.add(static_cast<std::size_t>(row_node - 1), col, v);
  }
}

void Element::acAddAnode(AcStampSystem& sys, int row_node, int col_node,
                         std::complex<double> v) {
  if (row_node != 0 && col_node != 0) {
    sys.add(static_cast<std::size_t>(row_node - 1),
            static_cast<std::size_t>(col_node - 1), v);
  }
}

void Element::acAddArowNode(AcStampSystem& sys, std::size_t row, int col_node,
                            std::complex<double> v) {
  if (col_node != 0) {
    sys.add(row, static_cast<std::size_t>(col_node - 1), v);
  }
}

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(int n1, int n2, double r) : n1_(n1), n2_(n2), g_(1.0 / r) {
  if (r <= 0.0) throw std::invalid_argument("Resistor: R must be > 0");
}

void Resistor::stampStatic(StampSystem& sys, double) {
  stampConductance(sys, n1_, n2_, g_);
}

void Resistor::stampAc(AcStampSystem& sys, double, const Vector&) const {
  stampAcAdmittance(sys, n1_, n2_, {g_, 0.0});
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(int n1, int n2, double c, double v0)
    : n1_(n1), n2_(n2), c_(c), v_prev_(v0) {
  if (c <= 0.0) throw std::invalid_argument("Capacitor: C must be > 0");
}

namespace {
// Theta-method integration parameter for reactive companions. Theta = 0.5
// is the trapezoidal rule, which sustains an undamped +-i oscillation on
// voltage-forced nodes after a discontinuity (classic trapezoidal ringing);
// a slight bias damps that parasitic mode by (1-theta)/theta per step while
// staying near second-order accurate.
constexpr double kTheta = 0.55;
constexpr double kThetaFeedback = (1.0 - kTheta) / kTheta;
}  // namespace

void Capacitor::begin(double dt) {
  geq_ = c_ / (kTheta * dt);
  i_prev_ = 0.0;
}

void Capacitor::stampStatic(StampSystem& sys, double) {
  // Theta companion: i = geq (v - v_prev) - kThetaFeedback * i_prev.
  stampConductance(sys, n1_, n2_, geq_);
}

void Capacitor::stampDynamic(StampSystem& sys, const Vector&, double, double) {
  // Equivalent source pushing geq*v_prev + kThetaFeedback*i_prev from n2 to n1.
  stampCurrentSource(sys, n1_, n2_, -(geq_ * v_prev_ + kThetaFeedback * i_prev_));
}

void Capacitor::endStep(const Vector& x, double, double) {
  const double v = nodeV(x, n1_) - nodeV(x, n2_);
  i_prev_ = geq_ * (v - v_prev_) - kThetaFeedback * i_prev_;
  v_prev_ = v;
}

void Capacitor::stampAc(AcStampSystem& sys, double omega, const Vector&) const {
  stampAcAdmittance(sys, n1_, n2_, {0.0, omega * c_});
}

// ---------------------------------------------------------------- Inductor

Inductor::Inductor(int n1, int n2, double l, double i0)
    : n1_(n1), n2_(n2), l_(l), i_prev_(i0) {
  if (l <= 0.0) throw std::invalid_argument("Inductor: L must be > 0");
}

Inductor::Inductor(int n1, int n2, double l, TimeFn emf, double i0)
    : Inductor(n1, n2, l, i0) {
  if (!emf) throw std::invalid_argument("Inductor: empty series EMF");
  emf_ = std::move(emf);
}

void Inductor::begin(double) { v_prev_ = 0.0; }

void Inductor::stampStatic(StampSystem& sys, double dt) {
  // Theta method: i_new = i_prev + dt/L (theta v_new + (1-theta) v_prev),
  // where v is the branch voltage including the series EMF.
  const std::size_t ib = branch_offset_;
  const double h = kTheta * dt / l_;
  // Branch row: i_new - h * vd_new = i_prev + h * e_new + hp * v_prev
  // (vd is the node-voltage part; the EMF contribution moves to the RHS).
  sys.add(ib, ib, 1.0);
  addArowNode(sys, ib, n1_, -h);
  addArowNode(sys, ib, n2_, +h);
  // KCL: branch current flows from n1 to n2 through the inductor.
  addA(sys, n1_, ib, +1.0);
  addA(sys, n2_, ib, -1.0);
}

void Inductor::stampDynamic(StampSystem& sys, const Vector&, double t_new, double dt) {
  const double hp = (1.0 - kTheta) * dt / l_;
  double rhs = i_prev_ + hp * v_prev_;
  if (emf_) rhs += kTheta * dt / l_ * emf_(t_new);
  sys.b[branch_offset_] += rhs;
}

void Inductor::endStep(const Vector& x, double t_new, double) {
  v_prev_ = nodeV(x, n1_) - nodeV(x, n2_);
  if (emf_) v_prev_ += emf_(t_new);
  i_prev_ = x[branch_offset_];
}

void Inductor::stampAc(AcStampSystem& sys, double omega, const Vector&) const {
  // Branch row: v(n1) - v(n2) - j*omega*L * i = 0. The optional transient
  // EMF is a time-domain excitation and contributes nothing at AC.
  const std::size_t ib = branch_offset_;
  acAddArowNode(sys, ib, n1_, {1.0, 0.0});
  acAddArowNode(sys, ib, n2_, {-1.0, 0.0});
  sys.add(ib, ib, {0.0, -omega * l_});
  acAddA(sys, n1_, ib, {1.0, 0.0});
  acAddA(sys, n2_, ib, {-1.0, 0.0});
}

// --------------------------------------------------------- CoupledInductors

CoupledInductors::CoupledInductors(int a1, int b1, int a2, int b2, double l1,
                                   double l2, double m)
    : a1_(a1), b1_(b1), a2_(a2), b2_(b2), l1_(l1), l2_(l2), m_(m) {
  if (l1 <= 0.0 || l2 <= 0.0)
    throw std::invalid_argument("CoupledInductors: L1, L2 must be > 0");
  const double det = l1 * l2 - m * m;
  if (det <= 0.0)
    throw std::invalid_argument("CoupledInductors: need M^2 < L1*L2");
  g11_ = l2 / det;
  g12_ = -m / det;
  g22_ = l1 / det;
}

void CoupledInductors::begin(double) {
  v1_prev_ = v2_prev_ = 0.0;
  i1_prev_ = i2_prev_ = 0.0;
}

void CoupledInductors::stampStatic(StampSystem& sys, double dt) {
  // Theta method on the vector equation i_new = i_prev +
  // dt * Gamma (theta v_new + (1-theta) v_prev), Gamma = L^-1.
  const std::size_t ib1 = branch_offset_;
  const std::size_t ib2 = branch_offset_ + 1;
  const double h = kTheta * dt;
  sys.add(ib1, ib1, 1.0);
  addArowNode(sys, ib1, a1_, -h * g11_);
  addArowNode(sys, ib1, b1_, +h * g11_);
  addArowNode(sys, ib1, a2_, -h * g12_);
  addArowNode(sys, ib1, b2_, +h * g12_);
  sys.add(ib2, ib2, 1.0);
  addArowNode(sys, ib2, a1_, -h * g12_);
  addArowNode(sys, ib2, b1_, +h * g12_);
  addArowNode(sys, ib2, a2_, -h * g22_);
  addArowNode(sys, ib2, b2_, +h * g22_);
  // KCL: i1 flows a1 -> b1, i2 flows a2 -> b2.
  addA(sys, a1_, ib1, +1.0);
  addA(sys, b1_, ib1, -1.0);
  addA(sys, a2_, ib2, +1.0);
  addA(sys, b2_, ib2, -1.0);
}

void CoupledInductors::stampDynamic(StampSystem& sys, const Vector&, double,
                                    double dt) {
  const double hp = (1.0 - kTheta) * dt;
  sys.b[branch_offset_] += i1_prev_ + hp * (g11_ * v1_prev_ + g12_ * v2_prev_);
  sys.b[branch_offset_ + 1] += i2_prev_ + hp * (g12_ * v1_prev_ + g22_ * v2_prev_);
}

void CoupledInductors::endStep(const Vector& x, double, double) {
  v1_prev_ = nodeV(x, a1_) - nodeV(x, b1_);
  v2_prev_ = nodeV(x, a2_) - nodeV(x, b2_);
  i1_prev_ = x[branch_offset_];
  i2_prev_ = x[branch_offset_ + 1];
}

void CoupledInductors::stampAc(AcStampSystem& sys, double omega,
                               const Vector&) const {
  // v1 = j*omega*(L1 i1 + M i2), v2 = j*omega*(M i1 + L2 i2).
  const std::size_t ib1 = branch_offset_;
  const std::size_t ib2 = branch_offset_ + 1;
  acAddArowNode(sys, ib1, a1_, {1.0, 0.0});
  acAddArowNode(sys, ib1, b1_, {-1.0, 0.0});
  sys.add(ib1, ib1, {0.0, -omega * l1_});
  sys.add(ib1, ib2, {0.0, -omega * m_});
  acAddArowNode(sys, ib2, a2_, {1.0, 0.0});
  acAddArowNode(sys, ib2, b2_, {-1.0, 0.0});
  sys.add(ib2, ib1, {0.0, -omega * m_});
  sys.add(ib2, ib2, {0.0, -omega * l2_});
  acAddA(sys, a1_, ib1, {1.0, 0.0});
  acAddA(sys, b1_, ib1, {-1.0, 0.0});
  acAddA(sys, a2_, ib2, {1.0, 0.0});
  acAddA(sys, b2_, ib2, {-1.0, 0.0});
}

// ----------------------------------------------------------- VoltageSource

VoltageSource::VoltageSource(int n1, int n2, TimeFn vs)
    : n1_(n1), n2_(n2), vs_(std::move(vs)) {
  if (!vs_) throw std::invalid_argument("VoltageSource: empty source function");
}

void VoltageSource::stampStatic(StampSystem& sys, double) {
  const std::size_t ib = branch_offset_;
  // Branch row: v(n1) - v(n2) = vs(t).
  addArowNode(sys, ib, n1_, 1.0);
  addArowNode(sys, ib, n2_, -1.0);
  // KCL: branch current leaves n1, enters n2 (through the source).
  addA(sys, n1_, ib, +1.0);
  addA(sys, n2_, ib, -1.0);
}

void VoltageSource::stampDynamic(StampSystem& sys, const Vector&, double t_new, double) {
  sys.b[branch_offset_] += vs_(t_new);
}

void VoltageSource::stampAc(AcStampSystem& sys, double, const Vector&) const {
  const std::size_t ib = branch_offset_;
  // Branch row: v(n1) - v(n2) = ac phasor (0 = AC short).
  acAddArowNode(sys, ib, n1_, {1.0, 0.0});
  acAddArowNode(sys, ib, n2_, {-1.0, 0.0});
  acAddA(sys, n1_, ib, {1.0, 0.0});
  acAddA(sys, n2_, ib, {-1.0, 0.0});
  sys.b[ib] += ac_;
}

// ----------------------------------------------------------- CurrentSource

CurrentSource::CurrentSource(int n1, int n2, TimeFn is)
    : n1_(n1), n2_(n2), is_(std::move(is)) {
  if (!is_) throw std::invalid_argument("CurrentSource: empty source function");
}

void CurrentSource::stampDynamic(StampSystem& sys, const Vector&, double t_new, double) {
  stampCurrentSource(sys, n2_, n1_, is_(t_new));
}

void CurrentSource::stampAc(AcStampSystem& sys, double, const Vector&) const {
  stampAcCurrentSource(sys, n2_, n1_, ac_);
}

// ------------------------------------------------------------------- Diode

Diode::Diode(int anode, int cathode, const DiodeParams& p) : na_(anode), nc_(cathode), p_(p) {}

double Diode::evalCurrent(double v, const DiodeParams& p, double& g) {
  const double nvt = p.n * p.vt;
  const double v_lim = 40.0 * nvt;  // linearize above this to bound exp()
  double i;
  if (v <= v_lim) {
    const double e = std::exp(v / nvt);
    i = p.is * (e - 1.0);
    g = p.is * e / nvt;
  } else {
    const double e = std::exp(v_lim / nvt);
    const double g_lim = p.is * e / nvt;
    i = p.is * (e - 1.0) + g_lim * (v - v_lim);
    g = g_lim;
  }
  i += p.gmin * v;
  g += p.gmin;
  return i;
}

void Diode::stampDynamic(StampSystem& sys, const Vector& x, double, double) {
  const double v = nodeV(x, na_) - nodeV(x, nc_);
  double g = 0.0;
  const double i = evalCurrent(v, p_, g);
  // Linearization: i(v*) ~ i0 + g (v - v0) = g v + (i0 - g v0).
  stampConductance(sys, na_, nc_, g);
  stampCurrentSource(sys, na_, nc_, i - g * v);
}

void Diode::stampAc(AcStampSystem& sys, double, const Vector& x_dc) const {
  // Small-signal: only the junction conductance at the DC point survives.
  const double v = dcNodeV(x_dc, na_) - dcNodeV(x_dc, nc_);
  double g = 0.0;
  (void)evalCurrent(v, p_, g);
  stampAcAdmittance(sys, na_, nc_, {g, 0.0});
}

// ------------------------------------------------------------------ Mosfet

Mosfet::Mosfet(int drain, int gate, int source, const MosfetParams& p)
    : nd_(drain), ng_(gate), ns_(source), p_(p) {}

double Mosfet::evalIds(double vgs, double vds, const MosfetParams& p,
                       double& gm, double& gds) {
  // NMOS square-law with channel-length modulation; C1 continuous.
  const double vov = vgs - p.vth;
  double i = 0.0;
  gm = 0.0;
  gds = 0.0;
  if (vov > 0.0) {
    const double clm = 1.0 + p.lambda * vds;
    if (vds < vov) {
      // Triode.
      i = p.k * (vov * vds - 0.5 * vds * vds) * clm;
      gm = p.k * vds * clm;
      gds = p.k * (vov - vds) * clm + p.k * (vov * vds - 0.5 * vds * vds) * p.lambda;
    } else {
      // Saturation.
      i = 0.5 * p.k * vov * vov * clm;
      gm = p.k * vov * clm;
      gds = 0.5 * p.k * vov * vov * p.lambda;
    }
  }
  i += p.gmin * vds;
  gds += p.gmin;
  return i;
}

void Mosfet::stampDynamic(StampSystem& sys, const Vector& x, double, double) {
  // Work in the "effective NMOS" frame; PMOS flips all port voltages and
  // the current direction. Symmetric drain/source handling: if the
  // effective vds is negative, swap drain and source.
  const double sgn = (p_.type == MosfetParams::Type::kNmos) ? 1.0 : -1.0;
  int d = nd_, s = ns_;
  double vds = sgn * (nodeV(x, d) - nodeV(x, s));
  if (vds < 0.0) {
    std::swap(d, s);
    vds = -vds;
  }
  const double vgs = sgn * (nodeV(x, ng_) - nodeV(x, s));

  double gm = 0.0, gds = 0.0;
  const double i = evalIds(vgs, vds, p_, gm, gds);

  // Real current into the drain node is I_D = sgn * ids(vgs_eff, vds_eff).
  // Linearizing and mapping the effective-frame voltages back through sgn:
  //   I_D = gm (vg - vs) + gds (vd - vs) + sgn * (ids0 - gm vgs - gds vds)
  // The conductance stamps see sgn twice (voltage map and current map) and
  // are therefore identical for NMOS and PMOS; the residual source flips.
  stampConductance(sys, d, s, gds);
  addAnode(sys, d, ng_, +gm);
  addAnode(sys, d, s, -gm);
  addAnode(sys, s, ng_, -gm);
  addAnode(sys, s, s, +gm);
  const double ieq = i - gm * vgs - gds * vds;
  stampCurrentSource(sys, d, s, sgn * ieq);
}

void Mosfet::stampAc(AcStampSystem& sys, double, const Vector& x_dc) const {
  // Same effective-NMOS frame as stampDynamic, but only the small-signal
  // conductances survive (no residual source at AC).
  const double sgn = (p_.type == MosfetParams::Type::kNmos) ? 1.0 : -1.0;
  int d = nd_, s = ns_;
  double vds = sgn * (dcNodeV(x_dc, d) - dcNodeV(x_dc, s));
  if (vds < 0.0) {
    std::swap(d, s);
    vds = -vds;
  }
  const double vgs = sgn * (dcNodeV(x_dc, ng_) - dcNodeV(x_dc, s));

  double gm = 0.0, gds = 0.0;
  (void)evalIds(vgs, vds, p_, gm, gds);

  stampAcAdmittance(sys, d, s, {gds, 0.0});
  acAddAnode(sys, d, ng_, {gm, 0.0});
  acAddAnode(sys, d, s, {-gm, 0.0});
  acAddAnode(sys, s, ng_, {-gm, 0.0});
  acAddAnode(sys, s, s, {gm, 0.0});
}

// --------------------------------------------------------------- IdealLine

IdealLine::IdealLine(int p1p, int p1m, int p2p, int p2m, double zc, double td)
    : p1p_(p1p), p1m_(p1m), p2p_(p2p), p2m_(p2m), zc_(zc), td_(td) {
  if (zc <= 0.0) throw std::invalid_argument("IdealLine: Zc must be > 0");
  if (td <= 0.0) throw std::invalid_argument("IdealLine: Td must be > 0");
}

void IdealLine::begin(double) {
  w1_.clear();
  w2_.clear();
}

double IdealLine::history(const std::deque<Sample>& h, double t) const {
  // Before the first recorded sample the line is at rest: w = 0.
  if (h.empty() || t < h.front().t) return 0.0;
  if (t >= h.back().t) return h.back().w;
  // Linear search from the back: t is always within one delay of the end.
  for (std::size_t k = h.size() - 1; k > 0; --k) {
    if (h[k - 1].t <= t) {
      const Sample& a = h[k - 1];
      const Sample& b = h[k];
      const double frac = (b.t > a.t) ? (t - a.t) / (b.t - a.t) : 1.0;
      return a.w + (b.w - a.w) * frac;
    }
  }
  return h.front().w;
}

void IdealLine::beginStep(double t_new, double) {
  v1h_ = history(w2_, t_new - td_);
  v2h_ = history(w1_, t_new - td_);
}

void IdealLine::stampStatic(StampSystem& sys, double) {
  const std::size_t i1 = branch_offset_;
  const std::size_t i2 = branch_offset_ + 1;
  // Port 1 characteristic: (v1p - v1m) - Zc i1 = v1h.
  addArowNode(sys, i1, p1p_, 1.0);
  addArowNode(sys, i1, p1m_, -1.0);
  sys.add(i1, i1, -zc_);
  // Port 2 characteristic.
  addArowNode(sys, i2, p2p_, 1.0);
  addArowNode(sys, i2, p2m_, -1.0);
  sys.add(i2, i2, -zc_);
  // KCL: i1 flows from p1p into the line, returns at p1m.
  addA(sys, p1p_, i1, +1.0);
  addA(sys, p1m_, i1, -1.0);
  addA(sys, p2p_, i2, +1.0);
  addA(sys, p2m_, i2, -1.0);
}

void IdealLine::stampDynamic(StampSystem& sys, const Vector&, double, double) {
  sys.b[branch_offset_] += v1h_;
  sys.b[branch_offset_ + 1] += v2h_;
}

void IdealLine::stampAc(AcStampSystem& sys, double omega, const Vector&) const {
  // Exact frequency-domain Branin equations: the transient history term
  // v1h = w2(t - Td) becomes e^{-j omega Td} (V2 + Zc I2), so
  //   (V1 - Zc I1) - e (V2 + Zc I2) = 0  and symmetrically for port 2.
  // Note the matrix is NOT of the G + j*omega*B form here — this is why
  // the AC engine re-stamps values at every frequency point.
  const std::size_t i1 = branch_offset_;
  const std::size_t i2 = branch_offset_ + 1;
  const std::complex<double> e = std::exp(std::complex<double>(0.0, -omega * td_));
  acAddArowNode(sys, i1, p1p_, {1.0, 0.0});
  acAddArowNode(sys, i1, p1m_, {-1.0, 0.0});
  sys.add(i1, i1, {-zc_, 0.0});
  acAddArowNode(sys, i1, p2p_, -e);
  acAddArowNode(sys, i1, p2m_, e);
  sys.add(i1, i2, -e * zc_);
  acAddArowNode(sys, i2, p2p_, {1.0, 0.0});
  acAddArowNode(sys, i2, p2m_, {-1.0, 0.0});
  sys.add(i2, i2, {-zc_, 0.0});
  acAddArowNode(sys, i2, p1p_, -e);
  acAddArowNode(sys, i2, p1m_, e);
  sys.add(i2, i1, -e * zc_);
  acAddA(sys, p1p_, i1, {1.0, 0.0});
  acAddA(sys, p1m_, i1, {-1.0, 0.0});
  acAddA(sys, p2p_, i2, {1.0, 0.0});
  acAddA(sys, p2m_, i2, {-1.0, 0.0});
}

void IdealLine::endStep(const Vector& x, double t_new, double) {
  const double v1 = nodeV(x, p1p_) - nodeV(x, p1m_);
  const double v2 = nodeV(x, p2p_) - nodeV(x, p2m_);
  const double i1 = x[branch_offset_];
  const double i2 = x[branch_offset_ + 1];
  w1_.push_back({t_new, v1 + zc_ * i1});
  w2_.push_back({t_new, v2 + zc_ * i2});
  // Prune history older than one delay plus slack.
  const double cutoff = t_new - 2.0 * td_;
  while (w1_.size() > 2 && w1_[1].t < cutoff) w1_.pop_front();
  while (w2_.size() > 2 && w2_[1].t < cutoff) w2_.pop_front();
}

// ---------------------------------------------------------- BehavioralPort

BehavioralPort::BehavioralPort(int n1, int n2, PortModelPtr model)
    : n1_(n1), n2_(n2), model_(std::move(model)) {
  if (!model_) throw std::invalid_argument("BehavioralPort: null model");
}

void BehavioralPort::begin(double dt) { model_->prepare(dt); }

void BehavioralPort::stampDynamic(StampSystem& sys, const Vector& x, double t_new, double) {
  const double v = nodeV(x, n1_) - nodeV(x, n2_);
  double g = 0.0;
  const double i = model_->current(v, t_new, g);
  stampConductance(sys, n1_, n2_, g);
  stampCurrentSource(sys, n1_, n2_, i - g * v);
}

void BehavioralPort::endStep(const Vector& x, double t_new, double) {
  model_->commit(nodeV(x, n1_) - nodeV(x, n2_), t_new);
}

}  // namespace fdtdmm
