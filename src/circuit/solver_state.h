#pragma once
/// \file solver_state.h
/// Shareable solver state for cross-run factorization reuse.
///
/// The transient engine's solver state has three separable lifetimes (see
/// circuit/solver_session.h):
///
///   1. *symbolic* state — the sparse pattern's fill-reducing RCM ordering.
///      A pure function of the matrix pattern, so every run whose circuit
///      has the same structure computes the identical ordering.
///   2. *numeric base* state — the LU factorization of the static base
///      matrix. A pure function of the assembled base values, so runs that
///      differ only in their right-hand side (sources, field drive,
///      companion histories) factor the identical matrix.
///   3. per-run Newton/RHS workspaces — never shareable.
///
/// This header defines the immutable shared forms of (1) and (2) plus the
/// SolverStateProvider interface through which a session checks them out.
/// The provider contract is exactly-once: for a given key, the builder
/// callback runs in exactly one session and every other session (on any
/// thread) receives the published object. The engine layer implements it
/// with a keyed cache (engine/solver_state_cache.h); the circuit layer only
/// sees this interface, so the dependency arrow keeps pointing upward.
///
/// Correctness rests on the keys, not on the cache: a key must only be
/// shared between runs whose corresponding state is bit-identical (same
/// pattern for a structure key, same base matrix bytes for a numeric-base
/// key). Scenario families derive keys from exactly the parameters that
/// feed the static assembly (core/scenario.h, structureKey /
/// numericBaseKey); an empty key opts out of sharing. Because shared state
/// is built by an ordinary run from its own inputs, checking it out never
/// changes results — waveforms and metrics are byte-identical with sharing
/// on or off.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "math/linear_solve.h"
#include "math/sparse_lu.h"
#include "obs/health.h"

namespace fdtdmm {

/// Immutable shared symbolic state of one structure class: the RCM
/// ordering of the static base pattern (order[new] = old). Dense-mode
/// classes have no symbolic state and never publish one.
struct SolverSymbolic {
  std::size_t n = 0;                   ///< matrix dimension the order permutes
  std::vector<std::size_t> rcm_order;  ///< reverseCuthillMcKee(base pattern)
};

/// Immutable shared numeric base state of one numeric-base class: the
/// factorization of the static base matrix, dense or sparse according to
/// the class's solver mode. Solving against it is const and thread-safe
/// (the sparse form requires the caller-workspace SparseLu::solve).
struct SolverNumericBase {
  bool is_sparse = false;
  LuFactorization dense;
  SparseLu sparse;

  std::size_t dim() const { return is_sparse ? sparse.dim() : dense.dim(); }
};

/// Exactly-once provider of shared solver state, keyed by the scenario
/// layer's structure / numeric-base keys. Implementations must guarantee
/// that for each key the builder runs exactly once even under concurrent
/// lookups, and that a builder that throws publishes nothing (the next
/// lookup retries). Returned objects are immutable and safe to use from
/// any thread.
class SolverStateProvider {
 public:
  virtual ~SolverStateProvider();

  using SymbolicBuilder = std::function<std::shared_ptr<const SolverSymbolic>()>;
  using NumericBuilder = std::function<std::shared_ptr<const SolverNumericBase>()>;

  virtual std::shared_ptr<const SolverSymbolic> symbolic(
      const std::string& key, const SymbolicBuilder& build) = 0;
  virtual std::shared_ptr<const SolverNumericBase> numericBase(
      const std::string& key, const NumericBuilder& build) = 0;
};

/// Sharing handles a run carries into the solver (TransientOptions).
/// Default-constructed = no sharing; either key may be empty independently
/// to opt out of that level.
struct SolverSharing {
  /// Provider the session checks state out of (not owned; must outlive the
  /// run). Null disables sharing entirely.
  SolverStateProvider* provider = nullptr;
  std::string structure_key;     ///< symbolic-state class; "" = don't share
  std::string numeric_base_key;  ///< base-factorization class; "" = don't share
  /// Optional sweep-wide numerical-health switches (obs/health.h): the
  /// runner points every corner at one HealthOptions so collection is
  /// configured in exactly one place (not owned; must outlive the run).
  /// A run's own TransientOptions::health wins when its collect flag is
  /// set. Rides SolverSharing because it is the existing runner-to-solver
  /// configuration channel, although it shares no state itself.
  const obs::HealthOptions* health = nullptr;

  bool shareSymbolic() const { return provider != nullptr && !structure_key.empty(); }
  bool shareNumericBase() const {
    return provider != nullptr && !numeric_base_key.empty();
  }
};

/// Round-trip-exact double formatting for sharing keys. Keys gate the reuse
/// of factorizations between runs, so two different values must never
/// collapse to one key: %g's 6 significant digits would merge e.g. 50.0 and
/// 50.0000001 (silently sharing a wrong factorization); %.17g round-trips
/// every double.
inline std::string solverKeyNum(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace fdtdmm
