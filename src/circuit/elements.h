#pragma once
/// \file elements.h
/// Circuit element hierarchy for the MNA transient engine. Each element
/// splits its linearized MNA contribution into a *static* part (matrix
/// entries that depend only on topology and the fixed time step: R/C/L
/// companion conductances, source/branch incidence rows, line
/// characteristic rows) and a *dynamic* part (everything that changes per
/// Newton iteration: RHS history/source terms and the Jacobian entries of
/// nonlinear devices). The transient engine assembles the static part once
/// per run, factors it once, and re-stamps only the dynamic part inside the
/// Newton loop — re-factoring only when a dynamic stamp actually touched
/// the matrix.

#include <complex>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "math/matrix.h"
#include "math/sparse_matrix.h"
#include "signal/port_model.h"

namespace fdtdmm {

/// MNA system A x = b; unknowns are node voltages (node k > 0 at index
/// k-1) followed by branch currents. The matrix is an *abstract stamp
/// target*: writes go through add(), which routes to either the dense
/// matrix `a` (default) or, when the engine points `sparse` at a
/// SparseMatrix, to that CSR target — so every element stamps dense and
/// sparse systems through one code path.
struct StampSystem {
  Matrix a;  ///< dense target, active while `sparse` is null
  Vector b;
  SparseMatrix* sparse = nullptr;  ///< CSR target set by the sparse engine
  /// Set by add() whenever a matrix entry is written. The engine clears it
  /// before the dynamic stamping pass of each Newton iteration and
  /// re-factors only if it comes back dirty; custom elements must route
  /// all matrix writes through add() (directly or via the Element stamp
  /// helpers) so the dirty check — and the sparse target — see them.
  bool matrix_dirty = false;

  /// Adds v to matrix entry (row, col) of the active target.
  void add(std::size_t row, std::size_t col, double v) {
    if (sparse != nullptr) {
      sparse->add(row, col, v);
    } else {
      a(row, col) += v;
    }
    matrix_dirty = true;
  }
};

/// Complex MNA system A(omega) x = b for the frequency-domain path,
/// A = G + j*omega*B (plus frequency-dependent terms like the ideal line's
/// e^{-j omega Td}). Assembled as TWO real StampSystem targets — `re` for
/// the real part and `im` for the imaginary part — so the existing
/// dense/sparse routing of StampSystem::add is reused verbatim and both
/// targets end up with byte-identical CSR patterns (add() always writes
/// both, even when one part is zero), the precondition of
/// ComplexSparseLu's shared-pattern factorization. The right-hand side is
/// natively complex.
struct AcStampSystem {
  StampSystem re;  ///< real part of A (b unused; the complex RHS is below)
  StampSystem im;  ///< imaginary part of A (same pattern as `re`)
  std::vector<std::complex<double>> b;

  /// Adds v to complex matrix entry (row, col) — both parts, always, so
  /// the two patterns stay identical.
  void add(std::size_t row, std::size_t col, std::complex<double> v) {
    re.add(row, col, v.real());
    im.add(row, col, v.imag());
  }
};

/// Source waveform type shared with the signal module.
using TimeFn = std::function<double(double t)>;

/// Base class of all circuit elements.
class Element {
 public:
  virtual ~Element() = default;

  /// Number of extra branch-current unknowns this element adds.
  virtual int branchCount() const { return 0; }

  /// Assigns the index of this element's first branch unknown.
  void setBranchOffset(std::size_t off) { branch_offset_ = off; }

  /// Called once when the simulation starts (after dt is known).
  virtual void begin(double /*dt*/) {}

  /// Called at the start of every time step, before Newton iterations.
  /// t_new is the time being solved for.
  virtual void beginStep(double /*t_new*/, double /*dt*/) {}

  /// Stamps the time-invariant matrix entries. Called once per run, after
  /// begin(). Contract: may only write to sys.a — the RHS is rebuilt from
  /// zero every Newton iteration, so static contributions to sys.b would be
  /// silently lost (the engine rejects them with std::logic_error).
  virtual void stampStatic(StampSystem& /*sys*/, double /*dt*/) {}

  /// Stamps the per-iteration contributions about iterate x: RHS source and
  /// companion-history terms, plus — for nonlinear devices — the Jacobian
  /// matrix entries of the linearization. Matrix writes must go through the
  /// stamp helpers (or set sys.matrix_dirty), so the engine knows the cached
  /// factorization of the static matrix is stale.
  virtual void stampDynamic(StampSystem& /*sys*/, const Vector& /*x*/,
                            double /*t_new*/, double /*dt*/) {}

  /// Full linearized stamp about iterate x: static + dynamic parts. This is
  /// what the pre-split engine assembled at every Newton iteration; the
  /// full-restamp reference path (and element unit tests) still use it.
  /// NOT virtual: subclasses contribute by overriding stampStatic /
  /// stampDynamic. Declaring a `stamp` with this signature in a subclass
  /// only hides this wrapper — the engine will never call it.
  void stamp(StampSystem& sys, const Vector& x, double t_new, double dt) {
    stampStatic(sys, dt);
    stampDynamic(sys, x, t_new, dt);
  }

  /// Commits the accepted solution of this step.
  virtual void endStep(const Vector& /*x*/, double /*t_new*/, double /*dt*/) {}

  /// Stamps this element's small-signal frequency-domain contribution at
  /// angular frequency `omega` into the complex system A(omega) x = b.
  ///
  /// Contract (the AC analogue of stampStatic/stampDynamic, collapsed into
  /// one pass because the engine re-stamps values at every frequency):
  ///  - Reactive elements stamp admittance/impedance at s = j*omega
  ///    (capacitor j*omega*C, inductor branch row with -j*omega*L).
  ///  - Nonlinear devices stamp the Jacobian of their DC linearization
  ///    about `x_dc` (the operating point from freq::dcOperatingPoint; an
  ///    EMPTY vector means "all unknowns zero"). No residual current
  ///    sources: AC analysis is small-signal, only derivatives survive.
  ///  - Time-domain excitations are dark at AC. Sources contribute their
  ///    complex AC phasor (setAcValue on VoltageSource/CurrentSource;
  ///    default 0 makes an un-phasored voltage source an AC short and an
  ///    un-phasored current source an AC open). The inductor's series EMC
  ///    EMF likewise contributes nothing.
  ///  - All matrix writes go through AcStampSystem::add (or the stampAc*
  ///    helpers), which writes BOTH real and imaginary targets on every
  ///    add so the two sparse patterns stay identical; RHS writes go to
  ///    sys.b (complex, sized to the unknown count by the engine).
  ///  - Branch unknowns reuse the transient branch_offset_ assignment, so
  ///    an AC system has exactly the unknown layout of the transient one.
  ///  - May be called many times per assembly (once per frequency point);
  ///    must be state-free (const) and must not depend on begin()/
  ///    beginStep() having run.
  ///
  /// The default throws std::logic_error: elements without a defined
  /// small-signal model (e.g. BehavioralPort, whose PortModel interface is
  /// time-domain-only) refuse AC analysis loudly instead of silently
  /// vanishing from the matrix.
  virtual void stampAc(AcStampSystem& /*sys*/, double /*omega*/,
                       const Vector& /*x_dc*/) const;

  virtual std::string name() const = 0;

 protected:
  /// Voltage of node n in the unknown vector (ground = 0).
  static double nodeV(const Vector& x, int n) { return n == 0 ? 0.0 : x[static_cast<std::size_t>(n - 1)]; }

  /// Adds conductance g between nodes n1 and n2 (standard 4-point stamp).
  static void stampConductance(StampSystem& sys, int n1, int n2, double g);

  /// Adds current `i` flowing out of n1 into n2 to the RHS (i.e. a source
  /// pushing current from n2 to n1 adds +i at n1).
  static void stampCurrentSource(StampSystem& sys, int n1, int n2, double i);

  /// Matrix entry helpers that ignore the ground node.
  static void addA(StampSystem& sys, int row_node, std::size_t col, double v);
  static void addAnode(StampSystem& sys, int row_node, int col_node, double v);
  static void addArowNode(StampSystem& sys, std::size_t row, int col_node, double v);

  /// AC counterparts of the stamp helpers above: complex 4-point admittance
  /// stamp, complex RHS injection (current y flowing out of n1 into n2),
  /// and ground-skipping complex matrix writes.
  static void stampAcAdmittance(AcStampSystem& sys, int n1, int n2,
                                std::complex<double> y);
  static void stampAcCurrentSource(AcStampSystem& sys, int n1, int n2,
                                   std::complex<double> i);
  static void acAddA(AcStampSystem& sys, int row_node, std::size_t col,
                     std::complex<double> v);
  static void acAddAnode(AcStampSystem& sys, int row_node, int col_node,
                         std::complex<double> v);
  static void acAddArowNode(AcStampSystem& sys, std::size_t row, int col_node,
                            std::complex<double> v);

  /// Voltage of node n in a DC operating-point vector where an empty
  /// vector means "all zeros" (the stampAc convention for x_dc).
  static double dcNodeV(const Vector& x, int n) {
    return (n == 0 || x.empty()) ? 0.0 : x[static_cast<std::size_t>(n - 1)];
  }

  std::size_t branch_offset_ = 0;
};

/// Linear resistor between n1 and n2.
class Resistor final : public Element {
 public:
  /// \throws std::invalid_argument if r <= 0.
  Resistor(int n1, int n2, double r);
  void stampStatic(StampSystem& sys, double dt) override;
  void stampAc(AcStampSystem& sys, double omega, const Vector& x_dc) const override;
  std::string name() const override { return "R"; }

 private:
  int n1_, n2_;
  double g_;
};

/// Linear capacitor (trapezoidal companion model).
class Capacitor final : public Element {
 public:
  /// \throws std::invalid_argument if c <= 0.
  Capacitor(int n1, int n2, double c, double v0 = 0.0);
  void begin(double dt) override;
  void stampStatic(StampSystem& sys, double dt) override;
  void stampDynamic(StampSystem& sys, const Vector& x, double t_new, double dt) override;
  void endStep(const Vector& x, double t_new, double dt) override;
  void stampAc(AcStampSystem& sys, double omega, const Vector& x_dc) const override;
  std::string name() const override { return "C"; }

 private:
  int n1_, n2_;
  double c_;
  double v_prev_;
  double i_prev_ = 0.0;
  double geq_ = 0.0;
};

/// Linear inductor (trapezoidal, one branch unknown), optionally with a
/// time-varying EMF e(t) in series: v(n1) - v(n2) + e(t) = L di/dt, i.e.
/// the EMF raises the n2-side potential. The EMF enters only the RHS of
/// the branch row (stampDynamic), so a field-excited ladder keeps the
/// one-factorization-per-linear-run guarantee of the cached-LU and sparse
/// solver paths — this is the circuit substrate of the Taylor/Agrawal
/// distributed-source EMC coupling in src/emc/.
class Inductor final : public Element {
 public:
  /// \throws std::invalid_argument if l <= 0.
  Inductor(int n1, int n2, double l, double i0 = 0.0);
  /// With a series EMF. \throws std::invalid_argument if l <= 0 or emf is
  /// empty.
  Inductor(int n1, int n2, double l, TimeFn emf, double i0 = 0.0);
  int branchCount() const override { return 1; }
  void begin(double dt) override;
  void stampStatic(StampSystem& sys, double dt) override;
  void stampDynamic(StampSystem& sys, const Vector& x, double t_new, double dt) override;
  void endStep(const Vector& x, double t_new, double dt) override;
  void stampAc(AcStampSystem& sys, double omega, const Vector& x_dc) const override;
  std::string name() const override { return "L"; }

 private:
  int n1_, n2_;
  double l_;
  TimeFn emf_;     ///< optional series EMF (may be empty)
  double i_prev_;
  double v_prev_ = 0.0;  ///< previous branch voltage *including* the EMF
};

/// A pair of mutually coupled inductors (linear transformer):
///   v1 = L1 di1/dt + M di2/dt,   v2 = M di1/dt + L2 di2/dt,
/// with v1 = v(a1) - v(b1), i1 flowing a1 -> b1 (analogously port 2).
/// Theta-method companion like Inductor, two branch unknowns. This is the
/// K-coupled element behind inductive line-to-line coupling in
/// buildCoupledRlgcLines (the Lm/L crosstalk axis).
class CoupledInductors final : public Element {
 public:
  /// \throws std::invalid_argument if l1/l2 <= 0 or m^2 >= l1*l2 (the
  ///         coupling coefficient |k| must be < 1 for a passive pair).
  CoupledInductors(int a1, int b1, int a2, int b2, double l1, double l2, double m);
  int branchCount() const override { return 2; }
  void begin(double dt) override;
  void stampStatic(StampSystem& sys, double dt) override;
  void stampDynamic(StampSystem& sys, const Vector& x, double t_new, double dt) override;
  void endStep(const Vector& x, double t_new, double dt) override;
  void stampAc(AcStampSystem& sys, double omega, const Vector& x_dc) const override;
  std::string name() const override { return "K"; }

 private:
  int a1_, b1_, a2_, b2_;
  double l1_, l2_, m_;      ///< inductance matrix [H] (for the AC stamp)
  double g11_, g12_, g22_;  ///< inverse inductance matrix [1/H]
  double i1_prev_ = 0.0, i2_prev_ = 0.0;
  double v1_prev_ = 0.0, v2_prev_ = 0.0;
};

/// Ideal voltage source v(n1) - v(n2) = vs(t) (one branch unknown).
class VoltageSource final : public Element {
 public:
  /// \throws std::invalid_argument if vs is empty.
  VoltageSource(int n1, int n2, TimeFn vs);
  int branchCount() const override { return 1; }
  void stampStatic(StampSystem& sys, double dt) override;
  void stampDynamic(StampSystem& sys, const Vector& x, double t_new, double dt) override;
  void stampAc(AcStampSystem& sys, double omega, const Vector& x_dc) const override;
  std::string name() const override { return "V"; }

  /// Index of the branch-current unknown (valid after assembly).
  std::size_t branchIndex() const { return branch_offset_; }

  /// AC phasor of this source: v(n1) - v(n2) = ac at every frequency. The
  /// default 0 makes the source an AC short (its internal impedance),
  /// which is what termination/bias sources want. Mutable between
  /// AcSession::run calls — the S-parameter extraction re-runs one
  /// assembled system with forward/reverse port excitations.
  void setAcValue(std::complex<double> ac) { ac_ = ac; }
  std::complex<double> acValue() const { return ac_; }

 private:
  int n1_, n2_;
  TimeFn vs_;
  std::complex<double> ac_{0.0, 0.0};
};

/// Ideal current source injecting is(t) from n2 into n1.
class CurrentSource final : public Element {
 public:
  /// \throws std::invalid_argument if is is empty.
  CurrentSource(int n1, int n2, TimeFn is);
  void stampDynamic(StampSystem& sys, const Vector& x, double t_new, double dt) override;
  void stampAc(AcStampSystem& sys, double omega, const Vector& x_dc) const override;
  std::string name() const override { return "I"; }

  /// AC phasor injected from n2 into n1 (default 0: an AC open).
  void setAcValue(std::complex<double> ac) { ac_ = ac; }
  std::complex<double> acValue() const { return ac_; }

 private:
  int n1_, n2_;
  TimeFn is_;
  std::complex<double> ac_{0.0, 0.0};
};

/// Junction diode parameters.
struct DiodeParams {
  double is = 1e-14;      ///< saturation current [A]
  double n = 1.0;         ///< emission coefficient
  double vt = 0.025852;   ///< thermal voltage [V]
  double gmin = 1e-12;    ///< parallel conductance for conditioning
};

/// Junction diode from anode to cathode, i = Is (exp(v/nVt) - 1).
/// Exponential linearly extrapolated above 40 nVt to keep Newton bounded.
class Diode final : public Element {
 public:
  Diode(int anode, int cathode, const DiodeParams& p = {});
  void stampDynamic(StampSystem& sys, const Vector& x, double t_new, double dt) override;
  void stampAc(AcStampSystem& sys, double omega, const Vector& x_dc) const override;
  std::string name() const override { return "D"; }

  /// Diode current and conductance at junction voltage v (exposed for tests).
  static double evalCurrent(double v, const DiodeParams& p, double& g);

 private:
  int na_, nc_;
  DiodeParams p_;
};

/// Level-1 (square-law) MOSFET parameters.
struct MosfetParams {
  enum class Type { kNmos, kPmos };
  Type type = Type::kNmos;
  double vth = 0.45;    ///< threshold voltage magnitude [V]
  double k = 8e-3;      ///< transconductance factor K = mu Cox W/L [A/V^2]
  double lambda = 0.05; ///< channel-length modulation [1/V]
  double gmin = 1e-12;  ///< drain-source leakage for conditioning
};

/// Level-1 MOSFET (symmetric in drain/source). Captures the square-law
/// regions (cutoff / triode / saturation) with C1-continuous boundaries;
/// this is all the macromodeling pipeline requires from the
/// transistor-level substitute of the paper's IBM device.
class Mosfet final : public Element {
 public:
  Mosfet(int drain, int gate, int source, const MosfetParams& p = {});
  void stampDynamic(StampSystem& sys, const Vector& x, double t_new, double dt) override;
  void stampAc(AcStampSystem& sys, double omega, const Vector& x_dc) const override;
  std::string name() const override { return p_.type == MosfetParams::Type::kNmos ? "NMOS" : "PMOS"; }

  /// Drain current (NMOS convention: positive into drain when vds > 0) and
  /// partial derivatives; exposed for unit tests of region boundaries.
  static double evalIds(double vgs, double vds, const MosfetParams& p,
                        double& gm, double& gds);

 private:
  int nd_, ng_, ns_;
  MosfetParams p_;
};

/// Lossless ideal transmission line (Branin / method-of-characteristics
/// model): two ports (p1+, p1-) and (p2+, p2-), characteristic impedance Zc,
/// one-way delay Td. Adds two branch-current unknowns. History terms are
/// linearly interpolated, so use dt well below Td.
class IdealLine final : public Element {
 public:
  /// \throws std::invalid_argument if zc <= 0 or td <= 0.
  IdealLine(int p1p, int p1m, int p2p, int p2m, double zc, double td);
  int branchCount() const override { return 2; }
  void begin(double dt) override;
  void beginStep(double t_new, double dt) override;
  void stampStatic(StampSystem& sys, double dt) override;
  void stampDynamic(StampSystem& sys, const Vector& x, double t_new, double dt) override;
  void endStep(const Vector& x, double t_new, double dt) override;
  void stampAc(AcStampSystem& sys, double omega, const Vector& x_dc) const override;
  std::string name() const override { return "TL"; }

 private:
  struct Sample {
    double t;
    double w;  ///< v + Zc i at the far port
  };
  double history(const std::deque<Sample>& h, double t) const;

  int p1p_, p1m_, p2p_, p2m_;
  double zc_, td_;
  std::deque<Sample> w1_;  ///< v1 + Zc i1 samples
  std::deque<Sample> w2_;  ///< v2 + Zc i2 samples
  double v1h_ = 0.0;       ///< incident history for port 1 at t_new
  double v2h_ = 0.0;
};

/// Wraps a PortModel (e.g. an RBF macromodel resampled to the circuit time
/// step) as a two-terminal nonlinear element. This is engine (ii) of the
/// paper's Fig. 4: "SPICE with RBF models of the devices".
class BehavioralPort final : public Element {
 public:
  /// \throws std::invalid_argument if model is null.
  BehavioralPort(int n1, int n2, PortModelPtr model);
  void begin(double dt) override;
  void stampDynamic(StampSystem& sys, const Vector& x, double t_new, double dt) override;
  void endStep(const Vector& x, double t_new, double dt) override;
  std::string name() const override { return "PORT(" + model_->name() + ")"; }

 private:
  int n1_, n2_;
  PortModelPtr model_;
};

}  // namespace fdtdmm
