#pragma once
/// \file transient.h
/// Fixed-step transient analysis of a Circuit: trapezoidal companion
/// models for reactive elements and Newton-Raphson on the nonlinear MNA
/// system at every step (the standard SPICE algorithm).

#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "signal/waveform.h"

namespace fdtdmm {

/// Options for a transient run.
struct TransientOptions {
  double dt = 1e-12;        ///< time step [s]; must be > 0
  double t_stop = 1e-9;     ///< end time [s]; must be > 0
  double settle_time = 0.0; ///< pre-roll with t < 0 to reach steady state
  int max_newton_iterations = 100;
  double v_tolerance = 1e-9;  ///< Newton convergence on max |dx|
  double max_delta_v = 1.0;   ///< per-iteration voltage damping clamp [V]
};

/// A named voltage probe between two nodes.
struct NodeProbe {
  std::string label;
  int n1 = 0;  ///< positive node
  int n2 = 0;  ///< negative node (usually ground)
};

/// A named branch-current probe on a voltage source. The recorded value is
/// the current flowing from the source's n1 terminal through the source to
/// n2. Forcing a device port with a source and probing this current is how
/// the identification pipeline measures port currents.
struct BranchProbe {
  std::string label;
  const VoltageSource* source = nullptr;
};

/// Result of a transient run.
struct TransientResult {
  std::map<std::string, Waveform> probes;  ///< keyed by probe label
  std::size_t steps = 0;                   ///< accepted steps (t >= 0)
  int max_newton_iterations = 0;           ///< worst step
  long long total_newton_iterations = 0;
  bool converged = true;  ///< false if any step hit the iteration cap

  /// Access with existence check. \throws std::out_of_range.
  const Waveform& at(const std::string& label) const { return probes.at(label); }
};

/// Runs a transient analysis.
/// \throws std::invalid_argument on bad options or probe nodes.
/// \throws std::runtime_error if the Newton iteration diverges (non-finite
///         values); mere non-convergence is reported via `converged`.
TransientResult runTransient(Circuit& circuit, const TransientOptions& opt,
                             const std::vector<NodeProbe>& probes,
                             const std::vector<BranchProbe>& branch_probes = {});

}  // namespace fdtdmm
