#pragma once
/// \file transient.h
/// Fixed-step transient analysis of a Circuit: theta-method companion
/// models for reactive elements and Newton-Raphson on the nonlinear MNA
/// system at every step (the standard SPICE algorithm).
///
/// Static/dynamic stamp contract
/// -----------------------------
/// The engine exploits the Element::stampStatic / stampDynamic split:
///
///  1. After Element::begin(dt), every element's stampStatic is assembled
///     exactly once into a *base matrix* (R/C/L companion conductances,
///     source and line incidence rows). Static stamps may only write to
///     sys.a; a static RHS contribution would be lost when the RHS is
///     rebuilt each iteration, so the engine rejects it (std::logic_error).
///  2. The base matrix is LU-factored once. Inside the Newton loop only
///     stampDynamic runs: it rebuilds the RHS (sources, companion
///     histories, line reflections) and, for nonlinear devices, adds
///     Jacobian entries on top of a fresh copy of the base matrix.
///  3. A dirty-pattern check (StampSystem::matrix_dirty, set by the matrix
///     stamp helpers) decides whether the cached base factorization is
///     still valid. A purely linear circuit therefore performs exactly ONE
///     LU factorization for the entire run — every Newton iteration is a
///     forward/back substitution — while circuits with nonlinear devices
///     re-factor only on iterations whose dynamic stamps touched the
///     matrix. No Matrix/Vector allocations happen inside the loop.
///
/// Sparse path (TransientSolverMode::kSparse)
/// ------------------------------------------
/// The same static/dynamic contract drives a compressed-sparse-row
/// assembly: the *symbolic pattern* is built once from the static stamps
/// (StampSystem routes element writes into a SparseMatrix target), numeric
/// values are refreshed in place each iteration, and the factorization is a
/// SparseLu — reverse Cuthill-McKee fill-reducing ordering plus banded LU
/// with partial pivoting. Segmented RLGC board models are chain-structured,
/// so the permuted bandwidth stays O(1) in the segment count and the run
/// scales O(n) instead of the dense path's O(n^3) factor + O(n^2) solves.
/// Dynamic stamps that touch entries outside the static pattern (e.g. a
/// MOSFET whose drain/source orientation swaps) are buffered as pattern
/// overflow; the engine then widens the cached pattern once and continues —
/// pattern growth costs one recompile per new position set, not one per
/// iteration. A purely linear circuit still performs exactly ONE (sparse)
/// factorization for the entire run.
///
/// TransientOptions::solver_mode selects between these paths and the legacy
/// full-restamp path (rebuild + refactor the complete system every
/// iteration), kept as the bit-for-bit reference for equivalence tests.

#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/solver_state.h"
#include "obs/telemetry.h"
#include "signal/waveform.h"

namespace fdtdmm {

/// Linear-solver strategy of the transient engine.
enum class TransientSolverMode {
  /// Assemble static stamps once, cache the LU factorization of the base
  /// matrix, re-factor only when a dynamic stamp dirties the matrix.
  kReuseFactorization,
  /// Legacy reference path: restamp the full system and factor it at every
  /// Newton iteration. Slower; used by equivalence tests and benchmarks.
  kFullRestamp,
  /// Sparse CSR assembly + banded-LU-with-RCM factorization (see the file
  /// comment). Same caching discipline as kReuseFactorization; orders of
  /// magnitude faster on large segmented RLGC systems.
  kSparse,
};

/// Stable names for the solver modes ("reuse_lu", "full_restamp",
/// "sparse") — the currency of scenario parameters and bench flags, so
/// sweeps can put an axis on the solver mode.
const char* transientSolverModeName(TransientSolverMode mode);

/// Parses a solver-mode name. \throws std::invalid_argument on an unknown
/// name (the message lists the valid ones).
TransientSolverMode transientSolverModeFromName(const std::string& name);

/// All mode names, in enum order (descriptor choice lists).
std::vector<std::string> transientSolverModeNames();

/// Options for a transient run.
struct TransientOptions {
  double dt = 1e-12;        ///< time step [s]; must be > 0
  double t_stop = 1e-9;     ///< end time [s]; must be > 0
  double settle_time = 0.0; ///< pre-roll with t < 0 to reach steady state
  int max_newton_iterations = 100;
  double v_tolerance = 1e-9;  ///< Newton convergence on max |dx|
  double max_delta_v = 1.0;   ///< per-iteration voltage damping clamp [V]
  TransientSolverMode solver_mode = TransientSolverMode::kReuseFactorization;
  /// Optional telemetry sink: when non-null the run *accumulates* its
  /// phase wall times (static stamp, factor, RHS stamp, solve, Newton
  /// loop) and solver counters into it (+=, so one sink can aggregate
  /// several runs — see obs/telemetry.h for the schema). Null keeps the
  /// Newton loop clock-free: every instrumentation point then costs one
  /// branch. Timings never influence results — waveforms are bit-identical
  /// with telemetry on or off.
  obs::RunTelemetry* telemetry = nullptr;
  /// Numerical-health collection (obs/health.h). With health.collect set
  /// AND telemetry attached, the run records factorization pivot stats, a
  /// Hager condition estimate on the cached factors, one post-run relative
  /// residual, and per-step Newton convergence quality into
  /// telemetry->health, then grades it against health.thresholds. Off (the
  /// default) the solver pays one branch per site and — as with telemetry —
  /// results are bit-identical either way. Sweeps enable collection for
  /// every corner via sharing.health instead; this per-run field wins when
  /// its collect flag is set.
  obs::HealthOptions health;
  /// Optional cross-run solver-state sharing (see circuit/solver_state.h).
  /// Default-constructed (null provider) = no sharing, the historical
  /// behavior. With a provider and non-empty keys, the run checks its
  /// symbolic analysis and/or base factorization out of the provider
  /// instead of computing private copies — results are guaranteed
  /// bit-identical either way *provided the keys are honest* (equal keys
  /// only for runs whose shared pieces are bit-identical).
  SolverSharing sharing;
};

/// A named voltage probe between two nodes.
struct NodeProbe {
  std::string label;
  int n1 = 0;  ///< positive node
  int n2 = 0;  ///< negative node (usually ground)
};

/// A named branch-current probe on a voltage source. The recorded value is
/// the current flowing from the source's n1 terminal through the source to
/// n2. Forcing a device port with a source and probing this current is how
/// the identification pipeline measures port currents.
struct BranchProbe {
  std::string label;
  const VoltageSource* source = nullptr;
};

/// Result of a transient run.
struct TransientResult {
  std::map<std::string, Waveform> probes;  ///< keyed by probe label
  std::size_t steps = 0;                   ///< accepted steps (t >= 0)
  int max_newton_iterations = 0;           ///< worst step
  long long total_newton_iterations = 0;
  /// LU factorizations performed (dense or sparse). Exactly 1 in the
  /// kReuseFactorization and kSparse modes when no dynamic stamp touches
  /// the matrix (purely linear circuits); equals total_newton_iterations
  /// (+1 for the base) otherwise.
  long long lu_factorizations = 0;
  bool converged = true;  ///< false if any step hit the iteration cap

  /// Access with existence check. \throws std::out_of_range.
  const Waveform& at(const std::string& label) const { return probes.at(label); }
};

/// Runs a transient analysis.
/// \throws std::invalid_argument on bad options, probe nodes out of range,
///         or duplicate probe labels (across node and branch probes alike —
///         a duplicate would silently shadow another probe's waveform).
/// \throws std::logic_error if an element's stampStatic writes to the RHS.
/// \throws std::runtime_error if the Newton iteration diverges (non-finite
///         values); mere non-convergence is reported via `converged`.
TransientResult runTransient(Circuit& circuit, const TransientOptions& opt,
                             const std::vector<NodeProbe>& probes,
                             const std::vector<BranchProbe>& branch_probes = {});

}  // namespace fdtdmm
