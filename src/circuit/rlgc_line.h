#pragma once
/// \file rlgc_line.h
/// Lossy distributed transmission line as a segmented RLGC ladder for the
/// MNA engine. The paper's ideal-line engines (i)/(ii) assume lossless
/// interconnect; this builder extends the circuit substrate to lossy
/// lines (copper/dielectric loss studies) with a controllable number of
/// segments. For r = g = 0 and enough segments it converges to the
/// Branin ideal line.
///
/// Every element of the ladder (R, L, C) stamps its MNA matrix entries
/// statically, so a transient run over an RLGC line — however many
/// segments — performs a single LU factorization (see transient.h); this
/// is the linear-dominated hot path that bench_transient_solver measures.

#include "circuit/circuit.h"

namespace fdtdmm {

/// Per-unit-length parameters and discretization of an RLGC line.
struct RlgcParams {
  double r = 0.0;      ///< series resistance [ohm/m]
  double l = 2.5e-7;   ///< series inductance [H/m]
  double g = 0.0;      ///< shunt conductance [S/m]
  double c = 1e-10;    ///< shunt capacitance [F/m]
  double length = 0.1; ///< physical length [m]
  std::size_t segments = 32;  ///< LC ladder sections
};

/// Derived quantities.
double rlgcCharacteristicImpedance(const RlgcParams& p);  ///< sqrt(L'/C') [ohm]
double rlgcDelay(const RlgcParams& p);                    ///< length*sqrt(L'C') [s]

/// Builds the ladder between (n1, ref1) and (n2, ref2). Every segment is a
/// series R/2-L-R/2 branch and a shunt C (+ optional G) at its output node.
/// \throws std::invalid_argument on non-positive l/c/length or 0 segments.
void buildRlgcLine(Circuit& circuit, int n1, int ref1, int n2, int ref2,
                   const RlgcParams& p);

/// As buildRlgcLine, but also returns the segment-output nodes (the nodes
/// carrying the shunt elements), near end first; the last entry is n2.
/// Coupled-line builders attach mutual elements to these.
std::vector<int> buildRlgcLineSegments(Circuit& circuit, int n1, int ref1,
                                       int n2, int ref2, const RlgcParams& p);

/// As buildRlgcLineSegments, with a per-segment series EMF embedded in each
/// segment's inductor (oriented so a positive EMF raises the potential
/// toward n2). This is the Taylor/Agrawal distributed-source form of
/// incident-field coupling: `segment_emf[s]` is the induced series voltage
/// of segment s in volts (field integrated over the segment length). EMFs
/// enter only the RHS, so the cached-LU / sparse one-factorization
/// guarantee of linear runs is preserved.
/// \throws std::invalid_argument if segment_emf is non-empty and its size
///         differs from p.segments, or any entry is empty.
std::vector<int> buildRlgcLineSegments(Circuit& circuit, int n1, int ref1,
                                       int n2, int ref2, const RlgcParams& p,
                                       const std::vector<TimeFn>& segment_emf);

/// One series R-parallel-L branch per unit length, synthesized from a
/// skin-effect rational fit (freq/rational_fit.h): below its corner
/// frequency R/L the branch is an inductive short, above it the current is
/// forced through R — the resistance "steps on", which is how a chain of
/// these makes the ladder's series resistance rise like sqrt(f).
struct SeriesRlBranch {
  double r = 0.0;  ///< branch resistance [ohm/m]
  double l = 0.0;  ///< branch inductance [H/m]
};

/// As buildRlgcLineSegments, with `skin_branches` chained in series with
/// each segment's inductor (each branch's R and L scaled by the segment
/// length; entries with r == 0 or l == 0 are degenerate shorts and are
/// skipped). The caller keeps the line's low-frequency inductance budget:
/// the branches add skinFitInductance() below their corners, so reduce
/// p.l by that amount before calling (p.l must stay > 0).
/// All branch values must be >= 0.
std::vector<int> buildRlgcLineSegments(Circuit& circuit, int n1, int ref1,
                                       int n2, int ref2, const RlgcParams& p,
                                       const std::vector<SeriesRlBranch>& skin_branches);

/// Two identical RLGC ladders with segment-wise capacitive and inductive
/// coupling: the crosstalk substrate of the "crosstalk" scenario family.
/// `line.c` is each line's shunt capacitance to ground; `cm` adds a
/// line-to-line capacitance per unit length between corresponding segment
/// nodes, and `lm` a mutual inductance per unit length between
/// corresponding series inductors (CoupledInductors element) — together
/// they capture the capacitive and inductive components of near-/far-end
/// crosstalk.
struct CoupledRlgcParams {
  RlgcParams line;  ///< per-line self parameters (both lines identical)
  double cm = 0.0;  ///< line-to-line mutual capacitance [F/m], >= 0
  double lm = 0.0;  ///< line-to-line mutual inductance [H/m], in [0, line.l)
};

/// Builds the aggressor ladder between (a1, a2) and the victim ladder
/// between (v1, v2), both referenced to ground, with cm/lm coupling.
/// \throws std::invalid_argument on invalid line parameters, cm < 0, or lm
///         outside [0, line.l).
void buildCoupledRlgcLines(Circuit& circuit, int a1, int a2, int v1, int v2,
                           const CoupledRlgcParams& p);

}  // namespace fdtdmm
