#include "circuit/circuit.h"

#include <stdexcept>

namespace fdtdmm {

int Circuit::addNode() { return ++node_count_; }

void Circuit::checkNode(int n) const {
  if (n < 0 || n > node_count_)
    throw std::invalid_argument("Circuit: node index out of range");
}

void Circuit::addResistor(int n1, int n2, double r) {
  checkNode(n1);
  checkNode(n2);
  elements_.push_back(std::make_unique<Resistor>(n1, n2, r));
}

void Circuit::addCapacitor(int n1, int n2, double c, double v0) {
  checkNode(n1);
  checkNode(n2);
  elements_.push_back(std::make_unique<Capacitor>(n1, n2, c, v0));
}

void Circuit::addInductor(int n1, int n2, double l, double i0) {
  checkNode(n1);
  checkNode(n2);
  elements_.push_back(std::make_unique<Inductor>(n1, n2, l, i0));
}

void Circuit::addSeriesEmfInductor(int n1, int n2, double l, TimeFn emf) {
  checkNode(n1);
  checkNode(n2);
  elements_.push_back(std::make_unique<Inductor>(n1, n2, l, std::move(emf)));
}

void Circuit::addCoupledInductors(int a1, int b1, int a2, int b2, double l1,
                                  double l2, double m) {
  checkNode(a1);
  checkNode(b1);
  checkNode(a2);
  checkNode(b2);
  elements_.push_back(std::make_unique<CoupledInductors>(a1, b1, a2, b2, l1, l2, m));
}

VoltageSource* Circuit::addVoltageSource(int n1, int n2, TimeFn vs) {
  checkNode(n1);
  checkNode(n2);
  auto src = std::make_unique<VoltageSource>(n1, n2, std::move(vs));
  VoltageSource* handle = src.get();
  elements_.push_back(std::move(src));
  return handle;
}

void Circuit::addCurrentSource(int n1, int n2, TimeFn is) {
  checkNode(n1);
  checkNode(n2);
  elements_.push_back(std::make_unique<CurrentSource>(n1, n2, std::move(is)));
}

void Circuit::addDiode(int anode, int cathode, const DiodeParams& p) {
  checkNode(anode);
  checkNode(cathode);
  elements_.push_back(std::make_unique<Diode>(anode, cathode, p));
}

void Circuit::addMosfet(int drain, int gate, int source, const MosfetParams& p) {
  checkNode(drain);
  checkNode(gate);
  checkNode(source);
  elements_.push_back(std::make_unique<Mosfet>(drain, gate, source, p));
}

void Circuit::addIdealLine(int p1p, int p1m, int p2p, int p2m, double zc, double td) {
  checkNode(p1p);
  checkNode(p1m);
  checkNode(p2p);
  checkNode(p2m);
  elements_.push_back(std::make_unique<IdealLine>(p1p, p1m, p2p, p2m, zc, td));
}

void Circuit::addBehavioralPort(int n1, int n2, PortModelPtr model) {
  checkNode(n1);
  checkNode(n2);
  elements_.push_back(std::make_unique<BehavioralPort>(n1, n2, std::move(model)));
}

void Circuit::addElement(std::unique_ptr<Element> e) {
  if (!e) throw std::invalid_argument("Circuit::addElement: null element");
  elements_.push_back(std::move(e));
}

std::size_t Circuit::assignUnknowns() {
  std::size_t next = static_cast<std::size_t>(node_count_);
  for (auto& e : elements_) {
    e->setBranchOffset(next);
    next += static_cast<std::size_t>(e->branchCount());
  }
  return next;
}

}  // namespace fdtdmm
