#include "circuit/solver_session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <stdexcept>

#include "obs/counters.h"
#include "obs/trace.h"

namespace fdtdmm {

namespace {

double nodeVoltage(const Vector& x, int n) {
  return n == 0 ? 0.0 : x[static_cast<std::size_t>(n - 1)];
}

void rejectStaticRhs(const Vector& b) {
  for (double v : b) {
    if (v != 0.0)
      throw std::logic_error(
          "runTransient: stampStatic wrote to the RHS; move that "
          "contribution into stampDynamic");
  }
}

}  // namespace

SolverSession::SolverSession(Circuit& circuit, const TransientOptions& opt)
    : circuit_(circuit), opt_(opt) {
  if (opt_.dt <= 0.0) throw std::invalid_argument("runTransient: dt must be > 0");
  if (opt_.t_stop <= 0.0) throw std::invalid_argument("runTransient: t_stop must be > 0");
  if (opt_.settle_time < 0.0) throw std::invalid_argument("runTransient: settle_time < 0");
  reuse_ = opt_.solver_mode == TransientSolverMode::kReuseFactorization;
  sparse_ = opt_.solver_mode == TransientSolverMode::kSparse;
}

void SolverSession::validateProbes(const std::vector<NodeProbe>& probes,
                                   const std::vector<BranchProbe>& branch_probes) const {
  for (const auto& p : probes) {
    if (p.n1 < 0 || p.n1 > circuit_.nodeCount() || p.n2 < 0 || p.n2 > circuit_.nodeCount())
      throw std::invalid_argument("runTransient: probe node out of range");
  }
  for (const auto& p : branch_probes) {
    if (p.source == nullptr)
      throw std::invalid_argument("runTransient: branch probe without source");
  }
  // Probe labels key the result map; a collision (including a branch probe
  // shadowing a node probe) would silently drop a waveform.
  std::set<std::string> labels;
  for (const auto& p : probes) {
    if (!labels.insert(p.label).second)
      throw std::invalid_argument("runTransient: duplicate probe label '" + p.label + "'");
  }
  for (const auto& p : branch_probes) {
    if (!labels.insert(p.label).second)
      throw std::invalid_argument("runTransient: duplicate probe label '" + p.label + "'");
  }
}

void SolverSession::assembleStatic(double* t_static, obs::RunTelemetry* tel) {
  // One-time assembly of the static (topology + dt) part of the MNA matrix
  // into the mode's target: a dense base matrix or a CSR base whose
  // finalize() fixes the symbolic pattern.
  obs::ScopedTimer stamp_static_timer(t_static);
  auto& elements = circuit_.elements();
  if (reuse_) {
    base_.a = Matrix(n_unknowns_, n_unknowns_);
    base_.b.assign(n_unknowns_, 0.0);
    for (auto& e : elements) e->stampStatic(base_, opt_.dt);
    rejectStaticRhs(base_.b);
  } else if (sparse_) {
    base_sp_.reset(n_unknowns_);
    base_.sparse = &base_sp_;
    base_.b.assign(n_unknowns_, 0.0);
    for (auto& e : elements) e->stampStatic(base_, opt_.dt);
    rejectStaticRhs(base_.b);
    base_sp_.finalize();

    // Resolve the shared symbolic state for this structure class: the
    // first run computes the pattern's RCM ordering and publishes it,
    // every other run checks it out and skips its own RCM analysis. The
    // ordering is a pure function of the (bit-identical-within-class)
    // pattern, so the resulting factorizations are bit-identical either
    // way.
    if (opt_.sharing.shareSymbolic()) {
      bool built = false;
      auto sym = opt_.sharing.provider->symbolic(opt_.sharing.structure_key, [&] {
        auto s = std::make_shared<SolverSymbolic>();
        s->n = n_unknowns_;
        s->rcm_order = reverseCuthillMcKee(base_sp_);
        built = true;
        return s;
      });
      // A mismatched checkout means the structure key lied (or collided);
      // ignoring it degrades to private analysis, never to wrong results.
      if (sym && sym->n == n_unknowns_ && sym->rcm_order.size() == n_unknowns_) {
        shared_symbolic_ = std::move(sym);
        if (tel) built ? ++tel->shared_symbolic_builds : ++tel->shared_symbolic_reuses;
        if (!built) {
          reused_shared_symbolic_ = true;
          obs::traceInstant("shared_symbolic_reuse", "solver");
        }
      }
    }
  }
}

void SolverSession::allocateWorkspace() {
  // All per-iteration state is allocated here, once; the Newton loop below
  // only reuses this storage (matrix copy-assign, vector assign/resize).
  x_.assign(n_unknowns_, 0.0);
  x_new_.assign(n_unknowns_, 0.0);
  sys_.b.assign(n_unknowns_, 0.0);
  if (reuse_) {
    sys_.a = base_.a;
  } else if (sparse_) {
    work_sp_ = base_sp_;
    sys_.sparse = &work_sp_;
  } else {
    sys_.a = Matrix(n_unknowns_, n_unknowns_);
  }
}

bool SolverSession::ensureBaseFactoredDense(double* t_factor, obs::RunTelemetry* tel) {
  // sys_.a is still the untouched base matrix here (either never dirtied,
  // or restored from base_.a at the top of this iteration), so the
  // factorization below — by whichever session of the class performs it —
  // is a pure function of the class's static stamps.
  if (opt_.sharing.shareNumericBase()) {
    bool built = false;
    auto nb = opt_.sharing.provider->numericBase(opt_.sharing.numeric_base_key, [&] {
      auto b = std::make_shared<SolverNumericBase>();
      b->is_sparse = false;
      obs::ScopedTimer factor_timer(t_factor);
      b->dense.factor(sys_.a);
      built = true;
      return b;
    });
    if (nb && !nb->is_sparse && nb->dim() == n_unknowns_) {
      shared_base_ = std::move(nb);
      base_factored_ = true;
      if (tel) built ? ++tel->shared_base_builds : ++tel->shared_base_reuses;
      if (!built) {
        reused_shared_base_ = true;
        obs::traceInstant("shared_base_reuse", "solver");
      }
      return built;
    }
    // Key collision (wrong mode or dimension): fall through to a private
    // factorization rather than solving with someone else's matrix.
  }
  obs::ScopedTimer factor_timer(t_factor);
  base_lu_.factor(sys_.a);
  base_factored_ = true;
  return true;
}

bool SolverSession::ensureBaseFactoredSparse(double* t_factor, obs::RunTelemetry* tel) {
  // work_sp_ still holds the untouched base values here. Sharing is only
  // sound while the pattern is the one the class key describes: if a
  // dynamic stamp grew the pattern before the first clean iteration, a
  // sharing-disabled run would factor (and RCM-order) the *grown* pattern,
  // so to stay bit-identical with it we fall back to private state.
  const bool pattern_unchanged =
      work_sp_.patternVersion() == assembled_pattern_version_;
  if (opt_.sharing.shareNumericBase() && pattern_unchanged) {
    bool built = false;
    auto nb = opt_.sharing.provider->numericBase(opt_.sharing.numeric_base_key, [&] {
      auto b = std::make_shared<SolverNumericBase>();
      b->is_sparse = true;
      obs::ScopedTimer factor_timer(t_factor);
      if (shared_symbolic_)
        b->sparse.factorWithOrder(work_sp_, shared_symbolic_->rcm_order);
      else
        b->sparse.factor(work_sp_);
      built = true;
      return b;
    });
    if (nb && nb->is_sparse && nb->dim() == n_unknowns_) {
      shared_base_ = std::move(nb);
      base_factored_ = true;
      if (tel) built ? ++tel->shared_base_builds : ++tel->shared_base_reuses;
      if (!built) {
        reused_shared_base_ = true;
        obs::traceInstant("shared_base_reuse", "solver");
      }
      return built;
    }
  }
  obs::ScopedTimer factor_timer(t_factor);
  if (shared_symbolic_ && pattern_unchanged)
    base_slu_.factorWithOrder(work_sp_, shared_symbolic_->rcm_order);
  else
    base_slu_.factor(work_sp_);
  base_factored_ = true;
  return true;
}

void SolverSession::collectEndOfRunHealth(const obs::HealthOptions& hopt,
                                          obs::NumericalHealth& h, bool any_solve) {
  // Relative residual of the last solve: x_new_ is the raw solution of the
  // final Newton iteration (before damping clamps), and sys_.b / the
  // current matrix are exactly the system it solved — sys_.a holds base or
  // dirtied values matching whichever factorization ran, work_sp_ likewise.
  if (any_solve) {
    double b_inf = 0.0;
    for (double v : sys_.b) b_inf = std::max(b_inf, std::abs(v));
    double r_inf = 0.0;
    if (sparse_) {
      const auto& row_ptr = work_sp_.rowPtr();
      const auto& col_idx = work_sp_.colIdx();
      const auto& values = work_sp_.values();
      for (std::size_t r = 0; r < n_unknowns_; ++r) {
        double acc = -sys_.b[r];
        for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
          acc += values[k] * x_new_[col_idx[k]];
        r_inf = std::max(r_inf, std::abs(acc));
      }
    } else {
      for (std::size_t r = 0; r < n_unknowns_; ++r) {
        double acc = -sys_.b[r];
        for (std::size_t c = 0; c < n_unknowns_; ++c) acc += sys_.a(r, c) * x_new_[c];
        r_inf = std::max(r_inf, std::abs(acc));
      }
    }
    h.collected = true;
    ++h.residual_checks;
    h.max_relative_residual =
        std::max(h.max_relative_residual, r_inf / (b_inf > 0.0 ? b_inf : 1.0));
  }

  // Hager 1-norm condition estimate on whichever factorization is cached —
  // a handful of O(n)/O(n b) substitutions, never a refactorization. The
  // base factorization is preferred (it is the matrix the run solved with
  // on every clean iteration); a run that never factored a base — full
  // restamp, or every iteration dirtied — estimates on its last private
  // work factorization instead.
  if (!hopt.condition_estimate) return;
  double norm_a = 0.0;
  obs::SolveFn solve, solve_t;
  if (sparse_) {
    const SparseLu* slu = nullptr;
    if (base_factored_ && baseSlu().factored()) {
      slu = &baseSlu();
      norm_a = obs::matrixNorm1(base_sp_);
    } else if (work_slu_.factored()) {
      slu = &work_slu_;
      norm_a = obs::matrixNorm1(work_sp_);
    }
    if (slu == nullptr) return;
    solve = [this, slu](const Vector& b, Vector& x) { slu->solve(b, x, slu_scratch_); };
    solve_t = [this, slu](const Vector& b, Vector& x) {
      slu->solveTranspose(b, x, slu_scratch_);
    };
  } else {
    const LuFactorization* lu = nullptr;
    if (base_factored_ && baseLu().factored()) {
      lu = &baseLu();
      norm_a = obs::matrixNorm1(base_.a);
    } else if (work_lu_.factored()) {
      lu = &work_lu_;
      norm_a = obs::matrixNorm1(sys_.a);
    }
    if (lu == nullptr) return;
    solve = [lu](const Vector& b, Vector& x) { lu->solve(b, x); };
    solve_t = [lu](const Vector& b, Vector& x) { lu->solveTranspose(b, x); };
  }
  const double inv_norm = obs::estimateInverseNorm1(n_unknowns_, solve, solve_t);
  h.collected = true;
  ++h.condition_estimates;
  h.max_condition_estimate = std::max(h.max_condition_estimate, norm_a * inv_norm);
}

TransientResult SolverSession::run(const std::vector<NodeProbe>& probes,
                                   const std::vector<BranchProbe>& branch_probes) {
  validateProbes(probes, branch_probes);

  n_unknowns_ = circuit_.assignUnknowns();
  auto& elements = circuit_.elements();
  for (auto& e : elements) e->begin(opt_.dt);

  // Telemetry sinks: null pointers when no sink is attached, so every
  // ScopedTimer below degenerates to a single branch (the disabled-span
  // contract of obs/counters.h). The trace span brackets the whole run and
  // is independently gated on an active TraceWriter.
  obs::RunTelemetry* const tel = opt_.telemetry;
  // Health collection (obs/health.h): the per-run options win when their
  // collect flag is set; otherwise a sweep-wide block pointed at by
  // sharing.health applies. The record lives inside the telemetry sink, so
  // collection additionally requires telemetry — `health` is null (one
  // branch per site) in every other case.
  const obs::HealthOptions* h_opt =
      opt_.health.collect
          ? &opt_.health
          : (opt_.sharing.health && opt_.sharing.health->collect ? opt_.sharing.health
                                                                 : nullptr);
  obs::NumericalHealth* const health = tel && h_opt ? &tel->health : nullptr;
  double* const t_static = tel ? &tel->phases.stamp_static_seconds : nullptr;
  double* const t_factor = tel ? &tel->phases.factor_seconds : nullptr;
  double* const t_rhs = tel ? &tel->phases.rhs_stamp_seconds : nullptr;
  double* const t_solve = tel ? &tel->phases.solve_seconds : nullptr;
  double* const t_newton = tel ? &tel->phases.newton_seconds : nullptr;
  obs::TraceSpan run_span("transient", "solver");

  TransientResult result;
  std::vector<Vector> probe_data(probes.size());
  std::vector<Vector> branch_data(branch_probes.size());

  assembleStatic(t_static, tel);
  allocateWorkspace();
  if (sparse_) assembled_pattern_version_ = work_sp_.patternVersion();

  // base factorization: the untouched static matrix, created lazily on the
  // first Newton iteration whose dynamic stamps leave the matrix clean
  // (lazily so circuits whose base matrix alone is singular — e.g. a node
  // held up only by a nonlinear device — still work); with sharing active
  // it is checked out of the provider instead (ensureBaseFactored*).
  // work_lu_/work_slu_: refactored in place on every iteration that
  // dirties the matrix — always private.

  const auto n_settle = static_cast<long long>(std::ceil(opt_.settle_time / opt_.dt));
  const auto n_run = static_cast<long long>(std::ceil(opt_.t_stop / opt_.dt));

  // |dx| per Newton iteration of the current step, kept only under health
  // collection (cleared per step, storage reused across the run).
  std::vector<double> newton_traj;

  auto record = [&](const Vector& sol) {
    for (std::size_t p = 0; p < probes.size(); ++p) {
      probe_data[p].push_back(nodeVoltage(sol, probes[p].n1) -
                              nodeVoltage(sol, probes[p].n2));
    }
    for (std::size_t p = 0; p < branch_probes.size(); ++p) {
      branch_data[p].push_back(sol[branch_probes[p].source->branchIndex()]);
    }
  };

  for (long long step = -n_settle; step <= n_run; ++step) {
    const double t_new = static_cast<double>(step) * opt_.dt;
    for (auto& e : elements) e->beginStep(t_new, opt_.dt);

    // Newton iteration: repeatedly solve the linearized MNA system. The
    // newton phase times the loop only (endStep/probe recording is the
    // run's residual time, not part of any phase).
    int it = 0;
    bool step_converged = false;
    if (health) newton_traj.clear();
    const auto newton_begin =
        t_newton ? obs::ScopedTimer::Clock::now() : obs::ScopedTimer::Clock::time_point{};
    for (; it < opt_.max_newton_iterations; ++it) {
      if (reuse_) {
        {
          obs::ScopedTimer rhs_timer(t_rhs);
          if (matrix_was_dirtied_) sys_.a = base_.a;
          sys_.b.assign(n_unknowns_, 0.0);
          sys_.matrix_dirty = false;
          for (auto& e : elements) e->stampDynamic(sys_, x_, t_new, opt_.dt);
        }
        if (sys_.matrix_dirty) {
          matrix_was_dirtied_ = true;
          {
            obs::ScopedTimer factor_timer(t_factor);
            work_lu_.factor(sys_.a);
          }
          ++result.lu_factorizations;
          if (health)
            health->recordFactorization(work_lu_.minAbsPivot(), work_lu_.pivotGrowth());
          obs::ScopedTimer solve_timer(t_solve);
          work_lu_.solve(sys_.b, x_new_);
        } else {
          if (!base_factored_) {
            if (ensureBaseFactoredDense(t_factor, tel)) ++result.lu_factorizations;
            // Shared checkouts record too: the stats live on the
            // factorization object, computed by whichever session built it.
            if (health)
              health->recordFactorization(baseLu().minAbsPivot(), baseLu().pivotGrowth());
          }
          obs::ScopedTimer solve_timer(t_solve);
          baseLu().solve(sys_.b, x_new_);
        }
      } else if (sparse_) {
        {
          obs::ScopedTimer rhs_timer(t_rhs);
          if (matrix_was_dirtied_) work_sp_.setValuesFrom(base_sp_);
          sys_.b.assign(n_unknowns_, 0.0);
          sys_.matrix_dirty = false;
          for (auto& e : elements) e->stampDynamic(sys_, x_, t_new, opt_.dt);
        }
        if (work_sp_.patternGrown()) {
          // A dynamic stamp hit a structurally-new entry: widen the working
          // pattern once and keep the cached base aligned so the in-place
          // value refresh above stays a straight copy. The base
          // factorization remains numerically valid (new entries are zero).
          work_sp_.mergeOverflow();
          base_sp_.adoptPatternOf(work_sp_);
          if (tel) ++tel->pattern_realignments;
          obs::traceInstant("sparse_pattern_realign", "solver");
        }
        if (sys_.matrix_dirty) {
          matrix_was_dirtied_ = true;
          {
            obs::ScopedTimer factor_timer(t_factor);
            work_slu_.factor(work_sp_);
          }
          ++result.lu_factorizations;
          if (health)
            health->recordFactorization(work_slu_.minAbsPivot(), work_slu_.pivotGrowth());
          obs::ScopedTimer solve_timer(t_solve);
          work_slu_.solve(sys_.b, x_new_);
        } else {
          if (!base_factored_) {
            if (ensureBaseFactoredSparse(t_factor, tel)) ++result.lu_factorizations;
            if (health)
              health->recordFactorization(baseSlu().minAbsPivot(), baseSlu().pivotGrowth());
          }
          obs::ScopedTimer solve_timer(t_solve);
          // Caller-workspace solve: the factorization may be shared with
          // concurrently solving sessions (identical numerics either way).
          baseSlu().solve(sys_.b, x_new_, slu_scratch_);
        }
      } else {
        {
          obs::ScopedTimer rhs_timer(t_rhs);
          std::fill_n(sys_.a.data(), n_unknowns_ * n_unknowns_, 0.0);
          sys_.b.assign(n_unknowns_, 0.0);
          for (auto& e : elements) e->stamp(sys_, x_, t_new, opt_.dt);
        }
        {
          obs::ScopedTimer factor_timer(t_factor);
          work_lu_.factor(sys_.a);
        }
        ++result.lu_factorizations;
        if (health)
          health->recordFactorization(work_lu_.minAbsPivot(), work_lu_.pivotGrowth());
        obs::ScopedTimer solve_timer(t_solve);
        work_lu_.solve(sys_.b, x_new_);
      }

      double max_dx = 0.0;
      for (std::size_t k = 0; k < n_unknowns_; ++k) {
        double dxk = x_new_[k] - x_[k];
        if (!std::isfinite(dxk))
          throw std::runtime_error("runTransient: Newton diverged (non-finite update)");
        if (opt_.max_delta_v > 0.0) dxk = std::clamp(dxk, -opt_.max_delta_v, opt_.max_delta_v);
        x_[k] += dxk;
        max_dx = std::max(max_dx, std::abs(dxk));
      }
      if (health) newton_traj.push_back(max_dx);
      if (max_dx <= opt_.v_tolerance) {
        step_converged = true;
        ++it;
        break;
      }
    }
    if (t_newton) {
      *t_newton += std::chrono::duration<double>(obs::ScopedTimer::Clock::now() -
                                                 newton_begin)
                       .count();
    }
    if (!step_converged) result.converged = false;
    if (health) {
      // Cap hit with a still-shrinking update = stagnated (limped, warn);
      // with a growing update = diverged-in-slow-motion (critical; the
      // fast kind threw non-finite above).
      const obs::NewtonOutcome outcome =
          step_converged ? obs::NewtonOutcome::kConverged
          : (newton_traj.size() >= 2 && newton_traj.back() > newton_traj.front())
              ? obs::NewtonOutcome::kDiverged
              : obs::NewtonOutcome::kStagnated;
      health->recordNewtonStep(newton_traj, outcome);
    }
    result.max_newton_iterations = std::max(result.max_newton_iterations, it);
    result.total_newton_iterations += it;

    for (auto& e : elements) e->endStep(x_, t_new, opt_.dt);
    if (step >= 0) {
      record(x_);
      ++result.steps;
    }
  }

  for (std::size_t p = 0; p < probes.size(); ++p) {
    result.probes.emplace(probes[p].label, Waveform(0.0, opt_.dt, std::move(probe_data[p])));
  }
  for (std::size_t p = 0; p < branch_probes.size(); ++p) {
    result.probes.emplace(branch_probes[p].label,
                          Waveform(0.0, opt_.dt, std::move(branch_data[p])));
  }

  if (tel) {
    tel->lu_factorizations += result.lu_factorizations;
    tel->newton_iterations += result.total_newton_iterations;
    tel->max_newton_iterations =
        std::max(tel->max_newton_iterations, result.max_newton_iterations);
    tel->steps += static_cast<long long>(result.steps);
    ++tel->transient_runs;
  }
  if (health) {
    collectEndOfRunHealth(*h_opt, *health, result.total_newton_iterations > 0);
    obs::gradeHealth(*health, h_opt->thresholds);
  }
  run_span.setArgs("\"mode\": \"" + std::string(transientSolverModeName(opt_.solver_mode)) +
                   "\", \"unknowns\": " + std::to_string(n_unknowns_) +
                   ", \"steps\": " + std::to_string(result.steps) +
                   ", \"lu_factorizations\": " + std::to_string(result.lu_factorizations) +
                   ", \"newton_iterations\": " + std::to_string(result.total_newton_iterations));
  return result;
}

}  // namespace fdtdmm
