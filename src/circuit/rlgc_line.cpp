#include "circuit/rlgc_line.h"

#include <cmath>
#include <stdexcept>

namespace fdtdmm {

double rlgcCharacteristicImpedance(const RlgcParams& p) {
  return std::sqrt(p.l / p.c);
}

double rlgcDelay(const RlgcParams& p) { return p.length * std::sqrt(p.l * p.c); }

void buildRlgcLine(Circuit& circuit, int n1, int ref1, int n2, int ref2,
                   const RlgcParams& p) {
  buildRlgcLineSegments(circuit, n1, ref1, n2, ref2, p);
}

std::vector<int> buildRlgcLineSegments(Circuit& circuit, int n1, int ref1,
                                       int n2, int ref2, const RlgcParams& p) {
  if (p.l <= 0.0 || p.c <= 0.0 || p.length <= 0.0)
    throw std::invalid_argument("buildRlgcLine: l, c, length must be > 0");
  if (p.r < 0.0 || p.g < 0.0)
    throw std::invalid_argument("buildRlgcLine: r, g must be >= 0");
  if (p.segments == 0) throw std::invalid_argument("buildRlgcLine: need >= 1 segment");

  const double dz = p.length / static_cast<double>(p.segments);
  const double l_seg = p.l * dz;
  const double c_seg = p.c * dz;
  const double r_half = 0.5 * p.r * dz;
  const double g_seg = p.g * dz;

  std::vector<int> segment_nodes;
  segment_nodes.reserve(p.segments);
  int prev = n1;
  for (std::size_t s = 0; s < p.segments; ++s) {
    // Series branch: R/2 - L - R/2 keeps the ladder symmetric.
    int a = prev;
    if (r_half > 0.0) {
      const int mid_in = circuit.addNode();
      circuit.addResistor(a, mid_in, r_half);
      a = mid_in;
    }
    const int mid_out = circuit.addNode();
    circuit.addInductor(a, mid_out, l_seg);
    int node = mid_out;
    if (r_half > 0.0) {
      const int after = (s == p.segments - 1) ? n2 : circuit.addNode();
      circuit.addResistor(mid_out, after, r_half);
      node = after;
    } else if (s == p.segments - 1) {
      // Tie the last inductor output to n2 through a negligible resistance
      // (MNA requires distinct inductor branch nodes).
      circuit.addResistor(mid_out, n2, 1e-6);
      node = n2;
    }
    // Shunt elements at the segment output. Reference: interpolate between
    // the two reference terminals (they are usually the same ground node).
    const int ref = (s < p.segments / 2) ? ref1 : ref2;
    circuit.addCapacitor(node, ref, c_seg);
    if (g_seg > 0.0) circuit.addResistor(node, ref, 1.0 / g_seg);
    segment_nodes.push_back(node);
    prev = node;
  }
  return segment_nodes;
}

void buildCoupledRlgcLines(Circuit& circuit, int a1, int a2, int v1, int v2,
                           const CoupledRlgcParams& p) {
  if (p.cm < 0.0)
    throw std::invalid_argument("buildCoupledRlgcLines: cm must be >= 0");
  const std::vector<int> agg = buildRlgcLineSegments(
      circuit, a1, Circuit::kGround, a2, Circuit::kGround, p.line);
  const std::vector<int> vic = buildRlgcLineSegments(
      circuit, v1, Circuit::kGround, v2, Circuit::kGround, p.line);
  if (p.cm == 0.0) return;
  const double cm_seg =
      p.cm * p.line.length / static_cast<double>(p.line.segments);
  for (std::size_t s = 0; s < agg.size(); ++s)
    circuit.addCapacitor(agg[s], vic[s], cm_seg);
}

}  // namespace fdtdmm
