#include "circuit/rlgc_line.h"

#include <cmath>
#include <stdexcept>

namespace fdtdmm {

double rlgcCharacteristicImpedance(const RlgcParams& p) {
  return std::sqrt(p.l / p.c);
}

double rlgcDelay(const RlgcParams& p) { return p.length * std::sqrt(p.l * p.c); }

void buildRlgcLine(Circuit& circuit, int n1, int ref1, int n2, int ref2,
                   const RlgcParams& p) {
  buildRlgcLineSegments(circuit, n1, ref1, n2, ref2, p);
}

namespace {

/// Adds the series reactive branch of segment `seg` between nodes a and b
/// (so coupled builders can substitute mutually coupled inductors, and the
/// field-coupled builder can embed per-segment EMFs).
using SeriesBranchFn =
    std::function<void(std::size_t seg, int a, int b)>;

/// Shared ladder walker behind the public builders: R/2 - <series> - R/2
/// per segment plus shunt C (+ optional G) at the segment output.
std::vector<int> buildLadder(Circuit& circuit, int n1, int ref1, int n2,
                             int ref2, const RlgcParams& p,
                             const SeriesBranchFn& series) {
  if (p.l <= 0.0 || p.c <= 0.0 || p.length <= 0.0)
    throw std::invalid_argument("buildRlgcLine: l, c, length must be > 0");
  if (p.r < 0.0 || p.g < 0.0)
    throw std::invalid_argument("buildRlgcLine: r, g must be >= 0");
  if (p.segments == 0) throw std::invalid_argument("buildRlgcLine: need >= 1 segment");

  const double dz = p.length / static_cast<double>(p.segments);
  const double c_seg = p.c * dz;
  const double r_half = 0.5 * p.r * dz;
  const double g_seg = p.g * dz;

  std::vector<int> segment_nodes;
  segment_nodes.reserve(p.segments);
  int prev = n1;
  for (std::size_t s = 0; s < p.segments; ++s) {
    // Series branch: R/2 - L - R/2 keeps the ladder symmetric.
    int a = prev;
    if (r_half > 0.0) {
      const int mid_in = circuit.addNode();
      circuit.addResistor(a, mid_in, r_half);
      a = mid_in;
    }
    const int mid_out = circuit.addNode();
    series(s, a, mid_out);
    int node = mid_out;
    if (r_half > 0.0) {
      const int after = (s == p.segments - 1) ? n2 : circuit.addNode();
      circuit.addResistor(mid_out, after, r_half);
      node = after;
    } else if (s == p.segments - 1) {
      // Tie the last inductor output to n2 through a negligible resistance
      // (MNA requires distinct inductor branch nodes).
      circuit.addResistor(mid_out, n2, 1e-6);
      node = n2;
    }
    // Shunt elements at the segment output. Reference: interpolate between
    // the two reference terminals (they are usually the same ground node).
    const int ref = (s < p.segments / 2) ? ref1 : ref2;
    circuit.addCapacitor(node, ref, c_seg);
    if (g_seg > 0.0) circuit.addResistor(node, ref, 1.0 / g_seg);
    segment_nodes.push_back(node);
    prev = node;
  }
  return segment_nodes;
}

}  // namespace

std::vector<int> buildRlgcLineSegments(Circuit& circuit, int n1, int ref1,
                                       int n2, int ref2, const RlgcParams& p) {
  return buildRlgcLineSegments(circuit, n1, ref1, n2, ref2, p,
                               std::vector<TimeFn>{});
}

std::vector<int> buildRlgcLineSegments(Circuit& circuit, int n1, int ref1,
                                       int n2, int ref2, const RlgcParams& p,
                                       const std::vector<TimeFn>& segment_emf) {
  if (!segment_emf.empty() && segment_emf.size() != p.segments)
    throw std::invalid_argument(
        "buildRlgcLine: segment_emf size must equal the segment count");
  const double l_seg =
      p.l * p.length / static_cast<double>(p.segments == 0 ? 1 : p.segments);
  return buildLadder(circuit, n1, ref1, n2, ref2, p,
                     [&](std::size_t s, int a, int b) {
                       if (segment_emf.empty()) {
                         circuit.addInductor(a, b, l_seg);
                       } else {
                         circuit.addSeriesEmfInductor(a, b, l_seg,
                                                      segment_emf[s]);
                       }
                     });
}

std::vector<int> buildRlgcLineSegments(Circuit& circuit, int n1, int ref1,
                                       int n2, int ref2, const RlgcParams& p,
                                       const std::vector<SeriesRlBranch>& skin_branches) {
  for (const SeriesRlBranch& br : skin_branches)
    if (br.r < 0.0 || br.l < 0.0)
      throw std::invalid_argument(
          "buildRlgcLine: skin branch values must be >= 0");
  if (p.segments == 0) throw std::invalid_argument("buildRlgcLine: need >= 1 segment");
  const double dz = p.length / static_cast<double>(p.segments);
  const double l_seg = p.l * dz;
  return buildLadder(circuit, n1, ref1, n2, ref2, p,
                     [&](std::size_t, int a, int b) {
                       // Chain the R-parallel-L steps ahead of the main
                       // inductor; degenerate branches are exact shorts.
                       for (const SeriesRlBranch& br : skin_branches) {
                         if (br.r <= 0.0 || br.l <= 0.0) continue;
                         const int m = circuit.addNode();
                         circuit.addResistor(a, m, br.r * dz);
                         circuit.addInductor(a, m, br.l * dz);
                         a = m;
                       }
                       circuit.addInductor(a, b, l_seg);
                     });
}

void buildCoupledRlgcLines(Circuit& circuit, int a1, int a2, int v1, int v2,
                           const CoupledRlgcParams& p) {
  if (p.cm < 0.0)
    throw std::invalid_argument("buildCoupledRlgcLines: cm must be >= 0");
  if (p.lm < 0.0 || (p.line.l > 0.0 && p.lm >= p.line.l))
    throw std::invalid_argument(
        "buildCoupledRlgcLines: lm must be in [0, line.l)");

  std::vector<int> agg, vic;
  if (p.lm == 0.0) {
    agg = buildRlgcLineSegments(circuit, a1, Circuit::kGround, a2,
                                Circuit::kGround, p.line);
    vic = buildRlgcLineSegments(circuit, v1, Circuit::kGround, v2,
                                Circuit::kGround, p.line);
  } else {
    // Inductive coupling replaces each pair of per-segment inductors with
    // one CoupledInductors element, so the series branches are collected
    // from both ladders first and the K elements added pairwise after.
    const double dz = p.line.length / static_cast<double>(p.line.segments);
    const double l_seg = p.line.l * dz;
    const double lm_seg = p.lm * dz;
    struct Branch {
      int a, b;
    };
    std::vector<Branch> agg_l, vic_l;
    agg = buildLadder(circuit, a1, Circuit::kGround, a2, Circuit::kGround,
                      p.line,
                      [&](std::size_t, int a, int b) { agg_l.push_back({a, b}); });
    vic = buildLadder(circuit, v1, Circuit::kGround, v2, Circuit::kGround,
                      p.line,
                      [&](std::size_t, int a, int b) { vic_l.push_back({a, b}); });
    for (std::size_t s = 0; s < agg_l.size(); ++s)
      circuit.addCoupledInductors(agg_l[s].a, agg_l[s].b, vic_l[s].a,
                                  vic_l[s].b, l_seg, l_seg, lm_seg);
  }

  if (p.cm == 0.0) return;
  const double cm_seg =
      p.cm * p.line.length / static_cast<double>(p.line.segments);
  for (std::size_t s = 0; s < agg.size(); ++s)
    circuit.addCapacitor(agg[s], vic[s], cm_seg);
}

}  // namespace fdtdmm
