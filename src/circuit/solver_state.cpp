#include "circuit/solver_state.h"

namespace fdtdmm {

// Out-of-line destructor anchors the provider's vtable in the circuit
// library (implementations live in the engine layer).
SolverStateProvider::~SolverStateProvider() = default;

}  // namespace fdtdmm
